// Package repro is the public API of the reproduction of
//
//	"Improving Communication Performance on InfiniBand by Using
//	 Efficient Data Placement Strategies"
//	(R. Rex, F. Mietke, W. Rehm, C. Raisch, H.-N. Nguyen — CLUSTER 2006)
//
// as a deterministic simulation in pure Go. It exposes:
//
//   - the three evaluated systems (Opteron, Xeon, SystemP) and the whole
//     simulated stack under them (virtual memory, TLBs, IO buses, HCAs
//     with ATT caches, a verbs layer, a pin-down registration cache, and
//     an MVAPICH2-like MPI runtime),
//   - the paper's contribution as a placement Strategy (hugepage library
//     placement, lazy deregistration, hugepage ATT entries, SGE
//     aggregation, preferred offsets),
//   - the paper's full evaluation as callable experiments: the Figure 3/4
//     work-request sweeps, the Figure 5 IMB SendRecv curves, the Figure 6
//     NAS benchmark improvement split, and the allocator comparisons.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record; the examples/ directory has runnable
// walkthroughs of this API.
package repro

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/imb"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/vm"
	"repro/internal/workload"
	"repro/internal/wrbench"
)

// Re-exported foundation types. Aliases keep the internal packages as the
// single source of truth while giving external importers usable names.
type (
	// Machine describes one simulated test system.
	Machine = machine.Machine
	// Ticks is the virtual time unit (TBR ticks, 512 MHz).
	Ticks = simtime.Ticks
	// VA is a simulated virtual address.
	VA = vm.VA
	// Strategy is a complete data-placement policy (the contribution).
	Strategy = core.Strategy
	// Cluster is a running MPI job on simulated hardware.
	Cluster = mpi.World
	// Rank is one MPI process of a Cluster.
	Rank = mpi.Rank
	// ClusterConfig configures a Cluster.
	ClusterConfig = mpi.Config
	// Piece is one element of a non-contiguous buffer.
	Piece = mpi.Piece
	// Allocator is the malloc/free model interface.
	Allocator = alloc.Allocator
	// Node is one simulated host (machine + memory + HCA + allocator).
	Node = node.Node
	// NodeConfig configures a standalone Node.
	NodeConfig = node.Config
	// NodeStats is one host's aggregated telemetry snapshot; every Rank
	// of a Cluster exposes it through Rank.NodeStats().
	NodeStats = node.Stats
	// NodeStatsReport is the shared -stats JSON record every cmd tool
	// emits (a []NodeStatsReport array).
	NodeStatsReport = node.Report
	// FaultSpec is a deterministic fault-injection configuration; plug
	// it into ClusterConfig.Faults or NodeConfig.Faults. A nil *FaultSpec
	// disables injection.
	FaultSpec = faults.Spec
	// NASResult is the outcome of one NAS kernel run.
	NASResult = nas.Result
	// Fig6Row is one benchmark's improvement split.
	Fig6Row = nas.Fig6Row
	// SendRecvResult is one IMB bandwidth row.
	SendRecvResult = imb.SendRecvResult
	// WRResult is one work-request microbenchmark row.
	WRResult = wrbench.Result
)

// The three test systems of the paper's Section 5.
var (
	Opteron = machine.Opteron
	Xeon    = machine.Xeon
	SystemP = machine.SystemP
)

// MachineByName resolves "opteron", "xeon" or "systemp".
func MachineByName(name string) *Machine { return machine.ByName(name) }

// ParseFaultSpec parses the -faults syntax shared by the cmd tools,
// e.g. "seed=7,hugecap=8,memlock=16m". Empty input returns (nil, nil):
// faults disabled.
func ParseFaultSpec(s string) (*FaultSpec, error) { return faults.ParseSpec(s) }

// Machines returns all three systems in the paper's order.
func Machines() []*Machine { return machine.All() }

// Recommended returns the paper's full placement recipe for a machine;
// Baseline the do-nothing policy.
var (
	Recommended = core.Recommended
	Baseline    = core.Baseline
)

// NewCluster starts a simulated MPI job under a placement strategy.
func NewCluster(s Strategy, ranks int) (*Cluster, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return mpi.NewWorld(s.MPIConfig(ranks))
}

// NewClusterConfig starts a job from an explicit configuration (full
// control over allocator kind, protocol limits, ...).
func NewClusterConfig(cfg ClusterConfig) (*Cluster, error) { return mpi.NewWorld(cfg) }

// ---- Experiments (one per paper artifact; see EXPERIMENTS.md) ----

// SGESweep reproduces Figure 3: post/poll ticks per (SGE count, SGE size).
func SGESweep(m *Machine, sgeCounts, sgeSizes []int) ([]WRResult, error) {
	return wrbench.SGESweep(m, sgeCounts, sgeSizes)
}

// OffsetSweep reproduces Figure 4: work-request ticks per (offset, size).
func OffsetSweep(m *Machine, offsets, sizes []int) ([]WRResult, error) {
	return wrbench.OffsetSweep(m, offsets, sizes)
}

// IMBSendRecv reproduces one Figure 5 curve under an MPI configuration.
func IMBSendRecv(cfg ClusterConfig, sizes []int) ([]SendRecvResult, error) {
	return imb.SendRecv(cfg, sizes)
}

// IMBPingPong runs the IMB PingPong latency test (an extension beyond the
// paper's SendRecv; the small-message metric Section 4 feeds into).
func IMBPingPong(cfg ClusterConfig, sizes []int) ([]imb.PingPongResult, error) {
	return imb.PingPong(cfg, sizes)
}

// IMBExchange runs the IMB Exchange neighbour pattern.
func IMBExchange(cfg ClusterConfig, sizes []int) ([]imb.ExchangeResult, error) {
	return imb.Exchange(cfg, sizes)
}

// Fig5 runs all four Figure 5 configurations on a machine.
func Fig5(m *Machine, sizes []int) (map[string][]SendRecvResult, error) {
	return imb.RunFig5(m, sizes)
}

// RegistrationSweep reproduces the registration-cost premise (E9):
// RegMR time for 4 KiB vs 2 MiB placement across buffer sizes.
func RegistrationSweep(m *Machine, sizes []uint64) ([]imb.RegResult, error) {
	return imb.RegistrationSweep(m, sizes)
}

// NASKernels returns the five NAS kernels (cg, ep, is, lu, mg).
func NASKernels() []nas.Kernel { return nas.All() }

// NASKernel resolves a kernel by name.
func NASKernel(name string) nas.Kernel { return nas.ByName(name) }

// RunNAS runs one kernel under the full placement strategy: allocator,
// lazy deregistration AND the ATT driver patch all follow the policy
// (earlier versions dropped everything but the allocator choice).
func RunNAS(m *Machine, ranks int, s Strategy, k nas.Kernel) (NASResult, error) {
	s.Machine = m
	if err := s.Validate(); err != nil {
		return NASResult{}, err
	}
	return nas.RunKernelConfig(s.MPIConfig(ranks), k)
}

// Fig6 reproduces the NAS improvement split on a machine.
func Fig6(m *Machine, ranks int) ([]Fig6Row, error) {
	return nas.RunFig6(m, ranks, nil)
}

// FormatFig6 renders Figure 6 rows as text.
var FormatFig6 = nas.FormatFig6

// AbinitComparison replays the Abinit-style allocation trace against the
// libc model and the hugepage library and returns (libc time, hugepage
// library time) — the "up to 10 times" claim (E7).
func AbinitComparison(m *Machine) (libc, huge Ticks, err error) {
	ops, slots := workload.AbinitTrace(workload.DefaultAbinitParams())
	la, err := newAllocator(m, mpi.AllocLibc)
	if err != nil {
		return 0, 0, err
	}
	rl, err := alloc.Replay(la, ops, slots)
	if err != nil {
		return 0, 0, err
	}
	ha, err := newAllocator(m, mpi.AllocHuge)
	if err != nil {
		return 0, 0, err
	}
	rh, err := alloc.Replay(ha, ops, slots)
	if err != nil {
		return 0, 0, err
	}
	return rl.AllocTime, rh.AllocTime, nil
}

// SweepGrid is a declarative experiment grid: workloads × machines ×
// placement strategies × fault specs, replicated over seeds.
type SweepGrid = sweep.Grid

// Bench is the canonical BENCH document a sweep renders: per-cell runs,
// statistics and paired strategy comparisons, byte-identical for a given
// grid whatever the worker count or process.
type Bench = sweep.Bench

// SweepRegression is one gate finding: a cell whose primary metric got
// worse than the baseline beyond the tolerance.
type SweepRegression = sweep.Regression

// LoadGrid resolves a built-in grid name ("smoke", "seed") or an
// @file.json grid definition.
var LoadGrid = sweep.LoadGrid

// RunSweep executes a grid on a worker pool (workers <= 0 means
// GOMAXPROCS) and returns the BENCH document plus per-cell run errors;
// a failed cell never aborts its siblings.
func RunSweep(g SweepGrid, workers int) (*Bench, []sweep.RunError, error) {
	return sweep.Execute(g, sweep.Options{Workers: workers})
}

// GateBench compares a BENCH document against a baseline on each
// workload's primary-metric mean (direction-aware) and returns every
// cell regressed beyond tolPct percent.
var GateBench = sweep.Gate

// SweepCache is the content-addressed result store behind sweeprun
// -cache and the sweepd service: replicates keyed by a canonical hash
// of (workload, machine, strategy, faults, seed, schema version, code
// fingerprint), served byte-identically on re-runs.
type SweepCache = cas.Store

// SweepStats summarizes how a sweep obtained its results: replicates
// executed, served from cache, and failed.
type SweepStats = sweep.ExecStats

// OpenSweepCache opens (or creates) a content-addressed result store
// rooted at dir. maxBytes > 0 caps the store with LRU eviction;
// <= 0 leaves it uncapped.
func OpenSweepCache(dir string, maxBytes int64) (*SweepCache, error) {
	return cas.Open(dir, maxBytes)
}

// RunSweepCached is RunSweep through a content-addressed store:
// replicates already in the cache are served from it (byte-identically
// — stored payloads carry only deterministic metrics), fresh results
// are stored back, and stats (optional) reports the executed/cached
// split. A re-run of an unchanged grid executes zero cells.
func RunSweepCached(g SweepGrid, workers int, cache *SweepCache, stats *SweepStats) (*Bench, []sweep.RunError, error) {
	return sweep.Execute(g, sweep.Options{Workers: workers, Cache: cache, Stats: stats})
}

// NewNode builds one standalone simulated host (for experiments outside
// a Cluster); its NodeStats method is the telemetry snapshot.
func NewNode(cfg NodeConfig) (*Node, error) { return node.New(cfg) }

// SumNodeStats totals per-node telemetry snapshots (e.g. from
// Cluster.NodeStats) into one cluster-wide record; the identity fields
// are taken from the first snapshot.
func SumNodeStats(sts []NodeStats) NodeStats { return node.Sum(sts) }

// NewAllocator builds one of the four allocation-library models
// ("libc", "huge", "morecore", "pagesep") on a fresh simulated node.
func NewAllocator(m *Machine, kind string) (Allocator, error) {
	return newAllocator(m, node.AllocatorKind(kind))
}

func newAllocator(m *Machine, kind node.AllocatorKind) (Allocator, error) {
	n, err := node.New(node.Config{Machine: m, Allocator: kind})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return n.Alloc, nil
}
