# Single entry points for the checks CI runs. `make lint` is the gate:
# it must pass before any commit lands, and CI fails on any diagnostic.

GO ?= go

# Shared content-addressed result store for the sweep targets. The cache
# key includes the module code fingerprint, so entries only replay when
# the code that produced them is unchanged — a warm re-run of an
# untouched tree executes zero cells.
SWEEP_CACHE ?= /tmp/sweepcache

.PHONY: all build test race lint lint-fix lint-analyzers baselines service bench scale policy modern

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpi/... ./internal/nas/...

# lint: gofmt, go vet, and the repo's own eight-analyzer reprolint v2
# suite (determinism, maporder, nilspec, parkflow, schedonly,
# statspairing, tickunits, timeflow — see DESIGN.md §7), plus the
# analyzers' own fixture tests so the suite can't rot. The SARIF leg
# holds the serializer to the same standard as the BENCH documents:
# the artifact must validate (sarifcheck) and two back-to-back runs
# must render byte-identical bytes. CI uploads /tmp/reprolint.sarif to
# code scanning. reprolint exits 1 on findings, so the SARIF runs only
# assert determinism and validity on a tree the text run already
# proved clean.
lint: lint-analyzers baselines
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/reprolint ./...
	$(GO) run ./cmd/reprolint -format sarif ./... > /tmp/reprolint.sarif
	$(GO) run ./cmd/reprolint -format sarif ./... > /tmp/reprolint.run2.sarif
	cmp /tmp/reprolint.sarif /tmp/reprolint.run2.sarif
	$(GO) run ./internal/tools/sarifcheck /tmp/reprolint.sarif

# lint-fix: apply every machine-applicable suggested fix (maporder's
# missing sort, nilspec's missing nil guard, determinism's clock/rng
# rewrites) to the tree in place, then re-run gofmt. Findings without
# a fix still print and fail the target — they need a human.
lint-fix:
	$(GO) run ./cmd/reprolint -fix ./...
	gofmt -w .

# baselines: every committed BENCH_*.json must pass benchcheck — a
# hand-edited or schema-stale baseline fails the lint gate, not a
# downstream bench job hours later.
baselines:
	@for f in BENCH_*.json; do \
		echo "benchcheck $$f"; \
		$(GO) run ./internal/tools/benchcheck < $$f || exit 1; \
	done

# service: the sweep-service gate. Race-test the daemon and the
# content-addressed store (including eviction under a size cap), then
# drive the full cold/warm loop end to end: a warm sweeprun -cache run
# of an unchanged grid must execute zero cells and reproduce the
# committed BENCH_seed.json byte for byte, and a live sweepd must answer
# a re-submitted grid entirely from cache (see scripts/service_smoke.sh).
service:
	$(GO) test -race ./internal/sweepd/... ./internal/cas/...
	./scripts/service_smoke.sh

# lint-analyzers: run reprolint's analyzers over their own testdata in
# analysistest mode (every // want expectation must fire, nothing else),
# then over the sweep engine explicitly — the one package whose output
# contract (byte-identical BENCH documents) dies instantly on any
# wall-clock or map-order leak.
lint-analyzers:
	$(GO) test ./internal/analysis/...
	$(GO) run ./cmd/reprolint ./internal/sweep/...

# bench: the sweep engine's end-to-end gate. The smoke grid must render
# byte-identical BENCH documents at pool widths 1 and 4, both documents
# must pass benchcheck, and a fresh seed-grid run must hold the
# committed BENCH_seed.json baseline within the default tolerance.
bench:
	$(GO) build -o /tmp/reprosweep ./cmd/sweeprun
	GOMAXPROCS=1 /tmp/reprosweep -grid smoke -workers 1 -o /tmp/BENCH_smoke.w1.json
	GOMAXPROCS=4 /tmp/reprosweep -grid smoke -workers 4 -o /tmp/BENCH_smoke.w4.json
	cmp /tmp/BENCH_smoke.w1.json /tmp/BENCH_smoke.w4.json
	$(GO) run ./internal/tools/benchcheck < /tmp/BENCH_smoke.w1.json
	/tmp/reprosweep -grid seed -o /tmp/BENCH_seed.json -baseline BENCH_seed.json -gate
	$(GO) run ./internal/tools/benchcheck < /tmp/BENCH_seed.json

# policy: the placement-policy gate. One policy-grid run (all four
# fixed strategies plus the threshold and adaptive engines over the
# seed workloads) must validate, hold the committed BENCH_policy.json
# baseline, keep the adaptive policy best-or-tied on the primary metric
# in every cell group, and — since policy decisions are pure functions
# of virtual-time telemetry — render byte-identical documents under
# different GOMAXPROCS and worker counts.
# The gate run goes through the shared cache; the second run stays
# uncached so the GOMAXPROCS/worker byte-identity comparison really
# re-executes instead of replaying the first run's stored bytes.
policy:
	$(GO) build -o /tmp/reprosweep ./cmd/sweeprun
	GOMAXPROCS=2 /tmp/reprosweep -grid policy -workers 2 -o /tmp/BENCH_policy.w2.json \
		-cache $(SWEEP_CACHE) \
		-baseline BENCH_policy.json -gate -require-best adaptive
	GOMAXPROCS=8 /tmp/reprosweep -grid policy -workers 4 -o /tmp/BENCH_policy.w4.json
	cmp /tmp/BENCH_policy.w2.json /tmp/BENCH_policy.w4.json
	cmp /tmp/BENCH_policy.w2.json BENCH_policy.json
	$(GO) run ./internal/tools/benchcheck < /tmp/BENCH_policy.w2.json

# scale: the 1024-rank scheduler gate. One scale-grid run must finish
# fast (the acceptance bound is 30 s of wall time), hold the committed
# BENCH_scale.json throughput baseline within a generous tolerance
# (wall clocks vary across hosts; only order-of-magnitude scheduler
# regressions should trip it), and — after stripping the host-dependent
# ticks_per_wallsec metrics — render byte-identical documents under
# GOMAXPROCS 1 and 8 and different worker counts.
# Cache caveat: a warm hit replays the stored ticks_per_wallsec from
# the run that produced the entry rather than re-timing this host. That
# is sound for the gate — the cache key includes the module code
# fingerprint, so a hit means the scheduler code is unchanged and its
# throughput cannot have regressed.
scale:
	$(GO) build -o /tmp/reprosweep ./cmd/sweeprun
	GOMAXPROCS=1 /tmp/reprosweep -grid scale -workers 1 \
		-o /tmp/BENCH_scale.json -stripped /tmp/BENCH_scale.det1.json \
		-cache $(SWEEP_CACHE) \
		-baseline BENCH_scale.json -gate -tol 75
	GOMAXPROCS=8 /tmp/reprosweep -grid scale -workers 2 \
		-o /dev/null -stripped /tmp/BENCH_scale.det8.json
	cmp /tmp/BENCH_scale.det1.json /tmp/BENCH_scale.det8.json
	$(GO) run ./internal/tools/benchcheck < /tmp/BENCH_scale.json

# modern: the modern-workload gate. One modern-grid run (MoE dispatch/
# combine, tiered KV-cache decode, 2-D halo exchange under the four
# fixed strategies plus adaptive) must validate, hold the committed
# BENCH_modern.json byte for byte, and render byte-identical stripped
# views under GOMAXPROCS 1 vs 8 and different worker counts.
modern:
	$(GO) build -o /tmp/reprosweep ./cmd/sweeprun
	GOMAXPROCS=1 /tmp/reprosweep -grid modern -workers 1 \
		-o /tmp/BENCH_modern.w1.json -stripped /tmp/BENCH_modern.det1.json \
		-cache $(SWEEP_CACHE) \
		-baseline BENCH_modern.json -gate
	GOMAXPROCS=8 /tmp/reprosweep -grid modern -workers 4 \
		-o /dev/null -stripped /tmp/BENCH_modern.det8.json
	cmp /tmp/BENCH_modern.det1.json /tmp/BENCH_modern.det8.json
	cmp /tmp/BENCH_modern.w1.json BENCH_modern.json
	$(GO) run ./internal/tools/benchcheck < /tmp/BENCH_modern.w1.json
