# Single entry points for the checks CI runs. `make lint` is the gate:
# it must pass before any commit lands, and CI fails on any diagnostic.

GO ?= go

.PHONY: all build test race lint lint-analyzers

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpi/... ./internal/nas/...

# lint: gofmt, go vet, and the repo's own analyzer suite (reprolint:
# determinism, maporder, statspairing, nilspec — see DESIGN.md §7),
# plus the analyzers' own fixture tests so the suite can't rot.
lint: lint-analyzers
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/reprolint ./...

# lint-analyzers: run reprolint's analyzers over their own testdata in
# analysistest mode (every // want expectation must fire, nothing else).
lint-analyzers:
	$(GO) test ./internal/analysis/...
