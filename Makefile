# Single entry points for the checks CI runs. `make lint` is the gate:
# it must pass before any commit lands, and CI fails on any diagnostic.

GO ?= go

.PHONY: all build test race lint lint-fix lint-analyzers baselines service bench scale policy

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpi/... ./internal/nas/...

# lint: gofmt, go vet, and the repo's own eight-analyzer reprolint v2
# suite (determinism, maporder, nilspec, parkflow, schedonly,
# statspairing, tickunits, timeflow — see DESIGN.md §7), plus the
# analyzers' own fixture tests so the suite can't rot. The SARIF leg
# holds the serializer to the same standard as the BENCH documents:
# the artifact must validate (sarifcheck) and two back-to-back runs
# must render byte-identical bytes. CI uploads /tmp/reprolint.sarif to
# code scanning. reprolint exits 1 on findings, so the SARIF runs only
# assert determinism and validity on a tree the text run already
# proved clean.
lint: lint-analyzers baselines
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/reprolint ./...
	$(GO) run ./cmd/reprolint -format sarif ./... > /tmp/reprolint.sarif
	$(GO) run ./cmd/reprolint -format sarif ./... > /tmp/reprolint.run2.sarif
	cmp /tmp/reprolint.sarif /tmp/reprolint.run2.sarif
	$(GO) run ./internal/tools/sarifcheck /tmp/reprolint.sarif

# lint-fix: apply every machine-applicable suggested fix (maporder's
# missing sort, nilspec's missing nil guard, determinism's clock/rng
# rewrites) to the tree in place, then re-run gofmt. Findings without
# a fix still print and fail the target — they need a human.
lint-fix:
	$(GO) run ./cmd/reprolint -fix ./...
	gofmt -w .

# baselines: every committed BENCH_*.json must pass benchcheck — a
# hand-edited or schema-stale baseline fails the lint gate, not a
# downstream bench job hours later.
baselines:
	@for f in BENCH_*.json; do \
		echo "benchcheck $$f"; \
		$(GO) run ./internal/tools/benchcheck < $$f || exit 1; \
	done

# service: the sweep-service gate. Race-test the daemon and the
# content-addressed store (including eviction under a size cap), then
# drive the full cold/warm loop end to end: a warm sweeprun -cache run
# of an unchanged grid must execute zero cells and reproduce the
# committed BENCH_seed.json byte for byte, and a live sweepd must answer
# a re-submitted grid entirely from cache (see scripts/service_smoke.sh).
service:
	$(GO) test -race ./internal/sweepd/... ./internal/cas/...
	./scripts/service_smoke.sh

# lint-analyzers: run reprolint's analyzers over their own testdata in
# analysistest mode (every // want expectation must fire, nothing else),
# then over the sweep engine explicitly — the one package whose output
# contract (byte-identical BENCH documents) dies instantly on any
# wall-clock or map-order leak.
lint-analyzers:
	$(GO) test ./internal/analysis/...
	$(GO) run ./cmd/reprolint ./internal/sweep/...

# bench: the sweep engine's end-to-end gate. The smoke grid must render
# byte-identical BENCH documents at pool widths 1 and 4, both documents
# must pass benchcheck, and a fresh seed-grid run must hold the
# committed BENCH_seed.json baseline within the default tolerance.
bench:
	$(GO) build -o /tmp/reprosweep ./cmd/sweeprun
	GOMAXPROCS=1 /tmp/reprosweep -grid smoke -workers 1 -o /tmp/BENCH_smoke.w1.json
	GOMAXPROCS=4 /tmp/reprosweep -grid smoke -workers 4 -o /tmp/BENCH_smoke.w4.json
	cmp /tmp/BENCH_smoke.w1.json /tmp/BENCH_smoke.w4.json
	$(GO) run ./internal/tools/benchcheck < /tmp/BENCH_smoke.w1.json
	/tmp/reprosweep -grid seed -o /tmp/BENCH_seed.json -baseline BENCH_seed.json -gate
	$(GO) run ./internal/tools/benchcheck < /tmp/BENCH_seed.json

# policy: the placement-policy gate. One policy-grid run (all four
# fixed strategies plus the threshold and adaptive engines over the
# seed workloads) must validate, hold the committed BENCH_policy.json
# baseline, keep the adaptive policy best-or-tied on the primary metric
# in every cell group, and — since policy decisions are pure functions
# of virtual-time telemetry — render byte-identical documents under
# different GOMAXPROCS and worker counts.
policy:
	$(GO) build -o /tmp/reprosweep ./cmd/sweeprun
	GOMAXPROCS=2 /tmp/reprosweep -grid policy -workers 2 -o /tmp/BENCH_policy.w2.json \
		-baseline BENCH_policy.json -gate -require-best adaptive
	GOMAXPROCS=8 /tmp/reprosweep -grid policy -workers 4 -o /tmp/BENCH_policy.w4.json
	cmp /tmp/BENCH_policy.w2.json /tmp/BENCH_policy.w4.json
	cmp /tmp/BENCH_policy.w2.json BENCH_policy.json
	$(GO) run ./internal/tools/benchcheck < /tmp/BENCH_policy.w2.json

# scale: the 1024-rank scheduler gate. One scale-grid run must finish
# fast (the acceptance bound is 30 s of wall time), hold the committed
# BENCH_scale.json throughput baseline within a generous tolerance
# (wall clocks vary across hosts; only order-of-magnitude scheduler
# regressions should trip it), and — after stripping the host-dependent
# ticks_per_wallsec metrics — render byte-identical documents under
# GOMAXPROCS 1 and 8 and different worker counts.
scale:
	$(GO) build -o /tmp/reprosweep ./cmd/sweeprun
	GOMAXPROCS=1 /tmp/reprosweep -grid scale -workers 1 \
		-o /tmp/BENCH_scale.json -stripped /tmp/BENCH_scale.det1.json \
		-baseline BENCH_scale.json -gate -tol 75
	GOMAXPROCS=8 /tmp/reprosweep -grid scale -workers 2 \
		-o /dev/null -stripped /tmp/BENCH_scale.det8.json
	cmp /tmp/BENCH_scale.det1.json /tmp/BENCH_scale.det8.json
	$(GO) run ./internal/tools/benchcheck < /tmp/BENCH_scale.json
