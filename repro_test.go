package repro

import (
	"testing"

	"repro/internal/mpi"
)

func TestMachinesRoster(t *testing.T) {
	if len(Machines()) != 3 {
		t.Fatal("expected the paper's three test systems")
	}
	for _, name := range []string{"opteron", "xeon", "systemp"} {
		if MachineByName(name) == nil {
			t.Errorf("MachineByName(%q) = nil", name)
		}
	}
	if MachineByName("bluegene") != nil {
		t.Error("unknown machine resolved")
	}
}

func TestNewClusterValidatesStrategy(t *testing.T) {
	if _, err := NewCluster(Strategy{}, 2); err == nil {
		t.Fatal("invalid strategy accepted")
	}
	c, err := NewCluster(Recommended(Opteron()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Fatal("wrong cluster size")
	}
}

func TestPublicPingPong(t *testing.T) {
	c, err := NewCluster(Recommended(Opteron()), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(r *Rank) error {
		va, err := r.Malloc(64 << 10)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			return r.Send(1, 7, va, 64<<10)
		}
		_, err = r.Recv(0, 7, va, 64<<10)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxTime() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestAbinitComparisonHeadline(t *testing.T) {
	libc, huge, err := AbinitComparison(Opteron())
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(libc) / float64(huge)
	if speedup < 5 || speedup > 15 {
		t.Fatalf("Abinit allocation speedup %.1fx, want ~10x", speedup)
	}
}

func TestRegistrationSweepHeadline(t *testing.T) {
	rows, err := RegistrationSweep(Opteron(), []uint64{8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].HugeFrac > 0.03 {
		t.Fatalf("hugepage registration %.1f%% of small-page, want ~1%%", 100*rows[0].HugeFrac)
	}
}

func TestNASKernelRoster(t *testing.T) {
	ks := NASKernels()
	if len(ks) != 5 {
		t.Fatalf("got %d kernels, want 5", len(ks))
	}
	if NASKernel("cg") == nil || NASKernel("ft") != nil {
		t.Fatal("kernel lookup broken")
	}
}

func TestRunNASThroughPublicAPI(t *testing.T) {
	res, err := RunNAS(Opteron(), 4, Recommended(Opteron()), NASKernel("mg"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm <= 0 || res.Compute <= 0 || res.HugeBytes == 0 {
		t.Fatalf("suspicious result: %+v", res)
	}
}

func TestClusterNodeStatsTelemetry(t *testing.T) {
	// A small Figure 5-style exchange under the recommended placement must
	// leave per-node telemetry behind: TLB walks from the buffer fills,
	// registration-cache traffic from the rendezvous transfers.
	c, err := NewCluster(Recommended(Opteron()), 2)
	if err != nil {
		t.Fatal(err)
	}
	const size = 4 << 20
	err = c.Run(func(r *Rank) error {
		va, err := r.Malloc(size)
		if err != nil {
			return err
		}
		fill := make([]byte, size)
		for i := 0; i < 2; i++ {
			if err := r.WriteBytes(va, fill); err != nil {
				return err
			}
			if r.ID() == 0 {
				if err := r.Send(1, 9, va, size); err != nil {
					return err
				}
			} else if _, err := r.Recv(0, 9, va, size); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Size(); i++ {
		st := c.Rank(i).NodeStats()
		if st.Machine != Opteron().Name || st.Allocator != "huge" {
			t.Fatalf("rank %d identity wrong: %q %q", i, st.Machine, st.Allocator)
		}
		if st.TLB.Hits2M+st.TLB.Misses2M+st.TLB.Hits4K+st.TLB.Misses4K == 0 {
			t.Fatalf("rank %d: no TLB telemetry after buffer fills", i)
		}
		if st.Cache.Hits+st.Cache.Misses == 0 {
			t.Fatalf("rank %d: registration cache never consulted", i)
		}
		if st.Reg.Registrations == 0 || st.HCA.BusBytes == 0 {
			t.Fatalf("rank %d: transfer left no registration/DMA telemetry: %+v", i, st)
		}
	}
	sts := c.NodeStats()
	if len(sts) != 2 {
		t.Fatalf("Cluster.NodeStats returned %d snapshots, want 2", len(sts))
	}
	total := SumNodeStats(sts)
	if total.Reg.Registrations != sts[0].Reg.Registrations+sts[1].Reg.Registrations {
		t.Fatalf("SumNodeStats did not total registrations: %+v", total)
	}
}

func TestNewAllocatorKinds(t *testing.T) {
	for _, kind := range []string{"libc", "huge", "morecore", "pagesep"} {
		a, err := NewAllocator(Opteron(), kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		va, err := a.Alloc(100 << 10)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := a.Free(va); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := NewAllocator(Opteron(), "tcmalloc"); err == nil {
		t.Fatal("unknown allocator kind accepted")
	}
}

func TestIMBThroughPublicAPI(t *testing.T) {
	rs, err := IMBSendRecv(ClusterConfig{
		Machine: Opteron(), Ranks: 2,
		Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: true,
	}, []int{1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].BandwidthMBs < 1500 || rs[0].BandwidthMBs > 1900 {
		t.Fatalf("1MiB lazy hugepage bandwidth %.0f MB/s out of band", rs[0].BandwidthMBs)
	}
}

func TestWRSweepsThroughPublicAPI(t *testing.T) {
	rs, err := SGESweep(SystemP(), []int{1}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].PostTicks < 400 || rs[0].PostTicks > 700 {
		t.Fatalf("post cost %d out of the paper's band", rs[0].PostTicks)
	}
	os, err := OffsetSweep(SystemP(), []int{0, 64}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if os[1].Total() >= os[0].Total() {
		t.Fatal("offset 64 should beat offset 0")
	}
}
