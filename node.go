package repro

import (
	"repro/internal/machine"
	"repro/internal/phys"
)

// newNodeMemory builds a warmed physical memory for standalone allocator
// and registration experiments, matching the cluster's per-rank setup.
func newNodeMemory(m *machine.Machine) *phys.Memory {
	mem := phys.NewMemory(m)
	mem.Scramble(4096)
	return mem
}
