// Command offsetbench regenerates Figure 4 of the paper: work-request
// duration (TBR ticks) versus the buffer's start offset within a memory
// page, for small buffer sizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/node"
	"repro/internal/trace"
	"repro/internal/wrbench"
)

func main() {
	mach := flag.String("machine", "systemp", "machine (opteron|xeon|systemp)")
	faultsFlag := flag.String("faults", "", "deterministic fault spec, e.g. seed=7,hugecap=8,memlock=16m (see README)")
	stats := flag.Bool("stats", false, "emit per-node telemetry as JSON instead of the table")
	traceFlag := flag.String("trace", "", "write a Perfetto trace of the sweep to this file ('-' = stdout)")
	flag.Parse()
	m := machine.ByName(*mach)
	if m == nil {
		fmt.Fprintf(os.Stderr, "offsetbench: unknown machine %q\n", *mach)
		os.Exit(1)
	}
	spec, err := faults.ParseSpec(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "offsetbench: %v\n", err)
		os.Exit(1)
	}
	var col *trace.Collector
	if *traceFlag != "" {
		col = trace.NewCollector()
		col.SetMeta("tool", "offsetbench")
		col.SetMeta("machine", m.Name)
		col.SetMeta("faults", spec.String())
	}
	sizes := []int{8, 16, 32, 64}
	offsets := wrbench.DefaultOffsets()
	results, nodes, err := wrbench.OffsetSweepTrace(m, offsets, sizes, spec, col)
	if err != nil {
		fmt.Fprintf(os.Stderr, "offsetbench: %v\n", err)
		os.Exit(1)
	}
	if col != nil {
		if err := node.WriteTraceFile(*traceFlag, col); err != nil {
			fmt.Fprintf(os.Stderr, "offsetbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *stats {
		rep := node.NewReport("offsetbench", "offset-sweep", m.Name, spec.String(), nodes)
		if err := node.WriteReports(os.Stdout, []node.Report{rep}); err != nil {
			fmt.Fprintf(os.Stderr, "offsetbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("work request execution time with different offsets (%s)\n", m.Name)
	fmt.Printf("%-8s", "offset")
	for _, s := range sizes {
		fmt.Printf("  buffersize=%-4d", s)
	}
	fmt.Println()
	for _, off := range offsets {
		fmt.Printf("%-8d", off)
		for _, s := range sizes {
			for _, r := range results {
				if r.Offset == off && r.SGESize == s {
					fmt.Printf("  %-15d", r.Total())
				}
			}
		}
		fmt.Println()
	}
}
