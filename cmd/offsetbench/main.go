// Command offsetbench regenerates Figure 4 of the paper: work-request
// duration (TBR ticks) versus the buffer's start offset within a memory
// page, for small buffer sizes.
package main

import (
	"fmt"

	"repro/internal/cli"
	"repro/internal/node"
	"repro/internal/wrbench"
)

func main() {
	env := cli.New("offsetbench").
		MachineFlag("systemp").
		StatsFlag("emit per-node telemetry as JSON instead of the table").
		PolicyFlag().
		Parse()
	m := env.Machine
	sizes := []int{8, 16, 32, 64}
	offsets := wrbench.DefaultOffsets()
	results, nodes, err := wrbench.OffsetSweepPolicy(m, offsets, sizes, env.Policy, env.Spec, env.Col)
	if err != nil {
		env.Fail(err)
	}
	env.WriteTrace()
	if env.Stats {
		env.EmitReports([]node.Report{env.NewReport("offset-sweep", m.Name, nodes)})
		return
	}
	fmt.Printf("work request execution time with different offsets (%s)\n", m.Name)
	fmt.Printf("%-8s", "offset")
	for _, s := range sizes {
		fmt.Printf("  buffersize=%-4d", s)
	}
	fmt.Println()
	for _, off := range offsets {
		fmt.Printf("%-8d", off)
		for _, s := range sizes {
			for _, r := range results {
				if r.Offset == off && r.SGESize == s {
					fmt.Printf("  %-15d", r.Total())
				}
			}
		}
		fmt.Println()
	}
}
