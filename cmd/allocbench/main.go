// Command allocbench regenerates the paper's allocator claims: the
// Abinit-style trace comparison across all four allocation libraries
// (Section 2: "allocation benefits of up to 10 times"), and the Section 3
// design-choice ablations of the hugepage library (-ablate).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alloc"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/node"
	"repro/internal/trace"
	"repro/internal/workload"
)

// col is the -trace collector (nil when the flag is absent). The replay
// hosts have no virtual clock, so their timelines carry the vm/phys
// instant markers (map.huge, map.fallback, hugepool.shrink, …) at tick 0
// rather than spans — still enough to see each library's placement mix.
var col *trace.Collector

// newNode builds a fresh simulated host carrying one allocation library.
// The salt decorrelates fault schedules across the libraries compared.
func newNode(m *machine.Machine, kind node.AllocatorKind, hc *alloc.HugeConfig, spec *faults.Spec, salt uint64, traceName string) (*node.Node, error) {
	return node.New(node.Config{
		Machine: m, Allocator: kind, HugeConfig: hc,
		Faults: spec, FaultSalt: salt,
		Trace: col, TraceName: traceName,
	})
}

func main() {
	mach := flag.String("machine", "opteron", "machine (opteron|xeon|systemp)")
	ablate := flag.Bool("ablate", false, "run the hugepage-library design ablations instead")
	faultsFlag := flag.String("faults", "", "deterministic fault spec, e.g. seed=7,hugecap=8,memlock=16m (see README)")
	stats := flag.Bool("stats", false, "emit per-node telemetry as JSON instead of the table")
	traceFlag := flag.String("trace", "", "write a Perfetto trace (allocation instant markers) to this file ('-' = stdout)")
	flag.Parse()
	m := machine.ByName(*mach)
	if m == nil {
		fmt.Fprintf(os.Stderr, "allocbench: unknown machine %q\n", *mach)
		os.Exit(1)
	}
	spec, err := faults.ParseSpec(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocbench: %v\n", err)
		os.Exit(1)
	}
	if *traceFlag != "" {
		col = trace.NewCollector()
		col.SetMeta("tool", "allocbench")
		col.SetMeta("machine", m.Name)
		col.SetMeta("faults", spec.String())
	}
	writeTrace := func() {
		if col == nil {
			return
		}
		if err := node.WriteTraceFile(*traceFlag, col); err != nil {
			fmt.Fprintf(os.Stderr, "allocbench: %v\n", err)
			os.Exit(1)
		}
	}
	ops, slots := workload.AbinitTrace(workload.DefaultAbinitParams())

	if *ablate {
		variants := []struct {
			name   string
			mutate func(*alloc.HugeConfig)
		}{
			{"paper design (address-ordered first fit, no coalesce, metadata cache, 4K chunks)", func(c *alloc.HugeConfig) {}},
			{"ablation: coalesce on free", func(c *alloc.HugeConfig) { c.CoalesceOnFree = true }},
			{"ablation: in-band metadata (headers)", func(c *alloc.HugeConfig) { c.InBandMetadata = true }},
			{"ablation: 64K chunks", func(c *alloc.HugeConfig) { c.ChunkSize = 64 << 10 }},
			{"ablation: 4K threshold (everything huge)", func(c *alloc.HugeConfig) { c.Threshold = 4 << 10 }},
		}
		fmt.Printf("hugepage library design ablations on the Abinit trace (%s)\n", m.Name)
		var base float64
		for i, v := range variants {
			cfg := alloc.DefaultHugeConfig()
			v.mutate(&cfg)
			n, err := newNode(m, node.AllocHuge, &cfg, spec, uint64(i), fmt.Sprintf("ablate/%d", i))
			if err != nil {
				fmt.Fprintf(os.Stderr, "allocbench: %v\n", err)
				os.Exit(1)
			}
			res, err := alloc.Replay(n.Alloc, ops, slots)
			if err != nil {
				fmt.Fprintf(os.Stderr, "allocbench: %s: %v\n", v.name, err)
				os.Exit(1)
			}
			if i == 0 {
				base = float64(res.AllocTime)
			}
			fmt.Printf("%-75s %12v  (%.2fx paper design)\n", v.name, res.AllocTime,
				float64(res.AllocTime)/base)
		}
		writeTrace()
		return
	}

	mk := []struct {
		name string
		kind node.AllocatorKind
	}{
		{"libc", node.AllocLibc},
		{"hugepage-library", node.AllocHuge},
		{"libhugetlbfs-morecore", node.AllocMorecore},
		{"libhugepagealloc", node.AllocPageSep},
	}
	type row struct {
		name string
		res  alloc.ReplayResult
		st   node.Stats
	}
	rows := make([]row, 0, len(mk))
	for i, entry := range mk {
		n, err := newNode(m, entry.kind, nil, spec, uint64(i), "abinit/"+entry.name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocbench: %v\n", err)
			os.Exit(1)
		}
		res, err := alloc.Replay(n.Alloc, ops, slots)
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocbench: %s: %v\n", entry.name, err)
			os.Exit(1)
		}
		rows = append(rows, row{name: entry.name, res: res, st: n.Stats()})
	}

	if *stats {
		reports := make([]node.Report, 0, len(rows)+1)
		for _, r := range rows {
			reports = append(reports, node.NewReport(
				"allocbench", "abinit/"+r.name, m.Name, spec.String(), []node.Stats{r.st}))
		}
		// The trace never registers memory, so drive a probe host through
		// the full allocate/register path to surface memlock recoveries.
		probe, err := node.New(node.Config{
			Machine: m, Allocator: node.AllocHuge, LazyDereg: true,
			Faults: spec, FaultSalt: uint64(len(rows)),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocbench: probe host: %v\n", err)
			os.Exit(1)
		}
		if err := probe.DegradationProbe(); err != nil {
			fmt.Fprintf(os.Stderr, "allocbench: degradation probe: %v\n", err)
			os.Exit(1)
		}
		reports = append(reports, node.NewReport(
			"allocbench", "degradation-probe", m.Name, spec.String(), []node.Stats{probe.Stats()}))
		if err := node.WriteReports(os.Stdout, reports); err != nil {
			fmt.Fprintf(os.Stderr, "allocbench: %v\n", err)
			os.Exit(1)
		}
		writeTrace()
		return
	}

	fmt.Printf("allocator comparison on the Abinit-style trace (%s, %d ops)\n", m.Name, len(ops))
	fmt.Printf("%-26s %14s %10s %12s %12s\n", "library", "alloc time", "speedup", "syscalls", "peak huge MB")
	libcTime := float64(rows[0].res.AllocTime)
	for _, r := range rows {
		fmt.Printf("%-26s %14v %9.1fx %12d %12.1f\n", r.name, r.res.AllocTime,
			libcTime/float64(r.res.AllocTime), r.res.Stats.Syscalls,
			float64(r.res.Stats.PeakLive)/float64(1<<20))
	}
	fmt.Println("\nnote: libhugepagealloc is additionally not thread safe (modelled; see DESIGN.md)")
	writeTrace()
}
