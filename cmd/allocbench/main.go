// Command allocbench regenerates the paper's allocator claims: the
// Abinit-style trace comparison across all four allocation libraries
// (Section 2: "allocation benefits of up to 10 times"), and the Section 3
// design-choice ablations of the hugepage library (-ablate).
package main

import (
	"flag"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/cli"
	"repro/internal/node"
	"repro/internal/workload"
)

// env carries the shared flag configuration. The -trace collector (when
// armed) records allocation instant markers: the replay hosts have no
// virtual clock, so their timelines carry the vm/phys markers (map.huge,
// map.fallback, hugepool.shrink, …) at tick 0 rather than spans — still
// enough to see each library's placement mix.
var env *cli.Env

// newNode builds a fresh simulated host carrying one allocation library.
// The salt decorrelates fault schedules across the libraries compared.
func newNode(kind node.AllocatorKind, hc *alloc.HugeConfig, salt uint64, traceName string) (*node.Node, error) {
	return node.New(node.Config{
		Machine: env.Machine, Allocator: kind, HugeConfig: hc,
		Faults: env.Spec, FaultSalt: salt,
		Trace: env.Col, TraceName: traceName,
		Policy: env.Policy,
	})
}

func main() {
	ablate := flag.Bool("ablate", false, "run the hugepage-library design ablations instead")
	env = cli.New("allocbench").
		MachineFlag("opteron").
		StatsFlag("emit per-node telemetry as JSON instead of the table").
		PolicyFlag().
		Parse()
	m := env.Machine
	ops, slots := workload.AbinitTrace(workload.DefaultAbinitParams())

	if *ablate {
		variants := []struct {
			name   string
			mutate func(*alloc.HugeConfig)
		}{
			{"paper design (address-ordered first fit, no coalesce, metadata cache, 4K chunks)", func(c *alloc.HugeConfig) {}},
			{"ablation: coalesce on free", func(c *alloc.HugeConfig) { c.CoalesceOnFree = true }},
			{"ablation: in-band metadata (headers)", func(c *alloc.HugeConfig) { c.InBandMetadata = true }},
			{"ablation: 64K chunks", func(c *alloc.HugeConfig) { c.ChunkSize = 64 << 10 }},
			{"ablation: 4K threshold (everything huge)", func(c *alloc.HugeConfig) { c.Threshold = 4 << 10 }},
		}
		fmt.Printf("hugepage library design ablations on the Abinit trace (%s)\n", m.Name)
		var base float64
		for i, v := range variants {
			cfg := alloc.DefaultHugeConfig()
			v.mutate(&cfg)
			n, err := newNode(node.AllocHuge, &cfg, uint64(i), fmt.Sprintf("ablate/%d", i))
			if err != nil {
				env.Fail(err)
			}
			res, err := alloc.Replay(n.Alloc, ops, slots)
			if err != nil {
				env.Failf("%s: %v", v.name, err)
			}
			if i == 0 {
				base = float64(res.AllocTime)
			}
			fmt.Printf("%-75s %12v  (%.2fx paper design)\n", v.name, res.AllocTime,
				float64(res.AllocTime)/base)
		}
		env.WriteTrace()
		return
	}

	mk := []struct {
		name string
		kind node.AllocatorKind
	}{
		{"libc", node.AllocLibc},
		{"hugepage-library", node.AllocHuge},
		{"libhugetlbfs-morecore", node.AllocMorecore},
		{"libhugepagealloc", node.AllocPageSep},
	}
	type row struct {
		name string
		res  alloc.ReplayResult
		st   node.Stats
	}
	rows := make([]row, 0, len(mk))
	for i, entry := range mk {
		n, err := newNode(entry.kind, nil, uint64(i), "abinit/"+entry.name)
		if err != nil {
			env.Fail(err)
		}
		res, err := alloc.Replay(n.Alloc, ops, slots)
		if err != nil {
			env.Failf("%s: %v", entry.name, err)
		}
		rows = append(rows, row{name: entry.name, res: res, st: n.Stats()})
	}

	if env.Stats {
		reports := make([]node.Report, 0, len(rows)+1)
		for _, r := range rows {
			reports = append(reports, env.NewReport("abinit/"+r.name, m.Name, []node.Stats{r.st}))
		}
		// The trace never registers memory, so drive a probe host through
		// the full allocate/register path to surface memlock recoveries.
		probe, err := node.New(node.Config{
			Machine: m, Allocator: node.AllocHuge, LazyDereg: true,
			Faults: env.Spec, FaultSalt: uint64(len(rows)),
			Policy: env.Policy,
		})
		if err != nil {
			env.Failf("probe host: %v", err)
		}
		if err := probe.DegradationProbe(); err != nil {
			env.Failf("degradation probe: %v", err)
		}
		reports = append(reports, env.NewReport("degradation-probe", m.Name, []node.Stats{probe.Stats()}))
		env.EmitReports(reports)
		env.WriteTrace()
		return
	}

	fmt.Printf("allocator comparison on the Abinit-style trace (%s, %d ops)\n", m.Name, len(ops))
	fmt.Printf("%-26s %14s %10s %12s %12s\n", "library", "alloc time", "speedup", "syscalls", "peak huge MB")
	libcTime := float64(rows[0].res.AllocTime)
	for _, r := range rows {
		fmt.Printf("%-26s %14v %9.1fx %12d %12.1f\n", r.name, r.res.AllocTime,
			libcTime/float64(r.res.AllocTime), r.res.Stats.Syscalls,
			float64(r.res.Stats.PeakLive)/float64(1<<20))
	}
	fmt.Println("\nnote: libhugepagealloc is additionally not thread safe (modelled; see DESIGN.md)")
	env.WriteTrace()
}
