// Command allocbench regenerates the paper's allocator claims: the
// Abinit-style trace comparison across all four allocation libraries
// (Section 2: "allocation benefits of up to 10 times"), and the Section 3
// design-choice ablations of the hugepage library (-ablate).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alloc"
	"repro/internal/machine"
	"repro/internal/node"
	"repro/internal/workload"
)

// newAlloc builds one allocation library on a fresh simulated host.
func newAlloc(m *machine.Machine, kind node.AllocatorKind, hc *alloc.HugeConfig) (alloc.Allocator, error) {
	n, err := node.New(node.Config{Machine: m, Allocator: kind, HugeConfig: hc})
	if err != nil {
		return nil, err
	}
	return n.Alloc, nil
}

func main() {
	mach := flag.String("machine", "opteron", "machine (opteron|xeon|systemp)")
	ablate := flag.Bool("ablate", false, "run the hugepage-library design ablations instead")
	flag.Parse()
	m := machine.ByName(*mach)
	if m == nil {
		fmt.Fprintf(os.Stderr, "allocbench: unknown machine %q\n", *mach)
		os.Exit(1)
	}
	ops, slots := workload.AbinitTrace(workload.DefaultAbinitParams())

	if *ablate {
		variants := []struct {
			name   string
			mutate func(*alloc.HugeConfig)
		}{
			{"paper design (address-ordered first fit, no coalesce, metadata cache, 4K chunks)", func(c *alloc.HugeConfig) {}},
			{"ablation: coalesce on free", func(c *alloc.HugeConfig) { c.CoalesceOnFree = true }},
			{"ablation: in-band metadata (headers)", func(c *alloc.HugeConfig) { c.InBandMetadata = true }},
			{"ablation: 64K chunks", func(c *alloc.HugeConfig) { c.ChunkSize = 64 << 10 }},
			{"ablation: 4K threshold (everything huge)", func(c *alloc.HugeConfig) { c.Threshold = 4 << 10 }},
		}
		fmt.Printf("hugepage library design ablations on the Abinit trace (%s)\n", m.Name)
		var base float64
		for i, v := range variants {
			cfg := alloc.DefaultHugeConfig()
			v.mutate(&cfg)
			a, err := newAlloc(m, node.AllocHuge, &cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "allocbench: %v\n", err)
				os.Exit(1)
			}
			res, err := alloc.Replay(a, ops, slots)
			if err != nil {
				fmt.Fprintf(os.Stderr, "allocbench: %s: %v\n", v.name, err)
				os.Exit(1)
			}
			if i == 0 {
				base = float64(res.AllocTime)
			}
			fmt.Printf("%-75s %12v  (%.2fx paper design)\n", v.name, res.AllocTime,
				float64(res.AllocTime)/base)
		}
		return
	}

	fmt.Printf("allocator comparison on the Abinit-style trace (%s, %d ops)\n", m.Name, len(ops))
	fmt.Printf("%-26s %14s %10s %12s %12s\n", "library", "alloc time", "speedup", "syscalls", "peak huge MB")
	mk := []struct {
		name string
		kind node.AllocatorKind
	}{
		{"libc", node.AllocLibc},
		{"hugepage-library", node.AllocHuge},
		{"libhugetlbfs-morecore", node.AllocMorecore},
		{"libhugepagealloc", node.AllocPageSep},
	}
	var libcTime float64
	for i, entry := range mk {
		a, err := newAlloc(m, entry.kind, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocbench: %v\n", err)
			os.Exit(1)
		}
		res, err := alloc.Replay(a, ops, slots)
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocbench: %s: %v\n", entry.name, err)
			os.Exit(1)
		}
		if i == 0 {
			libcTime = float64(res.AllocTime)
		}
		fmt.Printf("%-26s %14v %9.1fx %12d %12.1f\n", entry.name, res.AllocTime,
			libcTime/float64(res.AllocTime), res.Stats.Syscalls,
			float64(res.Stats.PeakLive)/float64(1<<20))
	}
	fmt.Println("\nnote: libhugepagealloc is additionally not thread safe (modelled; see DESIGN.md)")
}
