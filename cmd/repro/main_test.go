package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/cli"
	"repro/internal/node"
)

func TestRunStatsEmitsValidJSON(t *testing.T) {
	env = cli.NewEnv("repro")
	var buf bytes.Buffer
	if err := runStats(&buf); err != nil {
		t.Fatal(err)
	}
	var reports []node.Report
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("-stats output is not a JSON node.Report list: %v", err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	rep := reports[0]
	if rep.Tool != "repro" || rep.Workload == "" || rep.Machine == "" {
		t.Fatalf("report identity missing: %+v", rep)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("got %d node records, want 2 (one per rank)", len(rep.Nodes))
	}
	if rep.Total.Reg.Registrations == 0 {
		t.Fatalf("report total not aggregated: %+v", rep.Total)
	}
	for i, st := range rep.Nodes {
		if st.Machine == "" || st.Allocator != "huge" {
			t.Fatalf("node %d identity missing: machine=%q allocator=%q", i, st.Machine, st.Allocator)
		}
		if st.Cache.Hits+st.Cache.Misses == 0 {
			t.Fatalf("node %d: registration cache never consulted", i)
		}
		if st.Reg.Registrations == 0 {
			t.Fatalf("node %d: no registrations recorded", i)
		}
		if st.HCA.BusBytes == 0 {
			t.Fatalf("node %d: DMA engines moved no bytes", i)
		}
	}
}
