package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/node"
)

func TestRunStatsEmitsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := runStats(&buf); err != nil {
		t.Fatal(err)
	}
	var nodes []node.Stats
	if err := json.Unmarshal(buf.Bytes(), &nodes); err != nil {
		t.Fatalf("-stats output is not a JSON node.Stats list: %v", err)
	}
	if len(nodes) != 2 {
		t.Fatalf("got %d node records, want 2 (one per rank)", len(nodes))
	}
	for i, st := range nodes {
		if st.Machine == "" || st.Allocator != "huge" {
			t.Fatalf("node %d identity missing: machine=%q allocator=%q", i, st.Machine, st.Allocator)
		}
		if st.Cache.Hits+st.Cache.Misses == 0 {
			t.Fatalf("node %d: registration cache never consulted", i)
		}
		if st.Reg.Registrations == 0 {
			t.Fatalf("node %d: no registrations recorded", i)
		}
		if st.HCA.BusBytes == 0 {
			t.Fatalf("node %d: DMA engines moved no bytes", i)
		}
	}
}
