// Command repro runs the complete evaluation of the paper — every figure
// and quantitative claim — and prints the regenerated tables in one go.
// This is the one-command path to the EXPERIMENTS.md record.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/cli"
	"repro/internal/imb"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/node"
	"repro/internal/wrbench"
)

// env carries the shared flag configuration. The -trace collector (nil
// when the flag is absent) records the E3 Figure 5 runs in full mode;
// under -stats it records the telemetry run itself.
var env *cli.Env

// runStats runs a small Figure 5 cell under the paper's recommended
// placement and emits every rank's host telemetry as JSON — the
// machine-readable per-node perf snapshot behind -stats, in the shared
// []node.Report schema.
func runStats(w io.Writer) error {
	m := machine.Opteron()
	_, nodes, err := imb.SendRecvNodeStats(mpi.Config{
		Machine:   m,
		Ranks:     2,
		Allocator: mpi.AllocHuge,
		LazyDereg: true,
		HugeATT:   true,
		Faults:    env.Spec,
		Trace:     env.Col,
		Policy:    env.Policy,
	}, []int{64 << 10, 1 << 20})
	if err != nil {
		return err
	}
	return node.WriteReports(w, []node.Report{env.NewReport("sendrecv", m.Name, nodes)})
}

func main() {
	quick := flag.Bool("quick", false, "skip the slow NAS runs")
	env = cli.New("repro").
		StatsFlag("emit per-node telemetry of a small Figure 5 run as JSON and exit").
		PolicyFlag().
		Parse()
	spec, col := env.Spec, env.Col

	if env.Stats {
		if err := runStats(os.Stdout); err != nil {
			env.Fail(err)
		}
		env.WriteTrace()
		return
	}

	fmt.Println("=== E1 (Figure 3): work-request duration by SGE count (IBM System p, TBR ticks) ===")
	sysp := machine.SystemP()
	rs, _, err := wrbench.SGESweepPolicy(sysp, []int{1, 2, 4, 8, 128}, []int{1, 64, 128, 512, 4096}, env.Policy, spec, nil)
	if err != nil {
		env.Fail(err)
	}
	fmt.Printf("%6s %8s %10s %10s %10s\n", "sges", "sgesize", "post", "poll", "total")
	for _, r := range rs {
		fmt.Printf("%6d %8d %10d %10d %10d\n", r.SGEs, r.SGESize, r.PostTicks, r.PollTicks, r.Total())
	}
	one, four := findWR(rs, 1, 128), findWR(rs, 4, 128)
	fmt.Printf("paper: 4 SGEs at <=128B only ~14%% more costly; measured: %+.1f%%\n",
		100*(float64(four.Total())/float64(one.Total())-1))
	p1, p128 := findWR(rs, 1, 64), findWR(rs, 128, 64)
	fmt.Printf("paper: post(128 SGEs) ~ 3x post(1 SGE); measured: %.2fx\n\n",
		float64(p128.PostTicks)/float64(p1.PostTicks))

	fmt.Println("=== E2 (Figure 4): work-request duration by buffer offset (IBM System p) ===")
	or, _, err := wrbench.OffsetSweepPolicy(sysp, []int{0, 16, 32, 48, 64, 80, 96, 128}, []int{8, 64}, env.Policy, spec, nil)
	if err != nil {
		env.Fail(err)
	}
	fmt.Printf("%8s %14s %14s\n", "offset", "8B total", "64B total")
	for _, off := range []int{0, 16, 32, 48, 64, 80, 96, 128} {
		var a, b int64
		for _, r := range or {
			if r.Offset != off {
				continue
			}
			if r.SGESize == 8 {
				a = int64(r.Total())
			} else {
				b = int64(r.Total())
			}
		}
		fmt.Printf("%8d %14d %14d\n", off, a, b)
	}
	fmt.Println("paper: up to 8% swing, optimum near offset 64")
	fmt.Println()

	fmt.Println("=== E3 (Figure 5): IMB SendRecv bandwidth, AMD Opteron (MB/s) ===")
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	curves, err := imb.RunFig5Policy(machine.Opteron(), sizes, 2, env.Policy, spec, col)
	if err != nil {
		env.Fail(err)
	}
	if col != nil {
		env.WriteTrace()
		fmt.Printf("trace: E3 Figure 5 runs written to %s\n", env.TracePath())
	}
	fmt.Printf("%-10s", "size[KB]")
	for _, c := range imb.Fig5Configs() {
		fmt.Printf(" %28s", c.Label)
	}
	fmt.Println()
	for i, s := range sizes {
		fmt.Printf("%-10d", s/1024)
		for _, c := range imb.Fig5Configs() {
			fmt.Printf(" %28.1f", curves[c.Label][i].BandwidthMBs)
		}
		fmt.Println()
	}
	fmt.Println("paper: hugepages+no-lazy approach max (~1750); lazy curves identical for both page sizes")
	fmt.Println()

	fmt.Println("=== E4 (Section 5.1): Xeon hugepage-ATT effect (MB/s at 4 MiB) ===")
	for _, patched := range []bool{false, true} {
		r, err := imb.SendRecv(mpi.Config{
			Machine: machine.Xeon(), Ranks: 2,
			Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: patched,
			Faults: spec, Policy: env.Policy,
		}, []int{4 << 20})
		if err != nil {
			env.Fail(err)
		}
		fmt.Printf("driver patched=%-5v bandwidth=%.1f MB/s (ATT miss rate %.2f)\n",
			patched, r[0].BandwidthMBs, r[0].ATTMissRate)
	}
	fmt.Println("paper: up to +6% with 2MB translations")
	fmt.Println()

	fmt.Println("=== E9: registration cost by page size (AMD Opteron) ===")
	regs, err := imb.RegistrationSweepFaults(machine.Opteron(), []uint64{2 << 20, 8 << 20, 32 << 20}, spec)
	if err != nil {
		env.Fail(err)
	}
	for _, r := range regs {
		fmt.Printf("size %6d KB: 4K pages %12v, 2M pages %10v (%.1f%%)\n",
			r.Bytes/1024, r.SmallReg, r.HugeReg, 100*r.HugeFrac)
	}
	fmt.Println("paper: hugepage registration ~1% of small-page time")
	fmt.Println()

	fmt.Println("=== E7 (Section 2/3): allocator comparison on the Abinit trace ===")
	libcT, hugeT, err := repro.AbinitComparison(machine.Opteron())
	if err != nil {
		env.Fail(err)
	}
	fmt.Printf("libc %v, hugepage library %v -> %.1fx faster\n", libcT, hugeT,
		float64(libcT)/float64(hugeT))
	fmt.Println("paper: \"allocation benefits of up to 10 times\" (full table: cmd/allocbench)")
	fmt.Println()

	if *quick {
		fmt.Println("=== E5-E6 (Figure 6): skipped (-quick) ===")
		return
	}
	fmt.Println("=== E5-E6 (Figure 6 + PAPI): NAS benchmarks, 8 ranks ===")
	for _, m := range []*machine.Machine{machine.Opteron(), machine.SystemP()} {
		rows, err := nas.RunFig6Policy(m, 8, nil, env.Policy, spec, nil)
		if err != nil {
			env.Fail(err)
		}
		fmt.Print(nas.FormatFig6(m.Name, rows))
		fmt.Println()
	}
	fmt.Println("paper: comm >8% except MG and IS; overall all positive except IS;")
	fmt.Println("       TLB misses up to 8x with EP, except LU; EP computation still improves")
}

func findWR(rs []wrbench.Result, sges, size int) wrbench.Result {
	for _, r := range rs {
		if r.SGEs == sges && r.SGESize == size {
			return r
		}
	}
	panic("missing combination")
}
