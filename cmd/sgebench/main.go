// Command sgebench regenerates Figure 3 of the paper: send work-request
// duration (in TBR ticks, split into post and poll) for different numbers
// of scatter/gather elements over a ladder of SGE sizes.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/node"
	"repro/internal/wrbench"
)

func main() {
	counts := flag.String("sges", "1,2,4,8", "comma-separated SGE counts (Figure 3 plots 1,2,4,8; the text also discusses 128)")
	env := cli.New("sgebench").
		MachineFlag("systemp").
		StatsFlag("emit per-node telemetry as JSON instead of the table").
		PolicyFlag().
		Parse()
	m := env.Machine
	var sgeCounts []int
	for _, c := range strings.Split(*counts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil || n < 1 {
			env.Failf("bad SGE count %q", c)
		}
		sgeCounts = append(sgeCounts, n)
	}
	sizes := wrbench.DefaultSGESizes()
	results, nodes, err := wrbench.SGESweepPolicy(m, sgeCounts, sizes, env.Policy, env.Spec, env.Col)
	if err != nil {
		env.Fail(err)
	}
	env.WriteTrace()
	if env.Stats {
		env.EmitReports([]node.Report{env.NewReport("sge-sweep", m.Name, nodes)})
		return
	}
	fmt.Printf("send operations with different number of scatter gather elements (%s)\n", m.Name)
	fmt.Printf("%-10s", "SGE size")
	for _, c := range sgeCounts {
		fmt.Printf("%8d SGE%s post/poll", c, map[bool]string{true: "s", false: " "}[c > 1])
	}
	fmt.Println()
	for _, size := range sizes {
		fmt.Printf("%-10d", size)
		for _, c := range sgeCounts {
			for _, r := range results {
				if r.SGEs == c && r.SGESize == size {
					fmt.Printf("%12d /%9d", r.PostTicks, r.PollTicks)
				}
			}
		}
		fmt.Println()
	}
}
