// Command sgebench regenerates Figure 3 of the paper: send work-request
// duration (in TBR ticks, split into post and poll) for different numbers
// of scatter/gather elements over a ladder of SGE sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/node"
	"repro/internal/trace"
	"repro/internal/wrbench"
)

func main() {
	mach := flag.String("machine", "systemp", "machine (opteron|xeon|systemp); the paper used the IBM System p")
	counts := flag.String("sges", "1,2,4,8", "comma-separated SGE counts (Figure 3 plots 1,2,4,8; the text also discusses 128)")
	faultsFlag := flag.String("faults", "", "deterministic fault spec, e.g. seed=7,hugecap=8,memlock=16m (see README)")
	stats := flag.Bool("stats", false, "emit per-node telemetry as JSON instead of the table")
	traceFlag := flag.String("trace", "", "write a Perfetto trace of the sweep to this file ('-' = stdout)")
	flag.Parse()

	m := machine.ByName(*mach)
	if m == nil {
		fmt.Fprintf(os.Stderr, "sgebench: unknown machine %q\n", *mach)
		os.Exit(1)
	}
	spec, err := faults.ParseSpec(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgebench: %v\n", err)
		os.Exit(1)
	}
	var sgeCounts []int
	for _, c := range strings.Split(*counts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "sgebench: bad SGE count %q\n", c)
			os.Exit(1)
		}
		sgeCounts = append(sgeCounts, n)
	}
	var col *trace.Collector
	if *traceFlag != "" {
		col = trace.NewCollector()
		col.SetMeta("tool", "sgebench")
		col.SetMeta("machine", m.Name)
		col.SetMeta("faults", spec.String())
	}
	sizes := wrbench.DefaultSGESizes()
	results, nodes, err := wrbench.SGESweepTrace(m, sgeCounts, sizes, spec, col)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgebench: %v\n", err)
		os.Exit(1)
	}
	if col != nil {
		if err := node.WriteTraceFile(*traceFlag, col); err != nil {
			fmt.Fprintf(os.Stderr, "sgebench: %v\n", err)
			os.Exit(1)
		}
	}
	if *stats {
		rep := node.NewReport("sgebench", "sge-sweep", m.Name, spec.String(), nodes)
		if err := node.WriteReports(os.Stdout, []node.Report{rep}); err != nil {
			fmt.Fprintf(os.Stderr, "sgebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("send operations with different number of scatter gather elements (%s)\n", m.Name)
	fmt.Printf("%-10s", "SGE size")
	for _, c := range sgeCounts {
		fmt.Printf("%8d SGE%s post/poll", c, map[bool]string{true: "s", false: " "}[c > 1])
	}
	fmt.Println()
	for _, size := range sizes {
		fmt.Printf("%-10d", size)
		for _, c := range sgeCounts {
			for _, r := range results {
				if r.SGEs == c && r.SGESize == size {
					fmt.Printf("%12d /%9d", r.PostTicks, r.PollTicks)
				}
			}
		}
		fmt.Println()
	}
}
