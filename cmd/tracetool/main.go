// Command tracetool analyzes the Perfetto trace files the other tools
// write with -trace: the per-layer virtual-time breakdown of every
// traced process (default), the critical path through the run (-cp),
// the slowest spans with their registration / ATT-miss attribution
// (-top), and a self-check that the breakdown partitions the run
// exactly (-check, the CI gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/simtime"
	"repro/internal/trace"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
	os.Exit(1)
}

func main() {
	top := flag.Int("top", 0, "print the N slowest spans instead of the breakdown")
	cp := flag.Bool("cp", false, "print the critical path instead of the breakdown")
	check := flag.Bool("check", false, "verify every process's breakdown sums exactly to the trace's elapsed time")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracetool [-top N | -cp | -check] <trace.json>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	d, err := trace.ParsePerfetto(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	switch {
	case *check:
		runCheck(d)
	case *cp:
		runCP(d)
	case *top > 0:
		runTop(d, *top)
	default:
		runBreakdown(d)
	}
}

// ticksStr renders a tick count with its microsecond equivalent.
func ticksStr(t simtime.Ticks) string {
	return fmt.Sprintf("%d (%.2fus)", int64(t), t.Micros())
}

// runBreakdown prints every process's per-layer partition of the run.
func runBreakdown(d *trace.Data) {
	elapsed := d.Elapsed()
	fmt.Printf("trace: %d processes, %d spans, %d events, elapsed %s\n",
		len(d.Procs), len(d.Spans), len(d.Events), ticksStr(elapsed))
	for _, v := range sortedMeta(d.Meta) {
		fmt.Printf("  %s\n", v)
	}
	fmt.Println()
	for _, b := range d.Breakdowns() {
		fmt.Printf("%s (pid %d)\n", b.Name, b.PID)
		layers := make([]string, 0, len(b.Self))
		for l := range b.Self {
			layers = append(layers, l)
		}
		sort.Strings(layers)
		for _, l := range layers {
			fmt.Printf("  %-10s %16d  %5.1f%%\n", l, int64(b.Self[l]), pct(b.Self[l], elapsed))
		}
		fmt.Printf("  %-10s %16d  %5.1f%%\n", "idle", int64(b.Idle), pct(b.Idle, elapsed))
		fmt.Printf("  %-10s %16d  (total = elapsed)\n", "total", int64(b.Total()))
		if b.SendTrack > 0 {
			fmt.Printf("  %-10s %16d  (overlaps main track)\n", "send-half", int64(b.SendTrack))
		}
		if b.Adapter > 0 {
			fmt.Printf("  %-10s %16d  (overlaps main track)\n", "adapter", int64(b.Adapter))
		}
	}
	fmt.Println()
	totals, idle := d.LayerTotals()
	fmt.Println("all processes:")
	layers := make([]string, 0, len(totals))
	for l := range totals {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	for _, l := range layers {
		fmt.Printf("  %-10s %16d\n", l, int64(totals[l]))
	}
	fmt.Printf("  %-10s %16d\n", "idle", int64(idle))
}

// sortedMeta renders the otherData annotations deterministically.
func sortedMeta(meta map[string]string) []string {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		if k == "tickHz" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%s", k, meta[k]))
	}
	return out
}

func pct(part, whole simtime.Ticks) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// runTop prints the n slowest spans with their annotations.
func runTop(d *trace.Data, n int) {
	procName := map[int]string{}
	for _, p := range d.Procs {
		procName[p.PID] = p.Name
	}
	fmt.Printf("%-18s %-10s %-16s %14s %14s  %s\n",
		"process", "layer", "span", "start", "dur", "args")
	for _, s := range d.TopSlow(n) {
		fmt.Printf("%-18s %-10s %-16s %14d %14d  %s\n",
			procName[s.PID], s.Layer, s.Name, int64(s.Start), int64(s.Dur), argsStr(s.Args))
	}
}

func argsStr(args map[string]int64) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, args[k]))
	}
	return strings.Join(parts, " ")
}

// runCP prints the critical path in chronological order.
func runCP(d *trace.Data) {
	steps := d.CriticalPath()
	if len(steps) == 0 {
		fmt.Println("no MPI spans in trace; critical path needs an mpi-layer run")
		return
	}
	var onPath simtime.Ticks
	fmt.Printf("%-6s %-18s %-16s %14s %14s\n", "via", "process", "span", "start", "dur")
	for _, st := range steps {
		fmt.Printf("%-6s %-18s %-16s %14d %14d\n",
			st.Via, st.Proc, st.Span.Name, int64(st.Span.Start), int64(st.Span.Dur))
		onPath += st.Span.Dur
	}
	last := steps[len(steps)-1].Span
	fmt.Printf("\n%d steps, path span time %s, ends at %s of %s elapsed\n",
		len(steps), ticksStr(onPath), ticksStr(last.End()), ticksStr(d.Elapsed()))
}

// runCheck is the acceptance gate: every process's per-layer partition
// must sum exactly to the trace's elapsed virtual time.
func runCheck(d *trace.Data) {
	elapsed := d.Elapsed()
	bad := 0
	for _, b := range d.Breakdowns() {
		if b.Total() != elapsed {
			fmt.Printf("FAIL %s (pid %d): total %d != elapsed %d\n",
				b.Name, b.PID, int64(b.Total()), int64(elapsed))
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("%d of %d processes failed the partition check\n", bad, len(d.Procs))
		os.Exit(1)
	}
	fmt.Printf("OK: %d processes, every per-layer breakdown sums to elapsed %s\n",
		len(d.Procs), ticksStr(elapsed))
}
