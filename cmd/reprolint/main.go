// Command reprolint is the repo's multichecker: it runs every
// internal/analysis analyzer over the module and exits non-zero on any
// diagnostic. CI runs it on each push; locally, `make lint` or
//
//	go run ./cmd/reprolint ./...
//
// checks the whole tree (test files included). The analyzers enforce
// the invariants behind the byte-identical same-seed guarantee — see
// DESIGN.md §7:
//
//	determinism   no wall clocks or unseeded entropy outside
//	              internal/simtime and internal/faults
//	maporder      no map-iteration-ordered output in report paths
//	statspairing  gauge counters have paired inc/dec accounting
//	nilspec       nil-safe types guard every exported pointer method
//	schedonly     no raw goroutines/channels/WaitGroups in simulation
//	              packages; blocking goes through internal/sched
//	timeflow      interprocedural taint: wall-clock/entropy values must
//	              not flow into trace spans or benchmark reports
//	tickunits     simtime.Ticks and nanoseconds convert only through
//	              the From*/Nanos constructors; no sub-tick constants
//	parkflow      park-capable sched calls only from task context;
//	              gate acquisition order is globally consistent
//
// Flags:
//
//	-list              print the analyzers and exit
//	-tests=false       skip _test.go files
//	-only=a,b          run only the named analyzers
//	-format=text|sarif diagnostic output format (sarif is SARIF 2.1.0,
//	                   byte-identical across runs, for code scanning)
//	-fix               apply suggested fixes to the source tree; only
//	                   findings without a machine fix still fail the run
//	-baseline=f        report only findings not suppressed by baseline
//	                   file f (diff-aware mode)
//	-write-baseline=f  write the current findings to baseline file f
//	                   and exit 0
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nilspec"
	"repro/internal/analysis/parkflow"
	"repro/internal/analysis/schedonly"
	"repro/internal/analysis/statspairing"
	"repro/internal/analysis/tickunits"
	"repro/internal/analysis/timeflow"
)

var suite = []*analysis.Analyzer{
	determinism.Analyzer,
	maporder.Analyzer,
	nilspec.Analyzer,
	parkflow.Analyzer,
	schedonly.Analyzer,
	statspairing.Analyzer,
	tickunits.Analyzer,
	timeflow.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	format := flag.String("format", "text", "output format: text or sarif")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source tree")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	flag.Parse()
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "reprolint: unknown -format %q (valid: text, sarif)\n", *format)
		os.Exit(2)
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	root, modulePath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.NewLoader(root, modulePath, *tests).Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err = filterPackages(pkgs, root, modulePath, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	if *fix {
		findings, err = applyFixes(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
	}
	// Everything downstream — text lines, SARIF URIs, baseline keys —
	// speaks module-relative paths, so baselines and SARIF artifacts
	// stay portable across checkouts.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}
	if *writeBaseline != "" {
		data, err := analysis.NewBaseline(findings).Encode()
		if err == nil {
			err = os.WriteFile(*writeBaseline, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "reprolint: wrote %d suppression(s) to %s\n", len(findings), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
		baseline, err := analysis.DecodeBaseline(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
		findings = baseline.Filter(findings)
	}
	switch *format {
	case "sarif":
		out, err := analysis.SARIF(analyzers, findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d diagnostic(s)\n", len(findings))
		os.Exit(1)
	}
}

// applyFixes writes every suggested fix back to the source tree and
// returns only the findings that carried no fix — those still need a
// human and keep the run red; everything fixed is considered resolved.
func applyFixes(findings []analysis.Finding) ([]analysis.Finding, error) {
	fixed, err := analysis.ApplyFixes(findings)
	if err != nil {
		return nil, err
	}
	files := make([]string, 0, len(fixed))
	for f := range fixed {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if err := os.WriteFile(f, fixed[f], 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "reprolint: rewrote %s\n", f)
	}
	var rest []analysis.Finding
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			rest = append(rest, f)
		}
	}
	return rest, nil
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			valid := make([]string, 0, len(suite))
			for _, a := range suite {
				valid = append(valid, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q; valid analyzers: %s", name, strings.Join(valid, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// findModule walks up from the working directory to go.mod and reads
// the module path from it.
func findModule() (root, modulePath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// filterPackages narrows the loaded set to the requested patterns:
// "./..." (or no argument) keeps everything; "./dir/..." keeps a
// subtree; "./dir" keeps one directory. Patterns resolve relative to
// the working directory, so reprolint behaves like go vet from any
// directory in the module.
func filterPackages(pkgs []*analysis.Package, root, modulePath string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var out []*analysis.Package
	kept := make(map[*analysis.Package]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		dir := filepath.Clean(filepath.Join(cwd, pat))
		matched := false
		for _, p := range pkgs {
			ok := p.Dir == dir || (recursive && strings.HasPrefix(p.Dir+string(filepath.Separator), dir+string(filepath.Separator)))
			if ok && !kept[p] {
				kept[p] = true
				out = append(out, p)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages under %s", pat, root)
		}
	}
	return out, nil
}
