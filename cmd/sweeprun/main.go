// Command sweeprun executes a declarative experiment grid — workloads ×
// machines × placement strategies × fault specs, replicated over seeds —
// on a worker pool, and emits the canonical BENCH_<name>.json document
// with per-cell statistics and paired strategy comparisons. With
// -baseline and -gate it compares the run against a committed baseline
// and exits non-zero naming every regressed cell; any cell whose run
// fails also produces a non-zero exit naming the cell, without aborting
// sibling cells. With -cache the run shares a content-addressed result
// store (the same store cmd/sweepd serves from): replicates whose key —
// workload, machine, strategy, faults, seed, ranks, schema version and
// the module code fingerprint — already has an entry are served from it
// instead of executing, so a re-run of an unchanged grid executes zero
// cells and reproduces the same deterministic bytes.
//
// Usage:
//
//	sweeprun -grid seed -o BENCH_seed.json
//	sweeprun -grid smoke -workers 8 -table
//	sweeprun -grid seed -baseline BENCH_seed.json -gate -tol 5
//	sweeprun -grid @mygrid.json -trace slowest.json
//	sweeprun -grid scale -stripped BENCH_scale.det.json
//	sweeprun -grid seed -cache /var/tmp/sweepcache -o BENCH_seed.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cas"
	"repro/internal/cli"
	"repro/internal/node"
	"repro/internal/sweep"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sweeprun: %v\n", err)
	os.Exit(1)
}

// listPad indents a grid's dimension-breakdown lines under its summary
// row in -list output.
const listPad = "          "

func main() {
	gridArg := flag.String("grid", "seed", "grid to run: a built-in name (see -list) or @file.json")
	out := flag.String("o", "-", "write the BENCH document to this file ('-' = stdout)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	baseline := flag.String("baseline", "", "BENCH document to gate against")
	gate := flag.Bool("gate", false, "fail (non-zero exit) on any cell regressed beyond -tol vs -baseline")
	tol := flag.Float64("tol", 5, "gate tolerance in percent of the baseline primary-metric mean")
	table := flag.Bool("table", false, "print the statistics and paired-comparison tables to stderr")
	stripped := flag.String("stripped", "", "also write a copy with wall-clock metrics stripped — the byte-comparable deterministic view")
	traceFlag := flag.String("trace", "", "re-run the slowest cell with tracing and write the Perfetto trace here")
	requireBest := flag.String("require-best", "", "fail unless this strategy is best-or-tied on the primary metric in every cell group")
	cacheDir := flag.String("cache", cli.EnvDefault("CACHE", ""), "content-addressed result store directory ('' = no caching; env REPRO_CACHE)")
	cacheMax := flag.String("cache-max", cli.EnvDefault("CACHE_MAX", "0"), "cache size cap, bytes with optional k/m/g suffix (0 = uncapped; env REPRO_CACHE_MAX)")
	list := flag.Bool("list", false, "list built-in grids, workloads and strategies, then exit")
	flag.Parse()

	if *list {
		fmt.Println("grids:")
		for _, g := range sweep.BuiltinGrids() {
			cells, runs, err := g.Counts()
			if err != nil {
				fail(err)
			}
			faults := len(g.Faults)
			if faults == 0 {
				faults = 1
			}
			fmt.Printf("  %-8s %d workload(s) x %d machine(s) x %d strategy(ies) x %d fault spec(s) x %d seed(s) = %d cell(s), %d run(s)\n",
				g.Name, len(g.Workloads), len(g.Machines), len(g.Strategies), faults, len(g.Seeds), cells, runs)
			fmt.Printf("%s workloads:  %s\n", listPad, strings.Join(g.Workloads, ", "))
			fmt.Printf("%s strategies: %s\n", listPad, strings.Join(g.Strategies, ", "))
			if len(g.Faults) > 0 {
				fmt.Printf("%s faults:     %s\n", listPad, strings.Join(g.Faults, "; "))
			}
			if g.Ranks > 0 {
				fmt.Printf("%s ranks:      %d\n", listPad, g.Ranks)
			}
		}
		fmt.Println("workloads:")
		for _, w := range sweep.Workloads() {
			dir := "lower is better"
			if w.HigherIsBetter {
				dir = "higher is better"
			}
			fmt.Printf("  %-14s primary %s (%s)\n", w.Name, w.Primary, dir)
		}
		fmt.Println("strategies:")
		for _, s := range sweep.Strategies() {
			pol := s.Policy
			if pol == "" {
				pol = "-"
			}
			fmt.Printf("  %-16s allocator=%s lazy_dereg=%v huge_att=%v policy=%s\n", s.Name, s.Allocator, s.LazyDereg, s.HugeATT, pol)
		}
		return
	}

	grid, err := sweep.LoadGrid(*gridArg)
	if err != nil {
		fail(err)
	}
	opts := sweep.Options{Workers: *workers}
	var execStats sweep.ExecStats
	if *cacheDir != "" {
		maxBytes, err := cli.ParseSize(*cacheMax)
		if err != nil {
			fail(err)
		}
		store, err := cas.Open(*cacheDir, maxBytes)
		if err != nil {
			fail(err)
		}
		opts.Cache = store
		opts.Stats = &execStats
	}
	bench, runErrs, err := sweep.Execute(grid, opts)
	if err != nil {
		fail(err)
	}
	if err := bench.WriteFile(*out); err != nil {
		fail(err)
	}
	if opts.Cache != nil {
		st := opts.Cache.Stats()
		fmt.Fprintf(os.Stderr, "sweeprun: cache: executed=%d cached=%d failed=%d hits=%d misses=%d evictions=%d corruptions=%d entries=%d bytes=%d\n",
			execStats.RunsExecuted, execStats.RunsCached, execStats.RunsFailed,
			st.Hits, st.Misses, st.Evictions, st.Corruptions, st.Entries, st.Bytes)
	}
	if *table {
		fmt.Fprint(os.Stderr, sweep.FormatCells(bench))
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, sweep.FormatComparisons(bench))
	}

	if *traceFlag != "" {
		slowest := sweep.SlowestCell(bench)
		if slowest == "" {
			fail(fmt.Errorf("no completed cell to trace"))
		}
		col, err := sweep.TraceCell(grid, slowest)
		if err != nil {
			fail(err)
		}
		if err := node.WriteTraceFile(*traceFlag, col); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "sweeprun: slowest cell %s traced to %s\n", slowest, *traceFlag)
	}

	failed := false
	for _, re := range runErrs {
		fmt.Fprintf(os.Stderr, "sweeprun: run failed: %v\n", re)
		failed = true
	}

	if *gate {
		if *baseline == "" {
			fail(fmt.Errorf("-gate needs -baseline"))
		}
		base, err := sweep.LoadFile(*baseline)
		if err != nil {
			fail(err)
		}
		regs := sweep.Gate(bench, base, *tol)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "sweeprun: REGRESSION %s\n", r)
			failed = true
		}
		if len(regs) == 0 {
			fmt.Fprintf(os.Stderr, "sweeprun: gate ok (%d cell(s) vs %s, tolerance %.1f%%)\n",
				len(bench.Cells), *baseline, *tol)
		}
	}

	if *requireBest != "" {
		viols := sweep.RequireBest(bench, *requireBest)
		for _, v := range viols {
			fmt.Fprintf(os.Stderr, "sweeprun: NOT BEST %s\n", v)
			failed = true
		}
		if len(viols) == 0 {
			fmt.Fprintf(os.Stderr, "sweeprun: %s best-or-tied in every cell group\n", *requireBest)
		}
	}

	// Strip last: gating above still needs the wall metrics.
	if *stripped != "" {
		bench.StripWall()
		if err := bench.WriteFile(*stripped); err != nil {
			fail(err)
		}
	}

	if failed {
		os.Exit(1)
	}
}
