// Command sweepd serves the sweep engine over HTTP: submit grids, watch
// per-cell results stream in, fetch BENCH documents and Perfetto
// traces, and share the same content-addressed result store batch
// sweeprun runs populate — an unchanged grid re-submission executes
// zero cells. See internal/sweepd for the endpoint list.
//
// Usage:
//
//	sweepd -addr :8080 -cache /var/tmp/sweepcache
//	sweepd -addr :8080 -cache /var/tmp/sweepcache -cache-max 256m -workers 8
//	curl -s -X POST localhost:8080/grids -d '{"name":"smoke"}'
//
// SIGTERM/SIGINT drains: in-flight jobs complete, new submissions are
// refused with 503, then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cas"
	"repro/internal/cli"
	"repro/internal/sweepd"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", cli.EnvDefault("ADDR", "localhost:8080"), "listen address (env REPRO_ADDR)")
	cacheDir := flag.String("cache", cli.EnvDefault("CACHE", ""), "content-addressed result store directory ('' = no caching; env REPRO_CACHE)")
	cacheMax := flag.String("cache-max", cli.EnvDefault("CACHE_MAX", "0"), "cache size cap, bytes with optional k/m/g suffix (0 = uncapped; env REPRO_CACHE_MAX)")
	workers := flag.Int("workers", 0, "per-job worker pool size (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue", 8, "submission queue bound; a full queue refuses grids with 429")
	benchDir := flag.String("bench-dir", cli.EnvDefault("BENCH_DIR", "."), "directory holding committed BENCH_<name>.json baselines for GET /bench/{name}")
	flag.Parse()

	cfg := sweepd.Config{Workers: *workers, QueueCap: *queueCap, BenchDir: *benchDir}
	if *cacheDir != "" {
		maxBytes, err := cli.ParseSize(*cacheMax)
		if err != nil {
			fail(err)
		}
		store, err := cas.Open(*cacheDir, maxBytes)
		if err != nil {
			fail(err)
		}
		cfg.Cache = store
	}

	srv := sweepd.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "sweepd: draining")
		if err := srv.Drain(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "sweepd: drain: %v\n", err)
		}
		if err := httpSrv.Shutdown(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "sweepd: shutdown: %v\n", err)
		}
		close(drained)
	}()

	fmt.Fprintf(os.Stderr, "sweepd: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	<-drained
}
