// Command imbbench regenerates Figure 5 of the paper (IMB SendRecv
// bandwidth under the four page-size x lazy-deregistration
// configurations), the Xeon ATT experiment (E4), and the registration
// cost sweep (E9).
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/cli"
	"repro/internal/imb"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/node"
)

// env carries the shared flag configuration (fault spec and trace
// collector), used by every mode.
var env *cli.Env

func main() {
	att := flag.Bool("att", false, "run the Xeon ATT experiment (patched vs unpatched driver) instead of Figure 5")
	reg := flag.Bool("reg", false, "run the registration-cost sweep instead of Figure 5")
	ranks := flag.Int("ranks", 0, "rank count for the SendRecv-chain modes (0 = mode default: 2, Exchange 4)")
	pingpong := flag.Bool("pingpong", false, "run the IMB PingPong latency test instead of Figure 5")
	exchange := flag.Bool("exchange", false, "run the IMB Exchange test instead of Figure 5")
	env = cli.New("imbbench").
		MachineFlag("opteron").
		StatsFlag("run a short SendRecv ladder and emit per-node telemetry as JSON").
		PolicyFlag().
		Parse()
	m := env.Machine
	switch {
	case env.Stats:
		runStats(m, orDefault(*ranks, 2))
	case *reg:
		runReg(m)
	case *att:
		runATT(m, orDefault(*ranks, 2))
	case *pingpong:
		runPingPong(m)
	case *exchange:
		runExchange(m, orDefault(*ranks, 4))
	default:
		runFig5(m, orDefault(*ranks, 2))
	}
	env.WriteTrace()
}

// orDefault substitutes a mode's default rank count for the flag's
// unset zero value.
func orDefault(ranks, def int) int {
	if ranks == 0 {
		return def
	}
	return ranks
}

// runStats runs the recommended-placement SendRecv over a short size
// ladder and prints every rank's host telemetry as JSON.
func runStats(m *machine.Machine, ranks int) {
	_, nodes, err := imb.SendRecvNodeStats(mpi.Config{
		Machine: m, Ranks: ranks,
		Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: m.HCA.SupportsHugeATT,
		Faults: env.Spec, Trace: env.Col, Policy: env.Policy,
	}, []int{64 << 10, 1 << 20, 4 << 20})
	if err != nil {
		env.Fail(err)
	}
	env.EmitReports([]node.Report{env.NewReport("sendrecv", m.Name, nodes)})
}

func runPingPong(m *machine.Machine) {
	sizes := []int{0, 1, 64, 1024, 8 << 10, 64 << 10, 1 << 20}
	rs, err := imb.PingPong(mpi.Config{
		Machine: m, Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: true,
		Faults: env.Spec, Trace: env.Col, Policy: env.Policy,
	}, sizes)
	if err != nil {
		env.Fail(err)
	}
	fmt.Printf("IMB PingPong (%s)\n%-12s %14s %14s\n", m.Name, "bytes", "latency [us]", "ticks")
	for _, r := range rs {
		fmt.Printf("%-12d %14.2f %14d\n", r.Bytes, r.LatencyUsec, r.LatencyTicks)
	}
}

func runExchange(m *machine.Machine, ranks int) {
	sizes := []int{4 << 10, 64 << 10, 1 << 20}
	rs, err := imb.Exchange(mpi.Config{
		Machine: m, Ranks: ranks, Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: true,
		Faults: env.Spec, Trace: env.Col, Policy: env.Policy,
	}, sizes)
	if err != nil {
		env.Fail(err)
	}
	fmt.Printf("IMB Exchange, %d ranks (%s)\n%-12s %14s\n", ranks, m.Name, "bytes", "MB/s")
	for _, r := range rs {
		fmt.Printf("%-12d %14.1f\n", r.Bytes, r.BandwidthMBs)
	}
}

func runFig5(m *machine.Machine, ranks int) {
	sizes := imb.DefaultSizes()
	curves, err := imb.RunFig5Policy(m, sizes, ranks, env.Policy, env.Spec, env.Col)
	if err != nil {
		env.Fail(err)
	}
	labels := make([]string, 0, len(curves))
	for _, c := range imb.Fig5Configs() {
		labels = append(labels, c.Label)
	}
	fmt.Printf("bandwidth comparison with different page sizes (%s)\n", m.Name)
	fmt.Printf("%-14s", "size [KB]")
	for _, l := range labels {
		fmt.Printf("  %-32s", l)
	}
	fmt.Println()
	for i, size := range sizes {
		fmt.Printf("%-14d", size/1024)
		for _, l := range labels {
			fmt.Printf("  %-32.1f", curves[l][i].BandwidthMBs)
		}
		fmt.Println()
	}
}

func runATT(m *machine.Machine, ranks int) {
	sizes := []int{1 << 20, 4 << 20, 16 << 20}
	fmt.Printf("hugepage ATT-entry effect with lazy deregistration (%s)\n", m.Name)
	fmt.Printf("%-12s %16s %16s %8s\n", "size [KB]", "4K entries MB/s", "2M entries MB/s", "gain")
	run := func(patched bool) []imb.SendRecvResult {
		prefix := "unpatched/"
		if patched {
			prefix = "patched/"
		}
		rs, err := imb.SendRecv(mpi.Config{
			Machine: m, Ranks: ranks,
			Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: patched,
			Faults: env.Spec, Trace: env.Col, TracePrefix: prefix,
			Policy: env.Policy,
		}, sizes)
		if err != nil {
			env.Fail(err)
		}
		return rs
	}
	up, p := run(false), run(true)
	for i, size := range sizes {
		fmt.Printf("%-12d %16.1f %16.1f %+7.1f%%\n", size/1024,
			up[i].BandwidthMBs, p[i].BandwidthMBs,
			100*(p[i].BandwidthMBs/up[i].BandwidthMBs-1))
	}
}

func runReg(m *machine.Machine) {
	var sizes []uint64
	for s := uint64(2 << 20); s <= 64<<20; s *= 2 {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	rows, err := imb.RegistrationSweepTrace(m, sizes, env.Spec, env.Col)
	if err != nil {
		env.Fail(err)
	}
	fmt.Printf("memory registration cost by page size (%s)\n", m.Name)
	fmt.Printf("%-12s %14s %14s %10s %10s %10s\n",
		"size [KB]", "4K pages", "2M pages", "ratio", "4K MTTs", "2M MTTs")
	for _, r := range rows {
		fmt.Printf("%-12d %14v %14v %9.1f%% %10d %10d\n",
			r.Bytes/1024, r.SmallReg, r.HugeReg, 100*r.HugeFrac, r.SmallMTTs, r.HugeMTTs)
	}
}
