// Command nasbench regenerates Figure 6 of the paper: the NAS benchmark
// improvement split (communication / other / overall) with the hugepage
// library versus libc, plus the Section 5.2 TLB-miss table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/nas"
	"repro/internal/node"
	"repro/internal/trace"
)

func main() {
	machines := flag.String("machines", "opteron,systemp", "comma-separated machine list")
	ranks := flag.Int("ranks", 8, "rank count (paper: 2 nodes x 4 processes)")
	kernels := flag.String("kernels", "", "comma-separated kernel subset (default: all)")
	counters := flag.Bool("counters", false, "print absolute PAPI TLB counters per kernel")
	profile := flag.Bool("profile", false, "print the mpiP-style per-callsite profile of each hugepage run")
	stats := flag.Bool("stats", false, "emit per-node telemetry of every run as JSON instead of the tables")
	faultsFlag := flag.String("faults", "", "deterministic fault spec, e.g. seed=7,hugecap=8,memlock=16m (see README)")
	traceFlag := flag.String("trace", "", "write a Perfetto trace of every kernel run to this file ('-' = stdout)")
	flag.Parse()

	spec, err := faults.ParseSpec(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nasbench: %v\n", err)
		os.Exit(1)
	}
	var col *trace.Collector
	if *traceFlag != "" {
		col = trace.NewCollector()
		col.SetMeta("tool", "nasbench")
		col.SetMeta("faults", spec.String())
	}
	var ks []nas.Kernel
	if *kernels != "" {
		for _, n := range strings.Split(*kernels, ",") {
			k := nas.ByName(strings.TrimSpace(n))
			if k == nil {
				fmt.Fprintf(os.Stderr, "nasbench: unknown kernel %q\n", n)
				os.Exit(1)
			}
			ks = append(ks, k)
		}
	}
	var reports []node.Report
	for _, name := range strings.Split(*machines, ",") {
		m := machine.ByName(strings.TrimSpace(name))
		if m == nil {
			fmt.Fprintf(os.Stderr, "nasbench: unknown machine %q\n", name)
			os.Exit(1)
		}
		rows, err := nas.RunFig6Traced(m, *ranks, ks, spec, col)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasbench: %v\n", err)
			os.Exit(1)
		}
		if *stats {
			for _, r := range rows {
				for _, res := range []nas.Result{r.Small, r.Huge} {
					reports = append(reports, node.NewReport(
						"nasbench", res.Kernel+"/"+string(res.Allocator),
						m.Name, spec.String(), res.Nodes))
				}
			}
			continue
		}
		fmt.Print(nas.FormatFig6(m.Name, rows))
		if *profile {
			for _, r := range rows {
				fmt.Printf("\n--- %s, hugepage-library run ---\n%s", strings.ToUpper(r.Kernel), r.Huge.MPIProfile)
			}
		}
		if *counters {
			for _, r := range rows {
				fmt.Printf("%-4s libc: %s\n", strings.ToUpper(r.Kernel), r.Small.TLB)
				fmt.Printf("%-4s huge: %s\n", strings.ToUpper(r.Kernel), r.Huge.TLB)
				fmt.Printf("%-4s reg: libc=%v huge=%v  evict: libc=%d huge=%d  comm: libc=%v huge=%v\n",
					strings.ToUpper(r.Kernel), r.Small.RegTicks, r.Huge.RegTicks,
					r.Small.Evictions, r.Huge.Evictions, r.Small.Comm, r.Huge.Comm)
			}
		}
		fmt.Println()
	}
	if *stats {
		if err := node.WriteReports(os.Stdout, reports); err != nil {
			fmt.Fprintf(os.Stderr, "nasbench: %v\n", err)
			os.Exit(1)
		}
	}
	if col != nil {
		if err := node.WriteTraceFile(*traceFlag, col); err != nil {
			fmt.Fprintf(os.Stderr, "nasbench: %v\n", err)
			os.Exit(1)
		}
	}
}
