// Command nasbench regenerates Figure 6 of the paper: the NAS benchmark
// improvement split (communication / other / overall) with the hugepage
// library versus libc, plus the Section 5.2 TLB-miss table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/machine"
	"repro/internal/nas"
	"repro/internal/node"
)

// kernelStats is one JSON record of the -stats output: the per-node
// telemetry of one kernel run under one allocator.
type kernelStats struct {
	Machine   string       `json:"machine"`
	Kernel    string       `json:"kernel"`
	Allocator string       `json:"allocator"`
	Nodes     []node.Stats `json:"nodes"`
}

func main() {
	machines := flag.String("machines", "opteron,systemp", "comma-separated machine list")
	ranks := flag.Int("ranks", 8, "rank count (paper: 2 nodes x 4 processes)")
	kernels := flag.String("kernels", "", "comma-separated kernel subset (default: all)")
	counters := flag.Bool("counters", false, "print absolute PAPI TLB counters per kernel")
	profile := flag.Bool("profile", false, "print the mpiP-style per-callsite profile of each hugepage run")
	stats := flag.Bool("stats", false, "emit per-node telemetry of every run as JSON instead of the tables")
	flag.Parse()

	var ks []nas.Kernel
	if *kernels != "" {
		for _, n := range strings.Split(*kernels, ",") {
			k := nas.ByName(strings.TrimSpace(n))
			if k == nil {
				fmt.Fprintf(os.Stderr, "nasbench: unknown kernel %q\n", n)
				os.Exit(1)
			}
			ks = append(ks, k)
		}
	}
	var allStats []kernelStats
	for _, name := range strings.Split(*machines, ",") {
		m := machine.ByName(strings.TrimSpace(name))
		if m == nil {
			fmt.Fprintf(os.Stderr, "nasbench: unknown machine %q\n", name)
			os.Exit(1)
		}
		rows, err := nas.RunFig6(m, *ranks, ks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasbench: %v\n", err)
			os.Exit(1)
		}
		if *stats {
			for _, r := range rows {
				for _, res := range []nas.Result{r.Small, r.Huge} {
					allStats = append(allStats, kernelStats{
						Machine:   m.Name,
						Kernel:    res.Kernel,
						Allocator: string(res.Allocator),
						Nodes:     res.Nodes,
					})
				}
			}
			continue
		}
		fmt.Print(nas.FormatFig6(m.Name, rows))
		if *profile {
			for _, r := range rows {
				fmt.Printf("\n--- %s, hugepage-library run ---\n%s", strings.ToUpper(r.Kernel), r.Huge.MPIProfile)
			}
		}
		if *counters {
			for _, r := range rows {
				fmt.Printf("%-4s libc: %s\n", strings.ToUpper(r.Kernel), r.Small.TLB)
				fmt.Printf("%-4s huge: %s\n", strings.ToUpper(r.Kernel), r.Huge.TLB)
				fmt.Printf("%-4s reg: libc=%v huge=%v  evict: libc=%d huge=%d  comm: libc=%v huge=%v\n",
					strings.ToUpper(r.Kernel), r.Small.RegTicks, r.Huge.RegTicks,
					r.Small.Evictions, r.Huge.Evictions, r.Small.Comm, r.Huge.Comm)
			}
		}
		fmt.Println()
	}
	if *stats {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(allStats); err != nil {
			fmt.Fprintf(os.Stderr, "nasbench: %v\n", err)
			os.Exit(1)
		}
	}
}
