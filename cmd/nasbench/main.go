// Command nasbench regenerates Figure 6 of the paper: the NAS benchmark
// improvement split (communication / other / overall) with the hugepage
// library versus libc, plus the Section 5.2 TLB-miss table.
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/cli"
	"repro/internal/nas"
	"repro/internal/node"
)

func main() {
	ranks := flag.Int("ranks", 8, "rank count (paper: 2 nodes x 4 processes)")
	kernels := flag.String("kernels", "", "comma-separated kernel subset (default: all)")
	counters := flag.Bool("counters", false, "print absolute PAPI TLB counters per kernel")
	profile := flag.Bool("profile", false, "print the mpiP-style per-callsite profile of each hugepage run")
	env := cli.New("nasbench").
		MachinesFlag("opteron,systemp").
		StatsFlag("emit per-node telemetry of every run as JSON instead of the tables").
		PolicyFlag().
		Parse()

	var ks []nas.Kernel
	if *kernels != "" {
		for _, n := range strings.Split(*kernels, ",") {
			k := nas.ByName(strings.TrimSpace(n))
			if k == nil {
				env.Failf("unknown kernel %q", n)
			}
			ks = append(ks, k)
		}
	}
	var reports []node.Report
	for _, m := range env.Machines {
		rows, err := nas.RunFig6Policy(m, *ranks, ks, env.Policy, env.Spec, env.Col)
		if err != nil {
			env.Fail(err)
		}
		if env.Stats {
			for _, r := range rows {
				for _, res := range []nas.Result{r.Small, r.Huge} {
					reports = append(reports, env.NewReport(
						res.Kernel+"/"+string(res.Allocator), m.Name, res.Nodes))
				}
			}
			continue
		}
		fmt.Print(nas.FormatFig6(m.Name, rows))
		if *profile {
			for _, r := range rows {
				fmt.Printf("\n--- %s, hugepage-library run ---\n%s", strings.ToUpper(r.Kernel), r.Huge.MPIProfile)
			}
		}
		if *counters {
			for _, r := range rows {
				fmt.Printf("%-4s libc: %s\n", strings.ToUpper(r.Kernel), r.Small.TLB)
				fmt.Printf("%-4s huge: %s\n", strings.ToUpper(r.Kernel), r.Huge.TLB)
				fmt.Printf("%-4s reg: libc=%v huge=%v  evict: libc=%d huge=%d  comm: libc=%v huge=%v\n",
					strings.ToUpper(r.Kernel), r.Small.RegTicks, r.Huge.RegTicks,
					r.Small.Evictions, r.Huge.Evictions, r.Small.Comm, r.Huge.Comm)
			}
		}
		fmt.Println()
	}
	if env.Stats {
		env.EmitReports(reports)
	}
	env.WriteTrace()
}
