// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment and
// reports the reproduced metrics through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the full paper-vs-measured record (also captured in
// EXPERIMENTS.md). Absolute times are virtual ticks; the shapes and
// ratios are the reproduction targets.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/mpi"
	"repro/internal/workload"
)

// BenchmarkFig3SGE regenerates Figure 3: work-request duration by number
// of scatter/gather elements, on the IBM System p / eHCA system.
func BenchmarkFig3SGE(b *testing.B) {
	for _, sges := range []int{1, 2, 4, 8, 128} {
		b.Run(fmt.Sprintf("sges=%d", sges), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := SGESweep(SystemP(), []int{sges}, []int{64})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rs[0].PostTicks), "post-ticks")
				b.ReportMetric(float64(rs[0].PollTicks), "poll-ticks")
			}
		})
	}
}

// BenchmarkFig4Offset regenerates Figure 4: work-request duration by
// buffer offset within a page (1 SGE, 64-byte buffers).
func BenchmarkFig4Offset(b *testing.B) {
	for _, off := range []int{0, 32, 64, 96, 128} {
		b.Run(fmt.Sprintf("offset=%d", off), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := OffsetSweep(SystemP(), []int{off}, []int{64})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rs[0].Total()), "wr-ticks")
			}
		})
	}
}

// BenchmarkFig5IMB regenerates Figure 5: IMB SendRecv bandwidth for the
// four page-size x lazy-deregistration configurations on the Opteron.
func BenchmarkFig5IMB(b *testing.B) {
	configs := []struct {
		name string
		a    mpi.AllocatorKind
		lazy bool
	}{
		{"small-pages", mpi.AllocLibc, false},
		{"hugepages", mpi.AllocHuge, false},
		{"small-pages-lazy", mpi.AllocLibc, true},
		{"hugepages-lazy", mpi.AllocHuge, true},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := IMBSendRecv(ClusterConfig{
					Machine: Opteron(), Ranks: 2,
					Allocator: c.a, LazyDereg: c.lazy, HugeATT: true,
				}, []int{4 << 20})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rs[0].BandwidthMBs, "MB/s@4MiB")
			}
		})
	}
}

// BenchmarkFig5XeonATT regenerates the Section 5.1 Xeon experiment (E4):
// lazy-deregistration bandwidth with and without hugepage translations
// pushed to the adapter.
func BenchmarkFig5XeonATT(b *testing.B) {
	for _, patched := range []bool{false, true} {
		name := "unpatched-driver"
		if patched {
			name = "hugepage-att-patch"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := IMBSendRecv(ClusterConfig{
					Machine: Xeon(), Ranks: 2,
					Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: patched,
				}, []int{4 << 20})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rs[0].BandwidthMBs, "MB/s@4MiB")
			}
		})
	}
}

// BenchmarkFig6NAS regenerates Figure 6: per-kernel communication /
// other / overall improvement of the hugepage library over libc, plus the
// Section 5.2 TLB-miss ratio (E5+E6), on the Opteron.
func BenchmarkFig6NAS(b *testing.B) {
	for _, k := range NASKernels() {
		b.Run(k.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				small, err := RunNAS(Opteron(), 8, Baseline(Opteron()), k)
				if err != nil {
					b.Fatal(err)
				}
				huge, err := RunNAS(Opteron(), 8, Recommended(Opteron()), k)
				if err != nil {
					b.Fatal(err)
				}
				pct := func(s, h Ticks) float64 {
					return 100 * float64(s-h) / float64(s)
				}
				b.ReportMetric(pct(small.Comm, huge.Comm), "comm-impr-%")
				b.ReportMetric(pct(small.Compute, huge.Compute), "other-impr-%")
				b.ReportMetric(pct(small.Total, huge.Total), "overall-impr-%")
				b.ReportMetric(float64(huge.TLB.TotalMisses())/float64(small.TLB.TotalMisses()), "tlb-miss-ratio")
			}
		})
	}
}

// BenchmarkRegistration regenerates the registration-cost premise (E9):
// RegMR time for an 8 MiB buffer in 4 KiB pages vs 2 MiB hugepages.
func BenchmarkRegistration(b *testing.B) {
	for _, m := range Machines() {
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := RegistrationSweep(m, []uint64{8 << 20})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rows[0].SmallReg), "smallpage-ticks")
				b.ReportMetric(float64(rows[0].HugeReg), "hugepage-ticks")
				b.ReportMetric(100*rows[0].HugeFrac, "huge-vs-small-%")
			}
		})
	}
}

// BenchmarkAbinitAlloc regenerates the Section 2 allocator claim (E7):
// alloc/free time of the hugepage library vs libc on the Abinit-style
// trace ("allocation benefits of up to 10 times").
func BenchmarkAbinitAlloc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		libc, huge, err := AbinitComparison(Opteron())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(libc), "libc-ticks")
		b.ReportMetric(float64(huge), "hugelib-ticks")
		b.ReportMetric(float64(libc)/float64(huge), "speedup-x")
	}
}

// BenchmarkAllocAblations regenerates the Section 3 design-choice
// ablations (E8): the library with single design points flipped, on the
// Abinit trace.
func BenchmarkAllocAblations(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*alloc.HugeConfig)
	}{
		{"paper-design", func(c *alloc.HugeConfig) {}},
		{"coalesce-on-free", func(c *alloc.HugeConfig) { c.CoalesceOnFree = true }},
		{"in-band-metadata", func(c *alloc.HugeConfig) { c.InBandMetadata = true }},
		{"chunk-64k", func(c *alloc.HugeConfig) { c.ChunkSize = 64 << 10 }},
		{"threshold-4k", func(c *alloc.HugeConfig) { c.Threshold = 4 << 10 }},
	}
	ops, slots := workload.AbinitTrace(workload.DefaultAbinitParams())
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := alloc.DefaultHugeConfig()
				v.mutate(&cfg)
				n, err := NewNode(NodeConfig{Machine: SystemP(), Allocator: "huge", HugeConfig: &cfg})
				if err != nil {
					b.Fatal(err)
				}
				a := n.Alloc
				res, err := alloc.Replay(a, ops, slots)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.AllocTime), "alloc-ticks")
			}
		})
	}
}

// BenchmarkSGEAggregation regenerates the Section 4 proposal at the MPI
// level: sending 8 x 96 B pieces via MPI_Pack copies versus one
// scatter/gather work request.
func BenchmarkSGEAggregation(b *testing.B) {
	run := func(b *testing.B, gathered bool) Ticks {
		w, err := NewCluster(Recommended(SystemP()), 2)
		if err != nil {
			b.Fatal(err)
		}
		var elapsed Ticks
		err = w.Run(func(r *Rank) error {
			base, err := r.Malloc(64 << 10)
			if err != nil {
				return err
			}
			pieces := make([]Piece, 8)
			for i := range pieces {
				pieces[i] = Piece{VA: base + VA(i*4096+64), Len: 96}
			}
			if r.ID() == 0 {
				t0 := r.Now()
				for it := 0; it < 50; it++ {
					if gathered {
						if err := r.SendGathered(1, it, pieces); err != nil {
							return err
						}
					} else {
						if err := r.SendPacked(1, it, pieces); err != nil {
							return err
						}
					}
				}
				elapsed = r.Now() - t0
				return nil
			}
			for it := 0; it < 50; it++ {
				if err := r.RecvUnpack(0, it, pieces); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return elapsed / 50
	}
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(float64(run(b, false)), "send-ticks")
		}
	})
	b.Run("gathered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(float64(run(b, true)), "send-ticks")
		}
	})
}

// BenchmarkRendezvousProtocols is a design ablation DESIGN.md calls out:
// the MVAPICH2-style RDMA-write rendezvous versus a receiver-driven RDMA
// read, on the same 1 MiB pingpong.
func BenchmarkRendezvousProtocols(b *testing.B) {
	for _, proto := range []string{"write", "read"} {
		b.Run(proto, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := NewClusterConfig(ClusterConfig{
					Machine: Opteron(), Ranks: 2,
					Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: true,
					RendezvousProtocol: proto,
				})
				if err != nil {
					b.Fatal(err)
				}
				var lat Ticks
				err = w.Run(func(r *Rank) error {
					const n = 1 << 20
					va, _ := r.Malloc(n)
					for it := 0; it < 10; it++ {
						if r.ID() == 0 {
							if err := r.Send(1, it, va, n); err != nil {
								return err
							}
							if _, err := r.Recv(1, it, va, n); err != nil {
								return err
							}
						} else {
							if _, err := r.Recv(0, it, va, n); err != nil {
								return err
							}
							if err := r.Send(0, it, va, n); err != nil {
								return err
							}
						}
					}
					if r.ID() == 0 {
						lat = r.Now() / 20
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(lat), "half-rtt-ticks@1MiB")
			}
		})
	}
}

// BenchmarkProtocolLimits ablates the eager/RDMA switch points: the
// 16 KiB message sits on the default rendezvous boundary; moving the
// boundary above it turns the same traffic into copies.
func BenchmarkProtocolLimits(b *testing.B) {
	for _, rdmaLimit := range []int{16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("rdma-limit=%dKiB", rdmaLimit/1024), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := IMBSendRecv(ClusterConfig{
					Machine: Opteron(), Ranks: 2,
					Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: true,
					RdmaLimit: rdmaLimit,
				}, []int{32 << 10})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rs[0].BandwidthMBs, "MB/s@32KiB")
			}
		})
	}
}

// BenchmarkRegCacheBound ablates the pin-down cache size: the smaller the
// pinned-memory bound, the more re-registration traffic — and the more
// hugepages help. This is the mechanism behind the Figure 6 communication
// improvements.
func BenchmarkRegCacheBound(b *testing.B) {
	for _, bound := range []int64{0, 2 << 20} { // 0 = unbounded
		name := "unbounded"
		if bound > 0 {
			name = "bound=2MiB"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := NewClusterConfig(ClusterConfig{
					Machine: Opteron(), Ranks: 2,
					Allocator: mpi.AllocLibc, LazyDereg: true, HugeATT: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				var comm Ticks
				err = w.Run(func(r *Rank) error {
					r.Cache().MaxPinned = bound
					const n, slices = 512 << 10, 8
					va, _ := r.Malloc(n * slices)
					peer := 1 - r.ID()
					for it := 0; it < 6; it++ {
						for s := 0; s < slices; s++ {
							off := VA(s * n)
							if _, err := r.Sendrecv(peer, s, va+off, n, peer, s, va+off, n); err != nil {
								return err
							}
						}
					}
					if r.ID() == 0 {
						comm = r.Profile().CommTime()
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(comm), "comm-ticks")
			}
		})
	}
}
