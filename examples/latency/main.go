// Latency: survey the three test systems with the IMB PingPong pattern
// and show where the Section 4 effects live — the post/poll split of a
// small work request, the offset sweet spot, and the protocol switch
// points a message crosses as it grows.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sizes := []int{0, 64, 1024, 8 << 10, 32 << 10, 1 << 20}

	fmt.Println("IMB PingPong half-round-trip latency [us]")
	fmt.Printf("%-10s", "bytes")
	for _, m := range repro.Machines() {
		fmt.Printf(" %26s", m.Name)
	}
	fmt.Println()
	tables := make([][]float64, len(sizes))
	for mi, m := range repro.Machines() {
		rs, err := repro.IMBPingPong(repro.ClusterConfig{
			Machine: m, Allocator: "huge", LazyDereg: true, HugeATT: true,
		}, sizes)
		if err != nil {
			log.Fatal(err)
		}
		for si, r := range rs {
			if mi == 0 {
				tables[si] = make([]float64, len(repro.Machines()))
			}
			tables[si][mi] = r.LatencyUsec
		}
	}
	for si, size := range sizes {
		fmt.Printf("%-10d", size)
		for _, v := range tables[si] {
			fmt.Printf(" %26.2f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nnote the step between 8 KiB (eager copy) and 32 KiB (rendezvous with")
	fmt.Println("registration handshake) — the protocol switch MVAPICH2 makes at 16 KiB.")

	// The Section 4 microscope: where does a small send's time go?
	m := repro.SystemP()
	rs, err := repro.SGESweep(m, []int{1, 4}, []int{64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n64 B work request on %s (TBR ticks):\n", m.Name)
	for _, r := range rs {
		fmt.Printf("  %d SGE(s): post %4d + poll %4d = %4d\n", r.SGEs, r.PostTicks, r.PollTicks, r.Total())
	}
	off, err := repro.OffsetSweep(m, []int{0, 64}, []int{64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  offset 0 vs 64: %d vs %d ticks (%.1f%% saved by the Figure 4 sweet spot)\n",
		off[0].Total(), off[1].Total(),
		100*(1-float64(off[1].Total())/float64(off[0].Total())))
}
