// Allocator: drive the Section 3 hugepage library directly through the
// public API — thresholds, hugepage placement, pool exhaustion fallback,
// and the side-by-side trace comparison with libc, libhugetlbfs and
// libhugepagealloc.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	m := repro.Opteron()

	lib, err := repro.NewAllocator(m, "huge")
	if err != nil {
		log.Fatal(err)
	}
	// Below the 32 KiB threshold: delegated to libc (small pages).
	small, err := lib.Alloc(16 << 10)
	if err != nil {
		log.Fatal(err)
	}
	// At/above the threshold: placed in hugepages.
	big, err := lib.Alloc(256 << 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16 KiB request  -> va %#x (small-page heap)\n", uint64(small))
	fmt.Printf("256 KiB request -> va %#x (hugepage window)\n", uint64(big))
	st := lib.Stats()
	fmt.Printf("placement gauge: %d KiB in hugepages, %d KiB in small pages\n\n",
		st.HugeBytes/1024, st.SmallBytes/1024)

	// Same-size free/alloc reuses the block without coalesce/split churn
	// (design point 5 of the paper's library).
	if err := lib.Free(big); err != nil {
		log.Fatal(err)
	}
	again, err := lib.Alloc(256 << 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("free + same-size alloc returns the same address: %v\n", again == big)
	st = lib.Stats()
	fmt.Printf("splits=%d coalesces=%d (no coalescing on the free path)\n\n", st.Splits, st.Coalesces)

	// The headline comparison (E7).
	libcTicks, hugeTicks, err := repro.AbinitComparison(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Abinit-style trace: libc %v, hugepage library %v -> %.1fx faster\n",
		libcTicks, hugeTicks, float64(libcTicks)/float64(hugeTicks))
	fmt.Println(`paper (Section 2): "we measured allocation benefits of up to 10 times"`)
}
