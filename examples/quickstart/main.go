// Quickstart: build a simulated InfiniBand cluster, pick the paper's
// recommended data-placement strategy, and bounce a message between two
// ranks — printing what the placement decisions were and what they cost.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	m := repro.Opteron()
	strategy := repro.Recommended(m)
	fmt.Printf("machine:  %s\n", m.Name)
	fmt.Printf("strategy: hugepages>=%dKiB lazy-dereg=%v hugepage-ATT=%v SGE-aggregation=%v\n\n",
		strategy.Threshold/1024, strategy.LazyDereg, strategy.HugeATT, strategy.AggregateSGEs)

	// Ask the placement advisor about two buffers.
	for _, size := range []uint64{16 << 10, 1 << 20} {
		p := strategy.PlaceBuffer(size, 100)
		fmt.Printf("a %4d KiB buffer reused 100x -> hugepages=%v register-once=%v offset=%d\n",
			size/1024, p.Huge, p.RegisterOnce, p.SuggestedOffset)
	}
	fmt.Println()

	cluster, err := repro.NewCluster(strategy, 2)
	if err != nil {
		log.Fatal(err)
	}
	const n = 1 << 20
	err = cluster.Run(func(r *repro.Rank) error {
		buf, err := r.Malloc(n) // goes through the hugepage library
		if err != nil {
			return err
		}
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i)
		}
		if r.ID() == 0 {
			if err := r.WriteBytes(buf, payload); err != nil {
				return err
			}
			// First send registers the buffer (pin + translate + push
			// translations to the NIC); the second reuses the cached
			// registration — watch the time difference.
			t0 := r.Now()
			if err := r.Send(1, 1, buf, n); err != nil {
				return err
			}
			t1 := r.Now()
			if err := r.Send(1, 2, buf, n); err != nil {
				return err
			}
			t2 := r.Now()
			fmt.Printf("rank 0: first 1 MiB send (cold registration) %v\n", t1-t0)
			fmt.Printf("rank 0: second send (registration cached)    %v\n", t2-t1)
			return nil
		}
		if _, err := r.Recv(0, 1, buf, n); err != nil {
			return err
		}
		if _, err := r.Recv(0, 2, buf, n); err != nil {
			return err
		}
		got := make([]byte, n)
		if err := r.ReadBytes(buf, got); err != nil {
			return err
		}
		for i := range got {
			if got[i] != byte(i) {
				return fmt.Errorf("payload corrupted at %d", i)
			}
		}
		fmt.Printf("rank 1: received and verified %d bytes at t=%v\n", n, r.Now())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njob makespan: %v (virtual)\n", cluster.MaxTime())
	fmt.Printf("rank 0 pinned by the registration cache: %d KiB\n",
		cluster.Rank(0).Cache().Stats().PinnedBytes/1024)
}
