// Aggregation: the Section 4 scenario. A sender has several small,
// non-contiguous pieces (e.g. a matrix row scattered across structs).
// The classic path packs them with CPU copies (MPI_Pack) into one
// contiguous buffer; the paper's proposal posts ONE work request whose
// scatter/gather list references the pieces in place. This example runs
// both paths, checks the advisor's prediction, and prints the costs.
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	pieceLen = 96
	npieces  = 8
	rounds   = 40
)

func run(gathered bool) (repro.Ticks, error) {
	cluster, err := repro.NewCluster(repro.Recommended(repro.SystemP()), 2)
	if err != nil {
		return 0, err
	}
	var perSend repro.Ticks
	err = cluster.Run(func(r *repro.Rank) error {
		base, err := r.Malloc(64 << 10)
		if err != nil {
			return err
		}
		// One piece per page, at the preferred offset 64 (Figure 4).
		pieces := make([]repro.Piece, npieces)
		for i := range pieces {
			pieces[i] = repro.Piece{VA: base + repro.VA(i*4096+64), Len: pieceLen}
		}
		if r.ID() == 0 {
			for i := range pieces {
				fill := make([]byte, pieceLen)
				for j := range fill {
					fill[j] = byte(i*16 + j)
				}
				if err := r.WriteBytes(pieces[i].VA, fill); err != nil {
					return err
				}
			}
			t0 := r.Now()
			for it := 0; it < rounds; it++ {
				if gathered {
					if err := r.SendGathered(1, it, pieces); err != nil {
						return err
					}
				} else {
					if err := r.SendPacked(1, it, pieces); err != nil {
						return err
					}
				}
			}
			perSend = (r.Now() - t0) / rounds
			return nil
		}
		for it := 0; it < rounds; it++ {
			if err := r.RecvUnpack(0, it, pieces); err != nil {
				return err
			}
		}
		// Verify the scattered content arrived piecewise intact.
		for i := range pieces {
			got := make([]byte, pieceLen)
			if err := r.ReadBytes(pieces[i].VA, got); err != nil {
				return err
			}
			for j := range got {
				if got[j] != byte(i*16+j) {
					return fmt.Errorf("piece %d corrupted at %d", i, j)
				}
			}
		}
		return nil
	})
	return perSend, err
}

func main() {
	s := repro.Recommended(repro.SystemP())
	fmt.Printf("scenario: %d pieces x %d bytes, non-contiguous\n", npieces, pieceLen)
	fmt.Printf("advisor: pack=%v ticks  gather=%v ticks  -> aggregate? %v\n\n",
		s.EstimatePackCost(npieces, pieceLen),
		s.EstimateGatherCost(npieces, pieceLen),
		s.ShouldAggregate(npieces, pieceLen))

	packed, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	gathered, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured per-send cost, MPI_Pack copies:      %v\n", packed)
	fmt.Printf("measured per-send cost, scatter/gather list:  %v\n", gathered)
	fmt.Printf("SGE aggregation saves %.1f%% (paper Section 4: \"MPI implementations\n", 100*(1-float64(gathered)/float64(packed)))
	fmt.Println("for InfiniBand may benefit in a perceptible way by using this feature\")")

	// The advisor also knows when NOT to aggregate.
	fmt.Printf("\ncounter-case: 256 pieces x 4 bytes -> aggregate? %v (copying tiny pieces is cheaper)\n",
		s.ShouldAggregate(256, 4))
}
