// Stencil: a domain application — an iterative 1-D heat-diffusion solver
// with halo exchanges — run twice: once with plain libc placement and
// once preloaded with the paper's hugepage library. This is the Figure 6
// experiment in miniature, on a program you can read end to end: same
// numerics, different placement, and the mpiP-style profile shows where
// the time went.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

const (
	cellsPerRank = 96 << 10 // 768 KiB of float64 per rank
	haloCells    = 8 << 10  // 64 KiB halo: rendezvous territory
	iters        = 30
	alpha        = 0.25
)

// result carries the timings and the converged checksum.
type result struct {
	comm, compute, total repro.Ticks
	checksum             float64
	pinnedKiB            int64
}

func run(s repro.Strategy, ranks int) (result, error) {
	cluster, err := repro.NewCluster(s, ranks)
	if err != nil {
		return result{}, err
	}
	sums := make([]float64, ranks)
	err = cluster.Run(func(r *repro.Rank) error {
		// Field + two halo buffers, allocated through the strategy's
		// allocation library (this is where placement happens).
		field, err := r.Malloc(8 * cellsPerRank)
		if err != nil {
			return err
		}
		_ = field // placement target for the full field (streamed below)
		haloL, err := r.Malloc(8 * haloCells)
		if err != nil {
			return err
		}
		haloR, err := r.Malloc(8 * haloCells)
		if err != nil {
			return err
		}
		u := make([]float64, cellsPerRank)
		for i := range u {
			// A hot spot in the middle of the global domain.
			gi := r.ID()*cellsPerRank + i
			u[i] = math.Exp(-float64((gi-ranks*cellsPerRank/2)*(gi-ranks*cellsPerRank/2)) / 1e9)
		}
		left := (r.ID() - 1 + r.Size()) % r.Size()
		right := (r.ID() + 1) % r.Size()

		for it := 0; it < iters; it++ {
			// Publish boundary slabs, exchange halos both ways.
			if err := r.WriteF64(haloL, u[:haloCells]); err != nil {
				return err
			}
			if err := r.WriteF64(haloR, u[cellsPerRank-haloCells:]); err != nil {
				return err
			}
			if _, err := r.Sendrecv(left, 10+it, haloL, 8*haloCells,
				right, 10+it, haloR, 8*haloCells); err != nil {
				return err
			}
			if _, err := r.Sendrecv(right, 1000+it, haloR, 8*haloCells,
				left, 1000+it, haloL, 8*haloCells); err != nil {
				return err
			}
			// Relax the interior (real arithmetic) and charge the sweep
			// over the field as compute time.
			for i := 1; i < cellsPerRank-1; i += 1 {
				u[i] += alpha * (u[i-1] - 2*u[i] + u[i+1])
			}
			r.Compute(repro.Ticks(cellsPerRank / 16)) // stream cost stand-in
		}
		var sum float64
		for _, v := range u {
			sum += v
		}
		sums[r.ID()] = sum
		return nil
	})
	if err != nil {
		return result{}, err
	}
	var checksum float64
	for _, s := range sums {
		checksum += s
	}
	p := cluster.Profile()
	return result{
		comm:      p.CommTime(),
		compute:   p.ComputeTime(),
		total:     p.CommTime() + p.ComputeTime(),
		checksum:  checksum,
		pinnedKiB: cluster.Rank(0).Cache().Stats().PinnedBytes / 1024,
	}, nil
}

func main() {
	m := repro.Opteron()
	const ranks = 4
	libc, err := run(repro.Baseline(m), ranks) // libc placement, no reg cache
	if err != nil {
		log.Fatal(err)
	}
	hp, err := run(repro.Recommended(m), ranks)
	if err != nil {
		log.Fatal(err)
	}
	if math.Abs(libc.checksum-hp.checksum) > 1e-9 {
		log.Fatalf("numerics diverged: %g vs %g", libc.checksum, hp.checksum)
	}
	fmt.Printf("1-D diffusion, %d ranks, %d iterations, 64 KiB halos (checksum %.6f, identical)\n\n",
		ranks, iters, hp.checksum)
	fmt.Printf("%-34s %12s %12s %12s\n", "placement", "comm", "compute", "total")
	fmt.Printf("%-34s %12v %12v %12v\n", "libc + per-message registration", libc.comm, libc.compute, libc.total)
	fmt.Printf("%-34s %12v %12v %12v\n", "hugepage library + lazy dereg", hp.comm, hp.compute, hp.total)
	fmt.Printf("\ncommunication time improvement: %.1f%%\n",
		100*(1-float64(hp.comm)/float64(libc.comm)))
	fmt.Printf("registration cache holds %d KiB pinned (the paper's noted trade-off)\n", hp.pinnedKiB)
}
