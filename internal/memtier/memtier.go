// Package memtier models tiered physical memory under internal/phys: a
// fast DRAM-speed tier plus one or more slower tiers (CXL expander,
// persistent memory) with per-tier capacity, access penalties applied in
// virtual time, and explicit page migration with modeled copy cost — the
// Dynamic-Page-Placement extension ROADMAP item 3's modern workloads
// need (the KV-cache workload's fast/slow placement and its
// migrate-vs-recompute decisions both run on this package).
//
// The model is deliberately an overlay: internal/phys keeps handing out
// frames exactly as before, and a Manager tracks which tier the data of
// each physical page currently lives in. Pages are keyed by the frame
// backing the page's base address, so small pages and hugepages coexist
// (a hugepage is one entry covering 2 MiB). Placement is first-touch
// top-down in tier order — a page lands in the fastest tier with
// capacity headroom, spilling toward the slower tiers like Hermes'
// TopDown placement — and Migrate moves resident pages explicitly,
// charging the copy at the configured migration bandwidth plus a
// per-page remap overhead.
//
// Determinism: every decision is a pure function of the call sequence —
// no wall clock, no randomness, no map iteration reaches a result. The
// per-frame map is consulted point-wise only; snapshots that need
// ordering sort first (maporder).
package memtier

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/phys"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Tier describes one memory tier. Tier 0 is the fastest; access costs
// are *extra* virtual time over the baseline DRAM memory model (the
// DTLB walks and copy bandwidth the stack already charges), so a tier
// with zero TouchTicks and zero StreamBandwidthMBs is plain DRAM.
type Tier struct {
	// Name labels the tier in stats and traces ("fast", "slow", ...).
	Name string
	// CapacityBytes caps the bytes resident in this tier; 0 means
	// unbounded (the last tier must be unbounded so placement never
	// fails).
	CapacityBytes int64
	// TouchTicks is the extra latency charged per page touch — the
	// tier's load-to-use penalty over DRAM.
	TouchTicks simtime.Ticks
	// StreamBandwidthMBs, when non-zero, charges the touched bytes at
	// this bandwidth on top of TouchTicks — the tier's streaming
	// penalty (a slow tier's read bandwidth).
	StreamBandwidthMBs float64
}

// Config describes a tier stack, fastest first.
type Config struct {
	Tiers []Tier
	// MigrateBandwidthMBs is the copy bandwidth Migrate charges; 0
	// takes the machine DRAM copy bandwidth of the node (set by the
	// wiring layer) or DefaultMigrateBandwidthMBs.
	MigrateBandwidthMBs float64
}

// DefaultMigrateBandwidthMBs bounds migration copies when neither the
// config nor the node wiring supplies a bandwidth.
const DefaultMigrateBandwidthMBs = 2000

// pageRemapTicks is the fixed per-page overhead of a migration: the
// remap, the TLB shootdown of the moved translation, and the kernel
// bookkeeping — charged per page regardless of page size.
const pageRemapTicks = simtime.Ticks(600)

// TwoTier is the canonical fast/slow stack: a capacity-bounded
// DRAM-speed fast tier over an unbounded slow tier with the given
// per-touch latency and streaming bandwidth.
func TwoTier(fastBytes int64, slowTouch simtime.Ticks, slowMBs float64) *Config {
	return &Config{Tiers: []Tier{
		{Name: "fast", CapacityBytes: fastBytes},
		{Name: "slow", TouchTicks: slowTouch, StreamBandwidthMBs: slowMBs},
	}}
}

// Validate rejects tier stacks the Manager would refuse.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if len(c.Tiers) < 2 {
		return fmt.Errorf("memtier: need at least 2 tiers, got %d", len(c.Tiers))
	}
	seen := make(map[string]bool, len(c.Tiers))
	for i, t := range c.Tiers {
		if t.Name == "" {
			return fmt.Errorf("memtier: tier %d needs a name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("memtier: duplicate tier name %q", t.Name)
		}
		seen[t.Name] = true
		if t.CapacityBytes < 0 {
			return fmt.Errorf("memtier: tier %q has negative capacity", t.Name)
		}
		if t.TouchTicks < 0 {
			return fmt.Errorf("memtier: tier %q has negative touch latency", t.Name)
		}
		if t.StreamBandwidthMBs < 0 {
			return fmt.Errorf("memtier: tier %q has negative bandwidth", t.Name)
		}
	}
	if last := c.Tiers[len(c.Tiers)-1]; last.CapacityBytes != 0 {
		return fmt.Errorf("memtier: last tier %q must be unbounded (capacity 0)", last.Name)
	}
	return nil
}

// PageRef names one tracked page: the frame backing its base address
// plus its size (4 KiB for a small page, 2 MiB for a hugepage).
type PageRef struct {
	Frame phys.Frame
	Bytes uint64
}

// RefsOf converts a translated page list (vm.Pages order) into page
// refs, collapsing each page to its base frame.
func RefsOf(pas []phys.Addr, pageBytes uint64) []PageRef {
	out := make([]PageRef, len(pas))
	for i, pa := range pas {
		out[i] = PageRef{Frame: phys.Frame(uint64(pa) / machine.SmallPageSize), Bytes: pageBytes}
	}
	return out
}

// TierStats is one tier's counter set.
type TierStats struct {
	Name          string
	CapacityBytes int64 // 0 = unbounded
	UsedBytes     int64 // gauge: bytes currently resident
	PeakBytes     int64
	Assigns       int64         // pages first placed in this tier
	Spills        int64         // first placements redirected here by a full faster tier
	TouchTicks    simtime.Ticks // access penalty charged for touches here
}

// Stats is a Manager snapshot.
type Stats struct {
	Tiers         []TierStats
	Promotions    int64 // pages moved to a faster tier
	Demotions     int64 // pages moved to a slower tier
	MigratedBytes int64
	MigrateTicks  simtime.Ticks
}

// Manager tracks the tier residency of one node's pages. Not safe for
// concurrent use: the scheduler runs one task per node at a time, like
// every other node layer. A nil Manager is "tiering disabled": every
// method is safe, every cost is zero — exactly the pre-memtier stack.
//
//reprolint:nilsafe
type Manager struct {
	tiers   []Tier
	migMBs  float64
	resided map[phys.Frame]tierPage
	stats   Stats
	// cur, when set, stamps migrations as tier-layer trace events at
	// the cursor's current position (nil = no tracing).
	cur *trace.Cursor
}

type tierPage struct {
	tier  int
	bytes uint64
}

// New builds a Manager from a validated config; a nil config returns a
// nil Manager (tiering disabled).
func New(cfg *Config, cur *trace.Cursor) (*Manager, error) {
	if cfg == nil {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		tiers:   append([]Tier(nil), cfg.Tiers...),
		migMBs:  cfg.MigrateBandwidthMBs,
		resided: make(map[phys.Frame]tierPage),
		cur:     cur,
	}
	if m.migMBs <= 0 {
		m.migMBs = DefaultMigrateBandwidthMBs
	}
	m.stats.Tiers = make([]TierStats, len(m.tiers))
	for i, t := range m.tiers {
		m.stats.Tiers[i].Name = t.Name
		m.stats.Tiers[i].CapacityBytes = t.CapacityBytes
	}
	return m, nil
}

// Enabled reports whether tiering is active.
func (m *Manager) Enabled() bool {
	if m == nil {
		return false
	}
	return true
}

// TierCount returns the number of tiers (0 when disabled).
func (m *Manager) TierCount() int {
	if m == nil {
		return 0
	}
	return len(m.tiers)
}

// TierName returns tier i's name ("" when disabled or out of range).
func (m *Manager) TierName(i int) string {
	if m == nil || i < 0 || i >= len(m.tiers) {
		return ""
	}
	return m.tiers[i].Name
}

// UsedBytes reports the bytes resident in tier i.
func (m *Manager) UsedBytes(i int) int64 {
	if m == nil || i < 0 || i >= len(m.tiers) {
		return 0
	}
	return m.stats.Tiers[i].UsedBytes
}

// FreeBytes reports tier i's remaining capacity (MaxInt64 for an
// unbounded tier, 0 when disabled).
func (m *Manager) FreeBytes(i int) int64 {
	if m == nil || i < 0 || i >= len(m.tiers) {
		return 0
	}
	if m.tiers[i].CapacityBytes == 0 {
		return math.MaxInt64
	}
	free := m.tiers[i].CapacityBytes - m.stats.Tiers[i].UsedBytes
	if free < 0 {
		return 0
	}
	return free
}

// place records a first placement: the fastest tier at or below `want`
// with headroom for the page, spilling down-stack when full. The last
// tier is unbounded, so placement always succeeds.
func (m *Manager) place(ref PageRef, want int) int {
	for ti := want; ; ti++ {
		last := ti == len(m.tiers)-1
		if !last && m.tiers[ti].CapacityBytes > 0 &&
			m.stats.Tiers[ti].UsedBytes+int64(ref.Bytes) > m.tiers[ti].CapacityBytes {
			continue
		}
		m.resided[ref.Frame] = tierPage{tier: ti, bytes: ref.Bytes}
		ts := &m.stats.Tiers[ti]
		ts.UsedBytes += int64(ref.Bytes)
		if ts.UsedBytes > ts.PeakBytes {
			ts.PeakBytes = ts.UsedBytes
		}
		ts.Assigns++
		if ti != want {
			ts.Spills++
		}
		return ti
	}
}

// TierOf reports the tier a page resides in, first-touch placing it
// top-down if it is not yet tracked. Returns -1 when disabled.
func (m *Manager) TierOf(ref PageRef) int {
	if m == nil {
		return -1
	}
	if p, ok := m.resided[ref.Frame]; ok {
		return p.tier
	}
	return m.place(ref, 0)
}

// Assign first-touch places pages starting at the given tier (spilling
// down-stack when full) and reports how many landed there. Pages
// already resident somewhere are left where they are — Assign is the
// placement hint for fresh data; Migrate moves resident pages.
func (m *Manager) Assign(refs []PageRef, tier int) int {
	if m == nil || len(refs) == 0 {
		return 0
	}
	if tier < 0 || tier >= len(m.tiers) {
		tier = len(m.tiers) - 1
	}
	placed := 0
	for _, ref := range refs {
		if _, ok := m.resided[ref.Frame]; ok {
			continue
		}
		if m.place(ref, tier) == tier {
			placed++
		}
	}
	return placed
}

// Touch charges one page access: `touched` bytes read or written within
// the page. An untracked page is first-touch placed top-down. The
// returned penalty is the tier's extra virtual time (zero for a plain
// DRAM tier), which the caller charges to its clock.
func (m *Manager) Touch(ref PageRef, touched uint64) simtime.Ticks {
	if m == nil {
		return 0
	}
	ti := m.TierOf(ref)
	t := &m.tiers[ti]
	d := t.TouchTicks
	if t.StreamBandwidthMBs > 0 && touched > 0 {
		d += simtime.BandwidthTicks(int64(touched), t.StreamBandwidthMBs)
	}
	m.stats.Tiers[ti].TouchTicks += d
	return d
}

// MigrateCost models the cost of moving `bytes` across tiers in `pages`
// pages without moving anything — the estimate the migrate-vs-recompute
// decision compares against recomputation.
func (m *Manager) MigrateCost(pages int, bytes uint64) simtime.Ticks {
	if m == nil || pages <= 0 {
		return 0
	}
	return simtime.Ticks(pages)*pageRemapTicks + simtime.BandwidthTicks(int64(bytes), m.migMBs)
}

// Migrate moves resident pages to the given tier, skipping pages
// already there and pages that do not fit (a bounded destination is
// never overcommitted; callers demote cold pages first to make room).
// It returns the pages moved and the modeled copy cost, which the
// caller charges to its clock.
func (m *Manager) Migrate(refs []PageRef, tier int) (moved int, cost simtime.Ticks) {
	if m == nil || len(refs) == 0 {
		return 0, 0
	}
	if tier < 0 || tier >= len(m.tiers) {
		return 0, 0
	}
	var bytes int64
	for _, ref := range refs {
		p, ok := m.resided[ref.Frame]
		if !ok {
			// Moving untracked data means placing it: first-touch at
			// the destination (spilling if full), with no copy cost —
			// there is nothing resident to move.
			m.place(ref, tier)
			continue
		}
		if p.tier == tier {
			continue
		}
		dst := &m.stats.Tiers[tier]
		if m.tiers[tier].CapacityBytes > 0 &&
			dst.UsedBytes+int64(p.bytes) > m.tiers[tier].CapacityBytes {
			continue
		}
		m.stats.Tiers[p.tier].UsedBytes -= int64(p.bytes)
		dst.UsedBytes += int64(p.bytes)
		if dst.UsedBytes > dst.PeakBytes {
			dst.PeakBytes = dst.UsedBytes
		}
		if tier < p.tier {
			m.stats.Promotions++
		} else {
			m.stats.Demotions++
		}
		m.resided[ref.Frame] = tierPage{tier: tier, bytes: p.bytes}
		moved++
		bytes += int64(p.bytes)
	}
	if moved > 0 {
		cost = m.MigrateCost(moved, uint64(bytes))
		m.stats.MigratedBytes += bytes
		m.stats.MigrateTicks += cost
		m.cur.Event(trace.LTier, "migrate",
			trace.I64("tier", int64(tier)), trace.I64("pages", int64(moved)), trace.I64("bytes", bytes))
	}
	return moved, cost
}

// Promote moves pages to tier 0.
func (m *Manager) Promote(refs []PageRef) (int, simtime.Ticks) {
	if m == nil {
		return 0, 0
	}
	return m.Migrate(refs, 0)
}

// Demote moves pages to the last (unbounded) tier.
func (m *Manager) Demote(refs []PageRef) (int, simtime.Ticks) {
	if m == nil {
		return 0, 0
	}
	return m.Migrate(refs, len(m.tiers)-1)
}

// Release drops tracking for pages whose backing memory was freed,
// returning their bytes to the tier budgets.
func (m *Manager) Release(refs []PageRef) {
	if m == nil {
		return
	}
	for _, ref := range refs {
		p, ok := m.resided[ref.Frame]
		if !ok {
			continue
		}
		m.stats.Tiers[p.tier].UsedBytes -= int64(p.bytes)
		delete(m.resided, ref.Frame)
	}
}

// Stats snapshots the counters (zero value when disabled). The tier
// slice is a copy.
func (m *Manager) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	out := m.stats
	out.Tiers = append([]TierStats(nil), m.stats.Tiers...)
	return out
}
