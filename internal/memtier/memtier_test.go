package memtier

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/phys"
	"repro/internal/simtime"
)

const pageB = machine.SmallPageSize

func ref(i int) PageRef { return PageRef{Frame: phys.Frame(i), Bytes: pageB} }

func mustNew(t *testing.T, cfg *Config) *Manager {
	t.Helper()
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
		ok   bool
	}{
		{"nil", nil, true},
		{"two-tier", TwoTier(1<<20, 100, 500), true},
		{"one tier", &Config{Tiers: []Tier{{Name: "only"}}}, false},
		{"unnamed", &Config{Tiers: []Tier{{Name: "a"}, {}}}, false},
		{"duplicate", &Config{Tiers: []Tier{{Name: "a", CapacityBytes: 1}, {Name: "a"}}}, false},
		{"bounded last", &Config{Tiers: []Tier{{Name: "a"}, {Name: "b", CapacityBytes: 4096}}}, false},
		{"negative capacity", &Config{Tiers: []Tier{{Name: "a", CapacityBytes: -1}, {Name: "b"}}}, false},
		{"negative touch", &Config{Tiers: []Tier{{Name: "a", TouchTicks: -1}, {Name: "b"}}}, false},
		{"negative bw", &Config{Tiers: []Tier{{Name: "a", StreamBandwidthMBs: -1}, {Name: "b"}}}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNilManagerIsDisabled(t *testing.T) {
	var m *Manager
	if m.Enabled() || m.TierCount() != 0 || m.TierName(0) != "" {
		t.Fatal("nil manager not inert")
	}
	if m.TierOf(ref(1)) != -1 {
		t.Fatal("nil TierOf != -1")
	}
	if d := m.Touch(ref(1), 64); d != 0 {
		t.Fatalf("nil Touch cost %d", d)
	}
	if n, c := m.Migrate([]PageRef{ref(1)}, 0); n != 0 || c != 0 {
		t.Fatal("nil Migrate did something")
	}
	if n, c := m.Demote([]PageRef{ref(1)}); n != 0 || c != 0 {
		t.Fatal("nil Demote did something")
	}
	if m.Assign([]PageRef{ref(1)}, 0) != 0 {
		t.Fatal("nil Assign placed")
	}
	m.Release([]PageRef{ref(1)})
	if got := m.Stats(); !reflect.DeepEqual(got, Stats{}) {
		t.Fatalf("nil Stats() = %+v", got)
	}
}

func TestFirstTouchPlacementAndSpill(t *testing.T) {
	// Fast tier holds exactly two small pages.
	m := mustNew(t, TwoTier(2*pageB, 100, 0))
	if ti := m.TierOf(ref(1)); ti != 0 {
		t.Fatalf("page 1 placed in tier %d, want 0", ti)
	}
	if ti := m.TierOf(ref(2)); ti != 0 {
		t.Fatalf("page 2 placed in tier %d, want 0", ti)
	}
	// Third page spills to the slow tier.
	if ti := m.TierOf(ref(3)); ti != 1 {
		t.Fatalf("page 3 placed in tier %d, want spill to 1", ti)
	}
	s := m.Stats()
	if s.Tiers[0].UsedBytes != 2*pageB || s.Tiers[1].UsedBytes != pageB {
		t.Fatalf("used = %d/%d", s.Tiers[0].UsedBytes, s.Tiers[1].UsedBytes)
	}
	if s.Tiers[1].Spills != 1 {
		t.Fatalf("spills = %d, want 1", s.Tiers[1].Spills)
	}
	if s.Tiers[0].Assigns != 2 || s.Tiers[1].Assigns != 1 {
		t.Fatalf("assigns = %d/%d", s.Tiers[0].Assigns, s.Tiers[1].Assigns)
	}
	// Residency is sticky: re-looking-up does not reassign.
	if ti := m.TierOf(ref(1)); ti != 0 {
		t.Fatalf("page 1 moved to %d", ti)
	}
	if s2 := m.Stats(); s2.Tiers[0].Assigns != 2 {
		t.Fatalf("TierOf reassigned: %d", s2.Tiers[0].Assigns)
	}
}

func TestTouchCharges(t *testing.T) {
	m := mustNew(t, TwoTier(pageB, 100, 1000))
	if d := m.Touch(ref(1), 64); d != 0 {
		t.Fatalf("fast-tier touch cost %d, want 0", d)
	}
	// Page 2 spills to slow: latency + 4096 B at 1000 MB/s.
	want := simtime.Ticks(100) + simtime.BandwidthTicks(pageB, 1000)
	if d := m.Touch(ref(2), pageB); d != want {
		t.Fatalf("slow-tier touch cost %d, want %d", d, want)
	}
	s := m.Stats()
	if s.Tiers[1].TouchTicks != want {
		t.Fatalf("slow TouchTicks = %d, want %d", s.Tiers[1].TouchTicks, want)
	}
	if s.Tiers[0].TouchTicks != 0 {
		t.Fatalf("fast TouchTicks = %d, want 0", s.Tiers[0].TouchTicks)
	}
}

func TestMigratePromoteDemote(t *testing.T) {
	m := mustNew(t, TwoTier(2*pageB, 100, 0))
	for i := 1; i <= 4; i++ { // pages 3,4 spill to slow
		m.TierOf(ref(i))
	}
	// Promoting both slow pages only fits after demoting a fast one.
	if n, _ := m.Promote([]PageRef{ref(3), ref(4)}); n != 0 {
		t.Fatalf("overcommitting promote moved %d pages", n)
	}
	if n, c := m.Demote([]PageRef{ref(1)}); n != 1 || c <= 0 {
		t.Fatalf("demote: moved %d cost %d", n, c)
	}
	n, cost := m.Promote([]PageRef{ref(3)})
	if n != 1 {
		t.Fatalf("promote moved %d", n)
	}
	if want := m.MigrateCost(1, pageB); cost != want {
		t.Fatalf("promote cost %d, want %d", cost, want)
	}
	if ti := m.TierOf(ref(3)); ti != 0 {
		t.Fatalf("page 3 in tier %d after promote", ti)
	}
	s := m.Stats()
	if s.Promotions != 1 || s.Demotions != 1 {
		t.Fatalf("promotions/demotions = %d/%d", s.Promotions, s.Demotions)
	}
	if s.MigratedBytes != 2*pageB {
		t.Fatalf("migrated bytes = %d", s.MigratedBytes)
	}
	if s.Tiers[0].UsedBytes != 2*pageB || s.Tiers[1].UsedBytes != 2*pageB {
		t.Fatalf("used = %d/%d", s.Tiers[0].UsedBytes, s.Tiers[1].UsedBytes)
	}
	// Migrating a page to its own tier is a no-op.
	if n, c := m.Promote([]PageRef{ref(3)}); n != 0 || c != 0 {
		t.Fatal("same-tier migrate did work")
	}
	// Peak saw three fast pages never; it saw 2 at most.
	if s.Tiers[0].PeakBytes != 2*pageB {
		t.Fatalf("fast peak = %d", s.Tiers[0].PeakBytes)
	}
}

func TestMigrateUntrackedPlaces(t *testing.T) {
	m := mustNew(t, TwoTier(4*pageB, 100, 0))
	n, cost := m.Migrate([]PageRef{ref(9)}, 1)
	if n != 0 || cost != 0 {
		t.Fatalf("untracked migrate reported a copy: n=%d cost=%d", n, cost)
	}
	if ti := m.TierOf(ref(9)); ti != 1 {
		t.Fatalf("untracked page landed in %d, want 1", ti)
	}
}

func TestReleaseReturnsCapacity(t *testing.T) {
	m := mustNew(t, TwoTier(pageB, 100, 0))
	m.TierOf(ref(1))
	if m.FreeBytes(0) != 0 {
		t.Fatal("fast tier not full")
	}
	m.Release([]PageRef{ref(1), ref(2)}) // 2 untracked: no-op
	if m.FreeBytes(0) != pageB {
		t.Fatalf("free after release = %d", m.FreeBytes(0))
	}
	if ti := m.TierOf(ref(3)); ti != 0 {
		t.Fatalf("freed capacity not reusable (tier %d)", ti)
	}
	if m.FreeBytes(1) != math.MaxInt64 {
		t.Fatal("unbounded tier not reported unbounded")
	}
}

func TestAssignHonorsHint(t *testing.T) {
	m := mustNew(t, TwoTier(8*pageB, 100, 0))
	if got := m.Assign([]PageRef{ref(1), ref(2)}, 1); got != 2 {
		t.Fatalf("Assign to slow placed %d", got)
	}
	if ti := m.TierOf(ref(1)); ti != 1 {
		t.Fatalf("assigned page in tier %d", ti)
	}
	// Already-resident pages are not re-placed.
	if got := m.Assign([]PageRef{ref(1)}, 0); got != 0 {
		t.Fatal("Assign moved a resident page")
	}
	// Out-of-range hint falls back to the last tier.
	if m.Assign([]PageRef{ref(3)}, 99) != 1 {
		t.Fatal("out-of-range Assign failed")
	}
	if ti := m.TierOf(ref(3)); ti != 1 {
		t.Fatalf("out-of-range hint landed in %d", ti)
	}
}

func TestHugePageAccounting(t *testing.T) {
	m := mustNew(t, TwoTier(machine.HugePageSize, 100, 0))
	huge := PageRef{Frame: phys.Frame(1000), Bytes: machine.HugePageSize}
	if ti := m.TierOf(huge); ti != 0 {
		t.Fatalf("hugepage in tier %d", ti)
	}
	// Fast tier is now exactly full; a small page spills.
	if ti := m.TierOf(ref(1)); ti != 1 {
		t.Fatalf("small page in tier %d, want spill", ti)
	}
	// Demoting the hugepage costs ~512x a small-page copy.
	_, hugeCost := m.Demote([]PageRef{huge})
	small := m.MigrateCost(1, pageB)
	if hugeCost < 100*small {
		t.Fatalf("huge demote %d not ≫ small migrate %d", hugeCost, small)
	}
}

// TestMigrationDeterminism drives two managers through an identical
// seeded op sequence and requires bit-identical stats and costs — the
// memtier half of the ISSUE determinism criterion.
func TestMigrationDeterminism(t *testing.T) {
	run := func(seed int64) (Stats, simtime.Ticks) {
		rng := rand.New(rand.NewSource(seed))
		m := mustNew(t, TwoTier(64*pageB, 150, 800))
		var total simtime.Ticks
		for op := 0; op < 4096; op++ {
			r := ref(rng.Intn(256))
			switch rng.Intn(5) {
			case 0:
				total += m.Touch(r, uint64(rng.Intn(pageB)))
			case 1:
				_, c := m.Promote([]PageRef{r, ref(rng.Intn(256))})
				total += c
			case 2:
				_, c := m.Demote([]PageRef{r})
				total += c
			case 3:
				m.Assign([]PageRef{r}, rng.Intn(2))
			case 4:
				m.Release([]PageRef{r})
			}
		}
		return m.Stats(), total
	}
	for _, seed := range []int64{1, 2, 7} {
		s1, c1 := run(seed)
		s2, c2 := run(seed)
		if !reflect.DeepEqual(s1, s2) || c1 != c2 {
			t.Fatalf("seed %d diverged:\n%+v (%d)\n%+v (%d)", seed, s1, c1, s2, c2)
		}
	}
}
