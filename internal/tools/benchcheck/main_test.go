package main

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/sweep"
)

// validDoc renders a well-formed BENCH document through the same
// Execute/Write path sweeprun uses, so the fixture cannot drift from the
// real emitter. The grid is the cheapest meaningful one: a single
// strategied workload, two strategies, two seeds.
var validDoc = sync.OnceValue(func() string {
	g := sweep.Grid{
		Name:       "fixture",
		Machines:   []string{"opteron"},
		Workloads:  []string{"alloc/abinit"},
		Strategies: []string{"small-lazy", "huge-lazy"},
		Seeds:      []uint64{1, 2},
	}
	b, runErrs, err := sweep.Execute(g, sweep.Options{Workers: 2})
	if err != nil || len(runErrs) != 0 {
		panic("fixture grid failed")
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		panic(err)
	}
	return buf.String()
})

// mutate round-trips the valid document through Load-without-Validate so
// a test can break one invariant and re-render.
func mutate(t *testing.T, f func(*sweep.Bench)) string {
	t.Helper()
	b, err := check(strings.NewReader(validDoc()))
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	f(b)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCheckValidDocument(t *testing.T) {
	b, err := check(strings.NewReader(validDoc()))
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if b.Name != "fixture" || len(b.Cells) != 2 {
		t.Fatalf("decoded name=%q cells=%d, want fixture with 2 cells", b.Name, len(b.Cells))
	}
	if len(b.Comparisons) != 1 {
		t.Fatalf("decoded %d comparisons, want the small-lazy -> huge-lazy pair", len(b.Comparisons))
	}
}

func TestCheckRejectsUnknownField(t *testing.T) {
	doc := strings.Replace(validDoc(), `"schema_version"`, `"schema_version_v2"`, 1)
	if _, err := check(strings.NewReader(doc)); err == nil {
		t.Fatal("document with unknown field accepted")
	}
}

func TestCheckRejectsSchemaVersionMismatch(t *testing.T) {
	doc := mutate(t, func(b *sweep.Bench) { b.SchemaVersion = sweep.SchemaVersion + 1 })
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("err = %v, want schema-version complaint", err)
	}
}

func TestCheckRejectsMissingStats(t *testing.T) {
	doc := mutate(t, func(b *sweep.Bench) { b.Cells[0].Stats = nil })
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "missing stats") {
		t.Fatalf("err = %v, want missing-stats complaint", err)
	}
}

func TestCheckRejectsNonMonotonicSeeds(t *testing.T) {
	doc := mutate(t, func(b *sweep.Bench) {
		c := &b.Cells[0]
		c.Seeds[0], c.Seeds[1] = c.Seeds[1], c.Seeds[0]
		c.Runs[0], c.Runs[1] = c.Runs[1], c.Runs[0]
	})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "strictly increasing") {
		t.Fatalf("err = %v, want non-monotonic-seed complaint", err)
	}
}

func TestCheckRejectsMisalignedRunSeed(t *testing.T) {
	doc := mutate(t, func(b *sweep.Bench) { b.Cells[0].Runs[1].Seed = 99 })
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "carries seed") {
		t.Fatalf("err = %v, want seed-alignment complaint", err)
	}
}

func TestCheckRejectsOutOfOrderCells(t *testing.T) {
	doc := mutate(t, func(b *sweep.Bench) {
		b.Cells[0], b.Cells[1] = b.Cells[1], b.Cells[0]
	})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "canonical order") {
		t.Fatalf("err = %v, want canonical-order complaint", err)
	}
}

func TestCheckRejectsMalformedJSON(t *testing.T) {
	for _, doc := range []string{"", "not json", "[]", `{"schema_version":`} {
		if _, err := check(strings.NewReader(doc)); err == nil {
			t.Errorf("malformed document %q accepted", doc)
		}
	}
}

func TestCheckRejectsTrailingData(t *testing.T) {
	doc := validDoc() + "\n{}"
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("err = %v, want trailing-data complaint", err)
	}
}
