// Command benchcheck validates a BENCH document from cmd/sweeprun
// against the canonical schema. It strictly decodes stdin as a
// sweep.Bench (unknown fields and trailing data are errors) and enforces
// the document invariants — schema version, canonical cell order,
// strictly increasing seed lists, seed-aligned runs, stats covering
// every run metric — exiting non-zero on any mismatch. CI pipes every
// generated BENCH document through it so committed baselines and fresh
// runs cannot drift apart.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/sweep"
)

// check validates one BENCH document and returns it decoded. All the
// actual rules live in sweep.Load/sweep.Validate — the same path the
// regression gate uses to read baselines — so benchcheck and the gate
// accept exactly the same documents.
func check(r io.Reader) (*sweep.Bench, error) {
	return sweep.Load(r)
}

func main() {
	b, err := check(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: ok (grid %q, %d cell(s), %d comparison(s))\n",
		b.Name, len(b.Cells), len(b.Comparisons))
}
