// Command statscheck validates a -stats document from any of the cmd/
// tools against the shared telemetry schema. It strictly decodes stdin
// as []node.Report (unknown fields are errors in both directions —
// TestReportSchemaIsClosed in internal/node guards the reverse) and
// exits non-zero on any mismatch. CI pipes every tool's output through
// it so the six tools cannot drift apart.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/node"
)

// check validates one -stats document and returns the decoded reports.
// It enforces the full contract: strict []node.Report decoding (unknown
// fields rejected), no trailing data, a non-empty array, and per-report
// tool name and node snapshots.
func check(r io.Reader) ([]node.Report, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var reports []node.Report
	if err := dec.Decode(&reports); err != nil {
		return nil, fmt.Errorf("not valid []node.Report: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("trailing data after the report array")
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("empty report array")
	}
	for i, r := range reports {
		if r.Tool == "" {
			return nil, fmt.Errorf("report %d missing tool name", i)
		}
		if len(r.Nodes) == 0 {
			return nil, fmt.Errorf("report %d (%s) has no node snapshots", i, r.Tool)
		}
	}
	return reports, nil
}

func main() {
	reports, err := check(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "statscheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("statscheck: ok (%d report(s), tool %q)\n", len(reports), reports[0].Tool)
}
