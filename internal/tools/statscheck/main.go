// Command statscheck validates a -stats document from any of the cmd/
// tools against the shared telemetry schema. It strictly decodes stdin
// as []node.Report (unknown fields are errors in both directions —
// TestReportSchemaIsClosed in internal/node guards the reverse) and
// exits non-zero on any mismatch. CI pipes every tool's output through
// it so the six tools cannot drift apart.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/node"
)

// check validates one -stats document and returns the decoded reports.
// It enforces the full contract: strict []node.Report decoding (unknown
// fields rejected), no trailing data, a non-empty array, and per-report
// tool name and node snapshots.
func check(r io.Reader) ([]node.Report, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var reports []node.Report
	if err := dec.Decode(&reports); err != nil {
		return nil, fmt.Errorf("not valid []node.Report: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("trailing data after the report array")
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("empty report array")
	}
	for i, r := range reports {
		if r.Tool == "" {
			return nil, fmt.Errorf("report %d missing tool name", i)
		}
		if len(r.Nodes) == 0 {
			return nil, fmt.Errorf("report %d (%s) has no node snapshots", i, r.Tool)
		}
		for j, n := range r.Nodes {
			if err := checkPolicy(n.Policy); err != nil {
				return nil, fmt.Errorf("report %d (%s) node %d: %w", i, r.Tool, j, err)
			}
		}
		if err := checkPolicy(r.Total.Policy); err != nil {
			return nil, fmt.Errorf("report %d (%s) total: %w", i, r.Tool, err)
		}
		// The total must be exactly what this build's Sum derives from
		// the node snapshots — a document produced by an older
		// aggregation (the pre-max peak-gauge sum) fails here.
		if want := node.Sum(r.Nodes); r.Total != want {
			return nil, fmt.Errorf("report %d (%s): total is not Sum(nodes)", i, r.Tool)
		}
	}
	return reports, nil
}

// checkPolicy validates one policy-stats section: a known kind, no
// negative counters, and no counters without an engine.
func checkPolicy(p node.PolicyStats) error {
	switch p.Kind {
	case "", "static", "threshold", "adaptive":
	default:
		return fmt.Errorf("unknown policy kind %q", p.Kind)
	}
	counters := []struct {
		name string
		v    int64
	}{
		{"place_huge", p.PlaceHuge}, {"place_small", p.PlaceSmall},
		{"cache_lazy", p.CacheLazy}, {"cache_eager", p.CacheEager},
		{"sge_gather", p.SGEGather}, {"sge_pack", p.SGEPack},
		{"windows", p.Windows}, {"demote_decisions", p.DemoteDecisions},
		{"demoted_pages", p.DemotedPages}, {"demoted_bytes", p.DemotedBytes},
		{"demote_ticks", int64(p.DemoteTicks)},
	}
	var any bool
	for _, c := range counters {
		if c.v < 0 {
			return fmt.Errorf("policy counter %s is negative (%d)", c.name, c.v)
		}
		any = any || c.v != 0
	}
	if p.Kind == "" && any {
		return fmt.Errorf("policy counters present without a policy kind")
	}
	if p.DemotedBytes != p.DemotedPages*(2<<20) {
		return fmt.Errorf("demoted_bytes %d is not demoted_pages %d x 2 MiB", p.DemotedBytes, p.DemotedPages)
	}
	return nil
}

func main() {
	reports, err := check(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "statscheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("statscheck: ok (%d report(s), tool %q)\n", len(reports), reports[0].Tool)
}
