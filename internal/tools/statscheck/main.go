// Command statscheck validates a -stats document from any of the cmd/
// tools against the shared telemetry schema. It strictly decodes stdin
// as []node.Report (unknown fields are errors in both directions —
// TestReportSchemaIsClosed in internal/node guards the reverse) and
// exits non-zero on any mismatch. CI pipes every tool's output through
// it so the six tools cannot drift apart.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/node"
)

func main() {
	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	var reports []node.Report
	if err := dec.Decode(&reports); err != nil {
		fmt.Fprintf(os.Stderr, "statscheck: not valid []node.Report: %v\n", err)
		os.Exit(1)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		fmt.Fprintln(os.Stderr, "statscheck: trailing data after the report array")
		os.Exit(1)
	}
	if len(reports) == 0 {
		fmt.Fprintln(os.Stderr, "statscheck: empty report array")
		os.Exit(1)
	}
	for i, r := range reports {
		if r.Tool == "" || len(r.Nodes) == 0 {
			fmt.Fprintf(os.Stderr, "statscheck: report %d missing tool name or nodes\n", i)
			os.Exit(1)
		}
	}
	fmt.Printf("statscheck: ok (%d report(s), tool %q)\n", len(reports), reports[0].Tool)
}
