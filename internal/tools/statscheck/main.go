// Command statscheck validates a -stats document from any of the cmd/
// tools against the shared telemetry schema. It strictly decodes stdin
// as []node.Report (unknown fields are errors in both directions —
// TestReportSchemaIsClosed in internal/node guards the reverse) and
// exits non-zero on any mismatch. CI pipes every tool's output through
// it so the six tools cannot drift apart.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/node"
)

// check validates one -stats document and returns the decoded reports.
// It enforces the full contract: strict []node.Report decoding (unknown
// fields rejected), no trailing data, a non-empty array, and per-report
// tool name and node snapshots.
func check(r io.Reader) ([]node.Report, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var reports []node.Report
	if err := dec.Decode(&reports); err != nil {
		return nil, fmt.Errorf("not valid []node.Report: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("trailing data after the report array")
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("empty report array")
	}
	for i, r := range reports {
		if r.Tool == "" {
			return nil, fmt.Errorf("report %d missing tool name", i)
		}
		if len(r.Nodes) == 0 {
			return nil, fmt.Errorf("report %d (%s) has no node snapshots", i, r.Tool)
		}
		for j, n := range r.Nodes {
			if err := checkPolicy(n.Policy); err != nil {
				return nil, fmt.Errorf("report %d (%s) node %d: %w", i, r.Tool, j, err)
			}
			if err := checkMemtier(n.Memtier); err != nil {
				return nil, fmt.Errorf("report %d (%s) node %d: %w", i, r.Tool, j, err)
			}
			if err := checkColl(n.Coll); err != nil {
				return nil, fmt.Errorf("report %d (%s) node %d: %w", i, r.Tool, j, err)
			}
		}
		if err := checkPolicy(r.Total.Policy); err != nil {
			return nil, fmt.Errorf("report %d (%s) total: %w", i, r.Tool, err)
		}
		if err := checkColl(r.Total.Coll); err != nil {
			return nil, fmt.Errorf("report %d (%s) total: %w", i, r.Tool, err)
		}
		// The total must be exactly what this build's Sum derives from
		// the node snapshots — a document produced by an older
		// aggregation (the pre-max peak-gauge sum) fails here.
		if want := node.Sum(r.Nodes); r.Total != want {
			return nil, fmt.Errorf("report %d (%s): total is not Sum(nodes)", i, r.Tool)
		}
	}
	return reports, nil
}

// checkPolicy validates one policy-stats section: a known kind, no
// negative counters, and no counters without an engine.
func checkPolicy(p node.PolicyStats) error {
	switch p.Kind {
	case "", "static", "threshold", "adaptive":
	default:
		return fmt.Errorf("unknown policy kind %q", p.Kind)
	}
	counters := []struct {
		name string
		v    int64
	}{
		{"place_huge", p.PlaceHuge}, {"place_small", p.PlaceSmall},
		{"cache_lazy", p.CacheLazy}, {"cache_eager", p.CacheEager},
		{"sge_gather", p.SGEGather}, {"sge_pack", p.SGEPack},
		{"windows", p.Windows}, {"demote_decisions", p.DemoteDecisions},
		{"demoted_pages", p.DemotedPages}, {"demoted_bytes", p.DemotedBytes},
		{"demote_ticks", int64(p.DemoteTicks)},
		{"tier_migrates", p.TierMigrates}, {"tier_recomputes", p.TierRecomputes},
	}
	var any bool
	for _, c := range counters {
		if c.v < 0 {
			return fmt.Errorf("policy counter %s is negative (%d)", c.name, c.v)
		}
		any = any || c.v != 0
	}
	if p.Kind == "" && any {
		return fmt.Errorf("policy counters present without a policy kind")
	}
	if p.DemotedBytes != p.DemotedPages*(2<<20) {
		return fmt.Errorf("demoted_bytes %d is not demoted_pages %d x 2 MiB", p.DemotedBytes, p.DemotedPages)
	}
	return nil
}

// checkMemtier validates one node's memory-tier section. The
// invariants are per-node only: Sum adds used bytes but maxes peaks
// across nodes, so "used <= peak" does not survive aggregation and the
// total section is covered by the Sum(nodes) equality instead.
func checkMemtier(m node.MemtierStats) error {
	for _, t := range []struct {
		name string
		s    node.TierStat
	}{{"fast", m.Fast}, {"slow", m.Slow}} {
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"capacity_bytes", t.s.CapacityBytes}, {"used_bytes", t.s.UsedBytes},
			{"peak_bytes", t.s.PeakBytes}, {"assigns", t.s.Assigns},
			{"spills", t.s.Spills}, {"touch_ticks", int64(t.s.TouchTicks)},
		} {
			if c.v < 0 {
				return fmt.Errorf("memtier %s tier %s is negative (%d)", t.name, c.name, c.v)
			}
		}
		if t.s.UsedBytes > t.s.PeakBytes {
			return fmt.Errorf("memtier %s tier used_bytes %d exceeds peak_bytes %d",
				t.name, t.s.UsedBytes, t.s.PeakBytes)
		}
		if t.s.CapacityBytes > 0 && t.s.PeakBytes > t.s.CapacityBytes {
			return fmt.Errorf("memtier %s tier peak_bytes %d exceeds capacity %d",
				t.name, t.s.PeakBytes, t.s.CapacityBytes)
		}
		if t.s.Spills > t.s.Assigns {
			return fmt.Errorf("memtier %s tier spills %d exceed assigns %d",
				t.name, t.s.Spills, t.s.Assigns)
		}
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"promotions", m.Promotions}, {"demotions", m.Demotions},
		{"migrated_bytes", m.MigratedBytes}, {"migrate_ticks", int64(m.MigrateTicks)},
	} {
		if c.v < 0 {
			return fmt.Errorf("memtier %s is negative (%d)", c.name, c.v)
		}
	}
	if m.Promotions+m.Demotions > 0 && m.MigratedBytes == 0 {
		return fmt.Errorf("memtier records %d migrations but no migrated bytes",
			m.Promotions+m.Demotions)
	}
	return nil
}

// checkColl validates one collective-stats section: non-negative
// counters, and no traffic without a collective call.
func checkColl(c node.CollStats) error {
	counters := []struct {
		name string
		v    int64
	}{
		{"alltoalls", c.Alltoalls}, {"alltoallvs", c.Alltoallvs},
		{"pairwise_steps", c.PairwiseSteps}, {"bytes_sent", c.BytesSent},
		{"bytes_recv", c.BytesRecv}, {"local_copy_bytes", c.LocalCopyBytes},
	}
	for _, x := range counters {
		if x.v < 0 {
			return fmt.Errorf("coll counter %s is negative (%d)", x.name, x.v)
		}
	}
	if c.Alltoallvs == 0 && (c.PairwiseSteps > 0 || c.BytesSent > 0 || c.BytesRecv > 0) {
		return fmt.Errorf("coll traffic recorded without a collective call")
	}
	return nil
}

func main() {
	reports, err := check(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "statscheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("statscheck: ok (%d report(s), tool %q)\n", len(reports), reports[0].Tool)
}
