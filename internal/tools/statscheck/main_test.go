package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/node"
)

// validDoc renders a well-formed one-report document through the same
// WriteReports path the cmd tools use, so the fixture cannot drift from
// the real emitters.
func validDoc(t *testing.T) string {
	t.Helper()
	reports := []node.Report{
		node.NewReport("repro", "sendrecv", "opteron", "", []node.Stats{
			{Machine: "opteron", Allocator: "libc"},
			{Machine: "opteron", Allocator: "libc"},
		}),
	}
	var buf bytes.Buffer
	if err := node.WriteReports(&buf, reports); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCheckValidReport(t *testing.T) {
	reports, err := check(strings.NewReader(validDoc(t)))
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if len(reports) != 1 || reports[0].Tool != "repro" {
		t.Fatalf("decoded %+v, want one repro report", reports)
	}
	if len(reports[0].Nodes) != 2 {
		t.Fatalf("decoded %d node snapshots, want 2", len(reports[0].Nodes))
	}
}

func TestCheckRejectsUnknownField(t *testing.T) {
	doc := strings.Replace(validDoc(t), `"tool"`, `"tool_v2"`, 1)
	if _, err := check(strings.NewReader(doc)); err == nil {
		t.Fatal("document with unknown field accepted")
	}
}

func TestCheckRejectsMissingToolName(t *testing.T) {
	doc := strings.Replace(validDoc(t), `"repro"`, `""`, 1)
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "missing tool name") {
		t.Fatalf("err = %v, want missing-tool-name complaint", err)
	}
}

func TestCheckRejectsMissingNodes(t *testing.T) {
	doc := `[{"tool":"repro","workload":"w","machine":"m","nodes":[],"total":{}}]`
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "no node snapshots") {
		t.Fatalf("err = %v, want no-node-snapshots complaint", err)
	}
}

func TestCheckRejectsMalformedJSON(t *testing.T) {
	for _, doc := range []string{"", "not json", `{"tool":"repro"}`, `[{"tool":`} {
		if _, err := check(strings.NewReader(doc)); err == nil {
			t.Errorf("malformed document %q accepted", doc)
		}
	}
}

func TestCheckRejectsTrailingData(t *testing.T) {
	doc := validDoc(t) + "\n[]"
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("err = %v, want trailing-data complaint", err)
	}
}

func TestCheckRejectsEmptyArray(t *testing.T) {
	_, err := check(strings.NewReader("[]"))
	if err == nil || !strings.Contains(err.Error(), "empty report array") {
		t.Fatalf("err = %v, want empty-array complaint", err)
	}
}

// render marshals reports exactly as the cmd tools would, without
// recomputing totals — so tests can serve tampered documents.
func render(t *testing.T, reports []node.Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := node.WriteReports(&buf, reports); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCheckAcceptsPolicyCounters(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "hugetlbfs",
		Policy: node.PolicyStats{Kind: "adaptive", PlaceHuge: 4, DemotedPages: 2, DemotedBytes: 2 * 2 << 20}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	if _, err := check(strings.NewReader(doc)); err != nil {
		t.Fatalf("valid policy counters rejected: %v", err)
	}
}

func TestCheckRejectsUnknownPolicyKind(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Policy: node.PolicyStats{Kind: "greedy"}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "unknown policy kind") {
		t.Fatalf("err = %v, want unknown-policy-kind complaint", err)
	}
}

func TestCheckRejectsNegativePolicyCounter(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Policy: node.PolicyStats{Kind: "static", SGEPack: -1}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v, want negative-counter complaint", err)
	}
}

func TestCheckRejectsCountersWithoutKind(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Policy: node.PolicyStats{PlaceHuge: 3}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "without a policy kind") {
		t.Fatalf("err = %v, want counters-without-kind complaint", err)
	}
}

func TestCheckRejectsDemotedBytesMismatch(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "hugetlbfs",
		Policy: node.PolicyStats{Kind: "adaptive", DemotedPages: 2, DemotedBytes: 4096}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "demoted_bytes") {
		t.Fatalf("err = %v, want demoted-bytes complaint", err)
	}
}

func TestCheckAcceptsMemtierAndColl(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "hugetlbfs",
		Memtier: node.MemtierStats{
			Fast: node.TierStat{Name: "fast", CapacityBytes: 8 << 20, UsedBytes: 4 << 20,
				PeakBytes: 6 << 20, Assigns: 10, Spills: 2, TouchTicks: 100},
			Slow:       node.TierStat{Name: "slow", UsedBytes: 24 << 20, PeakBytes: 28 << 20, Assigns: 40},
			Promotions: 3, Demotions: 1, MigratedBytes: 4 << 20, MigrateTicks: 5000},
		Coll: node.CollStats{Alltoalls: 1, Alltoallvs: 2, PairwiseSteps: 6,
			BytesSent: 4096, BytesRecv: 4096, LocalCopyBytes: 512}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	if _, err := check(strings.NewReader(doc)); err != nil {
		t.Fatalf("valid memtier/coll sections rejected: %v", err)
	}
}

func TestCheckRejectsMemtierUsedOverPeak(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Memtier: node.MemtierStats{
			Fast: node.TierStat{Name: "fast", UsedBytes: 8 << 20, PeakBytes: 4 << 20, Assigns: 1}}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "exceeds peak_bytes") {
		t.Fatalf("err = %v, want used-over-peak complaint", err)
	}
}

func TestCheckRejectsMemtierPeakOverCapacity(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Memtier: node.MemtierStats{
			Fast: node.TierStat{Name: "fast", CapacityBytes: 4 << 20,
				UsedBytes: 2 << 20, PeakBytes: 8 << 20, Assigns: 1}}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "exceeds capacity") {
		t.Fatalf("err = %v, want peak-over-capacity complaint", err)
	}
}

func TestCheckRejectsMemtierSpillsOverAssigns(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Memtier: node.MemtierStats{
			Slow: node.TierStat{Name: "slow", Assigns: 1, Spills: 2}}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "exceed assigns") {
		t.Fatalf("err = %v, want spills-over-assigns complaint", err)
	}
}

func TestCheckRejectsMigrationsWithoutBytes(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Memtier: node.MemtierStats{Promotions: 2}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "no migrated bytes") {
		t.Fatalf("err = %v, want migrations-without-bytes complaint", err)
	}
}

func TestCheckRejectsNegativeCollCounter(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Coll: node.CollStats{Alltoallvs: 1, BytesSent: -5}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v, want negative-counter complaint", err)
	}
}

func TestCheckRejectsCollTrafficWithoutCall(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Coll: node.CollStats{BytesSent: 4096, BytesRecv: 4096, PairwiseSteps: 3}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "without a collective call") {
		t.Fatalf("err = %v, want traffic-without-call complaint", err)
	}
}

func TestCheckRejectsNegativeTierPolicyCounter(t *testing.T) {
	ns := []node.Stats{{Machine: "opteron", Allocator: "libc",
		Policy: node.PolicyStats{Kind: "adaptive", TierMigrates: -1}}}
	doc := render(t, []node.Report{node.NewReport("repro", "w", "opteron", "", ns)})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "tier_migrates") {
		t.Fatalf("err = %v, want negative tier_migrates complaint", err)
	}
}

// A total that is not Sum(nodes) — e.g. a document produced by the old
// peak-gauge-summing aggregation — must be rejected.
func TestCheckRejectsStaleTotal(t *testing.T) {
	r := node.NewReport("repro", "w", "opteron", "", []node.Stats{
		{Machine: "opteron", Allocator: "libc", Cache: node.CacheStats{PeakPinned: 100}},
		{Machine: "opteron", Allocator: "libc", Cache: node.CacheStats{PeakPinned: 60}},
	})
	r.Total.Cache.PeakPinned = 160 // the pre-fix sum; Sum keeps the max, 100
	doc := render(t, []node.Report{r})
	_, err := check(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "not Sum(nodes)") {
		t.Fatalf("err = %v, want total-not-sum complaint", err)
	}
}
