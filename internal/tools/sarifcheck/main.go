// Command sarifcheck validates a reprolint -format sarif document. It
// strictly decodes stdin (or the file named as the first argument) as
// SARIF 2.1.0 and exits non-zero on any structural violation: wrong
// version, missing tool driver, a result whose ruleId is not declared
// in the driver's rules (or whose ruleIndex disagrees), or a location
// without a file and line. `make lint` pipes the CI artifact through
// it before upload, so a serialization regression fails the build
// instead of being discovered as a rejected code-scanning upload.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// sarifDoc mirrors the subset of SARIF 2.1.0 reprolint emits. Decoding
// is strict: unknown fields are errors, so the checker also catches
// typos in the emitter's struct tags.
type sarifDoc struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name           string `json:"name"`
				InformationURI string `json:"informationUri"`
				Rules          []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI       string `json:"uri"`
						URIBaseID string `json:"uriBaseId"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

// check validates one SARIF document and returns the result count.
func check(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc sarifDoc
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("not valid SARIF JSON: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return 0, fmt.Errorf("trailing data after the SARIF document")
	}
	if doc.Version != "2.1.0" {
		return 0, fmt.Errorf("version %q, want 2.1.0", doc.Version)
	}
	if doc.Schema == "" {
		return 0, fmt.Errorf("missing $schema")
	}
	if len(doc.Runs) != 1 {
		return 0, fmt.Errorf("%d runs, want exactly 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name == "" {
		return 0, fmt.Errorf("run has no tool.driver.name")
	}
	ruleIndex := make(map[string]int, len(run.Tool.Driver.Rules))
	for i, rule := range run.Tool.Driver.Rules {
		if rule.ID == "" {
			return 0, fmt.Errorf("rule %d has an empty id", i)
		}
		if rule.ShortDescription.Text == "" {
			return 0, fmt.Errorf("rule %q has no shortDescription", rule.ID)
		}
		if _, dup := ruleIndex[rule.ID]; dup {
			return 0, fmt.Errorf("duplicate rule id %q", rule.ID)
		}
		ruleIndex[rule.ID] = i
	}
	for i, res := range run.Results {
		idx, ok := ruleIndex[res.RuleID]
		if !ok {
			return 0, fmt.Errorf("result %d references undeclared rule %q", i, res.RuleID)
		}
		if res.RuleIndex != idx {
			return 0, fmt.Errorf("result %d: ruleIndex %d disagrees with rules[%q]=%d", i, res.RuleIndex, res.RuleID, idx)
		}
		if res.Message.Text == "" {
			return 0, fmt.Errorf("result %d has an empty message", i)
		}
		if len(res.Locations) == 0 {
			return 0, fmt.Errorf("result %d has no locations", i)
		}
		for _, loc := range res.Locations {
			phys := loc.PhysicalLocation
			if phys.ArtifactLocation.URI == "" {
				return 0, fmt.Errorf("result %d has a location without a file URI", i)
			}
			if phys.Region.StartLine <= 0 {
				return 0, fmt.Errorf("result %d has a location without a positive startLine", i)
			}
		}
	}
	return len(run.Results), nil
}

func main() {
	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "sarifcheck:", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	}
	n, err := check(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sarifcheck: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("sarifcheck: %s: valid SARIF 2.1.0, %d result(s)\n", name, n)
}
