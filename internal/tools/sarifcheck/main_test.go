package main

import (
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// validDoc renders a two-finding document through the real
// analysis.SARIF emitter, so the fixture cannot drift from what
// reprolint actually produces.
func validDoc(t *testing.T) string {
	t.Helper()
	analyzers := []*analysis.Analyzer{
		{Name: "maporder", Doc: "flag map-ordered output"},
		{Name: "determinism", Doc: "forbid wall clocks"},
	}
	findings := []analysis.Finding{
		{Analyzer: "determinism", Pos: token.Position{Filename: "internal/x/x.go", Line: 10, Column: 3}, Message: "time.Now reads the wall clock"},
		{Analyzer: "maporder", Pos: token.Position{Filename: "internal/y/y.go", Line: 4, Column: 2}, Message: "append collects keys in map iteration order"},
	}
	out, err := analysis.SARIF(analyzers, findings)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	return string(out)
}

func TestValidDocumentPasses(t *testing.T) {
	n, err := check(strings.NewReader(validDoc(t)))
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if n != 2 {
		t.Fatalf("got %d results, want 2", n)
	}
}

func TestEmptyResultsStillValid(t *testing.T) {
	out, err := analysis.SARIF([]*analysis.Analyzer{{Name: "nilspec", Doc: "guard"}}, nil)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	if n, err := check(strings.NewReader(string(out))); err != nil || n != 0 {
		t.Fatalf("clean-run document: n=%d err=%v", n, err)
	}
}

func TestMutationsAreRejected(t *testing.T) {
	doc := validDoc(t)
	cases := []struct{ name, old, new, wantErr string }{
		{"not json", doc, "{", "not valid SARIF"},
		{"wrong version", `"version": "2.1.0"`, `"version": "2.0.0"`, "want 2.1.0"},
		{"unknown rule", `"ruleId": "maporder"`, `"ruleId": "ghost"`, "undeclared rule"},
		{"bad rule index", `"ruleIndex": 1,`, `"ruleIndex": 0,`, "disagrees"},
		{"zero line", `"startLine": 10`, `"startLine": 0`, "positive startLine"},
		{"unknown field", `"version"`, `"verzion"`, "not valid SARIF"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mutated := strings.Replace(doc, c.old, c.new, 1)
			if c.name == "not json" {
				mutated = c.new
			} else if mutated == doc {
				t.Fatalf("mutation %q did not apply", c.old)
			}
			_, err := check(strings.NewReader(mutated))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("got err %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestTrailingDataRejected(t *testing.T) {
	if _, err := check(strings.NewReader(validDoc(t) + "{}")); err == nil ||
		!strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing data not rejected: %v", err)
	}
}
