// halo.go is the Boyle-et-al-style 2-D halo-exchange + allreduce kernel
// (ROADMAP item 3c): ranks tile a periodic 2-D domain, every iteration
// exchanges the four boundary strips with the torus neighbours — rows
// travel contiguously, columns as per-element pieces whose SGE-or-pack
// form the policy engine picks — then runs a stencil sweep and a global
// residual allreduce. The strided column exchange is the Section 4
// scenario (many small pieces, one work request) embedded in a real
// communication pattern.
package workload

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// HaloParams sizes the halo-exchange workload.
type HaloParams struct {
	Seed  uint64
	N     int // local subdomain edge (N×N float64 cells + halo ring)
	Iters int
	// StencilFactor scales the sweep's FLOP time relative to streaming
	// the subdomain once.
	StencilFactor int
	// ResidualF64s is the per-iteration allreduce length.
	ResidualF64s int
}

// DefaultHaloParams: a 96² float64 field (≈74 KiB — hugepage-threshold
// sized, so the allocator choice decides its backing) and a
// rendezvous-sized residual reduction.
func DefaultHaloParams() HaloParams {
	return HaloParams{Seed: 1, N: 96, Iters: 6, StencilFactor: 8, ResidualF64s: 4096}
}

// HaloResult aggregates the run across ranks.
type HaloResult struct {
	HaloTicks    simtime.Ticks // summed over ranks: boundary exchange
	ComputeTicks simtime.Ticks // summed over ranks: stencil sweeps
	ReduceTicks  simtime.Ticks // summed over ranks: residual allreduce
	Makespan     simtime.Ticks
}

// haloGrid factors p into the most square px×py tiling.
func haloGrid(p int) (px, py int) {
	px = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			px = d
		}
	}
	return px, p / px
}

// RunHalo executes the workload on a fresh world built from cfg.
func RunHalo(cfg mpi.Config, p HaloParams) (*HaloResult, error) {
	if p.N < 4 {
		return nil, fmt.Errorf("workload: halo: N must be at least 4")
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	px, py := haloGrid(cfg.Ranks)
	res := &HaloResult{}
	halo := make([]simtime.Ticks, cfg.Ranks)
	comp := make([]simtime.Ticks, cfg.Ranks)
	red := make([]simtime.Ticks, cfg.Ranks)
	err = w.Run(func(r *mpi.Rank) error {
		const cell = 8 // float64
		stride := p.N + 2
		bytes := uint64(stride * stride * cell)
		fieldVA, err := r.Malloc(bytes)
		if err != nil {
			return err
		}
		// Deterministic initial field (the seed varies the data, not the
		// timing — the sweep's seed replicates stay byte-identical).
		init := make([]float64, stride*stride)
		for i := range init {
			init[i] = float64((r.ID()+1)*(i%97+1)+int(p.Seed%1024)) * 0.001
		}
		if err := r.WriteF64(fieldVA, init); err != nil {
			return err
		}
		// Torus coordinates and neighbours.
		cx, cy := r.ID()%px, r.ID()/px
		at := func(x, y int) int { return ((y+py)%py)*px + (x+px)%px }
		north, south := at(cx, cy-1), at(cx, cy+1)
		west, east := at(cx-1, cy), at(cx+1, cy)
		rowVA := func(row int) vm.VA { return fieldVA + vm.VA(row*stride*cell) }
		colPieces := func(col int) []mpi.Piece {
			ps := make([]mpi.Piece, p.N)
			for i := 0; i < p.N; i++ {
				ps[i] = mpi.Piece{VA: fieldVA + vm.VA(((i+1)*stride+col)*cell), Len: cell}
			}
			return ps
		}
		resVA, err := r.Malloc(uint64(8 * p.ResidualF64s))
		if err != nil {
			return err
		}
		residual := make([]float64, p.ResidualF64s)
		const (
			tagRow = 1 << 16
			tagCol = 2 << 16
		)
		rowBytes := stride * cell
		for it := 0; it < p.Iters; it++ {
			t0 := r.Now()
			// Row exchange (contiguous): top boundary north, bottom south.
			if north != r.ID() {
				if _, err := r.Sendrecv(
					north, tagRow+2*it, rowVA(1), rowBytes,
					south, tagRow+2*it, rowVA(stride-1), rowBytes); err != nil {
					return err
				}
				if _, err := r.Sendrecv(
					south, tagRow+2*it+1, rowVA(stride-2), rowBytes,
					north, tagRow+2*it+1, rowVA(0), rowBytes); err != nil {
					return err
				}
			}
			// Column exchange (strided pieces): the eager-sized payload
			// never blocks on a rendezvous handshake, so the ring of
			// send-then-receive pairs cannot deadlock.
			if west != r.ID() {
				if err := r.SendPieces(west, tagCol+2*it, colPieces(1)); err != nil {
					return err
				}
				if err := r.RecvUnpack(east, tagCol+2*it, colPieces(stride-1)); err != nil {
					return err
				}
				if err := r.SendPieces(east, tagCol+2*it+1, colPieces(stride-2)); err != nil {
					return err
				}
				if err := r.RecvUnpack(west, tagCol+2*it+1, colPieces(0)); err != nil {
					return err
				}
			}
			halo[r.ID()] += r.Now() - t0
			// Stencil sweep: stream the field, charge the FLOPs.
			t0 = r.Now()
			buf := make([]byte, bytes)
			if err := r.ReadBytes(fieldVA, buf); err != nil {
				return err
			}
			r.Compute(simtime.BandwidthTicks(int64(bytes)*int64(p.StencilFactor),
				cfg.Machine.Mem.CopyBandwidthMBs))
			comp[r.ID()] += r.Now() - t0
			// Residual allreduce.
			t0 = r.Now()
			for i := range residual {
				residual[i] = float64(r.ID()+i+it) * 0.5
			}
			if err := r.WriteF64(resVA, residual); err != nil {
				return err
			}
			if err := r.AllreduceF64(resVA, p.ResidualF64s, mpi.Sum); err != nil {
				return err
			}
			red[r.ID()] += r.Now() - t0
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Ranks; i++ {
		res.HaloTicks += halo[i]
		res.ComputeTicks += comp[i]
		res.ReduceTicks += red[i]
	}
	res.Makespan = w.MaxTime()
	return res, nil
}
