// Package workload generates the deterministic allocation traces used by
// the allocator benchmarks (E7/E8).
//
// AbinitTrace models the behaviour the paper observed when instrumenting
// Abinit: the application "raised a thrashing behaviour into the libc
// memory allocator" — bursts of allocate/free pairs of the *same* sizes
// in a short time frame (work arrays created and destroyed per SCF
// iteration), over a base of long-lived arrays. This is the pattern where
// immediate coalescing + re-splitting does maximal useless work and where
// the paper measured "allocation benefits of up to 10 times".
package workload

import (
	"math/rand"

	"repro/internal/alloc"
)

// AbinitParams sizes the synthetic Abinit trace.
type AbinitParams struct {
	Seed       int64
	Iterations int // SCF-like outer iterations
	WorkArrays int // arrays allocated+freed per iteration
	BaseArrays int // long-lived arrays allocated up front
	// MinSize/MaxSize bound the work-array sizes (bytes). Abinit work
	// arrays are wavefunction-sized: well above the 32 KiB threshold.
	MinSize, MaxSize uint64
}

// DefaultAbinitParams matches a mid-size Abinit run scaled to simulator
// speed.
func DefaultAbinitParams() AbinitParams {
	return AbinitParams{
		Seed:       1,
		Iterations: 60,
		WorkArrays: 24,
		BaseArrays: 12,
		MinSize:    48 << 10,
		MaxSize:    1536 << 10,
	}
}

// AbinitTrace builds the trace. Slot usage: slots [0,BaseArrays) hold the
// long-lived arrays; slots [BaseArrays, BaseArrays+WorkArrays) cycle every
// iteration with a fixed per-slot size — the same-size alloc/free pattern
// the paper's no-coalescing design point targets.
func AbinitTrace(p AbinitParams) ([]alloc.TraceOp, int) {
	rng := rand.New(rand.NewSource(p.Seed))
	slots := p.BaseArrays + p.WorkArrays
	var ops []alloc.TraceOp

	size := func() uint64 {
		s := p.MinSize + uint64(rng.Int63n(int64(p.MaxSize-p.MinSize)))
		return s &^ 1023 // Fortran arrays: kilobyte-granular
	}

	for i := 0; i < p.BaseArrays; i++ {
		ops = append(ops, alloc.TraceOp{Alloc: true, Size: size(), Slot: i})
	}
	// Per-slot work sizes are fixed across iterations (same routine, same
	// array shapes every SCF step).
	work := make([]uint64, p.WorkArrays)
	for i := range work {
		work[i] = size()
	}
	for it := 0; it < p.Iterations; it++ {
		for i := 0; i < p.WorkArrays; i++ {
			ops = append(ops, alloc.TraceOp{Alloc: true, Size: work[i], Slot: p.BaseArrays + i})
		}
		// Free in reverse order (stack-like lifetimes, as in Fortran).
		for i := p.WorkArrays - 1; i >= 0; i-- {
			ops = append(ops, alloc.TraceOp{Alloc: false, Slot: p.BaseArrays + i})
		}
	}
	for i := p.BaseArrays - 1; i >= 0; i-- {
		ops = append(ops, alloc.TraceOp{Alloc: false, Slot: i})
	}
	return ops, slots
}

// MixedParams sizes a general-purpose trace with random sizes and random
// lifetimes — the non-adversarial workload used to check that the
// library's no-coalescing policy does not fall apart outside its best
// case.
type MixedParams struct {
	Seed    int64
	Ops     int
	Slots   int
	MinSize uint64
	MaxSize uint64
}

// DefaultMixedParams returns a modest random workload.
func DefaultMixedParams() MixedParams {
	return MixedParams{Seed: 7, Ops: 4000, Slots: 64, MinSize: 256, MaxSize: 512 << 10}
}

// MixedTrace builds a random alloc/free interleaving.
func MixedTrace(p MixedParams) ([]alloc.TraceOp, int) {
	rng := rand.New(rand.NewSource(p.Seed))
	var ops []alloc.TraceOp
	live := make([]bool, p.Slots)
	nlive := 0
	for len(ops) < p.Ops {
		slot := rng.Intn(p.Slots)
		if live[slot] && (rng.Intn(2) == 0 || nlive > p.Slots*3/4) {
			ops = append(ops, alloc.TraceOp{Alloc: false, Slot: slot})
			live[slot] = false
			nlive--
			continue
		}
		sz := p.MinSize + uint64(rng.Int63n(int64(p.MaxSize-p.MinSize)))
		if live[slot] {
			nlive-- // implicit free by Replay
		}
		ops = append(ops, alloc.TraceOp{Alloc: true, Size: sz, Slot: slot})
		live[slot] = true
		nlive++
	}
	return ops, p.Slots
}
