// kvcache.go is the LLM-inference KV-cache workload (ROADMAP item 3b):
// per rank, a transformer's per-layer KV arenas live on the tiered
// memory model (internal/memtier), placed by the HBM/external
// best-ratio rule of SNIPPETS.md §3 — the fraction of cache kept on the
// fast tier equals fast bandwidth over total bandwidth. Decode steps
// append a token, attend over a recent window, and fetch a few
// retrieved (old) tokens; a retrieved token resident on the slow tier
// triggers the migrate-versus-recompute decision: promote its page
// (paying the modeled copy — a whole 2 MiB under hugepages, one 4 KiB
// page otherwise, which is where placement strategy bites) or recompute
// the KV in place. The decision routes through the policy engine's
// DecideMigrate, so the adaptive policy can refuse promotions the fast
// tier cannot hold.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/memtier"
	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// KVParams sizes the KV-cache decode workload.
type KVParams struct {
	Seed       uint64
	Layers     int    // transformer layers, one KV arena each
	LayerBytes uint64 // arena size (>= the hugepage threshold, so the
	// hugepage library backs each arena with 2 MiB pages)
	TokenBytes int // KV row per token per layer
	Prefill    int // tokens written before decoding starts
	Decode     int // decode steps
	Window     int // recent tokens attended every step
	Retrieve   int // old tokens fetched per step (the slow-tier hits)
	// RecomputeFactor scales the cost of recomputing one retrieved
	// token's KV relative to streaming its bytes once.
	RecomputeFactor int
	// FastBytes is the fast tier's capacity; SlowTouchTicks and
	// SlowBandwidthMBs parameterise the slow tier (see memtier.TwoTier).
	FastBytes        int64
	SlowTouchTicks   simtime.Ticks
	SlowBandwidthMBs float64
	// SyncF64s is the per-step allreduce length (logit sync).
	SyncF64s int
}

// DefaultKVParams: 16 × 2 MiB arenas (16 distinct hugepages — more than
// the Opteron's 8-entry 2 MiB TLB holds, the Figure-6-style pressure
// point), a fast tier holding a quarter of the cache, and enough
// retrieved tokens that migrate-vs-recompute fires every step.
func DefaultKVParams() KVParams {
	return KVParams{
		Seed:             1,
		Layers:           16,
		LayerBytes:       2 << 20,
		TokenBytes:       4 << 10,
		Prefill:          192,
		Decode:           24,
		Window:           16,
		Retrieve:         8,
		RecomputeFactor:  16,
		FastBytes:        8 << 20,
		SlowTouchTicks:   150,
		SlowBandwidthMBs: 800,
		SyncF64s:         4096,
	}
}

// KVResult aggregates the run across ranks.
type KVResult struct {
	PrefillTicks simtime.Ticks // summed over ranks
	DecodeTicks  simtime.Ticks // summed over ranks
	Makespan     simtime.Ticks
	Migrations   int64 // retrieved tokens promoted to the fast tier
	Recomputes   int64 // retrieved tokens recomputed in place
	Demotions    int64 // cold pages pushed back to the slow tier
}

// Tiers returns the two-tier memtier configuration the parameters
// imply; wire it into mpi.Config.Tiers (RunKV does this itself).
func (p KVParams) Tiers() *memtier.Config {
	return memtier.TwoTier(p.FastBytes, p.SlowTouchTicks, p.SlowBandwidthMBs)
}

// fastRatio is the SNIPPETS.md §3 best-ratio split: the fraction of
// the cache to keep on the fast tier equals the fast tier's share of
// total bandwidth.
func (p KVParams) fastRatio(fastMBs float64) float64 {
	if p.SlowBandwidthMBs <= 0 {
		return 1
	}
	return fastMBs / (fastMBs + p.SlowBandwidthMBs)
}

// RunKV executes the workload on a fresh world built from cfg (its
// Tiers field is overridden from the parameters).
func RunKV(cfg mpi.Config, p KVParams) (*KVResult, error) {
	if p.Prefill+p.Decode > int(p.LayerBytes)/p.TokenBytes {
		return nil, fmt.Errorf("workload: kv: %d tokens exceed layer arena", p.Prefill+p.Decode)
	}
	cfg.Tiers = p.Tiers()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	res := &KVResult{}
	pre := make([]simtime.Ticks, cfg.Ranks)
	dec := make([]simtime.Ticks, cfg.Ranks)
	mig := make([]int64, cfg.Ranks)
	rec := make([]int64, cfg.Ranks)
	dem := make([]int64, cfg.Ranks)
	err = w.Run(func(r *mpi.Rank) error {
		tiers := r.Node().Tiers
		rng := rand.New(rand.NewSource(int64(p.Seed)<<32 ^ int64(r.ID())))
		// One arena per layer: separate allocations, so the hugepage
		// library backs each with its own 2 MiB page(s).
		arenas := make([]vm.VA, p.Layers)
		for l := range arenas {
			va, err := r.Malloc(p.LayerBytes)
			if err != nil {
				return err
			}
			arenas[l] = va
		}
		tokVA := func(l, t int) vm.VA { return arenas[l] + vm.VA(t*p.TokenBytes) }
		// Best-ratio placement: the leading fraction of every arena is
		// pinned to the fast tier, the tail to the slow tier. First-touch
		// would fill the fast tier with the first arenas only; the
		// explicit split keeps every layer's hot head fast.
		ratio := p.fastRatio(cfg.Machine.Mem.CopyBandwidthMBs)
		for _, va := range arenas {
			fastLen := uint64(float64(p.LayerBytes) * ratio)
			if fastLen > 0 {
				if err := r.TierAssign(va, fastLen, 0); err != nil {
					return err
				}
			}
			if fastLen < p.LayerBytes {
				if err := r.TierAssign(va+vm.VA(fastLen), p.LayerBytes-fastLen, 1); err != nil {
					return err
				}
			}
		}
		row := make([]byte, p.TokenBytes)
		writeTok := func(l, t int) error {
			for i := range row {
				row[i] = byte(r.ID() + l*31 + t*7 + i)
			}
			return r.WriteBytes(tokVA(l, t), row)
		}
		// Prefill.
		t0 := r.Now()
		for t := 0; t < p.Prefill; t++ {
			for l := 0; l < p.Layers; l++ {
				if err := writeTok(l, t); err != nil {
					return err
				}
			}
		}
		pre[r.ID()] = r.Now() - t0
		// Decode.
		t0 = r.Now()
		win := make([]byte, p.Window*p.TokenBytes)
		// coldIdx walks the prefill region round-robin so each
		// make-room demotion frees a fresh page.
		coldIdx := 0
		syncVA, err := r.Malloc(uint64(8 * p.SyncF64s))
		if err != nil {
			return err
		}
		sync := make([]float64, p.SyncF64s)
		for s := 0; s < p.Decode; s++ {
			t := p.Prefill + s
			for l := 0; l < p.Layers; l++ {
				// Append this step's KV row.
				if err := writeTok(l, t); err != nil {
					return err
				}
				// Attend over the recent window: one streaming read per
				// layer — touches few 4 KiB pages, but a distinct 2 MiB
				// page per layer, which is what thrashes the large-page
				// TLB when the arenas are hugepage-backed.
				lo := t - p.Window + 1
				if lo < 0 {
					lo = 0
				}
				if err := r.ReadBytes(tokVA(l, lo), win[:(t-lo+1)*p.TokenBytes]); err != nil {
					return err
				}
			}
			// Retrieved tokens (prefix-cache / RAG hits): old positions,
			// likely on the slow tier. Promote or recompute, per policy.
			for k := 0; k < p.Retrieve; k++ {
				l := rng.Intn(p.Layers)
				old := rng.Intn(p.Prefill)
				va := tokVA(l, old)
				if tiers != nil && r.TierOf(va) != 0 {
					// The promotion unit is the page backing the row — a
					// whole 2 MiB under hugepages, 4 KiB otherwise — so
					// price and budget what would actually move.
					unit := uint64(p.TokenBytes)
					if pages, err := r.AS().Pages(va, uint64(p.TokenBytes)); err == nil && len(pages) > 0 {
						unit = pages[0].Class.Size()
					}
					migCost := tiers.MigrateCost(1, unit)
					recCost := simtime.BandwidthTicks(int64(p.TokenBytes*p.RecomputeFactor),
						cfg.Machine.Mem.CopyBandwidthMBs)
					if r.Node().Policy().DecideMigrate(unit, tiers.FreeBytes(0), migCost, recCost) {
						moved, err := r.TierPromote(va, uint64(p.TokenBytes))
						if err != nil {
							return err
						}
						if moved > 0 {
							mig[r.ID()]++
						} else {
							// Fast tier full: demote a cold prefill page to
							// make room, then retry once.
							cold := tokVA(coldIdx%p.Layers, (coldIdx/p.Layers)%p.Prefill)
							coldIdx++
							if _, err := r.TierDemote(cold, uint64(p.TokenBytes)); err != nil {
								return err
							}
							dem[r.ID()]++
							if moved, err = r.TierPromote(va, uint64(p.TokenBytes)); err != nil {
								return err
							} else if moved > 0 {
								mig[r.ID()]++
							} else {
								r.Compute(recCost)
								rec[r.ID()]++
							}
						}
					} else {
						r.Compute(recCost)
						rec[r.ID()]++
					}
				}
				// The retrieved row is read either way.
				if err := r.ReadBytes(va, row); err != nil {
					return err
				}
			}
			// Logit sync across the serving group.
			for i := range sync {
				sync[i] = float64(r.ID()*p.SyncF64s+i+s) * 0.25
			}
			if err := r.WriteF64(syncVA, sync); err != nil {
				return err
			}
			if err := r.AllreduceF64(syncVA, p.SyncF64s, mpi.Sum); err != nil {
				return err
			}
		}
		dec[r.ID()] = r.Now() - t0
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Ranks; i++ {
		res.PrefillTicks += pre[i]
		res.DecodeTicks += dec[i]
		res.Migrations += mig[i]
		res.Recomputes += rec[i]
		res.Demotions += dem[i]
	}
	res.Makespan = w.MaxTime()
	return res, nil
}
