// moe.go is the DeepEP-style Mixture-of-Experts dispatch/combine
// workload (ROADMAP item 3a): every rank hosts one expert, every token
// is routed to TopK experts inside one gating group (group-limited
// routing, which bounds the fan-out exactly like DeepEP's
// group-limited gating bounds NVLink/RDMA traffic), and each iteration
// pipelines dispatch → expert compute → combine in chunks so
// communication of one chunk overlaps the neighbours' compute in
// virtual time. Dispatch is the canonical AlltoallvPieces consumer:
// token rows scattered through the activation buffer travel either as
// one SGE gather list or packed, per the policy engine.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// MoEParams sizes the MoE dispatch/combine workload.
type MoEParams struct {
	Seed   uint64
	Tokens int // tokens per rank per iteration
	Hidden int // bytes per token row
	Groups int // gating groups (must divide the rank count)
	TopK   int // experts each token visits (within its group)
	Iters  int // training iterations
	Chunks int // pipeline chunks per iteration (dispatch/compute/combine)
	// ComputeFactor scales expert FLOP time relative to streaming the
	// received rows once.
	ComputeFactor int
}

// DefaultMoEParams is sized so one sweep cell stays under a second.
func DefaultMoEParams() MoEParams {
	return MoEParams{
		Seed:          1,
		Tokens:        128,
		Hidden:        1024,
		Groups:        2,
		TopK:          2,
		Iters:         3,
		Chunks:        2,
		ComputeFactor: 4,
	}
}

// MoEResult aggregates the run across ranks.
type MoEResult struct {
	DispatchTicks simtime.Ticks // summed over ranks: AlltoallvPieces time
	CombineTicks  simtime.Ticks // summed over ranks: combine Alltoallv time
	ComputeTicks  simtime.Ticks // summed over ranks: expert + scatter-add
	Makespan      simtime.Ticks
	RoutedRows    int64 // token·expert assignments dispatched
}

// moeRouting returns the TopK destination experts of every token rank
// src emits in (iter, chunk) — a pure function of the parameters, so
// every rank derives every peer's routing (and hence its own receive
// counts) without metadata exchange.
func moeRouting(p MoEParams, ranks, iter, chunk, src int) [][]int {
	lo, hi := chunkRange(p.Tokens, p.Chunks, chunk)
	rng := rand.New(rand.NewSource(int64(p.Seed)<<32 ^ int64(iter*1048576+chunk*65536+src)))
	groupSize := ranks / p.Groups
	out := make([][]int, hi-lo)
	for t := range out {
		g := rng.Intn(p.Groups)
		perm := rng.Perm(groupSize)
		k := p.TopK
		if k > groupSize {
			k = groupSize
		}
		dsts := make([]int, k)
		for i := 0; i < k; i++ {
			dsts[i] = g*groupSize + perm[i]
		}
		out[t] = dsts
	}
	return out
}

// chunkRange splits n tokens into even chunks, remainder to the front.
func chunkRange(n, chunks, c int) (lo, hi int) {
	base, rem := n/chunks, n%chunks
	lo = c*base + min(c, rem)
	hi = lo + base
	if c < rem {
		hi++
	}
	return lo, hi
}

// RunMoE executes the workload on a fresh world built from cfg.
func RunMoE(cfg mpi.Config, p MoEParams) (*MoEResult, error) {
	if cfg.Ranks%p.Groups != 0 {
		return nil, fmt.Errorf("workload: moe: %d groups must divide %d ranks", p.Groups, cfg.Ranks)
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	res := &MoEResult{}
	disp := make([]simtime.Ticks, cfg.Ranks)
	comb := make([]simtime.Ticks, cfg.Ranks)
	comp := make([]simtime.Ticks, cfg.Ranks)
	routed := make([]int64, cfg.Ranks)
	err = w.Run(func(r *mpi.Rank) error {
		ranks := r.Size()
		// Activation buffer: one row per token, written every iteration.
		tokVA, err := r.Malloc(uint64(p.Tokens * p.Hidden))
		if err != nil {
			return err
		}
		// Expert input: worst case every token of every rank lands here.
		expCap := uint64(ranks * p.Tokens * p.TopK * p.Hidden)
		expVA, err := r.Malloc(expCap)
		if err != nil {
			return err
		}
		// Combine return buffer: TopK rows come back per own token.
		retVA, err := r.Malloc(uint64(p.Tokens * p.TopK * p.Hidden))
		if err != nil {
			return err
		}
		row := make([]byte, p.Hidden)
		for it := 0; it < p.Iters; it++ {
			// Fresh activations (new layer input each iteration).
			for t := 0; t < p.Tokens; t++ {
				for i := range row {
					row[i] = byte(r.ID()*131 + t*17 + i + it)
				}
				if err := r.WriteBytes(tokVA+vm.VA(t*p.Hidden), row); err != nil {
					return err
				}
			}
			for c := 0; c < p.Chunks; c++ {
				// Routing for every rank this chunk: own sends + the
				// receive counts implied by the peers' routing.
				pieces := make([][]mpi.Piece, ranks)
				rc := make([]int, ranks)
				rd := make([]int, ranks)
				lo, _ := chunkRange(p.Tokens, p.Chunks, c)
				for src := 0; src < ranks; src++ {
					routing := moeRouting(p, ranks, it, c, src)
					for t, dsts := range routing {
						for _, d := range dsts {
							if src == r.ID() {
								pieces[d] = append(pieces[d], mpi.Piece{
									VA:  tokVA + vm.VA((lo+t)*p.Hidden),
									Len: p.Hidden,
								})
								routed[r.ID()]++
							}
							if d == r.ID() {
								rc[src] += p.Hidden
							}
						}
					}
				}
				recvTotal := 0
				for src := 0; src < ranks; src++ {
					rd[src] = recvTotal
					recvTotal += rc[src]
				}
				// Dispatch: scattered rows, SGE/pack per policy.
				t0 := r.Now()
				if err := r.AlltoallvPieces(pieces, expVA, rc, rd); err != nil {
					return err
				}
				disp[r.ID()] += r.Now() - t0
				// Expert compute streams the received rows.
				t0 = r.Now()
				if recvTotal > 0 {
					buf := make([]byte, recvTotal)
					if err := r.ReadBytes(expVA, buf); err != nil {
						return err
					}
					r.Compute(simtime.BandwidthTicks(int64(recvTotal*p.ComputeFactor),
						cfg.Machine.Mem.CopyBandwidthMBs))
				}
				comp[r.ID()] += r.Now() - t0
				// Combine: the expert returns each row to its source. Rows
				// sit grouped by source in the expert buffer, so this is
				// the contiguous Alltoallv with transposed counts.
				sc2 := rc
				sd2 := rd
				rc2 := make([]int, ranks)
				rd2 := make([]int, ranks)
				retTotal := 0
				own := moeRouting(p, ranks, it, c, r.ID())
				for _, dsts := range own {
					for _, d := range dsts {
						rc2[d] += p.Hidden
					}
				}
				for d := 0; d < ranks; d++ {
					rd2[d] = retTotal
					retTotal += rc2[d]
				}
				t0 = r.Now()
				if err := r.Alltoallv(expVA, sc2, sd2, retVA, rc2, rd2); err != nil {
					return err
				}
				comb[r.ID()] += r.Now() - t0
				// Scatter-add the returned rows into the activations.
				t0 = r.Now()
				if retTotal > 0 {
					buf := make([]byte, retTotal)
					if err := r.ReadBytes(retVA, buf); err != nil {
						return err
					}
					r.Compute(simtime.BandwidthTicks(int64(2*retTotal),
						cfg.Machine.Mem.CopyBandwidthMBs))
				}
				comp[r.ID()] += r.Now() - t0
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Ranks; i++ {
		res.DispatchTicks += disp[i]
		res.CombineTicks += comb[i]
		res.ComputeTicks += comp[i]
		res.RoutedRows += routed[i]
	}
	res.Makespan = w.MaxTime()
	return res, nil
}
