package workload

import (
	"reflect"
	"testing"
)

// The sweep engine replicates cells across seeds and relies on the trace
// generators being pure functions of their params: equal seeds must
// produce bit-equal traces (or GOMAXPROCS would leak into BENCH
// documents), and distinct seeds must actually perturb the trace (or the
// seed-replicated statistics would be degenerate).

func TestAbinitTraceDeterministicPerSeed(t *testing.T) {
	p := DefaultAbinitParams()
	ops1, slots1 := AbinitTrace(p)
	ops2, slots2 := AbinitTrace(p)
	if slots1 != slots2 || !reflect.DeepEqual(ops1, ops2) {
		t.Fatal("AbinitTrace is not deterministic for a fixed seed")
	}
}

func TestAbinitTraceVariesAcrossSeeds(t *testing.T) {
	a := DefaultAbinitParams()
	b := a
	b.Seed = a.Seed + 1
	opsA, _ := AbinitTrace(a)
	opsB, _ := AbinitTrace(b)
	if reflect.DeepEqual(opsA, opsB) {
		t.Fatal("AbinitTrace ignores its seed: replicate statistics would be degenerate")
	}
}

func TestMixedTraceDeterministicPerSeed(t *testing.T) {
	p := DefaultMixedParams()
	ops1, slots1 := MixedTrace(p)
	ops2, slots2 := MixedTrace(p)
	if slots1 != slots2 || !reflect.DeepEqual(ops1, ops2) {
		t.Fatal("MixedTrace is not deterministic for a fixed seed")
	}
}

func TestMixedTraceVariesAcrossSeeds(t *testing.T) {
	a := DefaultMixedParams()
	b := a
	b.Seed = a.Seed + 1
	opsA, _ := MixedTrace(a)
	opsB, _ := MixedTrace(b)
	if reflect.DeepEqual(opsA, opsB) {
		t.Fatal("MixedTrace ignores its seed")
	}
}
