package workload

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// modernConfig is the fixture the modern-workload tests share: 4 ranks
// on the Opteron under the huge-lazy strategy, the configuration the
// "modern" sweep grid exercises most.
func modernConfig(alloc mpi.AllocatorKind) mpi.Config {
	return mpi.Config{
		Machine:   machine.Opteron(),
		Ranks:     4,
		Allocator: alloc,
		LazyDereg: true,
		HugeATT:   true,
	}
}

func TestMoEDeterminism(t *testing.T) {
	p := DefaultMoEParams()
	a, err := RunMoE(modernConfig(mpi.AllocHuge), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMoE(modernConfig(mpi.AllocHuge), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n  %+v\n  %+v", a, b)
	}
	wantRouted := int64(4 * p.Iters * p.Tokens * p.TopK)
	if a.RoutedRows != wantRouted {
		t.Fatalf("routed rows = %d, want %d", a.RoutedRows, wantRouted)
	}
	if a.DispatchTicks == 0 || a.CombineTicks == 0 || a.ComputeTicks == 0 {
		t.Fatalf("phase breakdown has empty phases: %+v", a)
	}
}

func TestMoESeedChangesRouting(t *testing.T) {
	p := DefaultMoEParams()
	a, err := RunMoE(modernConfig(mpi.AllocHuge), p)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 2
	b, err := RunMoE(modernConfig(mpi.AllocHuge), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan == b.Makespan && a.DispatchTicks == b.DispatchTicks {
		t.Fatal("seed change did not perturb the routing-driven timing")
	}
}

func TestKVDeterminism(t *testing.T) {
	p := DefaultKVParams()
	a, err := RunKV(modernConfig(mpi.AllocHuge), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunKV(modernConfig(mpi.AllocHuge), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n  %+v\n  %+v", a, b)
	}
}

// TestKVCapacitySensitivity pins the acceptance criterion that the
// migrate-vs-recompute decisions change measurably with tier capacity:
// a fast tier large enough for the whole cache never faces the
// decision, a quarter-sized one faces it every step.
func TestKVCapacitySensitivity(t *testing.T) {
	small := DefaultKVParams() // 8 MiB fast tier, 32 MiB of cache
	rs, err := RunKV(modernConfig(mpi.AllocHuge), small)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Migrations+rs.Recomputes == 0 {
		t.Fatalf("capacity-pressured run made no tier decisions: %+v", rs)
	}

	big := DefaultKVParams()
	big.FastBytes = 64 << 20 // holds all 16 x 2 MiB arenas
	rb, err := RunKV(modernConfig(mpi.AllocHuge), big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Migrations != 0 || rb.Recomputes != 0 || rb.Demotions != 0 {
		t.Fatalf("uncontended fast tier still made tier decisions: %+v", rb)
	}
	if rb.Makespan >= rs.Makespan {
		t.Fatalf("larger fast tier did not speed up decode: big=%d small=%d",
			rb.Makespan, rs.Makespan)
	}
}

// TestKVStrategySplit pins the strategy dependence of the decision
// itself: under 4 KiB pages the promotion unit is one page and
// migration wins; under hugepages the unit is 2 MiB, migration costs
// more than recomputing the row, and the policy recomputes instead.
func TestKVStrategySplit(t *testing.T) {
	p := DefaultKVParams()
	libc, err := RunKV(modernConfig(mpi.AllocLibc), p)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := RunKV(modernConfig(mpi.AllocHuge), p)
	if err != nil {
		t.Fatal(err)
	}
	if libc.Migrations == 0 {
		t.Fatalf("small pages should migrate retrieved tokens: %+v", libc)
	}
	if huge.Migrations != 0 {
		t.Fatalf("2 MiB promotion units should always lose to recompute: %+v", huge)
	}
	if huge.Recomputes == 0 {
		t.Fatalf("hugepage run should recompute instead: %+v", huge)
	}
}

func TestHaloDeterminism(t *testing.T) {
	p := DefaultHaloParams()
	a, err := RunHalo(modernConfig(mpi.AllocHuge), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHalo(modernConfig(mpi.AllocHuge), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n  %+v\n  %+v", a, b)
	}
	if a.HaloTicks == 0 || a.ComputeTicks == 0 || a.ReduceTicks == 0 {
		t.Fatalf("phase breakdown has empty phases: %+v", a)
	}
}

func TestHaloGrid(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 8: {2, 4}, 9: {3, 3}}
	for p, want := range cases {
		px, py := haloGrid(p)
		if px != want[0] || py != want[1] {
			t.Errorf("haloGrid(%d) = %dx%d, want %dx%d", p, px, py, want[0], want[1])
		}
	}
}

func TestChunkRange(t *testing.T) {
	// 10 tokens in 3 chunks: 4+3+3, contiguous, covering.
	lo0, hi0 := chunkRange(10, 3, 0)
	lo1, hi1 := chunkRange(10, 3, 1)
	lo2, hi2 := chunkRange(10, 3, 2)
	if lo0 != 0 || hi0 != 4 || lo1 != 4 || hi1 != 7 || lo2 != 7 || hi2 != 10 {
		t.Fatalf("chunkRange split = [%d,%d) [%d,%d) [%d,%d)", lo0, hi0, lo1, hi1, lo2, hi2)
	}
}
