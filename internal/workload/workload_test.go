package workload

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/machine"
	"repro/internal/node/nodetest"
	"repro/internal/vm"
)

func newAS(t testing.TB) *vm.AddressSpace {
	t.Helper()
	return nodetest.New(t, machine.SystemP()).AS
}

func TestAbinitTraceShape(t *testing.T) {
	p := DefaultAbinitParams()
	ops, slots := AbinitTrace(p)
	if slots != p.BaseArrays+p.WorkArrays {
		t.Fatalf("slots = %d", slots)
	}
	allocs, frees := 0, 0
	for _, op := range ops {
		if op.Alloc {
			allocs++
			if op.Size < p.MinSize || op.Size > p.MaxSize {
				t.Fatalf("size %d out of bounds", op.Size)
			}
		} else {
			frees++
		}
	}
	if allocs != frees {
		t.Fatalf("unbalanced trace: %d allocs, %d frees", allocs, frees)
	}
	want := p.BaseArrays + p.Iterations*p.WorkArrays
	if allocs != want {
		t.Fatalf("allocs = %d, want %d", allocs, want)
	}
}

func TestAbinitTraceDeterministic(t *testing.T) {
	a, _ := AbinitTrace(DefaultAbinitParams())
	b, _ := AbinitTrace(DefaultAbinitParams())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestAbinitAllocationSpeedup(t *testing.T) {
	// The paper: "we measured allocation benefits of up to 10 times with
	// our library (e.g. for Abinit)". Require at least 5x here; the bench
	// reports the exact figure.
	ops, slots := AbinitTrace(DefaultAbinitParams())

	libc := alloc.NewLibc(newAS(t), 1300)
	rl, err := alloc.Replay(libc, ops, slots)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := alloc.NewHuge(newAS(t), 1300, alloc.DefaultHugeConfig())
	if err != nil {
		t.Fatal(err)
	}
	rh, err := alloc.Replay(huge, ops, slots)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rl.AllocTime) / float64(rh.AllocTime)
	t.Logf("alloc time libc=%v huge=%v speedup=%.1fx", rl.AllocTime, rh.AllocTime, ratio)
	if ratio < 5 {
		t.Fatalf("hugepage library speedup %.2fx < 5x on the Abinit trace", ratio)
	}
	if ratio > 20 {
		t.Fatalf("speedup %.2fx implausibly high (paper says up to 10x)", ratio)
	}
}

func TestMixedTraceRunsOnAllAllocators(t *testing.T) {
	ops, slots := MixedTrace(DefaultMixedParams())
	for _, mk := range []func() alloc.Allocator{
		func() alloc.Allocator { return alloc.NewLibc(newAS(t), 1300) },
		func() alloc.Allocator {
			h, err := alloc.NewHuge(newAS(t), 1300, alloc.DefaultHugeConfig())
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
		func() alloc.Allocator { return alloc.NewMorecore(newAS(t), 1300) },
	} {
		a := mk()
		res, err := alloc.Replay(a, ops, slots)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if res.Stats.LiveBytes != 0 {
			t.Fatalf("%s leaked", a.Name())
		}
	}
}

func TestMixedTraceDeterministic(t *testing.T) {
	a, _ := MixedTrace(DefaultMixedParams())
	b, _ := MixedTrace(DefaultMixedParams())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}
