package cas

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHashFieldsCanonical(t *testing.T) {
	a := HashFields(F("seed", "1"), F("ranks", "4"))
	b := HashFields(F("seed", "1"), F("ranks", "4"))
	if a != b {
		t.Fatal("same fields hash differently")
	}
	// Swapped values must not collide: the name is framed with the value.
	c := HashFields(F("seed", "4"), F("ranks", "1"))
	if a == c {
		t.Fatal("swapped field values collide")
	}
	// Embedded separators must not let two lists encode identically.
	d := HashFields(F("x", "a,3:b"), F("y", ""))
	e := HashFields(F("x", "a"), F("3:b,y", ""))
	if d == e {
		t.Fatal("netstring framing failed to separate fields")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	k := HashFields(F("a", "b"))
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("ParseKey(%q) = %v, %v", k, got, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("short/garbage key accepted")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := HashFields(F("cell", "nas/cg"), F("seed", "1"))
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte(`{"total_ticks":123}`)
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Overwrite keeps one entry.
	if err := s.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(k); string(got) != "x" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", s.Len())
	}
}

func TestStoreReopenIndexesEntries(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	k1 := HashFields(F("n", "1"))
	k2 := HashFields(F("n", "2"))
	s.Put(k1, []byte("one"))
	s.Put(k2, []byte("two"))
	// A stray temp file from a crashed write must be swept, not indexed.
	tmp := s.path(k1) + ".tmp"
	os.WriteFile(tmp, []byte("partial"), 0o644)

	re, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", re.Len())
	}
	if got, ok := re.Get(k1); !ok || string(got) != "one" {
		t.Fatalf("reopened Get(k1) = %q, %v", got, ok)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("crashed temp file survived reopen")
	}
}

func TestCorruptEntrySelfHeals(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	k := HashFields(F("n", "1"))
	s.Put(k, []byte("payload"))
	// Flip payload bytes on disk behind the store's back.
	path := s.path(k)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)

	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	st := s.Stats()
	if st.Corruptions != 1 || st.Entries != 0 {
		t.Fatalf("stats after corruption = %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not deleted")
	}
	// The key is writable again.
	if err := s.Put(k, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k); !ok || string(got) != "fresh" {
		t.Fatalf("after heal Get = %q, %v", got, ok)
	}
}

func TestTruncatedEntryRejectedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	k := HashFields(F("n", "1"))
	s.Put(k, []byte("payload"))
	os.WriteFile(s.path(k), []byte("garbage no newline"), 0o644)
	re, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 0 {
		t.Fatal("garbage entry indexed")
	}
	if re.Stats().Corruptions != 1 {
		t.Fatalf("stats = %+v", re.Stats())
	}
}

// TestEvictionUnderSizeCap pins the LRU semantics: when the footprint
// exceeds the cap, least-recently-used entries (by write order,
// refreshed on access) are deleted first, and an access protects an
// entry from the next eviction round.
func TestEvictionUnderSizeCap(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 200)
	// Each entry is ~200 bytes payload + ~140 header; cap at 3 entries' worth.
	s, err := Open(dir, 1100)
	if err != nil {
		t.Fatal(err)
	}
	k := func(i byte) Key { return HashFields(F("n", string('a'+i))) }
	for i := byte(0); i < 3; i++ {
		if err := s.Put(k(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 || s.Stats().Evictions != 0 {
		t.Fatalf("premature eviction: %+v", s.Stats())
	}
	// Touch k0 so k1 becomes LRU, then overflow with k3.
	if _, ok := s.Get(k(0)); !ok {
		t.Fatal("k0 missing before eviction")
	}
	if err := s.Put(k(3), payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k(1)); ok {
		t.Fatal("LRU entry k1 survived the cap")
	}
	for _, i := range []byte{0, 2, 3} {
		if !s.Contains(k(i)) {
			t.Fatalf("entry k%d wrongly evicted", i)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 1100 {
		t.Fatalf("footprint %d exceeds cap", st.Bytes)
	}
	// An entry bigger than the whole cap never sticks.
	if err := s.Put(k(4), bytes.Repeat(payload, 10)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(k(4)) {
		t.Fatal("over-cap entry retained")
	}
}

func TestFingerprintDirTracksCode(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(root, rel)
		os.MkdirAll(filepath.Dir(path), 0o755)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module demo\n")
	write("a.go", "package demo\n")
	write("sub/b.go", "package sub\n")
	fp1, err := FingerprintDir(root)
	if err != nil {
		t.Fatal(err)
	}
	fp2, _ := FingerprintDir(root)
	if fp1 != fp2 {
		t.Fatal("fingerprint not deterministic")
	}
	if !strings.HasPrefix(fp1, "src:") {
		t.Fatalf("fingerprint %q missing src: prefix", fp1)
	}
	// Test files, docs and testdata are code-irrelevant.
	write("a_test.go", "package demo\n")
	write("README.md", "docs\n")
	write("testdata/fixture.go", "package fixture\n")
	if fp, _ := FingerprintDir(root); fp != fp1 {
		t.Fatal("test/doc/testdata edits changed the fingerprint")
	}
	// Editing production code must change it.
	write("sub/b.go", "package sub // edited\n")
	if fp, _ := FingerprintDir(root); fp == fp1 {
		t.Fatal("code edit did not change the fingerprint")
	}
}

func TestModuleFingerprintStable(t *testing.T) {
	fp := ModuleFingerprint()
	if fp == "" {
		t.Fatal("empty module fingerprint")
	}
	if fp != ModuleFingerprint() {
		t.Fatal("module fingerprint not stable within a process")
	}
}
