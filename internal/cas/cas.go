// Package cas is a content-addressed result store: a durable map from a
// canonical hash of an experiment's inputs to the bytes the experiment
// produced. It exists because PRs 5–8 made every sweep cell a pure
// function of (workload, machine, strategy, fault spec, seed, code) —
// which makes caching trivially sound: if the key matches, the bytes
// are THE answer, not an approximation of it. The sweep engine and the
// sweepd service key each (cell, seed) run by HashFields over those
// inputs plus the module fingerprint, so a re-run of an unchanged grid
// executes zero cells and a code edit invalidates exactly everything.
//
// The store is deliberately boring: entries are files sharded by key
// prefix, writes go through a temp file and an atomic rename, reads
// verify a SHA-256 payload checksum (a corrupt entry deletes itself and
// reports a miss, never a wrong answer), and a size cap evicts in LRU
// order tracked by write/access sequence numbers — no wall clock
// anywhere, so the package stays inside the determinism lint boundary.
package cas

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Key is the content address: a SHA-256 over the canonically encoded
// key material (HashFields).
type Key [sha256.Size]byte

// String renders the key as lowercase hex — the on-disk file name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes a hex key string.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("cas: %q is not a %d-byte hex key", s, len(k))
	}
	copy(k[:], b)
	return k, nil
}

// Field is one named component of a key. Both the name and the value
// participate in the hash, so reordering semantically different values
// ("seed"=1,"ranks"=4 vs "seed"=4,"ranks"=1) cannot collide.
type Field struct{ Name, Value string }

// F builds a Field.
func F(name, value string) Field { return Field{Name: name, Value: value} }

// HashFields derives the key for a field list. The encoding is
// canonical and prefix-free — every string is netstring-framed
// ("<len>:<bytes>,") — so distinct field lists can never encode to the
// same byte stream regardless of embedded separators. Field order is
// significant; callers fix it by construction.
func HashFields(fields ...Field) Key {
	h := sha256.New()
	for _, f := range fields {
		writeNetstring(h, f.Name)
		writeNetstring(h, f.Value)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

func writeNetstring(w io.Writer, s string) {
	io.WriteString(w, strconv.Itoa(len(s)))
	io.WriteString(w, ":")
	io.WriteString(w, s)
	io.WriteString(w, ",")
}

// Stats are the store's monotonic counters plus its current footprint,
// exposed verbatim by sweepd's /statsz.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Evictions   uint64 `json:"evictions"`
	Corruptions uint64 `json:"corruptions"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	MaxBytes    int64  `json:"max_bytes"`
}

// entry is the in-memory index record of one stored key.
type entry struct {
	key  Key
	size int64 // on-disk file size (header + payload)
	seq  uint64
	prev *entry
	next *entry
}

// Store is an on-disk content-addressed store. All methods are safe for
// concurrent use; the mutex also serializes disk I/O, which keeps the
// write path trivially atomic-per-entry (rename) without write-ahead
// machinery.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[Key]*entry
	// head/tail delimit the recency list: head = most recently used,
	// tail = eviction candidate.
	head, tail *entry
	seq        uint64
	bytes      int64
	stats      Stats
}

// magic is the envelope format tag; bump it on any header change so old
// stores read as corrupt (and self-heal) instead of misparsing.
const magic = "cas1"

// Open opens (creating if needed) a store rooted at dir. maxBytes <= 0
// disables the size cap. Existing entries are indexed by scanning the
// shard directories; their relative recency is their write order (the
// envelope's sequence number) — access order is tracked in memory only,
// so a reopened store starts from write order, which is deterministic.
// Unparseable entries are deleted and counted as corruptions.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, entries: make(map[Key]*entry)}
	var found []*entry
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crashed write; the rename never happened, so the entry
			// never existed. Clean it up.
			os.Remove(path)
			return nil
		}
		k, kerr := ParseKey(name)
		info, ierr := d.Info()
		if kerr != nil || ierr != nil {
			s.stats.Corruptions++
			os.Remove(path)
			return nil
		}
		seq, herr := readHeaderSeq(path, k)
		if herr != nil {
			s.stats.Corruptions++
			os.Remove(path)
			return nil
		}
		found = append(found, &entry{key: k, size: info.Size(), seq: seq})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cas: scanning %s: %w", dir, err)
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq < found[j].seq })
	for _, e := range found {
		s.entries[e.key] = e
		s.pushFront(e)
		s.bytes += e.size
		if e.seq >= s.seq {
			s.seq = e.seq + 1
		}
	}
	s.evictLocked(nil)
	return s, nil
}

// Dir reports the store root.
func (s *Store) Dir() string { return s.dir }

// path returns the entry file for a key: <dir>/<hex[:2]>/<hex>.
func (s *Store) path(k Key) string {
	hexKey := k.String()
	return filepath.Join(s.dir, hexKey[:2], hexKey)
}

// Get returns the payload stored under k. A missing key, or an entry
// that fails the integrity check (which is deleted and counted as a
// corruption), reports ok = false.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	payload, err := readEntry(s.path(k), k)
	if err != nil {
		s.dropLocked(e, true)
		s.stats.Misses++
		return nil, false
	}
	s.touchLocked(e)
	s.stats.Hits++
	return payload, true
}

// Contains reports whether k is indexed, without reading or touching
// the entry.
func (s *Store) Contains(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[k]
	return ok
}

// Put stores payload under k, overwriting any previous entry, then
// enforces the size cap by evicting least-recently-used entries. A
// payload too large for the cap on its own is written and immediately
// evicted — Put never fails just because the value is big.
func (s *Store) Put(k Key, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seq
	s.seq++
	size, err := writeEntry(s.path(k), k, seq, payload)
	if err != nil {
		return err
	}
	if old, ok := s.entries[k]; ok {
		s.bytes -= old.size
		old.size = size
		old.seq = seq
		s.touchLocked(old)
	} else {
		e := &entry{key: k, size: size, seq: seq}
		s.entries[k] = e
		s.pushFront(e)
	}
	s.bytes += size
	s.stats.Puts++
	s.evictLocked(nil)
	return nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	st.MaxBytes = s.maxBytes
	return st
}

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// evictLocked deletes LRU entries until the footprint fits the cap.
// keep, when non-nil, is exempt (unused today; the just-put entry is
// the MRU so it goes last anyway).
func (s *Store) evictLocked(keep *entry) {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && s.tail != nil {
		e := s.tail
		if e == keep {
			break
		}
		s.dropLocked(e, false)
		s.stats.Evictions++
	}
}

// dropLocked removes an entry from the index, the recency list and the
// disk.
func (s *Store) dropLocked(e *entry, corrupt bool) {
	s.unlink(e)
	delete(s.entries, e.key)
	s.bytes -= e.size
	os.Remove(s.path(e.key))
	if corrupt {
		s.stats.Corruptions++
	}
}

func (s *Store) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) touchLocked(e *entry) {
	s.unlink(e)
	s.pushFront(e)
}

// writeEntry renders the envelope to a temp file in the shard directory
// and renames it into place — readers never observe a partial entry.
func writeEntry(path string, k Key, seq uint64, payload []byte) (int64, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, fmt.Errorf("cas: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d %s %d\n", magic, k, seq, hex.EncodeToString(sum[:]), len(payload))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("cas: %w", err)
	}
	if _, err := io.WriteString(f, header); err == nil {
		_, err = f.Write(payload)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("cas: writing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("cas: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("cas: %w", err)
	}
	return int64(len(header) + len(payload)), nil
}

// parseHeader splits and checks one envelope header line against the
// expected key, returning the sequence number and declared payload
// length.
func parseHeader(line string, k Key) (seq uint64, sum string, n int, err error) {
	parts := strings.Fields(strings.TrimSuffix(line, "\n"))
	if len(parts) != 5 || parts[0] != magic {
		return 0, "", 0, fmt.Errorf("cas: bad envelope header")
	}
	if parts[1] != k.String() {
		return 0, "", 0, fmt.Errorf("cas: envelope key mismatch")
	}
	if seq, err = strconv.ParseUint(parts[2], 10, 64); err != nil {
		return 0, "", 0, fmt.Errorf("cas: bad sequence: %w", err)
	}
	if n, err = strconv.Atoi(parts[4]); err != nil || n < 0 {
		return 0, "", 0, fmt.Errorf("cas: bad payload length")
	}
	return seq, parts[3], n, nil
}

// readHeaderSeq reads just the envelope header — the Open scan path.
func readHeaderSeq(path string, k Key) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	line, err := bufio.NewReader(f).ReadString('\n')
	if err != nil {
		return 0, err
	}
	seq, _, _, err := parseHeader(line, k)
	return seq, err
}

// readEntry reads and integrity-checks one entry: the declared length
// must match the bytes present and the payload must hash to the
// recorded sum.
func readEntry(path string, k Key) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	i := strings.IndexByte(string(data), '\n')
	if i < 0 {
		return nil, fmt.Errorf("cas: truncated envelope")
	}
	_, sum, n, err := parseHeader(string(data[:i+1]), k)
	if err != nil {
		return nil, err
	}
	payload := data[i+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("cas: payload length %d, declared %d", len(payload), n)
	}
	got := sha256.Sum256(payload)
	if hex.EncodeToString(got[:]) != sum {
		return nil, fmt.Errorf("cas: payload checksum mismatch")
	}
	return payload, nil
}

// moduleOnce caches the per-process fingerprint; the source tree cannot
// change under a running process in any way the cache could notice
// anyway (the binary is already built).
var moduleOnce = sync.OnceValue(func() string {
	if dir, ok := findModuleRoot(); ok {
		if fp, err := FingerprintDir(dir); err == nil {
			return fp
		}
	}
	return buildInfoFingerprint()
})

// ModuleFingerprint returns the code fingerprint mixed into every sweep
// cache key: a hash of the enclosing module's go.mod and every
// non-test .go file (testdata and hidden directories excluded), located
// by walking up from the working directory. When no module root is
// findable (an installed binary run elsewhere), it falls back to the
// embedded build info, and as a last resort to the toolchain version —
// strictly coarser keys, never wrong ones: any doubt about what code is
// running becomes a cache miss, not a stale hit.
func ModuleFingerprint() string { return moduleOnce() }

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, bool) {
	dir, err := os.Getwd()
	if err != nil {
		return "", false
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", false
		}
		dir = parent
	}
}

// FingerprintDir hashes the code-relevant content of a module tree:
// go.mod plus every *.go file that is not a _test.go, skipping testdata
// and dot-directories. Paths are hashed in sorted slash form, each with
// its content hash, so the fingerprint is independent of walk order and
// host path separators. Editing any production source changes the
// fingerprint; editing tests, docs, or committed BENCH baselines does
// not.
func FingerprintDir(root string) (string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if name == "go.mod" || (strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")) {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("cas: fingerprinting %s: %w", root, err)
	}
	sort.Strings(files)
	h := sha256.New()
	for _, path := range files {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return "", err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return "", fmt.Errorf("cas: fingerprinting %s: %w", path, err)
		}
		sum := sha256.Sum256(data)
		writeNetstring(h, filepath.ToSlash(rel))
		writeNetstring(h, hex.EncodeToString(sum[:]))
	}
	return "src:" + hex.EncodeToString(h.Sum(nil)), nil
}

// buildInfoFingerprint derives a fingerprint from the embedded build
// info: the main module version, dependency sums and VCS stamp when
// present. Distinct builds of distinct code usually differ here; when
// even that is absent the toolchain version alone remains, which at
// least partitions caches across Go releases.
func buildInfoFingerprint() string {
	h := sha256.New()
	if bi, ok := debug.ReadBuildInfo(); ok {
		writeNetstring(h, bi.GoVersion)
		writeNetstring(h, bi.Main.Path)
		writeNetstring(h, bi.Main.Version)
		writeNetstring(h, bi.Main.Sum)
		for _, dep := range bi.Deps {
			writeNetstring(h, dep.Path)
			writeNetstring(h, dep.Version)
			writeNetstring(h, dep.Sum)
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" || s.Key == "vcs.modified" {
				writeNetstring(h, s.Key)
				writeNetstring(h, s.Value)
			}
		}
	}
	return "bld:" + hex.EncodeToString(h.Sum(nil))
}
