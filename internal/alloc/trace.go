package alloc

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/vm"
)

// TraceOp is one step of an allocation trace: either allocate Size bytes
// into slot Slot, or free whatever slot Slot holds.
type TraceOp struct {
	Alloc bool
	Size  uint64
	Slot  int
}

// ReplayResult summarises one trace replay.
type ReplayResult struct {
	Ops       int
	AllocTime simtime.Ticks // allocator CPU time consumed by the trace
	Stats     Stats
}

// Replay drives an allocator through a trace. Slots model the
// application's live pointers; replaying the same trace against different
// allocators is how the Abinit claim (E7) and the design ablations (E8)
// are measured. Any leftover live slots are freed at the end so repeated
// replays start from the same state.
func Replay(a Allocator, ops []TraceOp, slots int) (ReplayResult, error) {
	live := make(map[int]vm.VA) // slot -> va
	before := a.Stats().Ticks
	for i, op := range ops {
		if op.Slot < 0 || op.Slot >= slots {
			return ReplayResult{}, fmt.Errorf("alloc: trace op %d: slot %d out of range", i, op.Slot)
		}
		if op.Alloc {
			if va, ok := live[op.Slot]; ok {
				if err := a.Free(va); err != nil {
					return ReplayResult{}, fmt.Errorf("alloc: trace op %d implicit free: %w", i, err)
				}
			}
			va, err := a.Alloc(op.Size)
			if err != nil {
				return ReplayResult{}, fmt.Errorf("alloc: trace op %d alloc %d: %w", i, op.Size, err)
			}
			live[op.Slot] = va
		} else {
			va, ok := live[op.Slot]
			if !ok {
				continue // free of an empty slot is a no-op in traces
			}
			delete(live, op.Slot)
			if err := a.Free(va); err != nil {
				return ReplayResult{}, fmt.Errorf("alloc: trace op %d free: %w", i, err)
			}
		}
	}
	for slot, va := range live {
		if err := a.Free(va); err != nil {
			return ReplayResult{}, fmt.Errorf("alloc: trace teardown slot %d: %w", slot, err)
		}
	}
	st := a.Stats()
	return ReplayResult{
		Ops:       len(ops),
		AllocTime: st.Ticks - before,
		Stats:     st,
	}, nil
}
