// Package alloc implements the allocation-side of the paper: the
// transparent hugepage library of Section 3 (hugealloc), the libc-style
// general-purpose allocator it delegates small requests to (libcalloc),
// and models of the two competing libraries discussed in Section 2 —
// libhugetlbfs (morecore: the libc algorithm drawing its arena from
// hugepages) and libhugepagealloc (pagesep: every buffer in its own
// hugepage).
//
// Every allocator charges virtual time for the algorithmic work it
// actually performs (freelist nodes visited, splits, coalesces, syscalls),
// so the §2 claim "we measured allocation benefits of up to 10 times with
// our library (e.g. for Abinit)" is reproduced from mechanism, not
// hard-coded.
package alloc

import (
	"errors"

	"repro/internal/simtime"
	"repro/internal/vm"
)

// Allocator is the malloc/free surface every model implements.
type Allocator interface {
	// Alloc returns the virtual address of a new block of at least size
	// bytes.
	Alloc(size uint64) (vm.VA, error)
	// Free releases a block previously returned by Alloc.
	Free(va vm.VA) error
	// UsableSize reports the block size reserved for va (0 if unknown).
	UsableSize(va vm.VA) uint64
	// Stats returns cumulative counters including the virtual time the
	// allocator itself consumed.
	Stats() Stats
	// Name identifies the model in benchmark output.
	Name() string
}

// Stats counts allocator work.
type Stats struct {
	Allocs, Frees   int64
	Ticks           simtime.Ticks // CPU time spent inside the allocator
	NodesVisited    int64
	Splits          int64
	Coalesces       int64
	Syscalls        int64 // sbrk/mmap/hugetlbfs calls
	HugeBytes       int64 // gauge: bytes currently placed in hugepages
	SmallBytes      int64 // gauge: bytes currently placed in small pages
	LiveBytes       int64 // gauge: bytes currently live
	PeakLive        int64
	FallbackToSmall int64 // hugepage requests served from small pages
	FallbackBytes   int64 // cumulative bytes those fallbacks handed out
}

// Cost constants (ticks). In-band boundary tags live next to user data,
// so walking the freelist touches a cold cache line per node; the paper's
// metadata cache keeps all nodes hot ("ensuring good locality when
// traversing the freelist").
const (
	costNodeColdVisit  = 4 // boundary-tag header touch
	costNodeCacheVisit = 1 // metadata-cache node touch
	costHeaderUpdate   = 12
	costSplit          = 25
	costCoalesce       = 35
	costBinIndex       = 3 // size-class bookkeeping
)

// Errors.
var (
	ErrNotAllocated = errors.New("alloc: address was not allocated")
	ErrBadSize      = errors.New("alloc: bad size")
)

func alignUp(n, to uint64) uint64 { return (n + to - 1) / to * to }
