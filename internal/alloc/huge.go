package alloc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/machine"
	"repro/internal/phys"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// HugeConfig parameterises the paper's hugepage library. The zero value is
// not usable; DefaultHugeConfig returns the configuration described in
// Section 3. The other fields exist for the design-choice ablations (E8).
type HugeConfig struct {
	// Threshold: requests strictly below it go to libc ("If a request is
	// smaller than 32 kb, the library calls the libc to handle it").
	Threshold uint64
	// ChunkSize is the management granule ("we manage hugepages in chunks
	// with a size of 4 Kilobyte").
	ChunkSize uint64
	// CoalesceOnFree re-enables eager coalescing (the paper's allocator
	// does NOT coalesce on free; flipping this measures why).
	CoalesceOnFree bool
	// InBandMetadata moves management structures into block headers
	// (the paper keeps them "in a cache that is created at initialization
	// time", making freelist traversal hot; flipping this measures why).
	InBandMetadata bool
	// MapBatchPages is how many hugepages the mapping layer requests per
	// growth.
	MapBatchPages int
	// ReservePages is the fork/CoW reserve the mapping layer leaves in
	// the hugetlbfs pool.
	ReservePages int
}

// DefaultHugeConfig is the library exactly as published.
func DefaultHugeConfig() HugeConfig {
	return HugeConfig{
		Threshold:      32 << 10,
		ChunkSize:      4 << 10,
		CoalesceOnFree: false,
		InBandMetadata: false,
		MapBatchPages:  4,
		ReservePages:   16,
	}
}

// Huge is the paper's transparent hugepage allocation library: a strict
// three-tier design. Tier 1 (transparency) intercepts allocation calls
// and routes small requests to libc; tier 2 (mapping) maps hugepages in
// and out of the process, honouring the CoW reserve; tier 3 (management)
// runs an address-ordered first-fit allocator over 4 KiB chunks with its
// metadata in a dedicated cache and no coalescing on free.
//
// Huge is safe for concurrent use (the paper contrasts this with
// libhugepagealloc, which is not thread safe).
type Huge struct {
	cfg   HugeConfig
	as    *vm.AddressSpace
	small *Libc // tier-1 delegate for requests below the threshold

	// placer, when set, is consulted before every above-threshold
	// placement and notified of outcomes. Installed once at node
	// construction, before any allocation traffic.
	placer Placer

	mu    sync.Mutex
	free  []span           // tier-3 freelist, address-ordered, sizes in bytes (chunk multiples)
	used  map[vm.VA]uint64 // live block sizes in bytes (chunk multiples)
	stats Stats
}

// Placer decides hugepage-vs-base-page placement for above-threshold
// requests and observes placement outcomes. internal/policy implements
// it; the interface lives here so the allocator needs no policy import.
type Placer interface {
	// PlaceHuge reports whether the request should go to hugepages.
	// Returning false routes it to the libc delegate (counted by the
	// policy, not as a pool-pressure fallback).
	PlaceHuge(size uint64) bool
	// Placed reports where an above-threshold block actually landed.
	Placed(va vm.VA, size uint64, huge bool)
	// Freed reports that the block at va was released.
	Freed(va vm.VA)
}

// SetPlacer installs the placement policy hook. Call before any
// allocation traffic; nil disables consultation.
func (h *Huge) SetPlacer(p Placer) { h.placer = p }

// NewHuge builds the library over an address space. The libc delegate is
// created internally, as in the real library ("the eponymous libc function
// symbols are resolved" at initialization).
func NewHuge(as *vm.AddressSpace, syscallTicks simtime.Ticks, cfg HugeConfig) (*Huge, error) {
	if cfg.ChunkSize == 0 || cfg.ChunkSize%machine.SmallPageSize != 0 {
		return nil, fmt.Errorf("%w: chunk size %d", ErrBadSize, cfg.ChunkSize)
	}
	if cfg.MapBatchPages <= 0 {
		cfg.MapBatchPages = 1
	}
	// Reservations compose, so several libraries sharing one Memory each
	// add their own fork/CoW hold instead of clobbering each other's.
	if err := as.Mem().Reserve(cfg.ReservePages); err != nil {
		return nil, fmt.Errorf("alloc: installing fork/CoW reserve: %w", err)
	}
	return &Huge{
		cfg:   cfg,
		as:    as,
		small: NewLibc(as, syscallTicks),
		used:  make(map[vm.VA]uint64),
	}, nil
}

// Name implements Allocator.
func (h *Huge) Name() string { return "hugepage-library" }

// Config returns the active configuration.
func (h *Huge) Config() HugeConfig { return h.cfg }

// nodeCost is the per-freelist-node traversal charge: hot when metadata
// lives in the dedicated cache, a cold cache line per node otherwise.
func (h *Huge) nodeCost() simtime.Ticks {
	if h.cfg.InBandMetadata {
		return costNodeColdVisit
	}
	return costNodeCacheVisit
}

// Alloc implements Allocator, following Figure 2 of the paper: small
// request -> libc; enough memory in already-mapped hugepages -> allocate
// there; else map more hugepages; else redirect to libc.
func (h *Huge) Alloc(size uint64) (vm.VA, error) {
	if size == 0 {
		return 0, ErrBadSize
	}
	if size < h.cfg.Threshold {
		return h.small.Alloc(size)
	}
	if p := h.placer; p != nil && !p.PlaceHuge(size) {
		va, err := h.small.Alloc(size)
		if err == nil {
			p.Placed(va, size, false)
		}
		return va, err
	}
	va, huge, err := h.allocLarge(size)
	if err == nil {
		if p := h.placer; p != nil {
			p.Placed(va, size, huge)
		}
	}
	return va, err
}

// allocLarge is the above-threshold path of Figure 2: first fit over
// mapped hugepages, lazy coalesce + retry, tier-2 growth, libc redirect
// when the pool is exhausted. The bool reports hugepage placement.
func (h *Huge) allocLarge(size uint64) (vm.VA, bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stats.Allocs++
	need := alignUp(size, h.cfg.ChunkSize)

	if va, ok := h.takeFirstFit(need); ok {
		return h.commit(va, need), true, nil
	}
	// Lazy coalescing: only when a request cannot be satisfied do we merge
	// adjacent free areas and retry — the deferred counterpart of the
	// "does not coalesce ... on free() calls" design point.
	if !h.cfg.CoalesceOnFree && h.coalesceAll() {
		if va, ok := h.takeFirstFit(need); ok {
			return h.commit(va, need), true, nil
		}
	}
	// Tier 2: map in more hugepages.
	batch := alignUp(need, machine.HugePageSize)
	if min := uint64(h.cfg.MapBatchPages) * machine.HugePageSize; batch < min {
		batch = min
	}
	gva, err := h.as.MapHuge(batch)
	switch {
	case err == nil:
		h.stats.Syscalls++
		h.stats.Ticks += h.small.syscallTicks
		h.insertFree(span{gva, batch})
		if va, ok := h.takeFirstFit(need); ok {
			return h.commit(va, need), true, nil
		}
		return 0, false, fmt.Errorf("alloc: hugepage growth did not satisfy %d bytes", need)
	case errors.Is(err, phys.ErrOutOfHugepages) || errors.Is(err, phys.ErrReserveHeld):
		// Figure 2: "enough hugepages available? no -> redirect request
		// to libc".
		h.stats.FallbackToSmall++
		h.mu.Unlock()
		va, ferr := h.small.Alloc(size)
		h.mu.Lock()
		if ferr == nil {
			h.stats.FallbackBytes += int64(size)
		}
		return va, false, ferr
	default:
		return 0, false, err
	}
}

// commit books a block as used. Callers hold the lock.
func (h *Huge) commit(va vm.VA, need uint64) vm.VA {
	h.used[va] = need
	h.stats.Ticks += costBinIndex + costHeaderUpdate/3 // metadata cache update
	h.account(va, need, +1)
	return va
}

// takeFirstFit is the address-ordered first-fit scan over the metadata
// cache. Callers hold the lock.
func (h *Huge) takeFirstFit(need uint64) (vm.VA, bool) {
	for i := range h.free {
		h.stats.NodesVisited++
		h.stats.Ticks += h.nodeCost()
		s := h.free[i]
		if s.size < need {
			continue
		}
		if s.size > need {
			h.free[i] = span{s.va + vm.VA(need), s.size - need}
			h.stats.Splits++
			h.stats.Ticks += costSplit / 3 // chunk-granular split is an index update
		} else {
			h.free = append(h.free[:i], h.free[i+1:]...)
		}
		return s.va, true
	}
	return 0, false
}

// insertFree inserts a span in address order, coalescing only when the
// configuration asks for it. Callers hold the lock.
func (h *Huge) insertFree(s span) {
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].va >= s.va })
	if h.cfg.CoalesceOnFree {
		if i > 0 && h.free[i-1].va+vm.VA(h.free[i-1].size) == s.va {
			h.free[i-1].size += s.size
			s = h.free[i-1]
			i--
			h.free = append(h.free[:i], h.free[i+1:]...)
			h.stats.Coalesces++
			h.stats.Ticks += costCoalesce
		}
		if i < len(h.free) && s.va+vm.VA(s.size) == h.free[i].va {
			s.size += h.free[i].size
			h.free = append(h.free[:i], h.free[i+1:]...)
			h.stats.Coalesces++
			h.stats.Ticks += costCoalesce
		}
	}
	h.free = append(h.free, span{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = s
	h.stats.Ticks += costBinIndex
}

// coalesceAll merges every adjacent pair in the (already sorted) freelist.
// It reports whether anything merged. Callers hold the lock.
func (h *Huge) coalesceAll() bool {
	merged := false
	out := h.free[:0]
	for _, s := range h.free {
		if n := len(out); n > 0 && out[n-1].va+vm.VA(out[n-1].size) == s.va {
			out[n-1].size += s.size
			h.stats.Coalesces++
			h.stats.Ticks += costCoalesce
			merged = true
			continue
		}
		out = append(out, s)
	}
	h.free = out
	return merged
}

// Free implements Allocator. Small-page blocks route back to the libc
// delegate; hugepage blocks return to the freelist without coalescing.
func (h *Huge) Free(va vm.VA) error {
	if p := h.placer; p != nil {
		p.Freed(va)
	}
	if !vm.IsHugeVA(va) {
		return h.small.Free(va)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stats.Frees++
	n, ok := h.used[va]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotAllocated, uint64(va))
	}
	delete(h.used, va)
	h.insertFree(span{va, n})
	h.account(va, n, -1)
	return nil
}

// account tracks live bytes by placement. Callers hold the lock.
func (h *Huge) account(va vm.VA, n uint64, sign int64) {
	d := int64(n) * sign
	if vm.IsHugeVA(va) {
		h.stats.HugeBytes += d
	} else {
		h.stats.SmallBytes += d
	}
	h.stats.LiveBytes += d
	if h.stats.LiveBytes > h.stats.PeakLive {
		h.stats.PeakLive = h.stats.LiveBytes
	}
}

// UsableSize implements Allocator.
func (h *Huge) UsableSize(va vm.VA) uint64 {
	if !vm.IsHugeVA(va) {
		return h.small.UsableSize(va)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.used[va]
}

// Stats implements Allocator, merging the libc delegate's counters so the
// caller sees one library, as the application would.
func (h *Huge) Stats() Stats {
	h.mu.Lock()
	s := h.stats
	h.mu.Unlock()
	d := h.small.Stats()
	s.Allocs += d.Allocs
	s.Frees += d.Frees
	s.Ticks += d.Ticks
	s.NodesVisited += d.NodesVisited
	s.Splits += d.Splits
	s.Coalesces += d.Coalesces
	s.Syscalls += d.Syscalls
	s.SmallBytes += d.SmallBytes
	s.HugeBytes += d.HugeBytes // a morecore-style delegate can place huge-side bytes too
	s.FallbackToSmall += d.FallbackToSmall
	s.FallbackBytes += d.FallbackBytes
	s.LiveBytes += d.LiveBytes
	if s.LiveBytes > s.PeakLive {
		s.PeakLive = s.LiveBytes
	}
	return s
}

// MapBSS places a BSS-sized segment into hugepages at startup — the
// linker-script + constructor trick the paper uses for the NAS runs ("we
// did not only preload our library ... but also used a linker script and
// a constructor function ... to map this segment into hugepages at
// startup time"). The segment is owned by the caller and never freed.
func (h *Huge) MapBSS(size uint64) (vm.VA, bool, error) {
	va, huge, err := h.as.MapHugeOrSmall(size)
	if err != nil {
		return 0, false, err
	}
	mapped := alignUp(size, machine.SmallPageSize)
	if huge {
		mapped = alignUp(size, machine.HugePageSize)
	}
	h.mu.Lock()
	h.stats.Syscalls++
	h.stats.Ticks += h.small.syscallTicks
	if !huge {
		h.stats.FallbackToSmall++
		h.stats.FallbackBytes += int64(mapped)
	}
	h.account(va, mapped, +1)
	h.used[va] = mapped
	h.mu.Unlock()
	if p := h.placer; p != nil {
		p.Placed(va, size, huge)
	}
	return va, huge, nil
}

// FreeListLen reports the tier-3 freelist length (fragmentation probe).
func (h *Huge) FreeListLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.free)
}
