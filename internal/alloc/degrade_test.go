package alloc_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/machine"
	"repro/internal/node/nodetest"
	"repro/internal/vm"
)

// dryAS builds an address space whose hugepage pool is fully reserved,
// so every hugepage mapping attempt must take the base-page fallback.
func dryAS(t *testing.T) *vm.AddressSpace {
	t.Helper()
	n := nodetest.New(t, machine.Opteron())
	if err := n.Mem.Reserve(n.Mem.HugeAvailable()); err != nil {
		t.Fatal(err)
	}
	return n.AS
}

func TestMorecoreFallsBackToBasePages(t *testing.T) {
	m := alloc.NewMorecore(dryAS(t), sysTicks)
	va, err := m.Alloc(256 << 10)
	if err != nil {
		t.Fatalf("morecore must fall back to base pages, not fail: %v", err)
	}
	if vm.IsHugeVA(va) {
		t.Fatal("allocation reported huge placement with an empty pool")
	}
	st := m.Stats()
	if st.FallbackToSmall == 0 || st.FallbackBytes == 0 {
		t.Fatalf("fallback not counted: %+v", st)
	}
	if st.SmallBytes == 0 || st.HugeBytes != 0 {
		t.Fatalf("bytes must land on the small side: %+v", st)
	}
	if err := m.Free(va); err != nil {
		t.Fatal(err)
	}
}

func TestMorecoreMmapPathFallsBack(t *testing.T) {
	m := alloc.NewMorecore(dryAS(t), sysTicks)
	va, err := m.Alloc(4 << 20) // above MmapThreshold: the bigMap path
	if err != nil {
		t.Fatalf("mmap-path fallback: %v", err)
	}
	if vm.IsHugeVA(va) {
		t.Fatal("mmap path reported huge placement with an empty pool")
	}
	if err := m.Free(va); err != nil {
		t.Fatalf("freeing a fallback mmap region: %v", err)
	}
	if st := m.Stats(); st.LiveBytes != 0 {
		t.Fatalf("live bytes after free = %d, want 0", st.LiveBytes)
	}
}

func TestPageSepFallsBackToBasePages(t *testing.T) {
	p := alloc.NewPageSep(dryAS(t), sysTicks)
	va, err := p.Alloc(64 << 10)
	if err != nil {
		t.Fatalf("pagesep must fall back (GHR_FALLBACK), not fail: %v", err)
	}
	if vm.IsHugeVA(va) {
		t.Fatal("allocation reported huge placement with an empty pool")
	}
	st := p.Stats()
	if st.FallbackToSmall != 1 || st.FallbackBytes == 0 {
		t.Fatalf("fallback not counted: %+v", st)
	}
	if st.SmallBytes == 0 || st.HugeBytes != 0 {
		t.Fatalf("bytes must land on the small side: %+v", st)
	}
	if err := p.Free(va); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.SmallBytes != 0 || st.LiveBytes != 0 {
		t.Fatalf("gauges after free: %+v", st)
	}
}

func TestPageSepMixedPlacementAccounting(t *testing.T) {
	n := nodetest.New(t, machine.Opteron())
	p := alloc.NewPageSep(n.AS, sysTicks)
	vaH, err := p.Alloc(64 << 10) // pool still has pages: huge
	if err != nil {
		t.Fatal(err)
	}
	if !vm.IsHugeVA(vaH) {
		t.Fatal("expected huge placement while the pool has pages")
	}
	if err := n.Mem.Reserve(n.Mem.HugeAvailable()); err != nil {
		t.Fatal(err)
	}
	vaS, err := p.Alloc(64 << 10) // now dry: small
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.HugeBytes == 0 || st.SmallBytes == 0 {
		t.Fatalf("mixed placement should show on both gauges: %+v", st)
	}
	if err := p.Free(vaH); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(vaS); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.HugeBytes != 0 || st.SmallBytes != 0 || st.LiveBytes != 0 {
		t.Fatalf("gauges after frees: %+v", st)
	}
}
