package alloc

import (
	"fmt"
	"sync"

	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// PageSep models libhugepagealloc (Section 2): "not thread safe and does
// not assure locality between allocated buffers since every buffer is
// mapped into a separate hugepage". Every allocation maps its own
// hugepage(s); every free unmaps them. Consequences the benchmarks
// expose: a syscall per allocation, gross hugepage-pool waste for
// mid-sized buffers, zero spatial locality between buffers, and hugepage
// TLB pressure proportional to the number of live buffers.
//
// The real library's thread-unsafety cannot be reproduced as actual data
// races in a correctness-first simulator; we keep an internal lock and
// expose the hazard through ThreadSafe() == false, which the benchmark
// harness reports alongside the numbers.
type PageSep struct {
	as           *vm.AddressSpace
	syscallTicks simtime.Ticks

	mu    sync.Mutex
	used  map[vm.VA]uint64
	stats Stats
}

// NewPageSep builds the model.
func NewPageSep(as *vm.AddressSpace, syscallTicks simtime.Ticks) *PageSep {
	return &PageSep{as: as, syscallTicks: syscallTicks, used: make(map[vm.VA]uint64)}
}

// Name implements Allocator.
func (p *PageSep) Name() string { return "libhugepagealloc" }

// ThreadSafe reports the modelled library's concurrency guarantee.
func (p *PageSep) ThreadSafe() bool { return false }

// Alloc implements Allocator: one fresh hugepage mapping per buffer.
// When the pool cannot supply the pages the mapping falls back to base
// pages (the real library's GHR_FALLBACK behaviour) and the degradation
// is counted.
func (p *PageSep) Alloc(size uint64) (vm.VA, error) {
	if size == 0 {
		return 0, ErrBadSize
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Allocs++
	mapped := alignUp(size, machine.HugePageSize)
	va, huge, err := p.as.MapHugeOrSmall(mapped)
	if err != nil {
		return 0, err
	}
	p.stats.Syscalls++
	p.stats.Ticks += p.syscallTicks
	p.used[va] = mapped
	if huge {
		p.stats.HugeBytes += int64(mapped)
	} else {
		p.stats.SmallBytes += int64(mapped)
		p.stats.FallbackToSmall++
		p.stats.FallbackBytes += int64(mapped)
	}
	p.stats.LiveBytes += int64(mapped)
	if p.stats.LiveBytes > p.stats.PeakLive {
		p.stats.PeakLive = p.stats.LiveBytes
	}
	return va, nil
}

// Free implements Allocator.
func (p *PageSep) Free(va vm.VA) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Frees++
	n, ok := p.used[va]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotAllocated, uint64(va))
	}
	delete(p.used, va)
	p.stats.Syscalls++
	p.stats.Ticks += p.syscallTicks
	if vm.IsHugeVA(va) {
		p.stats.HugeBytes -= int64(n)
	} else {
		p.stats.SmallBytes -= int64(n)
	}
	p.stats.LiveBytes -= int64(n)
	return p.as.Unmap(va, n)
}

// UsableSize implements Allocator.
func (p *PageSep) UsableSize(va vm.VA) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used[va]
}

// Stats implements Allocator.
func (p *PageSep) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
