package alloc

import "repro/internal/vm"

// FreeSpan is one hugepage-freelist node, exposed so the external test
// package can keep its white-box sortedness and overlap invariants.
type FreeSpan struct {
	VA   vm.VA
	Size uint64
}

// FreeSpans snapshots the hugepage freelist in list order.
func (h *Huge) FreeSpans() []FreeSpan {
	h.mu.Lock()
	defer h.mu.Unlock()
	spans := make([]FreeSpan, len(h.free))
	for i, s := range h.free {
		spans[i] = FreeSpan{s.va, s.size}
	}
	return spans
}
