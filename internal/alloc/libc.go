package alloc

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// Libc models a glibc-style general-purpose allocator: boundary-tag
// blocks, an address-ordered first-fit free list with immediate
// coalescing on free, splitting on allocation, a brk-grown main arena and
// an mmap path for very large requests. This is the baseline the paper's
// library is compared against, and also the engine reused by the
// libhugetlbfs model (see NewMorecore), which only swaps the arena source.
type Libc struct {
	name string
	as   *vm.AddressSpace

	mu   sync.Mutex
	free []span // address-ordered free spans
	used map[vm.VA]uint64
	mmap map[vm.VA]uint64 // direct mappings (va -> mapped length)

	// grow extends the main arena by at least n bytes and returns the new
	// region (the sbrk path, or hugepage morecore for libhugetlbfs).
	grow func(n uint64) (vm.VA, uint64, error)
	// bigMap serves requests above MmapThreshold directly (mmap path).
	bigMap   func(n uint64) (vm.VA, uint64, error)
	bigUnmap func(va vm.VA, n uint64) error

	// MmapThreshold is glibc's M_MMAP_THRESHOLD (default 128 KiB).
	MmapThreshold uint64
	syscallTicks  simtime.Ticks

	stats Stats
}

type span struct {
	va   vm.VA
	size uint64
}

const (
	minBlock   = 32
	allocAlign = 16
	arenaChunk = 1 << 20 // grow the arena 1 MiB at a time
	// mmapThresholdMax caps the dynamic mmap threshold, as
	// DEFAULT_MMAP_THRESHOLD_MAX does in glibc.
	mmapThresholdMax = 32 << 20
)

// NewLibc builds the baseline allocator on small pages.
func NewLibc(as *vm.AddressSpace, syscallTicks simtime.Ticks) *Libc {
	l := &Libc{
		name:          "libc",
		as:            as,
		used:          make(map[vm.VA]uint64),
		mmap:          make(map[vm.VA]uint64),
		MmapThreshold: 128 << 10,
		syscallTicks:  syscallTicks,
	}
	l.grow = func(n uint64) (vm.VA, uint64, error) {
		sz := alignUp(n, machine.SmallPageSize)
		if sz < arenaChunk {
			sz = arenaChunk
		}
		va, err := as.Sbrk(sz)
		return va, sz, err
	}
	l.bigMap = func(n uint64) (vm.VA, uint64, error) {
		sz := alignUp(n, machine.SmallPageSize)
		va, err := as.MapSmall(sz)
		return va, sz, err
	}
	l.bigUnmap = func(va vm.VA, n uint64) error { return as.Unmap(va, n) }
	return l
}

// NewMorecore builds the libhugetlbfs model: the identical libc algorithm
// whose arena morecore() and mmap path draw from hugetlbfs, so *every*
// libc-allocated buffer resides in hugepages (the behaviour Section 2
// warns about: small allocations burn scarce hugepage TLB entries too).
// Like the real library, an arena extension that cannot get hugepages
// falls back to base pages rather than failing malloc; the fallback is
// counted, and account() attributes the bytes to the small side.
func NewMorecore(as *vm.AddressSpace, syscallTicks simtime.Ticks) *Libc {
	l := NewLibc(as, syscallTicks)
	l.name = "libhugetlbfs-morecore"
	l.grow = func(n uint64) (vm.VA, uint64, error) {
		sz := alignUp(n, machine.HugePageSize)
		va, huge, err := as.MapHugeOrSmall(sz)
		if err != nil {
			return 0, 0, err
		}
		if !huge { // callers hold l.mu
			l.stats.FallbackToSmall++
			l.stats.FallbackBytes += int64(sz)
		}
		return va, sz, nil
	}
	l.bigMap = l.grow
	l.bigUnmap = func(va vm.VA, n uint64) error {
		return as.Unmap(va, alignUp(n, machine.HugePageSize))
	}
	return l
}

// Name implements Allocator.
func (l *Libc) Name() string { return l.name }

// Alloc implements Allocator: mmap path above the threshold, otherwise
// address-ordered first fit with splitting.
func (l *Libc) Alloc(size uint64) (vm.VA, error) {
	if size == 0 {
		return 0, ErrBadSize
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	need := alignUp(size, allocAlign)
	l.stats.Allocs++

	if need >= l.MmapThreshold {
		va, got, err := l.bigMap(need)
		if err != nil {
			return 0, err
		}
		l.stats.Syscalls++
		l.stats.Ticks += l.syscallTicks
		l.mmap[va] = got
		l.account(va, got, +1)
		return va, nil
	}

	va, ok := l.takeFirstFit(need)
	if !ok {
		gva, got, err := l.grow(need)
		if err != nil {
			return 0, err
		}
		l.stats.Syscalls++
		l.stats.Ticks += l.syscallTicks
		l.insertFree(span{gva, got})
		va, ok = l.takeFirstFit(need)
		if !ok {
			return 0, fmt.Errorf("alloc: arena growth of %d bytes did not satisfy %d", got, need)
		}
	}
	l.used[va] = need
	l.account(va, need, +1)
	return va, nil
}

// takeFirstFit scans the address-ordered list, splitting the first span
// that fits. Callers hold the lock.
func (l *Libc) takeFirstFit(need uint64) (vm.VA, bool) {
	for i := range l.free {
		l.stats.NodesVisited++
		l.stats.Ticks += costNodeColdVisit
		s := l.free[i]
		if s.size < need {
			continue
		}
		if s.size-need >= minBlock {
			l.free[i] = span{s.va + vm.VA(need), s.size - need}
			l.stats.Splits++
			l.stats.Ticks += costSplit
		} else {
			l.free = append(l.free[:i], l.free[i+1:]...)
		}
		l.stats.Ticks += costHeaderUpdate
		return s.va, true
	}
	return 0, false
}

// insertFree inserts a span keeping address order and coalescing with
// both neighbours — glibc's immediate-coalescing behaviour that the
// paper's library deliberately avoids.
func (l *Libc) insertFree(s span) {
	i := sort.Search(len(l.free), func(i int) bool { return l.free[i].va >= s.va })
	// Coalesce with predecessor.
	if i > 0 && l.free[i-1].va+vm.VA(l.free[i-1].size) == s.va {
		l.free[i-1].size += s.size
		s = l.free[i-1]
		i--
		l.free = append(l.free[:i], l.free[i+1:]...)
		l.stats.Coalesces++
		l.stats.Ticks += costCoalesce
	}
	// Coalesce with successor.
	if i < len(l.free) && s.va+vm.VA(s.size) == l.free[i].va {
		s.size += l.free[i].size
		l.free = append(l.free[:i], l.free[i+1:]...)
		l.stats.Coalesces++
		l.stats.Ticks += costCoalesce
	}
	l.free = append(l.free, span{})
	copy(l.free[i+1:], l.free[i:])
	l.free[i] = s
	l.stats.Ticks += costHeaderUpdate
}

// Free implements Allocator.
func (l *Libc) Free(va vm.VA) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Frees++
	if n, ok := l.mmap[va]; ok {
		delete(l.mmap, va)
		l.stats.Syscalls++
		l.stats.Ticks += l.syscallTicks
		l.account(va, n, -1)
		// glibc's dynamic mmap threshold: freeing an mmap'd block raises
		// the threshold to its size (capped), so the next allocation of
		// that size is served from the heap instead of a fresh mmap.
		if n > l.MmapThreshold && n <= mmapThresholdMax {
			l.MmapThreshold = n + 1
		}
		return l.bigUnmap(va, n)
	}
	n, ok := l.used[va]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotAllocated, uint64(va))
	}
	delete(l.used, va)
	l.insertFree(span{va, n})
	l.account(va, n, -1)
	return nil
}

// account tracks live bytes by placement.
func (l *Libc) account(va vm.VA, n uint64, sign int64) {
	d := int64(n) * sign
	if vm.IsHugeVA(va) {
		l.stats.HugeBytes += d
	} else {
		l.stats.SmallBytes += d
	}
	l.stats.LiveBytes += d
	if l.stats.LiveBytes > l.stats.PeakLive {
		l.stats.PeakLive = l.stats.LiveBytes
	}
}

// UsableSize implements Allocator.
func (l *Libc) UsableSize(va vm.VA) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n, ok := l.used[va]; ok {
		return n
	}
	return l.mmap[va]
}

// Stats implements Allocator.
func (l *Libc) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// FreeListLen reports the current freelist length (fragmentation probe
// used by tests and the ablation bench).
func (l *Libc) FreeListLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.free)
}
