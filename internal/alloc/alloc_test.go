package alloc_test

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/machine"
	"repro/internal/node/nodetest"
	"repro/internal/vm"
)

func newAS(t testing.TB) *vm.AddressSpace {
	t.Helper()
	return nodetest.New(t, machine.SystemP()).AS // big hugepage pool
}

const sysTicks = 1300

func newHugeT(t testing.TB, as *vm.AddressSpace) *alloc.Huge {
	t.Helper()
	h, err := alloc.NewHuge(as, sysTicks, alloc.DefaultHugeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// allocators under test, by constructor.
func allAllocators(t testing.TB) map[string]alloc.Allocator {
	return map[string]alloc.Allocator{
		"libc":     alloc.NewLibc(newAS(t), sysTicks),
		"huge":     newHugeT(t, newAS(t)),
		"morecore": alloc.NewMorecore(newAS(t), sysTicks),
		"pagesep":  alloc.NewPageSep(newAS(t), sysTicks),
	}
}

// sortedNonOverlapping checks the hugepage freelist invariant: spans in
// strictly increasing address order, never overlapping.
func sortedNonOverlapping(spans []alloc.FreeSpan, strict bool) bool {
	for i := 1; i < len(spans); i++ {
		if strict && spans[i-1].VA >= spans[i].VA {
			return false
		}
		if spans[i-1].VA+vm.VA(spans[i-1].Size) > spans[i].VA {
			return false
		}
	}
	return true
}

func TestBasicAllocFreeAllModels(t *testing.T) {
	for name, a := range allAllocators(t) {
		t.Run(name, func(t *testing.T) {
			va, err := a.Alloc(100 << 10)
			if err != nil {
				t.Fatal(err)
			}
			if a.UsableSize(va) < 100<<10 {
				t.Fatalf("usable size %d < requested", a.UsableSize(va))
			}
			if err := a.Free(va); err != nil {
				t.Fatal(err)
			}
			if err := a.Free(va); !errors.Is(err, alloc.ErrNotAllocated) {
				t.Fatalf("double free: got %v", err)
			}
			if _, err := a.Alloc(0); !errors.Is(err, alloc.ErrBadSize) {
				t.Fatalf("zero alloc: got %v", err)
			}
			st := a.Stats()
			if st.LiveBytes != 0 {
				t.Fatalf("leaked %d live bytes", st.LiveBytes)
			}
		})
	}
}

func TestHugeThresholdRouting(t *testing.T) {
	h := newHugeT(t, newAS(t))
	small, err := h.Alloc(16 << 10) // below 32 KiB
	if err != nil {
		t.Fatal(err)
	}
	if vm.IsHugeVA(small) {
		t.Fatal("16KiB request was placed in hugepages")
	}
	big, err := h.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if !vm.IsHugeVA(big) {
		t.Fatal("64KiB request was not placed in hugepages")
	}
	// Exactly at the threshold goes huge ("smaller than 32 kb ... libc").
	edge, err := h.Alloc(32 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if !vm.IsHugeVA(edge) {
		t.Fatal("32KiB request should be hugepage-placed")
	}
	for _, va := range []vm.VA{small, big, edge} {
		if err := h.Free(va); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHugeNoCoalesceOnFree(t *testing.T) {
	h := newHugeT(t, newAS(t))
	a, _ := h.Alloc(64 << 10)
	b, _ := h.Alloc(64 << 10)
	c, _ := h.Alloc(64 << 10)
	_ = h.Free(a)
	_ = h.Free(b)
	_ = h.Free(c)
	// Three adjacent frees + the growth remainder must remain separate
	// nodes (no coalescing on free).
	if got := h.FreeListLen(); got < 4 {
		t.Fatalf("freelist length %d: frees were coalesced", got)
	}
	if h.Stats().Coalesces != 0 {
		t.Fatal("coalesce performed on free path")
	}
	// Same-size realloc reuses a freed block without splitting again.
	splitsBefore := h.Stats().Splits
	d, _ := h.Alloc(64 << 10)
	if h.Stats().Splits != splitsBefore {
		t.Fatal("same-size reuse should not split")
	}
	if d != a {
		t.Fatalf("address-ordered first fit should reuse lowest block: got %#x want %#x", uint64(d), uint64(a))
	}
}

func TestHugeLazyCoalesceSatisfiesBigRequest(t *testing.T) {
	as := newAS(t)
	cfg := alloc.DefaultHugeConfig()
	cfg.MapBatchPages = 1
	h, err := alloc.NewHuge(as, sysTicks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill one hugepage with 32 x 64KiB, free all, then ask for 2 MiB.
	var vas []vm.VA
	for i := 0; i < 32; i++ {
		va, err := h.Alloc(64 << 10)
		if err != nil {
			t.Fatal(err)
		}
		vas = append(vas, va)
	}
	for _, va := range vas {
		_ = h.Free(va)
	}
	used := as.Stats().MappedHuge
	big, err := h.Alloc(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if as.Stats().MappedHuge != used {
		t.Fatal("lazy coalescing should have satisfied the request without new mappings")
	}
	if h.Stats().Coalesces == 0 {
		t.Fatal("no lazy coalesce recorded")
	}
	_ = h.Free(big)
}

func TestHugeAddressOrderedFirstFit(t *testing.T) {
	h := newHugeT(t, newAS(t))
	a, _ := h.Alloc(128 << 10)
	b, _ := h.Alloc(128 << 10)
	_, _ = h.Alloc(64 << 10) // plug so freelist has a gap
	_ = h.Free(b)
	_ = h.Free(a)
	got, _ := h.Alloc(100 << 10)
	if got != a {
		t.Fatalf("first fit should pick the lowest address %#x, got %#x", uint64(a), uint64(got))
	}
}

func TestHugeFallbackWhenPoolExhausted(t *testing.T) {
	n := nodetest.New(t, machine.Opteron())
	mem, as := n.Mem, n.AS
	cfg := alloc.DefaultHugeConfig()
	cfg.ReservePages = 0
	h, err := alloc.NewHuge(as, sysTicks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Reserve(mem.HugeTotal()); err != nil { // simulate exhausted pool
		t.Fatal(err)
	}
	va, err := h.Alloc(256 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if vm.IsHugeVA(va) {
		t.Fatal("allocation should have fallen back to small pages")
	}
	if h.Stats().FallbackToSmall != 1 {
		t.Fatal("fallback not counted")
	}
	if err := h.Free(va); err != nil {
		t.Fatalf("free of fallback block: %v", err)
	}
}

func TestHugeReserveIsInstalled(t *testing.T) {
	n := nodetest.New(t, machine.Opteron())
	mem, as := n.Mem, n.AS
	cfg := alloc.DefaultHugeConfig()
	cfg.ReservePages = 100
	if _, err := alloc.NewHuge(as, sysTicks, cfg); err != nil {
		t.Fatal(err)
	}
	if got := mem.HugeAvailable(); got != mem.HugeTotal()-100 {
		t.Fatalf("reserve not installed: available %d", got)
	}
}

func TestLibcCoalescesAndReusesArena(t *testing.T) {
	l := alloc.NewLibc(newAS(t), sysTicks)
	a, _ := l.Alloc(40 << 10)
	b, _ := l.Alloc(40 << 10)
	_ = l.Free(a)
	_ = l.Free(b)
	if l.Stats().Coalesces == 0 {
		t.Fatal("libc model must coalesce adjacent frees")
	}
	// After coalescing, an 80 KiB request fits without growing the arena.
	sys := l.Stats().Syscalls
	c, err := l.Alloc(80 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if l.Stats().Syscalls != sys {
		t.Fatal("coalesced space should satisfy the request without sbrk")
	}
	_ = l.Free(c)
}

func TestLibcMmapThreshold(t *testing.T) {
	as := newAS(t)
	l := alloc.NewLibc(as, sysTicks)
	va, err := l.Alloc(256 << 10) // above 128 KiB threshold
	if err != nil {
		t.Fatal(err)
	}
	regsBefore := len(as.Regions())
	if err := l.Free(va); err != nil {
		t.Fatal(err)
	}
	if len(as.Regions()) != regsBefore-1 {
		t.Fatal("mmap'd block was not unmapped on free")
	}
}

func TestMorecorePlacesEverythingInHugepages(t *testing.T) {
	m := alloc.NewMorecore(newAS(t), sysTicks)
	small, _ := m.Alloc(64)      // tiny
	big, _ := m.Alloc(512 << 10) // mmap path
	mid, _ := m.Alloc(100 << 10) // heap path
	for _, va := range []vm.VA{small, big, mid} {
		if !vm.IsHugeVA(va) {
			t.Fatalf("morecore model leaked %#x to small pages", uint64(va))
		}
	}
}

func TestPageSepSeparateHugepages(t *testing.T) {
	p := alloc.NewPageSep(newAS(t), sysTicks)
	a, _ := p.Alloc(1000)
	b, _ := p.Alloc(1000)
	if uint64(a)/machine.HugePageSize == uint64(b)/machine.HugePageSize {
		t.Fatal("two buffers share a hugepage; libhugepagealloc never does")
	}
	if p.ThreadSafe() {
		t.Fatal("pagesep models a thread-unsafe library")
	}
	// 1000-byte buffer burns a whole hugepage.
	if p.Stats().HugeBytes != 2*machine.HugePageSize {
		t.Fatalf("waste accounting wrong: %d", p.Stats().HugeBytes)
	}
}

// Property: across random traces, no allocator ever returns overlapping
// live blocks, and live-byte accounting returns to zero.
func TestQuickNoOverlapAllModels(t *testing.T) {
	for name, a := range allAllocators(t) {
		a := a
		t.Run(name, func(t *testing.T) {
			type blk struct{ va, size uint64 }
			var live []blk
			overlaps := func(x blk) bool {
				for _, y := range live {
					if x.va < y.va+y.size && y.va < x.va+x.size {
						return true
					}
				}
				return false
			}
			f := func(szRaw uint16, doFree bool) bool {
				if doFree && len(live) > 0 {
					b := live[0]
					live = live[1:]
					return a.Free(vm.VA(b.va)) == nil
				}
				sz := uint64(szRaw)%(256<<10) + 1
				va, err := a.Alloc(sz)
				if err != nil {
					return false
				}
				nb := blk{uint64(va), a.UsableSize(va)}
				if nb.size < sz || overlaps(nb) {
					return false
				}
				live = append(live, nb)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
			for _, b := range live {
				if err := a.Free(vm.VA(b.va)); err != nil {
					t.Fatal(err)
				}
			}
			if a.Stats().LiveBytes != 0 {
				t.Fatalf("live bytes %d after full teardown", a.Stats().LiveBytes)
			}
		})
	}
}

// Property: the hugepage freelist stays address-sorted through any
// alloc/free interleaving.
func TestQuickFreelistStaysSorted(t *testing.T) {
	h := newHugeT(t, newAS(t))
	var live []vm.VA
	f := func(szRaw uint16, doFree bool) bool {
		if doFree && len(live) > 0 {
			va := live[len(live)-1]
			live = live[:len(live)-1]
			if h.Free(va) != nil {
				return false
			}
		} else {
			sz := 32<<10 + uint64(szRaw)
			va, err := h.Alloc(sz)
			if err != nil {
				return false
			}
			live = append(live, va)
		}
		return sortedNonOverlapping(h.FreeSpans(), true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRoundTrip(t *testing.T) {
	h := newHugeT(t, newAS(t))
	ops := []alloc.TraceOp{
		{Alloc: true, Size: 64 << 10, Slot: 0},
		{Alloc: true, Size: 128 << 10, Slot: 1},
		{Alloc: false, Slot: 0},
		{Alloc: true, Size: 64 << 10, Slot: 0},
		{Alloc: true, Size: 8 << 10, Slot: 2}, // small path
	}
	res, err := alloc.Replay(h, ops, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != len(ops) {
		t.Fatal("op count wrong")
	}
	if res.Stats.LiveBytes != 0 {
		t.Fatal("replay teardown leaked")
	}
	if res.AllocTime <= 0 {
		t.Fatal("allocation must consume time")
	}
}

func TestReplayBadSlot(t *testing.T) {
	h := newHugeT(t, newAS(t))
	if _, err := alloc.Replay(h, []alloc.TraceOp{{Alloc: true, Size: 1, Slot: 5}}, 2); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
}

func TestHugeChunkRounding(t *testing.T) {
	h := newHugeT(t, newAS(t))
	va, _ := h.Alloc(33 << 10) // not a chunk multiple
	if got := h.UsableSize(va); got%h.Config().ChunkSize != 0 {
		t.Fatalf("usable size %d not chunk-granular", got)
	}
	_ = h.Free(va)
}

func TestMapBSS(t *testing.T) {
	h := newHugeT(t, newAS(t))
	va, huge, err := h.MapBSS(10 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !huge || !vm.IsHugeVA(va) {
		t.Fatal("BSS should land in hugepages when the pool allows")
	}
	if h.UsableSize(va) < 10<<20 {
		t.Fatal("BSS usable size too small")
	}
}

// The paper stresses that its library — unlike libhugepagealloc — is
// thread safe. Hammer it from many goroutines and check the invariants
// hold (run with -race in CI to catch data races too).
func TestHugeThreadSafety(t *testing.T) {
	h := newHugeT(t, newAS(t))
	var wg sync.WaitGroup //reprolint:ignore schedonly: real-thread stress test of the paper's thread-safety claim
	const workers, rounds = 8, 200
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { //reprolint:ignore schedonly: real-thread stress test, not simulation code
			defer wg.Done()
			var mine []vm.VA
			for i := 0; i < rounds; i++ {
				sz := uint64(32<<10 + (w*977+i*131)%(256<<10))
				va, err := h.Alloc(sz)
				if err != nil {
					errs[w] = err
					return
				}
				mine = append(mine, va)
				if len(mine) > 8 {
					if err := h.Free(mine[0]); err != nil {
						errs[w] = err
						return
					}
					mine = mine[1:]
				}
			}
			for _, va := range mine {
				if err := h.Free(va); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if live := h.Stats().LiveBytes; live != 0 {
		t.Fatalf("leaked %d bytes under concurrency", live)
	}
	// Freelist must still be sorted and non-overlapping.
	if !sortedNonOverlapping(h.FreeSpans(), false) {
		t.Fatal("freelist corrupted under concurrency")
	}
}
