// Package simtime provides the virtual time base used by the whole
// simulation. The paper reports small-buffer measurements in "time base
// register (TBR) ticks" of an IBM System p; we adopt the same unit
// everywhere: one tick of a 512 MHz time base, i.e. 1 tick = 1.953125 ns.
//
// All latencies, bandwidth conversions and clocks in the repository are
// expressed in Ticks so that results are exactly reproducible and directly
// comparable with the figures in the paper.
package simtime

import (
	"fmt"
	"time"
)

// TickHz is the simulated time-base frequency (512 MHz, as on the IBM
// System p time base register used for Figures 3 and 4 of the paper).
const TickHz = 512_000_000

// Ticks is a duration or point in virtual time, measured in time-base ticks.
type Ticks int64

// Common durations expressed in ticks. There is deliberately no
// Nanosecond constant: at 512 MHz a nanosecond is sub-tick, so the
// integer constant would be 0 and silently drop every duration it
// scales. Use FromNanos, which rounds to nearest, instead.
const (
	Microsecond Ticks = TickHz / 1_000_000 // 512
	Millisecond Ticks = TickHz / 1_000
	Second      Ticks = TickHz
)

// FromNanos converts a nanosecond count into ticks, rounding to nearest.
// Negative counts panic (virtual durations are non-negative, like
// Clock.Advance). The conversion is exact for the whole int64 range: the
// whole-second part scales without multiplication overflow and only the
// sub-second remainder goes through the rounding product, so inputs past
// ~18 s no longer wrap (the old single-product form silently overflowed
// ns·TickHz there).
func FromNanos(ns int64) Ticks {
	if ns < 0 {
		panic("simtime: negative nanosecond count")
	}
	sec, rem := ns/1_000_000_000, ns%1_000_000_000
	return Ticks(sec)*Second + Ticks((rem*TickHz+500_000_000)/1_000_000_000)
}

// FromMicros converts a microsecond count into ticks.
func FromMicros(us int64) Ticks { return Ticks(us) * Microsecond }

// FromDuration converts a time.Duration into ticks.
func FromDuration(d time.Duration) Ticks { return FromNanos(d.Nanoseconds()) }

// Nanos reports the tick count as nanoseconds.
func (t Ticks) Nanos() int64 { return int64(t) * 1_000_000_000 / TickHz }

// Micros reports the tick count as (fractional) microseconds.
func (t Ticks) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports the tick count as seconds.
func (t Ticks) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts ticks into a time.Duration.
func (t Ticks) Duration() time.Duration { return time.Duration(t.Nanos()) }

// String formats the tick count with a human-readable suffix.
func (t Ticks) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dticks", int64(t))
	}
}

// Max returns the later of two instants.
func Max(a, b Ticks) Ticks {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two instants.
func Min(a, b Ticks) Ticks {
	if a < b {
		return a
	}
	return b
}

// BandwidthTicks returns the tick count needed to move n bytes at the given
// rate in MB/s (1 MB = 1e6 bytes, matching the paper's bandwidth plots).
// Rates of zero or below panic: a zero-bandwidth link is a configuration bug.
func BandwidthTicks(n int64, mbPerSec float64) Ticks {
	if mbPerSec <= 0 {
		panic("simtime: non-positive bandwidth")
	}
	ns := float64(n) * 1000.0 / mbPerSec // bytes / (MB/s) -> ns
	return FromNanos(int64(ns + 0.5))
}

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at time zero, ready to use. Clock is not safe for concurrent use;
// each simulated entity (rank, HCA, ...) owns its own clock.
type Clock struct {
	now Ticks
}

// Now reports the current virtual time.
func (c *Clock) Now() Ticks { return c.now }

// Advance moves the clock forward by d ticks and returns the new time.
// Negative advances panic: virtual time never runs backwards.
func (c *Clock) Advance(d Ticks) Ticks {
	if d < 0 {
		panic("simtime: negative clock advance")
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to instant t if t is in the future;
// otherwise it leaves the clock unchanged. It returns the (possibly
// unchanged) current time. This is the primitive used to synchronise a
// receiving rank with an incoming message timestamp.
func (c *Clock) AdvanceTo(t Ticks) Ticks {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Only benchmarks use this, between
// repetitions that must not accumulate time.
func (c *Clock) Reset() { c.now = 0 }
