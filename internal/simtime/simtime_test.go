package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTickConversions(t *testing.T) {
	if Microsecond != 512 {
		t.Fatalf("1us = %d ticks, want 512", Microsecond)
	}
	if got := FromMicros(3); got != 1536 {
		t.Fatalf("FromMicros(3) = %d, want 1536", got)
	}
	if got := FromNanos(1953); got != 1000 {
		t.Fatalf("FromNanos(1953) = %d, want 1000", got)
	}
	if got := Ticks(512).Micros(); got != 1.0 {
		t.Fatalf("512 ticks = %vus, want 1", got)
	}
	if got := FromDuration(time.Millisecond); got != Millisecond {
		t.Fatalf("FromDuration(1ms) = %d, want %d", got, Millisecond)
	}
}

// TestNanosecondScaleRounds pins why the package exports no Nanosecond
// constant: TickHz/1e9 truncates to 0 in integer arithmetic, so a
// `duration * Nanosecond` scaling would silently yield zero ticks.
// Sub-tick durations must go through FromNanos, which rounds to nearest.
func TestNanosecondScaleRounds(t *testing.T) {
	if TickHz/1_000_000_000 != 0 {
		t.Fatalf("a 512 MHz tick is coarser than 1ns; integer ns-per-tick = %d, want 0",
			TickHz/1_000_000_000)
	}
	if got := FromNanos(1); got != 1 {
		t.Fatalf("FromNanos(1) = %d, want 1 (round to nearest, not truncate)", got)
	}
	if got := FromNanos(500); got != 256 {
		t.Fatalf("FromNanos(500) = %d, want 256", got)
	}
}

func TestNanosRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		tk := Ticks(n)
		// ns per tick is not integral, so allow 1 tick of rounding.
		back := FromNanos(tk.Nanos())
		d := back - tk
		return d >= -1 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthTicks(t *testing.T) {
	// 1750 MB/s, 1 MB -> 571.4 us -> ~292571 ticks
	got := BandwidthTicks(1_000_000, 1750)
	ns := 1_000_000_000 / 1750.0
	want := FromNanos(int64(ns))
	if diff := got - want; diff < -2 || diff > 2 {
		t.Fatalf("BandwidthTicks = %d, want ~%d", got, want)
	}
	if BandwidthTicks(0, 100) != 0 {
		t.Fatal("zero bytes should cost zero ticks")
	}
}

func TestBandwidthTicksPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
	}()
	BandwidthTicks(1, 0)
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock must start at 0")
	}
	c.Advance(100)
	c.AdvanceTo(50) // must not rewind
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo(50) rewound clock to %d", c.Now())
	}
	c.AdvanceTo(250)
	if c.Now() != 250 {
		t.Fatalf("AdvanceTo(250) = %d", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestClockPanicsOnNegativeAdvance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative advance")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Max broken")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Fatal("Min broken")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Ticks
		want string
	}{
		{100, "100ticks"},
		{512, "1.000us"},
		{Millisecond, "1.000ms"},
		{Second, "1.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// TestFromNanosLargeInputs pins down the overflow fix: the old
// single-product form computed ns*TickHz in one int64 and wrapped for
// any input past ~18 s. The split form must be exact (and obviously
// monotonic) across the whole range.
func TestFromNanosLargeInputs(t *testing.T) {
	cases := []struct {
		ns   int64
		want Ticks
	}{
		{0, 0},
		{1, 1},      // 0.512 ticks rounds up
		{1000, 512}, // 1 us
		{1_000_000_000, Second},
		{18_000_000_000, 18 * Second},      // just below the old wrap point
		{19_000_000_000, 19 * Second},      // wrapped (went negative) before the fix
		{3_600_000_000_000, 3600 * Second}, // an hour
		{1<<63 - 1, 9223372036*Second + Ticks((854775807*int64(TickHz)+500_000_000)/1_000_000_000)},
	}
	for _, c := range cases {
		if got := FromNanos(c.ns); got != c.want {
			t.Errorf("FromNanos(%d) = %d, want %d", c.ns, got, c.want)
		}
		if got := FromNanos(c.ns); got < 0 {
			t.Errorf("FromNanos(%d) = %d went negative", c.ns, got)
		}
	}
	// Sub-second inputs must round identically to the historical form —
	// every modelled cost in the repository funnels through here.
	for _, ns := range []int64{1, 2, 977, 1953, 999_999_999} {
		want := Ticks((ns*TickHz + 500_000_000) / 1_000_000_000)
		if got := FromNanos(ns); got != want {
			t.Errorf("FromNanos(%d) = %d, want legacy rounding %d", ns, got, want)
		}
	}
}

// TestFromNanosPanicsOnNegative: negative durations are configuration
// bugs, caught like Clock's negative advance.
func TestFromNanosPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromNanos(-1) did not panic")
		}
	}()
	FromNanos(-1)
}
