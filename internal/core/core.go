// Package core is the paper's contribution assembled into one policy
// object: efficient data placement strategies for InfiniBand
// communication. A Strategy bundles
//
//   - transparent hugepage placement for large buffers (Section 3's
//     library: requests >= 32 KiB go to hugepages),
//   - lazy deregistration through the pin-down cache,
//   - the driver patch that pushes hugepage-granularity translations to
//     the adapter (fewer ATT misses),
//   - scatter/gather aggregation for small non-contiguous buffers
//     (Section 4: one work request, many SGEs),
//   - the preferred buffer offset within a page (Figure 4: offset 64).
//
// Strategies turn into mpi.Config values for running applications, and
// offer the cost advisors (aggregate-or-pack, placement-for-size) that a
// communication library would consult.
package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/simtime"
)

// Strategy is one complete data-placement policy.
type Strategy struct {
	Machine *machine.Machine
	// UseHugepages places large allocations in hugepages via the
	// Section 3 library; false means plain libc placement.
	UseHugepages bool
	// Threshold is the smallest request placed in hugepages (32 KiB in
	// the paper — below it small pages behave better and hugepage TLB
	// entries are too precious).
	Threshold uint64
	// LazyDereg keeps registrations cached (pin-down cache).
	LazyDereg bool
	// HugeATT sends 2 MiB translations to the adapter (the OpenIB patch).
	HugeATT bool
	// AggregateSGEs maps non-contiguous sends onto scatter/gather lists
	// instead of MPI_Pack copies when the cost model favours it.
	AggregateSGEs bool
	// PreferredOffset is the in-page start offset the DMA path likes
	// best (Figure 4: 64).
	PreferredOffset uint64
}

// Baseline is the do-nothing policy: libc placement, no registration
// cache, no aggregation — the worst curve of Figure 5.
func Baseline(m *machine.Machine) Strategy {
	return Strategy{Machine: m, Threshold: 32 << 10, PreferredOffset: 64}
}

// Recommended is the paper's full recipe.
func Recommended(m *machine.Machine) Strategy {
	return Strategy{
		Machine:         m,
		UseHugepages:    true,
		Threshold:       32 << 10,
		LazyDereg:       true,
		HugeATT:         m.HCA.SupportsHugeATT,
		AggregateSGEs:   true,
		PreferredOffset: 64,
	}
}

// Validate rejects inconsistent policies.
func (s Strategy) Validate() error {
	if s.Machine == nil {
		return fmt.Errorf("core: strategy needs a machine")
	}
	if s.Threshold == 0 {
		return fmt.Errorf("core: zero hugepage threshold (use Baseline/Recommended)")
	}
	if s.HugeATT && !s.Machine.HCA.SupportsHugeATT {
		return fmt.Errorf("core: %s cannot hold hugepage ATT entries", s.Machine.HCA.Name)
	}
	return nil
}

// MPIConfig turns the policy into a runnable job configuration.
func (s Strategy) MPIConfig(ranks int) mpi.Config {
	ak := mpi.AllocLibc
	if s.UseHugepages {
		ak = mpi.AllocHuge
	}
	return mpi.Config{
		Machine:   s.Machine,
		Ranks:     ranks,
		Allocator: ak,
		LazyDereg: s.LazyDereg,
		HugeATT:   s.HugeATT,
	}
}

// Placement is the advisor's verdict for one buffer.
type Placement struct {
	Huge bool
	// RegisterOnce reports whether the buffer should be registered
	// eagerly and kept (reused buffers under lazy deregistration).
	RegisterOnce bool
	// SuggestedOffset is the in-page offset to start small buffers at.
	SuggestedOffset uint64
}

// PlaceBuffer recommends placement for a buffer of the given size that
// will be reused `reuses` times for communication.
func (s Strategy) PlaceBuffer(size uint64, reuses int) Placement {
	return Placement{
		Huge:            s.UseHugepages && size >= s.Threshold,
		RegisterOnce:    s.LazyDereg && reuses > 1,
		SuggestedOffset: s.PreferredOffset,
	}
}

// EstimatePackCost models the classic MPI_Pack path for a non-contiguous
// send: per-piece CPU copies into a staging buffer, then one 1-SGE work
// request reading the staging buffer.
func (s Strategy) EstimatePackCost(pieces, pieceLen int) simtime.Ticks {
	total := int64(pieces) * int64(pieceLen)
	copyCost := simtime.BandwidthTicks(total, s.Machine.Mem.CopyBandwidthMBs)
	h := s.Machine.HCA
	post := h.DoorbellTicks + h.WQEBaseTicks
	dma := s.Machine.Bus.TxnTicks + simtime.BandwidthTicks(total, s.Machine.Bus.BandwidthMBs)
	return copyCost + post + dma
}

// EstimateGatherCost models the Section 4 path: one work request with one
// SGE per piece; the adapter fetches the pieces itself, pipelining the
// per-transaction setup of all but the first.
func (s Strategy) EstimateGatherCost(pieces, pieceLen int) simtime.Ticks {
	h := s.Machine.HCA
	post := h.DoorbellTicks + h.WQEBaseTicks + simtime.Ticks(pieces-1)*h.WQESGETicks
	lines := simtime.Ticks((pieceLen + machine.CacheLineSize - 1) / machine.CacheLineSize)
	lineCost := simtime.BandwidthTicks(machine.CacheLineSize, s.Machine.Bus.BandwidthMBs)
	perPiece := lines * lineCost
	dma := s.Machine.Bus.TxnTicks + simtime.Ticks(pieces)*perPiece
	return post + dma
}

// ShouldAggregate decides pack-vs-gather for a non-contiguous send. With
// AggregateSGEs disabled it always packs.
func (s Strategy) ShouldAggregate(pieces, pieceLen int) bool {
	if !s.AggregateSGEs || pieces < 2 {
		return false
	}
	return s.EstimateGatherCost(pieces, pieceLen) < s.EstimatePackCost(pieces, pieceLen)
}

// AlignOffset shifts a proposed in-page offset to the preferred one when
// the move is free (the buffer has slack); otherwise returns the input.
func (s Strategy) AlignOffset(off, slack uint64) uint64 {
	if s.PreferredOffset == 0 {
		return off
	}
	pref := s.PreferredOffset
	if off%machine.SmallPageSize == pref {
		return off
	}
	delta := (pref + machine.SmallPageSize - off%machine.SmallPageSize) % machine.SmallPageSize
	if delta <= slack {
		return off + delta
	}
	return off
}
