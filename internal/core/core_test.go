package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
)

func TestRecommendedIsValidEverywhere(t *testing.T) {
	for _, m := range machine.All() {
		s := Recommended(m)
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if !s.UseHugepages || !s.LazyDereg || !s.AggregateSGEs {
			t.Errorf("%s: recommended strategy missing a paper feature: %+v", m.Name, s)
		}
		if s.Threshold != 32<<10 {
			t.Errorf("%s: threshold %d, want 32 KiB", m.Name, s.Threshold)
		}
		if s.PreferredOffset != 64 {
			t.Errorf("%s: preferred offset %d, want 64", m.Name, s.PreferredOffset)
		}
	}
}

func TestValidateRejectsBadStrategies(t *testing.T) {
	if err := (Strategy{}).Validate(); err == nil {
		t.Error("machineless strategy accepted")
	}
	s := Recommended(machine.Opteron())
	s.Threshold = 0
	if err := s.Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
	s2 := Recommended(machine.Opteron())
	s2.Machine = &machine.Machine{Name: "noatt", HCA: machine.Opteron().HCA}
	s2.Machine.HCA.SupportsHugeATT = false
	s2.HugeATT = true
	if err := s2.Validate(); err == nil {
		t.Error("HugeATT on unsupporting adapter accepted")
	}
}

func TestMPIConfigMapping(t *testing.T) {
	m := machine.Opteron()
	cfg := Recommended(m).MPIConfig(8)
	if cfg.Allocator != mpi.AllocHuge || !cfg.LazyDereg || !cfg.HugeATT || cfg.Ranks != 8 {
		t.Fatalf("recommended config wrong: %+v", cfg)
	}
	base := Baseline(m).MPIConfig(2)
	if base.Allocator != mpi.AllocLibc || base.LazyDereg || base.HugeATT {
		t.Fatalf("baseline config wrong: %+v", base)
	}
}

func TestPlaceBufferThreshold(t *testing.T) {
	s := Recommended(machine.Opteron())
	if s.PlaceBuffer(16<<10, 1).Huge {
		t.Error("16 KiB buffer placed in hugepages")
	}
	if !s.PlaceBuffer(64<<10, 1).Huge {
		t.Error("64 KiB buffer not placed in hugepages")
	}
	if s.PlaceBuffer(64<<10, 1).RegisterOnce {
		t.Error("single-use buffer marked register-once")
	}
	if !s.PlaceBuffer(64<<10, 100).RegisterOnce {
		t.Error("reused buffer not marked register-once")
	}
}

func TestShouldAggregateSmallPieces(t *testing.T) {
	// Section 4's sweet spot: several small pieces -> gather beats pack.
	s := Recommended(machine.SystemP())
	if !s.ShouldAggregate(4, 128) {
		t.Error("4 x 128B should aggregate (Figure 3's case)")
	}
	if s.ShouldAggregate(1, 128) {
		t.Error("a single piece never aggregates")
	}
	// Disabled policy never aggregates.
	s.AggregateSGEs = false
	if s.ShouldAggregate(4, 128) {
		t.Error("disabled policy aggregated")
	}
}

func TestCostModelsCrossOver(t *testing.T) {
	// Packing wins for many tiny pieces: the per-SGE descriptor and
	// line-granular fetch overheads exceed the cost of just copying the
	// few bytes (cf. Wu/Wyckoff/Panda on non-contiguous access). The
	// advisor must flip to packing as pieces shrink and multiply.
	s := Recommended(machine.SystemP())
	if !s.ShouldAggregate(8, 64) {
		t.Error("8 x 64B should aggregate")
	}
	if s.ShouldAggregate(128, 4) {
		t.Error("128 x 4B should pack: copy is cheaper than 128 SGE fetches")
	}
	flipped := false
	for pieces := 2; pieces <= 512; pieces *= 2 {
		if !s.ShouldAggregate(pieces, 8) {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Error("advisor never flips to packing for tiny pieces")
	}
}

func TestAlignOffset(t *testing.T) {
	s := Recommended(machine.Opteron())
	if got := s.AlignOffset(0, 4096); got != 64 {
		t.Errorf("AlignOffset(0) = %d, want 64", got)
	}
	if got := s.AlignOffset(64, 0); got != 64 {
		t.Errorf("already-aligned offset moved to %d", got)
	}
	// No slack: cannot move.
	if got := s.AlignOffset(10, 3); got != 10 {
		t.Errorf("AlignOffset without slack moved to %d", got)
	}
	// Offset past 64 within the page: moves to 64 of the NEXT page.
	if got := s.AlignOffset(100, 4096); got != 100+(64+4096-100) {
		t.Errorf("AlignOffset(100) = %d", got)
	}
}
