package hca

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/simtime"
)

// Queue-pair and completion-queue objects: the stateful face of the
// adapter. The cost engine (PostCost/Gather/Scatter) stays separate; QPs
// add the resource limits and state machine real verbs consumers hit —
// bounded work queues, completion queues that overflow when not polled,
// and the reliable-connection handshake.

// QP errors.
var (
	ErrQPState    = errors.New("hca: queue pair in wrong state")
	ErrSQFull     = errors.New("hca: send queue full")
	ErrRQEmpty    = errors.New("hca: no receive WQE posted")
	ErrRQFull     = errors.New("hca: receive queue full")
	ErrCQOverflow = errors.New("hca: completion queue overrun")
)

// QPState is the verbs QP state machine, reduced to the states the
// simulator distinguishes.
type QPState int

// QP states.
const (
	QPReset QPState = iota
	QPInit
	QPReadyToReceive
	QPReadyToSend
	QPError
)

func (s QPState) String() string {
	switch s {
	case QPReset:
		return "RESET"
	case QPInit:
		return "INIT"
	case QPReadyToReceive:
		return "RTR"
	case QPReadyToSend:
		return "RTS"
	default:
		return "ERROR"
	}
}

// CQE is one completion entry.
type CQE struct {
	QPNum  uint32
	WRID   uint64
	Bytes  int
	IsRecv bool
	Time   simtime.Ticks
	SolErr error // non-nil for completion-with-error
}

// CQ is a bounded completion queue. Completions beyond the capacity
// transition the CQ into overrun: a real adapter raises a fatal async
// event, which the simulator reports as ErrCQOverflow on the next poll.
type CQ struct {
	mu      sync.Mutex
	depth   int
	entries []CQE
	overrun bool
	armed   int64 // pushes seen (diagnostics)
}

// NewCQ creates a completion queue with the given depth.
func NewCQ(depth int) *CQ {
	if depth < 1 {
		depth = 1
	}
	return &CQ{depth: depth}
}

// push appends a completion, tracking overrun.
func (cq *CQ) push(e CQE) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	cq.armed++
	if len(cq.entries) >= cq.depth {
		cq.overrun = true
		return
	}
	cq.entries = append(cq.entries, e)
}

// Poll removes and returns the oldest completion. ok is false when the
// queue is empty. A previously overrun CQ returns ErrCQOverflow forever —
// completions were lost, the consumer cannot recover them.
func (cq *CQ) Poll() (CQE, bool, error) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if cq.overrun {
		return CQE{}, false, ErrCQOverflow
	}
	if len(cq.entries) == 0 {
		return CQE{}, false, nil
	}
	e := cq.entries[0]
	cq.entries = cq.entries[1:]
	return e, true, nil
}

// Len reports queued completions.
func (cq *CQ) Len() int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return len(cq.entries)
}

// recvWQE is one posted receive.
type recvWQE struct {
	wrid uint64
	sges []SGE
}

// QP is one queue pair on an adapter.
type QP struct {
	Num uint32

	hca *HCA
	mu  sync.Mutex

	state   QPState
	peer    *QP // RC destination after Connect
	sqDepth int
	rqDepth int
	sqInUse int
	rq      []recvWQE

	SendCQ *CQ
	RecvCQ *CQ
}

// CreateQP allocates a queue pair on the adapter with bounded queues.
func (h *HCA) CreateQP(sendCQ, recvCQ *CQ, sqDepth, rqDepth int) (*QP, error) {
	if sendCQ == nil || recvCQ == nil {
		return nil, errors.New("hca: QP needs completion queues")
	}
	if sqDepth < 1 || rqDepth < 1 {
		return nil, errors.New("hca: queue depths must be positive")
	}
	h.mu.Lock()
	num := h.nextQPNum
	h.nextQPNum++
	h.mu.Unlock()
	return &QP{
		Num: num, hca: h, state: QPInit,
		sqDepth: sqDepth, rqDepth: rqDepth,
		SendCQ: sendCQ, RecvCQ: recvCQ,
	}, nil
}

// Connect moves both QPs through RTR/RTS against each other (the RC
// connection handshake, collapsed).
func Connect(a, b *QP) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if a.state != QPInit || b.state != QPInit {
		return fmt.Errorf("%w: %s/%s (want INIT/INIT)", ErrQPState, a.state, b.state)
	}
	a.peer, b.peer = b, a
	a.state, b.state = QPReadyToSend, QPReadyToSend
	return nil
}

// State reports the current QP state.
func (qp *QP) State() QPState {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.state
}

// PostRecv posts a receive WQE. Fails with ErrRQFull beyond the depth.
func (qp *QP) PostRecv(wrid uint64, sges []SGE) (simtime.Ticks, error) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if qp.state == QPError || qp.state == QPReset {
		return 0, fmt.Errorf("%w: %s", ErrQPState, qp.state)
	}
	if len(qp.rq) >= qp.rqDepth {
		return 0, ErrRQFull
	}
	qp.rq = append(qp.rq, recvWQE{wrid: wrid, sges: sges})
	return qp.hca.PostCost(len(sges)), nil
}

// RQLen reports posted receives.
func (qp *QP) RQLen() int {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return len(qp.rq)
}

// SendResult carries the timing decomposition of one executed send.
type SendResult struct {
	Post    simtime.Ticks // consumer-side posting cost
	Gather  simtime.Ticks // local DMA gather
	Wire    simtime.Ticks // link traversal
	Scatter simtime.Ticks // remote DMA scatter
	Bytes   int
}

// Complete is the end-to-end duration after posting.
func (s SendResult) Complete() simtime.Ticks { return s.Gather + s.Wire + s.Scatter }

// Send executes one RC send work request synchronously: gathers locally,
// crosses the wire, consumes the peer's oldest receive WQE, scatters into
// it, and pushes completions into both CQs stamped at `now` plus the
// pipeline delay. Errors transition the QP to the error state, as RC
// semantics demand.
func (qp *QP) Send(now simtime.Ticks, wrid uint64, sges []SGE) (SendResult, error) {
	qp.mu.Lock()
	if qp.state != QPReadyToSend {
		st := qp.state
		qp.mu.Unlock()
		return SendResult{}, fmt.Errorf("%w: %s", ErrQPState, st)
	}
	if qp.sqInUse >= qp.sqDepth {
		qp.mu.Unlock()
		return SendResult{}, ErrSQFull
	}
	qp.sqInUse++
	peer := qp.peer
	qp.mu.Unlock()

	res := SendResult{Post: qp.hca.PostCost(len(sges))}
	fail := func(err error) (SendResult, error) {
		qp.mu.Lock()
		qp.state = QPError
		qp.sqInUse--
		qp.mu.Unlock()
		qp.SendCQ.push(CQE{QPNum: qp.Num, WRID: wrid, Time: now, SolErr: err})
		return SendResult{}, err
	}

	data, gather, err := qp.hca.Gather(sges)
	if err != nil {
		return fail(err)
	}
	res.Gather = gather
	res.Bytes = len(data)
	res.Wire = qp.hca.WireCost(len(data))

	// Consume the peer's receive WQE.
	peer.mu.Lock()
	if len(peer.rq) == 0 {
		peer.mu.Unlock()
		// Receiver-not-ready: RC retries exhaust and both sides error.
		return fail(ErrRQEmpty)
	}
	wqe := peer.rq[0]
	peer.rq = peer.rq[1:]
	peer.mu.Unlock()

	scatter, err := peer.hca.Scatter(wqe.sges, data)
	if err != nil {
		return fail(err)
	}
	res.Scatter = scatter

	done := now + res.Post + res.Complete()
	peer.RecvCQ.push(CQE{QPNum: peer.Num, WRID: wqe.wrid, Bytes: len(data), IsRecv: true, Time: done})
	qp.SendCQ.push(CQE{QPNum: qp.Num, WRID: wrid, Bytes: len(data), Time: done + qp.hca.Machine().HCA.WireLatency})

	qp.mu.Lock()
	qp.sqInUse--
	qp.mu.Unlock()
	return res, nil
}
