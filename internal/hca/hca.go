// Package hca models a protocol-offloading InfiniBand host channel
// adapter: memory regions with a memory translation table (MTT), an
// on-adapter address-translation cache (ATT), work-request posting costs,
// scatter/gather DMA, and the wire.
//
// The model is split in the middle of the wire: each simulated process
// owns one HCA, and the MPI layer (or a benchmark) coordinates the two
// sides' virtual clocks. The HCA computes durations and moves real bytes;
// it never blocks.
//
// Cost structure reproduced from the paper:
//
//   - Posting a work request costs a doorbell plus WQE build that grows
//     only mildly with the number of scatter/gather elements — Figure 3
//     ("the time consumption by using 128 SGEs is only three times higher
//     than with one SGE").
//   - Each SGE's payload is fetched by DMA with per-cacheline and
//     alignment costs — Figure 4.
//   - Every page touched needs a translation; the ATT caches them and a
//     miss costs a bus round trip to host memory. Hugepage-granularity
//     MTT entries (the paper's OpenIB patch) cut the entry count 512-fold.
package hca

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bus"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/phys"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Errors.
var (
	ErrBadKey      = errors.New("hca: unknown memory key")
	ErrOutOfBounds = errors.New("hca: SGE outside memory region")
	ErrMRInUse     = errors.New("hca: memory region has active handles")
)

// SGE is one scatter/gather element of a work request.
type SGE struct {
	Addr   vm.VA
	Length uint32
	LKey   uint32
}

// TotalLen sums the byte lengths of a gather list.
func TotalLen(sges []SGE) int {
	n := 0
	for _, s := range sges {
		n += int(s.Length)
	}
	return n
}

// MR is a registered memory region as the adapter sees it: a key pair and
// a run of MTT entries translating the region page by page.
type MR struct {
	LKey, RKey uint32
	Base       vm.VA
	Length     uint64
	// PageShift is the translation granularity the driver installed:
	// 12 for 4 KiB entries, 21 for 2 MiB entries.
	PageShift uint
	// entries[i] is the physical address of page i of the region.
	entries []phys.Addr
}

// NumEntries reports how many MTT entries the region occupies — the count
// the driver had to push to the adapter at registration time.
func (mr *MR) NumEntries() int { return len(mr.entries) }

// pageSize is the granularity of this MR's translations.
func (mr *MR) pageSize() uint64 { return 1 << mr.PageShift }

// translate resolves va (which must fall inside the region) to a physical
// address and the MTT entry index used.
func (mr *MR) translate(va vm.VA) (phys.Addr, int, error) {
	if va < mr.Base || uint64(va) >= uint64(mr.Base)+mr.Length {
		return 0, 0, fmt.Errorf("%w: va %#x not in [%#x,%#x)", ErrOutOfBounds,
			uint64(va), uint64(mr.Base), uint64(mr.Base)+mr.Length)
	}
	// The MTT is indexed from the page-aligned start of the region.
	alignedBase := uint64(mr.Base) &^ (mr.pageSize() - 1)
	idx := int((uint64(va) - alignedBase) >> mr.PageShift)
	if idx >= len(mr.entries) {
		return 0, 0, fmt.Errorf("%w: page index %d of %d", ErrOutOfBounds, idx, len(mr.entries))
	}
	off := uint64(va) & (mr.pageSize() - 1)
	return mr.entries[idx] + phys.Addr(off), idx, nil
}

// Stats counts adapter activity.
type Stats struct {
	PostedWRs    int64
	CQEs         int64
	ATTHits      int64
	ATTMisses    int64
	BytesGather  int64
	BytesScatter int64
	MTTEntries   int64 // gauge: currently installed
	ATTEvictions int64 // translations dropped by injected forced eviction
}

// HCA is one adapter instance.
type HCA struct {
	mach *machine.Machine
	bus  *bus.Model
	mem  *phys.Memory

	// inj, when set, can force cached translations out of the ATT on a
	// deterministic schedule (an adapter invalidating stale entries
	// under pressure). Nil = no faults.
	inj *faults.Injector

	mu  sync.Mutex
	mrs map[uint32]*MR
	// vaGen counts registrations per base address. Keys are derived
	// from (base VA, generation), not from a global install counter:
	// concurrent registrations (Sendrecv's forked halves under memlock
	// eviction pressure) would otherwise draw counter values in
	// scheduler order, and everything keyed on the lkey downstream —
	// ATT set placement, the per-translation fault streams — would
	// inherit that nondeterminism.
	vaGen     map[vm.VA]uint32
	nextQPNum uint32
	att       *attCache
	stats     Stats
}

// SetFaults attaches a fault injector.
func (h *HCA) SetFaults(inj *faults.Injector) {
	h.mu.Lock()
	h.inj = inj
	h.mu.Unlock()
}

// New builds an adapter for a machine, attached to the node's physical
// memory.
func New(m *machine.Machine, mem *phys.Memory) *HCA {
	return &HCA{
		mach:      m,
		bus:       bus.New(m.Bus),
		mem:       mem,
		mrs:       make(map[uint32]*MR),
		vaGen:     make(map[vm.VA]uint32),
		nextQPNum: 1,
		att:       newATTCache(m.HCA.ATTEntries, m.HCA.ATTWays),
	}
}

// keyFor derives the lkey for the gen-th registration of base: a 31-bit
// hash (bit 31 is the rkey tag) of the pair, so the key depends only on
// what was registered, never on when relative to other buffers. Linear
// probing resolves the (vanishingly rare) collisions with live keys;
// callers hold h.mu.
func (h *HCA) keyFor(base vm.VA, gen uint32) uint32 {
	x := uint64(base)<<32 | uint64(gen)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	key := uint32(x) & 0x7FFF_FFFF
	for key == 0 || h.mrs[key] != nil {
		key = key%0x7FFF_FFFF + 1
	}
	return key
}

// Machine exposes the adapter's host description.
func (h *HCA) Machine() *machine.Machine { return h.mach }

// InstallMR installs translations for a pinned buffer and returns the MR.
// pages must cover [base, base+length) in address order, all of one page
// class (vm.Pin produces exactly this). If hugeATT is true and the pages
// are hugepages, one MTT entry per 2 MiB page is installed (the paper's
// driver patch); otherwise the driver "pretends 4 KB pages" and installs
// one entry per 4 KiB, expanding hugepages into 512 contiguous entries.
func (h *HCA) InstallMR(base vm.VA, length uint64, pages []vm.Page, hugeATT bool) (*MR, error) {
	if len(pages) == 0 {
		return nil, errors.New("hca: empty page list")
	}
	mr := &MR{Base: base, Length: length}
	if pages[0].Class == vm.Huge && hugeATT {
		mr.PageShift = 21
		mr.entries = make([]phys.Addr, 0, len(pages))
		for _, p := range pages {
			mr.entries = append(mr.entries, p.PA)
		}
	} else {
		mr.PageShift = 12
		per := 1
		if pages[0].Class == vm.Huge {
			per = machine.SmallPerHuge
		}
		mr.entries = make([]phys.Addr, 0, len(pages)*per)
		for _, p := range pages {
			for i := 0; i < per; i++ {
				mr.entries = append(mr.entries, p.PA+phys.Addr(i*machine.SmallPageSize))
			}
		}
	}
	h.mu.Lock()
	mr.LKey = h.keyFor(base, h.vaGen[base])
	mr.RKey = mr.LKey | 0x8000_0000
	h.vaGen[base]++
	h.mrs[mr.LKey] = mr
	h.stats.MTTEntries += int64(len(mr.entries))
	h.mu.Unlock()
	return mr, nil
}

// RemoveMR tears the MR's translations down.
func (h *HCA) RemoveMR(lkey uint32) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	mr, ok := h.mrs[lkey]
	if !ok {
		return fmt.Errorf("%w: lkey %#x", ErrBadKey, lkey)
	}
	delete(h.mrs, lkey)
	h.stats.MTTEntries -= int64(len(mr.entries))
	h.att.invalidate(lkey)
	return nil
}

// lookup finds an MR by local key or by remote key.
func (h *HCA) lookup(key uint32) (*MR, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if mr, ok := h.mrs[key]; ok {
		return mr, nil
	}
	if mr, ok := h.mrs[key&^0x8000_0000]; ok && mr.RKey == key {
		return mr, nil
	}
	return nil, fmt.Errorf("%w: key %#x", ErrBadKey, key)
}

// PostCost is the consumer-side cost of building and posting one work
// request with nsge scatter/gather elements: doorbell + WQE build, growing
// mildly per SGE (Figure 3's sub-linear behaviour: the WQE holds inline
// SGE descriptors that are written in bursts).
func (h *HCA) PostCost(nsge int) simtime.Ticks {
	if nsge < 1 {
		nsge = 1
	}
	h.mu.Lock()
	h.stats.PostedWRs++
	h.mu.Unlock()
	p := h.mach.HCA
	return p.DoorbellTicks + p.WQEBaseTicks + simtime.Ticks(nsge-1)*p.WQESGETicks
}

// PollCost is the consumer-side cost of reaping one completion entry.
func (h *HCA) PollCost() simtime.Ticks {
	h.mu.Lock()
	h.stats.CQEs++
	h.mu.Unlock()
	return h.mach.HCA.CQETicks
}

// attAccess charges for one translation lookup and returns its cost.
func (h *HCA) attAccess(lkey uint32, pageIdx int) simtime.Ticks {
	h.mu.Lock()
	if h.inj.ATTEvict(uint64(lkey)<<32 | uint64(uint32(pageIdx))) {
		// Injected eviction: this access's cached translation (if any)
		// is lost right before the lookup, forcing a refetch across the
		// IO bus. The perturbation is local to the (lkey,page) entry, so
		// the fault pattern replays bit-identically even while two
		// protocol halves drive the adapter concurrently.
		if h.att.evictEntry(lkey, pageIdx) {
			h.stats.ATTEvictions++
		}
	}
	hit := h.att.access(lkey, pageIdx)
	if hit {
		h.stats.ATTHits++
	} else {
		h.stats.ATTMisses++
	}
	h.mu.Unlock()
	if hit {
		return 0
	}
	return h.mach.HCA.ATTMissTicks
}

// dmaChunk walks one SGE page by page, invoking f with each physically
// contiguous chunk, and accumulates translation plus DMA cost. pipelined
// marks SGEs after the first in a work request: the DMA engine overlaps
// their descriptor/arbitration latency with the previous element's
// transfer ("the network adapter can fetch buffers from the memory
// subsystem simultaneously"), so the per-transaction setup is not
// re-charged — this is what keeps Figure 3's 4-SGE send only ~14 % more
// expensive than a 1-SGE send of a quarter the data.
func (h *HCA) dmaChunk(sge SGE, pipelined bool, f func(pa phys.Addr, off uint64, n int)) (simtime.Ticks, error) {
	mr, err := h.lookup(sge.LKey)
	if err != nil {
		return 0, err
	}
	if uint64(sge.Addr)+uint64(sge.Length) > uint64(mr.Base)+mr.Length {
		return 0, fmt.Errorf("%w: [%#x,+%d) exceeds region", ErrOutOfBounds, uint64(sge.Addr), sge.Length)
	}
	// Small chunks pay the full per-transaction alignment model inside
	// DMACost; bulk streaming pays one engine setup per SGE and then pure
	// bandwidth (page-to-page streaming amortises further transactions).
	var cost simtime.Ticks
	bulkSetup := false
	// A pipelined SGE's first small chunk skips the per-transaction setup
	// (overlapped with the previous element's transfer).
	discounted := !pipelined
	va := sge.Addr
	left := int(sge.Length)
	ps := mr.pageSize()
	for left > 0 {
		pa, idx, err := mr.translate(va)
		if err != nil {
			return 0, err
		}
		cost += h.attAccess(sge.LKey, idx)
		pageOff := uint64(va) & (ps - 1)
		n := int(ps - pageOff)
		if n > left {
			n = left
		}
		// Small chunks pay the per-line alignment model; large chunks
		// stream at bus bandwidth.
		if n <= 4*machine.CacheLineSize {
			c := h.bus.DMACost(uint64(va)%machine.SmallPageSize, n)
			if !discounted {
				if c > h.bus.Bus.TxnTicks {
					c -= h.bus.Bus.TxnTicks
				}
				discounted = true
			}
			cost += c
		} else {
			if !bulkSetup {
				cost += h.bus.Bus.TxnTicks
				bulkSetup = true
			}
			cost += simtime.BandwidthTicks(int64(n), h.bus.Bus.BandwidthMBs)
		}
		if f != nil {
			f(pa, pageOff, n)
		}
		va += vm.VA(n)
		left -= n
	}
	return cost, nil
}

// Gather DMA-reads the payload described by a gather list and returns the
// bytes plus the adapter-side cost (translations + DMA reads). This is the
// "network adapter can fetch buffers from the memory subsystem
// simultaneously without involving the CPU" step; simultaneity is modelled
// by charging the serial DMA cost only once per chunk with no CPU charge.
func (h *HCA) Gather(sges []SGE) ([]byte, simtime.Ticks, error) {
	data := make([]byte, 0, TotalLen(sges))
	var total simtime.Ticks
	for i, sge := range sges {
		cost, err := h.dmaChunk(sge, i > 0, func(pa phys.Addr, _ uint64, n int) {
			buf := make([]byte, n)
			h.mem.ReadPhys(pa, buf)
			data = append(data, buf...)
		})
		if err != nil {
			return nil, 0, err
		}
		total += cost
	}
	h.mu.Lock()
	h.stats.BytesGather += int64(len(data))
	h.mu.Unlock()
	return data, total, nil
}

// Scatter DMA-writes data into the buffers described by a scatter list
// (the receive side of a send/recv pair). Excess data beyond the scatter
// list is an error, mirroring IB's local-length error.
func (h *HCA) Scatter(sges []SGE, data []byte) (simtime.Ticks, error) {
	if TotalLen(sges) < len(data) {
		return 0, fmt.Errorf("%w: receive list %d bytes < payload %d bytes",
			ErrOutOfBounds, TotalLen(sges), len(data))
	}
	var total simtime.Ticks
	pos := 0
	for i, sge := range sges {
		if pos >= len(data) {
			break
		}
		want := int(sge.Length)
		if want > len(data)-pos {
			want = len(data) - pos
			sge.Length = uint32(want)
		}
		cost, err := h.dmaChunk(sge, i > 0, func(pa phys.Addr, _ uint64, n int) {
			h.mem.WritePhys(pa, data[pos:pos+n])
			pos += n
		})
		if err != nil {
			return 0, err
		}
		total += cost
	}
	h.mu.Lock()
	h.stats.BytesScatter += int64(len(data))
	h.mu.Unlock()
	return total, nil
}

// ScatterRDMA DMA-writes data at a raw (rkey, remote VA) target — the
// RDMA-write path used by the rendezvous protocol. It runs entirely on
// this (the target's) adapter.
func (h *HCA) ScatterRDMA(rkey uint32, va vm.VA, data []byte) (simtime.Ticks, error) {
	return h.Scatter([]SGE{{Addr: va, Length: uint32(len(data)), LKey: rkey}}, data)
}

// attCounters snapshots the translation-cache counters; the traced DMA
// wrappers diff two snapshots to attribute per-operation ATT behaviour.
// The caller must hold the adapter serialised across the operation (the
// MPI layer's dma gate does) for the delta to be exact.
func (h *HCA) attCounters() (hits, misses, evicts int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats.ATTHits, h.stats.ATTMisses, h.stats.ATTEvictions
}

// GatherT is Gather with tracing: the DMA-read is emitted as one
// hca-layer span at tc's position (callers put tc on an adapter track),
// annotated with the bytes moved and the translation-cache behaviour of
// exactly this operation.
func (h *HCA) GatherT(tc trace.Ctx, sges []SGE) ([]byte, simtime.Ticks, error) {
	if !tc.Enabled() {
		return h.Gather(sges)
	}
	h0, m0, e0 := h.attCounters()
	data, cost, err := h.Gather(sges)
	if err != nil {
		return data, cost, err
	}
	h1, m1, e1 := h.attCounters()
	tc.SpanAt(trace.LHCA, "dma.gather", tc.Now(), cost,
		trace.I64("bytes", int64(len(data))),
		trace.I64("sges", int64(len(sges))),
		trace.I64("att_hit", h1-h0),
		trace.I64("att_miss", m1-m0),
		trace.I64("att_evict", e1-e0))
	return data, cost, nil
}

// ScatterT is Scatter with tracing (see GatherT).
func (h *HCA) ScatterT(tc trace.Ctx, sges []SGE, data []byte) (simtime.Ticks, error) {
	if !tc.Enabled() {
		return h.Scatter(sges, data)
	}
	h0, m0, e0 := h.attCounters()
	cost, err := h.Scatter(sges, data)
	if err != nil {
		return cost, err
	}
	h1, m1, e1 := h.attCounters()
	tc.SpanAt(trace.LHCA, "dma.scatter", tc.Now(), cost,
		trace.I64("bytes", int64(len(data))),
		trace.I64("sges", int64(len(sges))),
		trace.I64("att_hit", h1-h0),
		trace.I64("att_miss", m1-m0),
		trace.I64("att_evict", e1-e0))
	return cost, nil
}

// ScatterRDMAT is ScatterRDMA with tracing (see GatherT).
func (h *HCA) ScatterRDMAT(tc trace.Ctx, rkey uint32, va vm.VA, data []byte) (simtime.Ticks, error) {
	return h.ScatterT(tc, []SGE{{Addr: va, Length: uint32(len(data)), LKey: rkey}}, data)
}

// WireCost is the time on the link for an n-byte message: one-way latency
// plus serialisation at wire bandwidth.
func (h *HCA) WireCost(n int) simtime.Ticks {
	p := h.mach.HCA
	return p.WireLatency + simtime.BandwidthTicks(int64(n), p.WireBandwidthMBs)
}

// Stats returns a snapshot of the counters.
func (h *HCA) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// ResetATT flushes the translation cache and its counters (benchmarks use
// this between configurations).
func (h *HCA) ResetATT() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.att = newATTCache(h.mach.HCA.ATTEntries, h.mach.HCA.ATTWays)
	h.stats.ATTHits = 0
	h.stats.ATTMisses = 0
}
