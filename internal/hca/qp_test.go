package hca_test

import (
	"errors"
	"testing"

	"repro/internal/hca"
	"repro/internal/machine"
	"repro/internal/node/nodetest"
	"repro/internal/vm"
)

// qpRig builds two connected QPs with registered buffers on separate nodes.
type qpRig struct {
	sendAS, recvAS   *vm.AddressSpace
	sendHCA, recvHCA *hca.HCA
	sendQP, recvQP   *hca.QP
	sendVA, recvVA   vm.VA
	sendMR, recvMR   *hca.MR
}

func newQPRig(t *testing.T, sq, rq, cqDepth int) *qpRig {
	t.Helper()
	m := machine.Opteron()
	mk := func() (*vm.AddressSpace, *hca.HCA, vm.VA, *hca.MR) {
		n := nodetest.New(t, m)
		as, h := n.AS, n.Verbs.HW
		va, err := as.MapSmall(256 << 10)
		if err != nil {
			t.Fatal(err)
		}
		pages, err := as.Pin(va, 256<<10)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := h.InstallMR(va, 256<<10, pages, false)
		if err != nil {
			t.Fatal(err)
		}
		return as, h, va, mr
	}
	r := &qpRig{}
	r.sendAS, r.sendHCA, r.sendVA, r.sendMR = mk()
	r.recvAS, r.recvHCA, r.recvVA, r.recvMR = mk()
	var err error
	r.sendQP, err = r.sendHCA.CreateQP(hca.NewCQ(cqDepth), hca.NewCQ(cqDepth), sq, rq)
	if err != nil {
		t.Fatal(err)
	}
	r.recvQP, err = r.recvHCA.CreateQP(hca.NewCQ(cqDepth), hca.NewCQ(cqDepth), sq, rq)
	if err != nil {
		t.Fatal(err)
	}
	if err := hca.Connect(r.sendQP, r.recvQP); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestQPSendRecvMovesBytes(t *testing.T) {
	r := newQPRig(t, 4, 4, 16)
	payload := []byte("the quick brown fox")
	if err := r.sendAS.Write(r.sendVA, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := r.recvQP.PostRecv(77, []hca.SGE{{Addr: r.recvVA, Length: 64, LKey: r.recvMR.LKey}}); err != nil {
		t.Fatal(err)
	}
	res, err := r.sendQP.Send(1000, 42, []hca.SGE{{Addr: r.sendVA, Length: uint32(len(payload)), LKey: r.sendMR.LKey}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != len(payload) || res.Complete() <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	got := make([]byte, len(payload))
	if err := r.recvAS.Read(r.recvVA, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload corrupted: %q", got)
	}
	// Completions: receiver first (earlier timestamp), then sender ack.
	rc, ok, err := r.recvQP.RecvCQ.Poll()
	if err != nil || !ok || rc.WRID != 77 || !rc.IsRecv || rc.Bytes != len(payload) {
		t.Fatalf("recv CQE wrong: %+v ok=%v err=%v", rc, ok, err)
	}
	sc, ok, err := r.sendQP.SendCQ.Poll()
	if err != nil || !ok || sc.WRID != 42 || sc.IsRecv {
		t.Fatalf("send CQE wrong: %+v ok=%v err=%v", sc, ok, err)
	}
	if sc.Time < rc.Time {
		t.Fatal("sender ack cannot precede remote placement")
	}
}

func TestQPStateMachine(t *testing.T) {
	m := machine.Opteron()
	h := nodetest.New(t, m).Verbs.HW
	qp, err := h.CreateQP(hca.NewCQ(4), hca.NewCQ(4), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if qp.State() != hca.QPInit {
		t.Fatalf("fresh QP state %v", qp.State())
	}
	// Sending before Connect fails.
	if _, err := qp.Send(0, 1, nil); !errors.Is(err, hca.ErrQPState) {
		t.Fatalf("send on INIT QP: %v", err)
	}
	// Connecting twice fails.
	qp2, _ := h.CreateQP(hca.NewCQ(4), hca.NewCQ(4), 2, 2)
	if err := hca.Connect(qp, qp2); err != nil {
		t.Fatal(err)
	}
	if err := hca.Connect(qp, qp2); !errors.Is(err, hca.ErrQPState) {
		t.Fatalf("double connect: %v", err)
	}
}

func TestQPReceiverNotReady(t *testing.T) {
	r := newQPRig(t, 4, 4, 16)
	// No receive posted: RC send must fail and error the QP.
	_, err := r.sendQP.Send(0, 9, []hca.SGE{{Addr: r.sendVA, Length: 8, LKey: r.sendMR.LKey}})
	if !errors.Is(err, hca.ErrRQEmpty) {
		t.Fatalf("got %v, want ErrRQEmpty", err)
	}
	if r.sendQP.State() != hca.QPError {
		t.Fatalf("QP state %v after RNR exhaustion, want ERROR", r.sendQP.State())
	}
	// The failure produced a completion-with-error.
	e, ok, err := r.sendQP.SendCQ.Poll()
	if err != nil || !ok || e.SolErr == nil {
		t.Fatalf("expected error CQE, got %+v ok=%v err=%v", e, ok, err)
	}
	// Further sends fail with QP state error.
	if _, err := r.sendQP.Send(0, 10, nil); !errors.Is(err, hca.ErrQPState) {
		t.Fatalf("send on errored QP: %v", err)
	}
}

func TestRQDepthLimit(t *testing.T) {
	r := newQPRig(t, 4, 2, 16)
	sge := []hca.SGE{{Addr: r.recvVA, Length: 8, LKey: r.recvMR.LKey}}
	for i := 0; i < 2; i++ {
		if _, err := r.recvQP.PostRecv(uint64(i), sge); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.recvQP.PostRecv(3, sge); !errors.Is(err, hca.ErrRQFull) {
		t.Fatalf("got %v, want ErrRQFull", err)
	}
	if r.recvQP.RQLen() != 2 {
		t.Fatal("RQ accounting wrong")
	}
}

func TestCQOverflowIsFatal(t *testing.T) {
	r := newQPRig(t, 8, 8, 2) // tiny CQs
	sge := []hca.SGE{{Addr: r.sendVA, Length: 8, LKey: r.sendMR.LKey}}
	rsge := []hca.SGE{{Addr: r.recvVA, Length: 8, LKey: r.recvMR.LKey}}
	// Three sends without polling: the third completion overruns depth 2.
	for i := 0; i < 3; i++ {
		if _, err := r.recvQP.PostRecv(uint64(i), rsge); err != nil {
			t.Fatal(err)
		}
		if _, err := r.sendQP.Send(0, uint64(i), sge); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := r.sendQP.SendCQ.Poll(); !errors.Is(err, hca.ErrCQOverflow) {
		t.Fatalf("got %v, want ErrCQOverflow", err)
	}
	// Overrun is sticky.
	if _, _, err := r.sendQP.SendCQ.Poll(); !errors.Is(err, hca.ErrCQOverflow) {
		t.Fatal("overrun must be sticky")
	}
}

func TestCQPollEmpty(t *testing.T) {
	cq := hca.NewCQ(4)
	if _, ok, err := cq.Poll(); ok || err != nil {
		t.Fatal("empty poll should be (zero, false, nil)")
	}
}

func TestCreateQPValidation(t *testing.T) {
	m := machine.Opteron()
	h := nodetest.New(t, m).Verbs.HW
	if _, err := h.CreateQP(nil, hca.NewCQ(1), 1, 1); err == nil {
		t.Fatal("nil CQ accepted")
	}
	if _, err := h.CreateQP(hca.NewCQ(1), hca.NewCQ(1), 0, 1); err == nil {
		t.Fatal("zero depth accepted")
	}
	a, _ := h.CreateQP(hca.NewCQ(1), hca.NewCQ(1), 1, 1)
	b, _ := h.CreateQP(hca.NewCQ(1), hca.NewCQ(1), 1, 1)
	if a.Num == b.Num {
		t.Fatal("QP numbers collide")
	}
}
