package hca_test

import (
	"errors"
	"testing"

	"repro/internal/hca"
	"repro/internal/machine"
	"repro/internal/node/nodetest"
	"repro/internal/vm"
)

// rig builds an address space + adapter pair on one machine.
func rig(t *testing.T, m *machine.Machine) (*vm.AddressSpace, *hca.HCA) {
	t.Helper()
	n := nodetest.New(t, m)
	return n.AS, n.Verbs.HW
}

// reg maps, pins and installs a buffer, returning VA and MR.
func reg(t *testing.T, as *vm.AddressSpace, h *hca.HCA, size uint64, huge, hugeATT bool) (vm.VA, *hca.MR) {
	t.Helper()
	var va vm.VA
	var err error
	if huge {
		va, err = as.MapHuge(size)
	} else {
		va, err = as.MapSmall(size)
	}
	if err != nil {
		t.Fatal(err)
	}
	pages, err := as.Pin(va, size)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := h.InstallMR(va, size, pages, hugeATT)
	if err != nil {
		t.Fatal(err)
	}
	return va, mr
}

func TestMTTEntryCounts(t *testing.T) {
	m := machine.Opteron()
	as, h := rig(t, m)
	// 1 MiB small-page buffer: 256 entries.
	_, mr := reg(t, as, h, 1<<20, false, false)
	if mr.NumEntries() != 256 {
		t.Fatalf("small 1MiB: %d entries, want 256", mr.NumEntries())
	}
	// 4 MiB hugepage buffer without the patch: driver pretends 4K -> 1024.
	_, mr2 := reg(t, as, h, 4<<20, true, false)
	if mr2.NumEntries() != 1024 {
		t.Fatalf("huge unpatched: %d entries, want 1024", mr2.NumEntries())
	}
	// Same with the patch: 2 entries.
	_, mr3 := reg(t, as, h, 4<<20, true, true)
	if mr3.NumEntries() != 2 {
		t.Fatalf("huge patched: %d entries, want 2", mr3.NumEntries())
	}
	if mr3.PageShift != 21 || mr2.PageShift != 12 {
		t.Fatal("page shifts wrong")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	m := machine.Opteron()
	as, h := rig(t, m)
	va, mr := reg(t, as, h, 64<<10, false, false)

	in := make([]byte, 9000) // crosses pages
	for i := range in {
		in[i] = byte(i * 13)
	}
	if err := as.Write(va+100, in); err != nil {
		t.Fatal(err)
	}
	data, cost, err := h.Gather([]hca.SGE{{Addr: va + 100, Length: uint32(len(in)), LKey: mr.LKey}})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("gather must cost time")
	}
	for i := range in {
		if data[i] != in[i] {
			t.Fatalf("gather corrupted byte %d", i)
		}
	}
	// Scatter into a second buffer and verify.
	va2, mr2 := reg(t, as, h, 64<<10, false, false)
	if _, err := h.Scatter([]hca.SGE{{Addr: va2 + 5, Length: uint32(len(in)), LKey: mr2.LKey}}, data); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := as.Read(va2+5, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("scatter corrupted byte %d", i)
		}
	}
}

func TestMultiSGEGatherOrder(t *testing.T) {
	m := machine.SystemP()
	as, h := rig(t, m)
	va, mr := reg(t, as, h, 16<<10, false, false)
	_ = as.Write(va, []byte("AAAA"))
	_ = as.Write(va+8192, []byte("BBBB"))
	data, _, err := h.Gather([]hca.SGE{
		{Addr: va + 8192, Length: 4, LKey: mr.LKey},
		{Addr: va, Length: 4, LKey: mr.LKey},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "BBBBAAAA" {
		t.Fatalf("gather order wrong: %q", data)
	}
}

func TestScatterAcrossSGEs(t *testing.T) {
	m := machine.Opteron()
	as, h := rig(t, m)
	va, mr := reg(t, as, h, 16<<10, false, false)
	payload := []byte("0123456789")
	if _, err := h.Scatter([]hca.SGE{
		{Addr: va, Length: 4, LKey: mr.LKey},
		{Addr: va + 4096, Length: 6, LKey: mr.LKey},
	}, payload); err != nil {
		t.Fatal(err)
	}
	a := make([]byte, 4)
	b := make([]byte, 6)
	_ = as.Read(va, a)
	_ = as.Read(va+4096, b)
	if string(a) != "0123" || string(b) != "456789" {
		t.Fatalf("scatter split wrong: %q %q", a, b)
	}
}

func TestScatterOverflowRejected(t *testing.T) {
	m := machine.Opteron()
	as, h := rig(t, m)
	va, mr := reg(t, as, h, 4096, false, false)
	_, err := h.Scatter([]hca.SGE{{Addr: va, Length: 8, LKey: mr.LKey}}, make([]byte, 16))
	if !errors.Is(err, hca.ErrOutOfBounds) {
		t.Fatalf("got %v, want ErrOutOfBounds", err)
	}
}

func TestBoundsChecks(t *testing.T) {
	m := machine.Opteron()
	as, h := rig(t, m)
	va, mr := reg(t, as, h, 8192, false, false)
	if _, _, err := h.Gather([]hca.SGE{{Addr: va + 8000, Length: 500, LKey: mr.LKey}}); !errors.Is(err, hca.ErrOutOfBounds) {
		t.Fatalf("overrun: got %v", err)
	}
	if _, _, err := h.Gather([]hca.SGE{{Addr: va, Length: 8, LKey: 0xdead}}); !errors.Is(err, hca.ErrBadKey) {
		t.Fatalf("bad key: got %v", err)
	}
}

func TestRKeyScatterRDMA(t *testing.T) {
	m := machine.Opteron()
	as, h := rig(t, m)
	va, mr := reg(t, as, h, 1<<20, false, false)
	payload := make([]byte, 300000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := h.ScatterRDMA(mr.RKey, va+7, payload); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(payload))
	_ = as.Read(va+7, out)
	for i := range payload {
		if out[i] != payload[i] {
			t.Fatalf("RDMA write corrupted byte %d", i)
		}
	}
}

func TestPostCostSublinearInSGEs(t *testing.T) {
	// Figure 3 text: 128 SGEs cost only ~3x one SGE.
	m := machine.SystemP()
	_, h := rig(t, m)
	c1 := h.PostCost(1)
	c128 := h.PostCost(128)
	ratio := float64(c128) / float64(c1)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("post(128)/post(1) = %.2f, want ~3", ratio)
	}
	// Paper: post overhead 450-650 ticks for small WRs.
	if c1 < 400 || c1 > 700 {
		t.Fatalf("post(1) = %d ticks, want 450-650", c1)
	}
}

func TestATTMissesDropWithHugeEntries(t *testing.T) {
	m := machine.Xeon()
	as, h := rig(t, m)
	// Buffer far larger than the ATT reach in 4K entries.
	const size = 8 << 20
	va, mr := reg(t, as, h, size, true, false) // unpatched: 2048 entries
	sge := []hca.SGE{{Addr: va, Length: size, LKey: mr.LKey}}
	for i := 0; i < 3; i++ {
		if _, _, err := h.Gather(sge); err != nil {
			t.Fatal(err)
		}
	}
	unpatchedMisses := h.Stats().ATTMisses

	h.ResetATT()
	va2, mr2 := reg(t, as, h, size, true, true) // patched: 4 entries
	sge2 := []hca.SGE{{Addr: va2, Length: size, LKey: mr2.LKey}}
	for i := 0; i < 3; i++ {
		if _, _, err := h.Gather(sge2); err != nil {
			t.Fatal(err)
		}
	}
	patchedMisses := h.Stats().ATTMisses
	if patchedMisses*50 > unpatchedMisses {
		t.Fatalf("huge ATT entries should slash misses: %d vs %d", patchedMisses, unpatchedMisses)
	}
}

func TestRemoveMRInvalidatesKey(t *testing.T) {
	m := machine.Opteron()
	as, h := rig(t, m)
	va, mr := reg(t, as, h, 4096, false, false)
	if err := h.RemoveMR(mr.LKey); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Gather([]hca.SGE{{Addr: va, Length: 8, LKey: mr.LKey}}); !errors.Is(err, hca.ErrBadKey) {
		t.Fatalf("stale key accepted: %v", err)
	}
	if err := h.RemoveMR(mr.LKey); !errors.Is(err, hca.ErrBadKey) {
		t.Fatal("double remove accepted")
	}
	if h.Stats().MTTEntries != 0 {
		t.Fatal("MTT accounting leaked")
	}
}

func TestWireCostShape(t *testing.T) {
	m := machine.Opteron()
	_, h := rig(t, m)
	small := h.WireCost(1)
	big := h.WireCost(4 << 20)
	if small <= 0 || big <= small {
		t.Fatal("wire cost shape wrong")
	}
	// Large messages approach wire bandwidth: doubling size ~doubles cost.
	r := float64(h.WireCost(8<<20)) / float64(big)
	if r < 1.8 || r > 2.2 {
		t.Fatalf("large-message scaling %f, want ~2", r)
	}
}

func TestTotalLen(t *testing.T) {
	if hca.TotalLen([]hca.SGE{{Length: 3}, {Length: 5}}) != 8 {
		t.Fatal("TotalLen broken")
	}
	if hca.TotalLen(nil) != 0 {
		t.Fatal("TotalLen(nil) != 0")
	}
}
