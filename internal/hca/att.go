package hca

// attCache is the on-adapter address translation table: a set-associative
// cache over MTT entries, keyed by (lkey, page index). A miss forces the
// adapter to fetch the translation from host memory across the IO bus,
// which is the effect behind the paper's Xeon result: pushing 2 MiB
// translations (1/512th the entries) raises SendRecv bandwidth by ≈ 6 %
// on the PCI-X system, where those fetches compete with payload DMA.

type attKey struct {
	lkey uint32
	page int
}

type attEntry struct {
	valid bool
	// poisoned marks a translation dropped by injected forced eviction:
	// the next access to this key misses (the adapter refetches across
	// the bus) and clears the mark. The slot itself stays occupied —
	// freeing it would change which victim a later full-set miss picks,
	// coupling every translation's fate in the set to the real-time
	// interleaving of concurrent DMA streams, while the refetch itself
	// is local to this key and therefore interleaving-invariant.
	poisoned bool
	key      attKey
	age      uint64
}

type attCache struct {
	sets [][]attEntry
	tick uint64
}

func newATTCache(entries, ways int) *attCache {
	if ways <= 0 {
		ways = 1
	}
	if entries < ways {
		entries = ways
	}
	nsets := entries / ways
	c := &attCache{sets: make([][]attEntry, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]attEntry, ways)
	}
	return c
}

// access looks up (lkey,page), installing it on miss; reports hit.
func (c *attCache) access(lkey uint32, page int) bool {
	c.tick++
	k := attKey{lkey, page}
	h := (uint64(lkey)*0x9E3779B97F4A7C15 + uint64(page)*0xBF58476D1CE4E5B9)
	set := c.sets[h%uint64(len(c.sets))]
	for i := range set {
		if set[i].valid && set[i].key == k {
			set[i].age = c.tick
			if set[i].poisoned {
				set[i].poisoned = false
				return false // forced eviction: refetch, refresh in place
			}
			return true
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].age < set[victim].age {
			victim = i
		}
	}
	set[victim] = attEntry{valid: true, key: k, age: c.tick}
	return false
}

// evictEntry drops the one cached translation for (lkey,page) if
// present and not already dropped, reporting whether anything was
// dropped. The fault injector uses it to force a refetch: the effect is
// local to that entry — the access that follows misses and refreshes it
// in place, exactly where a hit would have aged it, leaving the set's
// occupancy untouched — so concurrent accessors of other entries see
// identical outcomes regardless of interleaving.
func (c *attCache) evictEntry(lkey uint32, page int) bool {
	k := attKey{lkey, page}
	h := (uint64(lkey)*0x9E3779B97F4A7C15 + uint64(page)*0xBF58476D1CE4E5B9)
	set := c.sets[h%uint64(len(c.sets))]
	for i := range set {
		if set[i].valid && set[i].key == k {
			if set[i].poisoned {
				return false
			}
			set[i].poisoned = true
			return true
		}
	}
	return false
}

// invalidate drops every entry belonging to one memory region (MR
// deregistration shoots its translations down).
func (c *attCache) invalidate(lkey uint32) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].key.lkey == lkey {
				set[i] = attEntry{}
			}
		}
	}
}
