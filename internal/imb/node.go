package imb

import (
	"repro/internal/machine"
	"repro/internal/phys"
)

// newNodeMem builds a fresh node memory with a warmed (scrambled) frame
// pool, matching the MPI world's setup so registration sweeps see the
// same physical scatter.
func newNodeMem(m *machine.Machine) *phys.Memory {
	mem := phys.NewMemory(m)
	mem.Scramble(4096)
	return mem
}
