package imb

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// traceBytes runs one traced SendRecv ladder and renders the trace.
func traceBytes(t *testing.T, spec *faults.Spec) []byte {
	t.Helper()
	col := trace.NewCollector()
	_, _, err := SendRecvNodeStats(mpi.Config{
		Machine:   machine.Opteron(),
		Ranks:     2,
		Allocator: mpi.AllocHuge,
		LazyDereg: true,
		HugeATT:   true,
		Faults:    spec,
		Trace:     col,
	}, []int{64 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceBytesIdenticalAcrossRuns is the determinism smoke test: the
// same seed and spec must render byte-identical trace files, including
// under fault injection (the CI trace-golden step runs the same check
// through the cmd tools).
func TestTraceBytesIdenticalAcrossRuns(t *testing.T) {
	spec, err := faults.ParseSpec("seed=7,hugecap=8,hugefail=40,shrink=100:2,memlock=16m,wr=50,attevict=400")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*faults.Spec{nil, spec} {
		a, b := traceBytes(t, s), traceBytes(t, s)
		if len(a) == 0 {
			t.Fatal("trace rendered empty")
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("same-seed trace bytes differ (spec=%v): %d vs %d bytes", s, len(a), len(b))
		}
	}
}

// TestTraceBreakdownPartitionsElapsed is the acceptance gate for the IMB
// scenario: parsed back, every rank's per-layer breakdown must sum
// exactly to the run's elapsed virtual ticks.
func TestTraceBreakdownPartitionsElapsed(t *testing.T) {
	d, err := trace.ParsePerfetto(bytes.NewReader(traceBytes(t, nil)))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := d.Elapsed()
	if elapsed == 0 {
		t.Fatal("trace has no elapsed time")
	}
	bs := d.Breakdowns()
	if len(bs) != 2 {
		t.Fatalf("got %d breakdowns, want 2 ranks", len(bs))
	}
	for _, b := range bs {
		if b.Total() != elapsed {
			t.Fatalf("%s: breakdown total %d != elapsed %d", b.Name, b.Total(), elapsed)
		}
		if b.Self[string(trace.LMPI)] == 0 {
			t.Fatalf("%s: no MPI time attributed", b.Name)
		}
	}
}
