package imb

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/simtime"
)

// Beyond the paper's SendRecv test, the IMB suite's PingPong and Exchange
// patterns are implemented for completeness: PingPong measures half-round-
// trip latency (the classic small-message metric the Section 4 offsets
// and SGE counts feed into), Exchange the bidirectional neighbour pattern
// of stencil codes.

// PingPongResult is one row of the PingPong latency table.
type PingPongResult struct {
	Bytes        int
	Iters        int
	LatencyTicks simtime.Ticks // half round trip
	LatencyUsec  float64
}

// PingPong runs the classic two-rank ping-pong and reports half-round-trip
// latency per message size.
func PingPong(cfg mpi.Config, sizes []int) ([]PingPongResult, error) {
	cfg.Ranks = 2
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	results := make([]PingPongResult, len(sizes))
	maxBytes := 0
	for _, s := range sizes {
		if s > maxBytes {
			maxBytes = s
		}
	}
	if maxBytes == 0 {
		maxBytes = 1
	}
	err = w.Run(func(r *mpi.Rank) error {
		va, err := r.Malloc(uint64(maxBytes))
		if err != nil {
			return err
		}
		peer := 1 - r.ID()
		for si, bytes := range sizes {
			iters := iterationsFor(bytes)
			if err := r.Barrier(); err != nil {
				return err
			}
			t0 := r.Now()
			for it := 0; it < iters; it++ {
				if r.ID() == 0 {
					if err := r.Send(peer, si, va, bytes); err != nil {
						return err
					}
					if _, err := r.Recv(peer, si, va, bytes); err != nil {
						return err
					}
				} else {
					if _, err := r.Recv(peer, si, va, bytes); err != nil {
						return err
					}
					if err := r.Send(peer, si, va, bytes); err != nil {
						return err
					}
				}
			}
			if r.ID() == 0 {
				half := (r.Now() - t0) / simtime.Ticks(2*iters)
				results[si] = PingPongResult{
					Bytes: bytes, Iters: iters,
					LatencyTicks: half,
					LatencyUsec:  half.Micros(),
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("imb: pingpong: %w", err)
	}
	w.EndTrace()
	return results, nil
}

// ExchangeResult is one row of the Exchange table.
type ExchangeResult struct {
	Bytes        int
	Iters        int
	TicksPerIter simtime.Ticks
	// BandwidthMBs counts all four transfers per iteration, as IMB does.
	BandwidthMBs float64
}

// Exchange runs the IMB Exchange pattern: every rank exchanges with both
// chain neighbours each iteration (two sends + two receives).
func Exchange(cfg mpi.Config, sizes []int) ([]ExchangeResult, error) {
	if cfg.Ranks == 0 {
		cfg.Ranks = 4
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	results := make([]ExchangeResult, len(sizes))
	maxBytes := 0
	for _, s := range sizes {
		if s > maxBytes {
			maxBytes = s
		}
	}
	err = w.Run(func(r *mpi.Rank) error {
		sva, err := r.Malloc(uint64(maxBytes))
		if err != nil {
			return err
		}
		rva, err := r.Malloc(uint64(maxBytes))
		if err != nil {
			return err
		}
		left := (r.ID() - 1 + r.Size()) % r.Size()
		right := (r.ID() + 1) % r.Size()
		for si, bytes := range sizes {
			iters := iterationsFor(bytes)
			if err := r.Barrier(); err != nil {
				return err
			}
			t0 := r.Now()
			for it := 0; it < iters; it++ {
				tagA, tagB := si*64+it%32, 4096+si*64+it%32
				if _, err := r.Sendrecv(left, tagA, sva, bytes, right, tagA, rva, bytes); err != nil {
					return err
				}
				if _, err := r.Sendrecv(right, tagB, sva, bytes, left, tagB, rva, bytes); err != nil {
					return err
				}
			}
			if r.ID() == 0 {
				per := (r.Now() - t0) / simtime.Ticks(iters)
				results[si] = ExchangeResult{
					Bytes: bytes, Iters: iters, TicksPerIter: per,
					BandwidthMBs: 4 * float64(bytes) / (float64(per.Nanos()) / 1000.0),
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("imb: exchange: %w", err)
	}
	w.EndTrace()
	return results, nil
}
