package imb

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
)

func TestFig5ShapesOnOpteron(t *testing.T) {
	sizes := []int{64 << 10, 1 << 20, 4 << 20, 16 << 20}
	curves, err := RunFig5(machine.Opteron(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	last := len(sizes) - 1
	sp := curves["small pages"]
	hp := curves["hugepages"]
	spl := curves["small pages lazy deregistration"]
	hpl := curves["hugepages lazy deregistration"]
	for _, c := range [][]SendRecvResult{sp, hp, spl, hpl} {
		for i, row := range c {
			t.Logf("size=%8d  bw=%7.1f MB/s reg=%v", row.Bytes, row.BandwidthMBs, row.RegTicks)
			if row.BandwidthMBs <= 0 {
				t.Fatalf("row %d: non-positive bandwidth", i)
			}
		}
	}
	// Paper item 1: without lazy dereg, hugepages are enormously better,
	// and hugepage curves approach max bandwidth (~1750 MB/s) at >= 4 MiB.
	if hp[last].BandwidthMBs < 1.3*sp[last].BandwidthMBs {
		t.Errorf("no-lazy: hugepages %0.f MB/s should beat small pages %0.f MB/s clearly",
			hp[last].BandwidthMBs, sp[last].BandwidthMBs)
	}
	if hp[last].BandwidthMBs < 1600 || hp[last].BandwidthMBs > 1950 {
		t.Errorf("hugepages no-lazy at 16MiB = %.0f MB/s, want ~1750", hp[last].BandwidthMBs)
	}
	// Registration time with hugepages ~1% of small pages.
	if frac := float64(hp[last].RegTicks) / float64(sp[last].RegTicks); frac > 0.05 {
		t.Errorf("huge/small reg ticks = %.3f, want <= 0.05", frac)
	}
	// Paper item 2: with lazy dereg the two page sizes tie on Opteron.
	for i := range sizes {
		a, b := spl[i].BandwidthMBs, hpl[i].BandwidthMBs
		diff := (b - a) / a
		if diff < -0.03 || diff > 0.03 {
			t.Errorf("lazy curves differ %.1f%% at %d bytes (paper: same numbers)", diff*100, sizes[i])
		}
	}
	// Lazy curves must dominate their no-lazy counterparts.
	if spl[last].BandwidthMBs <= sp[last].BandwidthMBs {
		t.Error("lazy dereg should beat per-message registration on small pages")
	}
}

func TestXeonATTEffect(t *testing.T) {
	// E4: on the Xeon/PCI-X system with lazy dereg and hugepage buffers,
	// sending 2 MiB translations to the adapter (HugeATT) buys ~6%
	// bandwidth at large sizes versus the unpatched driver.
	sizes := []int{4 << 20, 8 << 20}
	run := func(patched bool) []SendRecvResult {
		res, err := SendRecv(mpi.Config{
			Machine:   machine.Xeon(),
			Ranks:     2,
			Allocator: mpi.AllocHuge,
			LazyDereg: true,
			HugeATT:   patched,
		}, sizes)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unpatched := run(false)
	patched := run(true)
	for i := range sizes {
		gain := patched[i].BandwidthMBs/unpatched[i].BandwidthMBs - 1
		t.Logf("size=%d unpatched=%.0f patched=%.0f gain=%.1f%% (missrate %.2f -> %.2f)",
			sizes[i], unpatched[i].BandwidthMBs, patched[i].BandwidthMBs, gain*100,
			unpatched[i].ATTMissRate, patched[i].ATTMissRate)
		if gain < 0.02 || gain > 0.12 {
			t.Errorf("size %d: ATT patch gain %.1f%%, want ~6%%", sizes[i], gain*100)
		}
		if patched[i].ATTMissRate >= unpatched[i].ATTMissRate {
			t.Error("patch should reduce ATT miss rate")
		}
	}
}

func TestOpteronATTPatchChangesNothing(t *testing.T) {
	// Paper: on the Opteron/PCIe system lazy-dereg bandwidth was the same
	// with and without hugepage ATT entries ("This may be due to other
	// bottlenecks in the system").
	sizes := []int{4 << 20}
	run := func(patched bool) float64 {
		res, err := SendRecv(mpi.Config{
			Machine:   machine.Opteron(),
			Ranks:     2,
			Allocator: mpi.AllocHuge,
			LazyDereg: true,
			HugeATT:   patched,
		}, sizes)
		if err != nil {
			t.Fatal(err)
		}
		return res[0].BandwidthMBs
	}
	a, b := run(false), run(true)
	if diff := (b - a) / a; diff > 0.03 || diff < -0.03 {
		t.Errorf("Opteron ATT patch changed bandwidth by %.1f%%, want ~0", diff*100)
	}
}

func TestRegistrationSweep(t *testing.T) {
	sizes := []uint64{2 << 20, 8 << 20, 32 << 20}
	rows, err := RegistrationSweep(machine.Opteron(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		t.Logf("size=%d small=%v huge=%v frac=%.3f", row.Bytes, row.SmallReg, row.HugeReg, row.HugeFrac)
		if row.HugeFrac > 0.05 {
			t.Errorf("size %d: huge registration %.1f%% of small, want ~1%%", row.Bytes, row.HugeFrac*100)
		}
		if row.SmallMTTs != row.HugeMTTs*512 {
			t.Errorf("size %d: MTT counts %d vs %d not 512x apart", row.Bytes, row.SmallMTTs, row.HugeMTTs)
		}
	}
	// Fraction should shrink as buffers grow (fixed syscall amortises).
	if rows[0].HugeFrac < rows[len(rows)-1].HugeFrac {
		t.Error("huge/small fraction should not grow with size")
	}
}

func TestDefaultSizesLadder(t *testing.T) {
	s := DefaultSizes()
	if s[0] != 4<<10 || s[len(s)-1] != 16<<20 {
		t.Fatalf("ladder endpoints wrong: %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] != 2*s[i-1] {
			t.Fatal("ladder must double")
		}
	}
}

func TestStaticPolicyMatchesNoEngineFig5(t *testing.T) {
	m := machine.Opteron()
	sizes := []int{4096, 262144, 1 << 20}
	bare, err := RunFig5Policy(m, sizes, 2, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunFig5Policy(m, sizes, 2, "static", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, static) {
		t.Fatalf("static-policy Figure 5 diverged from the no-engine run:\n%v\nvs\n%v", bare, static)
	}
}
