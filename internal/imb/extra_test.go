package imb

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
)

func lazyHugeCfg(m *machine.Machine, ranks int) mpi.Config {
	return mpi.Config{
		Machine: m, Ranks: ranks,
		Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: true,
	}
}

func TestPingPongLatencyShape(t *testing.T) {
	sizes := []int{0, 64, 1024, 8 << 10, 64 << 10, 1 << 20}
	rs, err := PingPong(lazyHugeCfg(machine.Opteron(), 2), sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		t.Logf("%8dB: %7.2f us", r.Bytes, r.LatencyUsec)
		if i > 0 && r.LatencyTicks < rs[i-1].LatencyTicks {
			t.Errorf("latency not monotone at %d bytes", r.Bytes)
		}
	}
	// Zero-byte latency is the wire+software floor: single-digit us.
	if rs[0].LatencyUsec < 1 || rs[0].LatencyUsec > 20 {
		t.Errorf("0-byte half-RTT %.2f us outside plausible band", rs[0].LatencyUsec)
	}
	// Large messages approach wire bandwidth: 1 MiB at ~880 MB/s ≈ 1.2 ms.
	if got := rs[len(rs)-1].LatencyUsec; got < 900 || got > 2500 {
		t.Errorf("1 MiB half-RTT %.0f us outside wire-bandwidth band", got)
	}
}

func TestPingPongEagerRendezvousStep(t *testing.T) {
	// Crossing the 16 KiB RDMA threshold adds the rendezvous handshake:
	// latency must jump more than the size ratio alone explains.
	rs, err := PingPong(lazyHugeCfg(machine.Opteron(), 2), []int{8 << 10, 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	jump := float64(rs[1].LatencyTicks) / float64(rs[0].LatencyTicks)
	if jump < 1.5 {
		t.Errorf("eager->rendezvous step only %.2fx", jump)
	}
}

func TestExchangeBandwidth(t *testing.T) {
	rs, err := Exchange(lazyHugeCfg(machine.Opteron(), 4), []int{256 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		t.Logf("%8dB: %7.1f MB/s per rank", r.Bytes, r.BandwidthMBs)
		if r.BandwidthMBs <= 0 {
			t.Fatal("non-positive bandwidth")
		}
	}
	// Exchange moves 4x the bytes of one transfer per iteration but the
	// two directions share the NIC: aggregate must exceed the SendRecv
	// plateau slightly, not quadruple it.
	if rs[1].BandwidthMBs < 1000 || rs[1].BandwidthMBs > 4000 {
		t.Errorf("exchange bandwidth %.0f MB/s implausible", rs[1].BandwidthMBs)
	}
}

func TestExchangeAllAllocators(t *testing.T) {
	for _, ak := range []mpi.AllocatorKind{mpi.AllocLibc, mpi.AllocHuge} {
		cfg := lazyHugeCfg(machine.Opteron(), 4)
		cfg.Allocator = ak
		if _, err := Exchange(cfg, []int{64 << 10}); err != nil {
			t.Fatalf("%s: %v", ak, err)
		}
	}
}
