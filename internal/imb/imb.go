// Package imb reimplements the Intel MPI Benchmarks SendRecv test the
// paper uses for Figure 5, plus the registration-cost sweep (E9) behind
// its Section 5.1 discussion.
//
// IMB SendRecv forms a periodic chain: every rank sends to its right
// neighbour and receives from its left neighbour simultaneously, and the
// reported bandwidth counts both directions (2 x message size per
// iteration), which is how the paper's ~1750 MB/s on a PCIe InfiniHost
// (unidirectional wire ~950 MB/s) comes about.
package imb

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// SendRecvResult is one row of the Figure 5 series.
type SendRecvResult struct {
	Bytes        int
	Iters        int
	TicksPerIter simtime.Ticks
	// BandwidthMBs is the IMB-style bidirectional bandwidth.
	BandwidthMBs float64
	// RegTicks is total registration time spent during the timed phase
	// (separates the two regimes of Figure 5).
	RegTicks simtime.Ticks
	// ATTMissRate is the adapter translation-cache miss rate during the
	// timed phase (the Xeon effect, E4).
	ATTMissRate float64
}

// DefaultSizes is the IMB size ladder used for Figure 5 (4 KiB–16 MiB).
func DefaultSizes() []int {
	var s []int
	for n := 4 << 10; n <= 16<<20; n *= 2 {
		s = append(s, n)
	}
	return s
}

// iterationsFor scales iteration counts down with size like IMB does.
func iterationsFor(bytes int) int {
	switch {
	case bytes <= 64<<10:
		return 40
	case bytes <= 1<<20:
		return 16
	default:
		return 6
	}
}

// SendRecv runs the benchmark under one MPI configuration and returns a
// row per message size.
func SendRecv(cfg mpi.Config, sizes []int) ([]SendRecvResult, error) {
	results, _, err := SendRecvNodeStats(cfg, sizes)
	return results, err
}

// SendRecvNodeStats runs the benchmark and additionally returns every
// rank's end-of-run host telemetry (one node.Stats per rank) — the
// machine-readable per-node perf record behind the -stats flags.
func SendRecvNodeStats(cfg mpi.Config, sizes []int) ([]SendRecvResult, []node.Stats, error) {
	if cfg.Ranks == 0 {
		cfg.Ranks = 2
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return nil, nil, err
	}
	results := make([]SendRecvResult, len(sizes))
	maxBytes := 0
	for _, s := range sizes {
		if s > maxBytes {
			maxBytes = s
		}
	}
	err = w.Run(func(r *mpi.Rank) error {
		// One send and one receive buffer, reused across all sizes and
		// iterations — exactly IMB's allocation pattern, and what makes
		// lazy deregistration shine.
		sva, err := r.Malloc(uint64(maxBytes))
		if err != nil {
			return err
		}
		rva, err := r.Malloc(uint64(maxBytes))
		if err != nil {
			return err
		}
		fill := make([]byte, maxBytes)
		for i := range fill {
			fill[i] = byte(i)
		}
		if err := r.WriteBytes(sva, fill); err != nil {
			return err
		}
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()

		for si, bytes := range sizes {
			iters := iterationsFor(bytes)
			if err := r.Barrier(); err != nil {
				return err
			}
			// Warmup iteration (IMB does this; it also populates the
			// registration cache so the timed phase measures the regime,
			// not the cold start).
			if _, err := r.Sendrecv(right, si, sva, bytes, left, si, rva, bytes); err != nil {
				return err
			}
			if err := r.Barrier(); err != nil {
				return err
			}
			regBefore := r.Verbs().Stats().RegTicks
			attBefore := r.Verbs().HW.Stats()
			t0 := r.Now()
			for it := 0; it < iters; it++ {
				if _, err := r.Sendrecv(right, si, sva, bytes, left, si, rva, bytes); err != nil {
					return err
				}
			}
			elapsed := r.Now() - t0
			if r.ID() == 0 {
				att := r.Verbs().HW.Stats()
				hits := att.ATTHits - attBefore.ATTHits
				miss := att.ATTMisses - attBefore.ATTMisses
				var missRate float64
				if hits+miss > 0 {
					missRate = float64(miss) / float64(hits+miss)
				}
				per := elapsed / simtime.Ticks(iters)
				results[si] = SendRecvResult{
					Bytes:        bytes,
					Iters:        iters,
					TicksPerIter: per,
					BandwidthMBs: 2 * float64(bytes) / (float64(per.Nanos()) / 1000.0), // MB/s with 1e6 B/MB
					RegTicks:     r.Verbs().Stats().RegTicks - regBefore,
					ATTMissRate:  missRate,
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	w.EndTrace()
	return results, w.NodeStats(), nil
}

// Fig5Config names one of the four Figure 5 configurations.
type Fig5Config struct {
	Label string
	// Slug is a short path-safe name, used to prefix trace timelines.
	Slug      string
	Allocator mpi.AllocatorKind
	LazyDereg bool
}

// Fig5Configs returns the four curves of Figure 5 in the paper's order:
// small pages, hugepages, small pages + lazy deregistration, hugepages +
// lazy deregistration.
func Fig5Configs() []Fig5Config {
	return []Fig5Config{
		{Label: "small pages", Slug: "small", Allocator: mpi.AllocLibc, LazyDereg: false},
		{Label: "hugepages", Slug: "huge", Allocator: mpi.AllocHuge, LazyDereg: false},
		{Label: "small pages lazy deregistration", Slug: "small-lazy", Allocator: mpi.AllocLibc, LazyDereg: true},
		{Label: "hugepages lazy deregistration", Slug: "huge-lazy", Allocator: mpi.AllocHuge, LazyDereg: true},
	}
}

// RunFig5 runs all four curves on a machine.
func RunFig5(m *machine.Machine, sizes []int) (map[string][]SendRecvResult, error) {
	return RunFig5Faults(m, sizes, nil)
}

// RunFig5Faults is RunFig5 under a fault spec (nil = clean run): each
// curve's job carries the same deterministic schedule, so the four
// configurations degrade comparably.
func RunFig5Faults(m *machine.Machine, sizes []int, spec *faults.Spec) (map[string][]SendRecvResult, error) {
	return RunFig5Traced(m, sizes, spec, nil)
}

// RunFig5Traced is RunFig5Faults recording into a trace collector (nil =
// no tracing). The four configurations share the collector, with their
// timelines prefixed by the configuration slug ("huge-lazy/rank0", …),
// so one trace file shows all four regimes side by side.
func RunFig5Traced(m *machine.Machine, sizes []int, spec *faults.Spec, col *trace.Collector) (map[string][]SendRecvResult, error) {
	return RunFig5Ranks(m, sizes, 2, spec, col)
}

// RunFig5Ranks is RunFig5Traced at an explicit rank count: the SendRecv
// chain closes over all ranks instead of the paper's pair, which is how
// imbbench -ranks exercises the event scheduler at scale.
func RunFig5Ranks(m *machine.Machine, sizes []int, ranks int, spec *faults.Spec, col *trace.Collector) (map[string][]SendRecvResult, error) {
	return RunFig5Policy(m, sizes, ranks, "", spec, col)
}

// RunFig5Policy is RunFig5Ranks with a placement-policy engine on every
// rank ("" = none — the legacy fixed strategies).
func RunFig5Policy(m *machine.Machine, sizes []int, ranks int, policy string, spec *faults.Spec, col *trace.Collector) (map[string][]SendRecvResult, error) {
	out := make(map[string][]SendRecvResult, 4)
	for _, c := range Fig5Configs() {
		res, err := SendRecv(mpi.Config{
			Machine:     m,
			Ranks:       ranks,
			Allocator:   c.Allocator,
			LazyDereg:   c.LazyDereg,
			HugeATT:     true,
			Faults:      spec,
			Trace:       col,
			TracePrefix: c.Slug + "/",
			Policy:      policy,
		}, sizes)
		if err != nil {
			return nil, fmt.Errorf("imb: %s: %w", c.Label, err)
		}
		out[c.Label] = res
	}
	return out, nil
}

// RegResult is one row of the registration-cost sweep (E9).
type RegResult struct {
	Bytes     uint64
	SmallReg  simtime.Ticks
	HugeReg   simtime.Ticks
	HugeFrac  float64 // huge/small
	SmallMTTs int
	HugeMTTs  int
}

// RegistrationSweep measures RegMR cost versus buffer size for 4 KiB and
// 2 MiB placements on one machine (driver patch enabled, as in the
// paper's modified OpenIB stack).
func RegistrationSweep(m *machine.Machine, sizes []uint64) ([]RegResult, error) {
	return RegistrationSweepFaults(m, sizes, nil)
}

// RegistrationSweepFaults is RegistrationSweep with a fault spec armed
// on each host (nil = clean run).
func RegistrationSweepFaults(m *machine.Machine, sizes []uint64, spec *faults.Spec) ([]RegResult, error) {
	return RegistrationSweepTrace(m, sizes, spec, nil)
}

// RegistrationSweepTrace is RegistrationSweepFaults recording each host's
// registration work into a trace collector (nil = no tracing). Every
// sweep size gets its own timeline ("reg/4096", "reg/8192", …) with the
// small-page registration followed by the hugepage one, so the MTT fan-out
// difference is visible span-by-span.
func RegistrationSweepTrace(m *machine.Machine, sizes []uint64, spec *faults.Spec, col *trace.Collector) ([]RegResult, error) {
	out := make([]RegResult, 0, len(sizes))
	for _, size := range sizes {
		// A fresh warmed host per size, matching the MPI world's setup so
		// registration sweeps see the same physical scatter.
		n, err := node.New(node.Config{
			Machine: m, HugeATT: true, Faults: spec,
			Trace: col, TraceName: fmt.Sprintf("reg/%d", size),
		})
		if err != nil {
			return nil, err
		}
		as, ctx := n.AS, n.Verbs
		var now simtime.Ticks
		tc := n.Tracer().At(trace.TrackMain, now)

		vaS, err := as.MapSmall(size)
		if err != nil {
			return nil, err
		}
		mrS, tS, err := ctx.RegMRT(tc, vaS, size)
		if err != nil {
			return nil, err
		}
		now += tS
		vaH, err := as.MapHuge(size)
		if err != nil {
			return nil, err
		}
		mrH, tH, err := ctx.RegMRT(n.Tracer().At(trace.TrackMain, now), vaH, size)
		if err != nil {
			return nil, err
		}
		out = append(out, RegResult{
			Bytes:     size,
			SmallReg:  tS,
			HugeReg:   tH,
			HugeFrac:  float64(tH) / float64(tS),
			SmallMTTs: mrS.Entries,
			HugeMTTs:  mrH.Entries,
		})
	}
	return out, nil
}
