// Package wrbench reimplements the paper's Section 4 test case: "measures
// the duration of send and receive operations over OpenIB between two
// dedicated systems in terms of reliable connection", parameterised by
//
//   - offset — the start address of each data buffer in a memory page,
//   - sge_size — the size of a data piece in one scatter-gather element,
//   - sges — the number of SGEs per send/receive operation,
//
// "For each combination of those parameters this test case measures the
// elapsed time in time base register (TBR) ticks for post and poll
// operations separately. The post operation covers step 1, while the poll
// operation measures steps 2-4." Figures 3 and 4 are sweeps over this
// test case on the IBM System p / eHCA system.
package wrbench

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/hca"
	"repro/internal/machine"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/verbs"
	"repro/internal/vm"
)

// Result is one measured parameter combination.
type Result struct {
	SGEs    int
	SGESize int
	Offset  int
	// PostTicks covers step 1 (the consumer posts the work request).
	PostTicks simtime.Ticks
	// PollTicks covers steps 2-4 (transfer, completion generation,
	// completion polling).
	PollTicks simtime.Ticks
}

// Total is the full work-request duration.
func (r Result) Total() simtime.Ticks { return r.PostTicks + r.PollTicks }

// rig is a pair of connected systems with an RC queue pair between them.
type rig struct {
	m          *machine.Machine
	nodes      []*node.Node // sender, receiver — retained for telemetry
	send, recv *verbs.Context
	sendBuf    vm.VA
	recvBuf    vm.VA
	sendMR     *verbs.MR
	recvMR     *verbs.MR
	span       uint64
	sendQP     *hca.QP
	recvQP     *hca.QP
	// tr is the sender-side timeline (nil when untraced); now is the
	// rig's running virtual position — the rig has no MPI clock, so
	// measured durations are strung end to end along one timeline.
	tr  *trace.Tracer
	now simtime.Ticks
}

// newRig builds sender and receiver with registered buffers laid out so
// that SGE i starts at (i*PageSize + offset): each data piece sits at the
// chosen offset within its own memory page, as in the paper's test. A
// non-nil fault spec arms both hosts, salted by side, so a sweep under
// pressure replays bit-identically.
func newRig(m *machine.Machine, maxSGEs int, spec *faults.Spec, col *trace.Collector, policy string) (*rig, error) {
	span := uint64(maxSGEs+1) * machine.SmallPageSize * 2
	rg := &rig{m: m, span: span}
	names := []string{"wr/sender", "wr/receiver"}
	mk := func(salt uint64) (*verbs.Context, vm.VA, *verbs.MR, error) {
		// The Section 4 rig's hosts are less aged than a long-running MPI
		// node; half the default scramble depth matches the seed setup.
		n, err := node.New(node.Config{
			Machine: m, ScrambleDepth: node.DefaultScramble / 2,
			Faults: spec, FaultSalt: salt,
			Trace: col, TraceName: names[salt],
			Policy: policy,
		})
		if err != nil {
			return nil, 0, nil, err
		}
		if salt == 0 {
			rg.tr = n.Tracer()
		}
		rg.nodes = append(rg.nodes, n)
		ctx := n.Verbs
		va, err := n.AS.MapSmall(span)
		if err != nil {
			return nil, 0, nil, err
		}
		mr, _, err := ctx.RegMR(va, span)
		if err != nil {
			return nil, 0, nil, err
		}
		return ctx, va, mr, nil
	}
	sctx, sva, smr, err := mk(0)
	if err != nil {
		return nil, err
	}
	rctx, rva, rmr, err := mk(1)
	if err != nil {
		return nil, err
	}
	rg.send, rg.recv = sctx, rctx
	rg.sendBuf, rg.recvBuf = sva, rva
	rg.sendMR, rg.recvMR = smr, rmr
	// A reliable connection between the two systems, with generous queue
	// depths (the sweep reuses one connection for every combination).
	rg.sendQP, err = sctx.HW.CreateQP(hca.NewCQ(1024), hca.NewCQ(1024), 256, 256)
	if err != nil {
		return nil, err
	}
	rg.recvQP, err = rctx.HW.CreateQP(hca.NewCQ(1024), hca.NewCQ(1024), 256, 256)
	if err != nil {
		return nil, err
	}
	if err := hca.Connect(rg.sendQP, rg.recvQP); err != nil {
		return nil, err
	}
	return rg, nil
}

// drainCQs empties both sides' completion queues between measurements.
func drainCQs(rg *rig) {
	for _, cq := range []*hca.CQ{rg.sendQP.SendCQ, rg.sendQP.RecvCQ, rg.recvQP.SendCQ, rg.recvQP.RecvCQ} {
		for {
			if _, ok, err := cq.Poll(); !ok || err != nil {
				break
			}
		}
	}
}

// sgeList builds the gather list: sges elements of sgeSize bytes, each at
// the given offset within its own page.
func (rg *rig) sgeList(base vm.VA, lkey uint32, sges, sgeSize, offset int) []hca.SGE {
	out := make([]hca.SGE, sges)
	for i := 0; i < sges; i++ {
		out[i] = hca.SGE{
			Addr:   base + vm.VA(i*machine.SmallPageSize+offset),
			Length: uint32(sgeSize),
			LKey:   lkey,
		}
	}
	return out
}

// measure runs one parameter combination: receiver preposts, sender posts
// the send WR, the adapter gathers and transmits, the receiver's adapter
// scatters and both sides poll completions.
func (rg *rig) measure(sges, sgeSize, offset int) (Result, error) {
	if uint64((sges-1)*machine.SmallPageSize+offset+sgeSize) > rg.span {
		return Result{}, fmt.Errorf("wrbench: parameters exceed buffer span")
	}
	sgl := rg.sgeList(rg.sendBuf, rg.sendMR.LKey, sges, sgeSize, offset)
	rgl := rg.sgeList(rg.recvBuf, rg.recvMR.LKey, sges, sgeSize, offset)

	// Fill the payload so the transfer moves real bytes.
	fill := make([]byte, sgeSize)
	for i := range fill {
		fill[i] = byte(i + sges)
	}
	for _, s := range sgl {
		if err := rg.send.AS.Write(s.Addr, fill); err != nil {
			return Result{}, err
		}
	}

	// Warmup pass: the paper's test case loops each combination many
	// times, so the adapter's translation cache is warm for the steady-
	// state numbers reported.
	if _, err := rg.recvQP.PostRecv(0, rgl); err != nil {
		return Result{}, err
	}
	if _, err := rg.sendQP.Send(0, 0, sgl); err != nil {
		return Result{}, err
	}
	drainCQs(rg)

	// Receiver preposts (not part of the timed post, as in the paper the
	// receive side is already armed).
	if _, err := rg.recvQP.PostRecv(1, rgl); err != nil {
		return Result{}, err
	}

	// The timed work request, through the queue pair.
	res, err := rg.sendQP.Send(0, 1, sgl)
	if err != nil {
		return Result{}, err
	}
	post := res.Post
	poll := res.Complete() + rg.recv.PollCQ() + rg.send.PollCQ()
	if rg.tr != nil {
		tc := rg.tr.At(trace.TrackMain, rg.now)
		args := []trace.Arg{
			trace.I64("sges", int64(sges)),
			trace.I64("sge_size", int64(sgeSize)),
			trace.I64("offset", int64(offset)),
		}
		tc.Span(trace.LHCA, "wr.post", post, args...).
			Span(trace.LHCA, "wr.poll", poll, args...)
	}
	rg.now += post + poll
	drainCQs(rg)

	// Verify delivery.
	got := make([]byte, sgeSize)
	for _, s := range rgl {
		if err := rg.recv.AS.Read(s.Addr, got); err != nil {
			return Result{}, err
		}
		for i := range got {
			if got[i] != fill[i] {
				return Result{}, fmt.Errorf("wrbench: payload corrupted at %d", i)
			}
		}
	}
	return Result{
		SGEs: sges, SGESize: sgeSize, Offset: offset,
		PostTicks: post, PollTicks: poll,
	}, nil
}

// SGESweep reproduces Figure 3: work-request duration for each SGE count
// over a ladder of SGE sizes, at the default offset 64.
func SGESweep(m *machine.Machine, sgeCounts, sgeSizes []int) ([]Result, error) {
	out, _, err := SGESweepNodeStats(m, sgeCounts, sgeSizes, nil)
	return out, err
}

// SGESweepNodeStats is SGESweep with fault injection and telemetry: it
// arms both rig hosts with spec, and afterwards drives a third
// probe host (hugepage allocator, lazy deregistration) through
// node.DegradationProbe so the sweep's -stats output carries
// allocation-fallback and memlock-recovery counters even though the
// Section 4 rig itself never calls an allocator. Snapshots are returned
// in order sender, receiver, probe.
func SGESweepNodeStats(m *machine.Machine, sgeCounts, sgeSizes []int, spec *faults.Spec) ([]Result, []node.Stats, error) {
	return SGESweepTrace(m, sgeCounts, sgeSizes, spec, nil)
}

// SGESweepTrace is SGESweepNodeStats recording the rig's work requests
// into a trace collector (nil = no tracing): each measured combination
// appears as a wr.post + wr.poll span pair on the sender timeline, strung
// end to end in sweep order.
func SGESweepTrace(m *machine.Machine, sgeCounts, sgeSizes []int, spec *faults.Spec, col *trace.Collector) ([]Result, []node.Stats, error) {
	return SGESweepPolicy(m, sgeCounts, sgeSizes, "", spec, col)
}

// SGESweepPolicy is SGESweepTrace with a placement-policy engine on both
// hosts ("" = none).
func SGESweepPolicy(m *machine.Machine, sgeCounts, sgeSizes []int, policy string, spec *faults.Spec, col *trace.Collector) ([]Result, []node.Stats, error) {
	maxSGEs := 1
	for _, c := range sgeCounts {
		if c > maxSGEs {
			maxSGEs = c
		}
	}
	rg, err := newRig(m, maxSGEs, spec, col, policy)
	if err != nil {
		return nil, nil, err
	}
	var out []Result
	for _, c := range sgeCounts {
		for _, s := range sgeSizes {
			res, err := rg.measure(c, s, 64)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, res)
		}
	}
	st, err := rg.nodeStats(spec)
	if err != nil {
		return nil, nil, err
	}
	return out, st, nil
}

// OffsetSweep reproduces Figure 4: work-request duration with 1 SGE for
// each (offset, buffer size) combination.
func OffsetSweep(m *machine.Machine, offsets, sizes []int) ([]Result, error) {
	out, _, err := OffsetSweepNodeStats(m, offsets, sizes, nil)
	return out, err
}

// OffsetSweepNodeStats is OffsetSweep with fault injection and
// telemetry, shaped exactly like SGESweepNodeStats.
func OffsetSweepNodeStats(m *machine.Machine, offsets, sizes []int, spec *faults.Spec) ([]Result, []node.Stats, error) {
	return OffsetSweepTrace(m, offsets, sizes, spec, nil)
}

// OffsetSweepTrace is OffsetSweepNodeStats recording into a trace
// collector, shaped exactly like SGESweepTrace.
func OffsetSweepTrace(m *machine.Machine, offsets, sizes []int, spec *faults.Spec, col *trace.Collector) ([]Result, []node.Stats, error) {
	return OffsetSweepPolicy(m, offsets, sizes, "", spec, col)
}

// OffsetSweepPolicy is OffsetSweepTrace with a placement-policy engine
// on both hosts ("" = none).
func OffsetSweepPolicy(m *machine.Machine, offsets, sizes []int, policy string, spec *faults.Spec, col *trace.Collector) ([]Result, []node.Stats, error) {
	rg, err := newRig(m, 1, spec, col, policy)
	if err != nil {
		return nil, nil, err
	}
	var out []Result
	for _, size := range sizes {
		for _, off := range offsets {
			res, err := rg.measure(1, size, off)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, res)
		}
	}
	st, err := rg.nodeStats(spec)
	if err != nil {
		return nil, nil, err
	}
	return out, st, nil
}

// nodeStats snapshots the rig hosts and appends a degradation-probe
// host: salt 2, hugepage allocator, lazy deregistration — the
// configuration on which every fault class in spec can land.
func (rg *rig) nodeStats(spec *faults.Spec) ([]node.Stats, error) {
	probe, err := node.New(node.Config{
		Machine: rg.m, Allocator: node.AllocHuge, LazyDereg: true,
		Faults: spec, FaultSalt: 2,
	})
	if err != nil {
		return nil, fmt.Errorf("wrbench: probe host: %w", err)
	}
	if err := probe.DegradationProbe(); err != nil {
		return nil, fmt.Errorf("wrbench: degradation probe: %w", err)
	}
	out := make([]node.Stats, 0, len(rg.nodes)+1)
	for _, n := range rg.nodes {
		out = append(out, n.Stats())
	}
	out = append(out, probe.Stats())
	return out, nil
}

// DefaultSGESizes is Figure 3's x axis (1 B to 4 KiB).
func DefaultSGESizes() []int {
	var s []int
	for n := 1; n <= 4096; n *= 2 {
		s = append(s, n)
	}
	return s
}

// DefaultOffsets is Figure 4's x axis (0 to 256).
func DefaultOffsets() []int {
	var o []int
	for off := 0; off <= 256; off += 8 {
		o = append(o, off)
	}
	return o
}
