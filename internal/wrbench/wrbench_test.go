package wrbench

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/simtime"
)

func sysp() *machine.Machine { return machine.SystemP() }

func at(rs []Result, sges, size, off int) Result {
	for _, r := range rs {
		if r.SGEs == sges && r.SGESize == size && r.Offset == off {
			return r
		}
	}
	panic("combination not measured")
}

func TestFig3PostCostBand(t *testing.T) {
	// Paper: post time "varies between 450-650 TBR ticks" and is
	// "approximately constant for small and for large messages".
	rs, err := SGESweep(sysp(), []int{1, 2, 4, 8}, DefaultSGESizes())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.PostTicks < 450 || r.PostTicks > 650 {
			t.Errorf("post(%d sges, %dB) = %d ticks, want 450-650", r.SGEs, r.SGESize, r.PostTicks)
		}
	}
	// Constant across sizes for fixed SGE count.
	if at(rs, 1, 1, 64).PostTicks != at(rs, 1, 4096, 64).PostTicks {
		t.Error("post cost should not depend on message size")
	}
}

func TestFig3OneTwentyEightSGEsIsThreeX(t *testing.T) {
	// Paper: "the time consumption by using 128 SGEs is only three times
	// higher than with one SGE" (post operation).
	rs, err := SGESweep(sysp(), []int{1, 128}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(at(rs, 128, 64, 64).PostTicks) / float64(at(rs, 1, 64, 64).PostTicks)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("post(128)/post(1) = %.2f, want ~3", ratio)
	}
}

func TestFig3FourSGEsCheapAggregation(t *testing.T) {
	// Paper: "up to 128 Byte, the sending of 4 SGEs with same sizes - the
	// overall message size is 4 times higher than with one SGE - is only
	// 14 % more costly".
	rs, err := SGESweep(sysp(), []int{1, 4}, []int{8, 16, 32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{8, 16, 32, 64, 128} {
		one := at(rs, 1, size, 64).Total()
		four := at(rs, 4, size, 64).Total()
		extra := float64(four)/float64(one) - 1
		t.Logf("size %3dB: 1 SGE %v, 4 SGEs %v (+%.1f%%)", size, one, four, extra*100)
		if extra < 0.02 || extra > 0.25 {
			t.Errorf("size %d: 4-SGE overhead %.1f%%, want ~14%%", size, extra*100)
		}
	}
}

func TestFig3OneSGEFlatThenLinear(t *testing.T) {
	// Paper: "The outlay for 1 SGE is relatively constant up to 512 Bytes
	// and then grows linearly with buffer size."
	rs, err := SGESweep(sysp(), []int{1}, DefaultSGESizes())
	if err != nil {
		t.Fatal(err)
	}
	t1 := at(rs, 1, 1, 64).Total()
	t512 := at(rs, 1, 512, 64).Total()
	if g := float64(t512)/float64(t1) - 1; g > 0.30 {
		t.Errorf("1B->512B grew %.0f%%, want nearly flat", g*100)
	}
	// Beyond 512 B the size term dominates: 4 KiB must clearly exceed 1 KiB.
	t1k := at(rs, 1, 1024, 64).Total()
	t4k := at(rs, 1, 4096, 64).Total()
	if float64(t4k) < 1.5*float64(t1k) {
		t.Errorf("4KiB (%d) vs 1KiB (%d): expected clear linear growth", t4k, t1k)
	}
}

func TestFig4OffsetEffect(t *testing.T) {
	// Paper: "Between the offset range 1 to 128 Byte we see that the time
	// consumption ... differs up to 8 percent", optimised "e.g. at offset
	// 64".
	sizes := []int{8, 16, 32, 64}
	rs, err := OffsetSweep(sysp(), DefaultOffsets(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range sizes {
		var lo, hi simtime.Ticks
		var loOff int
		first := true
		for _, r := range rs {
			if r.SGESize != size {
				continue
			}
			tt := r.Total()
			if first || tt < lo {
				lo, loOff = tt, r.Offset
			}
			if first || tt > hi {
				hi = tt
			}
			first = false
		}
		swing := float64(hi-lo) / float64(lo)
		t.Logf("size %2dB: min %v at offset %d, max %v (swing %.1f%%)", size, lo, loOff, hi, swing*100)
		if swing < 0.01 || swing > 0.10 {
			t.Errorf("size %d: offset swing %.1f%%, want ~2-8%%", size, swing*100)
		}
		if loOff != 64 {
			t.Errorf("size %d: fastest offset %d, want 64", size, loOff)
		}
	}
}

func TestParameterValidation(t *testing.T) {
	rg, err := newRig(sysp(), 1, nil, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rg.measure(64, 4096, 0); err == nil {
		t.Fatal("oversized parameters accepted")
	}
}

func TestDefaultLadders(t *testing.T) {
	ss := DefaultSGESizes()
	if ss[0] != 1 || ss[len(ss)-1] != 4096 {
		t.Fatal("SGE size ladder endpoints wrong")
	}
	os := DefaultOffsets()
	if os[0] != 0 || os[len(os)-1] != 256 {
		t.Fatal("offset ladder endpoints wrong")
	}
}
