package nas

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// Fig6Row is one benchmark's bar group in Figure 6: the communication /
// other (computation) / overall improvement of the hugepage-library run
// over the libc run, plus the Section 5.2 TLB-miss ratio (E6).
type Fig6Row struct {
	Kernel string
	// Improvements in percent: (libc - huge) / libc * 100.
	CommImprove    float64
	OtherImprove   float64
	OverallImprove float64
	// TLBMissRatio is huge-run misses / libc-run misses (PAPI_TLB_DM).
	TLBMissRatio float64
	Small        Result
	Huge         Result
}

// RunFig6 reproduces Figure 6 on one machine: every kernel under libc and
// under the hugepage library, on the given rank count (the paper uses 8).
func RunFig6(m *machine.Machine, ranks int, kernels []Kernel) ([]Fig6Row, error) {
	return RunFig6Faults(m, ranks, kernels, nil)
}

// RunFig6Faults is RunFig6 under a fault spec (nil = clean run). Both
// allocators face the same deterministic schedule, so the improvement
// split stays a like-for-like comparison under pressure.
func RunFig6Faults(m *machine.Machine, ranks int, kernels []Kernel, spec *faults.Spec) ([]Fig6Row, error) {
	return RunFig6Traced(m, ranks, kernels, spec, nil)
}

// RunFig6Traced is RunFig6Faults recording every kernel run into a trace
// collector (nil = no tracing). Timelines are prefixed by machine,
// kernel and allocator ("opteron/cg-huge/rank0", …), so one trace file
// holds the whole figure even across machines.
func RunFig6Traced(m *machine.Machine, ranks int, kernels []Kernel, spec *faults.Spec, col *trace.Collector) ([]Fig6Row, error) {
	return RunFig6Policy(m, ranks, kernels, "", spec, col)
}

// RunFig6Policy is RunFig6Traced with a placement-policy engine on every
// rank ("" = none — the legacy fixed strategies).
func RunFig6Policy(m *machine.Machine, ranks int, kernels []Kernel, policy string, spec *faults.Spec, col *trace.Collector) ([]Fig6Row, error) {
	if kernels == nil {
		kernels = All()
	}
	run := func(ak mpi.AllocatorKind, k Kernel) (Result, error) {
		return RunKernelConfig(mpi.Config{
			Machine:     m,
			Ranks:       ranks,
			Allocator:   ak,
			LazyDereg:   true,
			HugeATT:     true,
			Faults:      spec,
			Trace:       col,
			TracePrefix: fmt.Sprintf("%s/%s-%s/", m.Name, k.Name(), ak),
			Policy:      policy,
		}, k)
	}
	rows := make([]Fig6Row, 0, len(kernels))
	for _, k := range kernels {
		small, err := run(mpi.AllocLibc, k)
		if err != nil {
			return nil, err
		}
		huge, err := run(mpi.AllocHuge, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NewFig6Row(small, huge))
	}
	return rows, nil
}

// NewFig6Row derives the improvement split from a libc/hugepage run pair.
func NewFig6Row(small, huge Result) Fig6Row {
	pct := func(s, h int64) float64 {
		if s == 0 {
			return 0
		}
		return 100 * float64(s-h) / float64(s)
	}
	ratio := func(h, s int64) float64 {
		if s == 0 {
			return 0
		}
		return float64(h) / float64(s)
	}
	return Fig6Row{
		Kernel:         small.Kernel,
		CommImprove:    pct(int64(small.Comm), int64(huge.Comm)),
		OtherImprove:   pct(int64(small.Compute), int64(huge.Compute)),
		OverallImprove: pct(int64(small.Total), int64(huge.Total)),
		TLBMissRatio:   ratio(huge.TLB.TotalMisses(), small.TLB.TotalMisses()),
		Small:          small,
		Huge:           huge,
	}
}

// FormatFig6 renders the rows as the paper's figure-six table.
func FormatFig6(machineName string, rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Application performance benefits with hugepages (%s)\n", machineName)
	fmt.Fprintf(&b, "%-4s %14s %14s %14s %14s\n",
		"", "comm impr %", "other impr %", "overall impr %", "TLB miss ratio")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-4s %14.1f %14.1f %14.1f %14.2f\n",
			strings.ToUpper(row.Kernel), row.CommImprove, row.OtherImprove,
			row.OverallImprove, row.TLBMissRatio)
	}
	return b.String()
}
