package nas

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// Small-scale kernel instances so unit tests stay fast; Figure 6 shape
// assertions run at default scale in fig6_test.go.
func testKernels() []Kernel {
	return []Kernel{
		&CG{N: 65536, Iters: 8},
		&EP{Batches: 3, Pairs: 4000, TableTouches: 60_000},
		&IS{KeysPerRank: 32768, Iters: 2, MaxKey: 1 << 16, BucketTouches: 80_000},
		&LU{Planes: 12, PlaneBytes: 48 << 10, Sweeps: 2, HotBytes: 1 << 20},
		&MG{Cycles: 3, FineBytes: 96 << 10, Levels: 3, GridBytes: 2 << 20},
	}
}

func TestKernelsVerifyUnderBothAllocators(t *testing.T) {
	for _, k := range testKernels() {
		for _, ak := range []mpi.AllocatorKind{mpi.AllocLibc, mpi.AllocHuge} {
			k, ak := k, ak
			t.Run(k.Name()+"/"+string(ak), func(t *testing.T) {
				res, err := RunKernel(machine.Opteron(), 4, ak, k)
				if err != nil {
					t.Fatal(err)
				}
				if res.Comm <= 0 || res.Compute <= 0 {
					t.Fatalf("missing time split: %+v", res)
				}
				if res.Makespan <= 0 {
					t.Fatal("no makespan")
				}
				if ak == mpi.AllocHuge && res.HugeBytes == 0 {
					t.Fatal("hugepage run placed nothing in hugepages")
				}
				if ak == mpi.AllocLibc && res.HugeBytes != 0 {
					t.Fatal("libc run leaked into hugepages")
				}
			})
		}
	}
}

func TestKernelsDeterministic(t *testing.T) {
	k := &CG{N: 32768, Iters: 5}
	a, err := RunKernel(machine.Opteron(), 2, mpi.AllocHuge, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunKernel(machine.Opteron(), 2, mpi.AllocHuge, k)
	if err != nil {
		t.Fatal(err)
	}
	if a.Comm != b.Comm || a.Compute != b.Compute || a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestCGRejectsBadDecomposition(t *testing.T) {
	k := &CG{N: 1000, Iters: 2} // not divisible by 3
	if _, err := RunKernel(machine.Opteron(), 3, mpi.AllocHuge, k); err == nil {
		t.Fatal("bad decomposition accepted")
	}
}

func TestByNameAndAll(t *testing.T) {
	names := []string{"cg", "ep", "is", "lu", "mg"}
	if len(All()) != len(names) {
		t.Fatal("kernel roster wrong")
	}
	for _, n := range names {
		if k := ByName(n); k == nil || k.Name() != n {
			t.Fatalf("ByName(%q) broken", n)
		}
	}
	if ByName("ft") != nil {
		t.Fatal("unknown kernel resolved")
	}
}

func TestEPRandIsUniformish(t *testing.T) {
	g := &epRand{seed: 271828183}
	var sum float64
	const n = 10000
	lo, hi := 0, 0
	for i := 0; i < n; i++ {
		v := g.next()
		if v <= 0 || v >= 1 {
			t.Fatalf("sample %d out of (0,1): %g", i, v)
		}
		sum += v
		if v < 0.5 {
			lo++
		} else {
			hi++
		}
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("LCG mean %g far from 0.5", mean)
	}
	if lo < n/2-n/10 || hi < n/2-n/10 {
		t.Fatalf("LCG halves unbalanced: %d/%d", lo, hi)
	}
}

func TestLUPlaneValueDistinguishesStages(t *testing.T) {
	seen := map[byte]bool{}
	for s := 0; s < 4; s++ {
		v := luPlaneValue(3, 1, s)
		if seen[v] {
			t.Fatal("stage values collide for fixed plane/sweep")
		}
		seen[v] = true
	}
}
