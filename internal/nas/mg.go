package nas

import (
	"fmt"
	"math"

	"repro/internal/memmodel"
	"repro/internal/mpi"
	"repro/internal/vm"
)

// MG is the multigrid kernel: V-cycles over a grid hierarchy with
// nearest-neighbour halo exchanges at every level — message sizes spread
// from rendezvous-sized on the fine grid down to eager-sized on the
// coarse grids, which is why MG's communication benefits least from the
// registration savings (most of its messages are small, and its buffer
// set is static and compact): the paper's "except for MG" on the >8 %
// communication claim.
type MG struct {
	Cycles int
	// FineBytes is the fine-grid halo size; each coarser level quarters it.
	FineBytes int
	Levels    int
	// GridBytes is the fine-grid local block (streamed each smoothing).
	GridBytes uint64
	// ScatterTouches models per-cycle hops over the scattered per-level
	// coefficient tables.
	ScatterTouches int64
}

// DefaultMG returns the reduced class-B/C-shaped instance.
func DefaultMG() *MG {
	return &MG{Cycles: 8, FineBytes: 128 << 10, Levels: 4, GridBytes: 8 << 20, ScatterTouches: 8000}
}

// Name implements Kernel.
func (*MG) Name() string { return "mg" }

// Run implements Kernel.
func (k *MG) Run(r *mpi.Rank) error {
	p := r.Size()
	right := (r.ID() + 1) % p
	left := (r.ID() - 1 + p) % p

	// One halo buffer pair per level (static, as in the Fortran source).
	sendVAs := make([]vm.VA, k.Levels)
	recvVAs := make([]vm.VA, k.Levels)
	haloBytes := make([]int, k.Levels)
	gridVAs := make([]vm.VA, k.Levels)
	gridBytes := make([]uint64, k.Levels)
	hb := k.FineBytes
	gb := k.GridBytes
	for l := 0; l < k.Levels; l++ {
		haloBytes[l] = hb
		var err error
		if sendVAs[l], err = r.Malloc(uint64(hb)); err != nil {
			return err
		}
		if recvVAs[l], err = r.Malloc(uint64(hb)); err != nil {
			return err
		}
		gridBytes[l] = gb
		if gridVAs[l], err = r.Malloc(gb); err != nil {
			return err
		}
		hb /= 4
		if hb < 2048 {
			hb = 2048
		}
		gb /= 8
		if gb < 64<<10 {
			gb = 64 << 10
		}
	}
	resVA, err := r.Malloc(64)
	if err != nil {
		return err
	}
	const coefTables = 20
	coefBytes := uint64(coefTables) * (2 << 20)
	coefVA, err := r.Malloc(coefBytes)
	if err != nil {
		return err
	}

	residual := 1.0
	for c := 0; c < k.Cycles; c++ {
		// Down-sweep: smooth + restrict, exchanging halos at each level.
		for l := 0; l < k.Levels; l++ {
			// Smoothing: stream the level grid (prefetch-sensitive) and a
			// strided stencil pass.
			charge(r, memmodel.SeqScan{Passes: 2}, region(r, gridVAs[l], gridBytes[l]))
			charge(r, memmodel.Strided{Stride: 1024, Passes: 1}, region(r, gridVAs[l], gridBytes[l]))
			// Halo exchange with both neighbours, content-checked.
			fill := make([]byte, haloBytes[l])
			v := byte(13*c + 7*l + 3*r.ID() + 1)
			for i := range fill {
				fill[i] = v
			}
			if err := r.WriteBytes(sendVAs[l], fill); err != nil {
				return err
			}
			tag := 4000 + c*64 + l
			if _, err := r.Sendrecv(right, tag, sendVAs[l], haloBytes[l],
				left, tag, recvVAs[l], haloBytes[l]); err != nil {
				return fmt.Errorf("mg: cycle %d level %d down: %w", c, l, err)
			}
			probe := make([]byte, 8)
			if err := r.ReadBytes(recvVAs[l], probe); err != nil {
				return err
			}
			want := byte(13*c + 7*l + 3*left + 1)
			for _, b := range probe {
				if b != want {
					return fmt.Errorf("mg: VERIFICATION FAILED: cycle %d level %d halo got %d want %d",
						c, l, b, want)
				}
			}
		}
		// Up-sweep: prolongate + smooth.
		for l := k.Levels - 1; l >= 0; l-- {
			charge(r, memmodel.SeqScan{Passes: 1}, region(r, gridVAs[l], gridBytes[l]))
			tag := 5000 + c*64 + l
			if _, err := r.Sendrecv(left, tag, sendVAs[l], haloBytes[l],
				right, tag, recvVAs[l], haloBytes[l]); err != nil {
				return fmt.Errorf("mg: cycle %d level %d up: %w", c, l, err)
			}
		}
		// Per-level coefficient table lookups (scattered hot structures).
		if k.ScatterTouches > 0 {
			charge(r, memmodel.ScatteredTables{
				NumTables:  coefTables,
				TableBytes: 2048,
				Count:      k.ScatterTouches,
			}, region(r, coefVA, coefBytes))
		}
		// Residual norm: a contraction per V-cycle.
		residual *= 0.31
		if err := r.WriteF64(resVA, []float64{residual * residual}); err != nil {
			return err
		}
		if err := r.AllreduceF64(resVA, 1, mpi.Sum); err != nil {
			return err
		}
		got, err := r.ReadF64(resVA, 1)
		if err != nil {
			return err
		}
		want := float64(p) * residual * residual
		if math.Abs(got[0]-want) > 1e-12*want {
			return fmt.Errorf("mg: VERIFICATION FAILED: norm %g want %g", got[0], want)
		}
	}
	// Verification: the V-cycle contraction must have reduced the
	// residual by the expected total factor.
	if want := math.Pow(0.31, float64(k.Cycles)); math.Abs(residual-want) > 1e-12 {
		return fmt.Errorf("mg: VERIFICATION FAILED: final residual %g want %g", residual, want)
	}
	return nil
}
