package nas

import (
	"fmt"
	"math"

	"repro/internal/memmodel"
	"repro/internal/mpi"
	"repro/internal/vm"
)

// CG is the conjugate-gradient kernel: a distributed CG solve on a
// symmetric positive-definite banded matrix, with the NAS CG
// communication signature — a large vector exchange every iteration (the
// ring allgather moving (p-1) segments of n/p doubles) plus two scalar
// allreduces for the dot products. Class-C CG on 8 ranks moves
// hundred-of-KB messages at high frequency; the reduced scale keeps the
// segment size in the RDMA-rendezvous regime so registration behaviour
// matters, as on the real system.
type CG struct {
	N     int // global unknowns (divisible by ranks)
	Iters int
	// ScatterTouches models the indirect index-structure updates per
	// iteration (sparse bookkeeping scattered across the arena).
	ScatterTouches int64
}

// DefaultCG returns the reduced class-C-shaped instance.
func DefaultCG() *CG { return &CG{N: 786432, Iters: 10, ScatterTouches: 26_000} }

// Name implements Kernel.
func (*CG) Name() string { return "cg" }

// bands is the symmetric sparsity pattern: off-diagonals at +/- these
// offsets, value -1, diagonal 12 (strictly diagonally dominant -> SPD).
var bands = []int{1, 3, 17, 177, 2048}

const (
	cgDiag = 12.0
	cgOff  = -1.0
)

// matvec computes q = A*pfull for the local row block [lo, lo+local).
func cgMatvec(pfull []float64, lo, local int) []float64 {
	n := len(pfull)
	q := make([]float64, local)
	for i := 0; i < local; i++ {
		row := lo + i
		s := cgDiag * pfull[row]
		for _, b := range bands {
			if j := row - b; j >= 0 {
				s += cgOff * pfull[j]
			}
			if j := row + b; j < n {
				s += cgOff * pfull[j]
			}
		}
		q[i] = s
	}
	return q
}

// Run implements Kernel.
func (k *CG) Run(r *mpi.Rank) error {
	p := r.Size()
	if k.N%p != 0 {
		return fmt.Errorf("cg: N=%d not divisible by %d ranks", k.N, p)
	}
	local := k.N / p
	lo := r.ID() * local
	segBytes := 8 * local

	// pfull is the assembled direction vector: the allgather target. Its
	// per-rank slices are what gets registered — at p different offsets,
	// the overlapping-registration pattern that pressures the pin-down
	// cache on the real system.
	pfullVA, err := r.Malloc(uint64(8 * k.N))
	if err != nil {
		return err
	}
	// The matrix block: values are generated on the fly, but its memory
	// traffic (nnz * 12 B per sweep) is charged over a real allocation so
	// placement decides TLB and prefetch behaviour.
	matBytes := uint64(local * (2*len(bands) + 1) * 12)
	matVA, err := r.Malloc(matBytes)
	if err != nil {
		return err
	}
	// The scatter arena only exists when the kernel models sparse
	// bookkeeping: at 1024 ranks an unconditional 32 MiB per rank would
	// cost 32 GiB of host memory for bytes nobody touches.
	const scatterBytes = 16 * (2 << 20)
	var scatterVA vm.VA
	if k.ScatterTouches > 0 {
		if scatterVA, err = r.Malloc(scatterBytes); err != nil {
			return err
		}
	}

	// Local CG state.
	x := make([]float64, local)
	rv := make([]float64, local) // residual
	pv := make([]float64, local) // direction
	for i := range rv {
		rv[i] = 1.0
		pv[i] = 1.0
	}
	dotVA, err := r.Malloc(64)
	if err != nil {
		return err
	}

	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	allreduceScalar := func(v float64) (float64, error) {
		if err := r.WriteF64(dotVA, []float64{v}); err != nil {
			return 0, err
		}
		if err := r.AllreduceF64(dotVA, 1, mpi.Sum); err != nil {
			return 0, err
		}
		out, err := r.ReadF64(dotVA, 1)
		if err != nil {
			return 0, err
		}
		return out[0], nil
	}

	rho, err := allreduceScalar(dot(rv, rv))
	if err != nil {
		return err
	}
	rho0 := rho

	for it := 0; it < k.Iters; it++ {
		// Publish the local direction segment into pfull, then ring-
		// allgather all other segments (p-1 rendezvous messages).
		if err := r.WriteF64(pfullVA+vm.VA(lo*8), pv); err != nil {
			return err
		}
		if err := ringAllgatherCG(r, pfullVA, segBytes, it); err != nil {
			return err
		}
		pfull, err := r.ReadF64(pfullVA, k.N)
		if err != nil {
			return err
		}
		// Matvec: stream the matrix block, gather from the full vector.
		charge(r, memmodel.SeqScan{Passes: 1}, region(r, matVA, matBytes))
		charge(r, memmodel.Random{Count: int64(local * len(bands) / 16), Seed: uint64(it + 1)},
			region(r, pfullVA, uint64(8*k.N)))
		q := cgMatvec(pfull, lo, local)

		pq, err := allreduceScalar(dot(pv, q))
		if err != nil {
			return err
		}
		if pq == 0 {
			return fmt.Errorf("cg: breakdown at iteration %d", it)
		}
		alpha := rho / pq
		for i := range x {
			x[i] += alpha * pv[i]
			rv[i] -= alpha * q[i]
		}
		rhoNew, err := allreduceScalar(dot(rv, rv))
		if err != nil {
			return err
		}
		beta := rhoNew / rho
		rho = rhoNew
		for i := range pv {
			pv[i] = rv[i] + beta*pv[i]
		}
		// Vector updates stream x, r, p, q once each.
		charge(r, memmodel.SeqScan{Passes: 4}, region(r, pfullVA+vm.VA(lo*8), uint64(segBytes)))
		// Sparse index bookkeeping hops across scattered structures.
		if k.ScatterTouches > 0 {
			charge(r, memmodel.ScatteredTables{
				NumTables:  28,
				TableBytes: 2048,
				Count:      k.ScatterTouches,
			}, region(r, scatterVA, scatterBytes))
		}
	}

	// Verification: with condition number <= 11 (Gershgorin: eigenvalues
	// in [2,22]) CG contracts the squared residual by at least ~0.4 per
	// iteration; require that rate.
	tol := math.Pow(0.4, float64(k.Iters))
	if !(rho < tol*rho0) || math.IsNaN(rho) {
		return fmt.Errorf("cg: VERIFICATION FAILED: residual^2 %g -> %g (want < %g x)", rho0, rho, tol)
	}
	return nil
}

// ringAllgatherCG circulates pfull segments around the ring: after p-1
// steps every rank holds all segments. Each step forwards the segment
// received in the previous step — so the registered slice moves through
// the buffer, touching p-1 distinct (address, length) regions.
func ringAllgatherCG(r *mpi.Rank, pfullVA vm.VA, segBytes int, it int) error {
	p := r.Size()
	right := (r.ID() + 1) % p
	left := (r.ID() - 1 + p) % p
	tag := 100 + it
	sendSeg := r.ID()
	for step := 0; step < p-1; step++ {
		recvSeg := (sendSeg - 1 + p) % p
		if _, err := r.Sendrecv(
			right, tag, pfullVA+vm.VA(sendSeg*segBytes), segBytes,
			left, tag, pfullVA+vm.VA(recvSeg*segBytes), segBytes); err != nil {
			return fmt.Errorf("cg: allgather step %d: %w", step, err)
		}
		sendSeg = recvSeg
	}
	return nil
}
