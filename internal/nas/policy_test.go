package nas

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/node"
)

// gridConfig mirrors one seed-grid cell: Opteron, huge-lazy, the
// committed fault spec, 4 ranks.
func gridConfig(policy string) mpi.Config {
	spec, err := faults.ParseSpec("seed=5,attevict=600,wr=300")
	if err != nil {
		panic(err)
	}
	return mpi.Config{
		Machine:   machine.Opteron(),
		Ranks:     4,
		Allocator: mpi.AllocHuge,
		LazyDereg: true,
		HugeATT:   true,
		Faults:    spec,
		Policy:    policy,
	}
}

// stripPolicy zeroes the per-node policy counter section, the one part
// of a result that legitimately differs between a static engine and no
// engine at all.
func stripPolicy(res Result) Result {
	nodes := make([]node.Stats, len(res.Nodes))
	copy(nodes, res.Nodes)
	for i := range nodes {
		nodes[i].Policy = node.PolicyStats{}
	}
	res.Nodes = nodes
	return res
}

// The static policy is the legacy fixed strategy with counters: apart
// from the counters themselves, every virtual-time outcome and every
// telemetry field must be bit-for-bit what the no-engine run produces.
func TestStaticPolicyMatchesNoEngine(t *testing.T) {
	for _, name := range []string{"cg", "is"} {
		k := ByName(name)
		bare, err := RunKernelConfig(gridConfig(""), k)
		if err != nil {
			t.Fatal(err)
		}
		static, err := RunKernelConfig(gridConfig("static"), k)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range bare.Nodes {
			if n.Policy != (node.PolicyStats{}) {
				t.Fatalf("%s: no-engine node %d has policy counters %+v", name, i, n.Policy)
			}
		}
		if got := static.Nodes[0].Policy.Kind; got != "static" {
			t.Fatalf("%s: static run reports kind %q", name, got)
		}
		if !reflect.DeepEqual(stripPolicy(bare), stripPolicy(static)) {
			t.Fatalf("%s: static-policy run diverged from the no-engine run", name)
		}
	}
}

// Two identical adaptive runs must agree byte-for-byte, demotions and
// all — the determinism contract of the feedback engine.
func TestAdaptiveRunIsDeterministic(t *testing.T) {
	k := ByName("is")
	a, err := RunKernelConfig(gridConfig("adaptive"), k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunKernelConfig(gridConfig("adaptive"), k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical adaptive runs diverged")
	}
	// The run must actually exercise the interesting path: IS's
	// scattered bucket arena is the demotion showcase.
	pol := node.Sum(a.Nodes).Policy
	if pol.DemoteDecisions == 0 || pol.DemotedPages == 0 {
		t.Fatalf("adaptive IS run demoted nothing: %+v", pol)
	}
	// And the demotions must pay off against the same strategy without
	// an engine.
	bare, err := RunKernelConfig(gridConfig(""), k)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total >= bare.Total {
		t.Fatalf("adaptive total %d not better than huge-lazy %d", a.Total, bare.Total)
	}
}
