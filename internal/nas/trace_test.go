package nas

import (
	"bytes"
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// TestTraceBreakdownPartitionsKernelRun is the acceptance gate for the
// NAS scenario: a traced kernel run, parsed back, must partition every
// rank's timeline exactly into per-layer self time plus idle summing to
// the job's elapsed virtual ticks — and the trace must be byte-stable
// across two same-seed runs.
func TestTraceBreakdownPartitionsKernelRun(t *testing.T) {
	run := func() []byte {
		col := trace.NewCollector()
		_, err := RunKernelConfig(mpi.Config{
			Machine:   machine.Opteron(),
			Ranks:     4,
			Allocator: mpi.AllocHuge,
			LazyDereg: true,
			HugeATT:   true,
			Trace:     col,
		}, DefaultEP())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := col.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed NAS trace bytes differ: %d vs %d", len(a), len(b))
	}
	d, err := trace.ParsePerfetto(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := d.Elapsed()
	bs := d.Breakdowns()
	if len(bs) != 4 {
		t.Fatalf("got %d breakdowns, want 4 ranks", len(bs))
	}
	for _, bd := range bs {
		if bd.Total() != elapsed {
			t.Fatalf("%s: breakdown total %d != elapsed %d", bd.Name, bd.Total(), elapsed)
		}
		if bd.Self[string(trace.LApp)] == 0 {
			t.Fatalf("%s: kernel compute left no app-layer time", bd.Name)
		}
	}
}
