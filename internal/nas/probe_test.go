package nas

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
)

func TestProbeISCalls(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, ak := range []mpi.AllocatorKind{mpi.AllocLibc, mpi.AllocHuge} {
		cfg := mpi.Config{Machine: machine.Opteron(), Ranks: 8, Allocator: ak, LazyDereg: true, HugeATT: true}
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		k := DefaultIS()
		if err := w.Run(func(r *mpi.Rank) error {
			r.Cache().MaxPinned = 2 << 20
			return k.Run(r)
		}); err != nil {
			t.Fatal(err)
		}
		t.Logf("=== %s ===", ak)
		for _, cs := range w.Profile().Calls() {
			t.Logf("%-12s n=%6d t=%v", cs.Name, cs.Count, cs.Time)
		}
		st := w.Rank(0).Verbs().HW.Stats()
		t.Logf("ATT hits=%d misses=%d", st.ATTHits, st.ATTMisses)
	}
}
