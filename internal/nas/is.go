package nas

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/memmodel"
	"repro/internal/mpi"
	"repro/internal/vm"
)

// IS is the integer-sort kernel: each iteration generates keys, counts
// them into buckets, agrees on bucket ownership, exchanges keys with an
// all-to-all-v, and verifies the resulting global order. IS is the
// paper's problem child — the one benchmark whose overall time got
// *worse* with hugepages: its communication is dominated by large
// alltoallv payloads (so registration savings barely show), while its
// bucket-counting phase hops across many small hot regions, which is
// poison for the Opteron's 8 hugepage TLB entries.
type IS struct {
	KeysPerRank int
	Iters       int
	MaxKey      int
	// BucketTouches is the modelled per-iteration count of scattered
	// bucket-structure updates.
	BucketTouches int64
}

// DefaultIS returns the reduced class-C-shaped instance.
func DefaultIS() *IS {
	return &IS{KeysPerRank: 131072, Iters: 16, MaxKey: 1 << 20, BucketTouches: 3000}
}

// Name implements Kernel.
func (*IS) Name() string { return "is" }

// isRand is a deterministic per-rank key generator (xorshift).
type isRand struct{ s uint64 }

func (g *isRand) next() uint64 {
	g.s ^= g.s << 13
	g.s ^= g.s >> 7
	g.s ^= g.s << 17
	return g.s
}

// Run implements Kernel.
func (k *IS) Run(r *mpi.Rank) error {
	p := r.Size()
	keyBytes := 4 * k.KeysPerRank
	// Fixed-stride send and receive layouts: slot d holds traffic for/
	// from rank d at a constant offset, as in the Fortran IS source —
	// which is what lets the pin-down cache reuse registrations across
	// iterations despite the per-iteration count variation.
	slotBytes := 4 * keyBytes / p // generous: ~4x the average partition
	sendVA, err := r.Malloc(uint64(slotBytes * p))
	if err != nil {
		return err
	}
	recvCap := slotBytes * p
	recvVA, err := r.Malloc(uint64(recvCap))
	if err != nil {
		return err
	}
	// The scattered bucket arena (hot counting structures).
	const numBuckets, bucketBytes = 44, 1536
	arenaBytes := uint64(numBuckets) * (2 << 20)
	arenaVA, err := r.Malloc(arenaBytes)
	if err != nil {
		return err
	}
	countVA, err := r.Malloc(uint64(8 * p))
	if err != nil {
		return err
	}

	g := &isRand{s: uint64(0x9E3779B9<<8) ^ uint64(r.ID()+1)}
	keysPerBucket := (k.MaxKey + p - 1) / p

	for it := 0; it < k.Iters; it++ {
		// Key generation: one streaming pass over the key array.
		keys := make([]uint32, k.KeysPerRank)
		for i := range keys {
			keys[i] = uint32(g.next() % uint64(k.MaxKey))
		}
		charge(r, memmodel.SeqScan{Passes: 1}, region(r, sendVA, uint64(keyBytes)))

		// Bucket counting: random hops over the key range histogram plus
		// the scattered hot bucket structures.
		charge(r, memmodel.ScatteredTables{
			NumTables:  numBuckets,
			TableBytes: bucketBytes,
			Count:      k.BucketTouches,
		}, region(r, arenaVA, arenaBytes))

		// Partition keys by destination rank (bucket = key / keysPerBucket),
		// then sort each partition locally before exchange (bucketed sort).
		parts := make([][]uint32, p)
		for _, key := range keys {
			d := int(key) / keysPerBucket
			if d >= p {
				d = p - 1
			}
			parts[d] = append(parts[d], key)
		}
		sc := make([]int, p)
		sd := make([]int, p)
		for d := 0; d < p; d++ {
			sort.Slice(parts[d], func(i, j int) bool { return parts[d][i] < parts[d][j] })
			sd[d] = d * slotBytes
			sc[d] = 4 * len(parts[d])
			if sc[d] > slotBytes {
				return fmt.Errorf("is: partition %d overflows its slot (%d > %d)", d, sc[d], slotBytes)
			}
			buf := make([]byte, sc[d])
			for i, key := range parts[d] {
				binary.LittleEndian.PutUint32(buf[4*i:], key)
			}
			if err := r.WriteBytes(sendVA+vm.VA(sd[d]), buf); err != nil {
				return err
			}
		}

		// Agree on counts (alltoall of sizes via allreduce of a p-vector
		// per destination is overkill; exchange counts pairwise like the
		// real IS does with MPI_Alltoall on counts).
		myCounts := make([]float64, p)
		for d := 0; d < p; d++ {
			myCounts[d] = float64(sc[d])
		}
		// counts matrix row exchange: each rank learns what it will
		// receive from everyone via an alltoall of one int each.
		rcounts, err := isExchangeCounts(r, countVA, myCounts, it)
		if err != nil {
			return err
		}
		rc := make([]int, p)
		rd := make([]int, p)
		total := 0
		for s := 0; s < p; s++ {
			rc[s] = int(rcounts[s])
			rd[s] = s * slotBytes
			if rc[s] > slotBytes {
				return fmt.Errorf("is: receive slot overflow from %d: %d > %d", s, rc[s], slotBytes)
			}
			total += rc[s]
		}
		if total > recvCap {
			return fmt.Errorf("is: receive overflow: %d > %d", total, recvCap)
		}

		// The heavy exchange.
		if err := r.Alltoallv(sendVA, sc, sd, recvVA, rc, rd); err != nil {
			return err
		}

		// Local merge of p sorted runs + verification pass.
		mine := make([]uint32, 0, total/4)
		for s := 0; s < p; s++ {
			got := make([]byte, rc[s])
			if err := r.ReadBytes(recvVA+vm.VA(rd[s]), got); err != nil {
				return err
			}
			for i := 0; i < rc[s]/4; i++ {
				mine = append(mine, binary.LittleEndian.Uint32(got[4*i:]))
			}
		}
		sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })
		charge(r, memmodel.SeqScan{Passes: 2}, region(r, recvVA, uint64(total+1)))
		// The rank/merge phase hops randomly across the full key space
		// image (comfortably beyond the 4 KiB TLB reach but inside the
		// hugepage reach, so this phase favours hugepages slightly —
		// the bucket structures above dominate the other way).
		charge(r, memmodel.Random{Count: 2500, Seed: uint64(it + 11)}, region(r, arenaVA, arenaBytes))

		// Verification 1: every key landed in this rank's range.
		lo := uint32(r.ID() * keysPerBucket)
		hi := uint32((r.ID() + 1) * keysPerBucket)
		if r.ID() == p-1 {
			hi = uint32(k.MaxKey)
		}
		for _, key := range mine {
			if key < lo || key >= hi {
				return fmt.Errorf("is: VERIFICATION FAILED: key %d outside [%d,%d)", key, lo, hi)
			}
		}
		// Verification 2: global boundary order — my smallest key is >=
		// my left neighbour's largest.
		if err := isCheckBoundaries(r, mine, it); err != nil {
			return err
		}
		// Verification 3: key conservation.
		totVA := countVA
		if err := r.WriteF64(totVA, []float64{float64(len(mine))}); err != nil {
			return err
		}
		if err := r.AllreduceF64(totVA, 1, mpi.Sum); err != nil {
			return err
		}
		tot, err := r.ReadF64(totVA, 1)
		if err != nil {
			return err
		}
		if int(tot[0]) != p*k.KeysPerRank {
			return fmt.Errorf("is: VERIFICATION FAILED: %d keys after exchange, want %d",
				int(tot[0]), p*k.KeysPerRank)
		}
	}
	return nil
}

// isExchangeCounts distributes each rank's per-destination byte counts so
// every rank knows what it will receive (the MPI_Alltoall on counts that
// precedes every MPI_Alltoallv in the real IS).
func isExchangeCounts(r *mpi.Rank, scratch vm.VA, myCounts []float64, it int) ([]float64, error) {
	p := r.Size()
	out := make([]float64, p)
	out[r.ID()] = myCounts[r.ID()]
	for step := 1; step < p; step++ {
		dst := (r.ID() + step) % p
		src := (r.ID() - step + p) % p
		if err := r.WriteF64(scratch, []float64{myCounts[dst]}); err != nil {
			return nil, err
		}
		tag := 900 + it*16 + step
		if _, err := r.Sendrecv(dst, tag, scratch, 8, src, tag, scratch+8, 8); err != nil {
			return nil, err
		}
		v, err := r.ReadF64(scratch+8, 1)
		if err != nil {
			return nil, err
		}
		out[src] = v[0]
	}
	return out, nil
}

// isCheckBoundaries verifies global sortedness across rank boundaries.
func isCheckBoundaries(r *mpi.Rank, mine []uint32, it int) error {
	p := r.Size()
	scratch, err := r.Malloc(64)
	if err != nil {
		return err
	}
	defer func() { _ = r.Free(scratch) }()
	maxKey := float64(-1)
	if len(mine) > 0 {
		maxKey = float64(mine[len(mine)-1])
	}
	right := (r.ID() + 1) % p
	left := (r.ID() - 1 + p) % p
	if err := r.WriteF64(scratch, []float64{maxKey}); err != nil {
		return err
	}
	tag := 950 + it
	if _, err := r.Sendrecv(right, tag, scratch, 8, left, tag, scratch+8, 8); err != nil {
		return err
	}
	if r.ID() == 0 {
		return nil // wrapped boundary is not ordered
	}
	leftMax, err := r.ReadF64(scratch+8, 1)
	if err != nil {
		return err
	}
	if len(mine) > 0 && leftMax[0] >= 0 && float64(mine[0]) < leftMax[0] {
		return fmt.Errorf("is: VERIFICATION FAILED: rank %d min %d < left max %g",
			r.ID(), mine[0], leftMax[0])
	}
	return nil
}
