package nas

import (
	"fmt"
	"math"

	"repro/internal/memmodel"
	"repro/internal/mpi"
)

// EP is the embarrassingly-parallel kernel: batches of pseudo-random
// Gaussian pairs generated and binned locally, with per-batch statistics
// tables reduced across ranks. EP is where Section 5.2's TLB paradox
// shows: its hot data is a set of small tables scattered across the
// address space — comfortable in 544 small-page TLB entries, hopeless in
// 8 hugepage entries ("TLB misses increased dramatically with hugepages
// (up to eight times with EP)") — while its bulk pass still enjoys the
// prefetcher's love of physical contiguity.
//
// The per-batch statistics table is allocated and freed around each
// batch (Fortran automatic arrays), so every batch re-registers its
// reduction buffer: the allocation-placement / registration interplay
// that gives EP its communication-time win under hugepages.
type EP struct {
	Batches int
	Pairs   int // Gaussian pairs per batch (real arithmetic)
	// TableTouches is the modelled count of scattered-table updates per
	// batch (charged through memmodel.ScatteredTables).
	TableTouches int64
}

// DefaultEP returns the reduced class-C-shaped instance.
func DefaultEP() *EP {
	return &EP{Batches: 12, Pairs: 20000, TableTouches: 6500}
}

// Name implements Kernel.
func (*EP) Name() string { return "ep" }

// epRand is the NAS linear congruential generator (a = 5^13, mod 2^46).
type epRand struct{ seed float64 }

const (
	epA    = 1220703125.0
	epMod  = 1 << 46
	epRMod = 1.0 / (1 << 46)
)

func (g *epRand) next() float64 {
	// Split multiply mod 2^46 in doubles, as in the NAS vranlc source.
	const t23, r23 = float64(1 << 23), 1.0 / (1 << 23)
	a1 := math.Trunc(r23 * epA)
	a2 := epA - t23*a1
	x1 := math.Trunc(r23 * g.seed)
	x2 := g.seed - t23*x1
	t1 := a1*x2 + a2*x1
	t2 := math.Trunc(r23 * t1)
	z := t1 - t23*t2
	t3 := t23*z + a2*x2
	g.seed = t3 - float64(epMod)*math.Trunc(epRMod*t3)
	return epRMod * g.seed
}

// Run implements Kernel.
func (k *EP) Run(r *mpi.Rank) error {
	// The bulk sample buffer: streamed every batch (prefetch-sensitive).
	// Sized to fit the 4 KiB TLB reach so steady-state small-page misses
	// stay near zero — EP's footprint really is TLB-friendly, which is
	// what makes the hugepage blowup so stark.
	const bulkBytes = 3 << 19
	bulkVA, err := r.Malloc(bulkBytes)
	if err != nil {
		return err
	}
	const bulkSpillBytes = 8 << 20
	bulkSpillVA, err := r.Malloc(bulkSpillBytes)
	if err != nil {
		return err
	}
	// The scattered-table arena: one hot table per 2 MiB stride.
	const numTables, tableBytes = 40, 2048
	arenaBytes := uint64(numTables) * (2 << 20)
	arenaVA, err := r.Malloc(arenaBytes)
	if err != nil {
		return err
	}

	g := &epRand{seed: float64(271828183 ^ (r.ID() + 1))}
	var q [10]float64 // annulus counts
	var sx, sy float64
	accepted := 0

	for b := 0; b < k.Batches; b++ {
		// Real arithmetic: Marsaglia polar acceptance over NAS LCG.
		var qb [10]float64
		for i := 0; i < k.Pairs; i++ {
			x := 2*g.next() - 1
			y := 2*g.next() - 1
			t := x*x + y*y
			if t <= 1 && t > 0 {
				f := math.Sqrt(-2 * math.Log(t) / t)
				gx, gy := x*f, y*f
				sx += gx
				sy += gy
				m := int(math.Max(math.Abs(gx), math.Abs(gy)))
				if m < 10 {
					qb[m]++
				}
				accepted++
			}
		}
		for i := range q {
			q[i] += qb[i]
		}
		// Charge the batch's memory behaviour: one streaming pass over
		// the sample buffer, then the scattered table updates.
		charge(r, memmodel.SeqScan{Passes: 8}, region(r, bulkVA, bulkBytes))
		charge(r, memmodel.ScatteredTables{
			NumTables:  numTables,
			TableBytes: tableBytes,
			Count:      k.TableTouches,
		}, region(r, arenaVA, arenaBytes))
		// Occasional spills beyond the 4 KiB reach (table rehash): over a
		// region that costs both page sizes alike once the hugepage file
		// is being thrashed by the tables above.
		charge(r, memmodel.Random{Count: 540, Seed: uint64(b + 5)},
			region(r, bulkSpillVA, bulkSpillBytes))

		// Per-batch statistics exchange: automatic arrays, allocated and
		// freed around the exchange — every batch re-registers its
		// buffers, which is where hugepages win EP communication time.
		if err := epButterfly(r, b, qb[:]); err != nil {
			return err
		}
	}

	// Final reduction and verification: annulus counts must sum to the
	// global accepted count (conservation), and the Gaussian means must
	// be near zero.
	sumVA, err := r.Malloc(256)
	if err != nil {
		return err
	}
	vals := []float64{float64(accepted), sx, sy}
	vals = append(vals, q[:]...)
	if err := r.WriteF64(sumVA, vals); err != nil {
		return err
	}
	if err := r.AllreduceF64(sumVA, len(vals), mpi.Sum); err != nil {
		return err
	}
	out, err := r.ReadF64(sumVA, len(vals))
	if err != nil {
		return err
	}
	totalAccepted, gsx, gsy := out[0], out[1], out[2]
	var qsum float64
	for _, v := range out[3:] {
		qsum += v
	}
	if qsum != totalAccepted {
		return fmt.Errorf("ep: VERIFICATION FAILED: annulus counts %v != accepted %v", qsum, totalAccepted)
	}
	if totalAccepted == 0 {
		return fmt.Errorf("ep: VERIFICATION FAILED: no samples accepted")
	}
	if mean := math.Abs(gsx/totalAccepted) + math.Abs(gsy/totalAccepted); mean > 0.05 {
		return fmt.Errorf("ep: VERIFICATION FAILED: Gaussian mean drift %g", mean)
	}
	return nil
}

// epButterfly reduces the batch statistics table across all ranks with a
// recursive-doubling exchange. The table and every round's receive buffer
// are automatic arrays — allocated fresh, used once, freed — so each hop
// pays a registration, 512x cheaper in hugepages.
func epButterfly(r *mpi.Rank, batch int, stats []float64) error {
	const qTableBytes = 96 << 10
	p := r.Size()
	if p&(p-1) != 0 {
		return fmt.Errorf("ep: butterfly needs power-of-two ranks, got %d", p)
	}
	qVA, err := r.Malloc(qTableBytes)
	if err != nil {
		return err
	}
	table := make([]float64, 16)
	copy(table, stats)
	if err := r.WriteF64(qVA, table); err != nil {
		return err
	}
	// One receive temp per batch, reused across the rounds (as an MPI
	// library would reuse its allreduce temp within one call).
	rVAbuf, err := r.Malloc(qTableBytes)
	if err != nil {
		return err
	}
	for mask, round := 1, 0; mask < p; mask, round = mask<<1, round+1 {
		peer := r.ID() ^ mask
		tag := 800 + batch*8 + round
		if _, err := r.Sendrecv(peer, tag, qVA, qTableBytes,
			peer, tag, rVAbuf, qTableBytes); err != nil {
			return err
		}
		mine, err := r.ReadF64(qVA, 16)
		if err != nil {
			return err
		}
		theirs, err := r.ReadF64(rVAbuf, 16)
		if err != nil {
			return err
		}
		for i := range mine {
			mine[i] += theirs[i]
		}
		if err := r.WriteF64(qVA, mine); err != nil {
			return err
		}
	}
	if err := r.Free(rVAbuf); err != nil {
		return err
	}
	// The reduced table is checked against local contribution sanity:
	// global counts can never be below this rank's own.
	got, err := r.ReadF64(qVA, 16)
	if err != nil {
		return err
	}
	for i, v := range stats {
		if got[i] < v {
			return fmt.Errorf("ep: VERIFICATION FAILED: reduced q[%d]=%g < local %g", i, got[i], v)
		}
	}
	return r.Free(qVA)
}
