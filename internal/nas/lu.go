package nas

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/mpi"
	"repro/internal/vm"
)

// LU is the pipelined wavefront kernel (SSOR): sweeps over k-planes of a
// 3D domain where each rank waits for its upstream neighbour's boundary
// plane, relaxes its own block, and forwards the plane downstream — the
// NAS LU signature of many medium-sized, latency-sensitive messages in a
// strict pipeline.
//
// LU is the Section 5.2 exception: its blocked access pattern keeps the
// per-plane working set inside both TLB entry files, so hugepages do
// *not* blow its miss count up ("except for LU"); meanwhile its per-plane
// slice registrations at ever-changing offsets keep the pin-down cache
// under pressure, which is where its >8 % communication win comes from.
type LU struct {
	Planes     int // k-planes per sweep
	PlaneBytes int // boundary plane size
	Sweeps     int // forward+backward sweep pairs
	// HotBytes is the per-plane relaxation working set (fits both TLBs).
	HotBytes uint64
}

// DefaultLU returns the reduced class-C-shaped instance.
func DefaultLU() *LU {
	return &LU{Planes: 40, PlaneBytes: 32 << 10, Sweeps: 3, HotBytes: 96 << 20}
}

// Name implements Kernel.
func (*LU) Name() string { return "lu" }

// luPlaneValue is the deterministic content of plane k at pipeline stage
// s from rank id — lets every receiver verify the full relay chain.
func luPlaneValue(k, sweep, stage int) byte {
	return byte(37*k + 11*sweep + 5*stage + 1)
}

// Run implements Kernel.
func (k *LU) Run(r *mpi.Rank) error {
	p := r.Size()
	// The plane slab: Planes boundary planes at varying offsets — each
	// plane send registers a different slice.
	slabBytes := uint64(k.Planes * k.PlaneBytes)
	slabVA, err := r.Malloc(slabBytes)
	if err != nil {
		return err
	}
	recvVA, err := r.Malloc(slabBytes)
	if err != nil {
		return err
	}
	// The relaxation working set (blocked: dense small region).
	hotVA, err := r.Malloc(k.HotBytes)
	if err != nil {
		return err
	}

	for sweep := 0; sweep < k.Sweeps; sweep++ {
		// Forward wavefront: rank 0 -> p-1, plane by plane.
		for plane := 0; plane < k.Planes; plane++ {
			off := vm.VA(plane * k.PlaneBytes)
			tag := 2000 + sweep*256 + plane
			if r.ID() > 0 {
				if _, err := r.Recv(r.ID()-1, tag, recvVA+off, k.PlaneBytes); err != nil {
					return fmt.Errorf("lu: sweep %d plane %d recv: %w", sweep, plane, err)
				}
				// Verify the upstream plane content.
				probe := make([]byte, 8)
				if err := r.ReadBytes(recvVA+off, probe); err != nil {
					return err
				}
				want := luPlaneValue(plane, sweep, r.ID()-1)
				for _, b := range probe {
					if b != want {
						return fmt.Errorf("lu: VERIFICATION FAILED: sweep %d plane %d got %d want %d",
							sweep, plane, b, want)
					}
				}
			}
			// Relax this plane: blocked dense work over the hot region
			// plus a strided touch of the plane slice.
			charge(r, memmodel.Random{Count: 2000, Seed: uint64(sweep*1000 + plane)},
				region(r, hotVA, k.HotBytes))
			charge(r, memmodel.Strided{Stride: 256, Passes: 1},
				region(r, slabVA+off, uint64(k.PlaneBytes)))

			if r.ID() < p-1 {
				fill := make([]byte, k.PlaneBytes)
				v := luPlaneValue(plane, sweep, r.ID())
				for i := range fill {
					fill[i] = v
				}
				if err := r.WriteBytes(slabVA+off, fill); err != nil {
					return err
				}
				if err := r.Send(r.ID()+1, tag, slabVA+off, k.PlaneBytes); err != nil {
					return fmt.Errorf("lu: sweep %d plane %d send: %w", sweep, plane, err)
				}
			}
		}
		// Backward wavefront: p-1 -> 0 (the SSOR lower/upper pair).
		for plane := k.Planes - 1; plane >= 0; plane-- {
			off := vm.VA(plane * k.PlaneBytes)
			tag := 3000 + sweep*256 + plane
			if r.ID() < p-1 {
				if _, err := r.Recv(r.ID()+1, tag, recvVA+off, k.PlaneBytes); err != nil {
					return fmt.Errorf("lu: back sweep %d plane %d recv: %w", sweep, plane, err)
				}
			}
			charge(r, memmodel.Random{Count: 2000, Seed: uint64(sweep*2000 + plane)},
				region(r, hotVA, k.HotBytes))
			if r.ID() > 0 {
				if err := r.Send(r.ID()-1, tag, slabVA+off, k.PlaneBytes); err != nil {
					return fmt.Errorf("lu: back sweep %d plane %d send: %w", sweep, plane, err)
				}
			}
		}
		// Residual norm at the end of each sweep pair.
		normVA, err := r.Malloc(64)
		if err != nil {
			return err
		}
		if err := r.WriteF64(normVA, []float64{1.0 / float64(sweep+1)}); err != nil {
			return err
		}
		if err := r.AllreduceF64(normVA, 1, mpi.Sum); err != nil {
			return err
		}
		got, err := r.ReadF64(normVA, 1)
		if err != nil {
			return err
		}
		want := float64(p) / float64(sweep+1)
		if diff := got[0] - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("lu: VERIFICATION FAILED: norm %g want %g", got[0], want)
		}
		if err := r.Free(normVA); err != nil {
			return err
		}
	}
	return nil
}
