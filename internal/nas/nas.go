// Package nas implements reduced-scale versions of the five NAS Parallel
// Benchmarks the paper evaluates in Section 5.2 — CG, EP, IS, LU and MG —
// with their real communication skeletons (the same MPI call mix,
// message-size distribution and neighbour structure) and compute phases
// charged through the memory-access models of internal/memmodel over the
// kernels' actual allocated buffers.
//
// Each kernel verifies its numerics (residual decay, sortedness,
// statistical totals), so a run is evidence the communication substrate
// moved the right bytes, not just the right costs.
//
// The Figure 6 experiment runs every kernel twice — once with libc
// placement, once preloaded with the hugepage library (plus the BSS
// linker-script trick) — and reports the communication / other / overall
// improvement split obtained through the mpiP profile, and the PAPI TLB
// counters behind the Section 5.2 discussion.
package nas

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/memmodel"
	"repro/internal/mpi"
	"repro/internal/node"
	"repro/internal/papi"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// Kernel is one NAS benchmark.
type Kernel interface {
	Name() string
	// Run executes the kernel body on one rank. Implementations must be
	// deterministic and verify their own numerics.
	Run(r *mpi.Rank) error
}

// Result is the outcome of one kernel under one configuration.
type Result struct {
	Kernel    string
	Allocator mpi.AllocatorKind
	Comm      simtime.Ticks // aggregate MPI time over all ranks
	Compute   simtime.Ticks // aggregate application time
	Total     simtime.Ticks // Comm + Compute
	Makespan  simtime.Ticks // latest rank clock
	TLB       papi.Counters // aggregate over all ranks
	HugeBytes int64         // peak bytes placed in hugepages (rank 0)
	RegTicks  simtime.Ticks // aggregate registration time
	Evictions int64         // registration-cache evictions
	// MPIProfile is the rendered mpiP-style report of the whole job.
	MPIProfile string
	// Nodes is every rank's end-of-run host telemetry, in rank order.
	Nodes []node.Stats
}

// maxPinnedPerRank bounds the registration cache like MVAPICH2's
// registered-memory pool: kernels whose buffer working set exceeds it
// re-register under eviction, which is where hugepages pay off during
// application runs (the "more effective memory registration" of §5.2).
const maxPinnedPerRank = 2 << 20

// RunKernel executes a kernel on a fresh world under the evaluation
// default of the paper's Section 5.2 runs: lazy deregistration on and the
// ATT driver patch applied, with the allocator as the variable.
func RunKernel(m *machine.Machine, ranks int, ak mpi.AllocatorKind, k Kernel) (Result, error) {
	return RunKernelConfig(mpi.Config{
		Machine:   m,
		Ranks:     ranks,
		Allocator: ak,
		LazyDereg: true,
		HugeATT:   true,
	}, k)
}

// RunKernelConfig executes a kernel under a full MPI configuration, so a
// placement policy's every knob (allocator, lazy deregistration, huge
// ATT, protocol limits) reaches the run.
func RunKernelConfig(cfg mpi.Config, k Kernel) (Result, error) {
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return Result{}, err
	}
	ak := w.Config().Allocator
	err = w.Run(func(r *mpi.Rank) error {
		r.Cache().MaxPinned = maxPinnedPerRank
		return k.Run(r)
	})
	if err != nil {
		return Result{}, fmt.Errorf("nas: %s/%s: %w", k.Name(), ak, err)
	}
	w.EndTrace()
	res := Result{
		Kernel:    k.Name(),
		Allocator: ak,
		Makespan:  w.MaxTime(),
	}
	for i := 0; i < w.Size(); i++ {
		rk := w.Rank(i)
		res.Comm += rk.Profile().CommTime()
		res.Compute += rk.Profile().ComputeTime()
		res.RegTicks += rk.Verbs().Stats().RegTicks
		res.Evictions += rk.Cache().Stats().Evictions
		c := papi.Read(rk.DTLB())
		res.TLB.DTLB4KAccesses += c.DTLB4KAccesses
		res.TLB.DTLB4KMisses += c.DTLB4KMisses
		res.TLB.DTLB2MAccesses += c.DTLB2MAccesses
		res.TLB.DTLB2MMisses += c.DTLB2MMisses
	}
	res.Total = res.Comm + res.Compute
	res.HugeBytes = w.Rank(0).Allocator().Stats().HugeBytes
	res.MPIProfile = w.Profile().Report()
	res.Nodes = w.NodeStats()
	return res, nil
}

// region wraps an allocated buffer with its actual page placement, for
// charging memmodel patterns.
func region(r *mpi.Rank, va vm.VA, bytes uint64) memmodel.Region {
	_, class, err := r.AS().Translate(va)
	if err != nil {
		// Unreachable for buffers returned by Malloc; keep the kernel
		// honest if it ever passes a bogus VA.
		panic(fmt.Sprintf("nas: region over unmapped VA %#x: %v", uint64(va), err))
	}
	return memmodel.Region{VA: va, Bytes: bytes, Class: class}
}

// charge applies a pattern over a region and advances the rank's clock.
// The adaptive placement policy observes every charged pattern, replaying
// it against a shadow DTLB under the counterfactual page class; Compute
// then drives the policy's feedback window.
func charge(r *mpi.Rank, p memmodel.Pattern, rg memmodel.Region) memmodel.Result {
	cpu := cpuOf(r)
	res := p.Apply(cpu, r.DTLB(), rg)
	r.Node().Policy().ObservePattern(p, rg, res)
	r.Compute(res.Ticks)
	return res
}

func cpuOf(r *mpi.Rank) *machine.CPU {
	cpu := r.Verbs().Machine().CPU
	return &cpu
}

// All returns the five kernels at their default (reduced) scales, in the
// paper's Figure 6 order.
func All() []Kernel {
	return []Kernel{DefaultCG(), DefaultEP(), DefaultIS(), DefaultLU(), DefaultMG()}
}

// ByName looks a kernel up ("cg", "ep", "is", "lu", "mg").
func ByName(name string) Kernel {
	for _, k := range All() {
		if k.Name() == name {
			return k
		}
	}
	return nil
}
