package nas

import (
	"testing"

	"repro/internal/machine"
)

// TestFig6PaperShape asserts every qualitative claim the paper makes about
// Figure 6 and the Section 5.2 discussion, at default kernel scale on the
// AMD Opteron system (the one instrumented with PAPI in the paper).
func TestFig6PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 6 run takes ~10s")
	}
	rows, err := RunFig6(machine.Opteron(), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig6Row{}
	for _, row := range rows {
		byName[row.Kernel] = row
	}
	t.Log("\n" + FormatFig6("opteron", rows))

	// "Except for MG and IS, all benchmarks show communication
	// performance benefits of more than 8 %."
	for _, k := range []string{"cg", "ep", "lu"} {
		if byName[k].CommImprove <= 8 {
			t.Errorf("%s: comm improvement %.1f%%, want > 8%%", k, byName[k].CommImprove)
		}
	}
	for _, k := range []string{"mg", "is"} {
		if byName[k].CommImprove >= 8 {
			t.Errorf("%s: comm improvement %.1f%%, want < 8%% (the MG/IS exception)", k, byName[k].CommImprove)
		}
		if byName[k].CommImprove <= 0 {
			t.Errorf("%s: comm improvement %.1f%% should still be positive", k, byName[k].CommImprove)
		}
	}

	// "Overall, all benchmarks benefited from using hugepages - except
	// for IS."
	for _, k := range []string{"cg", "ep", "lu", "mg"} {
		if byName[k].OverallImprove <= 0 {
			t.Errorf("%s: overall improvement %.1f%%, want positive", k, byName[k].OverallImprove)
		}
	}
	if byName["is"].OverallImprove >= 0 {
		t.Errorf("is: overall improvement %.1f%%, want negative", byName["is"].OverallImprove)
	}

	// "The results show time improvements of more than 10 %."
	best := 0.0
	for _, row := range rows {
		if row.OverallImprove > best {
			best = row.OverallImprove
		}
	}
	if best <= 10 {
		t.Errorf("best overall improvement %.1f%%, want > 10%%", best)
	}

	// "TLB misses increased dramatically with hugepages (up to eight
	// times with EP) except for LU."
	if r := byName["ep"].TLBMissRatio; r < 5 || r > 10 {
		t.Errorf("ep: TLB miss ratio %.1f, want ~8", r)
	}
	if r := byName["lu"].TLBMissRatio; r > 1.1 {
		t.Errorf("lu: TLB miss ratio %.2f, want <= ~1 (the LU exception)", r)
	}
	for _, k := range []string{"cg", "is"} {
		if byName[k].TLBMissRatio <= 1 {
			t.Errorf("%s: TLB miss ratio %.2f, want > 1 (misses increased)", k, byName[k].TLBMissRatio)
		}
	}

	// EP's computation still improved despite the TLB blowup (the
	// prefetcher benefit of physically contiguous memory).
	if byName["ep"].OtherImprove <= 0 {
		t.Errorf("ep: other improvement %.1f%%, want positive despite TLB blowup", byName["ep"].OtherImprove)
	}
	// IS loses computation time (the negative "other" bar).
	if byName["is"].OtherImprove >= 0 {
		t.Errorf("is: other improvement %.1f%%, want negative", byName["is"].OtherImprove)
	}
}

// TestFig6SystemP checks the System p column: same qualitative comm
// ordering; all kernels improve overall on this machine (its larger TLB
// files soften the hugepage penalty).
func TestFig6SystemP(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 6 run takes ~10s")
	}
	rows, err := RunFig6(machine.SystemP(), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFig6("systemp", rows))
	for _, row := range rows {
		switch row.Kernel {
		case "cg", "ep", "lu":
			if row.CommImprove <= 8 {
				t.Errorf("%s: comm improvement %.1f%%, want > 8%%", row.Kernel, row.CommImprove)
			}
		case "mg", "is":
			if row.CommImprove >= 8 {
				t.Errorf("%s: comm improvement %.1f%%, want < 8%%", row.Kernel, row.CommImprove)
			}
		}
		if row.OverallImprove <= 0 {
			t.Errorf("%s: overall improvement %.1f%%, want positive on System p", row.Kernel, row.OverallImprove)
		}
	}
}
