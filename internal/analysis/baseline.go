package analysis

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
)

// Diff-aware linting: a baseline file records the findings a tree is
// known (and for now permitted) to contain, so reprolint -baseline
// reports only NEW findings — the mode that makes tightening an
// analyzer on a large tree tractable. Suppressions are keyed by
// (analyzer, file, message) and deliberately carry no line numbers:
// editing an unrelated part of a file shifts lines but must not
// resurrect a baselined finding. The price is that N identical
// messages in one file count as one suppression; reprolint's messages
// embed the offending identifier, so collisions are rare in practice.

// Suppression identifies one baselined finding class.
type Suppression struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Version      int           `json:"version"`
	Suppressions []Suppression `json:"suppressions"`
}

func (s Suppression) key() string {
	return s.Analyzer + "\x00" + filepath.ToSlash(s.File) + "\x00" + s.Message
}

// NewBaseline captures findings (with module-relative filenames) as a
// baseline, sorted and deduplicated.
func NewBaseline(findings []Finding) *Baseline {
	seen := make(map[string]bool)
	b := &Baseline{Version: 1, Suppressions: []Suppression{}}
	for _, f := range findings {
		s := Suppression{Analyzer: f.Analyzer, File: filepath.ToSlash(f.Pos.Filename), Message: f.Message}
		if seen[s.key()] {
			continue
		}
		seen[s.key()] = true
		b.Suppressions = append(b.Suppressions, s)
	}
	sort.Slice(b.Suppressions, func(i, j int) bool {
		return b.Suppressions[i].key() < b.Suppressions[j].key()
	})
	return b
}

// Encode renders the baseline as deterministic, committed-file-friendly
// JSON.
func (b *Baseline) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// DecodeBaseline parses a baseline file.
func DecodeBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline: %w", err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("unsupported baseline version %d (want 1)", b.Version)
	}
	return &b, nil
}

// Filter drops findings the baseline suppresses and returns the rest,
// preserving order.
func (b *Baseline) Filter(findings []Finding) []Finding {
	suppressed := make(map[string]bool, len(b.Suppressions))
	for _, s := range b.Suppressions {
		suppressed[s.key()] = true
	}
	var out []Finding
	for _, f := range findings {
		s := Suppression{Analyzer: f.Analyzer, File: filepath.ToSlash(f.Pos.Filename), Message: f.Message}
		if suppressed[s.key()] {
			continue
		}
		out = append(out, f)
	}
	return out
}
