package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnoreDirective is the comment that suppresses reprolint diagnostics:
//
//	x := weird() //reprolint:ignore reason...
//
// It applies to its own source line and, when it is a standalone
// comment, to the line below it. Every use must carry a reason; the
// directive is an escape hatch for the rare case a human has proven the
// flagged pattern safe, not a way to mute the suite.
const IgnoreDirective = "reprolint:ignore"

// IgnoredLines returns the set of line numbers in file suppressed by
// IgnoreDirective comments.
func IgnoredLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, IgnoreDirective) {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}
