// Package tickunits enforces the unit discipline around
// internal/simtime.Ticks. Virtual time runs on a 512 MHz tick base, so
// a nanosecond is SUB-tick: the naive constant `Ticks(TickHz/1e9)` is
// zero, and any code that treats a nanosecond count as a tick count (or
// vice versa) silently drops or inflates every duration it touches —
// the exact bug class simtime avoided by refusing to define a
// Nanosecond constant. The conversions that round correctly are
// simtime.FromNanos/FromMicros/FromDuration and Ticks.Nanos/Micros/
// Duration; this analyzer makes every other crossing a diagnostic:
//
//   - Ticks(d) where d is a time.Duration — nanoseconds reinterpreted
//     as ticks, off by the tick rate. Use simtime.FromDuration.
//   - Ticks(d.Nanoseconds()), Ticks(d.Microseconds()), ... — same bug
//     through an integer detour. Use simtime.FromNanos/FromMicros.
//   - time.Duration(t) where t is Ticks — ticks reinterpreted as
//     nanoseconds. Use t.Duration().
//   - a Ticks-typed constant whose initializer divides to zero — the
//     sub-tick truncation that motivated the missing Nanosecond
//     constant, now statically impossible to reintroduce.
//
// Scalar conversions like Ticks(n) for plain counts stay legal: ticks
// are an integer unit and arithmetic on them is the normal currency of
// the simulator. Only crossings to and from the nanosecond world are
// flagged. The simtime package itself is exempt — it owns the
// conversions.
package tickunits

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "tickunits",
	Doc: "forbid unit-crossing between simtime.Ticks and the nanosecond world except through " +
		"FromNanos/FromMicros/FromDuration and Nanos/Micros/Duration; " +
		"at 512 MHz a nanosecond is sub-tick and naive conversions truncate",
	Run: run,
}

// isTicks reports whether t (after unaliasing) is the simtime Ticks
// type — matched by name and package base so fixture stubs qualify.
func isTicks(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Ticks" && obj.Pkg() != nil &&
		path.Base(obj.Pkg().Path()) == "simtime"
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Duration" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "time"
}

// durationUnitMethods are the time.Duration accessors that read the
// duration as a bare integer or float count — the values that must not
// be fed to a Ticks conversion.
var durationUnitMethods = map[string]string{
	"Nanoseconds":  "FromNanos",
	"Microseconds": "FromMicros",
	"Milliseconds": "FromNanos",
	"Seconds":      "FromNanos",
	"Minutes":      "FromNanos",
	"Hours":        "FromNanos",
}

func run(pass *analysis.Pass) (any, error) {
	if path.Base(pass.Pkg.Path()) == "simtime" {
		// simtime owns the conversions; its From*/Nanos bodies are the
		// one sanctioned crossing point.
		return nil, nil
	}
	for _, file := range pass.Files {
		ignored := analysis.IgnoredLines(pass.Fset, file)
		report := func(pos token.Pos, format string, args ...any) {
			if !ignored[pass.Fset.Position(pos).Line] {
				pass.Reportf(pos, format, args...)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, report, x)
			case *ast.GenDecl:
				checkConstDecl(pass, report, x)
			}
			return true
		})
	}
	return nil, nil
}

type reporter func(pos token.Pos, format string, args ...any)

// conversionTarget returns the type a single-argument call converts to,
// or nil when the call is a real function call.
func conversionTarget(pass *analysis.Pass, call *ast.CallExpr) types.Type {
	if len(call.Args) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	return tv.Type
}

func checkConversion(pass *analysis.Pass, report reporter, call *ast.CallExpr) {
	target := conversionTarget(pass, call)
	if target == nil {
		return
	}
	arg := ast.Unparen(call.Args[0])
	argType := pass.TypesInfo.TypeOf(arg)
	switch {
	case isTicks(target):
		if argType != nil && isDuration(argType) {
			report(call.Pos(), "Ticks(time.Duration) reinterprets nanoseconds as ticks "+
				"(off by the 512 MHz tick rate); use simtime.FromDuration")
			return
		}
		// Ticks(d.Nanoseconds()) and friends: the same crossing through
		// an integer detour.
		if inner, ok := arg.(*ast.CallExpr); ok {
			if sel, ok := inner.Fun.(*ast.SelectorExpr); ok {
				recv := pass.TypesInfo.TypeOf(sel.X)
				if recv != nil && isDuration(recv) {
					if fix, ok := durationUnitMethods[sel.Sel.Name]; ok {
						report(call.Pos(), "Ticks(Duration.%s()) treats a unit count as ticks; "+
							"use simtime.%s (or FromDuration)", sel.Sel.Name, fix)
						return
					}
				}
			}
		}
	case isDuration(target):
		if argType != nil && isTicks(argType) {
			report(call.Pos(), "time.Duration(Ticks) reinterprets ticks as nanoseconds; "+
				"use the Ticks.Duration method")
		}
	}
}

// checkConstDecl flags Ticks-typed constants whose division initializer
// truncated to zero — the sub-tick constant bug.
func checkConstDecl(pass *analysis.Pass, report reporter, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
			if !ok || !isTicks(obj.Type()) {
				continue
			}
			div, ok := ast.Unparen(vs.Values[i]).(*ast.BinaryExpr)
			if !ok || div.Op.String() != "/" {
				continue
			}
			if constant.Sign(obj.Val()) == 0 {
				num := pass.TypesInfo.Types[div.X]
				if num.Value != nil && constant.Sign(num.Value) != 0 {
					report(name.Pos(), "Ticks constant %s divides to zero: the unit is sub-tick "+
						"at 512 MHz, so this constant silently drops every duration it scales; "+
						"use simtime.FromNanos at the use sites instead", name.Name)
				}
			}
		}
	}
}
