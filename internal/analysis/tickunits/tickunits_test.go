package tickunits_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tickunits"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", tickunits.Analyzer, "tu")
}
