// Package tu exercises the tickunits analyzer: every crossing between
// simtime.Ticks and the nanosecond world outside the sanctioned
// conversions is a diagnostic; scalar tick arithmetic stays legal.
package tu

import (
	"time"

	"simtime"
)

// durationToTicks reinterprets nanoseconds as ticks.
func durationToTicks(d time.Duration) simtime.Ticks {
	return simtime.Ticks(d) // want `Ticks\(time.Duration\) reinterprets nanoseconds as ticks`
}

// nanosDetour is the same bug through an integer detour.
func nanosDetour(d time.Duration) simtime.Ticks {
	return simtime.Ticks(d.Nanoseconds()) // want `Ticks\(Duration.Nanoseconds\(\)\) treats a unit count as ticks`
}

// microsDetour points at FromMicros specifically.
func microsDetour(d time.Duration) simtime.Ticks {
	return simtime.Ticks(d.Microseconds()) // want `Ticks\(Duration.Microseconds\(\)\) treats a unit count as ticks`
}

// ticksToDuration reinterprets ticks as nanoseconds.
func ticksToDuration(t simtime.Ticks) time.Duration {
	return time.Duration(t) // want `time.Duration\(Ticks\) reinterprets ticks as nanoseconds`
}

// Nanosecond reintroduces the sub-tick constant bug simtime refused to
// ship: TickHz/1e9 truncates to zero.
const Nanosecond simtime.Ticks = simtime.TickHz / 1_000_000_000 // want `Ticks constant Nanosecond divides to zero`

// Millisecond divides to a nonzero value: legal.
const Millisecond simtime.Ticks = simtime.TickHz / 1_000

// scalarConversions are the simulator's normal currency: no diagnostic.
func scalarConversions(n int, bytes int64) simtime.Ticks {
	per := simtime.Ticks(4)
	return simtime.Ticks(n)*per + simtime.Ticks(bytes/64)
}

// sanctioned crossings go through the conversion API: no diagnostic.
func sanctioned(d time.Duration, t simtime.Ticks) (simtime.Ticks, time.Duration) {
	return simtime.FromDuration(d), t.Duration()
}

// suppressed: an ignore directive keeps a deliberate crossing.
func suppressed(d time.Duration) simtime.Ticks {
	return simtime.Ticks(d) //reprolint:ignore tickunits fixture: deliberate raw crossing
}
