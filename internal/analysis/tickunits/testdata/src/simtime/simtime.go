// Package simtime is a fixture stub of the module's virtual-time
// package: the tickunits analyzer matches the Ticks type by name and
// package base, and exempts this package (it owns the conversions, so
// FromDuration's own body is legal).
package simtime

import "time"

const TickHz = 512_000_000

type Ticks int64

const (
	Microsecond Ticks = TickHz / 1_000_000
	Second      Ticks = TickHz
)

func FromNanos(ns int64) Ticks {
	sec, rem := ns/1_000_000_000, ns%1_000_000_000
	return Ticks(sec)*Second + Ticks((rem*TickHz+500_000_000)/1_000_000_000)
}

func FromDuration(d time.Duration) Ticks { return FromNanos(d.Nanoseconds()) }

func (t Ticks) Nanos() int64 { return int64(t) * 1_000_000_000 / TickHz }

func (t Ticks) Duration() time.Duration { return time.Duration(t.Nanos()) }
