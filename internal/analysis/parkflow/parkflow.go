// Package parkflow checks the scheduler's parking discipline over the
// whole-module call graph. The event-driven runtime (internal/sched)
// runs every rank as a cooperative task; blocking operations —
// sched.Gate.Wait, Queue.Pop/Push, Task.Yield, Task.Join — hand the
// baton back to the scheduler and park the calling goroutine until it
// is re-dispatched. That only works ON a task goroutine: parked from
// the host (a test body, a driver loop), the primitive blocks a
// goroutine the scheduler never dispatches again, and the run
// deadlocks in a way the deadlock detector cannot even see.
//
// The analyzer computes the park-capable set — every function from
// which a parking primitive is reachable over static and interface
// edges (dynamic function-value edges are excluded: World.Run invoking
// a workload body through a func value does not make World.Run itself
// park on the host) — and reports call sites where a function with no
// task context calls into that set. Task context means the function
// can prove it runs on a task: a parameter or receiver that is a
// *sched.Task or a struct transitively carrying one (*mpi.Rank and the
// workload body signatures qualify), or an enclosing literal that
// does. Holding a Gate, Queue or Scheduler does NOT count — those are
// the synchronization objects themselves, owned by host code too, so
// the walk deliberately refuses to recurse into sched's own types.
//
// It also orders multi-gate acquire paths: for every function body the
// sequence of distinct gates (identified by owning-type.field or
// package-level variable) passed to Gate.Wait is recorded, and two
// functions acquiring the same pair of gates in opposite orders are
// both reported — the static shadow of the Gate-cycle deadlock
// internal/sched's Run documents as unrecoverable.
//
// The sched package itself (and its tests, which drive the scheduler
// from the host by design) is exempt.
package parkflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "parkflow",
	Doc: "require task context (a *sched.Task or task-carrying struct in scope) at every call " +
		"that can reach a parking primitive, and flag gate pairs acquired in conflicting " +
		"order; parking off-task or in a gate cycle deadlocks the scheduler",
	Run: run,
}

// primitives are the parking entry points of internal/sched, keyed
// "ReceiverType.Method".
var primitives = map[string]bool{
	"Gate.Wait":  true,
	"Queue.Pop":  true,
	"Queue.Push": true,
	"Task.Yield": true,
	"Task.Join":  true,
}

// schedPkg reports whether a package path names the scheduler package
// (or its external test package), matched by base so fixture stubs
// qualify.
func schedPkg(pkgPath string) bool {
	return path.Base(strings.TrimSuffix(pkgPath, "_test")) == "sched"
}

// isPrimitive reports whether fn is a parking primitive.
func isPrimitive(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !schedPkg(fn.Pkg().Path()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil {
		return false
	}
	return primitives[recv.Obj().Name()+"."+fn.Name()]
}

// namedOf unwraps pointers and aliases down to the named type, nil if
// there is none. Generic instantiations (Queue[T]) unwrap to their
// origin.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Origin()
		default:
			return nil
		}
	}
}

// isSchedTask reports whether t is (a pointer to) sched.Task.
func isSchedTask(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Task" && obj.Pkg() != nil && schedPkg(obj.Pkg().Path())
}

// carriesTask reports whether a value of type t transitively contains a
// *sched.Task — the proof the holder runs on (or owns) a task. The
// walk refuses to recurse into sched's other types: a Gate or Queue
// internally points at tasks, but holding one is exactly the host-side
// pattern the analyzer exists to catch.
func carriesTask(t types.Type, seen map[*types.Named]bool) bool {
	switch tt := types.Unalias(t).(type) {
	case *types.Pointer:
		return carriesTask(tt.Elem(), seen)
	case *types.Slice:
		return carriesTask(tt.Elem(), seen)
	case *types.Array:
		return carriesTask(tt.Elem(), seen)
	case *types.Named:
		if isSchedTask(tt) {
			return true
		}
		obj := tt.Obj()
		if obj.Pkg() != nil && schedPkg(obj.Pkg().Path()) {
			return false // Gate, Queue, Scheduler: infrastructure, not context
		}
		if seen[tt.Origin()] {
			return false
		}
		seen[tt.Origin()] = true
		return carriesTask(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if carriesTask(tt.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// signatureOf returns a node's signature, nil when unavailable.
func signatureOf(n *callgraph.Node) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil && n.Pkg != nil {
		sig, _ := types.Unalias(n.Pkg.TypesInfo.TypeOf(n.Lit)).(*types.Signature)
		return sig
	}
	return nil
}

// hasTaskContext reports whether n (or a lexically enclosing function,
// for literals) receives task context through its signature.
func hasTaskContext(n *callgraph.Node) bool {
	for cur := n; cur != nil; cur = cur.Enclosing {
		sig := signatureOf(cur)
		if sig == nil {
			continue
		}
		if recv := sig.Recv(); recv != nil && carriesTask(recv.Type(), map[*types.Named]bool{}) {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if carriesTask(sig.Params().At(i).Type(), map[*types.Named]bool{}) {
				return true
			}
		}
	}
	return false
}

// moduleFacts is the cached whole-module computation: the park-capable
// set and the global gate-order graph.
type moduleFacts struct {
	graph       *callgraph.Graph
	parkCapable map[*callgraph.Node]bool
	// orders maps "gateA\x00gateB" to the sorted IDs of functions that
	// acquire gateA before gateB.
	orders map[string][]string
	// waits lists, per node, its ordered gate acquisitions.
	waits map[*callgraph.Node][]gateWait
}

type gateWait struct {
	key  string
	site token.Pos
}

const cacheKey = "parkflow"

func factsOf(pass *analysis.Pass) *moduleFacts {
	return pass.Module.Cache(cacheKey, func() any {
		g := callgraph.Of(pass)
		f := &moduleFacts{
			graph:  g,
			orders: make(map[string][]string),
			waits:  make(map[*callgraph.Node][]gateWait),
		}
		var targets []*callgraph.Node
		for _, n := range g.Nodes {
			if n.Fn != nil && isPrimitive(n.Fn) {
				targets = append(targets, n)
			}
		}
		f.parkCapable = g.ReachesInverse(targets, func(e callgraph.Edge) bool {
			return e.Kind != callgraph.Dynamic
		})
		for _, n := range g.Nodes {
			if n.Body == nil || n.Pkg == nil {
				continue
			}
			waits := collectGateWaits(n)
			f.waits[n] = waits
			for i := 0; i < len(waits); i++ {
				for j := i + 1; j < len(waits); j++ {
					if waits[i].key == waits[j].key {
						continue
					}
					k := waits[i].key + "\x00" + waits[j].key
					f.orders[k] = append(f.orders[k], n.ID)
				}
			}
		}
		for k := range f.orders {
			sort.Strings(f.orders[k])
		}
		return f
	}).(*moduleFacts)
}

// collectGateWaits lists the Gate.Wait sites of n's body in source
// order, keyed by identifiable gate (first acquisition per gate only).
func collectGateWaits(n *callgraph.Node) []gateWait {
	var out []gateWait
	seen := map[string]bool{}
	for _, e := range n.Out {
		if e.Callee.Fn == nil || !isPrimitive(e.Callee.Fn) || e.Callee.Fn.Name() != "Wait" {
			continue
		}
		sel, ok := ast.Unparen(e.Site.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		key, ok := gateKey(n.Pkg, sel.X)
		if !ok || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, gateWait{key: key, site: e.Site.Pos()})
	}
	return out
}

// gateKey names a gate expression stably: a field selection keys as
// "OwnerType.field", a package-level variable as "pkgpath.name".
// Locals and parameters are skipped — their aliasing across functions
// is unknowable, so ordering them would only manufacture noise.
func gateKey(pkg *analysis.Package, expr ast.Expr) (string, bool) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(sel.Recv()); named != nil {
				return named.Obj().Name() + "." + x.Sel.Name, true
			}
		}
		if obj, ok := pkg.TypesInfo.Uses[x.Sel].(*types.Var); ok && pkgLevel(obj) {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
	case *ast.Ident:
		if obj, ok := pkg.TypesInfo.Uses[x].(*types.Var); ok && pkgLevel(obj) {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
	}
	return "", false
}

func pkgLevel(obj *types.Var) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func run(pass *analysis.Pass) (any, error) {
	if schedPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	facts := factsOf(pass)
	ignored := make(map[string]map[int]bool)
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		ignored[name] = analysis.IgnoredLines(pass.Fset, file)
	}
	suppressed := func(pos token.Pos) bool {
		p := pass.Fset.Position(pos)
		return ignored[p.Filename][p.Line]
	}
	for _, n := range facts.graph.Nodes {
		if n.Pkg == nil || n.Pkg.PkgPath != pass.Pkg.Path() || n.Body == nil {
			continue
		}
		// Park-context check: non-task contexts must not call into the
		// park-capable set.
		if !hasTaskContext(n) {
			reported := map[token.Pos]bool{}
			for _, e := range n.Out {
				if e.Kind == callgraph.Dynamic || !facts.parkCapable[e.Callee] {
					continue
				}
				pos := e.Site.Pos()
				if reported[pos] || suppressed(pos) {
					continue
				}
				reported[pos] = true
				pass.Reportf(pos, "call to park-capable %s without task context: parking "+
					"primitives must run on a scheduler task; thread a *sched.Task (or a "+
					"task-carrying struct like *mpi.Rank) into %s", e.Callee.ID, describeNode(n))
			}
		}
		// Gate-order check: report the acquisition that completes an
		// inversion against some other function.
		waits := facts.waits[n]
		for i := 0; i < len(waits); i++ {
			for j := i + 1; j < len(waits); j++ {
				if waits[i].key == waits[j].key {
					continue
				}
				inverse := facts.orders[waits[j].key+"\x00"+waits[i].key]
				var others []string
				for _, id := range inverse {
					if id != n.ID {
						others = append(others, id)
					}
				}
				if len(others) == 0 || suppressed(waits[j].site) {
					continue
				}
				pass.Reportf(waits[j].site, "gates %s and %s acquired in conflicting order: "+
					"%s waits on %s first here, but %s waits in the opposite order — a "+
					"circular wait deadlocks the scheduler beyond recovery",
					waits[i].key, waits[j].key, describeNode(n), waits[i].key, strings.Join(others, ", "))
			}
		}
	}
	return nil, nil
}

// describeNode names a node for messages: function ID, or "a function
// literal in <enclosing>" for literals.
func describeNode(n *callgraph.Node) string {
	if n.Lit == nil {
		return n.ID
	}
	if n.Enclosing != nil {
		return fmt.Sprintf("the function literal in %s", n.Enclosing.ID)
	}
	return n.ID
}
