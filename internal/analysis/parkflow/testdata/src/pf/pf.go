// Package pf exercises the parkflow analyzer: park-capable calls need
// task context, and gate pairs must be acquired in one global order.
package pf

import "sched"

// Rank mirrors mpi.Rank: a task-carrying struct, so its methods have
// task context.
type Rank struct {
	task *sched.Task
	in   *sched.Queue
}

// recv parks through the rank's own task: legal.
func (r *Rank) recv() (int, bool) {
	return r.in.Pop(r.task)
}

// helper parks through an explicit task parameter: legal in itself,
// park-capable for its callers.
func helper(t *sched.Task, g *sched.Gate) {
	g.Wait(t)
}

// body mirrors a workload literal: the Rank parameter is task context.
func body(r *Rank) {
	r.recv()
	r.task.Yield()
}

// hostDirect calls a primitive with no task anywhere in its signature:
// the goroutine would park and never be dispatched again.
func hostDirect(g *sched.Gate) {
	g.Wait(nil) // want `call to park-capable sched.\(\*Gate\).Wait without task context`
}

// hostIndirect reaches the primitive through a park-capable helper —
// the interprocedural case.
func hostIndirect(g *sched.Gate) {
	helper(nil, g) // want `call to park-capable pf.helper without task context`
}

// hostPoll drains a queue from the host: Pop can park, TryPush cannot.
func hostPoll(q *sched.Queue) {
	q.Pop(nil) // want `call to park-capable sched.\(\*Queue\).Pop without task context`
	q.TryPush(1)
	_ = q.Len()
}

// hostDrive calls only non-parking surface: legal.
func hostDrive(g *sched.Gate, q *sched.Queue) {
	g.Open()
	_ = g.Opened()
	q.TryPush(2)
}

// suppressedHost keeps a deliberate host-side wait via the directive.
func suppressedHost(g *sched.Gate) {
	g.Wait(nil) //reprolint:ignore parkflow fixture: deliberate host-side wait
}

// Host owns two gates; lockAB and lockBA acquire them in opposite
// orders — the static shadow of a Gate-cycle deadlock. Both sides of
// the inversion are reported, at the acquisition completing it.
type Host struct {
	a *sched.Gate
	b *sched.Gate
}

func lockAB(h *Host, t *sched.Task) {
	h.a.Wait(t)
	h.b.Wait(t) // want `gates Host.a and Host.b acquired in conflicting order`
}

func lockBA(h *Host, t *sched.Task) {
	h.b.Wait(t)
	h.a.Wait(t) // want `gates Host.b and Host.a acquired in conflicting order`
}

// lockABAgain matches lockAB's order: consistent, so only the
// inversion against lockBA is reported.
func lockABAgain(h *Host, t *sched.Task) {
	h.a.Wait(t)
	h.b.Wait(t) // want `gates Host.a and Host.b acquired in conflicting order`
}
