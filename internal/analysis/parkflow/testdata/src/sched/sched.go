// Package sched is a fixture stub of the module's event scheduler: the
// parkflow analyzer matches the parking primitives by package base,
// receiver type and method name, so this stub's Gate.Wait, Queue.Pop/
// Push and Task.Yield/Join are primitives exactly like the real ones.
package sched

type Task struct{ rank int }

func (t *Task) Yield()       {}
func (t *Task) Join(o *Task) {}

type Gate struct{ opened bool }

func (g *Gate) Wait(t *Task) {}
func (g *Gate) Open()        { g.opened = true }
func (g *Gate) Opened() bool { return g != nil && g.opened }

type Queue struct{ buf []int }

func (q *Queue) Pop(t *Task) (int, bool)  { return 0, false }
func (q *Queue) Push(t *Task, v int) bool { return true }
func (q *Queue) TryPush(v int) bool       { return true }
func (q *Queue) Len() int                 { return len(q.buf) }
