package parkflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/parkflow"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", parkflow.Analyzer, "pf")
}
