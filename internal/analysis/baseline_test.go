package analysis

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

func baselineFindings() []Finding {
	return []Finding{
		{Analyzer: "maporder", Pos: token.Position{Filename: "internal/a/a.go", Line: 10}, Message: "append collects ks in map iteration order"},
		{Analyzer: "maporder", Pos: token.Position{Filename: "internal/a/a.go", Line: 44}, Message: "append collects ks in map iteration order"},
		{Analyzer: "nilspec", Pos: token.Position{Filename: "internal/b/b.go", Line: 7}, Message: "method X must begin with a nil receiver guard"},
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := NewBaseline(baselineFindings())
	// Two findings share (analyzer, file, message): one suppression.
	if len(b.Suppressions) != 2 {
		t.Fatalf("got %d suppressions, want 2 (deduplicated): %+v", len(b.Suppressions), b.Suppressions)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	again, err := DecodeBaseline(data)
	if err != nil {
		t.Fatalf("decoding encoded baseline: %v", err)
	}
	data2, err := again.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("baseline round trip not byte-identical:\n%s\n----\n%s", data, data2)
	}
}

func TestBaselineFilterIsLineNumberFree(t *testing.T) {
	b := NewBaseline(baselineFindings())
	// The same findings at entirely different lines stay suppressed:
	// baselines must survive unrelated edits shifting the file.
	shifted := baselineFindings()
	for i := range shifted {
		shifted[i].Pos.Line += 100
	}
	if rest := b.Filter(shifted); len(rest) != 0 {
		t.Fatalf("line-shifted findings not suppressed: %+v", rest)
	}
	// A genuinely new finding passes through.
	novel := Finding{Analyzer: "maporder", Pos: token.Position{Filename: "internal/c/c.go", Line: 1}, Message: "append collects out in map iteration order"}
	rest := b.Filter(append(baselineFindings(), novel))
	if len(rest) != 1 || rest[0].Pos.Filename != "internal/c/c.go" {
		t.Fatalf("new finding filtered incorrectly: %+v", rest)
	}
}

func TestBaselineVersionGate(t *testing.T) {
	if _, err := DecodeBaseline([]byte(`{"version":2,"suppressions":[]}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
	if _, err := DecodeBaseline([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
