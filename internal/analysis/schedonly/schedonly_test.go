package schedonly_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/schedonly"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", schedonly.Analyzer, "sim")
}

// TestExemptPackagesMayUseConcurrency pins the escape for host-side
// code: a package listed in ExemptPkgs (internal/sched itself,
// internal/sweep's worker pool) gets no diagnostics at all.
func TestExemptPackagesMayUseConcurrency(t *testing.T) {
	schedonly.ExemptPkgs["host"] = true
	defer delete(schedonly.ExemptPkgs, "host")
	analysistest.Run(t, "testdata", schedonly.Analyzer, "host")
}

// TestSweepdExemptionIsScoped pins the sweep-service escape: the
// repro/internal/sweepd path is exempt (its queue, runner goroutine and
// handler concurrency are host infrastructure), but a daemon-shaped
// package at any other path — the simd fixture — is flagged construct
// for construct, and no simulation package rode along into the set.
func TestSweepdExemptionIsScoped(t *testing.T) {
	if !schedonly.ExemptPkgs["repro/internal/sweepd"] {
		t.Fatal("repro/internal/sweepd missing from ExemptPkgs")
	}
	for _, p := range []string{
		"repro/internal/mpi", "repro/internal/ib", "repro/internal/node",
		"repro/internal/sim", "repro/internal/cas",
	} {
		if schedonly.ExemptPkgs[p] {
			t.Errorf("simulation package %s must not be exempt", p)
		}
	}
	analysistest.Run(t, "testdata", schedonly.Analyzer, "simd")
}
