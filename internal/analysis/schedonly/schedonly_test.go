package schedonly_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/schedonly"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", schedonly.Analyzer, "sim")
}

// TestExemptPackagesMayUseConcurrency pins the escape for host-side
// code: a package listed in ExemptPkgs (internal/sched itself,
// internal/sweep's worker pool) gets no diagnostics at all.
func TestExemptPackagesMayUseConcurrency(t *testing.T) {
	schedonly.ExemptPkgs["host"] = true
	defer delete(schedonly.ExemptPkgs, "host")
	analysistest.Run(t, "testdata", schedonly.Analyzer, "host")
}
