// Package host is a fixture proving exempted packages may use raw
// concurrency freely: the test registers it in ExemptPkgs, so none of
// these lines may produce a diagnostic.
package host

import "sync"

func fanOut(jobs []func()) {
	var wg sync.WaitGroup
	results := make(chan struct{}, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
			results <- struct{}{}
		}(j)
	}
	wg.Wait()
	select {
	case <-results:
	default:
	}
}
