// Package sim exercises the schedonly analyzer: raw goroutines,
// channels, select and sync.WaitGroup are flagged in simulation code.
package sim

import "sync"

// mailbox demonstrates that channel types are flagged wherever they
// appear, not just in make calls.
var mailbox chan int // want `raw channel in simulation code`

func work() {}

func spawn() {
	go work() // want `go statement spawns a goroutine outside internal/sched`
}

func pipes() {
	ch := make(chan string, 4) // want `raw channel in simulation code`
	_ = ch
	var wg sync.WaitGroup // want `sync\.WaitGroup synchronises raw goroutines`
	wg.Add(1)
	wg.Done()
	wg.Wait()
}

func pick(a chan int) int { // want `raw channel in simulation code`
	select { // want `select races goroutines`
	case v := <-a:
		return v
	default:
		return 0
	}
}

func guarded() *sync.Mutex {
	// Mutexes stay legal: cooperative tasks never contend, and host-side
	// telemetry snapshots may still want one.
	return new(sync.Mutex)
}

func suppressed() {
	done := make(chan struct{}) //reprolint:ignore fixture proving the escape hatch
	close(done)
}
