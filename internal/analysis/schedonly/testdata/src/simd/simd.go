// Package simd is a daemon-shaped package — a job queue, a runner
// goroutine, a select loop — living at a simulation package path. It
// pins that the internal/sweepd exemption is scoped to that exact
// import path: the same constructs anywhere else stay flagged.
package simd

type job struct{ id int }

var queue = make(chan job, 8) // want `raw channel in simulation code`

func runner() {
	for j := range queue {
		_ = j
	}
}

func start() {
	go runner() // want `go statement spawns a goroutine outside internal/sched`
}

func trySubmit(j job, done chan struct{}) bool { // want `raw channel in simulation code`
	select { // want `select races goroutines`
	case queue <- j:
		return true
	case <-done:
		return false
	}
}
