// Package schedonly forbids raw Go concurrency — go statements,
// channel types, select, sync.WaitGroup — everywhere except the
// packages that are allowed to own it. Since the event-scheduler
// refactor, every simulated rank runs as a cooperative task on
// internal/sched, and the execution schedule is a pure function of
// virtual time precisely because nothing ever blocks on the Go runtime
// scheduler. A single raw goroutine or channel in a simulation package
// reintroduces GOMAXPROCS-dependent interleavings, which breaks the
// byte-identical same-seed guarantee in exactly the way the old
// one-goroutine-per-rank engine did — so the ban is enforced at
// analysis time, not rediscovered as a flaky golden diff.
//
// Blocking simulation code should use sched.Queue and sched.Gate (which
// park the task and hand the baton back to the scheduler) and spawn
// concurrent work with Scheduler.Spawn / Task.Join.
package schedonly

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// ExemptPkgs are the packages permitted to use raw concurrency:
// internal/sched because it is where the cooperative tasks are
// implemented (its goroutines never run concurrently — the baton
// protocol keeps exactly one runnable), internal/sweep because its
// worker pool parallelises whole independent simulations on the host
// and never reaches inside one, and internal/sweepd because the sweep
// service is host-side infrastructure around the engine (HTTP handlers,
// a bounded job queue, a runner goroutine) that likewise never executes
// inside a simulated world.
var ExemptPkgs = map[string]bool{
	"repro/internal/sched":  true,
	"repro/internal/sweep":  true,
	"repro/internal/sweepd": true,
}

// exemptPrefixes extends the exemption to host-side tooling trees:
// the analysis framework itself and the command mains, none of which
// execute inside a simulated world.
var exemptPrefixes = []string{
	"repro/internal/analysis",
	"repro/cmd/",
}

var Analyzer = &analysis.Analyzer{
	Name: "schedonly",
	Doc: "forbid raw goroutines, channels, select and sync.WaitGroup in simulation " +
		"packages; all blocking must go through internal/sched so the schedule " +
		"stays a pure function of virtual time",
	Run: run,
}

func exempt(path string) bool {
	if ExemptPkgs[path] {
		return true
	}
	for _, p := range exemptPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if exempt(strings.TrimSuffix(pass.Pkg.Path(), "_test")) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ignored := analysis.IgnoredLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			var node ast.Node
			var msg string
			switch n := n.(type) {
			case *ast.GoStmt:
				node, msg = n, "go statement spawns a goroutine outside internal/sched; use Scheduler.Spawn and Task.Join so the event scheduler owns the interleaving"
			case *ast.ChanType:
				node, msg = n, "raw channel in simulation code blocks on the Go runtime scheduler; use sched.Queue (or sched.Gate) so waits are deterministic events"
			case *ast.SelectStmt:
				node, msg = n, "select races goroutines against each other nondeterministically; sequence the cases as scheduler events instead"
			case *ast.SelectorExpr:
				ident, ok := n.X.(*ast.Ident)
				if !ok || n.Sel.Name != "WaitGroup" {
					return true
				}
				pkg, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
				if !ok || pkg.Imported().Path() != "sync" {
					return true
				}
				node, msg = n, "sync.WaitGroup synchronises raw goroutines; use Task.Join (or a sched.Gate) to wait for scheduler tasks"
			default:
				return true
			}
			if !ignored[pass.Fset.Position(node.Pos()).Line] {
				pass.Reportf(node.Pos(), "%s", msg)
			}
			return true
		})
	}
	return nil, nil
}
