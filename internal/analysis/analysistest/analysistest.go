// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// on the repo's own framework. A fixture line carrying
//
//	x := bad() // want `regexp`
//
// must produce exactly one diagnostic on that line whose message
// matches the back-quoted regular expression (several back-quoted
// expectations may follow one want); a diagnostic on a line with no
// matching expectation, or an expectation no diagnostic matched, fails
// the test. Fixture trees live under testdata so real reprolint runs
// (which skip testdata directories) never see their deliberate
// violations.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads testdata/src, analyzes the named fixture packages (import
// paths relative to src, e.g. "a"), and reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdata, a, false, pkgPaths)
}

// RunWithSuggestedFixes is Run plus golden verification of the
// analyzer's suggested fixes: after the // want expectations are
// checked, every fix the analyzer emitted is applied with
// analysis.ApplyFixes and each rewritten file must be byte-identical to
// its committed <file>.golden sibling. A fixture package with fixes and
// no golden, or a golden that no longer matches, fails the test — the
// same shape as the repo's BENCH golden gating, applied to the fixer.
func RunWithSuggestedFixes(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdata, a, true, pkgPaths)
}

func run(t *testing.T, testdata string, a *analysis.Analyzer, checkFixes bool, pkgPaths []string) {
	t.Helper()
	loader := analysis.NewLoader(testdata+"/src", "", true)
	pkgs, err := loader.Load()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, want := range pkgPaths {
		var pkg *analysis.Package
		for _, p := range pkgs {
			if p.PkgPath == want {
				pkg = p
				break
			}
		}
		if pkg == nil {
			t.Errorf("fixture package %q not found under %s/src", want, testdata)
			continue
		}
		findings := runPackage(t, a, pkg)
		if checkFixes {
			verifyFixes(t, pkg.PkgPath, findings)
		}
	}
}

// verifyFixes applies the findings' fixes and compares each rewritten
// file against its committed .golden sibling.
func verifyFixes(t *testing.T, pkgPath string, findings []analysis.Finding) {
	t.Helper()
	fixed, err := analysis.ApplyFixes(findings)
	if err != nil {
		t.Errorf("%s: applying suggested fixes: %v", pkgPath, err)
		return
	}
	if len(fixed) == 0 {
		t.Errorf("%s: analyzer emitted no suggested fixes to verify", pkgPath)
		return
	}
	for _, file := range sortedKeys(fixed) {
		golden := file + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("%s: fixes rewrite %s but no golden is committed: %v", pkgPath, file, err)
			continue
		}
		if got := fixed[file]; !bytes.Equal(got, want) {
			t.Errorf("%s: applying fixes to %s does not reproduce %s:\n--- got ---\n%s\n--- want ---\n%s",
				pkgPath, file, golden, got, want)
		}
	}
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func runPackage(t *testing.T, a *analysis.Analyzer, pkg *analysis.Package) []analysis.Finding {
	t.Helper()
	expectations, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("%s: %v", pkg.PkgPath, err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg.PkgPath, err)
	}
	for _, f := range findings {
		if !matchExpectation(expectations, f) {
			t.Errorf("%s: unexpected diagnostic: %s", pkg.PkgPath, f)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", pkg.PkgPath, e.file, e.line, e.re)
		}
	}
	return findings
}

func matchExpectation(expectations []*expectation, f analysis.Finding) bool {
	for _, e := range expectations {
		if !e.matched && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile("`[^`]*`")

// parseWants extracts // want expectations from every comment in the
// package. Each back-quoted token after "want" is one expected
// diagnostic on the comment's line.
func parseWants(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				exps, err := parseComment(pkg, c)
				if err != nil {
					return nil, err
				}
				out = append(out, exps...)
			}
		}
	}
	return out, nil
}

func parseComment(pkg *analysis.Package, c *ast.Comment) ([]*expectation, error) {
	// Only comments of the exact form `// want ...` are expectations;
	// prose that merely contains the word "want" is not.
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimLeft(text, " \t")
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := text[len("want "):]
	tokens := wantRE.FindAllString(rest, -1)
	pos := pkg.Fset.Position(c.Pos())
	if len(tokens) == 0 {
		return nil, fmt.Errorf("%s: want comment with no back-quoted pattern: %s", pos, text)
	}
	var out []*expectation
	for _, tok := range tokens {
		re, err := regexp.Compile(tok[1 : len(tok)-1])
		if err != nil {
			return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, tok, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
	}
	return out, nil
}
