// Package iface is a callgraph fixture exercising all three edge
// kinds: static calls, conservative interface dispatch, and dynamic
// function-value dispatch.
package iface

// Speaker is implemented by Dog and Cat below; Robot deliberately does
// not implement it (wrong signature).
type Speaker interface {
	Speak() string
}

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{}

func (*Cat) Speak() string { return "meow" }

type Robot struct{}

// Speak on Robot has a different signature, so Robot is not a Speaker
// and must not appear among the dispatch candidates.
func (Robot) Speak(volume int) string { return "beep" }

// Announce calls through the interface: conservative dispatch must
// resolve to Dog.Speak and (*Cat).Speak, not Robot.Speak.
func Announce(s Speaker) string { return s.Speak() }

// direct is a static callee.
func direct() string { return "direct" }

// indirect is address-taken in Wire and must appear as a dynamic
// candidate at the f() site.
func indirect() string { return "indirect" }

// notTaken has a matching signature but is never address-taken, so the
// dynamic site must not dispatch to it.
func notTaken() string { return "hidden" }

// Wire exercises static and dynamic calls.
func Wire() string {
	out := direct()
	f := indirect
	out += f()
	out += Announce(Dog{})
	lit := func() string { return "lit" }
	out += lit()
	return out
}
