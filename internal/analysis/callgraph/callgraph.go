// Package callgraph builds a deterministic whole-module call graph over
// the packages an analysis.Loader produced, so interprocedural
// analyzers (timeflow's taint pass, parkflow's park-capability
// reachability) can ask "what may this call reach?" instead of pattern
// matching on call sites.
//
// The graph is conservative (sound over-approximation, never missing a
// possible call) along three edge kinds:
//
//   - Static: direct calls to a declared function or to a method on a
//     concrete receiver. These are exact.
//   - Interface: calls through an interface method dispatch to every
//     module type whose method set implements the interface and that
//     declares the method — class-hierarchy analysis over the module.
//   - Dynamic: calls through a function-typed value dispatch to every
//     address-taken module function or literal with an identical
//     signature. A function is address-taken when it is referenced
//     anywhere other than the operator position of a call.
//
// Determinism is part of the contract: nodes are keyed by stable IDs
// (import path + name, or file position for literals), the node list is
// sorted by ID, and each node's edges appear in call-site source order
// with dispatch candidates sorted by callee ID — so two loads of the
// same module render byte-identical edge lists (see the package tests),
// matching the loader and runner's own ordering guarantees.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// EdgeKind classifies how a call site resolves to its callee.
type EdgeKind uint8

const (
	// Static is a direct call to a known function or concrete method.
	Static EdgeKind = iota
	// Interface is a conservative interface-method dispatch candidate.
	Interface
	// Dynamic is a conservative function-value dispatch candidate.
	Dynamic
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case Dynamic:
		return "dynamic"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Node is one function in the graph: a declared function or method
// (Fn != nil), a function literal (Lit != nil), or an external callee
// the module calls but does not define (Fn != nil, Body == nil).
type Node struct {
	// ID is the stable sort key: "pkgpath.Name" for functions,
	// "pkgpath.(Recv).Name" for methods, "pkgpath.lit@file:line:col"
	// for literals.
	ID string
	// Fn is the declared function object; nil for literals.
	Fn *types.Func
	// Lit is the literal's syntax; nil for declared functions.
	Lit *ast.FuncLit
	// Body is the function body, nil for externals (stdlib callees and
	// bodyless declarations).
	Body *ast.BlockStmt
	// Decl is the declaration syntax when Fn is module-declared.
	Decl *ast.FuncDecl
	// Pkg is the module package containing the body; nil for externals.
	Pkg *analysis.Package
	// Enclosing is the node lexically containing a literal; nil
	// otherwise.
	Enclosing *Node
	// Out is the node's call edges, in call-site source order
	// (candidates of one site sorted by callee ID).
	Out []Edge
	// In is the reverse adjacency, sorted by caller ID then site
	// position.
	In []Edge
}

// Edge is one resolved (or conservatively assumed) call.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the call expression, in the caller's package.
	Site *ast.CallExpr
	Kind EdgeKind
}

// Graph is the whole-module call graph.
type Graph struct {
	// Nodes is sorted by ID.
	Nodes []*Node
	// Fset positions every node and site.
	Fset *token.FileSet

	byID  map[string]*Node
	byFn  map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
}

// NodeOf returns the node for a declared function, creating nothing.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[fn] }

// LitNode returns the node for a function literal.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Lookup returns the node with the given ID.
func (g *Graph) Lookup(id string) *Node { return g.byID[id] }

// cacheKey memoises the graph inside an analysis.Module.
const cacheKey = "callgraph"

// Of returns the module's call graph, building it on first use and
// sharing it across analyzers and packages of the same run.
func Of(pass *analysis.Pass) *Graph {
	return pass.Module.Cache(cacheKey, func() any {
		return Build(pass.Module.Pkgs)
	}).(*Graph)
}

// builder carries the intermediate state of one Build.
type builder struct {
	g *Graph
	// addressTaken marks functions referenced outside call position.
	addressTaken map[*Node]bool
	// sigOf caches each node's signature for dynamic matching.
	sigOf map[*Node]*types.Signature
	// methods indexes module-declared methods by name for interface
	// dispatch, values sorted by ID.
	methods map[string][]*Node
	// dyn holds function-value call sites for pass-3 expansion.
	dyn []dynSite
}

// Build constructs the graph over pkgs. The package list order does not
// matter: all ordering in the result is by node ID and source position.
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		byID:  make(map[string]*Node),
		byFn:  make(map[*types.Func]*Node),
		byLit: make(map[*ast.FuncLit]*Node),
	}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	b := &builder{
		g:            g,
		addressTaken: make(map[*Node]bool),
		sigOf:        make(map[*Node]*types.Signature),
		methods:      make(map[string][]*Node),
	}
	sorted := append([]*analysis.Package{}, pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PkgPath < sorted[j].PkgPath })
	// Pass 1: create nodes for every declared function and literal.
	for _, pkg := range sorted {
		for _, file := range pkg.Syntax {
			b.declareFile(pkg, file)
		}
	}
	// Pass 2: resolve call sites and address-taken references.
	for _, pkg := range sorted {
		for _, file := range pkg.Syntax {
			b.resolveFile(pkg, file)
		}
	}
	// Pass 3: expand dynamic call sites against the final address-taken
	// set (collected in pass 2, so expansion must come after).
	b.expandDynamic()
	// Final ordering: nodes by ID; each node's Out edges by site
	// position then callee ID; In edges by caller ID then site position.
	g.Nodes = make([]*Node, 0, len(g.byID))
	for _, n := range g.byID {
		g.Nodes = append(g.Nodes, n)
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].ID < g.Nodes[j].ID })
	for _, n := range g.Nodes {
		sortEdges(g, n.Out, false)
	}
	for _, n := range g.Nodes {
		for i := range n.Out {
			e := n.Out[i]
			e.Callee.In = append(e.Callee.In, e)
		}
	}
	for _, n := range g.Nodes {
		sortEdges(g, n.In, true)
	}
	return g
}

func sortEdges(g *Graph, edges []Edge, byCaller bool) {
	sort.SliceStable(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		ap, bp := token.NoPos, token.NoPos
		if a.Site != nil {
			ap = a.Site.Pos()
		}
		if b.Site != nil {
			bp = b.Site.Pos()
		}
		if byCaller && a.Caller.ID != b.Caller.ID {
			return a.Caller.ID < b.Caller.ID
		}
		if ap != bp {
			// Positions from one FileSet are globally ordered.
			return ap < bp
		}
		return a.Callee.ID < b.Callee.ID
	})
}

// FuncID renders the stable node ID of a function object.
func FuncID(fn *types.Func) string {
	pkg := "_"
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if recv := recvOf(fn); recv != nil {
		return fmt.Sprintf("%s.(%s).%s", pkg, typeShort(recv.Type()), fn.Name())
	}
	return pkg + "." + fn.Name()
}

func recvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv()
}

// typeShort renders a receiver type without its package prefix:
// "*Rank", "Queue[T]".
func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return "" })
}

func (b *builder) nodeForFunc(fn *types.Func) *Node {
	// Instantiated generic functions/methods get their own *types.Func
	// per instantiation; fold them onto the declared origin so edges
	// land on the node that carries the body.
	if o := fn.Origin(); o != nil {
		fn = o
	}
	if n, ok := b.g.byFn[fn]; ok {
		return n
	}
	// The loader materialises the same source function as distinct
	// *types.Func objects across test variants (a package and its
	// test-augmented self); unify them on the stable ID so the graph
	// has one node per source function.
	id := FuncID(fn)
	if n, ok := b.g.byID[id]; ok {
		b.g.byFn[fn] = n
		return n
	}
	n := &Node{ID: id, Fn: fn}
	b.g.byFn[fn] = n
	b.g.byID[id] = n
	if sig, ok := fn.Type().(*types.Signature); ok {
		b.sigOf[n] = sig
	}
	return n
}

func (b *builder) declareFile(pkg *analysis.Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			fn, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
			if fn == nil {
				return false
			}
			node := b.nodeForFunc(fn)
			node.Body, node.Decl, node.Pkg = d.Body, d, pkg
			if recvOf(fn) != nil {
				b.methods[fn.Name()] = append(b.methods[fn.Name()], node)
			}
		case *ast.FuncLit:
			pos := pkg.Fset.Position(d.Pos())
			id := fmt.Sprintf("%s.lit@%s:%d:%d", pkg.PkgPath, pos.Filename, pos.Line, pos.Column)
			node := &Node{ID: id, Lit: d, Body: d.Body, Pkg: pkg}
			b.g.byLit[d] = node
			b.g.byID[id] = node
			if sig, ok := pkg.TypesInfo.TypeOf(d).(*types.Signature); ok {
				b.sigOf[node] = sig
			}
		}
		return true
	})
	// Link each of this file's literals to its innermost enclosing
	// function by position (a single Inspect cannot maintain a pop-able
	// stack).
	for _, n := range b.g.byID {
		if n.Lit == nil || n.Pkg != pkg ||
			n.Lit.Pos() < file.Pos() || n.Lit.End() > file.End() {
			continue
		}
		n.Enclosing = b.enclosingOf(pkg, file, n.Lit)
	}
}

// enclosingOf finds the innermost declared function or literal strictly
// containing lit.
func (b *builder) enclosingOf(pkg *analysis.Package, file *ast.File, lit *ast.FuncLit) *Node {
	if lit.Pos() < file.Pos() || lit.End() > file.End() {
		return nil
	}
	var best *Node
	bestSpan := token.Pos(-1)
	for _, other := range b.g.byID {
		if other.Pkg != pkg || other.Body == nil {
			continue
		}
		var lo, hi token.Pos
		switch {
		case other.Decl != nil:
			lo, hi = other.Decl.Pos(), other.Decl.End()
		case other.Lit != nil && other.Lit != lit:
			lo, hi = other.Lit.Pos(), other.Lit.End()
		default:
			continue
		}
		if lo <= lit.Pos() && lit.End() <= hi {
			span := hi - lo
			if best == nil || span < bestSpan {
				best, bestSpan = other, span
			}
		}
	}
	return best
}

// dynSite is a call through a function value, expanded in pass 3.
type dynSite struct {
	caller *Node
	site   *ast.CallExpr
	sig    *types.Signature
}

// (dyn sites live on the builder; see builder.dyn.)

func (b *builder) resolveFile(pkg *analysis.Package, file *ast.File) {
	// One pass to mark the identifiers standing in call-operator
	// position, so the address-taken scan below is linear.
	inCallPos := make(map[*ast.Ident]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			inCallPos[f] = true
		case *ast.SelectorExpr:
			inCallPos[f.Sel] = true
		}
		return true
	})
	// Attribute call sites to the innermost enclosing node by walking
	// each node's own body shallowly (nested literals are their own
	// nodes and are skipped — the walk of the literal's node sees
	// them).
	for _, n := range b.g.byID {
		if n.Pkg != pkg || n.Body == nil ||
			n.Body.Pos() < file.Pos() || n.Body.End() > file.End() {
			continue
		}
		caller := n
		inspectShallow(n.Body, func(sub ast.Node) {
			if call, ok := sub.(*ast.CallExpr); ok {
				b.resolveCall(pkg, caller, call)
			}
		})
	}
	// Linear address-taken scan.
	ast.Inspect(file, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !inCallPos[id] {
			if fn, ok := pkg.TypesInfo.Uses[id].(*types.Func); ok {
				b.addressTaken[b.nodeForFunc(fn)] = true
			}
		}
		return true
	})
}

// inspectShallow walks the subtree without descending into nested
// function literals (each literal is its own graph node). The root
// literal's body itself is walked: the guard skips FuncLit nodes other
// than the direct children already excluded by starting at a BlockStmt.
func inspectShallow(root *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Still visit the call that immediately invokes a literal:
			// the CallExpr parent was already visited; the literal's
			// internals belong to the literal's node.
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

func (b *builder) resolveCall(pkg *analysis.Package, caller *Node, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Immediately invoked literal: static edge to the literal.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if callee := b.g.byLit[lit]; callee != nil {
			caller.Out = append(caller.Out, Edge{Caller: caller, Callee: callee, Site: call, Kind: Static})
		}
		return
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.TypesInfo.Uses[f].(type) {
		case *types.Func:
			callee := b.nodeForFunc(obj)
			caller.Out = append(caller.Out, Edge{Caller: caller, Callee: callee, Site: call, Kind: Static})
			return
		case *types.Builtin, *types.TypeName, nil:
			return // builtin or conversion: no edge
		case *types.Var:
			if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
				b.dyn = append(b.dyn, dynSite{caller: caller, site: call, sig: sig})
			}
			return
		}
	case *ast.SelectorExpr:
		// Package-qualified function, concrete method, interface
		// method, or func-typed field.
		if sel, ok := pkg.TypesInfo.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					b.interfaceDispatch(caller, call, sel.Recv(), fn)
					return
				}
				callee := b.nodeForFunc(fn)
				caller.Out = append(caller.Out, Edge{Caller: caller, Callee: callee, Site: call, Kind: Static})
				return
			case types.FieldVal:
				if sig, ok := sel.Obj().Type().Underlying().(*types.Signature); ok {
					b.dyn = append(b.dyn, dynSite{caller: caller, site: call, sig: sig})
				}
				return
			}
		}
		switch obj := pkg.TypesInfo.Uses[f.Sel].(type) {
		case *types.Func:
			callee := b.nodeForFunc(obj)
			caller.Out = append(caller.Out, Edge{Caller: caller, Callee: callee, Site: call, Kind: Static})
		case *types.Var:
			if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
				b.dyn = append(b.dyn, dynSite{caller: caller, site: call, sig: sig})
			}
		}
		return
	default:
		// Call of an arbitrary expression (a call returning a func, an
		// index into a func slice): dynamic if func-typed.
		if sig, ok := pkg.TypesInfo.TypeOf(fun).(*types.Signature); ok {
			b.dyn = append(b.dyn, dynSite{caller: caller, site: call, sig: sig})
		}
	}
}

// interfaceDispatch adds conservative edges for a call of iface method
// fn: every module-declared method with the same name whose receiver
// type implements the interface.
func (b *builder) interfaceDispatch(caller *Node, call *ast.CallExpr, recv types.Type, fn *types.Func) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	// Always keep the interface method itself as a node, so reachability
	// queries can name it even with no module implementations.
	decl := b.nodeForFunc(fn)
	caller.Out = append(caller.Out, Edge{Caller: caller, Callee: decl, Site: call, Kind: Static})
	cands := append([]*Node{}, b.methods[fn.Name()]...)
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	for _, m := range cands {
		mrecv := recvOf(m.Fn)
		if mrecv == nil {
			continue
		}
		t := mrecv.Type()
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			caller.Out = append(caller.Out, Edge{Caller: caller, Callee: m, Site: call, Kind: Interface})
		}
	}
}

// expandDynamic resolves every dynamic site against the address-taken
// set: candidates are address-taken declared functions plus all
// literals (a literal is a value by construction), signature-identical
// to the site.
func (b *builder) expandDynamic() {
	var cands []*Node
	for n := range b.addressTaken {
		cands = append(cands, n)
	}
	for _, n := range b.g.byID {
		if n.Lit != nil {
			cands = append(cands, n)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	for _, site := range b.dyn {
		for _, c := range cands {
			sig := b.sigOf[c]
			if sig == nil || !types.Identical(stripRecv(sig), stripRecv(site.sig)) {
				continue
			}
			site.caller.Out = append(site.caller.Out,
				Edge{Caller: site.caller, Callee: c, Site: site.site, Kind: Dynamic})
		}
	}
}

// stripRecv compares signatures ignoring the receiver (method values
// bound to a receiver have plain function signatures at use sites).
func stripRecv(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

// Reachable computes the set of nodes reachable from the given roots
// along edges admitted by keep (nil keeps every kind). The returned map
// is keyed by node; traversal order is deterministic but the map itself
// is unordered — callers needing order should sort by ID.
func (g *Graph) Reachable(roots []*Node, keep func(Edge) bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	stack := append([]*Node{}, roots...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		for _, e := range n.Out {
			if keep == nil || keep(e) {
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// ReachesInverse computes, for the given targets, every node that can
// reach one of them along edges admitted by keep — the park-capability
// query. Runs over the In adjacency.
func (g *Graph) ReachesInverse(targets []*Node, keep func(Edge) bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	stack := append([]*Node{}, targets...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		for _, e := range n.In {
			if keep == nil || keep(e) {
				stack = append(stack, e.Caller)
			}
		}
	}
	return seen
}

// Describe renders the edge list deterministically, one line per edge:
// "caller -> callee [kind] @ file:line:col". Used by the determinism
// tests and reprolint -debug tooling.
func (g *Graph) Describe() []string {
	var out []string
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			pos := ""
			if e.Site != nil && g.Fset != nil {
				p := g.Fset.Position(e.Site.Pos())
				pos = fmt.Sprintf(" @ %s:%d:%d", p.Filename, p.Line, p.Column)
			}
			out = append(out, fmt.Sprintf("%s -> %s [%s]%s", n.ID, e.Callee.ID, e.Kind, pos))
		}
	}
	return out
}
