package callgraph_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

func loadFixture(t *testing.T) []*analysis.Package {
	t.Helper()
	pkgs, err := analysis.NewLoader("testdata/src", "", true).Load()
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkgs
}

// TestDeterministicEdgeList loads the fixture tree twice through two
// independent loaders and requires the rendered edge lists to be
// byte-identical — the callgraph analogue of the repo's same-seed
// golden checks.
func TestDeterministicEdgeList(t *testing.T) {
	a := strings.Join(callgraph.Build(loadFixture(t)).Describe(), "\n")
	b := strings.Join(callgraph.Build(loadFixture(t)).Describe(), "\n")
	if a != b {
		t.Fatalf("two loads rendered different edge lists:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty edge list: fixture not loaded")
	}
}

// TestModuleDeterministicEdgeList repeats the double-load check over
// the real module — the tree reprolint actually analyzes. Skipped in
// -short mode: it type-checks the whole module (plus its stdlib
// dependencies) twice.
func TestModuleDeterministicEdgeList(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module double load is slow; run without -short")
	}
	root := moduleRoot(t)
	load := func() []*analysis.Package {
		pkgs, err := analysis.NewLoader(root, "repro", false).Load()
		if err != nil {
			t.Fatalf("loading module: %v", err)
		}
		return pkgs
	}
	a := strings.Join(callgraph.Build(load()).Describe(), "\n")
	b := strings.Join(callgraph.Build(load()).Describe(), "\n")
	if a != b {
		t.Fatal("two loads of the module rendered different edge lists")
	}
	if !strings.Contains(a, "repro/internal/mpi") {
		t.Fatal("module graph is missing internal/mpi nodes")
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestInterfaceDispatchIsConservative proves interface calls dispatch
// to every implementing module type and nothing else.
func TestInterfaceDispatchIsConservative(t *testing.T) {
	g := callgraph.Build(loadFixture(t))
	announce := g.Lookup("iface.Announce")
	if announce == nil {
		t.Fatal("iface.Announce node missing")
	}
	var ifaceCallees []string
	for _, e := range announce.Out {
		if e.Kind == callgraph.Interface {
			ifaceCallees = append(ifaceCallees, e.Callee.ID)
		}
	}
	want := []string{"iface.(*Cat).Speak", "iface.(Dog).Speak"}
	if got := strings.Join(ifaceCallees, ","); got != strings.Join(want, ",") {
		t.Fatalf("interface dispatch candidates = %q, want %q", got, strings.Join(want, ","))
	}
	for _, e := range announce.Out {
		if strings.Contains(e.Callee.ID, "Robot") {
			t.Fatalf("Robot.Speak (wrong signature) wrongly among candidates: %s", e.Callee.ID)
		}
	}
}

// TestDynamicDispatchUsesAddressTaken proves function-value calls
// resolve to address-taken functions only.
func TestDynamicDispatchUsesAddressTaken(t *testing.T) {
	g := callgraph.Build(loadFixture(t))
	wire := g.Lookup("iface.Wire")
	if wire == nil {
		t.Fatal("iface.Wire node missing")
	}
	var static, dynamic []string
	for _, e := range wire.Out {
		switch e.Kind {
		case callgraph.Static:
			static = append(static, e.Callee.ID)
		case callgraph.Dynamic:
			dynamic = append(dynamic, e.Callee.ID)
		}
	}
	joined := strings.Join(dynamic, ",")
	if !strings.Contains(joined, "iface.indirect") {
		t.Fatalf("dynamic site missing address-taken candidate iface.indirect: %q", joined)
	}
	if strings.Contains(joined, "notTaken") {
		t.Fatalf("dynamic site dispatches to never-address-taken function: %q", joined)
	}
	sjoined := strings.Join(static, ",")
	for _, want := range []string{"iface.direct", "iface.Announce"} {
		if !strings.Contains(sjoined, want) {
			t.Fatalf("static edges %q missing %s", sjoined, want)
		}
	}
}

// TestReachability checks forward and inverse reachability agree.
func TestReachability(t *testing.T) {
	g := callgraph.Build(loadFixture(t))
	wire, direct := g.Lookup("iface.Wire"), g.Lookup("iface.direct")
	if wire == nil || direct == nil {
		t.Fatal("fixture nodes missing")
	}
	if !g.Reachable([]*callgraph.Node{wire}, nil)[direct] {
		t.Fatal("direct not forward-reachable from Wire")
	}
	if !g.ReachesInverse([]*callgraph.Node{direct}, nil)[wire] {
		t.Fatal("Wire does not inverse-reach direct")
	}
}
