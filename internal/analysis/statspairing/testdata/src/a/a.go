// Package a exercises the statspairing analyzer: gauge-commented
// fields must have paired increment and decrement sites within the
// package; monotone counters and snapshot aggregation are exempt.
package a

type stats struct {
	Held int64 // gauge: bytes currently held
	Used int64 // gauge: bytes currently in use
	Peak int64 // monotone high-water mark, inc-only by design
	Done int64 // gauge: only ever drained
}

type pool struct{ st stats }

func (p *pool) alloc(n int64) {
	p.st.Held += n // want `gauge stats\.Held is incremented \(2 site\(s\)\) but never decremented`
	p.st.Used += n
	if p.st.Used > p.st.Peak {
		p.st.Peak = p.st.Used
	}
	p.st.Done-- // want `gauge stats\.Done is decremented \(1 site\(s\)\) but never incremented`
}

func (p *pool) free(n int64) {
	p.st.Used -= n
	p.st.Held++
}

func merge(dst, src *stats) {
	dst.Held += src.Held // aggregation (x.F += y.F): exempt
	dst.Used += src.Used
	dst.Done += src.Done
}

func snapshot(p *pool) stats {
	return stats{Held: p.st.Held} // composite-literal copy: not a mutation
}
