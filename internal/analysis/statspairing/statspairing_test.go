package statspairing_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statspairing"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", statspairing.Analyzer, "a")
}
