// Package statspairing checks gauge accounting: every struct field
// documented as a gauge (its field comment contains the word "gauge")
// that is incremented somewhere in its package must also be decremented
// somewhere in that package, and vice versa. A gauge tracks a live
// quantity — pinned bytes, mapped pages, installed translations — so an
// increment with no matching decrement path means the value only ever
// grows: exactly the SmallBytes accounting bug fixed by hand in PR 2,
// where the Morecore/PageSep allocators counted placements but never
// un-counted frees.
//
// Two mutation shapes are deliberately exempt:
//
//   - a.F += b.F (the right-hand side is the same field of another
//     value) is aggregation — node.Stats.Add folding per-node snapshots
//     into a total — not gauge movement;
//   - plain assignment (s.F = v) is snapshotting or reset, neither an
//     increment nor a decrement. Live gauges survive counter resets by
//     design (see verbs' memlock tests), so a reset does not count as
//     the missing decrement path.
//
// Monotone counters (no "gauge" in the comment) and gauges only ever
// copied into snapshots are not checked.
package statspairing

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "statspairing",
	Doc: "every gauge-commented struct field incremented in its package must have a " +
		"matching decrement path (and vice versa); catches one-way live-quantity accounting",
	Run: run,
}

type gauge struct {
	obj      *types.Var
	declPos  token.Pos
	incs     []token.Pos
	decs     []token.Pos
	typeName string
}

func run(pass *analysis.Pass) (any, error) {
	gauges := findGauges(pass)
	if len(gauges) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		ignored := analysis.IgnoredLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.IncDecStmt:
				if g := gaugeFor(pass, gauges, st.X); g != nil && !ignored[pass.Fset.Position(st.Pos()).Line] {
					if st.Tok == token.INC {
						g.incs = append(g.incs, st.Pos())
					} else {
						g.decs = append(g.decs, st.Pos())
					}
				}
			case *ast.AssignStmt:
				if len(st.Lhs) != 1 || (st.Tok != token.ADD_ASSIGN && st.Tok != token.SUB_ASSIGN) {
					return true
				}
				g := gaugeFor(pass, gauges, st.Lhs[0])
				if g == nil || ignored[pass.Fset.Position(st.Pos()).Line] {
					return true
				}
				if sameField(pass, st.Rhs[0], g.obj) {
					return true // a.F += b.F: aggregation, not gauge movement
				}
				if st.Tok == token.ADD_ASSIGN {
					g.incs = append(g.incs, st.Pos())
				} else {
					g.decs = append(g.decs, st.Pos())
				}
			}
			return true
		})
	}
	// Report at the first mutation site in source order — that is where
	// the one-way accounting happens.
	var unpaired []*gauge
	for _, g := range gauges {
		if (len(g.incs) > 0) != (len(g.decs) > 0) {
			unpaired = append(unpaired, g)
		}
	}
	sort.Slice(unpaired, func(i, j int) bool { return unpaired[i].declPos < unpaired[j].declPos })
	for _, g := range unpaired {
		if len(g.incs) > 0 {
			pos := earliest(g.incs)
			pass.Reportf(pos, "gauge %s.%s is incremented (%d site(s)) but never decremented in this package; a live quantity that only grows is an accounting leak",
				g.typeName, g.obj.Name(), len(g.incs))
		} else {
			pos := earliest(g.decs)
			pass.Reportf(pos, "gauge %s.%s is decremented (%d site(s)) but never incremented in this package",
				g.typeName, g.obj.Name(), len(g.decs))
		}
	}
	return nil, nil
}

// findGauges collects every struct field in the package whose doc or
// line comment contains the word "gauge".
func findGauges(pass *analysis.Pass) map[*types.Var]*gauge {
	gauges := make(map[*types.Var]*gauge)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !mentionsGauge(field.Doc) && !mentionsGauge(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						gauges[v] = &gauge{obj: v, declPos: name.Pos(), typeName: ts.Name.Name}
					}
				}
			}
			return true
		})
	}
	return gauges
}

func mentionsGauge(cg *ast.CommentGroup) bool {
	return cg != nil && strings.Contains(strings.ToLower(cg.Text()), "gauge")
}

// gaugeFor resolves an lvalue expression to the gauge field it
// mutates, if any.
func gaugeFor(pass *analysis.Pass, gauges map[*types.Var]*gauge, e ast.Expr) *gauge {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return nil
	}
	return gauges[v]
}

// sameField reports whether e is a selector of the same struct field —
// the x.F += y.F aggregation shape.
func sameField(pass *analysis.Pass, e ast.Expr, field *types.Var) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[sel.Sel] == field
}

func earliest(positions []token.Pos) token.Pos {
	min := positions[0]
	for _, p := range positions[1:] {
		if p < min {
			min = p
		}
	}
	return min
}
