package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
// When tests are included, Syntax holds the package's files plus its
// in-package _test.go files; an external test package (package foo_test)
// loads as its own Package with PkgPath suffixed "_test".
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader discovers and type-checks every package under a root
// directory. Module-internal imports resolve against the discovered
// tree; everything else (the standard library) resolves through the
// stdlib source importer, so no go/packages or external tooling is
// needed. Directories named testdata or vendor, and dot/underscore
// directories, are skipped — matching the go tool's ./... expansion,
// and keeping analyzer fixtures (with their deliberate violations) out
// of real runs.
type Loader struct {
	// Root is the directory whose subtree is loaded.
	Root string
	// ModulePath maps Root to an import-path prefix ("repro" for the
	// module root; "" makes import paths the slash-separated relative
	// directory, which is what testdata/src fixture trees use).
	ModulePath string
	// IncludeTests adds _test.go files to each package and loads
	// external test packages.
	IncludeTests bool

	fset     *token.FileSet
	std      types.ImporterFrom
	units    map[string]*unit // by import path
	paths    []string         // sorted unit import paths
	checked  map[string]*types.Package
	checking map[string]bool
}

type unit struct {
	dir        string
	importPath string
	files      []*ast.File // non-test files
	testFiles  []*ast.File // in-package _test.go files
	xtestFiles []*ast.File // package foo_test files
}

// moduleDeps returns the module-internal import paths of the given
// files (only ones that resolve to discovered units).
func (l *Loader) moduleDeps(files []*ast.File) []string {
	seen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if _, ok := l.units[p]; ok {
				seen[p] = true
			}
		}
	}
	deps := make([]string, 0, len(seen))
	for p := range seen {
		deps = append(deps, p)
	}
	sort.Strings(deps)
	return deps
}

// dependents returns every unit that transitively imports target
// (through non-test files), target excluded.
func (l *Loader) dependents(target string) map[string]bool {
	out := make(map[string]bool)
	for {
		grew := false
		for _, p := range l.paths {
			if p == target || out[p] {
				continue
			}
			for _, dep := range l.moduleDeps(l.units[p].files) {
				if dep == target || out[dep] {
					out[p] = true
					grew = true
					break
				}
			}
		}
		if !grew {
			return out
		}
	}
}

// NewLoader builds a loader rooted at dir whose packages import as
// modulePath/<relative-dir>.
func NewLoader(root, modulePath string, includeTests bool) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:         root,
		ModulePath:   modulePath,
		IncludeTests: includeTests,
		fset:         fset,
		std:          importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		units:        make(map[string]*unit),
		checked:      make(map[string]*types.Package),
		checking:     make(map[string]bool),
	}
}

// Load discovers, parses, and type-checks the whole tree, returning one
// Package per package (plus one per external test package when
// IncludeTests is set), sorted by import path.
func (l *Loader) Load() ([]*Package, error) {
	if err := l.discover(); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range l.paths {
		u := l.units[p]
		files := u.files
		if l.IncludeTests {
			files = append(append([]*ast.File{}, u.files...), u.testFiles...)
		}
		var augmented *Package
		if len(files) > 0 {
			pkg, err := l.typeCheck(u.importPath, u.dir, files)
			if err != nil {
				return nil, err
			}
			augmented = pkg
			pkgs = append(pkgs, pkg)
		}
		if l.IncludeTests && len(u.xtestFiles) > 0 {
			// The external test package sees the package under test
			// with its in-package test files included (export_test.go
			// helpers), exactly as the go tool builds it. Like the go
			// tool, every module dependency must be rebuilt against
			// that test variant for type identity to hold, so the
			// check runs with a variant import cache: the augmented
			// package replaces the canonical one, and every module
			// package that transitively imports it is evicted so it
			// re-checks against the variant (everything else keeps its
			// canonical identity).
			prev := l.checked
			l.checked = make(map[string]*types.Package, len(prev))
			dependents := l.dependents(u.importPath)
			for p, pkg := range prev {
				if !dependents[p] && p != u.importPath {
					l.checked[p] = pkg
				}
			}
			if augmented != nil {
				l.checked[u.importPath] = augmented.Types
			}
			pkg, err := l.typeCheck(u.importPath+"_test", u.dir, u.xtestFiles)
			l.checked = prev
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func (l *Loader) discover() error {
	err := filepath.WalkDir(l.Root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != l.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		return l.parseDir(dir)
	})
	if err != nil {
		return err
	}
	l.paths = l.paths[:0]
	for p := range l.units {
		l.paths = append(l.paths, p)
	}
	sort.Strings(l.paths)
	return nil
}

func (l *Loader) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var u *unit
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if u == nil {
			rel, err := filepath.Rel(l.Root, dir)
			if err != nil {
				return err
			}
			ip := l.ModulePath
			if rel != "." {
				ip = path.Join(ip, filepath.ToSlash(rel))
			}
			u = &unit{dir: dir, importPath: ip}
			l.units[ip] = u
		}
		switch {
		case strings.HasSuffix(name, "_test.go") && strings.HasSuffix(file.Name.Name, "_test"):
			u.xtestFiles = append(u.xtestFiles, file)
		case strings.HasSuffix(name, "_test.go"):
			u.testFiles = append(u.testFiles, file)
		default:
			u.files = append(u.files, file)
		}
	}
	return nil
}

// importPkg resolves one import for the type checker: module-internal
// paths type-check their unit (without test files, so test-induced
// cycles cannot form); anything else falls through to the stdlib source
// importer.
func (l *Loader) importPkg(p string) (*types.Package, error) {
	if p == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.checked[p]; ok {
		return pkg, nil
	}
	u, ok := l.units[p]
	if !ok {
		return l.std.ImportFrom(p, l.Root, 0)
	}
	if l.checking[p] {
		return nil, fmt.Errorf("import cycle through %s", p)
	}
	l.checking[p] = true
	defer delete(l.checking, p)
	pkg, err := l.check(p, u.files, nil)
	if err != nil {
		return nil, err
	}
	l.checked[p] = pkg
	return pkg, nil
}

// typeCheck builds the analysis view of a package, with full types.Info.
func (l *Loader) typeCheck(importPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := l.check(importPath, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath:   importPath,
		Dir:       dir,
		Fset:      l.fset,
		Syntax:    files,
		Types:     pkg,
		TypesInfo: info,
	}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(p string) (*types.Package, error) { return f(p) }

func (l *Loader) check(importPath string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return pkg, nil
}
