package timeflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/timeflow"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", timeflow.Analyzer, "tf")
}
