// Package trace is a fixture stub of the module's trace recorder: the
// timeflow analyzer matches sinks by package base name, so this stub's
// Span/Event are sinks exactly like the real internal/trace ones.
package trace

type Ctx struct{}

func (Ctx) Span(name string, dur int64)  {}
func (Ctx) Event(name string, val int64) {}

func SetMeta(key, val string) {}
