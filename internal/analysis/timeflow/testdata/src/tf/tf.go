// Package tf exercises the timeflow analyzer: wall-clock and unseeded
// entropy values must not reach trace records, no matter how many
// helpers launder them on the way.
package tf

import (
	"math/rand"
	"time"

	"trace"
)

// direct: the wall clock lands in a span in one step.
func direct(c trace.Ctx) {
	c.Span("elapsed", time.Now().UnixNano()) // want `time.Now wall clock .* reaches trace.Span trace record`
}

// stamp launders the clock through a helper return; the flow must
// survive the hop.
func stamp() int64 {
	return time.Now().UnixNano()
}

func viaHelper(c trace.Ctx) {
	c.Event("stamp", stamp()) // want `time.Now wall clock .* reaches trace.Event trace record`
}

// record sinks its parameter; the diagnostic lands on the sink call
// inside the helper when a caller hands it a tainted value.
func record(c trace.Ctx, v int64) {
	c.Span("value", v) // want `time.Now wall clock .* reaches trace.Span trace record`
}

func viaParam(c trace.Ctx) {
	record(c, time.Now().UnixNano())
}

// entropy: the global rand source is just as host-dependent as the
// clock.
func entropy(c trace.Ctx) {
	c.Event("jitter", rand.Int63()) // want `unseeded rand.Int63 .* reaches trace.Event trace record`
}

// seeded generators are reproducible: no diagnostic.
func seeded(c trace.Ctx) {
	r := rand.New(rand.NewSource(7))
	c.Event("draw", r.Int63())
}

// suppressed: the ignore directive on the source line kills the flow at
// birth, mirroring internal/sweep's sanctioned wall-throughput metrics.
func suppressed(c trace.Ctx) {
	t := time.Now().UnixNano() //reprolint:ignore timeflow fixture: sanctioned wall metric
	c.Span("wall", t)
}

// clean: constants never taint.
func clean(c trace.Ctx) {
	c.Span("fixed", 42)
}
