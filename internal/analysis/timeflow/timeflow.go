// Package timeflow is the interprocedural companion to the determinism
// analyzer: where determinism bans the call sites themselves (time.Now
// outside the allowed packages), timeflow tracks the values. It taints
// everything derived from a wall clock, unseeded entropy, or the
// process identity, follows the taint through helper returns and
// parameters with the internal/analysis/taint engine, and reports when
// a tainted value reaches a reproducibility-critical sink: a trace
// record (internal/trace Span/SpanAt/Event/SetMeta) or a BENCH report
// write (internal/sweep Bench.Write/WriteFile). Those outputs are
// golden-compared across same-seed runs, so a single laundered
// timestamp breaks CI in a way that is miserable to bisect dynamically
// and trivial to name statically.
//
// A //reprolint:ignore directive on the source line kills the flow at
// birth (the sanctioned wall-throughput metrics in internal/sweep), and
// one on the sink line suppresses that sink alone.
package timeflow

import (
	"go/types"
	"path"

	"repro/internal/analysis"
	"repro/internal/analysis/taint"
)

var Analyzer = &analysis.Analyzer{
	Name: "timeflow",
	Doc: "track wall-clock, unseeded-entropy and process-identity values interprocedurally " +
		"and forbid them from reaching trace records or BENCH report writes " +
		"(golden-compared outputs must not depend on the host)",
	Run: run,
}

// seededConstructors are the math/rand entry points that only build
// explicitly seeded generators; their results are reproducible.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// sourceCall classifies calls whose results differ run to run.
func sourceCall(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + " wall clock", true
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the shared unseeded source;
		// methods run on explicitly constructed (seeded) generators.
		if sig != nil && sig.Recv() == nil && !seededConstructors[fn.Name()] {
			return "unseeded rand." + fn.Name(), true
		}
	case "os":
		switch fn.Name() {
		case "Getpid", "Getppid":
			return "os." + fn.Name() + " process identity", true
		}
	}
	return "", false
}

// sinkCall classifies calls whose arguments end up in golden-compared
// output. Matching is by package base name so the analyzer's testdata
// fixtures (import path "trace") and the real module
// ("repro/internal/trace") both resolve.
func sinkCall(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch path.Base(pkg.Path()) {
	case "trace":
		switch fn.Name() {
		case "Span", "SpanAt", "Event", "SetMeta":
			return "trace." + fn.Name() + " trace record", true
		}
	case "sweep":
		switch fn.Name() {
		case "Write", "WriteFile":
			return "sweep." + fn.Name() + " BENCH report", true
		}
	}
	return "", false
}

func run(pass *analysis.Pass) (any, error) {
	flows := taint.Of(pass, "timeflow", &taint.Config{
		SourceCall: sourceCall,
		SinkCall:   sinkCall,
	})
	for _, f := range flows {
		if f.SinkPkg != pass.Pkg.Path() {
			continue
		}
		pass.Reportf(f.SinkPos, "%s; golden-compared output must derive timestamps from "+
			"internal/simtime and randomness from a seed", f)
	}
	return nil, nil
}
