// Package analysis is a self-contained static-analysis framework for
// the repro tree, mirroring the core API of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) on the standard library alone — the
// module deliberately has no external dependencies, so the real
// framework cannot be vendored. Should that change, each analyzer ports
// by swapping this import for the upstream one.
//
// The framework exists to enforce invariants the test suite can only
// spot-check at runtime (DESIGN.md §7):
//
//   - determinism: same-seed runs are byte-identical, so nothing outside
//     internal/simtime and internal/faults may consult wall clocks or
//     unseeded entropy.
//   - maporder: report/stat paths must not leak Go's randomized map
//     iteration order into output.
//   - statspairing: gauge-style counters must have matching
//     increment/decrement paths.
//   - nilspec: nil-safe types must guard every exported pointer method.
//
// cmd/reprolint is the multichecker driver; analysistest runs analyzers
// over testdata fixtures with // want expectations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// reprolint command line.
	Name string
	// Doc is the one-paragraph description shown by reprolint -list.
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. The result value is unused by this driver
	// but kept for API parity.
	Run func(*Pass) (any, error)
}

// Pass hands one analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: position plus originating analyzer,
// ready for printing and sorting.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the combined
// findings in a deterministic order (by file, line, column, analyzer) —
// reprolint's own output must not depend on map iteration or scheduling.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
