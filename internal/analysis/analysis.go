// Package analysis is a self-contained static-analysis framework for
// the repro tree, mirroring the core API of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) on the standard library alone — the
// module deliberately has no external dependencies, so the real
// framework cannot be vendored. Should that change, each analyzer ports
// by swapping this import for the upstream one.
//
// The framework exists to enforce invariants the test suite can only
// spot-check at runtime (DESIGN.md §7):
//
//   - determinism: same-seed runs are byte-identical, so nothing outside
//     internal/simtime and internal/faults may consult wall clocks or
//     unseeded entropy.
//   - maporder: report/stat paths must not leak Go's randomized map
//     iteration order into output.
//   - statspairing: gauge-style counters must have matching
//     increment/decrement paths.
//   - nilspec: nil-safe types must guard every exported pointer method.
//
// cmd/reprolint is the multichecker driver; analysistest runs analyzers
// over testdata fixtures with // want expectations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// reprolint command line.
	Name string
	// Doc is the one-paragraph description shown by reprolint -list.
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. The result value is unused by this driver
	// but kept for API parity.
	Run func(*Pass) (any, error)
}

// Pass hands one analyzer one type-checked package. Module exposes the
// whole loaded module to interprocedural analyzers (callgraph, taint);
// per-package analyzers ignore it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Module    *Module
	Report    func(Diagnostic)
}

// Module is the whole-module view shared by every pass of one Run: the
// full package list plus a memoisation cache, so expensive module-wide
// structures (the call graph, taint summaries) are built once and
// reused by every analyzer and package that needs them.
type Module struct {
	Pkgs  []*Package
	cache map[string]any
}

// NewModule wraps a loaded package list for analysis.
func NewModule(pkgs []*Package) *Module {
	return &Module{Pkgs: pkgs, cache: make(map[string]any)}
}

// Cache memoises a module-wide computation under key. The first caller
// builds; everyone after gets the same value. Run is single-threaded,
// so no locking is needed.
func (m *Module) Cache(key string, build func() any) any {
	if v, ok := m.cache[key]; ok {
		return v
	}
	v := build()
	m.cache[key] = v
	return v
}

// PackageOf returns the module package whose file set contains pos's
// file, or nil.
func (m *Module) PackageOf(path string) *Package {
	for _, p := range m.Pkgs {
		if p.PkgPath == path {
			return p
		}
	}
	return nil
}

// TextEdit is one replacement of the source range [Pos, End) by NewText.
// An insertion has Pos == End.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is one self-contained change that addresses a
// diagnostic, as a set of non-overlapping text edits. Fixes are
// suggestions: they may reference identifiers the surrounding code
// still has to declare (a threaded clock, a seeded generator), and
// reprolint -fix applies them verbatim.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// Diagnostic is one finding at one position, optionally carrying
// machine-applicable fixes.
type Diagnostic struct {
	Pos            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportFix reports a diagnostic carrying one suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...),
		SuggestedFixes: []SuggestedFix{fix}})
}

// Edit is a resolved text edit: file plus byte offsets, ready to apply.
type Edit struct {
	File    string
	Start   int
	End     int
	NewText string
}

// Fix is a resolved suggested fix.
type Fix struct {
	Message string
	Edits   []Edit
}

// Finding is a resolved diagnostic: position plus originating analyzer,
// ready for printing and sorting.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fixes    []Fix
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the combined
// findings in a deterministic order (by file, line, column, analyzer) —
// reprolint's own output must not depend on map iteration or scheduling.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunModule(NewModule(pkgs), pkgs, analyzers)
}

// RunModule is Run with an explicit module context: pkgs (the packages
// to report on) may be a subset of module.Pkgs (the packages
// interprocedural analyzers see). cmd/reprolint passes the whole loaded
// tree as the module and the pattern-filtered packages as pkgs, so
// cross-package flows stay visible even on a narrowed run.
func RunModule(module *Module, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Module:    module,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Fixes:    resolveFixes(pkg.Fset, d.SuggestedFixes),
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// resolveFixes turns position-based suggested fixes into offset-based
// ones, dropping any fix with an invalid or reversed range.
func resolveFixes(fset *token.FileSet, fixes []SuggestedFix) []Fix {
	var out []Fix
	for _, sf := range fixes {
		fix := Fix{Message: sf.Message}
		ok := true
		for _, te := range sf.TextEdits {
			start, end := fset.Position(te.Pos), fset.Position(te.End)
			if !start.IsValid() || !end.IsValid() ||
				start.Filename != end.Filename || end.Offset < start.Offset {
				ok = false
				break
			}
			fix.Edits = append(fix.Edits, Edit{
				File:    start.Filename,
				Start:   start.Offset,
				End:     end.Offset,
				NewText: te.NewText,
			})
		}
		if ok && len(fix.Edits) > 0 {
			out = append(out, fix)
		}
	}
	return out
}
