// Package fix exercises the maporder analyzer's suggested fix: the
// missing sort call is inserted right after the range loop, and "sort"
// joins the import block. Applying every emitted fix with
// analysis.ApplyFixes must reproduce fix.go.golden byte for byte.
package fix

import (
	"fmt"
)

func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `append collects ks in map iteration order`
	}
	return ks
}

func values(m map[string]int) []int {
	var vs []int
	for _, v := range m {
		vs = append(vs, v) // want `append collects vs in map iteration order`
	}
	return vs
}

func describe(m map[string]int) string {
	return fmt.Sprint(len(m))
}
