// Package a exercises the maporder analyzer: order-sensitive sinks in
// range-over-map bodies are flagged unless the collected slice is
// sorted in the same function; order-independent bodies are not.
package a

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append collects keys in map iteration order`
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectSortedFunc(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortAscending(xs []string) {
	sort.Strings(xs)
}

func collectHelperSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortAscending(keys) // a helper whose name says it sorts counts
	return keys
}

func printDirect(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println writes in map iteration order`
	}
}

func encodeDirect(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k := range m {
		_ = enc.Encode(k) // want `Encode inside range over map encodes in iteration order`
	}
}

func writeDirect(w io.Writer, m map[string][]byte) {
	for _, v := range m {
		_, _ = w.Write(v) // want `Write call emits bytes in map iteration order`
	}
}

func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation in map iteration order`
	}
	return s
}

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // order-independent accumulation
	}
	return total
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k // map-to-map: order-independent
	}
	return out
}

func perKey(m map[string]int) map[string][]int {
	out := make(map[string][]int)
	for k, v := range m {
		out[k] = append(out[k], v) // per-key append: order-independent
	}
	return out
}

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //reprolint:ignore fixture proving the escape hatch
	}
	return keys
}

func perIteration(groups map[string][]int) map[string]int {
	out := make(map[string]int, len(groups))
	for k, vs := range groups {
		var squares []int // declared inside the body: per-iteration state
		for _, v := range vs {
			squares = append(squares, v*v)
		}
		out[k] = len(squares)
	}
	return out
}

func rangeSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slices iterate in order; not flagged
	}
	return out
}
