// Package maporder flags `range` statements over maps whose bodies feed
// order-sensitive sinks — append to a slice that is never sorted,
// direct fmt/io output, JSON encoding, string accumulation — without an
// intervening sort. Go randomizes map iteration order per run, so any
// such loop in a report or stats path breaks the byte-identical -stats
// golden check nondeterministically: the exact bug class the repo's
// determinism gates exist to catch, surfaced at compile time instead of
// as a flaky CI diff.
//
// Order-insensitive bodies (sums, min/max, building another map,
// appending to a per-key slice) are not flagged. The canonical fix is
// either to sort the collected slice afterwards (the analyzer accepts
// any sort.*/slices.* call on the append target within the enclosing
// function) or to iterate a sorted key slice instead of the map.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map bodies that append/print/encode in iteration order " +
		"without a later sort; map order is randomized and breaks byte-identical output",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ignored := analysis.IgnoredLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, file, body, ignored)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc examines one function body, stopping at nested function
// literals (the outer walk visits those on their own, and a sort inside
// a different function does not order this one's loop).
func checkFunc(pass *analysis.Pass, file *ast.File, body *ast.BlockStmt, ignored map[int]bool) {
	inspectShallow(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if ignored[pass.Fset.Position(rs.Pos()).Line] {
			return
		}
		checkMapRange(pass, file, rs, body, ignored)
	})
}

// inspectShallow walks the subtree like ast.Inspect but does not
// descend into function literals.
func inspectShallow(root ast.Node, f func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

func checkMapRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, enclosing *ast.BlockStmt, ignored map[int]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if ignored != nil {
			if pos := pass.Fset.Position(n.Pos()); pos.IsValid() && ignored[pos.Line] {
				return true
			}
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, file, st, rs, enclosing)
		case *ast.CallExpr:
			checkCall(pass, st)
		}
		return true
	})
}

// checkAssign flags two accumulation patterns inside a map range:
// `s = append(s, ...)` where s is never sorted in the enclosing
// function, and `str += ...` string concatenation. Accumulators
// declared inside the range body are exempt — per-iteration state
// cannot observe cross-iteration order.
func checkAssign(pass *analysis.Pass, file *ast.File, st *ast.AssignStmt, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 {
		if t := pass.TypesInfo.TypeOf(st.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				if target := lhsObject(pass, st.Lhs[0]); target != nil &&
					rs.Body.Pos() <= target.Pos() && target.Pos() < rs.Body.End() {
					return
				}
				pass.Reportf(st.Pos(), "string concatenation in map iteration order; iterate sorted keys instead")
			}
		}
		return
	}
	for i, rhs := range st.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(st.Lhs) {
			continue
		}
		// Appending to a map element (perKey[k] = append(perKey[k], v))
		// lands each value at its own key — order-independent.
		if _, ok := st.Lhs[i].(*ast.IndexExpr); ok {
			continue
		}
		target := lhsObject(pass, st.Lhs[i])
		if target != nil && rs.Body.Pos() <= target.Pos() && target.Pos() < rs.Body.End() {
			continue // declared inside the loop body: per-iteration state
		}
		if target != nil && sortedInFunc(pass, enclosing, target) {
			continue
		}
		name := "the result"
		if target != nil {
			name = target.Name()
		}
		msg := fmt.Sprintf("append collects %s in map iteration order with no sort in this function; sort it (sort/slices) or iterate sorted keys", name)
		if fix, ok := insertSortFix(pass, file, st.Lhs[i], rs); ok {
			pass.ReportFix(call.Pos(), fix, "%s", msg)
		} else {
			pass.Reportf(call.Pos(), "%s", msg)
		}
	}
}

// sortFuncFor maps an ordered element type to the matching sort helper.
func sortFuncFor(elem types.Type) (string, bool) {
	b, ok := elem.Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	switch b.Kind() {
	case types.String:
		return "sort.Strings", true
	case types.Int:
		return "sort.Ints", true
	case types.Float64:
		return "sort.Float64s", true
	}
	return "", false
}

// insertSortFix builds the canonical fix for an unsorted append
// accumulator: insert `sort.Xs(name)` right after the range statement
// (and `"sort"` into the import block if it is missing). Only plain
// identifier targets with ordered element types are fixable
// mechanically; everything else keeps the diagnostic alone.
func insertSortFix(pass *analysis.Pass, file *ast.File, lhs ast.Expr, rs *ast.RangeStmt) (analysis.SuggestedFix, bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	t := pass.TypesInfo.TypeOf(id)
	if t == nil {
		return analysis.SuggestedFix{}, false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	sortFn, ok := sortFuncFor(slice.Elem())
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	indent := strings.Repeat("\t", pass.Fset.Position(rs.Pos()).Column-1)
	fix := analysis.SuggestedFix{
		Message: fmt.Sprintf("sort %s after the loop (%s)", id.Name, sortFn),
		TextEdits: []analysis.TextEdit{
			{Pos: rs.End(), End: rs.End(), NewText: "\n" + indent + sortFn + "(" + id.Name + ")"},
		},
	}
	if imp, ok := importInsertion(file, "sort"); ok {
		fix.TextEdits = append(fix.TextEdits, imp)
	}
	return fix, true
}

// importInsertion returns the edit adding `"path"` to the file's
// grouped import block in sorted position, or ok=false when the import
// already exists or the file has no parenthesised import declaration to
// extend.
func importInsertion(file *ast.File, path string) (analysis.TextEdit, bool) {
	quoted := `"` + path + `"`
	for _, imp := range file.Imports {
		if imp.Path.Value == quoted {
			return analysis.TextEdit{}, false
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			if is.Path.Value > quoted {
				return analysis.TextEdit{Pos: is.Pos(), End: is.Pos(), NewText: quoted + "\n\t"}, true
			}
		}
		if n := len(gd.Specs); n > 0 {
			last := gd.Specs[n-1]
			return analysis.TextEdit{Pos: last.End(), End: last.End(), NewText: "\n\t" + quoted}, true
		}
		return analysis.TextEdit{Pos: gd.Lparen + 1, End: gd.Lparen + 1, NewText: "\n\t" + quoted}, true
	}
	return analysis.TextEdit{}, false
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// lhsObject resolves the variable (or struct field) an assignment
// writes through.
func lhsObject(pass *analysis.Pass, lhs ast.Expr) types.Object {
	switch e := lhs.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// sortedInFunc reports whether the enclosing function sorts target: a
// sort.* or slices.* call, or a call to a helper whose name says it
// sorts (sortMRs, SortKeys, ...), with target among the arguments.
func sortedInFunc(pass *analysis.Pass, body *ast.BlockStmt, target types.Object) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			if exprUses(pass, arg, target) {
				found = true
				return
			}
		}
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		if pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			switch pkgName.Imported().Path() {
			case "sort", "slices":
				return true
			}
			return false
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

func exprUses(pass *analysis.Pass, e ast.Expr, target types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == target {
			used = true
		}
		return !used
	})
	return used
}

// checkCall flags direct output and encoding calls inside the loop.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			switch pkgName.Imported().Path() {
			case "fmt":
				if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
					pass.Reportf(call.Pos(), "fmt.%s writes in map iteration order; iterate sorted keys", name)
				}
			case "encoding/json":
				pass.Reportf(call.Pos(), "json.%s inside range over map encodes in iteration order; iterate sorted keys", name)
			}
			return
		}
	}
	// Method sinks: JSON encoder writes and raw writer output.
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		if fn.Pkg().Path() == "encoding/json" && name == "Encode" {
			pass.Reportf(call.Pos(), "(*json.Encoder).Encode inside range over map encodes in iteration order; iterate sorted keys")
			return
		}
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		pass.Reportf(call.Pos(), "%s call emits bytes in map iteration order; iterate sorted keys", name)
	}
}
