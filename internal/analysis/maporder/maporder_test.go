package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "a")
}

// TestSuggestedFixes applies every fix the analyzer emits on the fix
// fixture and checks the result against the committed .golden file.
func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, "testdata", maporder.Analyzer, "fix")
}
