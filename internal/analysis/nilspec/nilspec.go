// Package nilspec enforces the nil-receiver contract of nil-safe types.
// Types marked with a
//
//	//reprolint:nilsafe
//
// directive in their doc comment promise that every exported method is
// callable on a nil receiver — internal/faults' *Spec and *Injector are
// the canonical cases: a nil *Spec is "faults disabled", and the entire
// stack calls injector methods unconditionally, relying on the nil
// guard instead of sprinkling `if inj != nil` at every call site. A new
// method that forgets the guard compiles fine and panics only on the
// (default!) no-faults path, so the contract is enforced statically:
// every exported pointer-receiver method on a marked type must begin
// with a nil check of its receiver (`if r == nil { ... }`, possibly
// ||-combined with further conditions).
//
// Unexported methods are exempt — they are internal helpers the guarded
// exported surface calls after its own check. Value-receiver methods
// cannot see a nil receiver and are exempt too.
package nilspec

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Directive marks a type whose exported pointer methods must be
// nil-safe.
const Directive = "reprolint:nilsafe"

var Analyzer = &analysis.Analyzer{
	Name: "nilspec",
	Doc: "exported pointer-receiver methods on //reprolint:nilsafe types must begin " +
		"with a nil receiver guard; the zero of these types is a valid disabled instance",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	marked := markedTypes(pass)
	if len(marked) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		ignored := analysis.IgnoredLines(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || !fn.Name.IsExported() {
				continue
			}
			if ignored[pass.Fset.Position(fn.Pos()).Line] {
				continue
			}
			star, ok := fn.Recv.List[0].Type.(*ast.StarExpr)
			if !ok {
				continue // value receiver: cannot be nil
			}
			typeIdent, ok := star.X.(*ast.Ident)
			if !ok {
				continue
			}
			tn, ok := pass.TypesInfo.Uses[typeIdent].(*types.TypeName)
			if !ok || !marked[tn] {
				continue
			}
			names := fn.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				continue // unnamed receiver: the body cannot dereference it
			}
			recv := pass.TypesInfo.Defs[names[0]]
			if fn.Body == nil || len(fn.Body.List) == 0 || !startsWithNilGuard(pass, fn.Body.List[0], recv) {
				msg := fmt.Sprintf("method %s on nil-safe type *%s must begin with a nil receiver guard (if %s == nil { ... }); nil %s means %q",
					fn.Name.Name, tn.Name(), names[0].Name, tn.Name(), "disabled")
				if fix, ok := guardFix(pass, fn, names[0].Name); ok {
					pass.ReportFix(fn.Name.Pos(), fix, "%s", msg)
				} else {
					pass.Reportf(fn.Name.Pos(), "%s", msg)
				}
			}
		}
	}
	return nil, nil
}

// guardFix builds the insertion of the missing nil guard at the top of
// the method body: `if r == nil { return <zeros> }`. The fix is only
// offered when every result type has a spelled-out zero value (nil, 0,
// "", false) — a method returning a struct by value needs a
// human-written disabled result, so it keeps the diagnostic alone.
func guardFix(pass *analysis.Pass, fn *ast.FuncDecl, recvName string) (analysis.SuggestedFix, bool) {
	if fn.Body == nil {
		return analysis.SuggestedFix{}, false
	}
	var zeros []string
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			z, ok := zeroValue(pass.TypesInfo.TypeOf(field.Type))
			if !ok {
				return analysis.SuggestedFix{}, false
			}
			for i := 0; i < n; i++ {
				zeros = append(zeros, z)
			}
		}
	}
	ret := "return"
	if len(zeros) > 0 {
		ret += " " + strings.Join(zeros, ", ")
	}
	guard := fmt.Sprintf("\n\tif %s == nil {\n\t\t%s\n\t}", recvName, ret)
	return analysis.SuggestedFix{
		Message: fmt.Sprintf("insert the nil receiver guard (nil means %q)", "disabled"),
		TextEdits: []analysis.TextEdit{
			{Pos: fn.Body.Lbrace + 1, End: fn.Body.Lbrace + 1, NewText: guard},
		},
	}, true
}

// zeroValue spells the zero of t, ok=false when it has no universal
// literal spelling (struct and array values).
func zeroValue(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch {
		case u.Info()&types.IsNumeric != 0:
			return "0", true
		case u.Info()&types.IsString != 0:
			return `""`, true
		case u.Info()&types.IsBoolean != 0:
			return "false", true
		}
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return "nil", true
	}
	return "", false
}

// markedTypes collects the package's types carrying the nilsafe
// directive in their doc comment.
func markedTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	marked := make(map[*types.TypeName]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if !hasDirective(doc) {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					marked[tn] = true
				}
			}
		}
	}
	return marked
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, Directive) {
			return true
		}
	}
	return false
}

// startsWithNilGuard reports whether stmt is `if <cond> { ... }` with
// no init statement, where <cond> is `recv == nil` (either operand
// order) or an ||-chain containing it.
func startsWithNilGuard(pass *analysis.Pass, stmt ast.Stmt, recv types.Object) bool {
	ifStmt, ok := stmt.(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	return condHasNilCheck(pass, ifStmt.Cond, recv)
}

func condHasNilCheck(pass *analysis.Pass, cond ast.Expr, recv types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LOR:
		return condHasNilCheck(pass, be.X, recv) || condHasNilCheck(pass, be.Y, recv)
	case token.EQL:
		return isReceiver(pass, be.X, recv) && isNil(pass, be.Y) ||
			isReceiver(pass, be.Y, recv) && isNil(pass, be.X)
	}
	return false
}

func isReceiver(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == recv
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Nil)
	return ok
}
