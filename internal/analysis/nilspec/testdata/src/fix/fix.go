// Package fix exercises the nilspec analyzer's suggested fix: the
// missing nil receiver guard is inserted at the top of the method body
// with a zero-valued return. Applying every emitted fix with
// analysis.ApplyFixes must reproduce fix.go.golden byte for byte.
// Result types with no spelled zero (struct values) keep the
// diagnostic without a fix and stay untouched in the golden. The
// guard lands at the opening brace, so the fixture's trailing want
// comments end up after the inserted block — an artifact of the
// fixture, not of real code.
package fix

// Spec is disabled when nil.
//
//reprolint:nilsafe
type Spec struct{ n int }

// Stat is a by-value result with no literal zero spelling.
type Stat struct{ N int }

func (s *Spec) Count() int { // want `method Count on nil-safe type \*Spec`
	return s.n
}

func (s *Spec) Lookup(k string) (string, error) { // want `method Lookup on nil-safe type \*Spec`
	return k, nil
}

func (s *Spec) Touch() { // want `method Touch on nil-safe type \*Spec`
	s.n++
}

func (s *Spec) Snapshot() Stat { // want `method Snapshot on nil-safe type \*Spec`
	return Stat{N: s.n}
}
