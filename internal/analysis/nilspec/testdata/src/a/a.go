// Package a exercises the nilspec analyzer: exported pointer methods
// on //reprolint:nilsafe types must open with a nil receiver guard.
package a

// Spec is a disabled-when-nil configuration.
//
//reprolint:nilsafe
type Spec struct{ n int }

// Guarded opens with the canonical guard.
func (s *Spec) Guarded() int {
	if s == nil {
		return 0
	}
	return s.n
}

// GuardedOr folds the guard into an || chain.
func (s *Spec) GuardedOr() int {
	if s == nil || s.n == 0 {
		return 1
	}
	return s.n
}

// GuardedRev writes the comparison nil-first.
func (s *Spec) GuardedRev() int {
	if nil == s {
		return 0
	}
	return s.n
}

func (s *Spec) Bare() int { // want `method Bare on nil-safe type \*Spec must begin with a nil receiver guard`
	return s.n
}

func (s *Spec) WrongFirst() int { // want `method WrongFirst on nil-safe type \*Spec`
	x := s.n
	if s == nil {
		return 0
	}
	return x
}

func (s *Spec) helper() int { return s.n } // unexported: exempt

// Value methods cannot see a nil receiver.
func (Spec) Value() int { return 0 }

// Plain carries no directive; its methods are unconstrained.
type Plain struct{ n int }

func (p *Plain) Loose() int { return p.n }
