package nilspec_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nilspec"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", nilspec.Analyzer, "a")
}
