package analysis

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes collects every suggested fix carried by findings and
// returns the rewritten content of each affected file, keyed by file
// path. Application is deterministic: edits are sorted by (file, start
// offset, end offset, replacement), exact duplicates are collapsed, and
// when two distinct edits overlap the one starting earlier (first in
// the sorted order) wins and the later one is dropped — so the result
// depends only on the finding set, never on map or discovery order.
// Files are read from disk; a read failure fails the whole application.
func ApplyFixes(findings []Finding) (map[string][]byte, error) {
	byFile := make(map[string][]Edit)
	for _, f := range findings {
		for _, fix := range f.Fixes {
			for _, e := range fix.Edits {
				byFile[e.File] = append(byFile[e.File], e)
			}
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	out := make(map[string][]byte, len(files))
	for _, file := range files {
		edits := dedupe(byFile[file])
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("applying fixes: %w", err)
		}
		fixed, err := apply(src, edits)
		if err != nil {
			return nil, fmt.Errorf("applying fixes to %s: %w", file, err)
		}
		out[file] = fixed
	}
	return out, nil
}

// dedupe sorts edits and drops exact duplicates (the same diagnostic
// reported for two packages — a package and its test variant — emits
// the same edit twice) and later edits that overlap an earlier one.
func dedupe(edits []Edit) []Edit {
	sort.Slice(edits, func(i, j int) bool {
		a, b := edits[i], edits[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.NewText < b.NewText
	})
	var out []Edit
	for _, e := range edits {
		if len(out) > 0 {
			prev := out[len(out)-1]
			if prev == e {
				continue // exact duplicate
			}
			// Overlap: a pure insertion at the previous edit's start is
			// only a conflict if the previous edit was also an insertion
			// there; otherwise starting inside [prev.Start, prev.End)
			// conflicts and the earlier edit wins.
			if e.Start < prev.End || (e.Start == prev.Start && prev.Start == prev.End && e.Start == e.End) {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// apply splices sorted, non-overlapping edits into src.
func apply(src []byte, edits []Edit) ([]byte, error) {
	var out []byte
	last := 0
	for _, e := range edits {
		if e.Start < last || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of bounds or overlapping", e.Start, e.End)
		}
		out = append(out, src[last:e.Start]...)
		out = append(out, e.NewText...)
		last = e.End
	}
	out = append(out, src[last:]...)
	return out, nil
}
