package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
)

// SARIF serialization (Static Analysis Results Interchange Format,
// v2.1.0) for reprolint findings, so CI can upload the suite's output
// to GitHub code scanning. The encoding is deterministic: rules are
// sorted by analyzer name, results arrive pre-sorted from Run, URIs
// use forward slashes, and the marshaller walks struct fields in
// declaration order — two runs over the same tree produce
// byte-identical documents, the same contract the repo's BENCH goldens
// impose on simulation output.

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders findings as a SARIF 2.1.0 document. Every analyzer in
// the executed suite appears as a rule (so a clean run still documents
// what was checked); finding filenames are expected to already be
// module-relative — the driver relativizes before rendering — and are
// normalized to forward slashes per the SARIF URI rules.
func SARIF(analyzers []*Analyzer, findings []Finding) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	index := make(map[string]int, len(analyzers))
	sorted := make([]*Analyzer, len(analyzers))
	copy(sorted, analyzers)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i, a := range sorted {
		index[a.Name] = i
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(f.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: f.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "reprolint",
				InformationURI: "https://example.invalid/repro/cmd/reprolint",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
