package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleAnalyzers() []*Analyzer {
	// Deliberately unsorted: SARIF must sort rules itself.
	return []*Analyzer{
		{Name: "timeflow", Doc: "taint wall clocks"},
		{Name: "determinism", Doc: "forbid wall clocks"},
	}
}

func sampleFindings() []Finding {
	return []Finding{
		{Analyzer: "determinism", Pos: token.Position{Filename: "internal/a/a.go", Line: 3, Column: 1}, Message: "m1"},
		{Analyzer: "timeflow", Pos: token.Position{Filename: "internal/b/b.go", Line: 7, Column: 9}, Message: "m2"},
	}
}

func TestSARIFIsDeterministic(t *testing.T) {
	a, err := SARIF(sampleAnalyzers(), sampleFindings())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SARIF(sampleAnalyzers(), sampleFindings())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two SARIF renderings of the same findings differ:\n%s\n----\n%s", a, b)
	}
}

func TestSARIFStructure(t *testing.T) {
	out, err := SARIF(sampleAnalyzers(), sampleFindings())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Fatalf("version %q schema %q", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "reprolint" {
		t.Fatalf("driver name %q", run.Tool.Driver.Name)
	}
	// Rules sorted by analyzer name regardless of suite order.
	if len(run.Tool.Driver.Rules) != 2 || run.Tool.Driver.Rules[0].ID != "determinism" || run.Tool.Driver.Rules[1].ID != "timeflow" {
		t.Fatalf("rules not sorted: %+v", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	if run.Results[0].RuleID != "determinism" || run.Results[0].RuleIndex != 0 {
		t.Fatalf("result 0 rule binding wrong: %+v", run.Results[0])
	}
	if run.Results[1].RuleID != "timeflow" || run.Results[1].RuleIndex != 1 {
		t.Fatalf("result 1 rule binding wrong: %+v", run.Results[1])
	}
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/b/b.go" {
		t.Fatalf("URI %q, want internal/b/b.go", uri)
	}
	if line := run.Results[0].Locations[0].PhysicalLocation.Region.StartLine; line != 3 {
		t.Fatalf("startLine %d, want 3", line)
	}
}

func TestSARIFEmptyFindings(t *testing.T) {
	out, err := SARIF(sampleAnalyzers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("clean-run SARIF invalid: %v", err)
	}
	if !strings.Contains(string(out), `"results": []`) {
		t.Fatalf("clean run must render an empty results array, got:\n%s", out)
	}
}
