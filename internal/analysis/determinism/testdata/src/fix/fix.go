// Package fix exercises the determinism analyzer's suggested fixes:
// applying every emitted fix with analysis.ApplyFixes must reproduce
// fix.go.golden byte for byte. The rewrites reference the threaded
// clock/generator names (clk, rng) the surrounding code is expected to
// declare, so the golden intentionally does not compile — it pins the
// mechanical edit, not a finished refactor.
package fix

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func pause(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep reads the wall clock`
}

func jitter() int {
	return rand.Intn(8) // want `global rand\.Intn draws from the shared unseeded source`
}
