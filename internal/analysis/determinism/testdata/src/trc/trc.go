// Package trc mirrors the shape of internal/trace — a span recorder
// stamping timeline records — and pins that the determinism analyzer
// covers it like any simulation path: the tracing subsystem's
// byte-identical-trace contract only holds because every stamp is
// virtual ticks, so a wall-clock read or an unseeded jitter source in a
// recorder is flagged, while pure tick arithmetic is not.
package trc

import (
	"math/rand"
	"time"
)

// Ticks stands in for simtime.Ticks (the fixture loader resolves only
// stdlib imports, so the real type is not imported here).
type Ticks int64

type span struct {
	name  string
	start Ticks
	dur   Ticks
}

type recorder struct {
	spans []span
	now   Ticks
}

// ok records a span stamped purely from virtual time: legal.
func (r *recorder) ok(name string, dur Ticks) {
	r.spans = append(r.spans, span{name: name, start: r.now, dur: dur})
	r.now += dur
}

// wallClockStamp is the bug class the fixture exists for: stamping a
// trace record off the host clock.
func (r *recorder) wallClockStamp(name string) {
	start := time.Now() // want `time\.Now reads the wall clock`
	r.spans = append(r.spans, span{name: name, start: Ticks(start.UnixNano())})
}

// jitteredDur draws span durations from the global entropy pool, which
// would make every rendered trace differ run to run.
func (r *recorder) jitteredDur(name string) {
	r.ok(name, Ticks(rand.Int63n(100))) // want `global rand\.Int63n draws from the shared unseeded source`
}

// flushDeadline waits on the real clock before rendering.
func flushDeadline() {
	time.Sleep(10 * time.Millisecond) // want `time\.Sleep`
}
