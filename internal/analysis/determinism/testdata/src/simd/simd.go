// Package simd is a daemon-shaped package — deadline bookkeeping, a
// retry jitter — living at a simulation package path. It pins that the
// internal/sweepd allowance is scoped to that exact import path: wall
// clocks and unseeded entropy anywhere else stay flagged.
package simd

import (
	"math/rand"
	"time"
)

func drainDeadline() time.Time {
	return time.Now().Add(5 * time.Second) // want `time\.Now reads the wall clock`
}

func retryJitter() time.Duration {
	return time.Duration(rand.Int63n(100)) * time.Millisecond // want `global rand\.Int63n draws from the shared unseeded source`
}
