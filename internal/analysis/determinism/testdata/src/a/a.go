// Package a exercises the determinism analyzer: wall clocks and global
// rand are flagged; seeded generators and time arithmetic are not.
package a

import (
	crand "crypto/rand" // want `crypto/rand is non-reproducible entropy`
	"math/rand"
	"os"
	"time"
)

// clock demonstrates the banned value use, not just calls.
var clock func() time.Time = time.Now // want `time\.Now reads the wall clock`

func clocks() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep`
	return time.Since(start)     // want `time\.Since`
}

func entropy() int {
	n := rand.Intn(8) // want `global rand\.Intn draws from the shared unseeded source`
	rand.Seed(1)      // want `global rand\.Seed`
	buf := make([]byte, 4)
	_, _ = crand.Read(buf)
	return n + os.Getpid() // want `os\.Getpid differs run to run`
}

func seeded() int64 {
	rng := rand.New(rand.NewSource(7))
	const budget = 3 * time.Second // durations are arithmetic, not clock reads
	_ = budget
	return rng.Int63()
}

func suppressed() time.Time {
	return time.Now() //reprolint:ignore fixture proving the escape hatch
}
