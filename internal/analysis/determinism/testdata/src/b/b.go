// Package b stands in for an allowlisted package (the test adds it to
// determinism.AllowedPkgs): wall-clock use here is legal.
package b

import "time"

func now() time.Time { return time.Now() }
