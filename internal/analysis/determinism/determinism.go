// Package determinism forbids wall-clock and unseeded-entropy sources
// outside the two packages allowed to own them. The repo's headline
// property — same-seed runs are byte-identical, even under -race — only
// holds because every timestamp comes from internal/simtime's virtual
// clock and every random decision from a seeded generator (the
// workload traces' rand.New(rand.NewSource(seed)), internal/faults'
// splitmix64 schedules). A single stray time.Now or global rand.Intn in
// a simulation or report path silently breaks the CI golden check, so
// the ban is enforced at analysis time rather than discovered as a
// flaky golden diff.
package determinism

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// AllowedPkgs are the packages permitted to traffic in real time and
// raw entropy: simtime because it defines virtual time, faults because
// its seeded schedules are the sanctioned randomness source, and
// sweepd because the sweep service is host-side infrastructure (HTTP
// timeouts, drain deadlines) whose clocks never leak into simulation
// results — cached and fresh cells stay byte-identical regardless.
var AllowedPkgs = map[string]bool{
	"repro/internal/simtime": true,
	"repro/internal/faults":  true,
	"repro/internal/sweepd":  true,
}

// forbiddenTime lists the wall-clock entry points of package time.
// Types and arithmetic (time.Duration and friends) stay legal; only
// reading or waiting on the real clock is banned.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRand lists the math/rand (and /v2) package functions that only
// construct explicitly seeded generators. Everything else at package
// level draws from the shared global source, whose sequence depends on
// what other code consumed before — non-reproducible by construction.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// forbiddenOS lists os functions whose results differ run to run.
var forbiddenOS = map[string]bool{
	"Getpid":  true,
	"Getppid": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall clocks and unseeded entropy (time.Now, time.Sleep, global math/rand, " +
		"crypto/rand, os.Getpid) outside internal/simtime and internal/faults; " +
		"same-seed runs must stay byte-identical",
	Run: run,
}

// timeFix builds the machine fix for a wall-clock use where the
// virtual-time rewrite is mechanical: time.Now() becomes clk.Now() and
// time.Sleep(d) becomes clk.Advance(simtime.FromDuration(d)), both
// referencing the threaded *simtime.Clock the surrounding code is
// expected to name clk (the repo's pervasive convention). Other entry
// points (Since, Tick, timers) have no one-expression equivalent, so
// they report without a fix.
func timeFix(pkgIdent *ast.Ident, name string, call *ast.CallExpr) (analysis.SuggestedFix, bool) {
	switch name {
	case "Now":
		return analysis.SuggestedFix{
			Message: "read the threaded simtime clock (clk.Now())",
			TextEdits: []analysis.TextEdit{
				{Pos: pkgIdent.Pos(), End: pkgIdent.End(), NewText: "clk"},
			},
		}, true
	case "Sleep":
		if call == nil || len(call.Args) != 1 {
			return analysis.SuggestedFix{}, false
		}
		return analysis.SuggestedFix{
			Message: "advance the threaded simtime clock instead of sleeping",
			TextEdits: []analysis.TextEdit{
				{Pos: call.Pos(), End: call.Lparen + 1, NewText: "clk.Advance(simtime.FromDuration("},
				{Pos: call.Rparen, End: call.Rparen, NewText: ")"},
			},
		}, true
	}
	return analysis.SuggestedFix{}, false
}

func run(pass *analysis.Pass) (any, error) {
	if AllowedPkgs[strings.TrimSuffix(pass.Pkg.Path(), "_test")] {
		return nil, nil
	}
	for _, file := range pass.Files {
		ignored := analysis.IgnoredLines(pass.Fset, file)
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "crypto/rand" &&
				!ignored[pass.Fset.Position(imp.Pos()).Line] {
				pass.Reportf(imp.Pos(), "crypto/rand is non-reproducible entropy; derive randomness from a seed (internal/faults' splitmix64, or rand.New(rand.NewSource(seed)))")
			}
		}
		// callOf maps a selector to the call invoking it, for the fixes
		// that must rewrite around the argument list (time.Sleep).
		callOf := make(map[*ast.SelectorExpr]*ast.CallExpr)
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					callOf[sel] = call
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			if ignored[pass.Fset.Position(sel.Pos()).Line] {
				return true
			}
			name := sel.Sel.Name
			switch pkgName.Imported().Path() {
			case "time":
				if forbiddenTime[name] {
					msg := fmt.Sprintf("time.%s reads the wall clock; simulations and reports must use internal/simtime virtual time", name)
					if fix, ok := timeFix(ident, name, callOf[sel]); ok {
						pass.ReportFix(sel.Pos(), fix, "%s", msg)
					} else {
						pass.Reportf(sel.Pos(), "%s", msg)
					}
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[name] {
					pass.ReportFix(sel.Pos(), analysis.SuggestedFix{
						Message: "draw from a seeded generator rng (rand.New(rand.NewSource(seed)))",
						TextEdits: []analysis.TextEdit{
							{Pos: ident.Pos(), End: ident.End(), NewText: "rng"},
						},
					}, "global rand.%s draws from the shared unseeded source; use rand.New(rand.NewSource(seed)) or an internal/faults schedule", name)
				}
			case "os":
				if forbiddenOS[name] {
					pass.Reportf(sel.Pos(), "os.%s differs run to run; thread an explicit seed or identifier instead", name)
				}
			}
			return true
		})
	}
	return nil, nil
}
