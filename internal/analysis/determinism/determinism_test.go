package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "a")
}

// TestTraceShapedRecorderIsCovered pins that a span recorder — the
// shape of internal/trace — gets no special treatment: wall-clock
// stamps and unseeded jitter in a tracing path are flagged like any
// other simulation code, keeping the byte-identical-trace contract
// enforceable at analysis time.
func TestTraceShapedRecorderIsCovered(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "trc")
}

func TestAllowlistedPackagesAreExempt(t *testing.T) {
	determinism.AllowedPkgs["b"] = true
	defer delete(determinism.AllowedPkgs, "b")
	analysistest.Run(t, "testdata", determinism.Analyzer, "b")
}

// TestSuggestedFixes applies every fix the analyzer emits on the fix
// fixture and checks the result against the committed .golden file.
func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, "testdata", determinism.Analyzer, "fix")
}
