package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "a")
}

// TestTraceShapedRecorderIsCovered pins that a span recorder — the
// shape of internal/trace — gets no special treatment: wall-clock
// stamps and unseeded jitter in a tracing path are flagged like any
// other simulation code, keeping the byte-identical-trace contract
// enforceable at analysis time.
func TestTraceShapedRecorderIsCovered(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "trc")
}

func TestAllowlistedPackagesAreExempt(t *testing.T) {
	determinism.AllowedPkgs["b"] = true
	defer delete(determinism.AllowedPkgs, "b")
	analysistest.Run(t, "testdata", determinism.Analyzer, "b")
}

// TestSweepdAllowanceIsScoped pins the sweep-service escape: the
// repro/internal/sweepd path may read real clocks (HTTP deadlines,
// drain timeouts), but a daemon-shaped package at any other path — the
// simd fixture — is flagged call for call, and no simulation package
// rode along into the set.
func TestSweepdAllowanceIsScoped(t *testing.T) {
	if !determinism.AllowedPkgs["repro/internal/sweepd"] {
		t.Fatal("repro/internal/sweepd missing from AllowedPkgs")
	}
	for _, p := range []string{
		"repro/internal/mpi", "repro/internal/ib", "repro/internal/node",
		"repro/internal/sim", "repro/internal/sweep", "repro/internal/cas",
	} {
		if determinism.AllowedPkgs[p] {
			t.Errorf("simulation package %s must not be allowed", p)
		}
	}
	analysistest.Run(t, "testdata", determinism.Analyzer, "simd")
}

// TestSuggestedFixes applies every fix the analyzer emits on the fix
// fixture and checks the result against the committed .golden file.
func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, "testdata", determinism.Analyzer, "fix")
}
