package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "a")
}

func TestAllowlistedPackagesAreExempt(t *testing.T) {
	determinism.AllowedPkgs["b"] = true
	defer delete(determinism.AllowedPkgs, "b")
	analysistest.Run(t, "testdata", determinism.Analyzer, "b")
}
