package taint_test

import (
	"fmt"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/taint"
)

// fixtureConfig marks t.source as the source and t.sink as the sink.
func fixtureConfig() *taint.Config {
	return &taint.Config{
		SourceCall: func(fn *types.Func) (string, bool) {
			if fn.Name() == "source" && fn.Pkg() != nil && fn.Pkg().Path() == "t" {
				return "fixture source", true
			}
			return "", false
		},
		SinkCall: func(fn *types.Func) (string, bool) {
			if fn.Name() == "sink" && fn.Pkg() != nil && fn.Pkg().Path() == "t" {
				return "fixture sink", true
			}
			return "", false
		},
	}
}

func analyzeFixture(t *testing.T) []taint.Flow {
	t.Helper()
	pkgs, err := analysis.NewLoader("testdata/src", "", true).Load()
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return taint.Analyze(callgraph.Build(pkgs), pkgs, fixtureConfig())
}

// render compresses a flow to "sourceLine->sinkLine" for comparison.
func render(flows []taint.Flow) []string {
	var out []string
	for _, f := range flows {
		out = append(out, fmt.Sprintf("%d->%d", f.SourcePosition.Line, f.SinkPosition.Line))
	}
	return out
}

// Fixture line anatomy (keep in sync with testdata/src/t/t.go):
//
//	14 x := source()      15 sink(x)          — direct
//	21 v := source()      27 sink(launder())  — viaHelper
//	33 sink(v)            39 forward(source())— viaParam (sink inside forward)
//	45 suppressed source  46 sink(x)          — must NOT flow
//	59 sink(x)            60 x = source()     — loop-carried
func TestFlows(t *testing.T) {
	flows := analyzeFixture(t)
	got := render(flows)
	want := []string{
		"14->15", // direct
		"21->27", // laundered through helper return
		"39->33", // param flow: source at the call, sink inside forward
		"60->59", // loop-carried: taint from iteration N reaches sink at N+1
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("flows = %v, want %v\nfull: %v", got, want, flows)
	}
}

// TestSuppression proves the ignore directive kills the flow at the
// source: sink(x) in suppressed() must not appear.
func TestSuppression(t *testing.T) {
	for _, f := range analyzeFixture(t) {
		if f.SinkPosition.Line == 46 {
			t.Fatalf("suppressed source still flowed: %v", f)
		}
	}
}

// TestDeterministic runs the engine twice over independent loads and
// requires identical rendered flows.
func TestDeterministic(t *testing.T) {
	a := strings.Join(render(analyzeFixture(t)), ",")
	b := strings.Join(render(analyzeFixture(t)), ",")
	if a != b {
		t.Fatalf("two runs disagree: %q vs %q", a, b)
	}
}

// TestFlowString checks the diagnostic rendering carries the base name
// and line of the source.
func TestFlowString(t *testing.T) {
	flows := analyzeFixture(t)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	s := flows[0].String()
	if !strings.Contains(s, "t.go:14") || !strings.Contains(s, "fixture sink") {
		t.Fatalf("flow rendering %q missing source position or sink description", s)
	}
}
