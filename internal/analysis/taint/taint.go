// Package taint is a whole-module taint/dataflow engine over the
// callgraph: given predicates classifying calls as sources (values
// born non-deterministic — wall clocks, unseeded entropy) and sinks
// (places a non-deterministic value must never reach — report writers,
// trace recorders), it answers "can a source-derived value flow into
// this sink?", through any number of intermediate helpers.
//
// The engine is a worklist fixpoint over per-function summaries, the
// shape golang.org/x/tools grew as "facts" on top of its per-package
// core:
//
//   - Within one function, taint is tracked per local object as a bit
//     mask: one bit per parameter (the receiver is parameter 0) plus an
//     intrinsic bit for taint born inside the function. Assignments,
//     composite literals, arithmetic, conversions and range statements
//     propagate masks; the per-function pass iterates to its own
//     fixpoint so loop-carried flows converge.
//   - A function's summary records which parameters (or intrinsic
//     sources) reach its results, and which parameters reach a sink
//     inside it. At a static call site the callee's summary translates
//     argument masks to result masks — so a helper that launders
//     time.Now() through two returns is still tracked.
//   - Summaries start empty (nothing flows) and only grow, so the
//     module-level worklist — re-analyzing callers of any function
//     whose summary changed — terminates at the least fixpoint.
//
// Deliberate approximations, all towards false negatives being
// impossible for the supported shapes and false positives staying rare:
// calls with no statically known module callee (interface or
// function-value dispatch, stdlib calls) propagate the union of their
// argument masks to their result (modelling pure data transforms like
// fmt.Sprintf); writes through a field taint the whole owning object;
// captured variables of nested literals are not tracked across the
// literal boundary; package-level variables are not tracked.
//
// Flows whose source or sink line carries a //reprolint:ignore
// directive are suppressed at birth, which is what shrinks exemptions
// from package granularity to flow granularity.
package taint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Config classifies sources and sinks for one analysis.
type Config struct {
	// SourceCall reports whether a call to fn yields a tainted value,
	// and a short description ("time.Now wall clock").
	SourceCall func(fn *types.Func) (string, bool)
	// SinkCall reports whether a call to fn is a sink whose arguments
	// must be taint-free ("trace span payload").
	SinkCall func(fn *types.Func) (string, bool)
}

// Source describes where a tainted value was born.
type Source struct {
	Pos  token.Pos
	Desc string
}

// Flow is one source-to-sink path the engine proved possible.
type Flow struct {
	Source   Source
	SinkPos  token.Pos
	SinkDesc string
	// SinkPkg is the import path of the package containing the sink
	// call — the package the diagnostic belongs to.
	SinkPkg string
	// SourcePosition/SinkPosition are resolved for sorting and message
	// rendering.
	SourcePosition token.Position
	SinkPosition   token.Position
}

// String renders the flow for diagnostics: the source is named with
// base-name:line so messages stay stable across checkouts.
func (f Flow) String() string {
	return fmt.Sprintf("%s (%s:%d) reaches %s",
		f.Source.Desc, filepath.Base(f.SourcePosition.Filename), f.SourcePosition.Line, f.SinkDesc)
}

const intrinsicBit = 63

// val is the abstract value of an expression or object: which
// parameters (bits 0..62) and/or intrinsic sources (bit 63) it may
// derive from.
type val struct {
	mask uint64
	src  *Source // first intrinsic source, for attribution
}

func (v val) tainted() bool { return v.mask != 0 }

func (v val) union(o val) val {
	out := val{mask: v.mask | o.mask, src: v.src}
	if out.src == nil {
		out.src = o.src
	}
	return out
}

// sinkHit is a sink reachable from a parameter inside a function.
type sinkHit struct {
	pos  token.Pos
	desc string
	pkg  string
}

// summary is a function's flow contract.
type summary struct {
	// resultMask: which param bits (or intrinsic) reach a result.
	resultMask uint64
	resultSrc  *Source
	// paramSinks[i] holds the sinks parameter i reaches inside the
	// function (transitively).
	paramSinks map[int][]sinkHit
}

func (s *summary) equal(o *summary) bool {
	if s.resultMask != o.resultMask || len(s.paramSinks) != len(o.paramSinks) {
		return false
	}
	for i, hits := range s.paramSinks {
		ohits := o.paramSinks[i]
		if len(hits) != len(ohits) {
			return false
		}
		for j := range hits {
			if hits[j] != ohits[j] {
				return false
			}
		}
	}
	return true
}

// Engine runs one config over one module.
type Engine struct {
	g    *callgraph.Graph
	pkgs []*analysis.Package
	cfg  *Config

	summaries map[*callgraph.Node]*summary
	ignored   map[string]map[int]bool // filename -> suppressed lines
	flows     []Flow
}

// Analyze runs the engine to fixpoint and returns every flow, sorted by
// sink position then source position.
func Analyze(g *callgraph.Graph, pkgs []*analysis.Package, cfg *Config) []Flow {
	e := &Engine{
		g:         g,
		pkgs:      pkgs,
		cfg:       cfg,
		summaries: make(map[*callgraph.Node]*summary),
		ignored:   make(map[string]map[int]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			name := pkg.Fset.Position(file.Pos()).Filename
			e.ignored[name] = analysis.IgnoredLines(pkg.Fset, file)
		}
	}
	// Module fixpoint: deterministic rounds over the sorted node list.
	// Summaries only grow, so this terminates; the node count bounds
	// the chain length through which a summary change can propagate.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Body == nil {
				continue
			}
			sum, _ := e.analyzeNode(n, false)
			if prev, ok := e.summaries[n]; !ok || !sum.equal(prev) {
				e.summaries[n] = sum
				changed = true
			}
		}
	}
	// Reporting pass: collect flows with the final summaries.
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		_, flows := e.analyzeNode(n, true)
		e.flows = append(e.flows, flows...)
	}
	sort.Slice(e.flows, func(i, j int) bool {
		a, b := e.flows[i], e.flows[j]
		if a.SinkPosition.Filename != b.SinkPosition.Filename {
			return a.SinkPosition.Filename < b.SinkPosition.Filename
		}
		if a.SinkPosition.Line != b.SinkPosition.Line {
			return a.SinkPosition.Line < b.SinkPosition.Line
		}
		if a.SinkPosition.Column != b.SinkPosition.Column {
			return a.SinkPosition.Column < b.SinkPosition.Column
		}
		if a.SourcePosition.Filename != b.SourcePosition.Filename {
			return a.SourcePosition.Filename < b.SourcePosition.Filename
		}
		return a.SourcePosition.Line < b.SourcePosition.Line
	})
	// Deduplicate identical flows reported via a package and its test
	// variant.
	var out []Flow
	for _, f := range e.flows {
		if len(out) > 0 {
			p := out[len(out)-1]
			if p.SinkPosition == f.SinkPosition && p.SourcePosition == f.SourcePosition && p.SinkDesc == f.SinkDesc {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// cacheKeyPrefix namespaces engine results inside an analysis.Module.
const cacheKeyPrefix = "taint:"

// Of returns the flows for cfg, memoised under key in the pass's
// module so every package's pass shares one fixpoint run.
func Of(pass *analysis.Pass, key string, cfg *Config) []Flow {
	return pass.Module.Cache(cacheKeyPrefix+key, func() any {
		g := callgraph.Of(pass)
		return Analyze(g, pass.Module.Pkgs, cfg)
	}).([]Flow)
}

// fnState is the per-function abstract state.
type fnState struct {
	node    *callgraph.Node
	pkg     *analysis.Package
	params  []types.Object
	results []types.Object // named result objects, for bare returns
	objs    map[types.Object]val
	sum     *summary
	flows   []Flow
	report  bool
	// changed is set whenever an object's mask or the result mask
	// grows, driving the local fixpoint loop.
	changed bool
}

// analyzeNode computes n's summary (and, in report mode, its flows)
// under the engine's current summaries.
func (e *Engine) analyzeNode(n *callgraph.Node, report bool) (*summary, []Flow) {
	st := &fnState{
		node:   n,
		pkg:    n.Pkg,
		objs:   make(map[types.Object]val),
		sum:    &summary{paramSinks: make(map[int][]sinkHit)},
		report: report,
	}
	st.params = paramObjects(n)
	st.results = resultObjects(n)
	for i, p := range st.params {
		if p != nil && i < intrinsicBit {
			st.objs[p] = val{mask: 1 << i}
		}
	}
	// Iterate the body to a local fixpoint: assignments can chain
	// through locals in either source order. taintLHS and the return
	// handler set st.changed whenever a mask actually grows; the pass
	// cap bounds pathological chains (64 bits of mask, so 64 passes
	// always suffice).
	for pass := 0; pass < 64; pass++ {
		st.changed = false
		e.walkBody(st)
		if !st.changed {
			break
		}
	}
	// Sort each param's sink list for stable summary comparison.
	for i := range st.sum.paramSinks {
		hits := st.sum.paramSinks[i]
		sort.Slice(hits, func(a, b int) bool {
			if hits[a].pos != hits[b].pos {
				return hits[a].pos < hits[b].pos
			}
			return hits[a].desc < hits[b].desc
		})
		st.sum.paramSinks[i] = dedupeHits(hits)
	}
	return st.sum, st.flows
}

func dedupeHits(hits []sinkHit) []sinkHit {
	var out []sinkHit
	for _, h := range hits {
		if len(out) > 0 && out[len(out)-1] == h {
			continue
		}
		out = append(out, h)
	}
	return out
}

// paramObjects lists receiver-then-parameters as typed objects.
func paramObjects(n *callgraph.Node) []types.Object {
	var out []types.Object
	if n.Decl != nil && n.Pkg != nil {
		if n.Decl.Recv != nil && len(n.Decl.Recv.List) == 1 && len(n.Decl.Recv.List[0].Names) == 1 {
			out = append(out, n.Pkg.TypesInfo.Defs[n.Decl.Recv.List[0].Names[0]])
		}
		for _, field := range n.Decl.Type.Params.List {
			for _, name := range field.Names {
				out = append(out, n.Pkg.TypesInfo.Defs[name])
			}
		}
		return out
	}
	if n.Lit != nil && n.Pkg != nil {
		for _, field := range n.Lit.Type.Params.List {
			for _, name := range field.Names {
				out = append(out, n.Pkg.TypesInfo.Defs[name])
			}
		}
	}
	return out
}

// resultObjects lists named result objects, empty when results are
// unnamed.
func resultObjects(n *callgraph.Node) []types.Object {
	var ft *ast.FuncType
	switch {
	case n.Decl != nil:
		ft = n.Decl.Type
	case n.Lit != nil:
		ft = n.Lit.Type
	}
	if ft == nil || ft.Results == nil || n.Pkg == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if obj := n.Pkg.TypesInfo.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// suppressed reports whether pos's line carries an ignore directive.
func (e *Engine) suppressed(pkg *analysis.Package, pos token.Pos) bool {
	p := pkg.Fset.Position(pos)
	return e.ignored[p.Filename][p.Line]
}

// walkBody interprets the function body once, shallowly (nested
// literals are their own nodes).
func (e *Engine) walkBody(st *fnState) {
	ast.Inspect(st.node.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			e.evalAssign(st, s)
		case *ast.ReturnStmt:
			if len(s.Results) == 0 {
				// Bare return with named results.
				for _, obj := range st.results {
					v := st.objs[obj]
					if v.tainted() {
						if st.sum.resultMask|v.mask != st.sum.resultMask {
							st.changed = true
						}
						st.sum.resultMask |= v.mask
						if st.sum.resultSrc == nil {
							st.sum.resultSrc = v.src
						}
					}
				}
			}
			for _, r := range s.Results {
				v := e.evalExpr(st, r)
				if v.tainted() {
					if st.sum.resultMask|v.mask != st.sum.resultMask {
						st.changed = true
					}
					st.sum.resultMask |= v.mask
					if st.sum.resultSrc == nil {
						st.sum.resultSrc = v.src
					}
				}
			}
		case *ast.RangeStmt:
			v := e.evalExpr(st, s.X)
			if v.tainted() {
				e.taintLHS(st, s.Key, v)
				e.taintLHS(st, s.Value, v)
			}
		case *ast.ExprStmt:
			e.evalExpr(st, s.X)
		case *ast.GoStmt:
			e.evalExpr(st, s.Call)
		case *ast.DeferStmt:
			e.evalExpr(st, s.Call)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							v := e.evalExpr(st, vs.Values[i])
							if v.tainted() {
								e.taintLHS(st, name, v)
							}
						}
					}
				}
			}
		}
		return true
	})
}

func (e *Engine) evalAssign(st *fnState, s *ast.AssignStmt) {
	// Per-position assignment when counts match; otherwise (multi-value
	// call) every LHS gets the single RHS value.
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			v := e.evalExpr(st, s.Rhs[i])
			if s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN ||
				s.Tok == token.MUL_ASSIGN || s.Tok == token.QUO_ASSIGN || s.Tok == token.REM_ASSIGN ||
				s.Tok == token.AND_ASSIGN || s.Tok == token.OR_ASSIGN || s.Tok == token.XOR_ASSIGN ||
				s.Tok == token.SHL_ASSIGN || s.Tok == token.SHR_ASSIGN || s.Tok == token.AND_NOT_ASSIGN {
				v = v.union(e.evalExpr(st, s.Lhs[i]))
			}
			if v.tainted() {
				e.taintLHS(st, s.Lhs[i], v)
			}
		}
		return
	}
	var v val
	for _, r := range s.Rhs {
		v = v.union(e.evalExpr(st, r))
	}
	if v.tainted() {
		for _, l := range s.Lhs {
			e.taintLHS(st, l, v)
		}
	}
}

// taintLHS merges v into the object the lvalue writes through. A write
// through a selector or index taints the whole base object.
func (e *Engine) taintLHS(st *fnState, lhs ast.Expr, v val) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := st.pkg.TypesInfo.Defs[l]
		if obj == nil {
			obj = st.pkg.TypesInfo.Uses[l]
		}
		if obj != nil {
			merged := st.objs[obj].union(v)
			if merged.mask != st.objs[obj].mask {
				st.changed = true
			}
			st.objs[obj] = merged
		}
	case *ast.SelectorExpr:
		e.taintLHS(st, l.X, v)
	case *ast.IndexExpr:
		e.taintLHS(st, l.X, v)
	case *ast.StarExpr:
		e.taintLHS(st, l.X, v)
	}
}

// evalExpr computes the abstract value of an expression, recording sink
// hits and flows for call expressions on the way.
func (e *Engine) evalExpr(st *fnState, expr ast.Expr) val {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := st.pkg.TypesInfo.Uses[x]
		if obj == nil {
			obj = st.pkg.TypesInfo.Defs[x]
		}
		if obj == nil {
			return val{}
		}
		return st.objs[obj]
	case *ast.CallExpr:
		return e.evalCall(st, x)
	case *ast.SelectorExpr:
		return e.evalExpr(st, x.X)
	case *ast.BinaryExpr:
		return e.evalExpr(st, x.X).union(e.evalExpr(st, x.Y))
	case *ast.UnaryExpr:
		return e.evalExpr(st, x.X)
	case *ast.StarExpr:
		return e.evalExpr(st, x.X)
	case *ast.IndexExpr:
		return e.evalExpr(st, x.X)
	case *ast.SliceExpr:
		return e.evalExpr(st, x.X)
	case *ast.TypeAssertExpr:
		return e.evalExpr(st, x.X)
	case *ast.CompositeLit:
		var v val
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = v.union(e.evalExpr(st, kv.Value))
				continue
			}
			v = v.union(e.evalExpr(st, el))
		}
		return v
	}
	return val{}
}

// staticCallee resolves a call to its single static *types.Func, if
// any (conversions and builtins return nil).
func staticCallee(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (e *Engine) evalCall(st *fnState, call *ast.CallExpr) val {
	// Evaluate arguments first (they also record nested calls).
	args := make([]val, len(call.Args))
	var union val
	for i, a := range call.Args {
		args[i] = e.evalExpr(st, a)
		union = union.union(args[i])
	}
	// A method call's receiver feeds the callee's parameter 0.
	var recvVal val
	hasRecv := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := st.pkg.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvVal = e.evalExpr(st, sel.X)
			hasRecv = true
			union = union.union(recvVal)
		}
	}
	fn := staticCallee(st.pkg, call)
	if fn == nil {
		// Conversion or dynamic call: propagate argument union.
		return union
	}
	// Source?
	if desc, ok := e.cfg.SourceCall(fn); ok {
		if e.suppressed(st.pkg, call.Pos()) {
			return val{}
		}
		src := &Source{Pos: call.Pos(), Desc: desc}
		return val{mask: 1 << intrinsicBit, src: src}
	}
	// Sink?
	if desc, ok := e.cfg.SinkCall(fn); ok && !e.suppressed(st.pkg, call.Pos()) {
		all := args
		if hasRecv {
			all = append(append([]val{}, args...), recvVal)
		}
		for _, v := range all {
			if !v.tainted() {
				continue
			}
			e.recordSink(st, v, call.Pos(), desc)
		}
	}
	// Module callee with a summary: translate through it.
	callee := e.g.NodeOf(fn)
	if callee == nil {
		return union
	}
	sum := e.summaries[callee]
	if sum == nil {
		if callee.Body == nil {
			// External function: model as pure data transform.
			return union
		}
		return val{} // not yet analyzed this round; later rounds fill in
	}
	calleeArgs := e.calleeArgVals(st, callee, call, args, recvVal, hasRecv)
	// Param-reaches-sink entries fire for tainted arguments.
	for i, v := range calleeArgs {
		if !v.tainted() {
			continue
		}
		for _, hit := range sum.paramSinks[i] {
			e.recordSink(st, v, hit.pos, hit.desc)
		}
	}
	// Result taint: intrinsic plus translated parameter bits.
	var out val
	if sum.resultMask&(1<<intrinsicBit) != 0 {
		out = out.union(val{mask: 1 << intrinsicBit, src: sum.resultSrc})
	}
	for i, v := range calleeArgs {
		if i >= intrinsicBit {
			break
		}
		if sum.resultMask&(1<<i) != 0 {
			out = out.union(v)
		}
	}
	return out
}

// calleeArgVals maps the call's values onto the callee's parameter
// slots (receiver first when the callee is a method).
func (e *Engine) calleeArgVals(st *fnState, callee *callgraph.Node, call *ast.CallExpr, args []val, recvVal val, hasRecv bool) []val {
	var out []val
	calleeHasRecv := callee.Decl != nil && callee.Decl.Recv != nil
	if calleeHasRecv {
		if hasRecv {
			out = append(out, recvVal)
		} else {
			out = append(out, val{})
		}
	}
	out = append(out, args...)
	// Variadic and mismatched counts: extra args fold into the last
	// declared parameter slot.
	nparams := len(paramObjects(callee))
	if nparams == 0 {
		return nil
	}
	for len(out) > nparams {
		last := out[len(out)-1]
		out = out[:len(out)-1]
		out[len(out)-1] = out[len(out)-1].union(last)
	}
	return out
}

// recordSink registers a tainted value reaching a sink: an intrinsic
// taint becomes a reported flow; parameter taint becomes a summary
// entry so callers inherit the sink.
func (e *Engine) recordSink(st *fnState, v val, pos token.Pos, desc string) {
	if v.mask&(1<<intrinsicBit) != 0 && v.src != nil && st.report {
		st.flows = append(st.flows, Flow{
			Source:         *v.src,
			SinkPos:        pos,
			SinkDesc:       desc,
			SinkPkg:        st.pkg.PkgPath,
			SourcePosition: st.pkg.Fset.Position(v.src.Pos),
			SinkPosition:   st.pkg.Fset.Position(pos),
		})
	}
	for i := 0; i < intrinsicBit && i < len(st.params); i++ {
		if v.mask&(1<<i) != 0 {
			st.sum.paramSinks[i] = append(st.sum.paramSinks[i], sinkHit{pos: pos, desc: desc, pkg: st.pkg.PkgPath})
		}
	}
}
