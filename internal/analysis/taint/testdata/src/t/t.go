// Package t is the taint-engine fixture: source() is the configured
// source, sink() the configured sink, and the functions below exercise
// every propagation shape the engine must track.
package t

// source is classified as a source by the test config.
func source() int { return 42 }

// sink is classified as a sink by the test config.
func sink(v int) { _ = v }

// direct: source to sink inside one function.
func direct() {
	x := source()
	sink(x)
}

// launder hides the source behind a helper return — the summary must
// mark its result intrinsically tainted.
func launder() int {
	v := source()
	return v + 1
}

// viaHelper reaches the sink through launder's return value.
func viaHelper() {
	sink(launder())
}

// forward sinks its parameter — the summary must record param 0
// reaching the sink so callers inherit it.
func forward(v int) {
	sink(v)
}

// viaParam triggers forward's parameter-to-sink flow with a tainted
// argument.
func viaParam() {
	forward(source())
}

// suppressed carries an ignore directive on the source line, killing
// the flow at birth.
func suppressed() {
	x := source() //reprolint:ignore fixture: suppressed on purpose
	sink(x)
}

// clean must produce no flow: the sink only ever sees constants.
func clean() {
	sink(7)
}

// loop proves loop-carried taint converges: x is clean on entry and
// tainted only via the previous iteration.
func loop() {
	x := 0
	for i := 0; i < 3; i++ {
		sink(x)
		x = source()
	}
}
