package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadModuleTree loads the real module — the same thing
// cmd/reprolint does — and checks the properties the analyzers depend
// on: every package type-checks, test variants load (including external
// test packages that use export_test.go helpers), and testdata fixture
// trees stay invisible.
func TestLoadModuleTree(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, "repro", true).Load()
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		if strings.Contains(p.PkgPath, "testdata") {
			t.Errorf("testdata leaked into the load: %s", p.PkgPath)
		}
		byPath[p.PkgPath] = p
	}
	for _, want := range []string{
		"repro",
		"repro/internal/faults",
		"repro/internal/node",
		"repro/internal/alloc_test", // external test package built against export_test.go
		"repro/cmd/repro",
	} {
		if byPath[want] == nil {
			t.Errorf("missing package %s", want)
		}
	}
	if p := byPath["repro/internal/node"]; p != nil {
		if p.Types == nil || p.TypesInfo == nil || len(p.TypesInfo.Defs) == 0 {
			t.Error("node package loaded without type information")
		}
	}
}

// TestLoadSkipsTestsWhenAsked checks the IncludeTests=false mode used
// for fast lint-only loads.
func TestLoadSkipsTestsWhenAsked(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, "repro", false).Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.HasSuffix(p.PkgPath, "_test") {
			t.Errorf("external test package loaded with IncludeTests=false: %s", p.PkgPath)
		}
	}
}
