package papi

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/tlb"
	"repro/internal/vm"
)

func TestReadReflectsTLBActivity(t *testing.T) {
	cpu := machine.Opteron().CPU
	d := tlb.New(&cpu)
	before := Read(d)
	if before.TotalMisses() != 0 {
		t.Fatal("fresh DTLB has misses")
	}
	d.Access(0x1000, vm.Small)
	d.Access(0x1000, vm.Small)
	d.Access(0x4000_0000_0000, vm.Huge)
	after := Read(d)
	if after.DTLB4KAccesses != 2 || after.DTLB4KMisses != 1 {
		t.Fatalf("4K counters wrong: %+v", after)
	}
	if after.DTLB2MAccesses != 1 || after.DTLB2MMisses != 1 {
		t.Fatalf("2M counters wrong: %+v", after)
	}
	if after.TotalMisses() != 2 {
		t.Fatalf("PAPI_TLB_DM = %d, want 2", after.TotalMisses())
	}
}

func TestSubDelta(t *testing.T) {
	a := Counters{DTLB4KAccesses: 10, DTLB4KMisses: 3, DTLB2MAccesses: 5, DTLB2MMisses: 2}
	b := Counters{DTLB4KAccesses: 4, DTLB4KMisses: 1, DTLB2MAccesses: 2, DTLB2MMisses: 2}
	d := a.Sub(b)
	if d.DTLB4KAccesses != 6 || d.DTLB4KMisses != 2 || d.DTLB2MAccesses != 3 || d.DTLB2MMisses != 0 {
		t.Fatalf("delta wrong: %+v", d)
	}
}

func TestStringFormat(t *testing.T) {
	s := Counters{DTLB4KMisses: 7}.String()
	for _, want := range []string{"DTLB_4K", "DTLB_2M", "PAPI_TLB_DM=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
