// Package papi is the performance-counter facade of the reproduction,
// standing in for the PAPI library the paper uses on the AMD Opteron
// ("we instrumented an AMD Opteron system with PAPI to read the processor
// performance counters"). Counters come from the per-rank TLB simulator
// and the memory model, not formulas.
package papi

import (
	"fmt"

	"repro/internal/tlb"
)

// Counters is one snapshot of the hardware counters the paper reads.
type Counters struct {
	DTLB4KAccesses int64
	DTLB4KMisses   int64
	DTLB2MAccesses int64
	DTLB2MMisses   int64
}

// TotalMisses sums both entry files — PAPI_TLB_DM.
func (c Counters) TotalMisses() int64 { return c.DTLB4KMisses + c.DTLB2MMisses }

// Sub returns the counter delta c - o (end minus start of a region of
// interest).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		DTLB4KAccesses: c.DTLB4KAccesses - o.DTLB4KAccesses,
		DTLB4KMisses:   c.DTLB4KMisses - o.DTLB4KMisses,
		DTLB2MAccesses: c.DTLB2MAccesses - o.DTLB2MAccesses,
		DTLB2MMisses:   c.DTLB2MMisses - o.DTLB2MMisses,
	}
}

// String formats the snapshot PAPI-style.
func (c Counters) String() string {
	return fmt.Sprintf("DTLB_4K[acc=%d miss=%d] DTLB_2M[acc=%d miss=%d] PAPI_TLB_DM=%d",
		c.DTLB4KAccesses, c.DTLB4KMisses, c.DTLB2MAccesses, c.DTLB2MMisses, c.TotalMisses())
}

// Read snapshots a DTLB's counters.
func Read(d *tlb.DTLB) Counters {
	s4, s2 := d.Small.Stats(), d.Large.Stats()
	return Counters{
		DTLB4KAccesses: s4.Accesses(),
		DTLB4KMisses:   s4.Misses,
		DTLB2MAccesses: s2.Accesses(),
		DTLB2MMisses:   s2.Misses,
	}
}
