package phys

import (
	"fmt"
	"sync"

	"repro/internal/machine"
)

// Backing store: the simulator moves real bytes so that end-to-end tests
// (Pack/Unpack identity, NAS numerics, RDMA) verify data integrity, not
// just timing. Frame contents are allocated lazily on first write; a read
// of a never-written frame observes zeros, like freshly mapped memory.

type frameData = [machine.SmallPageSize]byte

// dataStore is split out of Memory so the hot read/write path takes its
// own lock and never contends with frame allocation.
type dataStore struct {
	mu     sync.RWMutex
	frames map[Frame]*frameData
}

func (d *dataStore) frame(f Frame, create bool) *frameData {
	d.mu.RLock()
	fd := d.frames[f]
	d.mu.RUnlock()
	if fd != nil || !create {
		return fd
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frames == nil {
		d.frames = make(map[Frame]*frameData)
	}
	if fd = d.frames[f]; fd == nil {
		fd = new(frameData)
		d.frames[f] = fd
	}
	return fd
}

// WritePhys copies p into physical memory starting at address pa,
// crossing frame boundaries as needed.
func (m *Memory) WritePhys(pa Addr, p []byte) {
	for len(p) > 0 {
		f := Frame(pa / machine.SmallPageSize)
		off := int(pa % machine.SmallPageSize)
		n := machine.SmallPageSize - off
		if n > len(p) {
			n = len(p)
		}
		fd := m.data.frame(f, true)
		copy(fd[off:off+n], p[:n])
		pa += Addr(n)
		p = p[n:]
	}
}

// ReadPhys fills p from physical memory starting at address pa.
func (m *Memory) ReadPhys(pa Addr, p []byte) {
	for len(p) > 0 {
		f := Frame(pa / machine.SmallPageSize)
		off := int(pa % machine.SmallPageSize)
		n := machine.SmallPageSize - off
		if n > len(p) {
			n = len(p)
		}
		if fd := m.data.frame(f, false); fd != nil {
			copy(p[:n], fd[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				p[i] = 0
			}
		}
		pa += Addr(n)
		p = p[n:]
	}
}

// CopyPhys copies n bytes from physical address src to physical address
// dst, possibly between different alignments. Used by the DMA engine.
func (m *Memory) CopyPhys(dst, src Addr, n int) {
	if n < 0 {
		panic(fmt.Sprintf("phys: negative copy length %d", n))
	}
	buf := make([]byte, n)
	m.ReadPhys(src, buf)
	m.WritePhys(dst, buf)
}
