package phys

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/machine"
)

func spec(t *testing.T, s string) *faults.Spec {
	t.Helper()
	sp, err := faults.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestPoolCapTrimsAtAttach(t *testing.T) {
	m := testMem(t)
	total := m.HugeTotal()
	m.SetFaults(faults.New(spec(t, "seed=1,hugecap=8"), 0))
	if got := m.HugeAvailable(); got != 8 {
		t.Fatalf("capped pool exposes %d pages, want 8", got)
	}
	st := m.Stats()
	if st.HugeRemoved != int64(total-8) {
		t.Fatalf("HugeRemoved = %d, want %d", st.HugeRemoved, total-8)
	}
}

func TestInjectedHugeFailIsOutOfHugepages(t *testing.T) {
	m := testMem(t)
	m.SetFaults(faults.New(spec(t, "seed=1,hugefail=1"), 0)) // every call fails
	_, err := m.AllocHuge()
	if !errors.Is(err, ErrOutOfHugepages) {
		t.Fatalf("got %v, want ErrOutOfHugepages", err)
	}
	st := m.Stats()
	if st.HugeInjected != 1 || st.HugeFailures != 1 {
		t.Fatalf("injected failure not counted: %+v", st)
	}
	if m.HugeAvailable() == 0 {
		t.Fatal("spurious refusal should not consume pages")
	}
}

func TestShrinkRemovesFreePages(t *testing.T) {
	m := testMem(t)
	m.SetFaults(faults.New(spec(t, "seed=1,shrink=1:3"), 0)) // shrink on every call
	before := m.HugeAvailable()
	if _, err := m.AllocHuge(); err != nil {
		t.Fatal(err)
	}
	// One page allocated, three removed by the shrink.
	if got := m.HugeAvailable(); got != before-4 {
		t.Fatalf("available = %d, want %d", got, before-4)
	}
	if st := m.Stats(); st.HugeRemoved != 3 {
		t.Fatalf("HugeRemoved = %d, want 3", st.HugeRemoved)
	}
}

func TestCoWAllocExemptFromInjection(t *testing.T) {
	m := testMem(t)
	m.SetFaults(faults.New(spec(t, "seed=1,hugefail=1"), 0))
	if _, err := m.AllocHugeCoW(); err != nil {
		t.Fatalf("CoW allocation should bypass injected refusals: %v", err)
	}
}

func TestReserveComposesAndValidates(t *testing.T) {
	m := NewMemory(machine.Opteron())
	if err := m.Reserve(4); err != nil {
		t.Fatal(err)
	}
	if err := m.Reserve(6); err != nil {
		t.Fatal(err)
	}
	if got := m.Reserved(); got != 10 {
		t.Fatalf("reserves should compose: held %d, want 10", got)
	}
	if err := m.Reserve(m.HugeTotal()); !errors.Is(err, ErrBadReserve) {
		t.Fatalf("overcommitting reserve: got %v, want ErrBadReserve", err)
	}
	if got := m.Reserved(); got != 10 {
		t.Fatalf("failed Reserve changed the hold: %d", got)
	}
	if err := m.Unreserve(11); !errors.Is(err, ErrBadReserve) {
		t.Fatalf("over-release: got %v, want ErrBadReserve", err)
	}
	if err := m.Unreserve(10); err != nil {
		t.Fatal(err)
	}
	if err := m.Reserve(-1); !errors.Is(err, ErrBadReserve) {
		t.Fatalf("negative reserve: got %v, want ErrBadReserve", err)
	}
}
