package phys

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func testMem(t *testing.T) *Memory {
	t.Helper()
	return NewMemory(machine.Opteron())
}

func TestFrameAllocFree(t *testing.T) {
	m := testMem(t)
	a, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two live frames share a number")
	}
	if err := m.FreeFrame(a); err != nil {
		t.Fatal(err)
	}
	c, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("LIFO reuse expected: got %d want %d", c, a)
	}
	st := m.Stats()
	if st.SmallAllocated != 2 {
		t.Fatalf("SmallAllocated = %d, want 2", st.SmallAllocated)
	}
}

func TestHugeAllocContiguity(t *testing.T) {
	m := testMem(t)
	f, err := m.AllocHuge()
	if err != nil {
		t.Fatal(err)
	}
	if (uint64(f)*machine.SmallPageSize)%machine.HugePageSize != 0 {
		t.Fatalf("hugepage frame %d not 2MiB-aligned", f)
	}
	g, err := m.AllocHuge()
	if err != nil {
		t.Fatal(err)
	}
	if g == f {
		t.Fatal("same hugepage handed out twice")
	}
	if err := m.FreeHuge(f); err != nil {
		t.Fatal(err)
	}
	if err := m.FreeHuge(f); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free: got %v, want ErrDoubleFree", err)
	}
}

func TestHugePoolExhaustion(t *testing.T) {
	m := testMem(t)
	total := m.HugeTotal()
	for i := 0; i < total; i++ {
		if _, err := m.AllocHuge(); err != nil {
			t.Fatalf("alloc %d/%d failed: %v", i, total, err)
		}
	}
	if _, err := m.AllocHuge(); !errors.Is(err, ErrOutOfHugepages) {
		t.Fatalf("got %v, want ErrOutOfHugepages", err)
	}
	if m.Stats().HugeFailures != 1 {
		t.Fatal("failure not counted")
	}
}

func TestReserveBlocksAllocation(t *testing.T) {
	m := testMem(t)
	avail := m.HugeAvailable()
	if err := m.Reserve(avail); err != nil { // hold everything back
		t.Fatal(err)
	}
	if _, err := m.AllocHuge(); !errors.Is(err, ErrReserveHeld) {
		t.Fatalf("got %v, want ErrReserveHeld", err)
	}
	if err := m.Unreserve(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocHuge(); err != nil {
		t.Fatalf("one page above reserve should allocate: %v", err)
	}
	// Now free == reserve again; next alloc must fail.
	if _, err := m.AllocHuge(); !errors.Is(err, ErrReserveHeld) {
		t.Fatalf("got %v, want ErrReserveHeld", err)
	}
}

func TestSmallFramesNeverOverlapHugeZone(t *testing.T) {
	m := testMem(t)
	h, err := m.AllocHuge()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f >= h && f < h+machine.SmallPerHuge {
			t.Fatalf("small frame %d landed inside hugepage at %d", f, h)
		}
	}
}

func TestPhysReadWrite(t *testing.T) {
	m := testMem(t)
	// Cross a frame boundary deliberately.
	pa := Addr(machine.SmallPageSize - 3)
	in := []byte{1, 2, 3, 4, 5, 6, 7}
	m.WritePhys(pa, in)
	out := make([]byte, len(in))
	m.ReadPhys(pa, out)
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("byte %d: got %d want %d", i, out[i], in[i])
		}
	}
	// Never-written memory reads as zero.
	z := make([]byte, 16)
	m.ReadPhys(1<<28, z)
	for _, b := range z {
		if b != 0 {
			t.Fatal("fresh memory must read zero")
		}
	}
}

func TestCopyPhys(t *testing.T) {
	m := testMem(t)
	src, dst := Addr(100), Addr(2*machine.SmallPageSize-10)
	in := make([]byte, 64)
	for i := range in {
		in[i] = byte(i * 7)
	}
	m.WritePhys(src, in)
	m.CopyPhys(dst, src, len(in))
	out := make([]byte, len(in))
	m.ReadPhys(dst, out)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("CopyPhys corrupted byte %d", i)
		}
	}
}

// Property: any interleaving of allocs and frees never hands out a frame
// that is still live, and never exceeds the hugepage zone base.
func TestQuickFrameUniqueness(t *testing.T) {
	m := testMem(t)
	live := map[Frame]bool{}
	var order []Frame
	f := func(op uint8) bool {
		if op%3 == 0 && len(order) > 0 {
			// free the oldest live frame
			fr := order[0]
			order = order[1:]
			delete(live, fr)
			return m.FreeFrame(fr) == nil
		}
		fr, err := m.AllocFrame()
		if err != nil {
			return false
		}
		if live[fr] {
			return false // double-handout
		}
		live[fr] = true
		order = append(order, fr)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestScramble(t *testing.T) {
	m := testMem(t)
	m.Scramble(1024)
	if got := m.Stats().SmallAllocated; got != 0 {
		t.Fatalf("Scramble leaked %d frames", got)
	}
	// After scrambling, two consecutive allocations should usually not be
	// physically adjacent (the point of the warm-up).
	a, _ := m.AllocFrame()
	b, _ := m.AllocFrame()
	if b == a+1 {
		t.Fatalf("post-scramble frames are contiguous (%d, %d)", a, b)
	}
}
