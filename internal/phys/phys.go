// Package phys models physical memory as seen by the registration path:
// a pool of 4 KiB frames plus a hugetlbfs-style pool of 2 MiB hugepages
// that must be set aside at boot.
//
// Two properties matter for the paper and are modelled here:
//
//  1. Small-page allocations fragment. After any realistic allocation
//     history, consecutive virtual pages map to scattered physical frames,
//     so a buffer of N small pages needs N distinct address translations.
//  2. Hugepages are physically contiguous by construction, so one 2 MiB
//     buffer needs one translation, and the hardware prefetcher can stream
//     across the whole extent.
//
// The pool also implements the reservation the paper's library keeps for
// fork/Copy-on-Write ("it must leave a reserve of hugepages that are needed
// when forking processes").
package phys

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Frame is a physical frame number (4 KiB units). The physical byte
// address of a frame f is f * machine.SmallPageSize.
type Frame uint64

// Addr is a physical byte address.
type Addr uint64

// Errors returned by the allocator.
var (
	ErrOutOfMemory    = errors.New("phys: out of physical memory")
	ErrOutOfHugepages = errors.New("phys: hugepage pool exhausted")
	ErrReserveHeld    = errors.New("phys: request would dip into the CoW reserve")
	ErrDoubleFree     = errors.New("phys: double free")
	ErrBadReserve     = errors.New("phys: reserve exceeds hugepage pool")
)

// Memory is the physical memory of one node. It is safe for concurrent use
// by multiple simulated processes.
type Memory struct {
	mu sync.Mutex

	totalFrames int64
	// next is the bump pointer for never-used frames.
	next Frame
	// free holds recycled small frames in LIFO order. LIFO is deliberate:
	// it maximises temporal locality like a real page allocator's per-CPU
	// lists, and it also guarantees that a warmed-up system hands out
	// physically *discontiguous* frame sequences, which is the property
	// the registration path cares about.
	free []Frame

	// hugeFree holds the indices of free hugepages in the boot-time pool.
	// Hugepage i covers frames [hugeBase + i*512, hugeBase + (i+1)*512).
	hugeBase  Frame
	hugeTotal int
	hugeFree  []int
	hugeBusy  map[int]bool
	// hugeReserved is the number of pool pages held back for fork/CoW;
	// AllocHuge refuses to hand them out. Reservations compose: every
	// Reserve call adds to the total (and validates it against the pool)
	// so several components sharing one Memory each keep their own hold.
	hugeReserved int

	// inj, when set, injects hugepage-pool faults (spurious allocation
	// failures, mid-run pool shrinks). Nil = no faults.
	inj *faults.Injector

	stats Stats

	// cur, when set, stamps hugepage-pool incidents (injected failures,
	// shrinks, exhaustion) as instant trace markers. Nil = no tracing.
	cur *trace.Cursor

	data dataStore
}

// Stats reports allocator activity.
type Stats struct {
	SmallAllocated int64 // gauge: currently allocated small frames
	SmallPeak      int64
	HugeAllocated  int // gauge: currently allocated hugepages
	HugePeak       int
	HugeFailures   int64 // AllocHuge calls refused
	HugeInjected   int64 // refusals that were injected faults
	HugeRemoved    int64 // free pages removed by fault injection (cap + shrink)
}

// NewMemory builds the physical memory of one machine: the hugepage pool
// is carved from the top of memory, everything below is the small-frame
// zone.
func NewMemory(m *machine.Machine) *Memory {
	totalFrames := m.Mem.TotalBytes / machine.SmallPageSize
	hugeFrames := int64(m.Mem.HugePool) * machine.SmallPerHuge
	if hugeFrames >= totalFrames {
		panic(fmt.Sprintf("phys: hugepage pool (%d pages) exceeds memory", m.Mem.HugePool))
	}
	mem := &Memory{
		totalFrames: totalFrames,
		hugeBase:    Frame(totalFrames - hugeFrames),
		hugeTotal:   m.Mem.HugePool,
		hugeBusy:    make(map[int]bool),
	}
	for i := m.Mem.HugePool - 1; i >= 0; i-- {
		mem.hugeFree = append(mem.hugeFree, i)
	}
	return mem
}

// AllocFrame hands out one small frame.
func (m *Memory) AllocFrame() (Frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var f Frame
	switch {
	case len(m.free) > 0:
		f = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
	case m.next < m.hugeBase:
		f = m.next
		m.next++
	default:
		return 0, ErrOutOfMemory
	}
	m.stats.SmallAllocated++
	if m.stats.SmallAllocated > m.stats.SmallPeak {
		m.stats.SmallPeak = m.stats.SmallAllocated
	}
	return f, nil
}

// FreeFrame returns one small frame to the pool.
func (m *Memory) FreeFrame(f Frame) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f >= m.hugeBase {
		return fmt.Errorf("phys: frame %d belongs to the hugepage zone", f)
	}
	m.free = append(m.free, f)
	m.stats.SmallAllocated--
	if m.stats.SmallAllocated < 0 {
		return ErrDoubleFree
	}
	return nil
}

// SetFaults attaches a fault injector. An injector with a pool cap
// immediately trims the free list to the cap, modeling a host whose
// hugetlbfs pool is smaller than the machine description promises.
func (m *Memory) SetFaults(inj *faults.Injector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inj = inj
	if cap := inj.HugePoolCap(); cap > 0 && len(m.hugeFree) > cap {
		m.removeFreeLocked(len(m.hugeFree) - cap)
	}
}

// SetTrace attaches a trace cursor; hugepage-pool incidents stamp at its
// current position (the owning rank moves the cursor at its entry points,
// the same way the address space is traced).
func (m *Memory) SetTrace(cur *trace.Cursor) {
	m.mu.Lock()
	m.cur = cur
	m.mu.Unlock()
}

// removeFreeLocked permanently drops up to n free hugepages from the
// pool (the pages that would have been handed out last, keeping the
// imminent allocation order stable).
func (m *Memory) removeFreeLocked(n int) {
	if n > len(m.hugeFree) {
		n = len(m.hugeFree)
	}
	m.hugeFree = m.hugeFree[n:]
	m.stats.HugeRemoved += int64(n)
}

// AllocHuge hands out one hugepage and returns its first frame. The
// returned extent of machine.SmallPerHuge frames is physically contiguous.
// It fails with ErrReserveHeld if only reserved pages remain.
func (m *Memory) AllocHuge() (Frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fail, shrink := m.inj.HugeAllocFault(); fail || shrink > 0 {
		if shrink > 0 {
			m.removeFreeLocked(shrink)
			if m.cur.Enabled() {
				m.cur.Event(trace.LPhys, "hugepool.shrink",
					trace.I64("pages", int64(shrink)), trace.I64("free", int64(len(m.hugeFree))))
			}
		}
		if fail {
			m.stats.HugeFailures++
			m.stats.HugeInjected++
			if m.cur.Enabled() {
				m.cur.Event(trace.LPhys, "hugepool.fail", trace.I64("injected", 1))
			}
			return 0, fmt.Errorf("injected fault: %w", ErrOutOfHugepages)
		}
	}
	if len(m.hugeFree) == 0 {
		m.stats.HugeFailures++
		if m.cur.Enabled() {
			m.cur.Event(trace.LPhys, "hugepool.empty")
		}
		return 0, ErrOutOfHugepages
	}
	if len(m.hugeFree) <= m.hugeReserved {
		m.stats.HugeFailures++
		if m.cur.Enabled() {
			m.cur.Event(trace.LPhys, "hugepool.reserve.held",
				trace.I64("free", int64(len(m.hugeFree))), trace.I64("reserved", int64(m.hugeReserved)))
		}
		return 0, ErrReserveHeld
	}
	idx := m.hugeFree[len(m.hugeFree)-1]
	m.hugeFree = m.hugeFree[:len(m.hugeFree)-1]
	m.hugeBusy[idx] = true
	m.stats.HugeAllocated++
	if m.stats.HugeAllocated > m.stats.HugePeak {
		m.stats.HugePeak = m.stats.HugeAllocated
	}
	return m.hugeBase + Frame(idx)*machine.SmallPerHuge, nil
}

// FreeHuge returns a hugepage (identified by its first frame) to the pool.
func (m *Memory) FreeHuge(f Frame) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f < m.hugeBase || (f-m.hugeBase)%machine.SmallPerHuge != 0 {
		return fmt.Errorf("phys: frame %d is not a hugepage base", f)
	}
	idx := int((f - m.hugeBase) / machine.SmallPerHuge)
	if !m.hugeBusy[idx] {
		return ErrDoubleFree
	}
	delete(m.hugeBusy, idx)
	m.hugeFree = append(m.hugeFree, idx)
	m.stats.HugeAllocated--
	return nil
}

// AllocHugeCoW hands out one hugepage for a copy-on-write break. Unlike
// AllocHuge it may dig into the reserve — satisfying fork/CoW demand is
// exactly what the reserve is held back for. It is also exempt from
// injected spurious failures for the same reason (though a fault-shrunk
// pool can still genuinely run dry underneath it).
func (m *Memory) AllocHugeCoW() (Frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.hugeFree) == 0 {
		m.stats.HugeFailures++
		return 0, ErrOutOfHugepages
	}
	idx := m.hugeFree[len(m.hugeFree)-1]
	m.hugeFree = m.hugeFree[:len(m.hugeFree)-1]
	m.hugeBusy[idx] = true
	m.stats.HugeAllocated++
	if m.stats.HugeAllocated > m.stats.HugePeak {
		m.stats.HugePeak = m.stats.HugeAllocated
	}
	return m.hugeBase + Frame(idx)*machine.SmallPerHuge, nil
}

// Reserve sets aside n additional hugepages that AllocHuge may not hand
// out; this is the fork/CoW reserve of the paper's mapping layer.
// Reservations compose — each caller's hold adds to the total, so
// several hugepage libraries sharing one Memory don't silently clobber
// each other (the old semantics: last caller wins). The combined
// reserve is validated against the boot-time pool size; a request that
// would push it past the pool fails with ErrBadReserve and leaves the
// reserve unchanged. Undo a hold with Unreserve.
func (m *Memory) Reserve(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: negative reserve %d", ErrBadReserve, n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hugeReserved+n > m.hugeTotal {
		return fmt.Errorf("%w: %d already held + %d requested > pool of %d",
			ErrBadReserve, m.hugeReserved, n, m.hugeTotal)
	}
	m.hugeReserved += n
	return nil
}

// Unreserve releases n pages of a hold taken with Reserve.
func (m *Memory) Unreserve(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: negative unreserve %d", ErrBadReserve, n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > m.hugeReserved {
		return fmt.Errorf("%w: releasing %d but only %d held", ErrBadReserve, n, m.hugeReserved)
	}
	m.hugeReserved -= n
	return nil
}

// Reserved reports the combined fork/CoW hold.
func (m *Memory) Reserved() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hugeReserved
}

// HugeAvailable reports how many hugepages AllocHuge could currently
// satisfy (free minus reserve).
func (m *Memory) HugeAvailable() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.hugeFree) - m.hugeReserved
	if n < 0 {
		n = 0
	}
	return n
}

// HugeTotal reports the boot-time pool size.
func (m *Memory) HugeTotal() int { return m.hugeTotal }

// Stats returns a snapshot of allocator statistics.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Scramble warms up the small-frame pool so that subsequent allocations
// are physically discontiguous, as on a long-running host. It allocates
// n frames and frees every other one.
func (m *Memory) Scramble(n int) {
	frames := make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			break
		}
		frames = append(frames, f)
	}
	for i := 0; i < len(frames); i += 2 {
		_ = m.FreeFrame(frames[i])
	}
	for i := 1; i < len(frames); i += 2 {
		_ = m.FreeFrame(frames[i])
	}
}
