// Package sched is the deterministic event scheduler at the heart of the
// simulator. It replaces "one free-running goroutine per rank, kept
// honest by ad-hoc ordering gates" with an event-driven run-to-completion
// design on a single logical clock: every simulated entity is a Task, and
// at any real-time instant exactly one task executes. Tasks block on
// simulated events — message arrival (Queue.Pop), credit return
// (Queue.Pop), WR/DMA ordering (Gate.Wait) — and the scheduler picks the
// next task to run from a min-heap keyed by (virtual ready time, rank,
// wake sequence).
//
// The determinism invariant lives entirely here: because the run queue
// order is a pure function of virtual timestamps and spawn/wake order,
// the execution schedule — and therefore every cost attribution in the
// simulation — is identical across runs, GOMAXPROCS settings and race
// builds. Layers above sched need no further synchronisation machinery.
//
// Tasks are implemented as goroutines with a strict baton-passing
// handshake (park/resume channels), not as continuations: each keeps a
// real stack, so rank bodies are written as straight-line code, while the
// scheduler guarantees mutual exclusion. Under -race every handshake is a
// happens-before edge, so the whole simulation is race-clean by
// construction.
package sched

import (
	"fmt"

	"repro/internal/simtime"
)

type taskState uint8

const (
	stateRunnable taskState = iota // in the run heap
	stateRunning                   // the one task currently executing
	stateParked                    // blocked on a Queue or Gate
	stateDone                      // fn returned; done gate open
)

// Task is one schedulable entity: a rank body, or a Sendrecv send half.
// All Task methods must be called while the task is the running task (the
// scheduler's mutual exclusion makes this the natural state of affairs).
type Task struct {
	s    *Scheduler
	rank int // heap tiebreak: owning rank
	sub  int // 0 = rank main task, >0 = forked sub-task
	clk  *simtime.Clock

	resume chan struct{} // scheduler -> task baton
	state  taskState

	readyAt simtime.Ticks // heap key when runnable
	seq     uint64        // wake sequence, final heap tiebreak
	heapIx  int

	// parked-list links (intrusive, so parking never allocates).
	parkPrev, parkNext *Task
	waitReason         string

	done *Gate // opened when fn returns, aborted or not
	fn   func(*Task) error
}

// Rank reports the owning rank passed to Spawn.
func (t *Task) Rank() int { return t.rank }

// Scheduler owns the run heap and the baton. The zero value is not ready;
// use New. A Scheduler is single-threaded by design: Run executes on the
// caller's goroutine and hands the baton to exactly one task at a time.
type Scheduler struct {
	heap  []*Task
	yield chan struct{} // task -> scheduler baton

	seq        uint64
	subSeq     int
	live       int   // spawned minus finished
	parked     *Task // head of the intrusive parked list
	aborted    bool
	dispatches uint64
}

// New returns an empty scheduler.
func New() *Scheduler {
	return &Scheduler{
		yield: make(chan struct{}, 1),
	}
}

// Dispatches reports how many times the scheduler has handed the baton to
// a task — the event count of the simulation.
func (s *Scheduler) Dispatches() uint64 { return s.dispatches }

// Aborted reports whether the run has been aborted (a task failed or a
// deadlock was detected). Blocking primitives consult it to fail fast.
func (s *Scheduler) Aborted() bool { return s.aborted }

// Spawn creates a task owned by rank, clocked by clk, and queues it at
// clk's current instant. fn runs when the scheduler first dispatches the
// task; a non-nil return aborts the whole run (every parked task is woken
// and its pending blocking operation fails). Spawn may be called before
// Run or from inside a running task.
func (s *Scheduler) Spawn(rank int, clk *simtime.Clock, fn func(*Task) error) *Task {
	s.subSeq++
	t := &Task{
		s:      s,
		rank:   rank,
		sub:    s.subSeq,
		clk:    clk,
		resume: make(chan struct{}, 1),
		done:   NewGate(s),
		fn:     fn,
	}
	s.live++
	s.push(t, clk.Now())
	//reprolint:ignore schedonly: the scheduler is the one place goroutines are born
	go t.run()
	return t
}

// run is the task goroutine: wait for the first dispatch, execute fn,
// mark completion and hand the baton back for good.
func (t *Task) run() {
	<-t.resume
	err := t.fn(t)
	t.state = stateDone
	t.s.live--
	if err != nil {
		t.s.abort()
	}
	t.done.Open()
	t.s.yield <- struct{}{}
}

// Run dispatches tasks until all have finished. It returns an error if
// the task graph deadlocked: every live task parked with nothing left in
// the run queue. On deadlock the run is aborted so parked tasks unwind
// through their failing blocking operations; if some task still refuses
// to finish (a Gate cycle — a programming error), Run gives up and
// reports the stuck tasks, leaking their goroutines.
func (s *Scheduler) Run() error {
	var deadlock error
	for s.live > 0 {
		if len(s.heap) == 0 {
			if !s.aborted {
				deadlock = fmt.Errorf("sched: deadlock: %s", s.parkedSummary())
				s.abort()
				continue
			}
			return fmt.Errorf("sched: %d tasks stuck after abort: %s", s.live, s.parkedSummary())
		}
		t := s.pop()
		t.state = stateRunning
		s.dispatches++
		t.resume <- struct{}{}
		<-s.yield
	}
	return deadlock
}

// abort marks the run dead and makes every parked task runnable so its
// blocking primitive can observe the abort and fail.
func (s *Scheduler) abort() {
	s.aborted = true
	for s.parked != nil {
		s.ready(s.parked)
	}
}

// parkedSummary names the parked tasks and what they wait on, for
// deadlock diagnostics.
func (s *Scheduler) parkedSummary() string {
	const max = 8
	out, n := "", 0
	for t := s.parked; t != nil; t = t.parkNext {
		if n == max {
			out += ", …"
			break
		}
		if n > 0 {
			out += ", "
		}
		out += fmt.Sprintf("rank %d (%s) at %d", t.rank, t.waitReason, t.readyAt)
		n++
	}
	if out == "" {
		return "no parked tasks"
	}
	return out
}

// park blocks the running task until ready() re-queues it and the
// scheduler dispatches it again.
func (t *Task) park(reason string) {
	t.state = stateParked
	t.waitReason = reason
	t.readyAt = t.clk.Now()
	t.parkNext = t.s.parked
	if t.s.parked != nil {
		t.s.parked.parkPrev = t
	}
	t.s.parked = t
	t.s.yield <- struct{}{}
	<-t.resume
	t.waitReason = ""
}

// ready moves a parked task into the run heap at its own virtual time.
// Tasks that are already runnable, running or done are left alone, so
// redundant wakeups (abort plus a later Gate open, say) are harmless.
func (s *Scheduler) ready(t *Task) {
	if t.state != stateParked {
		return
	}
	if t.parkPrev != nil {
		t.parkPrev.parkNext = t.parkNext
	} else {
		s.parked = t.parkNext
	}
	if t.parkNext != nil {
		t.parkNext.parkPrev = t.parkPrev
	}
	t.parkPrev, t.parkNext = nil, nil
	s.push(t, t.clk.Now())
}

// Yield re-queues the running task at its current virtual time and hands
// the baton back, letting any task with an earlier ready time run first.
// Long compute phases call this so they become scheduled events instead
// of opaque stretches the event order cannot see into. Nil-safe.
func (t *Task) Yield() {
	if t == nil {
		return
	}
	t.s.push(t, t.clk.Now())
	t.s.yield <- struct{}{}
	<-t.resume
}

// Join parks the running task until other has finished. waiter may be
// nil when other is already done.
func (t *Task) Join(other *Task) {
	other.done.Wait(t)
}

// ---- run heap: min-order on (readyAt, rank, seq) ----

func (s *Scheduler) push(t *Task, at simtime.Ticks) {
	t.state = stateRunnable
	t.readyAt = at
	s.seq++
	t.seq = s.seq
	s.heap = append(s.heap, t)
	i := len(s.heap) - 1
	t.heapIx = i
	for i > 0 {
		parent := (i - 1) / 2
		if !taskLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Scheduler) pop() *Task {
	t := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap[0].heapIx = 0
	s.heap[last] = nil
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && taskLess(s.heap[l], s.heap[min]) {
			min = l
		}
		if r < last && taskLess(s.heap[r], s.heap[min]) {
			min = r
		}
		if min == i {
			break
		}
		s.heapSwap(i, min)
		i = min
	}
	return t
}

func (s *Scheduler) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].heapIx = i
	s.heap[j].heapIx = j
}

// taskLess is the scheduler's total order: earliest virtual ready time
// first, then lowest rank, then wake order. Every component is a pure
// function of simulation state, which is what makes the schedule — and
// everything downstream of it — deterministic.
func taskLess(a, b *Task) bool {
	if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.seq < b.seq
}
