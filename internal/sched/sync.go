package sched

// Gate is a one-shot ordering barrier between tasks: waiters park until
// Open. Gates express the simulation's intra-rank ordering constraints
// (registration order, DMA order, release order between the two halves
// of a Sendrecv). Every gate must be guaranteed to open — the mpi layer
// opens them in defers — so Wait never consults the abort flag: on an
// aborted run the opener unwinds, its defer opens the gate, and the
// waiter proceeds into its own failing operation.
//
// A nil *Gate is inert: Open is a no-op and Wait returns immediately.
// Ungated code paths (plain Send/Recv) pass nil.
type Gate struct {
	s       *Scheduler
	opened  bool
	waiters []*Task
}

// NewGate returns a closed gate on s.
func NewGate(s *Scheduler) *Gate { return &Gate{s: s} }

// Open opens the gate and wakes every waiter. Calling Open more than
// once is allowed (defers double up with explicit opens).
func (g *Gate) Open() {
	if g == nil || g.opened {
		return
	}
	g.opened = true
	for _, w := range g.waiters {
		g.s.ready(w)
	}
	g.waiters = nil
}

// Opened reports whether the gate has been opened.
func (g *Gate) Opened() bool { return g != nil && g.opened }

// Wait parks t until the gate opens. Waiting on an open (or nil) gate
// returns immediately.
func (g *Gate) Wait(t *Task) {
	if g == nil {
		return
	}
	for !g.opened {
		if t == nil {
			panic("sched: Gate.Wait would block outside a task")
		}
		g.waiters = append(g.waiters, t)
		t.park("gate")
	}
}

// Queue is a bounded FIFO between tasks — the simulated replacement for
// a Go channel. Pop parks on empty, Push parks on full, and both fail
// (ok=false) when the run is aborted and no progress is possible. Pop
// prefers draining buffered values over reporting an abort, so teardown
// is deterministic: a receiver always sees everything that was sent
// before the failure.
type Queue[T any] struct {
	s        *Scheduler
	name     string
	capacity int // <= 0 means unbounded
	buf      []T
	head     int
	poppers  []*Task
	pushers  []*Task
}

// NewQueue returns an empty queue named for diagnostics; capacity <= 0
// makes it unbounded.
func NewQueue[T any](s *Scheduler, name string, capacity int) *Queue[T] {
	return &Queue[T]{s: s, name: name, capacity: capacity}
}

// Len reports the number of buffered values.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }

// Free reports how many more values fit without blocking (an unbounded
// queue always has room).
func (q *Queue[T]) Free() int {
	if q.capacity <= 0 {
		return int(^uint(0) >> 1)
	}
	return q.capacity - q.Len()
}

// Preload appends a value without capacity checks or wakeups — for
// filling a fresh queue (credit pools) before any task touches it.
func (q *Queue[T]) Preload(v T) { q.buf = append(q.buf, v) }

// Pop removes and returns the oldest value, parking t while the queue is
// empty. It returns ok=false only when the queue is empty and the run
// has been aborted.
func (q *Queue[T]) Pop(t *Task) (T, bool) {
	for q.Len() == 0 {
		if q.s.aborted {
			var zero T
			return zero, false
		}
		if t == nil {
			panic("sched: Pop on " + q.name + " would block outside a task")
		}
		q.poppers = append(q.poppers, t)
		t.park("pop " + q.name)
	}
	v := q.popFront()
	if len(q.pushers) > 0 {
		w := q.pushers[0]
		q.pushers = q.pushers[1:]
		q.s.ready(w)
	}
	return v, true
}

// Push appends a value, parking t while the queue is full. It returns
// false only when the queue is full and the run has been aborted.
func (q *Queue[T]) Push(t *Task, v T) bool {
	for q.capacity > 0 && q.Len() >= q.capacity {
		if q.s.aborted {
			return false
		}
		if t == nil {
			panic("sched: Push on " + q.name + " would block outside a task")
		}
		q.pushers = append(q.pushers, t)
		t.park("push " + q.name)
	}
	q.append(v)
	return true
}

// TryPush appends a value only if there is room, never parking. It
// reports whether the value was queued.
func (q *Queue[T]) TryPush(v T) bool {
	if q.capacity > 0 && q.Len() >= q.capacity {
		return false
	}
	q.append(v)
	return true
}

func (q *Queue[T]) append(v T) {
	q.buf = append(q.buf, v)
	if len(q.poppers) > 0 {
		w := q.poppers[0]
		q.poppers = q.poppers[1:]
		q.s.ready(w)
	}
}

// popFront takes the head slot, compacting the backing slice once the
// dead prefix dominates so long-lived queues (credit pools) stay O(cap).
func (q *Queue[T]) popFront() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}
