package sched

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/simtime"
)

// TestOrderFollowsVirtualTime: tasks become runnable at their clock's
// instant; the scheduler must dispatch in (time, rank) order regardless
// of spawn order.
func TestOrderFollowsVirtualTime(t *testing.T) {
	s := New()
	var order []string
	clocks := make([]simtime.Clock, 3)
	starts := []simtime.Ticks{300, 100, 200}
	for i := range clocks {
		i := i
		clocks[i].AdvanceTo(starts[i])
		s.Spawn(i, &clocks[i], func(tk *Task) error {
			order = append(order, fmt.Sprintf("r%d@%d", i, tk.clk.Now()))
			return nil
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, " ")
	if want := "r1@100 r2@200 r0@300"; got != want {
		t.Fatalf("dispatch order %q, want %q", got, want)
	}
	if s.Dispatches() != 3 {
		t.Fatalf("dispatches = %d, want 3", s.Dispatches())
	}
}

// TestTieBreakByRank: equal ready times dispatch in rank order.
func TestTieBreakByRank(t *testing.T) {
	s := New()
	var order []int
	clocks := make([]simtime.Clock, 4)
	for _, i := range []int{3, 1, 2, 0} { // scrambled spawn order
		i := i
		s.Spawn(i, &clocks[i], func(*Task) error {
			order = append(order, i)
			return nil
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range order {
		if r != i {
			t.Fatalf("order %v, want ranks ascending", order)
		}
	}
}

// TestQueueRendezvous: a bounded queue carries values in FIFO order, the
// consumer parks on empty, the producer parks on full, and both resume.
func TestQueueRendezvous(t *testing.T) {
	s := New()
	var prod, cons simtime.Clock
	q := NewQueue[int](s, "test", 2)
	var got []int
	s.Spawn(0, &prod, func(tk *Task) error {
		for i := 1; i <= 5; i++ {
			if !q.Push(tk, i) {
				return errors.New("push aborted")
			}
		}
		return nil
	})
	s.Spawn(1, &cons, func(tk *Task) error {
		cons.AdvanceTo(10) // start later so the producer fills up first
		for i := 0; i < 5; i++ {
			v, ok := q.Pop(tk)
			if !ok {
				return errors.New("pop aborted")
			}
			got = append(got, v)
		}
		return nil
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 3, 4, 5}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("consumed %v, want %v", got, want)
	}
}

// TestQueuePreloadAndTryPush: preloaded tokens drain first; TryPush
// respects capacity without parking.
func TestQueuePreloadAndTryPush(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "tokens", 2)
	q.Preload(7)
	q.Preload(8)
	if q.TryPush(9) {
		t.Fatal("TryPush succeeded on a full queue")
	}
	var clk simtime.Clock
	s.Spawn(0, &clk, func(tk *Task) error {
		if v, ok := q.Pop(tk); !ok || v != 7 {
			return fmt.Errorf("pop = %d,%v, want 7,true", v, ok)
		}
		if !q.TryPush(9) {
			return errors.New("TryPush failed with room available")
		}
		return nil
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGateOrdersWaiter: the waiter cannot pass the gate before the
// opener opens it, whatever the clocks say.
func TestGateOrdersWaiter(t *testing.T) {
	s := New()
	g := NewGate(s)
	var opener, waiter simtime.Clock
	waiter.AdvanceTo(1) // opener is dispatched first
	var order []string
	s.Spawn(0, &opener, func(*Task) error {
		order = append(order, "pre-open")
		g.Open()
		return nil
	})
	s.Spawn(1, &waiter, func(tk *Task) error {
		g.Wait(tk)
		order = append(order, "post-wait")
		return nil
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, " "); got != "pre-open post-wait" {
		t.Fatalf("order %q", got)
	}
	var nilGate *Gate
	nilGate.Open()    // must not panic
	nilGate.Wait(nil) // must not block
}

// TestAbortFailsBlockedPops: a failing task wakes a parked peer, whose
// Pop reports the abort; buffered values still drain first.
func TestAbortFailsBlockedPops(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "data", 0)
	q.Preload(42)
	var bad, good simtime.Clock
	var got []int
	var popOK []bool
	s.Spawn(0, &good, func(tk *Task) error {
		for i := 0; i < 2; i++ {
			v, ok := q.Pop(tk)
			got = append(got, v)
			popOK = append(popOK, ok)
		}
		return nil
	})
	s.Spawn(1, &bad, func(tk *Task) error {
		bad.AdvanceTo(5)
		tk.Yield() // let the popper drain the buffered value and park
		return errors.New("injected failure")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err) // body errors are the caller's to collect; Run only reports deadlocks
	}
	if len(got) != 2 || got[0] != 42 || !popOK[0] || popOK[1] {
		t.Fatalf("pops = %v ok=%v, want buffered 42 then aborted", got, popOK)
	}
	if !s.Aborted() {
		t.Fatal("scheduler not marked aborted")
	}
}

// TestDeadlockDetected: two tasks popping empty queues is a deadlock;
// Run reports it and both tasks unwind.
func TestDeadlockDetected(t *testing.T) {
	s := New()
	qa := NewQueue[int](s, "a", 0)
	qb := NewQueue[int](s, "b", 0)
	var ca, cb simtime.Clock
	unwound := 0
	s.Spawn(0, &ca, func(tk *Task) error {
		if _, ok := qa.Pop(tk); !ok {
			unwound++
		}
		return nil
	})
	s.Spawn(1, &cb, func(tk *Task) error {
		if _, ok := qb.Pop(tk); !ok {
			unwound++
		}
		return nil
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock report", err)
	}
	if unwound != 2 {
		t.Fatalf("%d tasks unwound, want 2", unwound)
	}
}

// TestYieldInterleavesByTime: compute loops that advance their clocks
// and yield interleave in virtual-time order, giving the deterministic
// round-robin the event heap implies.
func TestYieldInterleavesByTime(t *testing.T) {
	s := New()
	var order []string
	clocks := make([]simtime.Clock, 2)
	steps := []simtime.Ticks{10, 15}
	for i := range clocks {
		i := i
		s.Spawn(i, &clocks[i], func(tk *Task) error {
			for j := 0; j < 3; j++ {
				clocks[i].Advance(steps[i])
				order = append(order, fmt.Sprintf("r%d@%d", i, clocks[i].Now()))
				tk.Yield()
			}
			return nil
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "r0@10 r1@15 r0@20 r1@30 r0@30 r1@45"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

// TestJoinWaitsForSubTask: Join parks until the sub-task has finished,
// including sub-tasks spawned mid-run.
func TestJoinWaitsForSubTask(t *testing.T) {
	s := New()
	var main, sub simtime.Clock
	var order []string
	s.Spawn(0, &main, func(tk *Task) error {
		sub.AdvanceTo(main.Now())
		st := s.Spawn(0, &sub, func(stk *Task) error {
			sub.Advance(100)
			stk.Yield()
			order = append(order, "sub")
			return nil
		})
		tk.Join(st)
		order = append(order, "joined")
		tk.Join(st) // joining a finished task returns immediately
		return nil
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, " "); got != "sub joined" {
		t.Fatalf("order %q", got)
	}
}

// TestSchedulerReuse: a scheduler runs several generations of tasks
// (worlds run warmup and timed phases through the same scheduler).
func TestSchedulerReuse(t *testing.T) {
	s := New()
	for gen := 0; gen < 3; gen++ {
		var clk simtime.Clock
		ran := false
		s.Spawn(0, &clk, func(*Task) error { ran = true; return nil })
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Fatalf("generation %d did not run", gen)
		}
	}
}
