package mpip

import (
	"strings"
	"sync"
	"testing"
)

func TestAccumulationAndSplit(t *testing.T) {
	p := New()
	p.AddCall("Send", 100)
	p.AddCall("Send", 50)
	p.AddCall("Recv", 25)
	p.AddCompute(1000)
	p.AddAlloc(10)
	if got := p.CommTime(); got != 175 {
		t.Fatalf("CommTime = %d, want 175", got)
	}
	if got := p.ComputeTime(); got != 1010 {
		t.Fatalf("ComputeTime = %d, want 1010 (alloc counts as compute)", got)
	}
	if got := p.AllocTime(); got != 10 {
		t.Fatalf("AllocTime = %d", got)
	}
	calls := p.Calls()
	if len(calls) != 2 || calls[0].Name != "Send" || calls[0].Count != 2 || calls[0].Time != 150 {
		t.Fatalf("calls = %+v", calls)
	}
}

func TestCallsSortedByTimeThenName(t *testing.T) {
	p := New()
	p.AddCall("b", 10)
	p.AddCall("a", 10)
	p.AddCall("c", 99)
	calls := p.Calls()
	if calls[0].Name != "c" || calls[1].Name != "a" || calls[2].Name != "b" {
		t.Fatalf("order wrong: %+v", calls)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.AddCall("Send", 10)
	a.AddCompute(5)
	b.AddCall("Send", 20)
	b.AddCall("Bcast", 7)
	b.AddAlloc(3)
	a.Merge(b)
	if a.CommTime() != 37 {
		t.Fatalf("merged comm = %d", a.CommTime())
	}
	if a.ComputeTime() != 8 {
		t.Fatalf("merged compute = %d", a.ComputeTime())
	}
	if a.AllocTime() != 3 {
		t.Fatalf("merged alloc = %d", a.AllocTime())
	}
	// b unchanged.
	if b.CommTime() != 27 {
		t.Fatal("merge mutated the source")
	}
}

func TestReportRendersAll(t *testing.T) {
	p := New()
	p.AddCall("Sendrecv", 512)
	p.AddCompute(1000)
	rep := p.Report()
	for _, want := range []string{"MPI Time", "Sendrecv", "calls", "App time"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestNilProfileIsSafe(t *testing.T) {
	var p *Profile
	p.AddCall("Send", 1) // must not panic
	p.AddCompute(1)
	p.AddAlloc(1)
}

func TestConcurrentAddCall(t *testing.T) {
	p := New()
	var wg sync.WaitGroup //reprolint:ignore schedonly: exercises the profile's own thread safety
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() { //reprolint:ignore schedonly: exercises the profile's own thread safety
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.AddCall("Send", 1)
				p.AddCompute(1)
			}
		}()
	}
	wg.Wait()
	if p.CommTime() != 8000 || p.ComputeTime() != 8000 {
		t.Fatalf("lost updates: comm=%d compute=%d", p.CommTime(), p.ComputeTime())
	}
}

func TestEmptyProfile(t *testing.T) {
	p := New()
	if p.CommTime() != 0 || len(p.Calls()) != 0 {
		t.Fatal("empty profile not empty")
	}
	if !strings.Contains(p.Report(), "MPI Time") {
		t.Fatal("empty report malformed")
	}
}
