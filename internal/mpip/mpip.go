// Package mpip is the profiling layer of the reproduction, standing in
// for the mpiP library the paper uses: "we obtained our measurements by
// utilizing the mpip library, which is able to instrument MPI functions
// ... Thus, we are able to distinguish between communication and
// computation time." Every MPI call records its elapsed virtual time by
// call name; compute phases record separately; Figure 6's communication /
// other / overall split is read straight off this profile.
package mpip

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/simtime"
)

// Profile accumulates per-call-site communication time for one rank.
// It is safe for concurrent use (Sendrecv runs its send half on a
// second goroutine).
type Profile struct {
	mu      sync.Mutex
	calls   map[string]*CallStats
	compute simtime.Ticks
	alloc   simtime.Ticks
}

// CallStats is the aggregate for one MPI entry point.
type CallStats struct {
	Name  string
	Count int64
	Time  simtime.Ticks
}

// New creates an empty profile.
func New() *Profile {
	return &Profile{calls: make(map[string]*CallStats)}
}

// AddCall records one MPI call's elapsed time.
func (p *Profile) AddCall(name string, d simtime.Ticks) {
	if p == nil {
		return
	}
	p.mu.Lock()
	cs := p.calls[name]
	if cs == nil {
		cs = &CallStats{Name: name}
		p.calls[name] = cs
	}
	cs.Count++
	cs.Time += d
	p.mu.Unlock()
}

// AddCompute records application (non-MPI) time.
func (p *Profile) AddCompute(d simtime.Ticks) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.compute += d
	p.mu.Unlock()
}

// AddAlloc records allocator time (a sub-category of compute, reported
// separately because E7 cares about it).
func (p *Profile) AddAlloc(d simtime.Ticks) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.compute += d
	p.alloc += d
	p.mu.Unlock()
}

// CommTime is total time inside MPI calls.
func (p *Profile) CommTime() simtime.Ticks {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t simtime.Ticks
	for _, cs := range p.calls {
		t += cs.Time
	}
	return t
}

// ComputeTime is total recorded application time.
func (p *Profile) ComputeTime() simtime.Ticks {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compute
}

// AllocTime is total recorded allocator time.
func (p *Profile) AllocTime() simtime.Ticks {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alloc
}

// Calls returns per-call aggregates sorted by descending time.
func (p *Profile) Calls() []CallStats {
	p.mu.Lock()
	out := make([]CallStats, 0, len(p.calls))
	for _, cs := range p.calls {
		out = append(out, *cs)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Merge folds another profile into this one (whole-job aggregation).
func (p *Profile) Merge(q *Profile) {
	q.mu.Lock()
	calls := make([]CallStats, 0, len(q.calls))
	for _, cs := range q.calls {
		calls = append(calls, *cs)
	}
	compute, alloc := q.compute, q.alloc
	q.mu.Unlock()
	// The fold below is commutative, but merging in a fixed order keeps
	// p.calls' insertion history — and anything derived from it —
	// independent of map iteration order.
	sort.Slice(calls, func(i, j int) bool { return calls[i].Name < calls[j].Name })

	p.mu.Lock()
	for _, cs := range calls {
		mine := p.calls[cs.Name]
		if mine == nil {
			mine = &CallStats{Name: cs.Name}
			p.calls[cs.Name] = mine
		}
		mine.Count += cs.Count
		mine.Time += cs.Time
	}
	p.compute += compute
	p.alloc += alloc
	p.mu.Unlock()
}

// Report renders an mpiP-style text summary.
func (p *Profile) Report() string {
	var b strings.Builder
	comm, comp := p.CommTime(), p.ComputeTime()
	total := comm + comp
	fmt.Fprintf(&b, "@--- MPI Time (virtual) ------------------------------\n")
	fmt.Fprintf(&b, "App time %v, MPI time %v (%.1f%%)\n", total, comm, pct(comm, total))
	fmt.Fprintf(&b, "@--- Aggregate Time (top MPI callsites) --------------\n")
	for _, cs := range p.Calls() {
		fmt.Fprintf(&b, "%-14s calls %8d  time %12v  (%.1f%% of MPI)\n",
			cs.Name, cs.Count, cs.Time, pct(cs.Time, comm))
	}
	return b.String()
}

func pct(a, b simtime.Ticks) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
