// Package tlb simulates a data TLB with split entry files for 4 KiB and
// 2 MiB pages, the structure behind the paper's central caveat: the AMD
// Opteron has 544 small-page entries but only 8 hugepage entries, so
// placing everything in hugepages can *increase* TLB misses — up to eight
// times on NAS EP (Section 5.2) — even while communication improves.
package tlb

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// entry is one TLB slot. age implements true LRU within a set.
type entry struct {
	valid bool
	vpn   uint64
	age   uint64
}

// File is one set-associative entry file for a single page size.
type File struct {
	geo   machine.TLBGeometry
	sets  [][]entry
	tick  uint64
	stats FileStats
}

// FileStats counts accesses for one entry file.
type FileStats struct {
	Hits   int64
	Misses int64
}

// Accesses returns the total access count.
func (s FileStats) Accesses() int64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses, or 0 for an untouched file.
func (s FileStats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// NewFile builds an entry file from a geometry description.
func NewFile(geo machine.TLBGeometry) *File {
	if geo.Ways <= 0 || geo.Entries <= 0 || geo.Entries%geo.Ways != 0 {
		panic(fmt.Sprintf("tlb: bad geometry %+v", geo))
	}
	nsets := geo.Entries / geo.Ways
	f := &File{geo: geo, sets: make([][]entry, nsets)}
	for i := range f.sets {
		f.sets[i] = make([]entry, geo.Ways)
	}
	return f
}

// Access looks up a virtual page number; on a miss the LRU way of the set
// is replaced. It reports whether the access hit.
func (f *File) Access(vpn uint64) bool {
	f.tick++
	set := f.sets[vpn%uint64(len(f.sets))]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].age = f.tick
			f.stats.Hits++
			return true
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].age < set[victim].age {
			victim = i
		}
	}
	set[victim] = entry{valid: true, vpn: vpn, age: f.tick}
	f.stats.Misses++
	return false
}

// InvalidateRange drops every entry whose vpn lies in [lo, hi) — the
// targeted shootdown a hugepage demotion issues for the split range,
// cheaper than a full Flush and without perturbing unrelated entries.
func (f *File) InvalidateRange(lo, hi uint64) {
	for _, set := range f.sets {
		for i := range set {
			if set[i].valid && set[i].vpn >= lo && set[i].vpn < hi {
				set[i] = entry{}
			}
		}
	}
}

// Flush invalidates every entry (context switch / munmap shootdown).
func (f *File) Flush() {
	for _, set := range f.sets {
		for i := range set {
			set[i] = entry{}
		}
	}
}

// Stats returns the counters.
func (f *File) Stats() FileStats { return f.stats }

// ResetStats clears the counters without touching the entries.
func (f *File) ResetStats() { f.stats = FileStats{} }

// Geometry returns the file's geometry.
func (f *File) Geometry() machine.TLBGeometry { return f.geo }

// Reach returns the bytes of address space the file can map.
func (f *File) Reach(pageSize uint64) uint64 {
	return uint64(f.geo.Entries) * pageSize
}

// DTLB is the full data TLB of one core: one file per page size plus the
// walk penalty charged on each miss.
type DTLB struct {
	Small *File
	Large *File
	walk  simtime.Ticks
}

// New builds the DTLB of the given CPU.
func New(cpu *machine.CPU) *DTLB {
	return &DTLB{
		Small: NewFile(cpu.TLB4K),
		Large: NewFile(cpu.TLB2M),
		walk:  cpu.WalkTicks,
	}
}

// Access performs one data access at va with the given page class and
// returns the time penalty (0 on hit, the walk cost on a miss).
func (d *DTLB) Access(va vm.VA, class vm.PageClass) simtime.Ticks {
	if class == vm.Huge {
		if d.Large.Access(uint64(va) / machine.HugePageSize) {
			return 0
		}
		return d.walk
	}
	if d.Small.Access(uint64(va) / machine.SmallPageSize) {
		return 0
	}
	return d.walk
}

// Misses reports total misses across both files.
func (d *DTLB) Misses() int64 {
	return d.Small.Stats().Misses + d.Large.Stats().Misses
}

// Flush empties both files.
func (d *DTLB) Flush() {
	d.Small.Flush()
	d.Large.Flush()
}

// ResetStats clears both files' counters.
func (d *DTLB) ResetStats() {
	d.Small.ResetStats()
	d.Large.ResetStats()
}

// WalkTicks exposes the per-miss penalty (for analytic models that must
// agree with the simulator).
func (d *DTLB) WalkTicks() simtime.Ticks { return d.walk }
