package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/vm"
)

func TestFileHitAfterMiss(t *testing.T) {
	f := NewFile(machine.TLBGeometry{Entries: 8, Ways: 2})
	if f.Access(42) {
		t.Fatal("first access must miss")
	}
	if !f.Access(42) {
		t.Fatal("second access must hit")
	}
	st := f.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFileLRUWithinSet(t *testing.T) {
	// 2-way, 2 sets: pages 0,2,4 all map to set 0.
	f := NewFile(machine.TLBGeometry{Entries: 4, Ways: 2})
	f.Access(0)
	f.Access(2)
	f.Access(0) // refresh 0 -> 2 is now LRU
	f.Access(4) // evicts 2
	if !f.Access(0) {
		t.Fatal("0 should have survived (was MRU)")
	}
	if f.Access(2) {
		t.Fatal("2 should have been evicted")
	}
}

func TestFileCapacity(t *testing.T) {
	// Sequential working set within capacity: zero misses after warmup.
	geo := machine.TLBGeometry{Entries: 16, Ways: 4}
	f := NewFile(geo)
	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 16; p++ {
			f.Access(p)
		}
	}
	st := f.Stats()
	if st.Misses != 16 {
		t.Fatalf("misses = %d, want 16 (cold only)", st.Misses)
	}
	// Working set 2x capacity with a sequential sweep: LRU thrashes.
	f2 := NewFile(geo)
	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 32; p++ {
			f2.Access(p)
		}
	}
	if f2.Stats().Hits != 0 {
		t.Fatalf("sequential over-capacity sweep should never hit LRU, got %d hits", f2.Stats().Hits)
	}
}

func TestFlushAndReset(t *testing.T) {
	f := NewFile(machine.TLBGeometry{Entries: 4, Ways: 4})
	f.Access(1)
	f.Flush()
	if f.Access(1) {
		t.Fatal("hit after flush")
	}
	f.ResetStats()
	if s := f.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestDTLBSplitFiles(t *testing.T) {
	cpu := machine.Opteron().CPU
	d := New(&cpu)
	// A small-page access must not consume hugepage entries or vice versa.
	if p := d.Access(0x1000, vm.Small); p != cpu.WalkTicks {
		t.Fatalf("cold small access penalty = %d, want %d", p, cpu.WalkTicks)
	}
	if p := d.Access(0x1000, vm.Small); p != 0 {
		t.Fatalf("warm small access penalty = %d, want 0", p)
	}
	if d.Large.Stats().Accesses() != 0 {
		t.Fatal("small access touched the hugepage file")
	}
	if p := d.Access(0x40000000000, vm.Huge); p != cpu.WalkTicks {
		t.Fatal("cold huge access should walk")
	}
	if d.Misses() != 2 {
		t.Fatalf("total misses = %d, want 2", d.Misses())
	}
}

func TestOpteronHugeReachParadox(t *testing.T) {
	// The paper's central caveat: 8 hugepage entries reach 16 MiB, while
	// 544 small entries reach only ~2.1 MiB; but a scattered working set
	// of >8 distinct hugepage-sized regions thrashes the hugepage file
	// while fitting comfortably in the small one.
	cpu := machine.Opteron().CPU
	small := NewFile(cpu.TLB4K)
	large := NewFile(cpu.TLB2M)
	if large.Reach(machine.HugePageSize) <= small.Reach(machine.SmallPageSize) {
		t.Fatal("hugepage reach should exceed small reach")
	}
	// 64 hot 4K-pages spread across 64 distinct 2M regions.
	const hot = 64
	for round := 0; round < 10; round++ {
		for i := 0; i < hot; i++ {
			va := uint64(i) * 3 * machine.HugePageSize
			small.Access(va / machine.SmallPageSize)
			large.Access(va / machine.HugePageSize)
		}
	}
	if small.Stats().MissRate() > 0.2 {
		t.Fatalf("small-page file should hold 64 pages: miss rate %.2f", small.Stats().MissRate())
	}
	if large.Stats().MissRate() < 0.5 {
		t.Fatalf("hugepage file should thrash on 64 regions: miss rate %.2f", large.Stats().MissRate())
	}
}

// Property: hit+miss counts always equal accesses, and re-accessing the
// same page immediately always hits.
func TestQuickImmediateReaccess(t *testing.T) {
	f := NewFile(machine.TLBGeometry{Entries: 32, Ways: 4})
	fn := func(vpn uint32) bool {
		f.Access(uint64(vpn))
		return f.Access(uint64(vpn))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Accesses() != st.Hits+st.Misses {
		t.Fatal("counter identity violated")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFile(machine.TLBGeometry{Entries: 5, Ways: 2})
}

func TestInvalidateRange(t *testing.T) {
	f := NewFile(machine.TLBGeometry{Entries: 16, Ways: 4})
	for vpn := uint64(0); vpn < 8; vpn++ {
		f.Access(vpn)
	}
	f.InvalidateRange(2, 5)
	for vpn := uint64(0); vpn < 8; vpn++ {
		hit := f.Access(vpn)
		inRange := vpn >= 2 && vpn < 5
		if inRange && hit {
			t.Fatalf("vpn %d should have been shot down", vpn)
		}
		if !inRange && !hit {
			t.Fatalf("vpn %d outside the range was perturbed", vpn)
		}
	}
	// An empty range is a no-op.
	before := f.Stats()
	f.InvalidateRange(100, 100)
	for vpn := uint64(5); vpn < 8; vpn++ {
		if !f.Access(vpn) {
			t.Fatalf("vpn %d lost to an empty-range shootdown", vpn)
		}
	}
	if f.Stats().Misses != before.Misses {
		t.Fatal("empty-range shootdown caused misses")
	}
}
