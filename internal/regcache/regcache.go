// Package regcache implements the pin-down cache / lazy deregistration
// strategy of MPICH2-CH3-IB and MVAPICH2 that the paper uses as its
// baseline optimisation: "a pool of already registered memory is hold, so
// that memory registration is done only once for each virtual address".
//
// It also models the drawback the paper calls out — pinned memory
// "remains allocated to the application during their whole runtime" — by
// tracking the pinned-byte gauge and supporting an eviction bound.
package regcache

import (
	"container/list"
	"errors"
	"sort"
	"sync"

	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/verbs"
	"repro/internal/vm"
)

// sortMRs orders registrations by (VA, LKey) — a deterministic
// deregistration order for MR sets collected from map iteration, so
// same-seed runs replay identical dereg sequences. LKey breaks ties
// between zombie generations sharing a VA.
func sortMRs(mrs []*verbs.MR) {
	sort.Slice(mrs, func(i, j int) bool {
		if mrs[i].VA != mrs[j].VA {
			return mrs[i].VA < mrs[j].VA
		}
		return mrs[i].LKey < mrs[j].LKey
	})
}

// lookupTicks is the cost of probing the registration cache (a small
// tree/hash walk in the MPI library).
const lookupTicks = simtime.Ticks(40)

// memlockRetryLimit bounds how many evict-and-retry rounds Acquire runs
// when registration fails at the RLIMIT_MEMLOCK ceiling. Each round
// drops enough idle LRU entries to cover the request, so a round that
// evicted something and still failed means live registrations hold the
// budget — more rounds can't help for long, and an unbounded loop could
// live-lock two ranks registering in lockstep.
const memlockRetryLimit = 3

// Stats counts cache behaviour.
type Stats struct {
	Hits, Misses int64
	Evictions    int64
	PinnedBytes  int64 // current gauge: the paper's "less available physical memory" drawback
	PeakPinned   int64
	RegTicks     simtime.Ticks // time spent registering on misses
	DeregTicks   simtime.Ticks
	// MemlockRetries counts registrations that succeeded only after
	// evicting idle entries at the RLIMIT_MEMLOCK ceiling;
	// MemlockEvictions counts the entries dropped to make room.
	MemlockRetries   int64
	MemlockEvictions int64
}

type entry struct {
	mr  *verbs.MR
	ele *list.Element
	// refs counts Acquires not yet Released; an entry in use is never
	// deregistered, only marked zombie and torn down on final Release.
	refs   int
	zombie bool
}

// Cache is one rank's registration cache over a verbs context.
type Cache struct {
	ctx *verbs.Context
	// Lazy enables lazy deregistration. When false every Acquire
	// registers and every Release deregisters — the paper's
	// "deactivated lazy deregistration" configuration of Figure 5.
	Lazy bool
	// MaxPinned bounds pinned bytes; 0 means unbounded. Exceeding it
	// evicts least-recently-used regions.
	MaxPinned int64

	// pol, when set, is consulted per acquire to choose lazy-vs-eager
	// deregistration for that registration, overriding Lazy. Installed
	// once at node construction, before any traffic.
	pol Decider

	mu      sync.Mutex
	entries map[vm.VA]*entry     // keyed by region base
	byMR    map[*verbs.MR]*entry // every live entry, incl. zombies
	lru     *list.List           // front = most recent; values are vm.VA
	stats   Stats
}

// Decider chooses eager-vs-lazy deregistration per registration.
// internal/policy implements it; the interface lives here so the cache
// needs no policy import.
type Decider interface {
	// DecideLazy reports whether the registration of [va, va+length)
	// should stay cached (lazy deregistration). lazyDefault is the
	// cache's configured mode; maxPinned and pinnedBytes describe the
	// pinning budget and its current use.
	DecideLazy(va vm.VA, length uint64, lazyDefault bool, maxPinned, pinnedBytes int64) bool
}

// SetPolicy installs the per-acquire deregistration policy. Call before
// any traffic; nil restores the configured Lazy mode for every acquire.
func (c *Cache) SetPolicy(d Decider) { c.pol = d }

// New builds a cache over a verbs context.
func New(ctx *verbs.Context, lazy bool) *Cache {
	return &Cache{
		ctx:     ctx,
		Lazy:    lazy,
		entries: make(map[vm.VA]*entry),
		byMR:    make(map[*verbs.MR]*entry),
		lru:     list.New(),
	}
}

// Acquire returns a registration covering [va, va+length) plus the
// virtual time the call consumed. With lazy deregistration a previously
// registered region containing the range is reused.
//
// Requests are rounded to page boundaries of the underlying mapping
// before registration — the kernel pins whole pages regardless, and this
// is what lets byte-level message-length jitter (IS's varying partition
// sizes) reuse a cached registration.
func (c *Cache) Acquire(va vm.VA, length uint64) (*verbs.MR, simtime.Ticks, error) {
	return c.AcquireT(trace.Ctx{}, va, length)
}

// AcquireT is Acquire with tracing: the call is recorded as a
// regcache-layer "acquire" span at tc's position, with the cache
// lookup's outcome in its args and the registration work (RegMR spans,
// synchronous memlock evictions) nested inside. A zero Ctx records
// nothing and follows the exact untraced code path.
func (c *Cache) AcquireT(tc trace.Ctx, va vm.VA, length uint64) (*verbs.MR, simtime.Ticks, error) {
	if _, class, err := c.ctx.AS.Translate(va); err == nil {
		ps := class.Size()
		end := (uint64(va) + length + ps - 1) / ps * ps
		va = vm.VA(uint64(va) / ps * ps)
		length = end - uint64(va)
	}
	lazy := c.Lazy
	if c.pol != nil {
		c.mu.Lock()
		pinned := c.stats.PinnedBytes
		c.mu.Unlock()
		lazy = c.pol.DecideLazy(va, length, c.Lazy, c.MaxPinned, pinned)
	}
	if !lazy {
		mr, cost, err := c.ctx.RegMRT(tc, va, length)
		if err != nil {
			return nil, 0, err
		}
		c.mu.Lock()
		c.stats.Misses++
		c.stats.RegTicks += cost
		c.mu.Unlock()
		return mr, cost, nil
	}
	c.mu.Lock()
	cost := lookupTicks
	// Exact-base fast path, then containment scan.
	if e, ok := c.entries[va]; ok && e.mr.Length >= length {
		c.lru.MoveToFront(e.ele)
		e.refs++
		c.stats.Hits++
		c.mu.Unlock()
		if tc.Enabled() {
			tc.SpanAt(trace.LRegcache, "acquire", tc.Now(), cost,
				trace.I64("bytes", int64(length)), trace.I64("hit", 1))
		}
		return e.mr, cost, nil
	}
	// Several cached regions can contain the range (overlapping
	// page-rounded registrations at shifted displacements — IS's key
	// exchange produces exactly this), so the winner must be a pure
	// function of the cache contents: take the lowest base, never the
	// first map-iteration match. Bases are unique (the map key), so
	// lowest-base is a total order.
	var best *entry
	for _, e := range c.entries {
		if e.mr.VA <= va && uint64(va)+length <= uint64(e.mr.VA)+e.mr.Length {
			if best == nil || e.mr.VA < best.mr.VA {
				best = e
			}
		}
	}
	if best != nil {
		c.lru.MoveToFront(best.ele)
		best.refs++
		c.stats.Hits++
		c.mu.Unlock()
		if tc.Enabled() {
			tc.SpanAt(trace.LRegcache, "acquire", tc.Now(), cost,
				trace.I64("bytes", int64(length)), trace.I64("hit", 1))
		}
		return best.mr, cost, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	mr, regCost, err := c.regWithEvict(tc.Advance(lookupTicks), va, length)
	if err != nil {
		return nil, 0, err
	}
	cost += regCost
	if tc.Enabled() {
		tc.SpanAt(trace.LRegcache, "acquire", tc.Now(), cost,
			trace.I64("bytes", int64(length)), trace.I64("hit", 0))
	}
	c.mu.Lock()
	c.stats.RegTicks += regCost
	// A re-registration at the same base (e.g. a longer slice of the
	// same buffer) supersedes the old entry; the old registration is
	// torn down — immediately if idle, on final Release if in use — so
	// pins and pinned-byte accounting cannot leak.
	var stale []*verbs.MR
	if old, ok := c.entries[va]; ok {
		stale = append(stale, c.retireLocked(old)...)
	}
	e := &entry{mr: mr, refs: 1}
	e.ele = c.lru.PushFront(mr.VA)
	c.entries[mr.VA] = e
	c.byMR[mr] = e
	c.stats.PinnedBytes += int64(mr.Length)
	if c.stats.PinnedBytes > c.stats.PeakPinned {
		c.stats.PeakPinned = c.stats.PinnedBytes
	}
	stale = append(stale, c.evictLocked()...)
	c.mu.Unlock()
	// Deregistration of superseded/evicted regions happens off the
	// critical path (MVAPICH2 defers it to a garbage list), so no time
	// is charged to this Acquire — the trace records them as instant
	// markers, not spans.
	if tc.Enabled() && len(stale) > 0 {
		tc.Advance(cost).Event(trace.LRegcache, "evict.deferred",
			trace.I64("count", int64(len(stale))))
	}
	for _, victim := range stale {
		if _, err := c.ctx.DeregMR(victim); err != nil {
			return nil, 0, err
		}
	}
	return mr, cost, nil
}

// regWithEvict registers [va, va+length), recovering from registration
// failures at the RLIMIT_MEMLOCK ceiling by evicting idle
// least-recently-used entries and retrying, a bounded number of rounds.
// This is the graceful-degradation half of the memlock model: the pin-
// down cache trades its oldest idle registrations for the one the
// transfer needs right now. The returned cost includes the synchronous
// deregistrations — unlike normal (deferred) eviction, the caller is
// stalled on them.
func (c *Cache) regWithEvict(tc trace.Ctx, va vm.VA, length uint64) (*verbs.MR, simtime.Ticks, error) {
	mr, cost, err := c.ctx.RegMRT(tc, va, length)
	tc = tc.Advance(cost)
	for attempt := 0; err != nil && errors.Is(err, verbs.ErrMemlockExceeded) && attempt < memlockRetryLimit; attempt++ {
		c.mu.Lock()
		victims := c.evictForMemlockLocked(int64(length))
		c.mu.Unlock()
		if len(victims) == 0 {
			break // everything pinned is in use; the ceiling is real
		}
		for _, victim := range victims {
			d, derr := c.ctx.DeregMRT(tc, victim)
			if derr != nil {
				return nil, 0, derr
			}
			cost += d
			tc = tc.Advance(d)
		}
		c.mu.Lock()
		c.stats.MemlockRetries++
		c.mu.Unlock()
		var rc simtime.Ticks
		mr, rc, err = c.ctx.RegMRT(tc, va, length)
		cost += rc
		tc = tc.Advance(rc)
	}
	if err != nil {
		return nil, 0, err
	}
	return mr, cost, nil
}

// evictForMemlockLocked picks idle LRU entries covering at least `need`
// bytes and retires them. Callers hold the lock and deregister the
// returned MRs.
func (c *Cache) evictForMemlockLocked(need int64) []*verbs.MR {
	var victims []*verbs.MR
	freed := int64(0)
	for ele := c.lru.Back(); ele != nil && freed < need; {
		prev := ele.Prev()
		if e := c.entries[ele.Value.(vm.VA)]; e != nil && e.refs == 0 {
			freed += int64(e.mr.Length)
			c.stats.Evictions++
			c.stats.MemlockEvictions++
			victims = append(victims, c.retireLocked(e)...)
		}
		ele = prev
	}
	return victims
}

// retireLocked removes an entry from the cache index. It returns the MR
// to deregister now if the entry is idle; an in-use entry becomes a
// zombie deregistered on final Release. Callers hold the lock.
func (c *Cache) retireLocked(e *entry) []*verbs.MR {
	c.lru.Remove(e.ele)
	delete(c.entries, e.mr.VA)
	c.stats.PinnedBytes -= int64(e.mr.Length)
	if e.refs > 0 {
		e.zombie = true
		return nil
	}
	delete(c.byMR, e.mr)
	return []*verbs.MR{e.mr}
}

// evictLocked enforces MaxPinned and returns the victims to deregister.
// In-use entries are skipped (their pins cannot be dropped mid-transfer).
// Callers hold the lock.
func (c *Cache) evictLocked() []*verbs.MR {
	if c.MaxPinned <= 0 {
		return nil
	}
	var victims []*verbs.MR
	ele := c.lru.Back()
	for c.stats.PinnedBytes > c.MaxPinned && ele != nil {
		prev := ele.Prev()
		e := c.entries[ele.Value.(vm.VA)]
		if e != nil && e.refs == 0 {
			c.stats.Evictions++
			victims = append(victims, c.retireLocked(e)...)
		}
		ele = prev
	}
	return victims
}

// Release returns a registration after use. Lazy mode keeps it pinned
// (deregistering only zombies whose last user just left); otherwise it
// deregisters immediately and returns that cost.
func (c *Cache) Release(mr *verbs.MR) (simtime.Ticks, error) {
	return c.ReleaseT(trace.Ctx{}, mr)
}

// ReleaseT is Release with tracing: an eager (non-lazy) deregistration
// emits its DeregMR span at tc; a zombie teardown — uncharged, off the
// critical path — is recorded as an instant marker.
func (c *Cache) ReleaseT(tc trace.Ctx, mr *verbs.MR) (simtime.Ticks, error) {
	// Cache membership, not the configured mode, decides the path: a
	// policy can register eagerly inside a lazy cache, and that MR was
	// never inserted — it must be deregistered here or its pins leak.
	c.mu.Lock()
	e, cached := c.byMR[mr]
	var dead *verbs.MR
	if cached && e != nil {
		if e.refs > 0 {
			e.refs--
		}
		if e.zombie && e.refs == 0 {
			delete(c.byMR, mr)
			dead = mr
		}
	}
	c.mu.Unlock()
	if cached {
		if dead != nil {
			if tc.Enabled() {
				tc.Event(trace.LRegcache, "zombie.dereg", trace.I64("bytes", int64(mr.Length)))
			}
			if _, err := c.ctx.DeregMR(dead); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	cost, err := c.ctx.DeregMRT(tc, mr)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.stats.DeregTicks += cost
	c.mu.Unlock()
	return cost, nil
}

// Invalidate removes any cached registration whose region intersects
// [va, va+length) — required when the application frees or unmaps memory,
// otherwise the cache would hand out stale translations. Regions still in
// use become zombies and are torn down on final Release.
func (c *Cache) Invalidate(va vm.VA, length uint64) (simtime.Ticks, error) {
	c.mu.Lock()
	var victims []*verbs.MR
	for _, e := range c.entries {
		if va < e.mr.VA+vm.VA(e.mr.Length) && e.mr.VA < va+vm.VA(length) {
			victims = append(victims, c.retireLocked(e)...)
		}
	}
	c.mu.Unlock()
	sortMRs(victims)
	var cost simtime.Ticks
	for _, mr := range victims {
		d, err := c.ctx.DeregMR(mr)
		if err != nil {
			return cost, err
		}
		cost += d
	}
	return cost, nil
}

// Flush deregisters everything, including zombies (rank teardown; no
// transfers may be in flight).
func (c *Cache) Flush() error {
	c.mu.Lock()
	var all []*verbs.MR
	for mr := range c.byMR {
		all = append(all, mr)
	}
	c.entries = make(map[vm.VA]*entry)
	c.byMR = make(map[*verbs.MR]*entry)
	c.lru.Init()
	c.stats.PinnedBytes = 0
	c.mu.Unlock()
	sortMRs(all)
	for _, mr := range all {
		if _, err := c.ctx.DeregMR(mr); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports the number of cached registrations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
