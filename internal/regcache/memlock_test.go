package regcache_test

import (
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/node/nodetest"
	"repro/internal/regcache"
	"repro/internal/verbs"
)

// memctx builds a verbs context with an RLIMIT_MEMLOCK ceiling.
func memctx(t *testing.T, limit int64) *verbs.Context {
	t.Helper()
	c := nodetest.New(t, machine.Opteron()).Verbs
	c.MemlockLimit = limit
	return c
}

func TestEvictAndRetryUnderMemlock(t *testing.T) {
	c := memctx(t, 1536<<10) // one 1 MiB registration fits, two don't
	rc := regcache.New(c, true)
	vaA, _ := c.AS.MapSmall(1 << 20)
	vaB, _ := c.AS.MapSmall(1 << 20)

	mrA, _, err := rc.Acquire(vaA, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Release(mrA); err != nil { // idle but cached (lazy dereg)
		t.Fatal(err)
	}
	// B doesn't fit beside the cached A: the cache must evict A's idle
	// registration and retry rather than surface the ceiling.
	mrB, _, err := rc.Acquire(vaB, 1<<20)
	if err != nil {
		t.Fatalf("acquire under ceiling with an evictable entry: %v", err)
	}
	st := rc.Stats()
	if st.MemlockRetries != 1 {
		t.Fatalf("MemlockRetries = %d, want 1", st.MemlockRetries)
	}
	if st.MemlockEvictions == 0 {
		t.Fatal("no evictions recorded for the recovery")
	}
	if _, err := rc.Release(mrB); err != nil {
		t.Fatal(err)
	}
}

func TestMemlockFailureWhenNothingEvictable(t *testing.T) {
	c := memctx(t, 1536<<10)
	rc := regcache.New(c, true)
	vaA, _ := c.AS.MapSmall(1 << 20)
	vaB, _ := c.AS.MapSmall(1 << 20)

	// A stays acquired (refs > 0): not a legal eviction victim.
	if _, _, err := rc.Acquire(vaA, 1<<20); err != nil {
		t.Fatal(err)
	}
	_, _, err := rc.Acquire(vaB, 1<<20)
	if !errors.Is(err, verbs.ErrMemlockExceeded) {
		t.Fatalf("got %v, want ErrMemlockExceeded (live entries hold the budget)", err)
	}
	if st := rc.Stats(); st.MemlockRetries != 0 {
		t.Fatalf("no retry should be counted when nothing was evicted: %+v", st)
	}
}
