package regcache_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/node/nodetest"
	"repro/internal/regcache"
	"repro/internal/verbs"
	"repro/internal/vm"
)

func ctx(t *testing.T) *verbs.Context {
	t.Helper()
	return nodetest.New(t, machine.Opteron()).Verbs
}

func TestLazyReuseIsCheap(t *testing.T) {
	c := ctx(t)
	rc := regcache.New(c, true)
	va, _ := c.AS.MapSmall(1 << 20)
	_, first, err := rc.Acquire(va, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	mr2, second, err := rc.Acquire(va, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if second >= first/10 {
		t.Fatalf("cache hit cost %d should be tiny vs miss %d", second, first)
	}
	if _, err := rc.Release(mr2); err != nil {
		t.Fatal(err)
	}
	st := rc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PinnedBytes != 1<<20 {
		t.Fatalf("pinned gauge = %d", st.PinnedBytes)
	}
}

func TestContainmentHit(t *testing.T) {
	c := ctx(t)
	rc := regcache.New(c, true)
	va, _ := c.AS.MapSmall(1 << 20)
	if _, _, err := rc.Acquire(va, 1<<20); err != nil {
		t.Fatal(err)
	}
	// A sub-range of the registered region must hit.
	if _, _, err := rc.Acquire(va+4096, 64<<10); err != nil {
		t.Fatal(err)
	}
	if rc.Stats().Hits != 1 {
		t.Fatal("sub-range lookup should hit")
	}
	if rc.Len() != 1 {
		t.Fatal("containment hit must not add entries")
	}
}

func TestEagerModeAlwaysRegisters(t *testing.T) {
	c := ctx(t)
	rc := regcache.New(c, false)
	va, _ := c.AS.MapSmall(256 << 10)
	for i := 0; i < 3; i++ {
		mr, cost, err := rc.Acquire(va, 256<<10)
		if err != nil {
			t.Fatal(err)
		}
		if cost <= 0 {
			t.Fatal("eager acquire must pay registration")
		}
		if _, err := rc.Release(mr); err != nil {
			t.Fatal(err)
		}
	}
	st := rc.Stats()
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PinnedBytes != 0 {
		t.Fatal("eager mode must not hold pinned memory")
	}
}

func TestEvictionBound(t *testing.T) {
	c := ctx(t)
	rc := regcache.New(c, true)
	rc.MaxPinned = 3 << 20
	for i := 0; i < 6; i++ {
		va, err := c.AS.MapSmall(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		mr, _, err := rc.Acquire(va, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Release(mr); err != nil {
			t.Fatal(err)
		}
	}
	st := rc.Stats()
	if st.PinnedBytes > rc.MaxPinned {
		t.Fatalf("pinned %d exceeds bound %d", st.PinnedBytes, rc.MaxPinned)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestInvalidateOnFree(t *testing.T) {
	c := ctx(t)
	rc := regcache.New(c, true)
	va, _ := c.AS.MapSmall(512 << 10)
	mr, _, err := rc.Acquire(va, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Release(mr); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Invalidate(va+1000, 10); err != nil {
		t.Fatal(err)
	}
	if rc.Len() != 0 {
		t.Fatal("intersecting invalidate must drop the entry")
	}
	// The memory must now be unmappable (pins released).
	if err := c.AS.Unmap(va, 512<<10); err != nil {
		t.Fatalf("unmap after invalidate: %v", err)
	}
	// Re-acquire re-registers.
	va2, _ := c.AS.MapSmall(512 << 10)
	if _, _, err := rc.Acquire(va2, 512<<10); err != nil {
		t.Fatal(err)
	}
	if rc.Stats().Misses != 2 {
		t.Fatal("re-acquire after invalidate should miss")
	}
}

func TestFlush(t *testing.T) {
	c := ctx(t)
	rc := regcache.New(c, true)
	for i := 0; i < 4; i++ {
		va, _ := c.AS.MapSmall(128 << 10)
		if _, _, err := rc.Acquire(va, 128<<10); err != nil {
			t.Fatal(err)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	if rc.Len() != 0 || rc.Stats().PinnedBytes != 0 {
		t.Fatal("flush incomplete")
	}
}

func TestFirstUsePaysFullRegistrationEvenWhenLazy(t *testing.T) {
	// Figure 5 discussion: "Even if lazy deregistration is enabled, the
	// first use of a buffer results in a memory registration with an
	// equal time consumption".
	c := ctx(t)
	eager := regcache.New(c, false)
	lazy := regcache.New(c, true)
	va1, _ := c.AS.MapSmall(1 << 20)
	va2, _ := c.AS.MapSmall(1 << 20)
	mrE, costE, err := eager.Acquire(va1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, costL, err := lazy.Acquire(va2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(costL-costE) / float64(costE)
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("first-use costs differ by %.1f%%", diff*100)
	}
	if _, err := eager.Release(mrE); err != nil {
		t.Fatal(err)
	}
}

func TestInUseEntrySurvivesEvictionAndInvalidate(t *testing.T) {
	c := ctx(t)
	rc := regcache.New(c, true)
	rc.MaxPinned = 1 << 20
	va, _ := c.AS.MapSmall(1 << 20)
	mr, _, err := rc.Acquire(va, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Pressure the cache: the in-use region must not be deregistered.
	for i := 0; i < 3; i++ {
		va2, _ := c.AS.MapSmall(1 << 20)
		mr2, _, err := rc.Acquire(va2, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Release(mr2); err != nil {
			t.Fatal(err)
		}
	}
	// Invalidate over the in-use range: becomes a zombie, still pinned.
	if _, err := rc.Invalidate(va, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.Unmap(va, 1<<20); err == nil {
		t.Fatal("in-use (zombie) region was unpinned while in flight")
	}
	// Final release tears it down; the memory becomes unmappable.
	if _, err := rc.Release(mr); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.Unmap(va, 1<<20); err != nil {
		t.Fatalf("unmap after final release: %v", err)
	}
}

func TestAcquireRoundsToPages(t *testing.T) {
	c := ctx(t)
	rc := regcache.New(c, true)
	va, _ := c.AS.MapSmall(64 << 10)
	// Two slightly different byte lengths within the same pages must
	// share one registration (the IS count-jitter case).
	mrA, _, err := rc.Acquire(va+100, 8000)
	if err != nil {
		t.Fatal(err)
	}
	mrB, _, err := rc.Acquire(va+40, 8100)
	if err != nil {
		t.Fatal(err)
	}
	if mrA != mrB {
		t.Fatal("page-rounded acquires did not share a registration")
	}
	if rc.Stats().Misses != 1 {
		t.Fatalf("misses = %d, want 1", rc.Stats().Misses)
	}
}

// eagerDecider forces eager deregistration for every acquire — the
// policy engine's over-budget override inside a lazy cache.
type eagerDecider struct{}

func (eagerDecider) DecideLazy(va vm.VA, length uint64, lazyDefault bool, maxPinned, pinnedBytes int64) bool {
	return false
}

func TestPolicyEagerInsideLazyCacheDoesNotLeak(t *testing.T) {
	c := ctx(t)
	rc := regcache.New(c, true)
	rc.SetPolicy(eagerDecider{})
	va, _ := c.AS.MapSmall(1 << 20)
	mr, _, err := rc.Acquire(va, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Len() != 0 {
		t.Fatal("eager registration must not enter the cache")
	}
	if _, err := rc.Release(mr); err != nil {
		t.Fatal(err)
	}
	st := rc.Stats()
	if st.PinnedBytes != 0 {
		t.Fatalf("pinned gauge = %d after eager release, want 0", st.PinnedBytes)
	}
	vs := c.AS.Stats()
	if vs.Pins != vs.Unpins {
		t.Fatalf("pins %d != unpins %d: the eager MR leaked", vs.Pins, vs.Unpins)
	}
	// The space must be unmappable — nothing still holds pins.
	if err := c.AS.Unmap(va, 1<<20); err != nil {
		t.Fatalf("unmap after eager release: %v", err)
	}
	// And a second acquire/release cycle still works.
	va2, _ := c.AS.MapSmall(1 << 16)
	mr2, _, err := rc.Acquire(va2, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Release(mr2); err != nil {
		t.Fatal(err)
	}
}
