package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Environment-variable plumbing for the shared flags. Every cmd tool
// resolves flag defaults through these helpers, so a deployment can set
// REPRO_FAULTS / REPRO_TRACE / REPRO_MACHINE / REPRO_POLICY /
// REPRO_CACHE once instead of repeating flags on every invocation.
// Precedence is strict and uniform: an explicit flag beats the
// environment, the environment beats the built-in default. Malformed
// environment values fail exactly like malformed flag values — at Parse
// time, loudly, naming the value — never by silently falling back.

// EnvPrefix namespaces every environment variable the tools read.
const EnvPrefix = "REPRO_"

// EnvDefault returns the default value for a flag: the value of
// REPRO_<name> when set and non-empty, else def. The result feeds a
// flag registration, so a command-line flag still overrides it.
func EnvDefault(name, def string) string {
	if v := os.Getenv(EnvPrefix + name); v != "" {
		return v
	}
	return def
}

// EnvInt resolves an integer default from REPRO_<name>. A set but
// malformed value is an error naming the variable.
func EnvInt(name string, def int) (int, error) {
	v := os.Getenv(EnvPrefix + name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s%s=%q is not an integer", EnvPrefix, name, v)
	}
	return n, nil
}

// ParseSize parses a byte count with an optional binary suffix: "4096",
// "64k", "256m", "2g" (case-insensitive). It is the parser behind
// -cache-max and REPRO_CACHE_MAX.
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("empty size")
	}
	shift := 0
	switch t[len(t)-1] {
	case 'k':
		shift, t = 10, t[:len(t)-1]
	case 'm':
		shift, t = 20, t[:len(t)-1]
	case 'g':
		shift, t = 30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%q is not a size (want bytes with optional k/m/g suffix)", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return n << shift, nil
}
