// Package cli carries the flag-parsing and setup boilerplate shared by
// every cmd tool: the -machine/-machines selector, the -faults spec,
// the -stats toggle and the -trace collector, plus the uniform
// "tool: error" exit path and the single rendering calls for reports
// and traces. Each tool declares which of the shared flags it takes,
// parses once, and gets back a resolved Env; tool-specific flags stay
// in the tool. Shared flag defaults resolve through REPRO_* environment
// variables (see env.go): flag beats environment beats built-in
// default, and malformed environment values fail at Parse time exactly
// like malformed flags.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/trace"
)

// App accumulates the shared flag registrations for one tool before
// Parse resolves them. The zero value is unusable; start with New.
type App struct {
	tool string
	fs   *flag.FlagSet
	args func() []string

	machineFlag  *string
	machinesFlag *string
	statsFlag    *bool
	faultsFlag   *string
	traceFlag    *string
	policyFlag   *string
}

// New starts an App for a tool on the process-wide flag set (the normal
// path for a main package). Every tool gets -faults and -trace; the
// other shared flags are opt-in.
func New(tool string) *App {
	a := &App{tool: tool, fs: flag.CommandLine, args: func() []string { return os.Args[1:] }}
	a.registerCommon()
	return a
}

// NewEnv builds a resolved Env directly — a clean-run default (no
// machine, no faults, no trace) for tests that call a tool's helpers
// without going through flag parsing.
func NewEnv(tool string) *Env {
	return &Env{Tool: tool}
}

// newWith starts an App on a private FlagSet — the testable constructor.
func newWith(tool string, fs *flag.FlagSet, args []string) *App {
	a := &App{tool: tool, fs: fs, args: func() []string { return args }}
	a.registerCommon()
	return a
}

func (a *App) registerCommon() {
	a.faultsFlag = a.fs.String("faults", EnvDefault("FAULTS", ""), "deterministic fault spec, e.g. seed=7,hugecap=8,memlock=16m (see README; env REPRO_FAULTS)")
	a.traceFlag = a.fs.String("trace", EnvDefault("TRACE", ""), "write a Perfetto trace of the run to this file ('-' = stdout; env REPRO_TRACE)")
}

// MachineFlag registers the single-machine -machine selector with a
// default ("opteron", "systemp", ...).
func (a *App) MachineFlag(def string) *App {
	a.machineFlag = a.fs.String("machine", EnvDefault("MACHINE", def), "machine (opteron|xeon|systemp; env REPRO_MACHINE)")
	return a
}

// MachinesFlag registers the -machines list selector (comma-separated)
// with a default.
func (a *App) MachinesFlag(def string) *App {
	a.machinesFlag = a.fs.String("machines", def, "comma-separated machine list")
	return a
}

// StatsFlag registers the -stats toggle with a tool-specific usage
// string.
func (a *App) StatsFlag(usage string) *App {
	a.statsFlag = a.fs.Bool("stats", false, usage)
	return a
}

// PolicyFlag registers the -policy selector. The default is "static":
// the decision counters come for free while every placement decision
// stays exactly the configured strategy's.
func (a *App) PolicyFlag() *App {
	a.policyFlag = a.fs.String("policy", EnvDefault("POLICY", string(policy.Static)),
		"placement policy (static|threshold|adaptive; env REPRO_POLICY)")
	return a
}

// Env is the resolved shared configuration of one tool invocation.
type Env struct {
	// Tool is the invoking command's name, used in error messages and
	// report records.
	Tool string
	// Machine is the resolved -machine selection (nil unless
	// MachineFlag was registered).
	Machine *machine.Machine
	// Machines is the resolved -machines selection (nil unless
	// MachinesFlag was registered).
	Machines []*machine.Machine
	// Spec is the parsed -faults spec (nil = clean).
	Spec *faults.Spec
	// Stats reports the -stats toggle (false unless StatsFlag was
	// registered).
	Stats bool
	// Col is the -trace collector, nil when -trace is absent. Its
	// "tool", "machine" and "faults" metadata are pre-set.
	Col *trace.Collector
	// Policy is the validated -policy selection ("" unless PolicyFlag
	// was registered).
	Policy string

	tracePath string
}

// Parse parses the command line and resolves every registered shared
// flag, exiting through Fail on any error (unknown machine, malformed
// fault spec).
func (a *App) Parse() *Env {
	if a.fs == flag.CommandLine {
		flag.Parse()
	} else if err := a.fs.Parse(a.args()); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", a.tool, err)
		os.Exit(2)
	}
	e := &Env{Tool: a.tool, tracePath: *a.traceFlag}
	if a.statsFlag != nil {
		e.Stats = *a.statsFlag
	}
	if a.machineFlag != nil {
		if e.Machine = machine.ByName(*a.machineFlag); e.Machine == nil {
			e.Fail(fmt.Errorf("unknown machine %q", *a.machineFlag))
		}
	}
	if a.machinesFlag != nil {
		for _, name := range strings.Split(*a.machinesFlag, ",") {
			m := machine.ByName(strings.TrimSpace(name))
			if m == nil {
				e.Fail(fmt.Errorf("unknown machine %q", name))
			}
			e.Machines = append(e.Machines, m)
		}
	}
	if a.policyFlag != nil {
		if _, err := policy.ParseKind(*a.policyFlag); err != nil {
			e.Fail(err)
		}
		e.Policy = *a.policyFlag
	}
	var err error
	if e.Spec, err = faults.ParseSpec(*a.faultsFlag); err != nil {
		e.Fail(err)
	}
	if e.tracePath != "" {
		e.Col = trace.NewCollector()
		e.Col.SetMeta("tool", a.tool)
		if e.Machine != nil {
			e.Col.SetMeta("machine", e.Machine.Name)
		}
		e.Col.SetMeta("faults", e.Spec.String())
	}
	return e
}

// Fail prints "tool: err" and exits non-zero — the uniform error path.
func (e *Env) Fail(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", e.Tool, err)
	os.Exit(1)
}

// Failf is Fail with formatting.
func (e *Env) Failf(format string, args ...any) {
	e.Fail(fmt.Errorf(format, args...))
}

// NewReport assembles a node.Report stamped with the tool name, fault
// spec and machine.
func (e *Env) NewReport(workload, machineName string, nodes []node.Stats) node.Report {
	return node.NewReport(e.Tool, workload, machineName, e.Spec.String(), nodes)
}

// EmitReports renders reports as the shared -stats JSON on stdout,
// exiting through Fail on error.
func (e *Env) EmitReports(reports []node.Report) {
	if err := node.WriteReports(os.Stdout, reports); err != nil {
		e.Fail(err)
	}
}

// WriteTrace renders the -trace collector (no-op when -trace is
// absent), exiting through Fail on error.
func (e *Env) WriteTrace() {
	if e.Col == nil {
		return
	}
	if err := node.WriteTraceFile(e.tracePath, e.Col); err != nil {
		e.Fail(err)
	}
}

// TracePath reports the -trace destination ("" when absent).
func (e *Env) TracePath() string { return e.tracePath }
