package cli

import (
	"flag"
	"io"
	"testing"
)

func newTestApp(t *testing.T, tool string, args []string) *App {
	t.Helper()
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return newWith(tool, fs, args)
}

func TestParseResolvesSharedFlags(t *testing.T) {
	app := newTestApp(t, "x", []string{
		"-machine", "systemp", "-stats", "-faults", "seed=7,hugecap=8", "-trace", "out.json",
	})
	app.MachineFlag("opteron").StatsFlag("usage")
	e := app.Parse()
	if e.Tool != "x" {
		t.Fatalf("tool = %q", e.Tool)
	}
	if e.Machine == nil || e.Machine.Name != "ibm-systemp-ehca-gx" {
		t.Fatalf("machine = %+v", e.Machine)
	}
	if !e.Stats {
		t.Fatal("stats flag not resolved")
	}
	if e.Spec == nil || e.Spec.Seed != 7 {
		t.Fatalf("spec = %+v", e.Spec)
	}
	if e.Col == nil {
		t.Fatal("trace collector not built")
	}
	if e.TracePath() != "out.json" {
		t.Fatalf("trace path = %q", e.TracePath())
	}
}

func TestParseDefaults(t *testing.T) {
	app := newTestApp(t, "x", nil)
	app.MachineFlag("opteron")
	e := app.Parse()
	if e.Machine == nil {
		t.Fatal("default machine not resolved")
	}
	if e.Spec != nil {
		t.Fatalf("clean run should have nil spec, got %+v", e.Spec)
	}
	if e.Col != nil || e.Stats {
		t.Fatal("trace/stats should default off")
	}
}

func TestParseMachinesList(t *testing.T) {
	app := newTestApp(t, "x", []string{"-machines", "opteron, xeon"})
	app.MachinesFlag("opteron,systemp")
	e := app.Parse()
	if len(e.Machines) != 2 {
		t.Fatalf("got %d machines, want 2", len(e.Machines))
	}
	if e.Machines[0].Name == e.Machines[1].Name {
		t.Fatal("machines not distinct")
	}
}

// TestEnvProvidesDefaults pins the environment half of the plumbing:
// with no flags given, REPRO_FAULTS / REPRO_MACHINE / REPRO_TRACE
// become the resolved configuration.
func TestEnvProvidesDefaults(t *testing.T) {
	t.Setenv("REPRO_FAULTS", "seed=11,hugecap=4")
	t.Setenv("REPRO_MACHINE", "xeon")
	t.Setenv("REPRO_TRACE", "env.json")
	app := newTestApp(t, "x", nil)
	app.MachineFlag("opteron")
	e := app.Parse()
	if e.Spec == nil || e.Spec.Seed != 11 {
		t.Fatalf("REPRO_FAULTS not applied: spec = %+v", e.Spec)
	}
	if e.Machine == nil || e.Machine.Name != "intel-xeon-infinihost-pcix" {
		t.Fatalf("REPRO_MACHINE not applied: machine = %+v", e.Machine)
	}
	if e.TracePath() != "env.json" || e.Col == nil {
		t.Fatalf("REPRO_TRACE not applied: path = %q", e.TracePath())
	}
}

// TestFlagBeatsEnv pins the precedence order: an explicit flag wins
// over the environment for every shared flag.
func TestFlagBeatsEnv(t *testing.T) {
	t.Setenv("REPRO_FAULTS", "seed=11")
	t.Setenv("REPRO_MACHINE", "xeon")
	app := newTestApp(t, "x", []string{"-faults", "seed=99", "-machine", "systemp"})
	app.MachineFlag("opteron")
	e := app.Parse()
	if e.Spec == nil || e.Spec.Seed != 99 {
		t.Fatalf("flag did not beat REPRO_FAULTS: spec = %+v", e.Spec)
	}
	if e.Machine == nil || e.Machine.Name != "ibm-systemp-ehca-gx" {
		t.Fatalf("flag did not beat REPRO_MACHINE: machine = %+v", e.Machine)
	}
}

func TestEnvDefaultFallsBack(t *testing.T) {
	t.Setenv("REPRO_UNSET_PROBE", "")
	if got := EnvDefault("UNSET_PROBE", "fallback"); got != "fallback" {
		t.Fatalf("EnvDefault = %q, want fallback", got)
	}
	t.Setenv("REPRO_SET_PROBE", "value")
	if got := EnvDefault("SET_PROBE", "fallback"); got != "value" {
		t.Fatalf("EnvDefault = %q, want value", got)
	}
}

func TestEnvInt(t *testing.T) {
	t.Setenv("REPRO_WORKERS", "7")
	if n, err := EnvInt("WORKERS", 0); err != nil || n != 7 {
		t.Fatalf("EnvInt = %d, %v", n, err)
	}
	if n, err := EnvInt("WORKERS_ABSENT", 3); err != nil || n != 3 {
		t.Fatalf("EnvInt default = %d, %v", n, err)
	}
	t.Setenv("REPRO_WORKERS", "seven")
	if _, err := EnvInt("WORKERS", 0); err == nil {
		t.Fatal("malformed REPRO_WORKERS accepted")
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"4096", 4096, true},
		{"64k", 64 << 10, true},
		{"256M", 256 << 20, true},
		{"2g", 2 << 30, true},
		{"", 0, false},
		{"-1", 0, false},
		{"12q", 0, false},
		{"lots", 0, false},
		{"9999999999g", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseSize(%q) = %d, %v; want %d, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestTraceMetaOmitsMachineWhenUnregistered(t *testing.T) {
	app := newTestApp(t, "x", []string{"-trace", "-"})
	e := app.Parse()
	if e.Col == nil {
		t.Fatal("trace collector not built")
	}
}
