package cli

import (
	"flag"
	"io"
	"testing"
)

func newTestApp(t *testing.T, tool string, args []string) *App {
	t.Helper()
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return newWith(tool, fs, args)
}

func TestParseResolvesSharedFlags(t *testing.T) {
	app := newTestApp(t, "x", []string{
		"-machine", "systemp", "-stats", "-faults", "seed=7,hugecap=8", "-trace", "out.json",
	})
	app.MachineFlag("opteron").StatsFlag("usage")
	e := app.Parse()
	if e.Tool != "x" {
		t.Fatalf("tool = %q", e.Tool)
	}
	if e.Machine == nil || e.Machine.Name != "ibm-systemp-ehca-gx" {
		t.Fatalf("machine = %+v", e.Machine)
	}
	if !e.Stats {
		t.Fatal("stats flag not resolved")
	}
	if e.Spec == nil || e.Spec.Seed != 7 {
		t.Fatalf("spec = %+v", e.Spec)
	}
	if e.Col == nil {
		t.Fatal("trace collector not built")
	}
	if e.TracePath() != "out.json" {
		t.Fatalf("trace path = %q", e.TracePath())
	}
}

func TestParseDefaults(t *testing.T) {
	app := newTestApp(t, "x", nil)
	app.MachineFlag("opteron")
	e := app.Parse()
	if e.Machine == nil {
		t.Fatal("default machine not resolved")
	}
	if e.Spec != nil {
		t.Fatalf("clean run should have nil spec, got %+v", e.Spec)
	}
	if e.Col != nil || e.Stats {
		t.Fatal("trace/stats should default off")
	}
}

func TestParseMachinesList(t *testing.T) {
	app := newTestApp(t, "x", []string{"-machines", "opteron, xeon"})
	app.MachinesFlag("opteron,systemp")
	e := app.Parse()
	if len(e.Machines) != 2 {
		t.Fatalf("got %d machines, want 2", len(e.Machines))
	}
	if e.Machines[0].Name == e.Machines[1].Name {
		t.Fatal("machines not distinct")
	}
}

func TestTraceMetaOmitsMachineWhenUnregistered(t *testing.T) {
	app := newTestApp(t, "x", []string{"-trace", "-"})
	e := app.Parse()
	if e.Col == nil {
		t.Fatal("trace collector not built")
	}
}
