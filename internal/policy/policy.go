// Package policy is the pluggable data-placement decision layer the
// paper's fixed strategies lack. One Engine per node is consulted at
// three points: hugepage-vs-base-page placement when the allocation
// library maps an above-threshold block (alloc.Placer), eager-vs-lazy
// deregistration when the pin-down cache registers a buffer
// (regcache.Decider), and SGE-aggregation-vs-copy when MPI sends a
// non-contiguous buffer (mpi.SendPieces).
//
// Three policies ship:
//
//   - static: every hook returns the configured strategy's answer, at
//     zero virtual cost — bit-for-bit the legacy fixed strategies, with
//     decision counters.
//   - threshold: rule-based on live telemetry — hugepage-pool headroom
//     and DTLB miss ratios gate placement, memlock headroom and regcache
//     hit rate gate lazy dereg, ATT pressure gates SGE aggregation.
//   - adaptive: threshold's up-front placement rules plus per-site
//     scoring with virtual-time-windowed feedback.
//     Every hugepage-placed site keeps a shadow DTLB that replays the
//     site's observed access patterns under the counterfactual base-page
//     placement; when a window shows the hugepage placement paying more
//     page walks than base pages would — NAS IS's scattered bucket
//     arena — the site is demoted in place (vm.Demote) and the walk
//     savings accrue for the rest of the run.
//
// Determinism: decisions are pure functions of the node's own virtual-
// time telemetry. No wall clock, no global rand, no map iteration
// reaches a decision; same seed, same decisions, byte-identical traces.
package policy

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/phys"
	"repro/internal/simtime"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Kind names a policy.
type Kind string

// The built-in policies.
const (
	Static    Kind = "static"
	Threshold Kind = "threshold"
	Adaptive  Kind = "adaptive"
)

// Kinds lists the built-in policies in declaration order.
func Kinds() []Kind { return []Kind{Static, Threshold, Adaptive} }

// ParseKind validates a policy name.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case Static, Threshold, Adaptive:
		return Kind(s), nil
	}
	return "", fmt.Errorf("policy: unknown kind %q (have static, threshold, adaptive)", s)
}

// Stats counts the engine's decisions. All fields are monotone counters.
type Stats struct {
	Kind            Kind
	PlaceHuge       int64 // above-threshold blocks placed in hugepages
	PlaceSmall      int64 // above-threshold blocks routed to base pages
	CacheLazy       int64 // registrations left cached (lazy dereg)
	CacheEager      int64 // registrations deregistered eagerly
	SGEGather       int64 // non-contiguous sends via HCA gather list
	SGEPack         int64 // non-contiguous sends via pack-and-copy
	Windows         int64 // adaptive feedback windows evaluated
	DemoteDecisions int64 // sites the adaptive policy decided to demote
	DemotedPages    int64 // hugepages actually split
	DemotedBytes    int64
	DemoteTicks     simtime.Ticks // virtual time charged for the splits
	TierMigrates    int64         // migrate-vs-recompute decisions that migrated
	TierRecomputes  int64         // ... that recomputed in place instead
}

// Config wires an Engine to one node's live telemetry. All pointers
// reference the node's own layers; the engine never mutates them except
// through vm.Demote and the targeted TLB shootdown that follows it.
type Config struct {
	Kind    Kind
	Machine *machine.Machine
	// LazyDefault is the strategy's configured deregistration mode — the
	// answer the static policy returns from DecideLazy.
	LazyDefault bool
	AS          *vm.AddressSpace
	DTLB        *tlb.DTLB
	Mem         *phys.Memory
	// MemlockLimit is the RLIMIT_MEMLOCK ceiling (0 = unlimited).
	MemlockLimit int64
	// ATTStats and CacheStats sample the HCA address-translation table
	// and the registration cache (hits, misses). Either may be nil.
	ATTStats   func() (hits, misses int64)
	CacheStats func() (hits, misses int64)
	// Trace, when set, records demotion decisions as policy-layer events
	// at the cursor's current position.
	Trace *trace.Cursor
}

// Engine is one node's placement policy. It implements alloc.Placer and
// regcache.Decider structurally. Not safe for concurrent use: the
// scheduler runs one task per node at a time, like every other node
// layer.
type Engine struct {
	cfg   Config
	stats Stats

	// Adaptive state: hugepage-placed sites sorted by base VA, and the
	// end of the current feedback window.
	sites     []*site
	windowEnd simtime.Ticks
}

// Adaptive tuning. Times are virtual ticks.
const (
	// windowTicks is the feedback window length. Long enough that a NAS
	// iteration's pattern mix accumulates a meaningful sample, short
	// enough that a mid-run demotion still pays for itself many times.
	windowTicks = simtime.Ticks(1 << 20)
	// minSamples is the fewest observed accesses a site needs in a
	// window before demotion is considered.
	minSamples = 1024
	// demoteSlackMisses absorbs sampling noise: the hugepage placement
	// must cost at least this many extra walks beyond the 1.5x ratio
	// before a demotion fires.
	demoteSlackMisses = 256
)

// New builds an Engine. Kind must parse and Machine/AS/DTLB/Mem must be
// set (the node wires them).
func New(cfg Config) (*Engine, error) {
	if _, err := ParseKind(string(cfg.Kind)); err != nil {
		return nil, err
	}
	if cfg.Machine == nil || cfg.AS == nil || cfg.DTLB == nil || cfg.Mem == nil {
		return nil, fmt.Errorf("policy: config must wire Machine, AS, DTLB and Mem")
	}
	return &Engine{cfg: cfg, stats: Stats{Kind: cfg.Kind}, windowEnd: windowTicks}, nil
}

// Kind returns the engine's policy kind ("" for a nil engine).
func (e *Engine) Kind() Kind {
	if e == nil {
		return ""
	}
	return e.cfg.Kind
}

// Stats snapshots the decision counters. Nil-safe.
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	return e.stats
}

// PlaceHuge implements alloc.Placer: should this above-threshold request
// go to hugepages?
func (e *Engine) PlaceHuge(size uint64) bool {
	if e == nil || e.cfg.Kind == Static {
		// static keeps the library's prior: place huge.
		return true
	}
	// Both telemetry policies share the up-front rules; adaptive adds
	// per-site demotion on top for the mistakes no up-front rule can
	// see.
	//
	// Pool headroom: if the hugetlbfs pool cannot cover the mapping the
	// library would request, skip the doomed attempt and the fallback
	// bookkeeping entirely. The block lands in base pages either way;
	// only the failed-map cost differs.
	pages := int((size + machine.HugePageSize - 1) / machine.HugePageSize)
	if e.cfg.Mem.HugeAvailable() < pages {
		return false
	}
	// TLB pressure: when the tiny hugepage file is already thrashing
	// while the small-page file has headroom, stop feeding it.
	lg, sm := e.cfg.DTLB.Large.Stats(), e.cfg.DTLB.Small.Stats()
	if lg.Accesses() >= minSamples && lg.MissRate() > 0.5 && sm.MissRate() < 0.05 {
		return false
	}
	return true
}

// DecideLazy implements regcache.Decider: should this registration stay
// cached?
func (e *Engine) DecideLazy(va vm.VA, length uint64, lazyDefault bool, maxPinned, pinnedBytes int64) bool {
	lazy := e.decideLazy(length, lazyDefault, maxPinned, pinnedBytes)
	if lazy {
		e.stats.CacheLazy++
	} else {
		e.stats.CacheEager++
	}
	return lazy
}

func (e *Engine) decideLazy(length uint64, lazyDefault bool, maxPinned, pinnedBytes int64) bool {
	switch e.cfg.Kind {
	case Threshold:
		// A registration the budget can never hold would only evict
		// useful entries on its way through — register it eagerly.
		if maxPinned > 0 && int64(length) > maxPinned {
			return false
		}
		if e.cfg.MemlockLimit > 0 && int64(length) > e.cfg.MemlockLimit {
			return false
		}
		// A cache that is not earning its pins (hit rate under 20% with
		// a real sample) stops caching until reuse shows up.
		if e.cfg.CacheStats != nil {
			if h, m := e.cfg.CacheStats(); h+m >= minSamples/4 && h < m/4 {
				return false
			}
		}
		return lazyDefault
	case Adaptive:
		// Keep the configured mode except for registrations that cannot
		// stay cached anyway (they exceed the pinning budget outright):
		// those pay the lazy path's eviction churn for nothing.
		if maxPinned > 0 && int64(length) > maxPinned {
			return false
		}
		if e.cfg.MemlockLimit > 0 && int64(length) > e.cfg.MemlockLimit {
			return false
		}
		return lazyDefault
	default:
		return lazyDefault
	}
}

// DecideGather chooses between posting a non-contiguous send as one HCA
// gather list (pieces SGEs spanning totalBytes) or packing it through a
// bounce buffer. estGather and estPack are the caller's cost estimates
// for the two forms.
func (e *Engine) DecideGather(pieces int, totalBytes uint64, estGather, estPack simtime.Ticks) bool {
	gather := estGather <= estPack
	if e != nil && e.cfg.Kind == Threshold && gather && e.cfg.ATTStats != nil {
		// Under ATT thrash every SGE's translation is a likely miss the
		// cost model did not price in; prefer the single-entry copy.
		if h, m := e.cfg.ATTStats(); h+m >= minSamples && float64(m)/float64(h+m) > 0.5 {
			gather = false
		}
	}
	if e != nil {
		if gather {
			e.stats.SGEGather++
		} else {
			e.stats.SGEPack++
		}
	}
	return gather
}

// DecideMigrate chooses between promoting cold tier data (paying
// migrateTicks of copy cost now, after which accesses run at fast-tier
// speed) and recomputing or re-reading it in place (paying
// recomputeTicks every time). bytes is the payload; fastFree the fast
// tier's remaining capacity. The raw estimates decide for a nil engine
// or the static kind; the threshold and adaptive kinds additionally
// refuse migrations that cannot fit the fast tier — the copy would
// be pure cost, since the pages stay slow.
func (e *Engine) DecideMigrate(bytes uint64, fastFree int64, migrateTicks, recomputeTicks simtime.Ticks) bool {
	migrate := migrateTicks <= recomputeTicks
	if e != nil && e.cfg.Kind != Static && migrate && int64(bytes) > fastFree {
		migrate = false
	}
	if e != nil {
		if migrate {
			e.stats.TierMigrates++
		} else {
			e.stats.TierRecomputes++
		}
	}
	return migrate
}
