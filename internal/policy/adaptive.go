package policy

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/memmodel"
	"repro/internal/simtime"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/vm"
)

// site is one hugepage-placed allocation the adaptive policy scores. The
// shadow DTLB replays the site's observed access patterns under the
// counterfactual base-page placement, so each window can compare the page
// walks the hugepage placement actually cost against what base pages
// would have cost for the exact same logical accesses.
type site struct {
	va      vm.VA
	size    uint64
	demoted bool

	shadow *tlb.DTLB // lazily built on first observation

	// Per-window accumulators, reset at each window boundary.
	realMisses int64 // scaled walk estimate under the actual placement
	cfMisses   int64 // scaled walk estimate under base pages
	accesses   int64
}

// Placed implements alloc.Placer: record where an above-threshold block
// landed. Hugepage-placed sites become adaptive scoring sites.
func (e *Engine) Placed(va vm.VA, size uint64, huge bool) {
	if e == nil {
		return
	}
	if huge {
		e.stats.PlaceHuge++
	} else {
		e.stats.PlaceSmall++
	}
	if e.cfg.Kind != Adaptive || !huge {
		return
	}
	i := sort.Search(len(e.sites), func(i int) bool { return e.sites[i].va >= va })
	if i < len(e.sites) && e.sites[i].va == va {
		// The allocator reused a freed base VA; start the site fresh.
		e.sites[i] = &site{va: va, size: size}
		return
	}
	e.sites = append(e.sites, nil)
	copy(e.sites[i+1:], e.sites[i:])
	e.sites[i] = &site{va: va, size: size}
}

// Freed implements alloc.Placer: drop the site at va, if any.
func (e *Engine) Freed(va vm.VA) {
	if e == nil || e.cfg.Kind != Adaptive || len(e.sites) == 0 {
		return
	}
	i := sort.Search(len(e.sites), func(i int) bool { return e.sites[i].va >= va })
	if i < len(e.sites) && e.sites[i].va == va {
		e.sites = append(e.sites[:i], e.sites[i+1:]...)
	}
}

// findSite returns the site containing va, or nil.
func (e *Engine) findSite(va vm.VA) *site {
	i := sort.Search(len(e.sites), func(i int) bool { return e.sites[i].va > va })
	if i == 0 {
		return nil
	}
	if s := e.sites[i-1]; uint64(va-s.va) < s.size {
		return s
	}
	return nil
}

// ObservePattern feeds the adaptive policy one pattern application over a
// region: the result the pattern produced against the real DTLB, plus
// enough to replay it against the site's shadow DTLB under the
// counterfactual page class. Workload kernels call this right after
// charging the pattern (nas.charge); non-adaptive engines ignore it.
// Nil-safe; costs no virtual time.
func (e *Engine) ObservePattern(p memmodel.Pattern, rg memmodel.Region, real memmodel.Result) {
	if e == nil || e.cfg.Kind != Adaptive || rg.Class != vm.Huge {
		return
	}
	s := e.findSite(rg.VA)
	if s == nil || s.demoted {
		return
	}
	if s.shadow == nil {
		s.shadow = tlb.New(&e.cfg.Machine.CPU)
	}
	cf := rg
	cf.Class = vm.Small
	res := p.Apply(&e.cfg.Machine.CPU, s.shadow, cf)
	s.realMisses += real.TLBMisses
	s.cfMisses += res.TLBMisses
	s.accesses += real.Accesses
}

// Tick advances the adaptive policy's virtual-time window. The owning
// rank calls it from its compute path; when a window boundary has
// passed, every hugepage site whose window showed base pages winning is
// demoted in place. The returned ticks are the split cost the caller
// must charge (0 almost always). Nil-safe.
func (e *Engine) Tick(now simtime.Ticks) simtime.Ticks {
	if e == nil || e.cfg.Kind != Adaptive || now < e.windowEnd {
		return 0
	}
	for now >= e.windowEnd {
		e.windowEnd += windowTicks
	}
	e.stats.Windows++
	var cost simtime.Ticks
	for _, s := range e.sites {
		if !s.demoted && e.shouldDemote(s) {
			cost += e.demote(s)
		}
		s.realMisses, s.cfMisses, s.accesses = 0, 0, 0
	}
	return cost
}

// shouldDemote applies the window's evidence. Demotion needs (1) a real
// sample, (2) the hugepage placement losing by a clear margin — half
// again the counterfactual's walks plus slack — and (3) the measured
// per-window walk savings repaying the one-time split cost within a
// single window, so a demotion near the end of a run cannot cost more
// than it saves.
func (e *Engine) shouldDemote(s *site) bool {
	if s.accesses < minSamples {
		return false
	}
	if s.realMisses <= s.cfMisses+s.cfMisses/2+demoteSlackMisses {
		return false
	}
	saved := simtime.Ticks(s.realMisses-s.cfMisses) * e.cfg.Machine.CPU.WalkTicks
	return saved >= simtime.Ticks(e.fullPages(s))*e.demotePageTicks()
}

// demotePageTicks is the modelled cost of splitting one hugepage in
// place: a syscall-scale entry plus rebuilding 512 ptes. No data moves.
func (e *Engine) demotePageTicks() simtime.Ticks {
	return e.cfg.Machine.Mem.SyscallTicks + 256
}

// fullPages counts the hugepages lying fully inside the site.
func (e *Engine) fullPages(s *site) int64 {
	lo := (uint64(s.va) + machine.HugePageSize - 1) / machine.HugePageSize
	hi := (uint64(s.va) + s.size) / machine.HugePageSize
	if hi <= lo {
		return 0
	}
	return int64(hi - lo)
}

// demote splits the site's hugepages in place, shoots down the stale
// 2 MiB TLB entries, and returns the virtual cost to charge.
func (e *Engine) demote(s *site) simtime.Ticks {
	e.stats.DemoteDecisions++
	s.demoted = true
	pages, err := e.cfg.AS.Demote(s.va, s.size)
	if err != nil || pages == 0 {
		return 0
	}
	// Shoot down the whole site's 2 MiB entries: pinned pages may have
	// been skipped mid-range, so the demoted pages need not be
	// contiguous. Over-invalidation only costs future re-walks.
	lo := (uint64(s.va) + machine.HugePageSize - 1) / machine.HugePageSize
	hi := (uint64(s.va) + s.size) / machine.HugePageSize
	e.cfg.DTLB.Large.InvalidateRange(lo, hi)
	e.stats.DemotedPages += int64(pages)
	e.stats.DemotedBytes += int64(pages) * machine.HugePageSize
	cost := simtime.Ticks(pages) * e.demotePageTicks()
	e.stats.DemoteTicks += cost
	if e.cfg.Trace.Enabled() {
		e.cfg.Trace.Event(trace.LPolicy, "demote",
			trace.I64("pages", int64(pages)),
			trace.I64("real_misses", s.realMisses),
			trace.I64("cf_misses", s.cfMisses))
	}
	return cost
}
