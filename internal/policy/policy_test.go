package policy

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memmodel"
	"repro/internal/phys"
	"repro/internal/simtime"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// rig is a minimal engine fixture over a real phys/vm/tlb stack.
type rig struct {
	m    *machine.Machine
	mem  *phys.Memory
	as   *vm.AddressSpace
	dtlb *tlb.DTLB
	eng  *Engine
}

func newRig(t *testing.T, kind Kind, lazyDefault bool) *rig {
	t.Helper()
	m := machine.Opteron()
	mem := phys.NewMemory(m)
	as := vm.New(mem)
	d := tlb.New(&m.CPU)
	eng, err := New(Config{
		Kind: kind, Machine: m, LazyDefault: lazyDefault,
		AS: as, DTLB: d, Mem: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{m: m, mem: mem, as: as, dtlb: d, eng: eng}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(string(k))
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k, got, err)
		}
	}
	for _, bad := range []string{"", "greedy", "STATIC", "adaptive "} {
		if _, err := ParseKind(bad); err == nil {
			t.Errorf("ParseKind(%q) accepted", bad)
		}
	}
}

func TestNewRejectsMissingWiring(t *testing.T) {
	if _, err := New(Config{Kind: Static}); err == nil {
		t.Fatal("engine built without Machine/AS/DTLB/Mem")
	}
	if _, err := New(Config{Kind: "bogus"}); err == nil {
		t.Fatal("engine built with unknown kind")
	}
}

func TestNilEngineIsSafe(t *testing.T) {
	var e *Engine
	if e.Kind() != "" {
		t.Fatal("nil engine kind")
	}
	if s := e.Stats(); s != (Stats{}) {
		t.Fatalf("nil engine stats = %+v", s)
	}
	if !e.PlaceHuge(1 << 22) {
		t.Fatal("nil engine must keep the huge prior")
	}
	e.Placed(0, 0, true)
	e.Freed(0)
	e.ObservePattern(memmodel.SeqScan{}, memmodel.Region{}, memmodel.Result{})
	if e.Tick(1<<30) != 0 {
		t.Fatal("nil engine tick cost")
	}
	// DecideGather on a nil engine still applies the cost estimates.
	if !e.DecideGather(4, 1<<16, 100, 200) {
		t.Fatal("nil engine must pick the cheaper gather")
	}
	if e.DecideGather(4, 1<<16, 300, 200) {
		t.Fatal("nil engine must pick the cheaper pack")
	}
}

func TestStaticKeepsDefaults(t *testing.T) {
	r := newRig(t, Static, true)
	if !r.eng.PlaceHuge(1 << 22) {
		t.Fatal("static must keep the huge prior")
	}
	if !r.eng.DecideLazy(0, 1<<20, true, 1<<20, 0) {
		t.Fatal("static must keep the lazy default even over budget")
	}
	if r.eng.DecideLazy(0, 1<<20, false, 0, 0) {
		t.Fatal("static must keep the eager default")
	}
	s := r.eng.Stats()
	if s.CacheLazy != 1 || s.CacheEager != 1 {
		t.Fatalf("cache counters = %+v", s)
	}
}

func TestPlaceHugeVetoesOnPoolExhaustion(t *testing.T) {
	for _, kind := range []Kind{Threshold, Adaptive} {
		r := newRig(t, kind, true)
		if !r.eng.PlaceHuge(1 << 22) {
			t.Fatalf("%s: veto with a full pool", kind)
		}
		if err := r.mem.Reserve(r.mem.HugeAvailable()); err != nil {
			t.Fatal(err)
		}
		if r.eng.PlaceHuge(1 << 22) {
			t.Fatalf("%s: no veto with an empty pool", kind)
		}
	}
	// Static ignores the pool: the library's own fallback handles it.
	r := newRig(t, Static, true)
	if err := r.mem.Reserve(r.mem.HugeAvailable()); err != nil {
		t.Fatal(err)
	}
	if !r.eng.PlaceHuge(1 << 22) {
		t.Fatal("static must not consult the pool")
	}
}

func TestPlaceHugeVetoesOnTLBPressure(t *testing.T) {
	for _, kind := range []Kind{Threshold, Adaptive} {
		r := newRig(t, kind, true)
		// Thrash the 2 MiB file (every access a distinct vpn) while the
		// 4 KiB file re-hits one page.
		for i := 0; i < 2*minSamples; i++ {
			r.dtlb.Access(vm.VA(uint64(i)*machine.HugePageSize), vm.Huge)
		}
		for i := 0; i < 64*minSamples; i++ {
			r.dtlb.Access(0, vm.Small)
		}
		if r.eng.PlaceHuge(1 << 22) {
			t.Fatalf("%s: no veto under hugepage-TLB thrash", kind)
		}
	}
}

func TestThresholdDecideLazyBudgetRules(t *testing.T) {
	r := newRig(t, Threshold, true)
	// Over the pinning budget: eager regardless of the default.
	if r.eng.DecideLazy(0, 4<<20, true, 2<<20, 0) {
		t.Fatal("over-budget registration left cached")
	}
	// Within budget: the default stands.
	if !r.eng.DecideLazy(0, 1<<20, true, 4<<20, 0) {
		t.Fatal("in-budget registration deregistered")
	}
	s := r.eng.Stats()
	if s.CacheEager != 1 || s.CacheLazy != 1 {
		t.Fatalf("cache counters = %+v", s)
	}
}

func TestThresholdDecideLazyMemlockRule(t *testing.T) {
	m := machine.Opteron()
	mem := phys.NewMemory(m)
	as := vm.New(mem)
	eng, err := New(Config{
		Kind: Threshold, Machine: m, LazyDefault: true,
		AS: as, DTLB: tlb.New(&m.CPU), Mem: mem,
		MemlockLimit: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.DecideLazy(0, 2<<20, true, 0, 0) {
		t.Fatal("registration above RLIMIT_MEMLOCK left cached")
	}
	if !eng.DecideLazy(0, 512<<10, true, 0, 0) {
		t.Fatal("registration under RLIMIT_MEMLOCK deregistered")
	}
}

func TestThresholdDecideLazyHitRateRule(t *testing.T) {
	m := machine.Opteron()
	mem := phys.NewMemory(m)
	as := vm.New(mem)
	hits, misses := int64(0), int64(0)
	eng, err := New(Config{
		Kind: Threshold, Machine: m, LazyDefault: true,
		AS: as, DTLB: tlb.New(&m.CPU), Mem: mem,
		CacheStats: func() (int64, int64) { return hits, misses },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Too small a sample: the default stands.
	hits, misses = 0, 10
	if !eng.DecideLazy(0, 1<<16, true, 0, 0) {
		t.Fatal("eager on an unproven cache")
	}
	// A real sample with a dismal hit rate: stop caching.
	hits, misses = 10, minSamples
	if eng.DecideLazy(0, 1<<16, true, 0, 0) {
		t.Fatal("lazy despite a cache that is not earning its pins")
	}
	// A healthy hit rate: cache.
	hits, misses = 10*minSamples, minSamples
	if !eng.DecideLazy(0, 1<<16, true, 0, 0) {
		t.Fatal("eager despite a healthy cache")
	}
}

func TestDecideGatherATTThrashRule(t *testing.T) {
	m := machine.Opteron()
	mem := phys.NewMemory(m)
	as := vm.New(mem)
	hits, misses := int64(0), int64(0)
	eng, err := New(Config{
		Kind: Threshold, Machine: m, LazyDefault: true,
		AS: as, DTLB: tlb.New(&m.CPU), Mem: mem,
		ATTStats: func() (int64, int64) { return hits, misses },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy ATT: the cost estimates decide.
	hits, misses = 10*minSamples, 0
	if !eng.DecideGather(8, 1<<16, 100, 200) {
		t.Fatal("pack despite cheaper gather and healthy ATT")
	}
	// Thrashing ATT: prefer the single-entry copy.
	hits, misses = 0, 2*minSamples
	if eng.DecideGather(8, 1<<16, 100, 200) {
		t.Fatal("gather despite ATT thrash")
	}
	s := eng.Stats()
	if s.SGEGather != 1 || s.SGEPack != 1 {
		t.Fatalf("sge counters = %+v", s)
	}
}

// scatter drives one window of scattered-table traffic through the real
// DTLB and the engine's counterfactual, the NAS IS shape: many tables,
// each in its own hugepage, where base pages win.
func scatter(r *rig, va vm.VA, size uint64) {
	p := memmodel.ScatteredTables{NumTables: 16, TableBytes: 4096, Count: 4 * minSamples}
	rg := memmodel.Region{VA: va, Bytes: size, Class: vm.Huge}
	real := p.Apply(&r.m.CPU, r.dtlb, rg)
	r.eng.ObservePattern(p, rg, real)
}

func TestAdaptiveDemotesLosingSite(t *testing.T) {
	r := newRig(t, Adaptive, true)
	const size = 16 * machine.HugePageSize
	va, err := r.as.MapHuge(size)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Placed(va, size, true)

	// Write a sentinel so the split provably moves no data.
	want := []byte("survives the thp split")
	if err := r.as.Write(va+12345, want); err != nil {
		t.Fatal(err)
	}

	hugeAvail := r.mem.HugeAvailable()
	scatter(r, va, size)
	cost := r.eng.Tick(windowTicks)
	if cost <= 0 {
		t.Fatalf("losing site not demoted (cost %d)", cost)
	}
	s := r.eng.Stats()
	if s.Windows != 1 || s.DemoteDecisions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.DemotedPages != 16 || s.DemotedBytes != 16*machine.HugePageSize {
		t.Fatalf("demoted %d pages / %d bytes, want the whole site", s.DemotedPages, s.DemotedBytes)
	}
	if want := simtime.Ticks(16) * r.eng.demotePageTicks(); cost != want || s.DemoteTicks != want {
		t.Fatalf("cost = %d, stats %d, want %d", cost, s.DemoteTicks, want)
	}

	// The mapping now translates at base-page granularity, in place.
	if _, class, err := r.as.Translate(va); err != nil || class != vm.Small {
		t.Fatalf("post-demotion translate: class %v, err %v", class, err)
	}
	got := make([]byte, len(want))
	if err := r.as.Read(va+12345, got); err != nil || string(got) != string(want) {
		t.Fatalf("data after split = %q (%v), want %q", got, err, want)
	}
	// The physical 2 MiB runs are kept by the split...
	if r.mem.HugeAvailable() != hugeAvail {
		t.Fatal("split returned hugepages to the pool early")
	}
	// ...and only return to the pool at unmap.
	if err := r.as.Unmap(va, size); err != nil {
		t.Fatal(err)
	}
	if r.mem.HugeAvailable() != hugeAvail+16 {
		t.Fatalf("pool after unmap = %d, want %d", r.mem.HugeAvailable(), hugeAvail+16)
	}

	// A demoted site stays demoted: further windows decide nothing new.
	r.eng.Tick(2 * windowTicks)
	if s := r.eng.Stats(); s.DemoteDecisions != 1 {
		t.Fatalf("re-demotion: %+v", s)
	}
}

func TestAdaptiveKeepsWinningSite(t *testing.T) {
	r := newRig(t, Adaptive, true)
	const size = 16 * machine.HugePageSize
	va, err := r.as.MapHuge(size)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Placed(va, size, true)

	// Sequential scans are the hugepage success story: the real
	// placement produces far fewer walks than the counterfactual.
	p := memmodel.SeqScan{Passes: 2}
	rg := memmodel.Region{VA: va, Bytes: size, Class: vm.Huge}
	real := p.Apply(&r.m.CPU, r.dtlb, rg)
	r.eng.ObservePattern(p, rg, real)

	if cost := r.eng.Tick(windowTicks); cost != 0 {
		t.Fatalf("winning site demoted (cost %d)", cost)
	}
	if _, class, err := r.as.Translate(va); err != nil || class != vm.Huge {
		t.Fatalf("translate: class %v, err %v", class, err)
	}
}

func TestAdaptiveSkipsPinnedPages(t *testing.T) {
	r := newRig(t, Adaptive, true)
	const size = 16 * machine.HugePageSize
	va, err := r.as.MapHuge(size)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Placed(va, size, true)
	// Pin the first hugepage, as a DMA registration would.
	if _, err := r.as.Pin(va, machine.HugePageSize); err != nil {
		t.Fatal(err)
	}
	scatter(r, va, size)
	r.eng.Tick(windowTicks)
	if s := r.eng.Stats(); s.DemotedPages != 15 {
		t.Fatalf("demoted %d pages, want 15 (pinned page skipped)", s.DemotedPages)
	}
	// The pinned page keeps its stable 2 MiB translation.
	if _, class, err := r.as.Translate(va); err != nil || class != vm.Huge {
		t.Fatalf("pinned page translate: class %v, err %v", class, err)
	}
	if _, class, err := r.as.Translate(va + machine.HugePageSize); err != nil || class != vm.Small {
		t.Fatalf("unpinned page translate: class %v, err %v", class, err)
	}
}

func TestAdaptiveFreeDropsSite(t *testing.T) {
	r := newRig(t, Adaptive, true)
	const size = 16 * machine.HugePageSize
	va, err := r.as.MapHuge(size)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Placed(va, size, true)
	scatter(r, va, size)
	r.eng.Freed(va)
	if cost := r.eng.Tick(windowTicks); cost != 0 {
		t.Fatalf("freed site still demoted (cost %d)", cost)
	}
	if s := r.eng.Stats(); s.DemoteDecisions != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdaptiveNeedsEvidence(t *testing.T) {
	r := newRig(t, Adaptive, true)
	const size = 16 * machine.HugePageSize
	va, err := r.as.MapHuge(size)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Placed(va, size, true)
	// A tiny sample, even if lopsided, must not demote.
	p := memmodel.ScatteredTables{NumTables: 16, TableBytes: 4096, Count: minSamples / 4}
	rg := memmodel.Region{VA: va, Bytes: size, Class: vm.Huge}
	real := p.Apply(&r.m.CPU, r.dtlb, rg)
	r.eng.ObservePattern(p, rg, real)
	if cost := r.eng.Tick(windowTicks); cost != 0 {
		t.Fatalf("under-sampled site demoted (cost %d)", cost)
	}
	// No observations at all: windows advance, nothing fires.
	if cost := r.eng.Tick(5 * windowTicks); cost != 0 {
		t.Fatalf("idle window demoted (cost %d)", cost)
	}
}
