package bus

import (
	"testing"

	"repro/internal/machine"
)

func model() *Model { return New(machine.SystemP().Bus) }

func TestDMACostMonotonicInSize(t *testing.T) {
	m := model()
	prev := m.DMACost(64, 1)
	for n := 2; n <= 4096; n *= 2 {
		c := m.DMACost(64, n)
		if c < prev {
			t.Fatalf("cost decreased from %d to %d at n=%d", prev, c, n)
		}
		prev = c
	}
}

func TestOffset64BeatsOffset0(t *testing.T) {
	// Figure 4: the sweet spot is at offset 64 — the first-line
	// contention penalty applies below one cache line.
	m := model()
	for _, size := range []int{8, 16, 32, 64} {
		c0 := m.DMACost(0, size)
		c64 := m.DMACost(64, size)
		if c64 >= c0 {
			t.Errorf("size %d: offset64 cost %d should beat offset0 cost %d", size, c64, c0)
		}
	}
}

func TestOffsetSwingIsBounded(t *testing.T) {
	// The paper reports the offset effect is "up to 8 percent" of the
	// whole work-request duration. The DMA-only swing can be larger, but
	// must stay within a small factor, not orders of magnitude.
	m := model()
	for _, size := range []int{8, 16, 32, 64} {
		lo, hi := m.DMACost(64, size), m.DMACost(64, size)
		for off := uint64(0); off <= 256; off++ {
			c := m.DMACost(off, size)
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if float64(hi) > 2.0*float64(lo) {
			t.Errorf("size %d: offset swing too large: lo=%d hi=%d", size, lo, hi)
		}
		if hi == lo {
			t.Errorf("size %d: no offset effect at all", size)
		}
	}
}

func TestUnalignedStartPenalty(t *testing.T) {
	m := model()
	aligned := m.DMACost(128, 8)
	unaligned := m.DMACost(129, 8)
	if unaligned <= aligned {
		t.Fatalf("byte-misaligned start should cost more: %d vs %d", unaligned, aligned)
	}
}

func TestExtraCacheLineCost(t *testing.T) {
	m := model()
	// 64 bytes at offset 64 = 1 line; at offset 96 = 2 lines.
	one := m.DMACost(64, 64)
	two := m.DMACost(96, 64)
	if two <= one {
		t.Fatalf("line-straddling read should cost more: %d vs %d", two, one)
	}
}

func TestBulkCostIsBandwidthDominated(t *testing.T) {
	m := model()
	c1 := m.BulkCost(1 << 20)
	c2 := m.BulkCost(2 << 20)
	ratio := float64(c2) / float64(c1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("bulk cost not ~linear: 1MiB=%d 2MiB=%d (ratio %.2f)", c1, c2, ratio)
	}
	if m.BulkCost(0) != 0 {
		t.Fatal("zero-byte bulk must be free")
	}
}

func TestRoundTripPositive(t *testing.T) {
	for _, mach := range machine.All() {
		if New(mach.Bus).RoundTrip() <= 0 {
			t.Errorf("%s: non-positive bus round trip", mach.Name)
		}
	}
}

func TestZeroAndNegativeSizes(t *testing.T) {
	m := model()
	if m.DMACost(0, 0) != 0 || m.DMACost(0, -5) != 0 {
		t.Fatal("non-positive DMA sizes must cost zero")
	}
}
