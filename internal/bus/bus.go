// Package bus models the IO path between host memory and the HCA:
// PCI-Express, PCI-X or GX. Costs have three components — a fixed
// per-transaction latency, a bandwidth term, and alignment effects.
//
// The alignment model is the mechanism behind Figure 4 of the paper:
// posting the same small send with different buffer offsets inside a page
// changes the work-request duration by up to 8 %, with a sweet spot near
// offset 64. The paper observes this empirically ("It appears that the
// memory access of the InfiniBand adapter or the underlying system I/O bus
// is optimized for certain offsets, e.g. at offset 64") without giving the
// mechanism; we reproduce it from three plausible micro-effects, documented
// on DMACost, and treat the fit as empirical.
package bus

import (
	"repro/internal/machine"
	"repro/internal/simtime"
)

// Model evaluates DMA costs for one bus.
type Model struct {
	Bus machine.Bus
}

// New builds a cost model for the given bus description.
func New(b machine.Bus) *Model { return &Model{Bus: b} }

// lineCost is the transfer time of one 64-byte cache line at the bus
// bandwidth.
func (m *Model) lineCost() simtime.Ticks {
	return simtime.BandwidthTicks(machine.CacheLineSize, m.Bus.BandwidthMBs)
}

// DMACost is the cost for the adapter to read (or write) n bytes that
// start at byte offset pageOff within a page. Three effects:
//
//   - per-cacheline transfer: the memory controller moves whole 64-byte
//     lines, so a buffer that straddles an extra line boundary pays for an
//     extra line (offsets that are multiples of 64 minimise lines touched);
//   - sub-word start: a start address not aligned to 8 bytes forces
//     byte-enable cycles on the first beat (small fixed penalty);
//   - first-line contention: transfers beginning in the first line of a
//     page collide with the adapter's descriptor prefetch of that line and
//     pay AlignPenalty — this is what makes offset 64 beat offset 0 and
//     produces the paper's sweet spot.
func (m *Model) DMACost(pageOff uint64, n int) simtime.Ticks {
	if n <= 0 {
		return 0
	}
	lineOff := pageOff % machine.CacheLineSize
	lines := (int(lineOff) + n + machine.CacheLineSize - 1) / machine.CacheLineSize
	cost := m.Bus.TxnTicks + simtime.Ticks(lines)*m.lineCost()
	if pageOff%8 != 0 {
		cost += m.Bus.AlignPenalty / 2
	}
	if pageOff%machine.SmallPageSize < machine.CacheLineSize {
		cost += m.Bus.AlignPenalty
	}
	return cost
}

// BulkCost is the streaming cost of a large transfer where per-transaction
// effects are amortised: pure bandwidth plus one transaction setup.
func (m *Model) BulkCost(n int64) simtime.Ticks {
	if n <= 0 {
		return 0
	}
	return m.Bus.TxnTicks + simtime.BandwidthTicks(n, m.Bus.BandwidthMBs)
}

// RoundTrip is the cost of one small read across the bus and back — what
// an ATT miss pays to fetch an MTT entry from host memory.
func (m *Model) RoundTrip() simtime.Ticks {
	return 2*m.Bus.TxnTicks + m.lineCost()
}
