// Package trace is the deterministic virtual-time tracing subsystem of
// the simulated stack. Every layer — the MPI runtime, the registration
// cache, the verbs layer, the HCA's DMA engines, the address space and
// the hugepage pool — records spans and instant events stamped with
// simtime.Ticks, never a wall clock, so one Sendrecv renders as a
// nested timeline across ranks and two same-seed runs produce
// byte-identical trace files.
//
// The design mirrors internal/faults: a nil *Collector (the canonical
// "tracing disabled") produces nil *Tracer and nil *Cursor instances,
// and the zero Ctx is inert — every method is safe and free on the
// disabled forms, so instrumentation stays in place permanently with no
// cost when no -trace flag is given.
//
// Determinism contract: all record content (timestamps, durations,
// names, argument values, flow ids) must be pure functions of the
// simulation's virtual-time schedule. Records may be *appended* from
// concurrent goroutines in scheduler order — Sendrecv's two halves both
// emit — so the writer canonicalises by sorting every record under a
// total order over its full content before rendering (perfetto.go).
// The package consumes simtime.Ticks only; the determinism analyzer
// (internal/analysis/determinism) bans wall clocks here like everywhere
// else.
package trace

import (
	"sync"

	"repro/internal/simtime"
)

// Layer names the producing subsystem of a span or event; it becomes
// the Perfetto category and the unit of tracetool's time breakdown.
type Layer string

// The instrumented layers, top of the stack first.
const (
	LApp      Layer = "app"      // application compute (memmodel charges)
	LMPI      Layer = "mpi"      // MPI calls and protocol phases
	LPolicy   Layer = "policy"   // placement-policy decisions and demotions
	LAlloc    Layer = "alloc"    // allocation-library time
	LRegcache Layer = "regcache" // pin-down cache lookups and evictions
	LVerbs    Layer = "verbs"    // memory registration (pin/translate/push)
	LHCA      Layer = "hca"      // WR post/poll, DMA gather/scatter, ATT
	LVM       Layer = "vm"       // address-space map/unmap/fallback
	LPhys     Layer = "phys"     // hugepage pool pressure
	LTier     Layer = "tier"     // memory-tier placement and migration
)

// Conventional track (Perfetto thread) ids within one traced process.
// A rank's main goroutine records on TrackMain; Sendrecv's forked send
// half on TrackSend; adapter-side DMA work on the two HCA tracks so
// overlapping engine activity does not distort the CPU timeline.
const (
	TrackMain  = 0
	TrackSend  = 1
	TrackHCATx = 2
	TrackHCARx = 3
)

// trackNames are the display names the writer attaches to the
// conventional tracks.
var trackNames = map[int32]string{
	TrackMain:  "main",
	TrackSend:  "send",
	TrackHCATx: "hca-tx",
	TrackHCARx: "hca-rx",
}

// Arg is one integer key/value annotation on a span or event. Keeping
// arguments integral keeps rendering trivially deterministic.
type Arg struct {
	Key string
	Val int64
}

// I64 builds an annotation.
func I64(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// span is one completed interval on a track.
type span struct {
	pid, tid int32
	layer    Layer
	name     string
	start    simtime.Ticks
	dur      simtime.Ticks
	args     []Arg
}

// event is one instant marker on a track.
type event struct {
	pid, tid int32
	layer    Layer
	name     string
	at       simtime.Ticks
	args     []Arg
}

// flow is one endpoint of a message arrow between two tracks. begin
// marks the sending side; the matching receiving side shares the id.
type flow struct {
	pid, tid int32
	id       uint64
	at       simtime.Ticks
	begin    bool
}

// Collector gathers the records of every traced process of one run and
// renders them as a single Perfetto trace_event JSON file. A nil
// *Collector is "tracing disabled": Tracer returns nil and nothing
// records.
//
//reprolint:nilsafe
type Collector struct {
	mu     sync.Mutex
	procs  []procMeta
	spans  []span
	events []event
	flows  []flow
	metaS  [][2]string // otherData annotations, in first-set order
}

type procMeta struct {
	pid  int32
	name string
}

// NewCollector builds an empty collector.
func NewCollector() *Collector { return &Collector{} }

// SetMeta attaches a string annotation to the trace header (tool name,
// workload, fault spec, ...). Later values for the same key win.
func (c *Collector) SetMeta(key, val string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.metaS {
		if c.metaS[i][0] == key {
			c.metaS[i][1] = val
			return
		}
	}
	c.metaS = append(c.metaS, [2]string{key, val})
}

// Tracer registers a new traced process (one simulated host) under the
// given display name and returns its tracer. Process ids are assigned
// in registration order, which the callers keep deterministic (ranks
// are built in rank order, benchmark rigs side by side). A nil
// collector returns a nil tracer, on which every method is a no-op.
func (c *Collector) Tracer(name string) *Tracer {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pid := int32(len(c.procs))
	c.procs = append(c.procs, procMeta{pid: pid, name: name})
	return &Tracer{col: c, pid: pid}
}

// Empty reports whether nothing has been recorded (no processes).
func (c *Collector) Empty() bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.procs) == 0
}

// Tracer records for one traced process. A nil *Tracer is the disabled
// form every layer holds when no -trace flag is given.
//
//reprolint:nilsafe
type Tracer struct {
	col *Collector
	pid int32
}

// Enabled reports whether records are being collected.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	return true
}

// At opens a Ctx: a timeline position on one of the tracer's tracks.
// A nil tracer returns the inert zero Ctx.
func (t *Tracer) At(track int, now simtime.Ticks) Ctx {
	if t == nil {
		return Ctx{}
	}
	return Ctx{tr: t, tid: int32(track), now: now}
}

// Cursor builds a mutable timeline position on a track, for layers that
// have no virtual clock of their own (the address space, the hugepage
// pool): the owning rank moves the cursor at each entry point and the
// layer stamps its events wherever the cursor stands. A nil tracer
// returns a nil cursor (all methods no-ops).
func (t *Tracer) Cursor(track int) *Cursor {
	if t == nil {
		return nil
	}
	return &Cursor{tr: t, tid: int32(track)}
}

// span records one complete interval.
func (t *Tracer) span(tid int32, layer Layer, name string, start, dur simtime.Ticks, args []Arg) {
	if t == nil {
		return
	}
	c := t.col
	c.mu.Lock()
	c.spans = append(c.spans, span{pid: t.pid, tid: tid, layer: layer, name: name, start: start, dur: dur, args: args})
	c.mu.Unlock()
}

// event records one instant marker.
func (t *Tracer) event(tid int32, layer Layer, name string, at simtime.Ticks, args []Arg) {
	if t == nil {
		return
	}
	c := t.col
	c.mu.Lock()
	c.events = append(c.events, event{pid: t.pid, tid: tid, layer: layer, name: name, at: at, args: args})
	c.mu.Unlock()
}

// flowPoint records one flow endpoint.
func (t *Tracer) flowPoint(tid int32, id uint64, at simtime.Ticks, begin bool) {
	if t == nil {
		return
	}
	c := t.col
	c.mu.Lock()
	c.flows = append(c.flows, flow{pid: t.pid, tid: tid, id: id, at: at, begin: begin})
	c.mu.Unlock()
}

// Ctx is one immutable timeline position: a tracer, a track, and the
// current virtual instant. It is threaded by value down the call chain
// that computes a cost — each layer emits spans at the cursor, advances
// its local copy by the durations it charges, and the caller advances
// its own clock by the returned total as before. The zero Ctx is
// disabled and free; hot paths guard argument construction with
// Enabled().
type Ctx struct {
	tr  *Tracer
	tid int32
	now simtime.Ticks
}

// Enabled reports whether this position records anywhere.
func (c Ctx) Enabled() bool { return c.tr != nil }

// Now returns the position's current instant.
func (c Ctx) Now() simtime.Ticks { return c.now }

// Advance returns the position moved forward by d.
func (c Ctx) Advance(d simtime.Ticks) Ctx {
	c.now += d
	return c
}

// Span emits [now, now+dur) and returns the position advanced past it.
func (c Ctx) Span(layer Layer, name string, dur simtime.Ticks, args ...Arg) Ctx {
	if c.tr == nil {
		return c
	}
	c.tr.span(c.tid, layer, name, c.now, dur, args)
	c.now += dur
	return c
}

// SpanAt emits an interval at an explicit position (for enclosing spans
// recorded after their children completed). The Ctx is unchanged.
func (c Ctx) SpanAt(layer Layer, name string, start, dur simtime.Ticks, args ...Arg) {
	if c.tr == nil {
		return
	}
	c.tr.span(c.tid, layer, name, start, dur, args)
}

// OnTrack returns the same position on another track of the same
// process (adapter-side spans are emitted on the HCA tracks).
func (c Ctx) OnTrack(track int) Ctx {
	c.tid = int32(track)
	return c
}

// Event emits an instant marker at the current position.
func (c Ctx) Event(layer Layer, name string, args ...Arg) {
	if c.tr == nil {
		return
	}
	c.tr.event(c.tid, layer, name, c.now, args)
}

// FlowBegin emits the sending endpoint of message arrow id.
func (c Ctx) FlowBegin(id uint64) {
	if c.tr == nil {
		return
	}
	c.tr.flowPoint(c.tid, id, c.now, true)
}

// FlowEnd emits the receiving endpoint of message arrow id.
func (c Ctx) FlowEnd(id uint64) {
	if c.tr == nil {
		return
	}
	c.tr.flowPoint(c.tid, id, c.now, false)
}

// Cursor is a mutable timeline position for clockless layers (the
// address space, physical memory). The owning rank calls Set at its
// entry points (Malloc, Free, trace replay steps); the layer stamps
// instant events wherever the cursor currently stands. All methods are
// nil-safe; the mutex keeps -race clean if an event fires off the main
// goroutine (timestamp content stays deterministic because only the
// owner's single-threaded entry points move the cursor).
//
//reprolint:nilsafe
type Cursor struct {
	tr  *Tracer
	tid int32

	mu  sync.Mutex
	now simtime.Ticks
}

// Set moves the cursor to the given instant.
func (c *Cursor) Set(now simtime.Ticks) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// Event stamps an instant marker at the cursor's position.
func (c *Cursor) Event(layer Layer, name string, args ...Arg) {
	if c == nil {
		return
	}
	c.mu.Lock()
	at := c.now
	c.mu.Unlock()
	c.tr.event(c.tid, layer, name, at, args)
}

// Enabled reports whether events stamp anywhere.
func (c *Cursor) Enabled() bool {
	if c == nil {
		return false
	}
	return true
}
