package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// tickHzStr is stamped into the trace header so consumers can convert
// microsecond timestamps back to ticks without guessing the time base.
const tickHzStr = "512000000"

// usPerTick converts ticks to Chrome trace microseconds. TickHz is
// 512 MHz and 512 = 2^9, so the division is exact in float64 and a
// consumer multiplying by 512 recovers the tick count bit-for-bit.
func usPerTick(t int64) float64 { return float64(t) / 512.0 }

// WritePerfetto renders everything recorded so far as one Chrome /
// Perfetto trace_event JSON document (load via ui.perfetto.dev or
// chrome://tracing).
//
// The byte stream is canonical: records are sorted under a total order
// over their full content before rendering, so the output is identical
// no matter in which real-time order concurrent goroutines appended
// them — the determinism gate diffs two same-seed trace files directly.
func (c *Collector) WritePerfetto(w io.Writer) error {
	if c == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ns","otherData":{"tickHz":`+tickHzStr+`},"traceEvents":[]}`+"\n")
		return err
	}
	c.mu.Lock()
	procs := append([]procMeta(nil), c.procs...)
	spans := append([]span(nil), c.spans...)
	events := append([]event(nil), c.events...)
	flows := append([]flow(nil), c.flows...)
	metaS := append([][2]string(nil), c.metaS...)
	c.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool { return spanLess(spans[i], spans[j]) })
	sort.SliceStable(events, func(i, j int) bool { return eventLess(events[i], events[j]) })
	sort.SliceStable(flows, func(i, j int) bool { return flowLess(flows[i], flows[j]) })

	// Threads are named from the fixed track table, restricted to the
	// (pid, tid) pairs that actually recorded something.
	type ptid struct{ pid, tid int32 }
	used := map[ptid]bool{}
	for _, s := range spans {
		used[ptid{s.pid, s.tid}] = true
	}
	for _, e := range events {
		used[ptid{e.pid, e.tid}] = true
	}
	for _, f := range flows {
		used[ptid{f.pid, f.tid}] = true
	}
	var threads []ptid
	for k := range used {
		threads = append(threads, k)
	}
	sort.Slice(threads, func(i, j int) bool {
		if threads[i].pid != threads[j].pid {
			return threads[i].pid < threads[j].pid
		}
		return threads[i].tid < threads[j].tid
	})

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"displayTimeUnit":"ns","otherData":{"tickHz":%s`, tickHzStr)
	for _, kv := range metaS {
		fmt.Fprintf(bw, `,%s:%s`, jstr(kv[0]), jstr(kv[1]))
	}
	fmt.Fprintf(bw, "},\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	for _, p := range procs {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`, p.pid, jstr(p.name))
	}
	for _, t := range threads {
		name := trackNames[t.tid]
		if name == "" {
			name = fmt.Sprintf("track%d", t.tid)
		}
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`, t.pid, t.tid, jstr(name))
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, t.pid, t.tid, t.tid)
	}
	for _, s := range spans {
		sep()
		fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"cat":%s,"name":%s,"args":{`,
			s.pid, s.tid, jus(int64(s.start)), jus(int64(s.dur)), jstr(string(s.layer)), jstr(s.name))
		writeArgs(bw, s.args)
		bw.WriteString("}}")
	}
	for _, e := range events {
		sep()
		fmt.Fprintf(bw, `{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"cat":%s,"name":%s,"args":{`,
			e.pid, e.tid, jus(int64(e.at)), jstr(string(e.layer)), jstr(e.name))
		writeArgs(bw, e.args)
		bw.WriteString("}}")
	}
	for _, f := range flows {
		ph := "f"
		if f.begin {
			ph = "s"
		}
		sep()
		fmt.Fprintf(bw, `{"ph":%s,"bp":"e","pid":%d,"tid":%d,"ts":%s,"cat":"flow","name":"msg","id":%d}`,
			jstr(ph), f.pid, f.tid, jus(int64(f.at)), f.id)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// writeArgs renders a span/event argument list as JSON object members.
func writeArgs(w *bufio.Writer, args []Arg) {
	for i, a := range args {
		if i > 0 {
			w.WriteString(",")
		}
		fmt.Fprintf(w, "%s:%d", jstr(a.Key), a.Val)
	}
}

// jstr renders a JSON string literal. encoding/json's string encoding
// is deterministic.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Strings cannot fail to marshal; keep the writer total anyway.
		return `"?"`
	}
	return string(b)
}

// jus renders a tick count as a microsecond JSON number with the
// shortest decimal representation that round-trips — deterministic, and
// exact because ticks/512 has a finite binary (hence decimal) expansion.
func jus(ticks int64) string {
	v := usPerTick(ticks)
	b, err := json.Marshal(v)
	if err != nil {
		return "0"
	}
	return string(b)
}

// argLess orders two argument lists (length, then pairwise key/value).
func argLess(a, b []Arg) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			return a[i].Key < b[i].Key
		}
		if a[i].Val != b[i].Val {
			return a[i].Val < b[i].Val
		}
	}
	return false
}

func spanLess(a, b span) bool {
	switch {
	case a.pid != b.pid:
		return a.pid < b.pid
	case a.tid != b.tid:
		return a.tid < b.tid
	case a.start != b.start:
		return a.start < b.start
	case a.dur != b.dur:
		return a.dur > b.dur // enclosing spans first
	case a.layer != b.layer:
		return a.layer < b.layer
	case a.name != b.name:
		return a.name < b.name
	default:
		return argLess(a.args, b.args)
	}
}

func eventLess(a, b event) bool {
	switch {
	case a.pid != b.pid:
		return a.pid < b.pid
	case a.tid != b.tid:
		return a.tid < b.tid
	case a.at != b.at:
		return a.at < b.at
	case a.layer != b.layer:
		return a.layer < b.layer
	case a.name != b.name:
		return a.name < b.name
	default:
		return argLess(a.args, b.args)
	}
}

func flowLess(a, b flow) bool {
	switch {
	case a.id != b.id:
		return a.id < b.id
	case a.begin != b.begin:
		return a.begin // begin before end
	case a.pid != b.pid:
		return a.pid < b.pid
	case a.tid != b.tid:
		return a.tid < b.tid
	default:
		return a.at < b.at
	}
}
