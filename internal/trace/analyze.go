package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/simtime"
)

// This file is the consumer half of the subsystem: it parses a trace
// file written by WritePerfetto back into ticks and computes the three
// reports cmd/tracetool prints — the per-layer time breakdown, the
// critical path through a communication step, and the top-N slowest
// spans. It lives here (not in cmd/) so tests can close the loop:
// record → write → parse → analyze inside one package.

// Data is a parsed trace.
type Data struct {
	Meta  map[string]string
	Procs []Proc
	Spans []PSpan
	Flows []PFlow
	// Events are the instant markers (hugepage-pool pressure, map
	// fallbacks, cache evictions).
	Events []PEvent
}

// Proc is one traced process.
type Proc struct {
	PID  int
	Name string
}

// PSpan is one parsed interval.
type PSpan struct {
	PID, TID    int
	Layer, Name string
	Start, Dur  simtime.Ticks
	Args        map[string]int64
}

// End returns the span's end instant.
func (s PSpan) End() simtime.Ticks { return s.Start + s.Dur }

// PEvent is one parsed instant marker.
type PEvent struct {
	PID, TID    int
	Layer, Name string
	At          simtime.Ticks
	Args        map[string]int64
}

// PFlow is one parsed flow endpoint.
type PFlow struct {
	PID, TID int
	ID       uint64
	At       simtime.Ticks
	Begin    bool
}

// jsonEvent is the wire shape of one trace_event entry. Args values are
// integers on spans/events but strings on metadata records, hence the
// interface-typed map.
type jsonEvent struct {
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Cat  string         `json:"cat"`
	Name string         `json:"name"`
	ID   float64        `json:"id"`
	Args map[string]any `json:"args"`
}

type jsonTrace struct {
	// OtherData values are strings for annotations but a number for
	// tickHz, hence the interface-typed map.
	OtherData   map[string]any `json:"otherData"`
	TraceEvents []jsonEvent    `json:"traceEvents"`
}

// usToTicks inverts the writer's tick→µs conversion exactly (512 is a
// power of two, so the product is integral before rounding).
func usToTicks(us float64) simtime.Ticks {
	return simtime.Ticks(math.Round(us * 512.0))
}

// intArgs converts a parsed args object back to the integer annotations
// the recorder wrote.
func intArgs(in map[string]any) map[string]int64 {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]int64, len(in))
	for k, v := range in {
		if f, ok := v.(float64); ok {
			out[k] = int64(math.Round(f))
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ParsePerfetto reads a trace file written by WritePerfetto.
func ParsePerfetto(r io.Reader) (*Data, error) {
	var jt jsonTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	d := &Data{Meta: make(map[string]string, len(jt.OtherData))}
	for k, v := range jt.OtherData {
		d.Meta[k] = fmt.Sprint(v)
	}
	for _, e := range jt.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				name, _ := e.Args["name"].(string)
				d.Procs = append(d.Procs, Proc{PID: e.PID, Name: name})
			}
		case "X":
			d.Spans = append(d.Spans, PSpan{
				PID: e.PID, TID: e.TID, Layer: e.Cat, Name: e.Name,
				Start: usToTicks(e.TS), Dur: usToTicks(e.Dur),
				Args: intArgs(e.Args),
			})
		case "i":
			d.Events = append(d.Events, PEvent{
				PID: e.PID, TID: e.TID, Layer: e.Cat, Name: e.Name,
				At: usToTicks(e.TS), Args: intArgs(e.Args),
			})
		case "s", "f":
			d.Flows = append(d.Flows, PFlow{
				PID: e.PID, TID: e.TID, ID: uint64(e.ID),
				At: usToTicks(e.TS), Begin: e.Ph == "s",
			})
		}
	}
	sort.Slice(d.Procs, func(i, j int) bool { return d.Procs[i].PID < d.Procs[j].PID })
	return d, nil
}

// Elapsed reports the trace's end instant: the latest point any record
// touches. Runs that close their trace with a job.end marker make this
// the job's makespan.
func (d *Data) Elapsed() simtime.Ticks {
	var end simtime.Ticks
	for _, s := range d.Spans {
		end = simtime.Max(end, s.End())
	}
	for _, e := range d.Events {
		end = simtime.Max(end, e.At)
	}
	for _, f := range d.Flows {
		end = simtime.Max(end, f.At)
	}
	return end
}

// Breakdown is one process's per-layer partition of the run.
type Breakdown struct {
	PID  int
	Name string
	// Self maps layer → self time on the process's main track: the time
	// inside spans of that layer not covered by a nested child span.
	Self map[string]simtime.Ticks
	// Idle is the main-track time outside any span (waiting on peers,
	// plus virtual time charged without instrumentation).
	Idle simtime.Ticks
	// Adapter is DMA-engine busy time on the hca-tx/hca-rx tracks (the
	// union of their span intervals, so nested or repeated spans are not
	// double-counted); it overlaps the main track (offloaded work) and is
	// reported separately so the main partition still sums to Elapsed.
	Adapter simtime.Ticks
	// SendTrack is busy time on the forked send-half track (union, like
	// Adapter), also overlapping the main track (Sendrecv's outer span
	// covers it).
	SendTrack simtime.Ticks
}

// Total sums the main-track partition. By construction it equals the
// trace's Elapsed: every instant is either inside exactly one innermost
// span (charged to its layer) or outside all spans (Idle).
func (b Breakdown) Total() simtime.Ticks {
	t := b.Idle
	for _, v := range b.Self {
		t += v
	}
	return t
}

// Breakdowns partitions [0, Elapsed] of every process's main track into
// per-layer self time plus idle.
func (d *Data) Breakdowns() []Breakdown {
	elapsed := d.Elapsed()
	out := make([]Breakdown, 0, len(d.Procs))
	for _, p := range d.Procs {
		b := Breakdown{PID: p.PID, Name: p.Name, Self: map[string]simtime.Ticks{}}
		var main, send, hcaTx, hcaRx []PSpan
		for _, s := range d.Spans {
			if s.PID != p.PID {
				continue
			}
			switch s.TID {
			case TrackMain:
				main = append(main, s)
			case TrackSend:
				send = append(send, s)
			case TrackHCATx:
				hcaTx = append(hcaTx, s)
			case TrackHCARx:
				hcaRx = append(hcaRx, s)
			}
		}
		b.Idle = selfTimes(main, elapsed, b.Self)
		b.SendTrack = covered(send)
		b.Adapter = covered(hcaTx) + covered(hcaRx)
		out = append(out, b)
	}
	return out
}

// covered returns the length of the union of the spans' intervals on one
// track: busy time with nested and back-to-back spans counted once.
func covered(spans []PSpan) simtime.Ticks {
	if len(spans) == 0 {
		return 0
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Dur > spans[j].Dur
	})
	var total simtime.Ticks
	cur, end := spans[0].Start, spans[0].End()
	for _, s := range spans[1:] {
		if s.Start > end {
			total += end - cur
			cur, end = s.Start, s.End()
			continue
		}
		if s.End() > end {
			end = s.End()
		}
	}
	return total + (end - cur)
}

// selfTimes partitions [0, elapsed] across the given single-track spans:
// each instant is attributed to the innermost span covering it, or to
// the returned idle time when no span covers it. Spans are assumed
// properly nested (the recorder emits them that way); a child running
// past its parent is clamped to the parent's end so the partition stays
// exact even on malformed input.
func selfTimes(spans []PSpan, elapsed simtime.Ticks, self map[string]simtime.Ticks) simtime.Ticks {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Dur != spans[j].Dur {
			return spans[i].Dur > spans[j].Dur // enclosing first
		}
		return spans[i].Layer < spans[j].Layer
	})
	type frame struct {
		layer string
		end   simtime.Ticks
	}
	var stack []frame
	var idle simtime.Ticks
	cur := simtime.Ticks(0)
	account := func(to simtime.Ticks) {
		if to <= cur {
			return
		}
		if len(stack) == 0 {
			idle += to - cur
		} else {
			self[stack[len(stack)-1].layer] += to - cur
		}
		cur = to
	}
	for _, s := range spans {
		for len(stack) > 0 && stack[len(stack)-1].end <= s.Start {
			account(stack[len(stack)-1].end)
			stack = stack[:len(stack)-1]
		}
		account(s.Start)
		end := s.End()
		if len(stack) > 0 && end > stack[len(stack)-1].end {
			end = stack[len(stack)-1].end // clamp runaway child
		}
		if end > cur {
			stack = append(stack, frame{layer: s.Layer, end: end})
		}
	}
	for len(stack) > 0 {
		account(stack[len(stack)-1].end)
		stack = stack[:len(stack)-1]
	}
	account(elapsed)
	return idle
}

// CPStep is one hop of the critical path, in chronological order. Via
// explains how the step was reached from the previous (earlier) one:
// "start" for the first, "flow" when a message chained two processes,
// "track" when it is simply the next span on the same timeline.
type CPStep struct {
	Span PSpan
	Proc string
	Via  string
}

// CriticalPath walks backwards from the globally latest-ending MPI span
// using last-arrival chaining: if a message (flow) arrives inside the
// current span, the path jumps to the span that sent it; otherwise it
// steps to the previous MPI span on the same timeline. The result is a
// heuristic — the recorder does not capture full dataflow — but on
// send/recv chains it reproduces the textbook critical path. Steps are
// returned in chronological order.
func (d *Data) CriticalPath() []CPStep {
	procName := map[int]string{}
	for _, p := range d.Procs {
		procName[p.PID] = p.Name
	}
	var roots []PSpan
	for _, s := range d.Spans {
		if s.Layer == string(LMPI) && (s.TID == TrackMain || s.TID == TrackSend) {
			roots = append(roots, s)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	begins := map[uint64]PFlow{}
	var ends []PFlow
	for _, f := range d.Flows {
		if f.Begin {
			begins[f.ID] = f
		} else {
			ends = append(ends, f)
		}
	}
	sort.Slice(ends, func(i, j int) bool {
		if ends[i].At != ends[j].At {
			return ends[i].At < ends[j].At
		}
		return ends[i].ID < ends[j].ID
	})
	// Start from the latest-ending root span.
	cur := roots[0]
	for _, s := range roots[1:] {
		if s.End() > cur.End() || (s.End() == cur.End() && cpSpanLess(s, cur)) {
			cur = s
		}
	}
	type spanKey struct {
		pid, tid int
		start    simtime.Ticks
		name     string
	}
	seen := map[spanKey]bool{}
	// rev collects steps latest-first; via[i] records the link between
	// rev[i] (earlier) and rev[i-1] (later).
	var rev []CPStep
	via := "start"
	for len(rev) < 256 {
		k := spanKey{cur.PID, cur.TID, cur.Start, cur.Name}
		if seen[k] {
			break
		}
		seen[k] = true
		rev = append(rev, CPStep{Span: cur, Proc: procName[cur.PID], Via: via})
		// Latest message arriving into this process inside the span.
		next, nextVia, ok := cpPredecessor(roots, begins, ends, cur)
		if !ok {
			break
		}
		cur, via = next, nextVia
	}
	// Reverse into chronological order. rev[i].Via currently explains
	// the link from rev[i] back to rev[i-1]; chronologically that same
	// label belongs to the later endpoint rev[i-1].
	out := make([]CPStep, len(rev))
	for i := range rev {
		out[len(rev)-1-i] = rev[i]
	}
	for i := len(out) - 1; i >= 1; i-- {
		out[i].Via = out[i-1].Via
	}
	if len(out) > 0 {
		out[0].Via = "start"
	}
	return out
}

// cpPredecessor picks the step before cur: the sender of the latest
// message arriving inside cur, else the previous span on cur's timeline.
func cpPredecessor(roots []PSpan, begins map[uint64]PFlow, ends []PFlow, cur PSpan) (PSpan, string, bool) {
	for i := len(ends) - 1; i >= 0; i-- {
		f := ends[i]
		if f.PID != cur.PID || f.At < cur.Start || f.At > cur.End() {
			continue
		}
		src, ok := begins[f.ID]
		if !ok {
			continue
		}
		if next, ok := spanCovering(roots, src.PID, src.TID, src.At); ok && !sameSpan(next, cur) {
			return next, "flow", true
		}
		break
	}
	if next, ok := prevOnTrack(roots, cur); ok {
		return next, "track", true
	}
	return PSpan{}, "", false
}

func sameSpan(a, b PSpan) bool {
	return a.PID == b.PID && a.TID == b.TID && a.Start == b.Start && a.Name == b.Name
}

// cpSpanLess is the deterministic tiebreak for critical-path choices.
func cpSpanLess(a, b PSpan) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.PID != b.PID {
		return a.PID < b.PID
	}
	if a.TID != b.TID {
		return a.TID < b.TID
	}
	return a.Name < b.Name
}

// spanCovering finds the innermost root span of (pid, tid) covering t.
func spanCovering(roots []PSpan, pid, tid int, t simtime.Ticks) (PSpan, bool) {
	var best PSpan
	found := false
	for _, s := range roots {
		if s.PID != pid || s.TID != tid || t < s.Start || t > s.End() {
			continue
		}
		if !found || s.Start > best.Start || (s.Start == best.Start && s.Dur < best.Dur) {
			best, found = s, true
		}
	}
	return best, found
}

// prevOnTrack finds the latest root span on cur's timeline ending at or
// before cur starts.
func prevOnTrack(roots []PSpan, cur PSpan) (PSpan, bool) {
	var best PSpan
	found := false
	for _, s := range roots {
		if s.PID != cur.PID || s.TID != cur.TID || s.End() > cur.Start {
			continue
		}
		if !found || s.End() > best.End() || (s.End() == best.End() && s.Start > best.Start) {
			best, found = s, true
		}
	}
	return best, found
}

// TopSlow returns the n slowest spans (all layers, all tracks), most
// expensive first, with a deterministic tiebreak. Registration and
// ATT-miss attribution rides along in the spans' Args.
func (d *Data) TopSlow(n int) []PSpan {
	spans := append([]PSpan(nil), d.Spans...)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Dur != spans[j].Dur {
			return spans[i].Dur > spans[j].Dur
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].PID != spans[j].PID {
			return spans[i].PID < spans[j].PID
		}
		if spans[i].TID != spans[j].TID {
			return spans[i].TID < spans[j].TID
		}
		return spans[i].Name < spans[j].Name
	})
	if n > len(spans) {
		n = len(spans)
	}
	return spans[:n]
}

// LayerTotals aggregates the main-track self-time breakdown across all
// processes.
func (d *Data) LayerTotals() (map[string]simtime.Ticks, simtime.Ticks) {
	totals := map[string]simtime.Ticks{}
	var idle simtime.Ticks
	for _, b := range d.Breakdowns() {
		for l, v := range b.Self {
			totals[l] += v
		}
		idle += b.Idle
	}
	return totals, idle
}
