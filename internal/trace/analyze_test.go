package trace

import (
	"bytes"
	"testing"

	"repro/internal/simtime"
)

// buildData records a scene and parses it back, closing the loop the
// analyzer is consumed through in cmd/tracetool.
func buildData(t *testing.T, emit func(col *Collector)) *Data {
	t.Helper()
	col := NewCollector()
	emit(col)
	var buf bytes.Buffer
	if err := col.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ParsePerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestBreakdownPartitionsExactly pins the acceptance invariant: nested
// spans attribute each instant to the innermost layer, gaps become idle,
// and the per-layer partition sums exactly to the trace's elapsed time.
func TestBreakdownPartitionsExactly(t *testing.T) {
	d := buildData(t, func(col *Collector) {
		tr := col.Tracer("rank0")
		// [0,100) mpi, containing [10,40) verbs, containing [20,25) hca.
		tc := tr.At(TrackMain, 0)
		tc.SpanAt(LMPI, "Sendrecv", 0, 100)
		tc.SpanAt(LVerbs, "RegMR", 10, 30)
		tc.SpanAt(LHCA, "post", 20, 5)
		// Gap [100,150) is idle; [150,160) app closes the run.
		tr.At(TrackMain, 150).Span(LApp, "compute", 10)
	})
	bs := d.Breakdowns()
	if len(bs) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bs))
	}
	b := bs[0]
	want := map[string]simtime.Ticks{
		"mpi": 70, "verbs": 25, "hca": 5, "app": 10,
	}
	for l, w := range want {
		if b.Self[l] != w {
			t.Errorf("self[%s] = %d, want %d", l, b.Self[l], w)
		}
	}
	if b.Idle != 50 {
		t.Errorf("idle = %d, want 50", b.Idle)
	}
	if b.Total() != d.Elapsed() {
		t.Fatalf("partition broken: total %d != elapsed %d", b.Total(), d.Elapsed())
	}
}

// TestBreakdownOverlayTracksUseUnion pins that the send-half and adapter
// overlays count busy time once: nested or duplicated spans on those
// tracks must not inflate the totals.
func TestBreakdownOverlayTracksUseUnion(t *testing.T) {
	d := buildData(t, func(col *Collector) {
		tr := col.Tracer("rank0")
		tc := tr.At(TrackMain, 0)
		tc.SpanAt(LMPI, "Sendrecv", 0, 100)
		// Send track: outer [0,60) with nested [10,20) — union 60.
		tc.OnTrack(TrackSend).SpanAt(LMPI, "send.half", 0, 60)
		tc.OnTrack(TrackSend).SpanAt(LVerbs, "RegMR", 10, 10)
		// HCA tx [0,30) and [20,50): union 50; rx [70,80): 10.
		tc.OnTrack(TrackHCATx).SpanAt(LHCA, "dma.gather", 0, 30)
		tc.OnTrack(TrackHCATx).SpanAt(LHCA, "dma.gather", 20, 30)
		tc.OnTrack(TrackHCARx).SpanAt(LHCA, "dma.scatter", 70, 10)
	})
	b := d.Breakdowns()[0]
	if b.SendTrack != 60 {
		t.Errorf("SendTrack = %d, want 60 (union, not 70)", b.SendTrack)
	}
	if b.Adapter != 60 {
		t.Errorf("Adapter = %d, want 60 (tx union 50 + rx 10)", b.Adapter)
	}
	if b.Total() != d.Elapsed() {
		t.Fatalf("overlay tracks leaked into the main partition: %d != %d", b.Total(), d.Elapsed())
	}
}

// TestCriticalPathFollowsFlow pins the last-arrival chaining: the path
// from the latest-ending span must jump across the message arrow to the
// sender's span.
func TestCriticalPathFollowsFlow(t *testing.T) {
	d := buildData(t, func(col *Collector) {
		a := col.Tracer("rank0")
		b := col.Tracer("rank1")
		// rank0 sends during [0,50); the message lands in rank1's recv
		// span [10,120).
		tc := a.At(TrackMain, 0)
		tc.SpanAt(LMPI, "Send", 0, 50)
		a.At(TrackMain, 40).FlowBegin(9)
		rb := b.At(TrackMain, 10)
		rb.SpanAt(LMPI, "Recv", 10, 110)
		b.At(TrackMain, 90).FlowEnd(9)
	})
	steps := d.CriticalPath()
	if len(steps) != 2 {
		t.Fatalf("got %d steps, want 2: %+v", len(steps), steps)
	}
	if steps[0].Span.Name != "Send" || steps[0].Proc != "rank0" || steps[0].Via != "start" {
		t.Errorf("step 0 = %s on %s via %s, want Send on rank0 via start",
			steps[0].Span.Name, steps[0].Proc, steps[0].Via)
	}
	if steps[1].Span.Name != "Recv" || steps[1].Proc != "rank1" || steps[1].Via != "flow" {
		t.Errorf("step 1 = %s on %s via %s, want Recv on rank1 via flow",
			steps[1].Span.Name, steps[1].Proc, steps[1].Via)
	}
}

// TestTopSlowOrdersDeterministically pins the ordering and tiebreak.
func TestTopSlowOrdersDeterministically(t *testing.T) {
	d := buildData(t, func(col *Collector) {
		tr := col.Tracer("n")
		tc := tr.At(TrackMain, 0)
		tc.SpanAt(LMPI, "a", 0, 30)
		tc.SpanAt(LMPI, "b", 100, 50)
		tc.SpanAt(LMPI, "c", 50, 30) // ties a on dur; later start loses
	})
	top := d.TopSlow(2)
	if len(top) != 2 || top[0].Name != "b" || top[1].Name != "a" {
		names := make([]string, len(top))
		for i, s := range top {
			names[i] = s.Name
		}
		t.Fatalf("TopSlow order %v, want [b a]", names)
	}
	if got := len(d.TopSlow(99)); got != 3 {
		t.Fatalf("TopSlow clamps to %d spans, want 3", got)
	}
}

// TestCoveredUnion checks the interval-union helper directly on the
// awkward shapes: containment, exact abutment, disjoint gaps.
func TestCoveredUnion(t *testing.T) {
	mk := func(start, dur simtime.Ticks) PSpan { return PSpan{Start: start, Dur: dur} }
	cases := []struct {
		spans []PSpan
		want  simtime.Ticks
	}{
		{nil, 0},
		{[]PSpan{mk(0, 10)}, 10},
		{[]PSpan{mk(0, 10), mk(10, 5)}, 15},          // abutting
		{[]PSpan{mk(0, 10), mk(2, 3)}, 10},           // contained
		{[]PSpan{mk(0, 10), mk(20, 5)}, 15},          // disjoint
		{[]PSpan{mk(5, 10), mk(0, 7), mk(3, 1)}, 15}, // overlap, unsorted
	}
	for i, c := range cases {
		if got := covered(c.spans); got != c.want {
			t.Errorf("case %d: covered = %d, want %d", i, got, c.want)
		}
	}
}
