package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/simtime"
)

// TestDisabledFormsAreInert exercises every method on the nil/zero
// disabled forms: nothing may panic and nothing may record.
func TestDisabledFormsAreInert(t *testing.T) {
	var col *Collector
	if !col.Empty() {
		t.Fatal("nil collector should be Empty")
	}
	col.SetMeta("k", "v")
	tr := col.Tracer("ghost")
	if tr != nil {
		t.Fatal("nil collector must hand out nil tracers")
	}
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	tc := tr.At(TrackMain, 100)
	if tc.Enabled() {
		t.Fatal("zero Ctx reports Enabled")
	}
	tc = tc.Advance(5).Span(LMPI, "Send", 10).OnTrack(TrackSend)
	tc.SpanAt(LVerbs, "RegMR", 0, 3)
	tc.Event(LVM, "map.huge")
	tc.FlowBegin(1)
	tc.FlowEnd(1)
	cur := tr.Cursor(TrackMain)
	if cur.Enabled() {
		t.Fatal("nil cursor reports Enabled")
	}
	cur.Set(42)
	cur.Event(LPhys, "hugepool.empty")
	var buf bytes.Buffer
	if err := col.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var js map[string]any
	if err := json.Unmarshal(buf.Bytes(), &js); err != nil {
		t.Fatalf("nil collector still must write valid JSON: %v", err)
	}
}

// TestCtxAdvancesThroughSpans pins the Ctx value semantics: Span moves
// the position past the emitted interval, Advance skips uninstrumented
// cost, OnTrack changes only the track.
func TestCtxAdvancesThroughSpans(t *testing.T) {
	col := NewCollector()
	tr := col.Tracer("n")
	tc := tr.At(TrackMain, 100)
	tc = tc.Span(LVerbs, "pin", 30)
	if tc.Now() != 130 {
		t.Fatalf("after Span(30): Now = %d, want 130", tc.Now())
	}
	tc = tc.Advance(20)
	if tc.Now() != 150 {
		t.Fatalf("after Advance(20): Now = %d, want 150", tc.Now())
	}
	side := tc.OnTrack(TrackHCATx)
	if side.Now() != 150 {
		t.Fatal("OnTrack must preserve the instant")
	}
	// The original is unchanged — Ctx is a value.
	if tc.Now() != 150 {
		t.Fatal("OnTrack mutated its receiver")
	}
}

// record emits a fixed scene; permute controls insertion order, which
// must not affect the rendered bytes.
func record(permute bool) *Collector {
	col := NewCollector()
	col.SetMeta("tool", "test")
	a := col.Tracer("rank0")
	b := col.Tracer("rank1")
	emitA := func() {
		tc := a.At(TrackMain, 0)
		tc = tc.Span(LMPI, "Send", 100, I64("bytes", 4096))
		tc.FlowBegin(7)
		a.At(TrackHCATx, 40).Span(LHCA, "dma.gather", 30)
		a.Cursor(TrackMain).Event(LVM, "map.huge", I64("pages", 2))
	}
	emitB := func() {
		tc := b.At(TrackMain, 60)
		tc.FlowEnd(7)
		tc.Span(LMPI, "Recv", 80)
	}
	if permute {
		emitB()
		emitA()
	} else {
		emitA()
		emitB()
	}
	return col
}

func TestWriterIsCanonicalUnderInsertionOrder(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := record(false).WritePerfetto(&b1); err != nil {
		t.Fatal(err)
	}
	if err := record(true).WritePerfetto(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("insertion order leaked into the rendered trace bytes")
	}
	var js map[string]any
	if err := json.Unmarshal(b1.Bytes(), &js); err != nil {
		t.Fatalf("writer emitted invalid JSON: %v", err)
	}
}

// TestRoundTripTicksExact writes odd tick values (whose µs rendering is
// fractional) and parses them back: the 512 ticks/µs conversion must
// round-trip without loss.
func TestRoundTripTicksExact(t *testing.T) {
	col := NewCollector()
	tr := col.Tracer("n")
	starts := []simtime.Ticks{0, 1, 3, 511, 513, 1_000_003, 123_456_789}
	for i, s := range starts {
		tr.At(TrackMain, s).Span(LVerbs, "s", simtime.Ticks(i*7+1), I64("i", int64(i)))
	}
	var buf bytes.Buffer
	if err := col.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ParsePerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != len(starts) {
		t.Fatalf("parsed %d spans, want %d", len(d.Spans), len(starts))
	}
	seen := map[simtime.Ticks]PSpan{}
	for _, s := range d.Spans {
		seen[s.Start] = s
	}
	for i, s := range starts {
		ps, ok := seen[s]
		if !ok {
			t.Fatalf("span starting at %d lost in round trip", s)
		}
		if ps.Dur != simtime.Ticks(i*7+1) {
			t.Fatalf("span at %d: dur %d, want %d", s, ps.Dur, i*7+1)
		}
		if ps.Args["i"] != int64(i) {
			t.Fatalf("span at %d: arg i = %d, want %d", s, ps.Args["i"], i)
		}
	}
	if d.Meta["tickHz"] != "5.12e+08" && d.Meta["tickHz"] != "512000000" {
		t.Fatalf("tickHz lost: %q", d.Meta["tickHz"])
	}
}

// TestCursorStampsAtSetPosition pins the clockless-layer protocol: the
// owner Sets the position, the layer Events at it.
func TestCursorStampsAtSetPosition(t *testing.T) {
	col := NewCollector()
	tr := col.Tracer("n")
	cur := tr.Cursor(TrackMain)
	if !cur.Enabled() {
		t.Fatal("live cursor must report Enabled")
	}
	cur.Set(250)
	cur.Event(LPhys, "hugepool.shrink", I64("pages", 4))
	var buf bytes.Buffer
	if err := col.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ParsePerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 1 || d.Events[0].At != 250 || d.Events[0].Name != "hugepool.shrink" {
		t.Fatalf("cursor event mis-stamped: %+v", d.Events)
	}
}
