package sweep

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"repro/internal/cas"
)

// cacheGrid is a small strategied grid cheap enough to run repeatedly:
// two strategies × two seeds of the Abinit allocator replay.
func cacheGrid() Grid {
	return Grid{
		Name:       "cachetest",
		Machines:   []string{"opteron"},
		Workloads:  []string{"alloc/abinit"},
		Strategies: []string{"small-lazy", "huge-lazy"},
		Faults:     []string{"seed=3,attevict=800"},
		Seeds:      []uint64{1, 2},
	}
}

func renderBench(t *testing.T, b *Bench) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCacheWarmRunExecutesNothing is the tentpole contract: a cold run
// populates the store, a warm re-run of the same grid executes zero
// replicates and renders byte-identical BENCH output.
func TestCacheWarmRunExecutesNothing(t *testing.T) {
	store, err := cas.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var cold, warm ExecStats
	b1, errs, err := Execute(cacheGrid(), Options{Workers: 2, Cache: store, Fingerprint: "fp1", Stats: &cold})
	if err != nil || len(errs) != 0 {
		t.Fatalf("cold run: %v %v", errs, err)
	}
	if cold.RunsExecuted != 4 || cold.RunsCached != 0 {
		t.Fatalf("cold stats = %+v", cold)
	}
	b2, errs, err := Execute(cacheGrid(), Options{Workers: 2, Cache: store, Fingerprint: "fp1", Stats: &warm})
	if err != nil || len(errs) != 0 {
		t.Fatalf("warm run: %v %v", errs, err)
	}
	if warm.RunsExecuted != 0 || warm.RunsCached != 4 {
		t.Fatalf("warm stats = %+v", warm)
	}
	if !bytes.Equal(renderBench(t, b1), renderBench(t, b2)) {
		t.Fatal("cached run renders different BENCH bytes")
	}
	if err := Validate(b2); err != nil {
		t.Fatalf("cached document invalid: %v", err)
	}
}

// TestCacheInvalidationIsSelective pins the incremental property:
// changing one strategy in the grid re-executes only that strategy's
// cells, and a fingerprint (code) change re-executes everything.
func TestCacheInvalidationIsSelective(t *testing.T) {
	store, err := cas.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var st ExecStats
	if _, errs, err := Execute(cacheGrid(), Options{Cache: store, Fingerprint: "fp1", Stats: &st}); err != nil || len(errs) != 0 {
		t.Fatalf("cold run: %v %v", errs, err)
	}

	// Swap huge-lazy for huge: the two small-lazy replicates stay
	// cached, the two huge replicates execute.
	g := cacheGrid()
	g.Strategies = []string{"small-lazy", "huge"}
	if _, errs, err := Execute(g, Options{Cache: store, Fingerprint: "fp1", Stats: &st}); err != nil || len(errs) != 0 {
		t.Fatalf("edited run: %v %v", errs, err)
	}
	if st.RunsCached != 2 || st.RunsExecuted != 2 {
		t.Fatalf("strategy edit: stats = %+v, want 2 cached + 2 executed", st)
	}

	// A new seed extends the replicate list: old seeds hit, new ones run.
	g = cacheGrid()
	g.Seeds = []uint64{1, 2, 3}
	if _, errs, err := Execute(g, Options{Cache: store, Fingerprint: "fp1", Stats: &st}); err != nil || len(errs) != 0 {
		t.Fatalf("seed run: %v %v", errs, err)
	}
	if st.RunsCached != 4 || st.RunsExecuted != 2 {
		t.Fatalf("seed extension: stats = %+v, want 4 cached + 2 executed", st)
	}

	// A different fingerprint (a code edit) invalidates everything.
	if _, errs, err := Execute(cacheGrid(), Options{Cache: store, Fingerprint: "fp2", Stats: &st}); err != nil || len(errs) != 0 {
		t.Fatalf("fingerprint run: %v %v", errs, err)
	}
	if st.RunsCached != 0 || st.RunsExecuted != 4 {
		t.Fatalf("fingerprint change: stats = %+v, want 0 cached + 4 executed", st)
	}
}

// TestCacheStripsWallMetrics: stored payloads carry only deterministic
// metrics, so a warm run of a wall-reporting workload yields exactly
// the stripped view a fresh run would after StripWall.
func TestCacheStripsWallMetrics(t *testing.T) {
	g := Grid{
		Name:       "walltest",
		Machines:   []string{"opteron"},
		Workloads:  []string{"scale/sendrecv"},
		Strategies: []string{"huge-lazy"},
		Seeds:      []uint64{1},
		Ranks:      2,
	}
	store, err := cas.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b1, errs, err := Execute(g, Options{Cache: store, Fingerprint: "fp1"})
	if err != nil || len(errs) != 0 {
		t.Fatalf("cold run: %v %v", errs, err)
	}
	if _, ok := b1.Cells[0].Stats["ticks_per_wallsec"]; !ok {
		t.Fatal("fresh run missing its wall metric")
	}
	var st ExecStats
	b2, errs, err := Execute(g, Options{Cache: store, Fingerprint: "fp1", Stats: &st})
	if err != nil || len(errs) != 0 || st.RunsCached != 1 {
		t.Fatalf("warm run: %v %v stats=%+v", errs, err, st)
	}
	if _, ok := b2.Cells[0].Stats["ticks_per_wallsec"]; ok {
		t.Fatal("cached run resurrected a wall metric")
	}
	b1.StripWall()
	if !bytes.Equal(renderBench(t, b1), renderBench(t, b2)) {
		t.Fatal("cached run differs from the fresh run's stripped view")
	}
}

// TestOnCellStreamsEveryCompleteCell: the streaming callback fires once
// per complete cell with aggregated stats and the per-cell cached count.
func TestOnCellStreamsEveryCompleteCell(t *testing.T) {
	store, err := cas.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	opts := Options{
		Workers:     2,
		Cache:       store,
		Fingerprint: "fp1",
		OnCell: func(c Cell, cachedRuns int) {
			if len(c.Stats) == 0 {
				t.Errorf("cell %s streamed without stats", c.Key())
			}
			seen[c.Key()] = cachedRuns
		},
	}
	b, errs, err := Execute(cacheGrid(), opts)
	if err != nil || len(errs) != 0 {
		t.Fatalf("run: %v %v", errs, err)
	}
	if len(seen) != len(b.Cells) {
		t.Fatalf("streamed %d cells, document has %d", len(seen), len(b.Cells))
	}
	for key, cached := range seen {
		if cached != 0 {
			t.Errorf("cold run streamed cell %s with %d cached runs", key, cached)
		}
	}
	// Warm: every cell streams again, fully cached.
	seen = make(map[string]int)
	if _, errs, err := Execute(cacheGrid(), opts); err != nil || len(errs) != 0 {
		t.Fatalf("warm run: %v %v", errs, err)
	}
	for key, cached := range seen {
		if cached != 2 {
			t.Errorf("warm run streamed cell %s with %d cached runs, want 2", key, cached)
		}
	}
}

// TestExecuteCancellation: a canceled context fails pending replicates
// with the context error and Execute surfaces it.
func TestExecuteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the first replicate starts
	var st ExecStats
	b, errs, err := Execute(cacheGrid(), Options{Workers: 1, Ctx: ctx, Stats: &st})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(errs) != 4 || st.RunsFailed != 4 {
		t.Fatalf("errs = %d, stats = %+v", len(errs), st)
	}
	if len(b.Cells) != 0 {
		t.Fatalf("canceled run produced %d cells", len(b.Cells))
	}
}

// TestTraceCellCached: the second trace of a cell is served from the
// store byte-for-byte.
func TestTraceCellCached(t *testing.T) {
	store, err := cas.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := cacheGrid()
	key := "alloc/abinit/opteron/huge-lazy/seed=3,attevict=800"
	t1, err := TraceCellCached(g, key, store, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) == 0 || store.Len() != 1 {
		t.Fatalf("trace empty or not stored (len=%d, entries=%d)", len(t1), store.Len())
	}
	t2, err := TraceCellCached(g, key, store, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("cached trace differs from fresh trace")
	}
	if st := store.Stats(); st.Hits != 1 {
		t.Fatalf("second trace did not hit the store: %+v", st)
	}
	if _, err := TraceCellCached(g, "no/such/cell", store, "fp1"); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

// TestGridCounts pins the -list cost estimate: strategy-agnostic
// workloads collapse to one cell per machine × faults.
func TestGridCounts(t *testing.T) {
	g := Grid{
		Name:       "counts",
		Machines:   []string{"opteron"},
		Workloads:  []string{"alloc/abinit", "wr/sge"},
		Strategies: []string{"small-lazy", "huge-lazy"},
		Seeds:      []uint64{1, 2, 3},
	}
	cells, runs, err := g.Counts()
	if err != nil {
		t.Fatal(err)
	}
	// alloc/abinit is strategied (2 cells), wr/sge is agnostic (1 cell).
	if cells != 3 || runs != 9 {
		t.Fatalf("Counts = %d cells, %d runs; want 3, 9", cells, runs)
	}
	if _, _, err := (Grid{Name: "bad"}).Counts(); err == nil {
		t.Fatal("invalid grid counted")
	}
}

// TestCommittedBaselinesValidate guards every committed BENCH_*.json:
// each must strictly decode and pass Validate, the same path the
// regression gate uses — a hand-edited or stale baseline fails here.
func TestCommittedBaselinesValidate(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed BENCH baselines found (err=%v)", err)
	}
	want := map[string]bool{"BENCH_seed.json": false, "BENCH_policy.json": false, "BENCH_scale.json": false}
	for _, p := range paths {
		b, err := LoadFile(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if _, tracked := want[filepath.Base(p)]; tracked {
			want[filepath.Base(p)] = true
		}
		if b.Name == "" {
			t.Errorf("%s: empty grid name", p)
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("expected committed baseline %s missing", name)
		}
	}
}
