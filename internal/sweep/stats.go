package sweep

import (
	"math"
	"sort"
)

// Dist summarizes one metric across a cell's seed replicates.
type Dist struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// Stddev is the sample standard deviation (n-1); 0 when N < 2.
	Stddev float64 `json:"stddev"`
	// CI95 is the half-width of the 95% confidence interval of the mean,
	// t(0.975, n-1) * stddev / sqrt(n), using Student-t critical values —
	// at our typical n=3 replicates the t quantile is 4.303, more than
	// double the 1.96 a normal approximation would (wrongly) use.
	CI95 float64 `json:"ci95"`
}

// tTable holds two-sided 95% Student-t critical values t(0.975, df) for
// df = 1..30; beyond that the normal quantile 1.96 is close enough.
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit975 returns t(0.975, df), the two-sided 95% critical value.
func tCrit975(df int) float64 {
	switch {
	case df <= 0:
		return 0
	case df <= len(tTable):
		return tTable[df-1]
	default:
		return 1.96
	}
}

// newDist computes the summary of one metric's replicate values, which
// must be non-empty. The input order does not matter (values are
// re-sorted), so worker interleaving cannot leak into the output.
func newDist(values []float64) Dist {
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)
	n := len(vs)
	d := Dist{N: n, Min: vs[0], Max: vs[n-1]}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	// The true mean of values in [min, max] lies in [min, max]; the
	// floating-point sum/n can overshoot by an ulp (three identical
	// replicates already trigger it). Clamp so the invariant survives.
	d.Mean = math.Min(math.Max(sum/float64(n), d.Min), d.Max)
	if n%2 == 1 {
		d.Median = vs[n/2]
	} else {
		d.Median = (vs[n/2-1] + vs[n/2]) / 2
	}
	if n > 1 {
		var ss float64
		for _, v := range vs {
			dv := v - d.Mean
			ss += dv * dv
		}
		d.Stddev = math.Sqrt(ss / float64(n-1))
		d.CI95 = tCrit975(n-1) * d.Stddev / math.Sqrt(float64(n))
	}
	return d
}

// sortedKeys returns a map's string keys in sorted order — the one way
// map contents reach any output path in this package.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// aggregate fills a cell's Stats from its completed runs: one Dist per
// metric name appearing in any run. Metric keys are collected in sorted
// order, and each Dist sees the values in seed order — the result is
// independent of worker scheduling.
func (c *Cell) aggregate() {
	keys := map[string]bool{}
	for _, r := range c.Runs {
		for k := range r.Metrics {
			keys[k] = true
		}
	}
	names := sortedKeys(keys)
	c.Stats = make(map[string]Dist, len(names))
	for _, name := range names {
		var vals []float64
		for _, r := range c.Runs {
			if v, ok := r.Metrics[name]; ok {
				vals = append(vals, v)
			}
		}
		if len(vals) > 0 {
			c.Stats[name] = newDist(vals)
		}
	}
}
