package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// executedFixture runs the cheapest meaningful grid once per test
// process and hands out a fresh decoded copy each call, so tests can
// mutate freely.
var fixtureBytes []byte

func fixture(t *testing.T) *Bench {
	t.Helper()
	if fixtureBytes == nil {
		g := Grid{
			Name:       "fixture",
			Machines:   []string{"opteron"},
			Workloads:  []string{"alloc/abinit"},
			Strategies: []string{"small-lazy", "huge-lazy"},
			Seeds:      []uint64{1, 2, 3},
		}
		b, runErrs, err := Execute(g, Options{Workers: 2})
		if err != nil || len(runErrs) != 0 {
			t.Fatalf("fixture grid failed: err=%v runErrs=%v", err, runErrs)
		}
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			t.Fatal(err)
		}
		fixtureBytes = buf.Bytes()
	}
	b, err := Load(bytes.NewReader(fixtureBytes))
	if err != nil {
		t.Fatalf("fixture does not round-trip: %v", err)
	}
	return b
}

func TestBenchRoundTripsByteIdentically(t *testing.T) {
	b := fixture(t)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), fixtureBytes) {
		t.Fatal("Write(Load(doc)) differs from doc: the canonical rendering is not stable")
	}
}

func TestBenchCarriesComparisonsAndCI(t *testing.T) {
	b := fixture(t)
	if len(b.Comparisons) != 1 {
		t.Fatalf("got %d comparisons, want the small-lazy -> huge-lazy pair", len(b.Comparisons))
	}
	c := b.Comparisons[0]
	if c.Base != "small-lazy" || c.Test != "huge-lazy" || c.Primary != "alloc_ticks" {
		t.Fatalf("comparison = %+v", c)
	}
	if c.PrimaryImprovementPct != c.ImprovementPct["alloc_ticks"] {
		t.Fatal("headline improvement does not match the primary metric column")
	}
	for i := range b.Cells {
		d, ok := b.Cells[i].Stats["alloc_ticks"]
		if !ok || d.N != 3 {
			t.Fatalf("cell %s missing three-replicate alloc_ticks stats", b.Cells[i].Key())
		}
		if d.Stddev == 0 || d.CI95 == 0 {
			t.Fatalf("cell %s has degenerate spread — seed replication is not perturbing runs", b.Cells[i].Key())
		}
	}
}

func TestGatePassesAgainstItself(t *testing.T) {
	b := fixture(t)
	if regs := Gate(b, b, 0.5); len(regs) != 0 {
		t.Fatalf("self-gate found regressions: %v", regs)
	}
}

// TestGateFlagsDoctoredBaseline doctors the baseline so its huge-lazy
// cell looks faster than the current run beyond tolerance, and expects
// the gate to name exactly that cell.
func TestGateFlagsDoctoredBaseline(t *testing.T) {
	cur := fixture(t)
	base := fixture(t)
	var doctored string
	for i := range base.Cells {
		if base.Cells[i].Strategy != "huge-lazy" {
			continue
		}
		d := base.Cells[i].Stats["alloc_ticks"]
		d.Mean /= 2 // baseline twice as fast => current is 100% worse
		base.Cells[i].Stats["alloc_ticks"] = d
		doctored = base.Cells[i].Key()
	}
	regs := Gate(cur, base, 5)
	if len(regs) != 1 {
		t.Fatalf("gate found %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Cell != doctored || r.Metric != "alloc_ticks" || r.WorsePct < 90 {
		t.Fatalf("regression = %+v, want the doctored cell ~100%% worse", r)
	}
	if !strings.Contains(r.String(), doctored) {
		t.Fatalf("regression string %q does not name the cell", r.String())
	}
}

// TestGateDirectionAware checks both metric directions on hand-built
// documents: for higher-is-better primaries a *drop* is the regression.
func TestGateDirectionAware(t *testing.T) {
	mk := func(mean float64) *Bench {
		return &Bench{
			SchemaVersion: SchemaVersion,
			Name:          "t",
			Cells: []Cell{{
				Workload: "imb/sendrecv", Machine: "opteron", Strategy: "huge-lazy",
				Seeds: []uint64{1},
				Runs:  []Run{{Seed: 1, Metrics: Metrics{"bw_mbs_4m": mean}}},
				Stats: map[string]Dist{"bw_mbs_4m": {N: 1, Mean: mean, Median: mean, Min: mean, Max: mean}},
			}},
		}
	}
	// Bandwidth fell 20%: regression.
	if regs := Gate(mk(800), mk(1000), 5); len(regs) != 1 {
		t.Fatalf("bandwidth drop not flagged: %v", regs)
	}
	// Bandwidth rose 20%: improvement, not a regression.
	if regs := Gate(mk(1200), mk(1000), 5); len(regs) != 0 {
		t.Fatalf("bandwidth gain flagged as regression: %v", regs)
	}
	// Within tolerance: quiet.
	if regs := Gate(mk(970), mk(1000), 5); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}
	// Cells missing from the baseline are ignored.
	empty := &Bench{SchemaVersion: SchemaVersion, Name: "t"}
	if regs := Gate(mk(800), empty, 5); len(regs) != 0 {
		t.Fatalf("cell absent from baseline flagged: %v", regs)
	}
}

func TestLoadRejectsCorruptDocuments(t *testing.T) {
	b := fixture(t)
	b.Cells[0].Stats["alloc_ticks"] = Dist{N: 99, Mean: 1, Median: 1, Min: 1, Max: 1}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "n=99") {
		t.Fatalf("err = %v, want stat-sanity complaint", err)
	}
}

func TestFormatTablesCoverEveryCell(t *testing.T) {
	b := fixture(t)
	cells := FormatCells(b)
	for i := range b.Cells {
		if !strings.Contains(cells, b.Cells[i].Key()) {
			t.Fatalf("FormatCells omits %s", b.Cells[i].Key())
		}
	}
	cmps := FormatComparisons(b)
	if !strings.Contains(cmps, "small-lazy -> huge-lazy") {
		t.Fatal("FormatComparisons omits the strategy pair")
	}
	if strings.Contains(cmps, VirtTicks) {
		t.Fatal("FormatComparisons leaks the internal virt_ticks metric")
	}
}
