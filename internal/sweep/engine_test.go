package sweep

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/verbs"
)

// barrierHook lets one test at a time inject behavior into the
// test/barrier workload (the registry is process-global, so the
// workload is registered once and re-pointed per test).
var barrierHook atomic.Value // of func() error

var registerTestWorkloads = sync.OnceValue(func() error {
	if err := Register(Workload{
		Name:    "test/barrier",
		Primary: "ok",
		Run: func(c RunContext) (Metrics, error) {
			if f, _ := barrierHook.Load().(func() error); f != nil {
				if err := f(); err != nil {
					return nil, err
				}
			}
			return Metrics{"ok": 1, VirtTicks: 1}, nil
		},
	}); err != nil {
		return err
	}
	// test/spin burns a deterministic slice of CPU per replicate — the
	// workload behind the wall-clock concurrency check.
	return Register(Workload{
		Name:    "test/spin",
		Primary: "checksum",
		Run: func(c RunContext) (Metrics, error) {
			x := c.Seed + 1
			for i := 0; i < 30_000_000; i++ {
				x = x*6364136223846793005 + 1442695040888963407
			}
			return Metrics{"checksum": float64(x % 1024), VirtTicks: 1}, nil
		},
	})
})

func testGrid(workload string, seeds ...uint64) Grid {
	return Grid{
		Name:       "t",
		Machines:   []string{"opteron"},
		Workloads:  []string{workload},
		Strategies: []string{"small-lazy"},
		Seeds:      seeds,
	}
}

// TestExecuteByteIdenticalAcrossWorkerCounts is the core determinism
// guarantee: the same grid renders to the same BENCH bytes at any pool
// size. CI re-checks this across processes (GOMAXPROCS=1 vs 4 + cmp).
func TestExecuteByteIdenticalAcrossWorkerCounts(t *testing.T) {
	g := Grid{
		Name:       "t",
		Machines:   []string{"opteron"},
		Workloads:  []string{"alloc/abinit", "wr/sge"},
		Strategies: []string{"small-lazy", "huge-lazy"},
		Faults:     []string{"seed=3,attevict=800,wr=200"},
		Seeds:      []uint64{1, 2, 3},
	}
	render := func(workers int) []byte {
		b, runErrs, err := Execute(g, Options{Workers: workers})
		if err != nil || len(runErrs) != 0 {
			t.Fatalf("workers=%d: err=%v runErrs=%v", workers, err, runErrs)
		}
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := render(1)
	for _, workers := range []int{2, 4, 8} {
		if !bytes.Equal(one, render(workers)) {
			t.Fatalf("BENCH bytes differ between 1 and %d workers", workers)
		}
	}
}

// TestExecuteOverlapsReplicates proves the pool genuinely runs
// replicates concurrently: every replicate blocks on a barrier that only
// opens once all four have arrived, so a sequential engine would time
// out instead of completing.
func TestExecuteOverlapsReplicates(t *testing.T) {
	if err := registerTestWorkloads(); err != nil {
		t.Fatal(err)
	}
	const n = 4
	var arrived int32
	release := make(chan struct{})
	barrierHook.Store(func() error {
		if atomic.AddInt32(&arrived, 1) == n {
			close(release)
		}
		select {
		case <-release:
			return nil
		case <-time.After(30 * time.Second): //reprolint:ignore liveness timeout for a concurrency proof, not a measurement
			return errors.New("barrier never filled: replicates did not overlap")
		}
	})
	defer barrierHook.Store(func() error { return nil })
	b, runErrs, err := Execute(testGrid("test/barrier", 1, 2, 3, 4), Options{Workers: n})
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range runErrs {
		t.Errorf("replicate failed: %v", re)
	}
	if len(b.Cells) != 1 || b.Cells[0].Stats["ok"].N != n {
		t.Fatalf("expected one cell with %d replicates, got %+v", n, b.Cells)
	}
}

// TestExecuteWallClockBeatsSequential is the wall-clock sanity check:
// running the same CPU-bound grid with a real pool must take less
// elapsed time than the sequential sum.
func TestExecuteWallClockBeatsSequential(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs at least two CPUs")
	}
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	if err := registerTestWorkloads(); err != nil {
		t.Fatal(err)
	}
	g := testGrid("test/spin", 1, 2, 3, 4, 5, 6, 7, 8)
	elapsed := func(workers int) time.Duration {
		start := time.Now() //reprolint:ignore wall-clock concurrency sanity check, never feeds results
		if _, runErrs, err := Execute(g, Options{Workers: workers}); err != nil || len(runErrs) != 0 {
			t.Fatalf("workers=%d: err=%v runErrs=%v", workers, err, runErrs)
		}
		return time.Since(start) //reprolint:ignore wall-clock concurrency sanity check, never feeds results
	}
	seq := elapsed(1)
	par := elapsed(runtime.GOMAXPROCS(0))
	if par >= seq {
		t.Fatalf("parallel execution (%v) not faster than sequential (%v)", par, seq)
	}
	t.Logf("sequential %v, parallel %v", seq, par)
}

// TestExecuteMemlockCellFailsWithoutAbortingSiblings injects a fault
// spec that makes one cell's registrations exceed RLIMIT_MEMLOCK and
// checks the contract: the failing cell is reported by key with the
// verbs error preserved, and the clean sibling cell still completes with
// full statistics.
func TestExecuteMemlockCellFailsWithoutAbortingSiblings(t *testing.T) {
	g := Grid{
		Name:       "t",
		Machines:   []string{"opteron"},
		Workloads:  []string{"imb/pingpong"},
		Strategies: []string{"small-lazy"},
		Faults:     []string{"", "memlock=8k"},
		Seeds:      []uint64{1, 2},
	}
	b, runErrs, err := Execute(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) != 2 {
		t.Fatalf("got %d run errors, want one per faulted seed: %v", len(runErrs), runErrs)
	}
	for _, re := range runErrs {
		if re.Cell != "imb/pingpong/opteron/small-lazy/memlock=8k" {
			t.Errorf("run error names cell %q", re.Cell)
		}
		if !errors.Is(re.Err, verbs.ErrMemlockExceeded) {
			t.Errorf("run error does not wrap ErrMemlockExceeded: %v", re.Err)
		}
	}
	if len(b.Cells) != 1 {
		t.Fatalf("got %d surviving cells, want the clean sibling only", len(b.Cells))
	}
	c := &b.Cells[0]
	if c.Key() != "imb/pingpong/opteron/small-lazy" {
		t.Fatalf("surviving cell %s, want the clean one", c.Key())
	}
	if c.Stats["lat_ticks_64k"].N != 2 {
		t.Fatalf("clean cell aggregated %d replicates, want 2", c.Stats["lat_ticks_64k"].N)
	}
}

func TestSlowestCellAndTraceCell(t *testing.T) {
	g := Grid{
		Name:       "t",
		Machines:   []string{"opteron"},
		Workloads:  []string{"alloc/abinit", "wr/sge"},
		Strategies: []string{"small-lazy"},
		Seeds:      []uint64{1},
	}
	b, runErrs, err := Execute(g, Options{Workers: 2})
	if err != nil || len(runErrs) != 0 {
		t.Fatalf("err=%v runErrs=%v", err, runErrs)
	}
	slowest := SlowestCell(b)
	if slowest == "" {
		t.Fatal("no slowest cell")
	}
	var want string
	var ticks float64 = -1
	for i := range b.Cells {
		if d := b.Cells[i].Stats[VirtTicks]; d.Mean > ticks {
			want, ticks = b.Cells[i].Key(), d.Mean
		}
	}
	if slowest != want {
		t.Fatalf("SlowestCell = %s, want %s", slowest, want)
	}
	col, err := TraceCell(g, slowest)
	if err != nil {
		t.Fatal(err)
	}
	if col == nil {
		t.Fatal("TraceCell returned no collector")
	}
	if _, err := TraceCell(g, "no/such/cell"); err == nil {
		t.Fatal("TraceCell accepted an unknown cell key")
	}
}
