package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// BuiltinGrids returns the named grids sweeprun ships with.
//
// "smoke" is the CI gate grid: small and fast, but wide enough to cover
// an MPI workload, an allocator replay and a strategy-agnostic
// microbenchmark, with a fault spec armed so seed replicates genuinely
// differ.
//
// "seed" is the committed-baseline grid behind BENCH_seed.json and the
// EXPERIMENTS.md E11 table: every NAS kernel plus IMB SendRecv and the
// Abinit replay on the Opteron, small-lazy vs huge-lazy — the paper's
// Figure 5/6 comparison as seed-replicated statistics.
//
// "scale" is the scheduler-throughput grid behind BENCH_scale.json:
// 1024-rank IMB SendRecv and NAS CG, whose tick metrics stay
// byte-identical under any GOMAXPROCS/worker count (after
// Bench.StripWall removes the host-dependent ticks_per_wallsec family)
// and whose wall throughput the CI scale job gates against the
// committed baseline with a generous tolerance.
//
// "policy" is the placement-policy grid behind BENCH_policy.json: the
// seed grid's workloads under all four fixed Figure 5 strategies plus
// the threshold and adaptive policy engines, so the CI policy job can
// gate "adaptive beats-or-ties every static strategy cell-for-cell"
// (sweeprun -require-best adaptive).
//
// "modern" is the modern-workload grid behind BENCH_modern.json: MoE
// dispatch/combine, tiered KV-cache decode and the 2-D halo exchange
// under the four fixed strategies plus adaptive — the pack where the
// winning placement strategy flips per workload (hugepages win MoE's
// bulk dispatch, lose KV decode where the 2 MiB promotion unit makes
// tier migration uneconomical).
func BuiltinGrids() []Grid {
	return []Grid{
		{
			Name:       "smoke",
			Machines:   []string{"opteron"},
			Workloads:  []string{"alloc/abinit", "imb/pingpong", "wr/sge"},
			Strategies: []string{"small-lazy", "huge-lazy"},
			Faults:     []string{"seed=3,attevict=800,wr=200"},
			Seeds:      []uint64{1, 2, 3},
		},
		{
			Name:     "seed",
			Machines: []string{"opteron"},
			Workloads: []string{
				"alloc/abinit", "imb/sendrecv",
				"nas/cg", "nas/ep", "nas/is", "nas/lu", "nas/mg",
			},
			Strategies: []string{"small-lazy", "huge-lazy"},
			Faults:     []string{"seed=5,attevict=600,wr=300"},
			Seeds:      []uint64{1, 2, 3},
			Ranks:      4,
		},
		{
			Name:       "scale",
			Machines:   []string{"opteron"},
			Workloads:  []string{"scale/sendrecv", "scale/cg"},
			Strategies: []string{"huge-lazy"},
			Seeds:      []uint64{1},
			Ranks:      1024,
		},
		{
			Name:     "policy",
			Machines: []string{"opteron"},
			Workloads: []string{
				"alloc/abinit", "imb/sendrecv",
				"nas/cg", "nas/ep", "nas/is", "nas/lu", "nas/mg",
			},
			Strategies: []string{"small", "huge", "small-lazy", "huge-lazy", "threshold", "adaptive"},
			Faults:     []string{"seed=5,attevict=600,wr=300"},
			Seeds:      []uint64{1, 2, 3},
			Ranks:      4,
		},
		{
			Name:       "modern",
			Machines:   []string{"opteron"},
			Workloads:  []string{"moe/dispatch", "kv/decode", "halo/exchange2d"},
			Strategies: []string{"small", "huge", "small-lazy", "huge-lazy", "adaptive"},
			Seeds:      []uint64{1, 2, 3},
			Ranks:      4,
		},
	}
}

// Counts validates and expands the grid without running anything, and
// reports its size: distinct cells (strategy-agnostic workloads
// collapse to one cell per machine × faults) and total runs (cells ×
// seeds) — what sweeprun -list prints so users can estimate cost before
// submitting, and what sweepd uses to validate submissions.
func (g Grid) Counts() (cells, runs int, err error) {
	ex, err := expand(g)
	if err != nil {
		return 0, 0, err
	}
	return len(ex.cells), len(ex.jobs), nil
}

// GridByName resolves a built-in grid.
func GridByName(name string) (Grid, bool) {
	for _, g := range BuiltinGrids() {
		if g.Name == name {
			return g, true
		}
	}
	return Grid{}, false
}

// LoadGrid reads a grid spec: a built-in name, or "@path" / a path to a
// JSON file holding one Grid object (strictly decoded).
func LoadGrid(arg string) (Grid, error) {
	if g, ok := GridByName(arg); ok {
		return g, nil
	}
	path := strings.TrimPrefix(arg, "@")
	if path == arg && !strings.ContainsAny(arg, "./") {
		names := make([]string, 0, 2)
		for _, g := range BuiltinGrids() {
			names = append(names, g.Name)
		}
		return Grid{}, fmt.Errorf("sweep: unknown grid %q (built-ins: %s; or @file.json)", arg, strings.Join(names, ", "))
	}
	f, err := os.Open(path)
	if err != nil {
		return Grid{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweep: %s is not a valid grid spec: %w", path, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Grid{}, fmt.Errorf("sweep: %s has trailing data after the grid spec", path)
	}
	return g, nil
}

// FormatComparisons renders the paired-comparison table: one row per
// (workload, machine, pair), with the improvement of every common
// metric. This is the E11 speedup table.
func FormatComparisons(b *Bench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "paired strategy comparisons, %q grid (positive %% = test strategy better; mean over %d seed(s))\n", b.Name, len(b.Grid.Seeds))
	fmt.Fprintf(&sb, "%-14s %-9s %-26s %9s  %s\n", "workload", "machine", "base -> test", "primary", "per-metric improvement %")
	for _, c := range b.Comparisons {
		var parts []string
		for _, name := range sortedKeys(c.ImprovementPct) {
			if name == VirtTicks {
				continue
			}
			parts = append(parts, fmt.Sprintf("%s %+0.1f", name, c.ImprovementPct[name]))
		}
		fmt.Fprintf(&sb, "%-14s %-9s %-26s %+8.1f%%  %s\n",
			c.Workload, c.Machine, c.Base+" -> "+c.Test,
			c.PrimaryImprovementPct, strings.Join(parts, ", "))
	}
	return sb.String()
}

// FormatCells renders the per-cell statistics of the primary metric:
// mean +- ci95 over the seed replicates, with min/max spread.
func FormatCells(b *Bench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-cell primary-metric statistics, %q grid\n", b.Name)
	fmt.Fprintf(&sb, "%-52s %-14s %14s %10s %14s %14s\n", "cell", "metric", "mean", "ci95", "min", "max")
	for i := range b.Cells {
		c := &b.Cells[i]
		wl := WorkloadByName(c.Workload)
		if wl == nil {
			continue
		}
		d, ok := c.Stats[wl.Primary]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "%-52s %-14s %14.1f %10.1f %14.1f %14.1f\n",
			c.Key(), wl.Primary, d.Mean, d.CI95, d.Min, d.Max)
	}
	return sb.String()
}
