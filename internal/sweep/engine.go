package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cas"
	"repro/internal/trace"
)

// Options tunes one Execute call.
type Options struct {
	// Workers sizes the goroutine pool; <= 0 takes GOMAXPROCS. The
	// worker count affects wall-clock time only, never the output
	// bytes: runs are independent and results are indexed, not
	// appended.
	Workers int
	// Cache, when non-nil, serves each (cell, seed) replicate from the
	// content-addressed store when an entry matches its key (see
	// cache.go for the key material) and stores fresh results back.
	// Cached and fresh runs produce byte-identical deterministic views:
	// stored payloads carry the wall-metric-stripped metrics, the same
	// family Bench.StripWall removes.
	Cache *cas.Store
	// Fingerprint overrides the code fingerprint mixed into cache keys
	// ("" = cas.ModuleFingerprint()). Tests use it to simulate code
	// edits without editing code.
	Fingerprint string
	// Stats, when non-nil, receives the execution summary before
	// Execute returns.
	Stats *ExecStats
	// OnCell, when non-nil, is called once per cell whose replicates
	// all succeeded, with the aggregated cell and the number of its
	// runs served from the cache. Calls are serialized but arrive in
	// completion order, which depends on worker scheduling — stream
	// consumers (sweepd) re-sort nothing; the canonical order lives
	// only in the returned Bench.
	OnCell func(c Cell, cachedRuns int)
	// Ctx, when non-nil, cancels the run: replicates not yet started
	// when Ctx is done fail with its error, and Execute returns
	// Ctx.Err() alongside the Bench of the cells that did complete.
	Ctx context.Context
}

// ExecStats summarizes how one Execute call obtained its results.
type ExecStats struct {
	// RunsTotal = RunsExecuted + RunsCached + RunsFailed.
	RunsTotal    int `json:"runs_total"`
	RunsExecuted int `json:"runs_executed"`
	RunsCached   int `json:"runs_cached"`
	RunsFailed   int `json:"runs_failed"`
	CellsTotal   int `json:"cells_total"`
	// CellsComplete counts cells whose every replicate succeeded — the
	// cells present in the Bench.
	CellsComplete int `json:"cells_complete"`
}

// RunError is one failed (cell, seed) replicate. The engine never
// aborts sibling runs on a failure: every run executes, every error is
// reported, and sweeprun turns any of them into a non-zero exit naming
// the cell.
type RunError struct {
	Cell string
	Seed uint64
	Err  error
}

func (e RunError) Error() string {
	return fmt.Sprintf("cell %s seed=%d: %v", e.Cell, e.Seed, e.Err)
}

func (e RunError) Unwrap() error { return e.Err }

// Execute expands the grid, runs every (cell, seed) replicate on a
// worker pool, and aggregates the results into a Bench document. Cell
// run failures come back as RunErrors (the document still carries every
// cell that succeeded); the error return is reserved for unusable grids
// and for cancellation through Options.Ctx.
func Execute(g Grid, opt Options) (*Bench, []RunError, error) {
	ex, err := expand(g)
	if err != nil {
		return nil, nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ex.jobs) {
		workers = len(ex.jobs)
	}
	fingerprint := ""
	if opt.Cache != nil {
		fingerprint = fingerprintOr(opt.Fingerprint)
	}

	// Each worker writes only its job's dedicated slots; no two jobs
	// share an index, so the table needs no lock and the outcome no
	// ordering assumptions.
	runErrs := make([]error, len(ex.jobs))
	var executed, cached atomic.Int64

	// Per-cell completion tracking for the OnCell stream: the last
	// replicate in (any worker's) flight aggregates a copy and emits it.
	remaining := make([]atomic.Int32, len(ex.cells))
	cellCached := make([]atomic.Int32, len(ex.cells))
	cellFailed := make([]atomic.Bool, len(ex.cells))
	for ci := range ex.cells {
		remaining[ci].Store(int32(len(ex.cells[ci].Seeds)))
	}
	var onCellMu sync.Mutex
	finish := func(ci int, failed bool) {
		if failed {
			cellFailed[ci].Store(true)
		}
		if remaining[ci].Add(-1) != 0 || opt.OnCell == nil || cellFailed[ci].Load() {
			return
		}
		c := ex.cells[ci]
		c.Runs = append([]Run(nil), c.Runs...)
		c.aggregate()
		onCellMu.Lock()
		opt.OnCell(c, int(cellCached[ci].Load()))
		onCellMu.Unlock()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range jobs {
				j := &ex.jobs[ji]
				if opt.Ctx != nil && opt.Ctx.Err() != nil {
					runErrs[ji] = opt.Ctx.Err()
					finish(j.cell, true)
					continue
				}
				if opt.Cache != nil {
					if payload, ok := opt.Cache.Get(runKey(kindMetrics, fingerprint, j)); ok {
						if m, ok := decodeMetrics(payload); ok {
							ex.cells[j.cell].Runs[j.rep] = Run{Seed: j.seed, Metrics: m}
							cached.Add(1)
							cellCached[j.cell].Add(1)
							finish(j.cell, false)
							continue
						}
					}
				}
				metrics, err := j.wl.Run(RunContext{
					Machine:  j.machine,
					Strategy: j.strat,
					Spec:     j.spec,
					Seed:     j.seed,
					Ranks:    j.ranks,
				})
				if err != nil {
					runErrs[ji] = err
					finish(j.cell, true)
					continue
				}
				executed.Add(1)
				ex.cells[j.cell].Runs[j.rep] = Run{Seed: j.seed, Metrics: metrics}
				if opt.Cache != nil {
					payload, encErr := encodeMetrics(metrics)
					if encErr == nil {
						encErr = opt.Cache.Put(runKey(kindMetrics, fingerprint, j), payload)
					}
					if encErr != nil {
						// A store failure must not fail the sweep; the
						// result is in hand. Surface it as a run error
						// so operators see degraded caching.
						runErrs[ji] = fmt.Errorf("result ok, cache store failed: %w", encErr)
					}
				}
				finish(j.cell, false)
			}
		}()
	}
	for ji := range ex.jobs {
		jobs <- ji
	}
	close(jobs)
	wg.Wait()

	var errs []RunError
	for ji, err := range runErrs {
		if err != nil {
			j := ex.jobs[ji]
			errs = append(errs, RunError{Cell: ex.cells[j.cell].Key(), Seed: j.seed, Err: err})
		}
	}
	sortRunErrors(errs)

	// Drop cells with failed replicates from the document (their stats
	// would silently mix successful seeds), keep every complete cell.
	cells := make([]Cell, 0, len(ex.cells))
	for ci := range ex.cells {
		if cellFailed[ci].Load() {
			continue
		}
		c := ex.cells[ci]
		c.aggregate()
		cells = append(cells, c)
	}
	sortCells(cells)

	if opt.Stats != nil {
		*opt.Stats = ExecStats{
			RunsTotal:     len(ex.jobs),
			RunsExecuted:  int(executed.Load()),
			RunsCached:    int(cached.Load()),
			RunsFailed:    len(ex.jobs) - int(executed.Load()) - int(cached.Load()),
			CellsTotal:    len(ex.cells),
			CellsComplete: len(cells),
		}
	}

	b := &Bench{
		SchemaVersion: SchemaVersion,
		Name:          g.Name,
		Grid:          ex.grid,
		Cells:         cells,
	}
	b.Comparisons = comparisons(b)
	if opt.Ctx != nil && opt.Ctx.Err() != nil {
		return b, errs, opt.Ctx.Err()
	}
	return b, errs, nil
}

// SlowestCell returns the key of the cell with the largest mean
// VirtTicks — a deterministic choice, since it reads the aggregated
// virtual-time metric rather than any wall clock. Ties break toward the
// canonically first cell. Empty documents return "".
func SlowestCell(b *Bench) string {
	best, bestTicks := "", -1.0
	for i := range b.Cells {
		if d, ok := b.Cells[i].Stats[VirtTicks]; ok && d.Mean > bestTicks {
			best, bestTicks = b.Cells[i].Key(), d.Mean
		}
	}
	return best
}

// TraceCell re-runs one cell's first seed with a trace collector armed
// and returns the collector — the "capture the slowest cell" path of
// sweeprun -trace. The re-run is bit-identical to the grid run (same
// spec mixing, same context), just recorded.
func TraceCell(g Grid, cellKey string) (*trace.Collector, error) {
	ex, err := expand(g)
	if err != nil {
		return nil, err
	}
	for _, j := range ex.jobs {
		if ex.cells[j.cell].Key() != cellKey || j.rep != 0 {
			continue
		}
		col := trace.NewCollector()
		col.SetMeta("tool", "sweeprun")
		col.SetMeta("cell", cellKey)
		col.SetMeta("machine", j.machine.Name)
		col.SetMeta("faults", j.spec.String())
		_, err := j.wl.Run(RunContext{
			Machine:     j.machine,
			Strategy:    j.strat,
			Spec:        j.spec,
			Seed:        j.seed,
			Ranks:       j.ranks,
			Trace:       col,
			TracePrefix: "",
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: tracing cell %s: %w", cellKey, err)
		}
		return col, nil
	}
	return nil, fmt.Errorf("sweep: no cell %s in grid %q", cellKey, g.Name)
}

// sortRunErrors orders run errors for stable reporting.
func sortRunErrors(errs []RunError) {
	sort.Slice(errs, func(i, j int) bool {
		if errs[i].Cell != errs[j].Cell {
			return errs[i].Cell < errs[j].Cell
		}
		return errs[i].Seed < errs[j].Seed
	})
}
