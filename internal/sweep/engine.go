package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Options tunes one Execute call.
type Options struct {
	// Workers sizes the goroutine pool; <= 0 takes GOMAXPROCS. The
	// worker count affects wall-clock time only, never the output
	// bytes: runs are independent and results are indexed, not
	// appended.
	Workers int
}

// RunError is one failed (cell, seed) replicate. The engine never
// aborts sibling runs on a failure: every run executes, every error is
// reported, and sweeprun turns any of them into a non-zero exit naming
// the cell.
type RunError struct {
	Cell string
	Seed uint64
	Err  error
}

func (e RunError) Error() string {
	return fmt.Sprintf("cell %s seed=%d: %v", e.Cell, e.Seed, e.Err)
}

func (e RunError) Unwrap() error { return e.Err }

// Execute expands the grid, runs every (cell, seed) replicate on a
// worker pool, and aggregates the results into a Bench document. Cell
// run failures come back as RunErrors (the document still carries every
// cell that succeeded); the error return is reserved for unusable
// grids.
func Execute(g Grid, opt Options) (*Bench, []RunError, error) {
	ex, err := expand(g)
	if err != nil {
		return nil, nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ex.jobs) {
		workers = len(ex.jobs)
	}

	// Each worker writes only its job's dedicated slots; no two jobs
	// share an index, so the table needs no lock and the outcome no
	// ordering assumptions.
	runErrs := make([]error, len(ex.jobs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range jobs {
				j := ex.jobs[ji]
				metrics, err := j.wl.Run(RunContext{
					Machine:  j.machine,
					Strategy: j.strat,
					Spec:     j.spec,
					Seed:     j.seed,
					Ranks:    j.ranks,
				})
				if err != nil {
					runErrs[ji] = err
					continue
				}
				ex.cells[j.cell].Runs[j.rep] = Run{Seed: j.seed, Metrics: metrics}
			}
		}()
	}
	for ji := range ex.jobs {
		jobs <- ji
	}
	close(jobs)
	wg.Wait()

	var errs []RunError
	for ji, err := range runErrs {
		if err != nil {
			j := ex.jobs[ji]
			errs = append(errs, RunError{Cell: ex.cells[j.cell].Key(), Seed: j.seed, Err: err})
		}
	}
	sortRunErrors(errs)

	// Drop cells with failed replicates from the document (their stats
	// would silently mix successful seeds), keep every complete cell.
	failed := make(map[int]bool)
	for ji, err := range runErrs {
		if err != nil {
			failed[ex.jobs[ji].cell] = true
		}
	}
	cells := make([]Cell, 0, len(ex.cells))
	for ci := range ex.cells {
		if failed[ci] {
			continue
		}
		c := ex.cells[ci]
		c.aggregate()
		cells = append(cells, c)
	}
	sortCells(cells)

	b := &Bench{
		SchemaVersion: SchemaVersion,
		Name:          g.Name,
		Grid:          ex.grid,
		Cells:         cells,
	}
	b.Comparisons = comparisons(b)
	return b, errs, nil
}

// SlowestCell returns the key of the cell with the largest mean
// VirtTicks — a deterministic choice, since it reads the aggregated
// virtual-time metric rather than any wall clock. Ties break toward the
// canonically first cell. Empty documents return "".
func SlowestCell(b *Bench) string {
	best, bestTicks := "", -1.0
	for i := range b.Cells {
		if d, ok := b.Cells[i].Stats[VirtTicks]; ok && d.Mean > bestTicks {
			best, bestTicks = b.Cells[i].Key(), d.Mean
		}
	}
	return best
}

// TraceCell re-runs one cell's first seed with a trace collector armed
// and returns the collector — the "capture the slowest cell" path of
// sweeprun -trace. The re-run is bit-identical to the grid run (same
// spec mixing, same context), just recorded.
func TraceCell(g Grid, cellKey string) (*trace.Collector, error) {
	ex, err := expand(g)
	if err != nil {
		return nil, err
	}
	for _, j := range ex.jobs {
		if ex.cells[j.cell].Key() != cellKey || j.rep != 0 {
			continue
		}
		col := trace.NewCollector()
		col.SetMeta("tool", "sweeprun")
		col.SetMeta("cell", cellKey)
		col.SetMeta("machine", j.machine.Name)
		col.SetMeta("faults", j.spec.String())
		_, err := j.wl.Run(RunContext{
			Machine:     j.machine,
			Strategy:    j.strat,
			Spec:        j.spec,
			Seed:        j.seed,
			Ranks:       j.ranks,
			Trace:       col,
			TracePrefix: "",
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: tracing cell %s: %w", cellKey, err)
		}
		return col, nil
	}
	return nil, fmt.Errorf("sweep: no cell %s in grid %q", cellKey, g.Name)
}

// sortRunErrors orders run errors for stable reporting.
func sortRunErrors(errs []RunError) {
	sort.Slice(errs, func(i, j int) bool {
		if errs[i].Cell != errs[j].Cell {
			return errs[i].Cell < errs[j].Cell
		}
		return errs[i].Seed < errs[j].Seed
	})
}
