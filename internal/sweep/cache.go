package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/cas"
)

// Content-addressed incremental execution. Every (cell, seed) run is a
// pure function of its inputs — PRs 5–8 made that a gated invariant
// (byte-identical BENCH documents across worker counts, GOMAXPROCS and
// processes) — so a run's metrics can be served from a cas.Store
// whenever a prior execution stored them under the same key. The key
// covers everything the run reads:
//
//   - the BENCH schema version (a schema bump re-executes everything),
//   - the module code fingerprint (any production-source edit
//     invalidates the whole store — coarse, but never stale),
//   - the workload name, canonical machine name and the full strategy
//     tuple (allocator, dereg policy, ATT mode, policy engine),
//   - the seed-mixed fault spec, the replicate seed and the rank count.
//
// Wall-clock metrics (IsWallMetric) are excluded from stored payloads —
// the same family Bench.StripWall excises — so a cache hit returns
// exactly the deterministic view, and stripped documents from cached
// and fresh executions compare byte-identical.

// runKeyKind distinguishes the payload families sharing one store.
const (
	kindMetrics = "metrics"
	kindTrace   = "trace"
)

// strategyID renders the full strategy tuple, not just its name, so
// redefining what a named strategy means invalidates its entries.
func strategyID(s Strategy) string {
	return fmt.Sprintf("%s|%s|%t|%t|%s", s.Name, s.Allocator, s.LazyDereg, s.HugeATT, s.Policy)
}

// runKey derives the content address of one (cell, seed) replicate.
func runKey(kind, fingerprint string, j *job) cas.Key {
	return cas.HashFields(
		cas.F("kind", kind),
		cas.F("schema", strconv.Itoa(SchemaVersion)),
		cas.F("fingerprint", fingerprint),
		cas.F("workload", j.wl.Name),
		cas.F("machine", j.machine.Name),
		cas.F("strategy", strategyID(j.strat)),
		cas.F("faults", j.spec.String()),
		cas.F("seed", strconv.FormatUint(j.seed, 10)),
		cas.F("ranks", strconv.Itoa(j.ranks)),
	)
}

// encodeMetrics renders a run's metrics as the canonical cache payload:
// wall metrics dropped, keys sorted (encoding/json maps), one compact
// JSON object.
func encodeMetrics(m Metrics) ([]byte, error) {
	det := make(Metrics, len(m))
	for name, v := range m {
		if !IsWallMetric(name) {
			det[name] = v
		}
	}
	return json.Marshal(det)
}

// decodeMetrics strictly decodes a cached payload. A payload that does
// not decode to a non-empty metrics map reports ok = false and the
// caller re-executes — defense in depth behind the store's checksum.
func decodeMetrics(payload []byte) (Metrics, bool) {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var m Metrics
	if err := dec.Decode(&m); err != nil || len(m) == 0 {
		return nil, false
	}
	return m, true
}

// fingerprintOr resolves the effective fingerprint for one Execute or
// TraceCellCached call.
func fingerprintOr(fp string) string {
	if fp != "" {
		return fp
	}
	return cas.ModuleFingerprint()
}

// TraceCellCached returns the Perfetto trace JSON for one cell, serving
// it from the store when a prior call captured it and re-executing the
// cell's first replicate (TraceCell) otherwise. Traces are deterministic
// per seed like every other artifact, so the cached bytes are the bytes
// a fresh capture would produce. store may be nil (always re-executes);
// fingerprint "" takes cas.ModuleFingerprint.
func TraceCellCached(g Grid, cellKey string, store *cas.Store, fingerprint string) ([]byte, error) {
	ex, err := expand(g)
	if err != nil {
		return nil, err
	}
	var key cas.Key
	if store != nil {
		found := false
		for i := range ex.jobs {
			j := &ex.jobs[i]
			if ex.cells[j.cell].Key() == cellKey && j.rep == 0 {
				key = runKey(kindTrace, fingerprintOr(fingerprint), j)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sweep: no cell %s in grid %q", cellKey, g.Name)
		}
		if payload, ok := store.Get(key); ok {
			return payload, nil
		}
	}
	col, err := TraceCell(g, cellKey)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := col.WritePerfetto(&buf); err != nil {
		return nil, fmt.Errorf("sweep: rendering trace for %s: %w", cellKey, err)
	}
	if store != nil {
		if err := store.Put(key, buf.Bytes()); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}
