package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// SchemaVersion is the BENCH document version. Bump it on any change to
// the JSON shape; benchcheck rejects mismatches so stale baselines fail
// loudly instead of gating against the wrong fields.
const SchemaVersion = 1

// Bench is the canonical machine-readable record of one executed grid —
// the BENCH_<name>.json schema. Every slice is canonically sorted and
// every map marshals with sorted keys, so the same grid and seeds
// produce byte-identical documents under any worker count.
type Bench struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	// Grid echoes the executed grid spec.
	Grid Grid `json:"grid"`
	// Cells holds one entry per complete (workload, machine, strategy,
	// faults) configuration, sorted by that key.
	Cells []Cell `json:"cells"`
	// Comparisons holds the paired strategy speedups derivable from the
	// cells (huge vs small, lazy vs eager, ATT patch vs unpatched).
	Comparisons []Comparison `json:"comparisons,omitempty"`
}

// Comparison is one paired strategy comparison on one cell pair: the
// paper's speedup claims ("hugepages improve NAS communication by
// >8%") as first-class data.
type Comparison struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Faults   string `json:"faults,omitempty"`
	// Base and Test name the compared strategies; positive improvement
	// means Test beats Base.
	Base string `json:"base"`
	Test string `json:"test"`
	// ImprovementPct maps each metric to the direction-aware
	// improvement of Test's mean over Base's mean, in percent. For
	// lower-is-better tick metrics this is (base-test)/base*100 — the
	// paper's improvement convention.
	ImprovementPct map[string]float64 `json:"improvement_pct"`
	// Primary echoes the workload's primary metric; its improvement is
	// the comparison's headline number.
	Primary               string  `json:"primary"`
	PrimaryImprovementPct float64 `json:"primary_improvement_pct"`
}

// comparisonPairs are the strategy pairs worth a column: page size at
// both deregistration policies, deregistration policy at both page
// sizes, and the driver patch.
var comparisonPairs = []struct{ base, test string }{
	{"small", "huge"},
	{"small-lazy", "huge-lazy"},
	{"small", "small-lazy"},
	{"huge", "huge-lazy"},
	{"huge-lazy-noatt", "huge-lazy"},
	{"small", "adaptive"},
	{"huge", "adaptive"},
	{"small-lazy", "adaptive"},
	{"huge-lazy", "adaptive"},
	{"huge-lazy", "threshold"},
}

// comparisons derives every paired comparison present in the document.
// Cells are already sorted, so the output order is canonical.
func comparisons(b *Bench) []Comparison {
	type groupKey struct{ workload, machine, faults string }
	byStrategy := make(map[groupKey]map[string]*Cell)
	for i := range b.Cells {
		c := &b.Cells[i]
		k := groupKey{c.Workload, c.Machine, c.Faults}
		if byStrategy[k] == nil {
			byStrategy[k] = make(map[string]*Cell)
		}
		byStrategy[k][c.Strategy] = c
	}
	var out []Comparison
	for i := range b.Cells {
		c := &b.Cells[i]
		k := groupKey{c.Workload, c.Machine, c.Faults}
		for _, pair := range comparisonPairs {
			// Emit each pair once, keyed on its base cell.
			if c.Strategy != pair.base {
				continue
			}
			test, ok := byStrategy[k][pair.test]
			if !ok {
				continue
			}
			wl := WorkloadByName(c.Workload)
			if wl == nil {
				continue
			}
			cmp := Comparison{
				Workload:       c.Workload,
				Machine:        c.Machine,
				Faults:         c.Faults,
				Base:           pair.base,
				Test:           pair.test,
				Primary:        wl.Primary,
				ImprovementPct: make(map[string]float64),
			}
			for _, name := range sortedKeys(c.Stats) {
				bd, okB := c.Stats[name]
				td, okT := test.Stats[name]
				if !okB || !okT || bd.Mean == 0 {
					continue
				}
				// Direction: the primary metric's direction applies to
				// every tick-like metric; bandwidth metrics are the
				// higher-is-better primaries themselves.
				higher := wl.HigherIsBetter && name == wl.Primary
				imp := 100 * (bd.Mean - td.Mean) / bd.Mean
				if higher {
					imp = 100 * (td.Mean - bd.Mean) / bd.Mean
				}
				cmp.ImprovementPct[name] = imp
			}
			cmp.PrimaryImprovementPct = cmp.ImprovementPct[wl.Primary]
			out = append(out, cmp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Faults != b.Faults {
			return a.Faults < b.Faults
		}
		if a.Base != b.Base {
			return a.Base < b.Base
		}
		return a.Test < b.Test
	})
	return out
}

// IsWallMetric reports whether a metric name denotes a host-dependent
// wall-clock measurement — the "_per_wallsec" family the scale
// workloads report. Wall metrics are the one exception to "every value
// is a pure function of (cell, seed)": the gate compares them against a
// baseline with a generous tolerance, and byte-identity checks strip
// them first (StripWall).
func IsWallMetric(name string) bool {
	return strings.HasSuffix(name, "_per_wallsec")
}

// StripWall removes every wall-clock metric from the document's runs,
// stats and comparisons, in place, leaving the deterministic view that
// two executions of the same grid must reproduce byte for byte under
// any GOMAXPROCS and worker count.
func (b *Bench) StripWall() {
	for i := range b.Cells {
		c := &b.Cells[i]
		for j := range c.Runs {
			for name := range c.Runs[j].Metrics {
				if IsWallMetric(name) {
					delete(c.Runs[j].Metrics, name)
				}
			}
		}
		for name := range c.Stats {
			if IsWallMetric(name) {
				delete(c.Stats, name)
			}
		}
	}
	for i := range b.Comparisons {
		for name := range b.Comparisons[i].ImprovementPct {
			if IsWallMetric(name) {
				delete(b.Comparisons[i].ImprovementPct, name)
			}
		}
	}
}

// Write renders the document as the canonical indented JSON byte
// stream: sorted slices, sorted map keys (encoding/json's map
// behavior), one trailing newline. This is the single rendering path —
// the byte-identity guarantee lives here.
func (b *Bench) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteFile writes the document to path ("-" = stdout).
func (b *Bench) WriteFile(path string) error {
	if path == "-" {
		return b.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load strictly decodes one BENCH document: unknown fields and trailing
// data are errors, and the document must pass Validate. This is the
// baseline-loading path of regression gating, so a hand-edited or stale
// baseline fails here rather than producing nonsense verdicts.
func Load(r io.Reader) (*Bench, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b Bench
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("sweep: not a valid BENCH document: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("sweep: trailing data after the BENCH document")
	}
	if err := Validate(&b); err != nil {
		return nil, err
	}
	return &b, nil
}

// LoadFile loads and validates a BENCH document from a path.
func LoadFile(path string) (*Bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// Validate checks the document invariants benchcheck and the gate rely
// on: schema version, canonical cell order, strictly increasing seed
// lists, seed-aligned runs, and stats covering every run metric.
func Validate(b *Bench) error {
	if b.SchemaVersion != SchemaVersion {
		return fmt.Errorf("sweep: schema_version %d, this build reads %d", b.SchemaVersion, SchemaVersion)
	}
	if b.Name == "" {
		return fmt.Errorf("sweep: document missing a name")
	}
	if len(b.Cells) == 0 {
		return fmt.Errorf("sweep: document has no cells")
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Workload == "" || c.Machine == "" || c.Strategy == "" {
			return fmt.Errorf("sweep: cell %d missing workload/machine/strategy", i)
		}
		if i > 0 && !cellLess(&b.Cells[i-1], c) {
			return fmt.Errorf("sweep: cells out of canonical order at %s", c.Key())
		}
		if len(c.Seeds) == 0 {
			return fmt.Errorf("sweep: cell %s has no seeds", c.Key())
		}
		for j := 1; j < len(c.Seeds); j++ {
			if c.Seeds[j] <= c.Seeds[j-1] {
				return fmt.Errorf("sweep: cell %s seed list not strictly increasing (%d after %d)", c.Key(), c.Seeds[j], c.Seeds[j-1])
			}
		}
		if len(c.Runs) != len(c.Seeds) {
			return fmt.Errorf("sweep: cell %s has %d runs for %d seeds", c.Key(), len(c.Runs), len(c.Seeds))
		}
		if len(c.Stats) == 0 {
			return fmt.Errorf("sweep: cell %s missing stats", c.Key())
		}
		for j, r := range c.Runs {
			if r.Seed != c.Seeds[j] {
				return fmt.Errorf("sweep: cell %s run %d carries seed %d, want %d", c.Key(), j, r.Seed, c.Seeds[j])
			}
			if len(r.Metrics) == 0 {
				return fmt.Errorf("sweep: cell %s run %d has no metrics", c.Key(), j)
			}
			for _, name := range sortedKeys(r.Metrics) {
				if _, ok := c.Stats[name]; !ok {
					return fmt.Errorf("sweep: cell %s metric %q missing from stats", c.Key(), name)
				}
			}
		}
		for _, name := range sortedKeys(c.Stats) {
			d := c.Stats[name]
			if d.N <= 0 || d.N > len(c.Runs) {
				return fmt.Errorf("sweep: cell %s stat %q has n=%d for %d runs", c.Key(), name, d.N, len(c.Runs))
			}
			if d.Min > d.Mean || d.Mean > d.Max || d.Min > d.Median || d.Median > d.Max {
				return fmt.Errorf("sweep: cell %s stat %q violates min <= mean/median <= max", c.Key(), name)
			}
			if d.Stddev < 0 {
				return fmt.Errorf("sweep: cell %s stat %q has negative stddev", c.Key(), name)
			}
		}
		// The stats must be exactly what this build's aggregation derives
		// from the runs — JSON round-trips float64 losslessly, so a
		// baseline computed by an older formula (the pre-Student-t z
		// quantile) or a hand-edited document fails here rather than
		// gating against wrong intervals.
		re := Cell{Runs: c.Runs}
		re.aggregate()
		if len(re.Stats) != len(c.Stats) {
			return fmt.Errorf("sweep: cell %s has %d stats for %d run metrics", c.Key(), len(c.Stats), len(re.Stats))
		}
		for _, name := range sortedKeys(re.Stats) {
			if got, want := c.Stats[name], re.Stats[name]; got != want {
				return fmt.Errorf("sweep: cell %s stat %q does not match its runs (have %+v, recomputed %+v)", c.Key(), name, got, want)
			}
		}
	}
	for i, c := range b.Comparisons {
		if c.Workload == "" || c.Base == "" || c.Test == "" || c.Primary == "" {
			return fmt.Errorf("sweep: comparison %d missing workload/base/test/primary", i)
		}
	}
	return nil
}

// RequireBest checks that the named strategy is best-or-tied on the
// workload's primary metric in every (workload, machine, faults) group
// that carries it, and returns one message per violation — a group
// where some other strategy's mean is strictly better. This is the
// claim the policy grid exists to gate: the adaptive policy must never
// lose to a fixed strategy, including the cells where hugepages
// themselves lose (NAS IS). An empty return means the claim holds.
func RequireBest(b *Bench, name string) []string {
	type groupKey struct{ workload, machine, faults string }
	groups := make(map[groupKey]map[string]*Cell)
	for i := range b.Cells {
		c := &b.Cells[i]
		k := groupKey{c.Workload, c.Machine, c.Faults}
		if groups[k] == nil {
			groups[k] = make(map[string]*Cell)
		}
		groups[k][c.Strategy] = c
	}
	var out []string
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Strategy != name {
			continue
		}
		wl := WorkloadByName(c.Workload)
		if wl == nil {
			continue
		}
		td, ok := c.Stats[wl.Primary]
		if !ok {
			continue
		}
		group := groups[groupKey{c.Workload, c.Machine, c.Faults}]
		for _, other := range sortedKeys(group) {
			oc := group[other]
			if other == name {
				continue
			}
			od, ok := oc.Stats[wl.Primary]
			if !ok {
				continue
			}
			worse := od.Mean < td.Mean
			if wl.HigherIsBetter {
				worse = od.Mean > td.Mean
			}
			if worse {
				out = append(out, fmt.Sprintf("%s: %s beats %s on %s (%.6g vs %.6g)",
					c.Key(), other, name, wl.Primary, od.Mean, td.Mean))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Regression is one gate finding: a cell whose primary metric got worse
// than the baseline by more than the tolerance.
type Regression struct {
	Cell     string
	Metric   string
	Baseline float64
	Current  float64
	// WorsePct is how much worse current is, in percent of baseline,
	// direction-aware (always positive for a regression).
	WorsePct float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%.2f%% worse)", r.Cell, r.Metric, r.Baseline, r.Current, r.WorsePct)
}

// Gate compares the current document's cells against a baseline on each
// workload's primary metric mean and returns every cell that regressed
// beyond tolPct percent. Cells absent from either side are ignored (new
// cells gate from their first committed baseline onward). The returned
// slice is sorted by cell key.
func Gate(current, baseline *Bench, tolPct float64) []Regression {
	base := make(map[string]*Cell, len(baseline.Cells))
	for i := range baseline.Cells {
		base[baseline.Cells[i].Key()] = &baseline.Cells[i]
	}
	var out []Regression
	for i := range current.Cells {
		cur := &current.Cells[i]
		bc, ok := base[cur.Key()]
		if !ok {
			continue
		}
		wl := WorkloadByName(cur.Workload)
		if wl == nil {
			continue
		}
		cd, okC := cur.Stats[wl.Primary]
		bd, okB := bc.Stats[wl.Primary]
		if !okC || !okB || bd.Mean == 0 {
			continue
		}
		worse := 100 * (cd.Mean - bd.Mean) / bd.Mean
		if wl.HigherIsBetter {
			worse = 100 * (bd.Mean - cd.Mean) / bd.Mean
		}
		if worse > tolPct {
			out = append(out, Regression{
				Cell:     cur.Key(),
				Metric:   wl.Primary,
				Baseline: bd.Mean,
				Current:  cd.Mean,
				WorsePct: worse,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}
