package sweep

import (
	"math"
	"testing"
)

func TestNewDistBasics(t *testing.T) {
	d := newDist([]float64{3, 1, 2, 4})
	if d.N != 4 || d.Min != 1 || d.Max != 4 {
		t.Fatalf("bad order stats: %+v", d)
	}
	if d.Mean != 2.5 || d.Median != 2.5 {
		t.Fatalf("bad center: %+v", d)
	}
	if one := newDist([]float64{7}); one.Stddev != 0 || one.CI95 != 0 {
		t.Fatalf("single value must have zero spread: %+v", one)
	}
}

func TestMeanStaysWithinMinMax(t *testing.T) {
	// Three identical values whose floating-point sum/3 lands one ulp
	// above the value itself — taken verbatim from a sweep run where the
	// unclamped mean broke Validate's min <= mean <= max invariant.
	v := 1719.707219950766
	d := newDist([]float64{v, v, v})
	if d.Mean != v {
		t.Fatalf("mean of three identical values = %v, want %v", d.Mean, v)
	}
	if d.Mean < d.Min || d.Mean > d.Max {
		t.Fatalf("mean %v outside [%v, %v]", d.Mean, d.Min, d.Max)
	}
}

func TestCI95UsesStudentT(t *testing.T) {
	// Three replicates {1,2,3}: mean 2, sample stddev 1. The 95% CI
	// half-width at df=2 is t(0.975,2)/sqrt(3) = 4.303/1.732... — the
	// old normal approximation gave 1.96/sqrt(3) ≈ 1.13, less than half
	// the correct width.
	d := newDist([]float64{1, 2, 3})
	want := 4.303 / math.Sqrt(3)
	if math.Abs(d.CI95-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want Student-t %v", d.CI95, want)
	}
	if d.CI95 < 2 {
		t.Fatalf("CI95 = %v looks like the z-based half-width", d.CI95)
	}
}

func TestTCrit975Table(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{-1, 0}, {0, 0}, {1, 12.706}, {2, 4.303}, {9, 2.262}, {30, 2.042}, {31, 1.96}, {1000, 1.96},
	}
	for _, c := range cases {
		if got := tCrit975(c.df); got != c.want {
			t.Errorf("tCrit975(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// The critical value shrinks monotonically toward the normal
	// quantile as replicates accumulate.
	for df := 1; df <= 31; df++ {
		if tCrit975(df+1) > tCrit975(df) {
			t.Fatalf("tCrit975 not non-increasing at df=%d", df)
		}
	}
}
