package sweep

import (
	"strings"
	"testing"
)

func TestExpandProducesCanonicalCellsAndAlignedJobs(t *testing.T) {
	g := Grid{
		Name:       "t",
		Machines:   []string{"opteron"},
		Workloads:  []string{"alloc/abinit", "wr/sge"},
		Strategies: []string{"small-lazy", "huge-lazy"},
		Faults:     []string{"", "seed=3,attevict=800"},
		Seeds:      []uint64{1, 2, 3},
	}
	ex, err := expand(g)
	if err != nil {
		t.Fatal(err)
	}
	// alloc/abinit is strategied (2 strategies x 2 faults); wr/sge is
	// strategy-agnostic and collapses to one cell per (machine, faults).
	if len(ex.cells) != 4+2 {
		t.Fatalf("expanded %d cells, want 6", len(ex.cells))
	}
	if len(ex.jobs) != 6*3 {
		t.Fatalf("expanded %d jobs, want 18", len(ex.jobs))
	}
	for _, j := range ex.jobs {
		c := ex.cells[j.cell]
		if c.Seeds[j.rep] != j.seed {
			t.Fatalf("job seed %d does not match cell slot %d", j.seed, j.rep)
		}
		if c.Workload == "wr/sge" && c.Strategy != agnosticStrategy {
			t.Fatalf("strategy-agnostic cell carries strategy %q", c.Strategy)
		}
		if c.Machine != "opteron" {
			t.Fatalf("cell records machine %q, want the grid's short name", c.Machine)
		}
	}
	// Replicates of a faulted cell must observe decorrelated specs.
	var seeds []uint64
	for _, j := range ex.jobs {
		if j.spec != nil {
			seeds = append(seeds, j.spec.Seed)
		}
	}
	uniq := make(map[uint64]bool)
	for _, s := range seeds {
		uniq[s] = true
	}
	if len(uniq) != 3 {
		t.Fatalf("faulted replicates observe %d distinct mixed spec seeds, want 3", len(uniq))
	}
}

func TestExpandRejectsBadGrids(t *testing.T) {
	valid := Grid{
		Name:       "t",
		Machines:   []string{"opteron"},
		Workloads:  []string{"alloc/abinit"},
		Strategies: []string{"small-lazy"},
		Seeds:      []uint64{1, 2},
	}
	cases := []struct {
		name   string
		mutate func(*Grid)
		want   string
	}{
		{"no name", func(g *Grid) { g.Name = "" }, "needs a name"},
		{"no machines", func(g *Grid) { g.Machines = nil }, "needs machines"},
		{"no seeds", func(g *Grid) { g.Seeds = nil }, "needs machines, workloads and seeds"},
		{"no strategies", func(g *Grid) { g.Strategies = nil }, "needs strategies"},
		{"repeated seed", func(g *Grid) { g.Seeds = []uint64{2, 2} }, "strictly increasing"},
		{"decreasing seeds", func(g *Grid) { g.Seeds = []uint64{3, 1} }, "strictly increasing"},
		{"unknown machine", func(g *Grid) { g.Machines = []string{"cray"} }, "unknown machine"},
		{"unknown workload", func(g *Grid) { g.Workloads = []string{"x/y"} }, "unknown workload"},
		{"unknown strategy", func(g *Grid) { g.Strategies = []string{"medium"} }, "unknown strategy"},
		{"bad fault spec", func(g *Grid) { g.Faults = []string{"bogus=1"} }, "unknown key"},
		{"duplicate cell", func(g *Grid) { g.Machines = []string{"opteron", "opteron"} }, "duplicate cell"},
	}
	for _, tc := range cases {
		g := valid
		tc.mutate(&g)
		_, err := expand(g)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestExpandDefaults(t *testing.T) {
	g := Grid{
		Name:       "t",
		Machines:   []string{"opteron"},
		Workloads:  []string{"alloc/abinit"},
		Strategies: []string{"small-lazy"},
		Seeds:      []uint64{1},
	}
	ex, err := expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.grid.Ranks != 4 {
		t.Fatalf("default ranks = %d, want 4", ex.grid.Ranks)
	}
	if len(ex.cells) != 1 || ex.cells[0].Faults != "" {
		t.Fatalf("empty fault list should expand one clean cell, got %+v", ex.cells)
	}
}

func TestMixSeedDecorrelates(t *testing.T) {
	seen := make(map[uint64]bool)
	for base := uint64(0); base < 4; base++ {
		for seed := uint64(0); seed < 64; seed++ {
			seen[mixSeed(base, seed)] = true
		}
	}
	if len(seen) != 4*64 {
		t.Fatalf("mixSeed collided: %d distinct outputs of 256", len(seen))
	}
}

func TestStrategyByName(t *testing.T) {
	for _, s := range Strategies() {
		got, ok := StrategyByName(s.Name)
		if !ok || got != s {
			t.Fatalf("StrategyByName(%q) = %+v, %v", s.Name, got, ok)
		}
	}
	if _, ok := StrategyByName("nope"); ok {
		t.Fatal("unknown strategy resolved")
	}
}

func TestBuiltinWorkloadsRegistered(t *testing.T) {
	for _, name := range []string{
		"imb/sendrecv", "imb/pingpong", "alloc/abinit", "wr/sge", "wr/offset",
		"nas/cg", "nas/ep", "nas/is", "nas/lu", "nas/mg",
	} {
		if WorkloadByName(name) == nil {
			t.Errorf("builtin workload %q not registered", name)
		}
	}
	ws := Workloads()
	for i := 1; i < len(ws); i++ {
		if ws[i-1].Name >= ws[i].Name {
			t.Fatal("Workloads() not sorted by name")
		}
	}
}

func TestBuiltinGridsExpand(t *testing.T) {
	for _, g := range BuiltinGrids() {
		if _, err := expand(g); err != nil {
			t.Errorf("builtin grid %q does not expand: %v", g.Name, err)
		}
	}
}

func TestLoadGridUnknownNameListsBuiltins(t *testing.T) {
	_, err := LoadGrid("nope")
	if err == nil || !strings.Contains(err.Error(), "smoke") {
		t.Fatalf("err = %v, want unknown-grid error naming the built-ins", err)
	}
}
