// Package sweep orchestrates seed-replicated experiment grids over the
// simulated InfiniBand stack: the paper's evaluation matrix — workloads
// (IMB, NAS kernels, work-request sweeps, allocator replays) × machines
// (Opteron/Xeon/System p) × placement strategies (page size, lazy
// deregistration, ATT patch) × fault specs — expanded into independent
// runs replicated over N seeds, executed by a goroutine worker pool,
// and aggregated into per-configuration statistics, paired strategy
// comparisons, and a canonical versioned BENCH JSON document.
//
// Determinism is the design center. Each run is a pure function of its
// cell configuration and seed (runs share no mutable state: every run
// builds fresh nodes/worlds), so executing the grid under any worker
// count or interleaving produces the same per-run results; aggregation
// fills a pre-indexed result table and renders it in a canonical sort
// order, so the final BENCH bytes are identical at GOMAXPROCS=1 and
// GOMAXPROCS=32. The engine never consults a wall clock — every
// duration in the output is virtual (simtime.Ticks).
package sweep

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mpi"
)

// Strategy is one data-placement configuration of the paper: which
// allocation library the job preloads, whether the registration cache
// (lazy deregistration) is on, and whether the driver installs 2 MiB
// ATT entries. It is the "column" dimension of every paper table.
type Strategy struct {
	Name      string            `json:"name"`
	Allocator mpi.AllocatorKind `json:"allocator"`
	LazyDereg bool              `json:"lazy_dereg"`
	HugeATT   bool              `json:"huge_att"`
	// Policy selects the placement-policy engine on every rank ("" =
	// none — the legacy fixed strategy; see internal/policy).
	Policy string `json:"policy,omitempty"`
}

// Strategies returns the built-in placement strategies, in comparison
// order. The first four mirror the four Figure 5 curves (the ATT patch
// on, as in the paper's modified OpenIB stack); "huge-lazy-noatt" is
// the unpatched-driver ablation of Section 5.1. "threshold" and
// "adaptive" run the best fixed configuration (huge-lazy) with a live
// placement-policy engine on top — the columns BENCH_policy.json gates.
func Strategies() []Strategy {
	return []Strategy{
		{Name: "small", Allocator: mpi.AllocLibc, LazyDereg: false, HugeATT: true},
		{Name: "huge", Allocator: mpi.AllocHuge, LazyDereg: false, HugeATT: true},
		{Name: "small-lazy", Allocator: mpi.AllocLibc, LazyDereg: true, HugeATT: true},
		{Name: "huge-lazy", Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: true},
		{Name: "huge-lazy-noatt", Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: false},
		{Name: "threshold", Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: true, Policy: "threshold"},
		{Name: "adaptive", Allocator: mpi.AllocHuge, LazyDereg: true, HugeATT: true, Policy: "adaptive"},
	}
}

// StrategyByName resolves a built-in strategy.
func StrategyByName(name string) (Strategy, bool) {
	for _, s := range Strategies() {
		if s.Name == name {
			return s, true
		}
	}
	return Strategy{}, false
}

// agnosticStrategy is the strategy name recorded for cells of workloads
// that do not consume a placement strategy (the raw work-request
// microbenchmarks): their cells collapse to one per (machine, faults).
const agnosticStrategy = "-"

// Grid is a declarative experiment grid: the cross product of its
// dimensions, replicated over Seeds. It is both the sweeprun input
// format (a JSON file or a built-in name) and the configuration echoed
// into the BENCH document.
type Grid struct {
	// Name names the grid; the canonical output file is BENCH_<name>.json.
	Name string `json:"name"`
	// Machines lists machine names ("opteron", "xeon", "systemp").
	Machines []string `json:"machines"`
	// Workloads lists workload names (see Workloads()).
	Workloads []string `json:"workloads"`
	// Strategies lists placement strategy names (see Strategies()).
	Strategies []string `json:"strategies"`
	// Faults lists -faults spec strings; "" is a clean run. An empty
	// list means one clean configuration.
	Faults []string `json:"faults,omitempty"`
	// Seeds replicates every cell; each seed perturbs the fault
	// schedule (and seed-consuming workloads) deterministically. Must
	// be strictly increasing.
	Seeds []uint64 `json:"seeds"`
	// Ranks is the NAS-kernel rank count (default 4).
	Ranks int `json:"ranks,omitempty"`
}

// Cell identifies one grid cell: a (workload, machine, strategy,
// faults) configuration replicated across the grid's seeds.
type Cell struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Strategy string `json:"strategy"`
	Faults   string `json:"faults,omitempty"`
	// Seeds is the strictly increasing replicate list.
	Seeds []uint64 `json:"seeds"`
	// Runs holds one record per seed, aligned with Seeds.
	Runs []Run `json:"runs"`
	// Stats aggregates each metric across the seed replicates.
	Stats map[string]Dist `json:"stats"`
}

// Key renders the cell's identity as a path ("nas/cg/opteron/huge-lazy"
// plus the fault spec when armed) — the name gate failures and run
// errors report.
func (c *Cell) Key() string {
	k := c.Workload + "/" + c.Machine + "/" + c.Strategy
	if c.Faults != "" {
		k += "/" + c.Faults
	}
	return k
}

// cellLess is the canonical cell order of a BENCH document.
func cellLess(a, b *Cell) bool {
	if a.Workload != b.Workload {
		return a.Workload < b.Workload
	}
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	if a.Strategy != b.Strategy {
		return a.Strategy < b.Strategy
	}
	return a.Faults < b.Faults
}

// Run is one executed (cell, seed) replicate.
type Run struct {
	Seed uint64 `json:"seed"`
	// Metrics are the workload's measurements; all durations are
	// virtual ticks. encoding/json marshals the keys sorted, which
	// keeps the document canonical.
	Metrics map[string]float64 `json:"metrics"`
}

// job is one unit of worker-pool work: a pointer into the expansion.
type job struct {
	cell    int // index into cells
	rep     int // index into Seeds
	seed    uint64
	machine *machine.Machine
	strat   Strategy
	spec    *faults.Spec // already seed-mixed; nil = clean
	wl      *Workload
	ranks   int
}

// expansion is a validated, fully resolved grid.
type expansion struct {
	grid  Grid
	cells []Cell
	jobs  []job
}

// mixSeed folds a replicate seed into a fault-spec seed with a
// splitmix64 step, so replicates observe decorrelated but reproducible
// fault schedules.
func mixSeed(base, seed uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(seed+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// expand validates the grid and produces the deterministic cell and job
// tables. Cells come out in canonical sort order; jobs in cell-major,
// seed-minor order (the job index is the result slot, so workers of any
// interleaving fill the same table).
func expand(g Grid) (*expansion, error) {
	if g.Name == "" {
		return nil, fmt.Errorf("sweep: grid needs a name")
	}
	if len(g.Machines) == 0 || len(g.Workloads) == 0 || len(g.Seeds) == 0 {
		return nil, fmt.Errorf("sweep: grid %q needs machines, workloads and seeds", g.Name)
	}
	if len(g.Strategies) == 0 {
		return nil, fmt.Errorf("sweep: grid %q needs strategies (all workloads strategy-agnostic? list one anyway)", g.Name)
	}
	for i := 1; i < len(g.Seeds); i++ {
		if g.Seeds[i] <= g.Seeds[i-1] {
			return nil, fmt.Errorf("sweep: grid %q seeds must be strictly increasing (%d after %d)", g.Name, g.Seeds[i], g.Seeds[i-1])
		}
	}
	if g.Ranks == 0 {
		g.Ranks = 4
	}
	if len(g.Faults) == 0 {
		g.Faults = []string{""}
	}

	machines := make([]*machine.Machine, len(g.Machines))
	for i, name := range g.Machines {
		if machines[i] = machine.ByName(name); machines[i] == nil {
			return nil, fmt.Errorf("sweep: unknown machine %q", name)
		}
	}
	wls := make([]*Workload, len(g.Workloads))
	for i, name := range g.Workloads {
		w := WorkloadByName(name)
		if w == nil {
			return nil, fmt.Errorf("sweep: unknown workload %q", name)
		}
		wls[i] = w
	}
	strats := make([]Strategy, len(g.Strategies))
	for i, name := range g.Strategies {
		s, ok := StrategyByName(name)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown strategy %q", name)
		}
		strats[i] = s
	}
	specs := make([]*faults.Spec, len(g.Faults))
	for i, fs := range g.Faults {
		spec, err := faults.ParseSpec(fs)
		if err != nil {
			return nil, fmt.Errorf("sweep: grid %q: %w", g.Name, err)
		}
		specs[i] = spec
	}

	ex := &expansion{grid: g}
	for wi, wl := range wls {
		cellStrats := strats
		if !wl.Strategied {
			cellStrats = []Strategy{{Name: agnosticStrategy}}
		}
		for mi := range machines {
			for _, st := range cellStrats {
				for fi, spec := range specs {
					cell := Cell{
						Workload: wl.Name,
						Machine:  g.Machines[mi],
						Strategy: st.Name,
						Faults:   g.Faults[fi],
						Seeds:    append([]uint64(nil), g.Seeds...),
						Runs:     make([]Run, len(g.Seeds)),
					}
					ci := len(ex.cells)
					ex.cells = append(ex.cells, cell)
					for ri, seed := range g.Seeds {
						var runSpec *faults.Spec
						if spec != nil {
							mixed := *spec
							mixed.Seed = mixSeed(spec.Seed, seed)
							runSpec = &mixed
						}
						ex.jobs = append(ex.jobs, job{
							cell: ci, rep: ri, seed: seed,
							machine: machines[mi], strat: st,
							spec: runSpec, wl: wls[wi], ranks: g.Ranks,
						})
					}
				}
			}
		}
	}

	// Two workloads could collide only if the grid lists a duplicate
	// dimension value; reject rather than silently merging.
	seen := make(map[string]bool, len(ex.cells))
	for i := range ex.cells {
		k := ex.cells[i].Key()
		if seen[k] {
			return nil, fmt.Errorf("sweep: grid %q expands duplicate cell %s", g.Name, k)
		}
		seen[k] = true
	}
	return ex, nil
}

// sortCells orders cells canonically and returns the permutation's
// effect on nothing else — jobs keep indexing the original slice, so
// this runs only after all results are recorded.
func sortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool { return cellLess(&cells[i], &cells[j]) })
}
