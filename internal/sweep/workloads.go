package sweep

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/faults"
	"repro/internal/imb"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/node"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/wrbench"
)

// Metrics is one run's measurement set; keys are metric names, values
// the measurements (virtual ticks unless the name says otherwise).
type Metrics = map[string]float64

// VirtTicks is the metric every workload reports: the total virtual
// time of the run. The engine uses it to pick the slowest cell for
// optional trace capture, deterministically.
const VirtTicks = "virt_ticks"

// RunContext is everything one (cell, seed) run may consume. Runs share
// no mutable state: every workload builds fresh worlds/nodes from it.
type RunContext struct {
	Machine  *machine.Machine
	Strategy Strategy
	// Spec is the per-replicate fault spec (the grid spec with its seed
	// already mixed with the replicate seed); nil = clean run.
	Spec *faults.Spec
	// Seed is the replicate seed, for workloads with their own seed
	// input (the allocator replays).
	Seed uint64
	// Ranks is the grid's NAS rank count.
	Ranks int
	// Trace, when non-nil, records the run (only set on the dedicated
	// slowest-cell re-run; grid runs never trace).
	Trace *trace.Collector
	// TracePrefix namespaces the run's timelines within Trace.
	TracePrefix string
}

// MPIConfig assembles the mpi job configuration the context implies.
func (c *RunContext) MPIConfig(ranks int) mpi.Config {
	return mpi.Config{
		Machine:     c.Machine,
		Ranks:       ranks,
		Allocator:   c.Strategy.Allocator,
		LazyDereg:   c.Strategy.LazyDereg,
		HugeATT:     c.Strategy.HugeATT,
		Faults:      c.Spec,
		Trace:       c.Trace,
		TracePrefix: c.TracePrefix,
		Policy:      c.Strategy.Policy,
	}
}

// Workload is one registered experiment the sweep engine can run
// in-process — the library entry points behind the cmd tools
// (imbbench, nasbench, sgebench, offsetbench, allocbench, repro).
type Workload struct {
	// Name is the grid-facing identifier ("imb/sendrecv", "nas/cg", ...).
	Name string
	// Primary names the headline metric regression gating compares.
	Primary string
	// HigherIsBetter gives the primary metric's direction (bandwidth
	// up, ticks down).
	HigherIsBetter bool
	// Strategied marks workloads that consume a placement strategy;
	// strategy-agnostic microbenchmarks collapse to one cell per
	// (machine, faults).
	Strategied bool
	// Run executes one replicate and returns its metrics. It must be
	// deterministic in the context and must not retain shared state.
	Run func(RunContext) (Metrics, error)
}

var (
	registryMu sync.Mutex
	registry   map[string]*Workload
)

// Register adds a workload (test harnesses and future tools); it
// rejects duplicates and workloads missing a name, primary, or runner.
func Register(w Workload) error {
	if w.Name == "" || w.Primary == "" || w.Run == nil {
		return fmt.Errorf("sweep: workload needs a name, a primary metric and a runner")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	ensureBuiltins()
	if _, dup := registry[w.Name]; dup {
		return fmt.Errorf("sweep: workload %q already registered", w.Name)
	}
	registry[w.Name] = &w
	return nil
}

// WorkloadByName resolves a workload (nil if unknown).
func WorkloadByName(name string) *Workload {
	registryMu.Lock()
	defer registryMu.Unlock()
	ensureBuiltins()
	return registry[name]
}

// Workloads lists every registered workload in name order.
func Workloads() []*Workload {
	registryMu.Lock()
	defer registryMu.Unlock()
	ensureBuiltins()
	out := make([]*Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ensureBuiltins populates the registry once; callers hold registryMu.
func ensureBuiltins() {
	if registry != nil {
		return
	}
	registry = make(map[string]*Workload)
	for _, w := range builtins() {
		w := w
		registry[w.Name] = &w
	}
}

// sendrecvSizes is the sweep's IMB SendRecv ladder: both Figure 5
// regimes (cache-resident and re-registering) without the slow tail.
var sendrecvSizes = []int{64 << 10, 1 << 20, 4 << 20}

// builtins returns the six tools' workloads.
func builtins() []Workload {
	wls := []Workload{
		{
			// imbbench / repro E3: IMB SendRecv bandwidth.
			Name:           "imb/sendrecv",
			Primary:        "bw_mbs_4m",
			HigherIsBetter: true,
			Strategied:     true,
			Run: func(c RunContext) (Metrics, error) {
				rs, err := imb.SendRecv(c.MPIConfig(2), sendrecvSizes)
				if err != nil {
					return nil, err
				}
				m := Metrics{}
				var virt float64
				for i, size := range sendrecvSizes {
					m[fmt.Sprintf("bw_mbs_%s", sizeSlug(size))] = rs[i].BandwidthMBs
					virt += float64(rs[i].TicksPerIter) * float64(rs[i].Iters)
				}
				m["reg_ticks_4m"] = float64(rs[len(rs)-1].RegTicks)
				m[VirtTicks] = virt
				return m, nil
			},
		},
		{
			// imbbench -pingpong: small-message latency.
			Name:           "imb/pingpong",
			Primary:        "lat_ticks_64k",
			HigherIsBetter: false,
			Strategied:     true,
			Run: func(c RunContext) (Metrics, error) {
				sizes := []int{1 << 10, 64 << 10}
				rs, err := imb.PingPong(c.MPIConfig(2), sizes)
				if err != nil {
					return nil, err
				}
				m := Metrics{}
				var virt float64
				for i, size := range sizes {
					m[fmt.Sprintf("lat_ticks_%s", sizeSlug(size))] = float64(rs[i].LatencyTicks)
					virt += float64(rs[i].LatencyTicks) * float64(rs[i].Iters)
				}
				m[VirtTicks] = virt
				return m, nil
			},
		},
		{
			// allocbench / repro E7: the Abinit-style allocator replay.
			// The replicate seed feeds the trace generator, so replicates
			// vary even on clean runs.
			Name:           "alloc/abinit",
			Primary:        "alloc_ticks",
			HigherIsBetter: false,
			Strategied:     true,
			Run: func(c RunContext) (Metrics, error) {
				p := workload.DefaultAbinitParams()
				p.Seed = int64(c.Seed)
				ops, slots := workload.AbinitTrace(p)
				n, err := node.New(node.Config{
					Machine:   c.Machine,
					Allocator: node.AllocatorKind(c.Strategy.Allocator),
					Faults:    c.Spec,
					Trace:     c.Trace,
					TraceName: c.TracePrefix + "replay",
					Policy:    c.Strategy.Policy,
				})
				if err != nil {
					return nil, err
				}
				res, err := alloc.Replay(n.Alloc, ops, slots)
				if err != nil {
					return nil, err
				}
				return Metrics{
					"alloc_ticks":     float64(res.AllocTime),
					"syscalls":        float64(res.Stats.Syscalls),
					"peak_live_bytes": float64(res.Stats.PeakLive),
					VirtTicks:         float64(res.AllocTime),
				}, nil
			},
		},
		{
			// sgebench / repro E1: Figure 3 work-request sweep.
			Name:           "wr/sge",
			Primary:        "total_ticks",
			HigherIsBetter: false,
			Strategied:     false,
			Run: func(c RunContext) (Metrics, error) {
				rs, _, err := wrbench.SGESweepTrace(c.Machine,
					[]int{1, 2, 4, 8}, []int{64, 512, 4096}, c.Spec, c.Trace)
				if err != nil {
					return nil, err
				}
				return wrMetrics(rs), nil
			},
		},
		{
			// offsetbench / repro E2: Figure 4 offset sweep.
			Name:           "wr/offset",
			Primary:        "total_ticks",
			HigherIsBetter: false,
			Strategied:     false,
			Run: func(c RunContext) (Metrics, error) {
				rs, _, err := wrbench.OffsetSweepTrace(c.Machine,
					[]int{0, 16, 32, 64, 96, 128}, []int{8, 64}, c.Spec, c.Trace)
				if err != nil {
					return nil, err
				}
				return wrMetrics(rs), nil
			},
		},
		{
			// The scheduler throughput gate behind BENCH_scale.json: the
			// IMB SendRecv chain at the grid's rank count (the scale grid
			// sets 1024), one eager and one rendezvous size. Reports the
			// usual deterministic tick metrics plus ticks_per_wallsec —
			// simulated progress per wall second, the only host-dependent
			// metric family in the registry (see IsWallMetric).
			Name:           "scale/sendrecv",
			Primary:        "ticks_per_wallsec",
			HigherIsBetter: true,
			Strategied:     true,
			Run: func(c RunContext) (Metrics, error) {
				ranks := c.Ranks
				if ranks < 2 {
					ranks = 2
				}
				sizes := []int{4 << 10, 64 << 10}
				start := time.Now() //reprolint:ignore determinism: wall throughput is this workload's deliverable; the tick metrics stay deterministic
				rs, err := imb.SendRecv(c.MPIConfig(ranks), sizes)
				if err != nil {
					return nil, err
				}
				wall := time.Since(start) //reprolint:ignore determinism: see above
				m := Metrics{}
				var virt float64
				for i, size := range sizes {
					m[fmt.Sprintf("ticks_iter_%s", sizeSlug(size))] = float64(rs[i].TicksPerIter)
					virt += float64(rs[i].TicksPerIter) * float64(rs[i].Iters)
				}
				m[VirtTicks] = virt
				m["ticks_per_wallsec"] = wallRate(virt, wall)
				return m, nil
			},
		},
		{
			// The application half of the scale gate: NAS CG scaled down
			// to 32 unknowns per rank (the verification bound is rank- and
			// size-independent), iterating the full ring allgather at the
			// grid's rank count — O(ranks²) messages per iteration, the
			// communication pattern that made the old goroutine-per-rank
			// engine infeasible at 1024.
			Name:           "scale/cg",
			Primary:        "ticks_per_wallsec",
			HigherIsBetter: true,
			Strategied:     true,
			Run: func(c RunContext) (Metrics, error) {
				ranks := c.Ranks
				if ranks < 2 {
					ranks = 2
				}
				k := &nas.CG{N: 32 * ranks, Iters: 2}
				start := time.Now() //reprolint:ignore determinism: wall throughput is this workload's deliverable; the tick metrics stay deterministic
				res, err := nas.RunKernelConfig(c.MPIConfig(ranks), k)
				if err != nil {
					return nil, err
				}
				wall := time.Since(start) //reprolint:ignore determinism: see above
				return Metrics{
					"comm_ticks":        float64(res.Comm),
					"total_ticks":       float64(res.Total),
					"makespan_ticks":    float64(res.Makespan),
					VirtTicks:           float64(res.Makespan),
					"ticks_per_wallsec": wallRate(float64(res.Makespan), wall),
				}, nil
			},
		},
		{
			// The modern pack's MoE dispatch/combine: group-limited
			// routing, scattered-row dispatch through AlltoallvPieces
			// (SGE or pack per policy), chunked compute/comm overlap.
			Name:           "moe/dispatch",
			Primary:        "makespan_ticks",
			HigherIsBetter: false,
			Strategied:     true,
			Run: func(c RunContext) (Metrics, error) {
				p := workload.DefaultMoEParams()
				p.Seed = c.Seed
				res, err := workload.RunMoE(c.MPIConfig(modernRanks(c)), p)
				if err != nil {
					return nil, err
				}
				return Metrics{
					"dispatch_ticks": float64(res.DispatchTicks),
					"combine_ticks":  float64(res.CombineTicks),
					"compute_ticks":  float64(res.ComputeTicks),
					"routed_rows":    float64(res.RoutedRows),
					"makespan_ticks": float64(res.Makespan),
					VirtTicks:        float64(res.Makespan),
				}, nil
			},
		},
		{
			// The modern pack's KV-cache decode: per-layer arenas on the
			// two-tier memory model, best-ratio placement, and the
			// migrate-vs-recompute decision on every retrieved token.
			Name:           "kv/decode",
			Primary:        "makespan_ticks",
			HigherIsBetter: false,
			Strategied:     true,
			Run: func(c RunContext) (Metrics, error) {
				p := workload.DefaultKVParams()
				p.Seed = c.Seed
				res, err := workload.RunKV(c.MPIConfig(modernRanks(c)), p)
				if err != nil {
					return nil, err
				}
				return Metrics{
					"prefill_ticks":  float64(res.PrefillTicks),
					"decode_ticks":   float64(res.DecodeTicks),
					"migrations":     float64(res.Migrations),
					"recomputes":     float64(res.Recomputes),
					"demotions":      float64(res.Demotions),
					"makespan_ticks": float64(res.Makespan),
					VirtTicks:        float64(res.Makespan),
				}, nil
			},
		},
		{
			// The modern pack's 2-D halo exchange + allreduce: contiguous
			// row strips, strided column pieces (the Section 4 scenario),
			// stencil sweeps and a rendezvous-sized residual reduction.
			Name:           "halo/exchange2d",
			Primary:        "makespan_ticks",
			HigherIsBetter: false,
			Strategied:     true,
			Run: func(c RunContext) (Metrics, error) {
				p := workload.DefaultHaloParams()
				p.Seed = c.Seed
				res, err := workload.RunHalo(c.MPIConfig(modernRanks(c)), p)
				if err != nil {
					return nil, err
				}
				return Metrics{
					"halo_ticks":     float64(res.HaloTicks),
					"compute_ticks":  float64(res.ComputeTicks),
					"reduce_ticks":   float64(res.ReduceTicks),
					"makespan_ticks": float64(res.Makespan),
					VirtTicks:        float64(res.Makespan),
				}, nil
			},
		},
	}
	// nasbench / repro E5: one workload per NAS kernel, so the grid can
	// subset and the comparisons stay per-kernel (the paper's Figure 6
	// bars).
	for _, k := range nas.All() {
		k := k
		wls = append(wls, Workload{
			Name:           "nas/" + k.Name(),
			Primary:        "total_ticks",
			HigherIsBetter: false,
			Strategied:     true,
			Run: func(c RunContext) (Metrics, error) {
				res, err := nas.RunKernelConfig(c.MPIConfig(c.Ranks), k)
				if err != nil {
					return nil, err
				}
				return Metrics{
					"comm_ticks":     float64(res.Comm),
					"compute_ticks":  float64(res.Compute),
					"total_ticks":    float64(res.Total),
					"makespan_ticks": float64(res.Makespan),
					"tlb_misses":     float64(res.TLB.TotalMisses()),
					"reg_ticks":      float64(res.RegTicks),
					VirtTicks:        float64(res.Makespan),
				}, nil
			},
		})
	}
	return wls
}

// modernRanks is the modern-pack default rank count when the grid does
// not set one (the workloads need at least 2 ranks; MoE's two gating
// groups need an even count).
func modernRanks(c RunContext) int {
	if c.Ranks >= 2 {
		return c.Ranks
	}
	return 4
}

// wrMetrics folds a work-request sweep into post/poll/total sums.
func wrMetrics(rs []wrbench.Result) Metrics {
	var post, poll float64
	for _, r := range rs {
		post += float64(r.PostTicks)
		poll += float64(r.PollTicks)
	}
	return Metrics{
		"post_ticks":  post,
		"poll_ticks":  poll,
		"total_ticks": post + poll,
		VirtTicks:     post + poll,
	}
}

// wallRate converts virtual progress into simulated-ticks-per-wall-
// second, the scheduler-throughput number the scale grid gates. Wall
// time is host-dependent by nature; callers strip the resulting metric
// (Bench.StripWall) before any byte-identity comparison.
func wallRate(virt float64, wall time.Duration) float64 {
	if wall <= 0 {
		wall = time.Nanosecond
	}
	return virt / wall.Seconds()
}

// sizeSlug renders a byte count as the short form used in metric names.
func sizeSlug(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dm", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dk", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
