package vm_test

import (
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/phys"
	"repro/internal/vm"
)

func TestForkSharesThenCopies(t *testing.T) {
	n := testHost(t)
	mem, parent := n.Mem, n.AS
	va, err := parent.MapHuge(machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(va, []byte("original")); err != nil {
		t.Fatal(err)
	}
	allocatedBefore := mem.Stats().HugeAllocated

	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Fork itself allocates nothing for unpinned pages (pure sharing).
	if got := mem.Stats().HugeAllocated; got != allocatedBefore {
		t.Fatalf("fork allocated %d hugepages, want 0", got-allocatedBefore)
	}
	// The child reads the parent's data.
	buf := make([]byte, 8)
	if err := child.Read(va, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "original" {
		t.Fatalf("child sees %q", buf)
	}
	// Child writes: CoW break allocates a private hugepage; the parent's
	// view is untouched.
	if err := child.Write(va, []byte("mutated!")); err != nil {
		t.Fatal(err)
	}
	if got := mem.Stats().HugeAllocated; got != allocatedBefore+1 {
		t.Fatalf("CoW break allocated %d pages, want 1", got-allocatedBefore)
	}
	if child.Stats().CoWBreaks != 1 {
		t.Fatal("CoW break not counted")
	}
	if err := parent.Read(va, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "original" {
		t.Fatalf("parent corrupted by child write: %q", buf)
	}
	cb := make([]byte, 8)
	_ = child.Read(va, cb)
	if string(cb) != "mutated!" {
		t.Fatalf("child lost its write: %q", cb)
	}
}

func TestForkCopiesPinnedPagesEagerly(t *testing.T) {
	n := testHost(t)
	mem, parent := n.Mem, n.AS
	va, _ := parent.MapHuge(machine.HugePageSize)
	if _, err := parent.Pin(va, machine.HugePageSize); err != nil {
		t.Fatal(err)
	}
	_ = parent.Write(va, []byte("dma-data"))
	before := mem.Stats().HugeAllocated
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.Stats().HugeAllocated; got != before+1 {
		t.Fatalf("pinned page should be copied at fork: %d new pages", got-before)
	}
	// The child's copy is independent and NOT pinned.
	buf := make([]byte, 8)
	_ = child.Read(va, buf)
	if string(buf) != "dma-data" {
		t.Fatalf("pinned copy lost data: %q", buf)
	}
	if err := child.Unpin(va, machine.HugePageSize); !errors.Is(err, vm.ErrNotPinned) {
		t.Fatal("child inherited pin state")
	}
}

func TestCoWReserveIsWhatSavesFork(t *testing.T) {
	// The paper's rationale: the mapping layer leaves a hugepage reserve
	// so post-fork CoW writes can always be satisfied. Exhaust the pool
	// down to the reserve, fork, write — the write must succeed by
	// dipping into the reserve; without a reserve it must fail.
	run := func(reserve int) error {
		n := testHost(t)
		mem, as := n.Mem, n.AS
		va, err := as.MapHuge(machine.HugePageSize)
		if err != nil {
			return err
		}
		if err := mem.Reserve(reserve); err != nil {
			return err
		}
		// Drain everything above the reserve.
		for {
			if _, err := mem.AllocHuge(); err != nil {
				break
			}
		}
		child, err := as.Fork()
		if err != nil {
			return err
		}
		return child.Write(va, []byte("post-fork write"))
	}
	if err := run(4); err != nil {
		t.Fatalf("with a reserve, the CoW write must succeed: %v", err)
	}
	if err := run(0); !errors.Is(err, phys.ErrOutOfHugepages) {
		t.Fatalf("without a reserve, got %v, want ErrOutOfHugepages", err)
	}
}

func TestPinBreaksCoW(t *testing.T) {
	// Registering memory after a fork must un-share it: DMA writes bypass
	// page faults, so a shared page would corrupt the sibling.
	n := testHost(t)
	mem, parent := n.Mem, n.AS
	va, _ := parent.MapHuge(machine.HugePageSize)
	_ = parent.Write(va, []byte("shared"))
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	before := mem.Stats().HugeAllocated
	pages, err := child.Pin(va, machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Stats().HugeAllocated != before+1 {
		t.Fatal("pin of a CoW page must allocate a private copy")
	}
	// The returned PA must point at the child's private copy: write
	// through physical memory (as DMA would) and check isolation.
	mem.WritePhys(pages[0].PA, []byte("dma!!!"))
	buf := make([]byte, 6)
	_ = parent.Read(va, buf)
	if string(buf) == "dma!!!" {
		t.Fatal("DMA into the child leaked into the parent")
	}
	cb := make([]byte, 6)
	_ = child.Read(va, cb)
	if string(cb) != "dma!!!" {
		t.Fatalf("child DMA target wrong: %q", cb)
	}
}

func TestForkPreservesSmallPages(t *testing.T) {
	parent := testAS(t)
	va, _ := parent.MapSmall(4 * machine.SmallPageSize)
	_ = parent.Write(va+5000, []byte("hello"))
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	_ = child.Read(va+5000, buf)
	if string(buf) != "hello" {
		t.Fatalf("child small-page read: %q", buf)
	}
	_ = child.Write(va+5000, []byte("world"))
	_ = parent.Read(va+5000, buf)
	if string(buf) != "hello" {
		t.Fatal("small-page CoW isolation broken")
	}
}
