// Package vm models one process's virtual address space: page tables for
// 4 KiB and 2 MiB pages, mmap/brk-style region management, address
// translation, and page pinning.
//
// This is the substrate under memory registration. Registering a buffer
// for InfiniBand means (paper, Section 3): (1) pin every page, (2)
// translate every virtual page to a physical address, (3) push the
// translations to the NIC. Steps 1 and 2 are implemented here; step 3 in
// internal/verbs. The number of pages — hence the cost — depends on how
// the buffer was placed, which is the whole point of the paper.
package vm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/machine"
	"repro/internal/phys"
	"repro/internal/trace"
)

// VA is a virtual byte address within one address space.
type VA uint64

// Page size classes.
type PageClass int

const (
	Small PageClass = iota // 4 KiB
	Huge                   // 2 MiB
)

// Size returns the byte size of the page class.
func (c PageClass) Size() uint64 {
	if c == Huge {
		return machine.HugePageSize
	}
	return machine.SmallPageSize
}

func (c PageClass) String() string {
	if c == Huge {
		return "2M"
	}
	return "4K"
}

// Errors.
var (
	ErrUnmapped     = errors.New("vm: address not mapped")
	ErrNotPinned    = errors.New("vm: page not pinned")
	ErrBadUnmap     = errors.New("vm: unmap does not match a mapping")
	ErrPinnedUnmap  = errors.New("vm: cannot unmap pinned pages")
	ErrMixedClasses = errors.New("vm: range spans mixed page classes")
)

// pte is one page-table entry.
type pte struct {
	frame phys.Frame // first frame of the page
	class PageClass
	pins  int
	cow   bool // shared copy-on-write after a fork
	// split marks a small pte carved out of a demoted hugepage. The 2 MiB
	// physical run stays in place (a THP-style split rebuilds the page
	// table, it does not migrate data), so the run returns to the hugepage
	// pool as one unit: unmap frees it once, via the subpage whose frame
	// equals splitBase.
	split     bool
	splitBase phys.Frame
}

// region records one mapping for unmap bookkeeping.
type region struct {
	start VA
	size  uint64
	class PageClass
}

// Virtual address layout. Hugepage mappings live in their own window so a
// single lookup classifies an address; the layout mirrors the split
// brk-heap / mmap / hugetlbfs layout of a Linux process.
const (
	brkBase   VA = 0x0000_1000_0000
	brkLimit  VA = 0x0FFF_F000_0000
	mmapBase  VA = 0x2000_0000_0000
	mmapLimit VA = 0x3FFF_F000_0000
	hugeBase  VA = 0x4000_0000_0000
	hugeLimit VA = 0x7FFF_F000_0000
)

// AddressSpace is one simulated process image. It is safe for concurrent
// use; the MPI runtime may touch it from the progress goroutine while the
// rank computes.
type AddressSpace struct {
	mu  sync.Mutex
	mem *phys.Memory

	small map[uint64]*pte // key: va / 4K
	huge  map[uint64]*pte // key: va / 2M

	brk      VA
	mmapNext VA
	hugeNext VA

	regions []region

	stats Stats

	// cur, when set, stamps mapping decisions as instant trace markers at
	// the position the owning rank last set. Nil = no tracing.
	cur *trace.Cursor
}

// Stats counts translation activity for the PAPI facade and tests.
type Stats struct {
	MappedSmall       int64 // gauge: currently mapped small pages
	MappedHuge        int64 // gauge: currently mapped hugepages
	Pins, Unpins      int64
	Translations      int64
	HugeFallbacks     int64 // MapHuge requests satisfied with small pages
	HugeFallbackBytes int64 // cumulative bytes those fallbacks mapped
	CoWBreaks         int64 // private copies made on write after a fork
	Demotions         int64 // hugepages split into base pages in place
	DemotedBytes      int64 // cumulative bytes those demotions covered
}

// New creates an empty address space backed by the node's physical memory.
func New(mem *phys.Memory) *AddressSpace {
	return &AddressSpace{
		mem:      mem,
		small:    make(map[uint64]*pte),
		huge:     make(map[uint64]*pte),
		brk:      brkBase,
		mmapNext: mmapBase,
		hugeNext: hugeBase,
	}
}

// Mem exposes the backing physical memory (for the DMA engine).
func (as *AddressSpace) Mem() *phys.Memory { return as.mem }

// SetTrace attaches a trace cursor; mapping events (map.small, map.huge,
// map.fallback, sbrk, unmap) stamp at its current position. The address
// space has no clock of its own, so the owner moves the cursor at its
// entry points.
func (as *AddressSpace) SetTrace(cur *trace.Cursor) {
	as.mu.Lock()
	as.cur = cur
	as.mu.Unlock()
}

func roundUp(n, to uint64) uint64 { return (n + to - 1) / to * to }

// mapSmallLocked materialises small pages for [va, va+size).
func (as *AddressSpace) mapSmallLocked(va VA, size uint64) error {
	if uint64(va)%machine.SmallPageSize != 0 {
		return fmt.Errorf("vm: unaligned small mapping at %#x", va)
	}
	n := roundUp(size, machine.SmallPageSize) / machine.SmallPageSize
	done := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		vpn := uint64(va)/machine.SmallPageSize + i
		if _, exists := as.small[vpn]; exists {
			continue
		}
		f, err := as.mem.AllocFrame()
		if err != nil {
			for _, d := range done {
				_ = as.mem.FreeFrame(as.small[d].frame)
				delete(as.small, d)
				as.stats.MappedSmall--
			}
			return err
		}
		as.small[vpn] = &pte{frame: f, class: Small}
		as.stats.MappedSmall++
		done = append(done, vpn)
	}
	return nil
}

// Sbrk grows the heap by size bytes (rounded up to whole small pages) and
// returns the address of the new block, like the classic Unix sbrk. The
// libc-model allocator draws its arena from here.
func (as *AddressSpace) Sbrk(size uint64) (VA, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	start := as.brk
	grown := roundUp(size, machine.SmallPageSize)
	if start+VA(grown) > brkLimit {
		return 0, phys.ErrOutOfMemory
	}
	if err := as.mapSmallLocked(start, grown); err != nil {
		return 0, err
	}
	as.brk += VA(grown)
	as.regions = append(as.regions, region{start, grown, Small})
	if as.cur.Enabled() {
		as.cur.Event(trace.LVM, "sbrk", trace.I64("bytes", int64(grown)))
	}
	return start, nil
}

// MapSmall creates an anonymous small-page mapping of the given size and
// returns its base address (the mmap path).
func (as *AddressSpace) MapSmall(size uint64) (VA, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	sz := roundUp(size, machine.SmallPageSize)
	start := as.mmapNext
	if start+VA(sz) > mmapLimit {
		return 0, phys.ErrOutOfMemory
	}
	if err := as.mapSmallLocked(start, sz); err != nil {
		return 0, err
	}
	as.mmapNext += VA(sz)
	as.regions = append(as.regions, region{start, sz, Small})
	if as.cur.Enabled() {
		as.cur.Event(trace.LVM, "map.small", trace.I64("bytes", int64(sz)))
	}
	return start, nil
}

// MapHuge creates a hugetlbfs mapping of the given size (rounded up to
// whole hugepages) and returns its 2 MiB-aligned base address. It fails if
// the hugepage pool cannot supply the pages; callers that want the paper's
// graceful degradation use MapHugeOrSmall.
func (as *AddressSpace) MapHuge(size uint64) (VA, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.mapHugeLocked(size)
}

func (as *AddressSpace) mapHugeLocked(size uint64) (VA, error) {
	sz := roundUp(size, machine.HugePageSize)
	n := sz / machine.HugePageSize
	start := as.hugeNext
	if start+VA(sz) > hugeLimit {
		return 0, phys.ErrOutOfMemory
	}
	got := make([]phys.Frame, 0, n)
	for i := uint64(0); i < n; i++ {
		f, err := as.mem.AllocHuge()
		if err != nil {
			for _, g := range got {
				_ = as.mem.FreeHuge(g)
			}
			return 0, err
		}
		got = append(got, f)
	}
	for i, f := range got {
		hvpn := uint64(start)/machine.HugePageSize + uint64(i)
		as.huge[hvpn] = &pte{frame: f, class: Huge}
		as.stats.MappedHuge++
	}
	as.hugeNext += VA(sz)
	as.regions = append(as.regions, region{start, sz, Huge})
	if as.cur.Enabled() {
		as.cur.Event(trace.LVM, "map.huge",
			trace.I64("bytes", int64(sz)), trace.I64("pages", int64(n)))
	}
	return start, nil
}

// MapHugeOrSmall tries a hugepage mapping and falls back to small pages
// when the pool is exhausted (failure-injection path: the paper's library
// redirects to libc when "enough hugepages available?" is no). The bool
// result reports whether hugepages were used.
func (as *AddressSpace) MapHugeOrSmall(size uint64) (VA, bool, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	va, err := as.mapHugeLocked(size)
	if err == nil {
		return va, true, nil
	}
	if !errors.Is(err, phys.ErrOutOfHugepages) && !errors.Is(err, phys.ErrReserveHeld) {
		return 0, false, err
	}
	as.stats.HugeFallbacks++
	sz := roundUp(size, machine.SmallPageSize)
	start := as.mmapNext
	if start+VA(sz) > mmapLimit {
		return 0, false, phys.ErrOutOfMemory
	}
	if err := as.mapSmallLocked(start, sz); err != nil {
		return 0, false, err
	}
	as.mmapNext += VA(sz)
	as.regions = append(as.regions, region{start, sz, Small})
	as.stats.HugeFallbackBytes += int64(sz)
	if as.cur.Enabled() {
		as.cur.Event(trace.LVM, "map.fallback", trace.I64("bytes", int64(sz)))
	}
	return start, false, nil
}

// Unmap removes a mapping previously returned by MapSmall/MapHuge/
// MapHugeOrSmall. The (start,size) pair must exactly match the original
// request rounded to page size; a hugepage mapping that Demote has since
// carved into pieces still unmaps as the original (start,size) whole.
// Pinned pages refuse to unmap.
func (as *AddressSpace) Unmap(start VA, size uint64) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	lo, n := as.unmapRunLocked(start, size)
	if n == 0 {
		return ErrBadUnmap
	}
	// Refuse if any page of any piece is pinned, before touching anything.
	for _, r := range as.regions[lo : lo+n] {
		if as.regionPinnedLocked(r) {
			return ErrPinnedUnmap
		}
	}
	var total uint64
	for _, r := range as.regions[lo : lo+n] {
		as.freeRegionLocked(r)
		total += r.size
	}
	as.regions = append(as.regions[:lo], as.regions[lo+n:]...)
	if as.cur.Enabled() {
		as.cur.Event(trace.LVM, "unmap", trace.I64("bytes", int64(total)))
	}
	return nil
}

// unmapRunLocked resolves an unmap request to the run of regions
// [lo, lo+n) it covers: the single exact-match region, or — for a
// demoted hugepage mapping — the address-contiguous run of split pieces
// partitioning the original extent. n = 0 means no match.
func (as *AddressSpace) unmapRunLocked(start VA, size uint64) (lo, n int) {
	for i, r := range as.regions {
		if r.start == start && (r.size == roundUp(size, r.class.Size()) || size == r.size) {
			return i, 1
		}
	}
	if !IsHugeVA(start) {
		return 0, 0
	}
	target := roundUp(size, machine.HugePageSize)
	for i, r := range as.regions {
		if r.start != start {
			continue
		}
		var covered uint64
		for j := i; j < len(as.regions); j++ {
			if as.regions[j].start != start+VA(covered) {
				break
			}
			covered += as.regions[j].size
			if covered == target {
				return i, j - i + 1
			}
			if covered > target {
				break
			}
		}
		return 0, 0
	}
	return 0, 0
}

// regionPinnedLocked reports whether any page of r is pinned.
func (as *AddressSpace) regionPinnedLocked(r region) bool {
	if r.class == Huge {
		for off := uint64(0); off < r.size; off += machine.HugePageSize {
			if p := as.huge[uint64(r.start+VA(off))/machine.HugePageSize]; p != nil && p.pins > 0 {
				return true
			}
		}
		return false
	}
	for off := uint64(0); off < r.size; off += machine.SmallPageSize {
		if p := as.small[uint64(r.start+VA(off))/machine.SmallPageSize]; p != nil && p.pins > 0 {
			return true
		}
	}
	return false
}

// freeRegionLocked releases r's frames and page-table entries.
func (as *AddressSpace) freeRegionLocked(r region) {
	if r.class == Huge {
		for off := uint64(0); off < r.size; off += machine.HugePageSize {
			key := uint64(r.start+VA(off)) / machine.HugePageSize
			if p := as.huge[key]; p != nil {
				_ = as.mem.FreeHuge(p.frame)
				delete(as.huge, key)
				as.stats.MappedHuge--
			}
		}
		return
	}
	for off := uint64(0); off < r.size; off += machine.SmallPageSize {
		key := uint64(r.start+VA(off)) / machine.SmallPageSize
		if p := as.small[key]; p != nil {
			if p.split {
				// Subpages of a demoted hugepage share one physical
				// 2 MiB run; free it once, at its base subpage.
				if p.frame == p.splitBase {
					_ = as.mem.FreeHuge(p.splitBase)
				}
			} else {
				_ = as.mem.FreeFrame(p.frame)
			}
			delete(as.small, key)
			as.stats.MappedSmall--
		}
	}
}

// Demote splits every hugepage lying fully inside [va, va+size) into 512
// base-page mappings, in place: the 2 MiB physical run is kept (a real
// THP split rebuilds the page table without migrating data) and returns
// to the hugepage pool only when the region is eventually unmapped.
// Pinned and copy-on-write-shared pages are skipped — DMA-registered
// memory must keep its translations stable. It returns the number of
// hugepages demoted. Callers own the TLB shootdown for the split range.
func (as *AddressSpace) Demote(va VA, size uint64) (int, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	lo := VA(roundUp(uint64(va), machine.HugePageSize))
	hi := VA((uint64(va) + size) / machine.HugePageSize * machine.HugePageSize)
	if !IsHugeVA(lo) || hi <= lo {
		return 0, nil
	}
	const subpages = machine.HugePageSize / machine.SmallPageSize
	demoted := 0
	for h := lo; h < hi; h += VA(machine.HugePageSize) {
		hvpn := uint64(h) / machine.HugePageSize
		p := as.huge[hvpn]
		if p == nil || p.pins > 0 || p.cow {
			continue
		}
		for i := uint64(0); i < subpages; i++ {
			as.small[uint64(h)/machine.SmallPageSize+i] = &pte{
				frame:     p.frame + phys.Frame(i),
				class:     Small,
				split:     true,
				splitBase: p.frame,
			}
		}
		delete(as.huge, hvpn)
		as.stats.MappedHuge--
		as.stats.MappedSmall += subpages
		as.splitRegionLocked(h)
		as.stats.Demotions++
		as.stats.DemotedBytes += machine.HugePageSize
		demoted++
	}
	if demoted > 0 && as.cur.Enabled() {
		as.cur.Event(trace.LVM, "demote",
			trace.I64("pages", int64(demoted)),
			trace.I64("bytes", int64(demoted)*machine.HugePageSize))
	}
	return demoted, nil
}

// splitRegionLocked carves the hugepage at h out of its Huge region
// record into a standalone Small record, so unmap bookkeeping keeps
// matching page classes after a demotion. Callers hold as.mu.
func (as *AddressSpace) splitRegionLocked(h VA) {
	for i, r := range as.regions {
		if r.class != Huge || h < r.start || h >= r.start+VA(r.size) {
			continue
		}
		repl := make([]region, 0, 3)
		if pre := uint64(h - r.start); pre > 0 {
			repl = append(repl, region{r.start, pre, Huge})
		}
		repl = append(repl, region{h, machine.HugePageSize, Small})
		if post := r.size - uint64(h-r.start) - machine.HugePageSize; post > 0 {
			repl = append(repl, region{h + VA(machine.HugePageSize), post, Huge})
		}
		as.regions = append(as.regions[:i], append(repl, as.regions[i+1:]...)...)
		return
	}
}

// lookup finds the pte covering va. Callers hold as.mu.
func (as *AddressSpace) lookup(va VA) (*pte, error) {
	if va >= hugeBase {
		if p := as.huge[uint64(va)/machine.HugePageSize]; p != nil {
			return p, nil
		}
		// Demoted hugepages keep their VAs in the huge window but live in
		// the small page table at 4 KiB granularity.
		if p := as.small[uint64(va)/machine.SmallPageSize]; p != nil {
			return p, nil
		}
		return nil, ErrUnmapped
	}
	if p := as.small[uint64(va)/machine.SmallPageSize]; p != nil {
		return p, nil
	}
	return nil, ErrUnmapped
}

// Translate resolves a virtual address to (physical address, page class).
func (as *AddressSpace) Translate(va VA) (phys.Addr, PageClass, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	p, err := as.lookup(va)
	if err != nil {
		return 0, Small, fmt.Errorf("%w: %#x", err, uint64(va))
	}
	as.stats.Translations++
	off := uint64(va) % p.class.Size()
	return phys.Addr(uint64(p.frame)*machine.SmallPageSize + off), p.class, nil
}

// Page describes one page of a translated range.
type Page struct {
	VA    VA
	PA    phys.Addr
	Class PageClass
}

// Pages enumerates the pages covering [va, va+len), in address order.
// All returned pages have the same class; a range straddling the small
// and huge windows returns ErrMixedClasses (user buffers never do).
func (as *AddressSpace) Pages(va VA, length uint64) ([]Page, error) {
	if length == 0 {
		return nil, nil
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	first, err := as.lookup(va)
	if err != nil {
		return nil, fmt.Errorf("%w: %#x", err, uint64(va))
	}
	ps := first.class.Size()
	start := uint64(va) / ps * ps
	end := uint64(va) + length
	var pages []Page
	for a := start; a < end; a += ps {
		p, err := as.lookup(VA(a))
		if err != nil {
			return nil, fmt.Errorf("%w: %#x", err, a)
		}
		if p.class != first.class {
			return nil, ErrMixedClasses
		}
		pages = append(pages, Page{
			VA:    VA(a),
			PA:    phys.Addr(uint64(p.frame) * machine.SmallPageSize),
			Class: p.class,
		})
	}
	return pages, nil
}

// Pin pins every page of [va, va+len) in memory and returns the pages, in
// address order. Each page's pin count is incremented; pinned pages refuse
// to unmap. Pin is step 1 of memory registration.
func (as *AddressSpace) Pin(va VA, length uint64) ([]Page, error) {
	pages, err := as.Pages(va, length)
	if err != nil {
		return nil, err
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	for i, pg := range pages {
		p, err := as.lookup(pg.VA)
		if err != nil {
			return nil, err
		}
		if p.cow {
			// DMA needs a stable private page: break the sharing now.
			if err := as.breakCoW(p); err != nil {
				return nil, err
			}
			pages[i].PA = phys.Addr(uint64(p.frame) * machine.SmallPageSize)
		}
		p.pins++
		as.stats.Pins++
	}
	return pages, nil
}

// Unpin decrements the pin count of every page of [va, va+len).
func (as *AddressSpace) Unpin(va VA, length uint64) error {
	pages, err := as.Pages(va, length)
	if err != nil {
		return err
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, pg := range pages {
		p, err := as.lookup(pg.VA)
		if err != nil {
			return err
		}
		if p.pins == 0 {
			return fmt.Errorf("%w: %#x", ErrNotPinned, uint64(pg.VA))
		}
		p.pins--
		as.stats.Unpins++
	}
	return nil
}

// Write copies p into the address space at va, through the page tables.
// Writing to a page shared copy-on-write after a fork first breaks the
// sharing (allocating a private page — for hugepages, from the pool's
// CoW reserve).
func (as *AddressSpace) Write(va VA, p []byte) error {
	for len(p) > 0 {
		if err := as.ensureWritable(va); err != nil {
			return err
		}
		pa, class, err := as.translateQuiet(va)
		if err != nil {
			return err
		}
		ps := class.Size()
		n := int(ps - uint64(va)%ps)
		if n > len(p) {
			n = len(p)
		}
		as.mem.WritePhys(pa, p[:n])
		va += VA(n)
		p = p[n:]
	}
	return nil
}

// Read fills p from the address space starting at va.
func (as *AddressSpace) Read(va VA, p []byte) error {
	for len(p) > 0 {
		pa, class, err := as.translateQuiet(va)
		if err != nil {
			return err
		}
		ps := class.Size()
		n := int(ps - uint64(va)%ps)
		if n > len(p) {
			n = len(p)
		}
		as.mem.ReadPhys(pa, p[:n])
		va += VA(n)
		p = p[n:]
	}
	return nil
}

// ensureWritable breaks copy-on-write sharing for the page covering va.
func (as *AddressSpace) ensureWritable(va VA) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	p, err := as.lookup(va)
	if err != nil {
		return fmt.Errorf("%w: %#x", err, uint64(va))
	}
	if p.cow {
		return as.breakCoW(p)
	}
	return nil
}

// translateQuiet is Translate without the statistics bump, for bulk IO.
func (as *AddressSpace) translateQuiet(va VA) (phys.Addr, PageClass, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	p, err := as.lookup(va)
	if err != nil {
		return 0, Small, fmt.Errorf("%w: %#x", err, uint64(va))
	}
	off := uint64(va) % p.class.Size()
	return phys.Addr(uint64(p.frame)*machine.SmallPageSize + off), p.class, nil
}

// Stats returns a snapshot of the counters.
func (as *AddressSpace) Stats() Stats {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.stats
}

// Regions returns the current mappings sorted by start address (a
// diagnostic view, used by tests).
func (as *AddressSpace) Regions() []struct {
	Start VA
	Size  uint64
	Class PageClass
} {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]struct {
		Start VA
		Size  uint64
		Class PageClass
	}, len(as.regions))
	for i, r := range as.regions {
		out[i] = struct {
			Start VA
			Size  uint64
			Class PageClass
		}{r.start, r.size, r.class}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// IsHugeVA reports whether va lies in the hugepage window. The OpenIB
// driver model uses this to decide which translations to push (the
// unpatched driver "pretends 4 KB pages" regardless).
func IsHugeVA(va VA) bool { return va >= hugeBase && va < hugeLimit }
