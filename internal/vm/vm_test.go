package vm_test

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/node"
	"repro/internal/node/nodetest"
	"repro/internal/phys"
	"repro/internal/vm"
)

func testHost(t *testing.T) *node.Node {
	t.Helper()
	return nodetest.New(t, machine.Opteron())
}

func testAS(t *testing.T) *vm.AddressSpace {
	t.Helper()
	return testHost(t).AS
}

func TestMapSmallAndTranslate(t *testing.T) {
	as := testAS(t)
	va, err := as.MapSmall(3 * machine.SmallPageSize)
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 3*machine.SmallPageSize; off += 1234 {
		pa, class, err := as.Translate(va + vm.VA(off))
		if err != nil {
			t.Fatalf("translate +%d: %v", off, err)
		}
		if class != vm.Small {
			t.Fatalf("class = %v, want Small", class)
		}
		if uint64(pa)%machine.SmallPageSize != off%machine.SmallPageSize {
			t.Fatalf("page offset not preserved at +%d", off)
		}
	}
	if _, _, err := as.Translate(va + vm.VA(4*machine.SmallPageSize)); !errors.Is(err, vm.ErrUnmapped) {
		t.Fatalf("translate past end: got %v, want ErrUnmapped", err)
	}
}

func TestMapHugeAlignmentAndContiguity(t *testing.T) {
	as := testAS(t)
	va, err := as.MapHuge(2 * machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(va)%machine.HugePageSize != 0 {
		t.Fatalf("hugepage mapping at %#x not 2MiB-aligned", uint64(va))
	}
	if !vm.IsHugeVA(va) {
		t.Fatal("hugepage VA not in huge window")
	}
	// Physical contiguity inside one hugepage.
	pa0, class, err := as.Translate(va)
	if err != nil || class != vm.Huge {
		t.Fatalf("translate: %v %v", class, err)
	}
	paMid, _, err := as.Translate(va + vm.VA(machine.HugePageSize/2))
	if err != nil {
		t.Fatal(err)
	}
	if paMid != pa0+phys.Addr(machine.HugePageSize/2) {
		t.Fatal("hugepage interior not physically contiguous")
	}
}

func TestSbrkGrowsHeap(t *testing.T) {
	as := testAS(t)
	a, err := as.Sbrk(100) // rounds to one page
	if err != nil {
		t.Fatal(err)
	}
	b, err := as.Sbrk(machine.SmallPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if b != a+vm.VA(machine.SmallPageSize) {
		t.Fatalf("heap not contiguous: %#x then %#x", uint64(a), uint64(b))
	}
}

func TestPagesEnumeration(t *testing.T) {
	as := testAS(t)
	va, _ := as.MapSmall(16 * machine.SmallPageSize)
	// A range starting mid-page and ending mid-page covers both edge pages.
	pages, err := as.Pages(va+100, 2*machine.SmallPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 {
		t.Fatalf("got %d pages, want 3", len(pages))
	}
	for i := 1; i < len(pages); i++ {
		if pages[i].VA != pages[i-1].VA+vm.VA(machine.SmallPageSize) {
			t.Fatal("pages not in order")
		}
	}
	// Hugepage ranges count 2MiB pages.
	hva, _ := as.MapHuge(3 * machine.HugePageSize)
	hp, err := as.Pages(hva, 3*machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(hp) != 3 {
		t.Fatalf("got %d hugepages, want 3", len(hp))
	}
}

func TestPinBlocksUnmap(t *testing.T) {
	as := testAS(t)
	va, _ := as.MapSmall(4 * machine.SmallPageSize)
	if _, err := as.Pin(va, 4*machine.SmallPageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(va, 4*machine.SmallPageSize); !errors.Is(err, vm.ErrPinnedUnmap) {
		t.Fatalf("unmap pinned: got %v, want ErrPinnedUnmap", err)
	}
	if err := as.Unpin(va, 4*machine.SmallPageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(va, 4*machine.SmallPageSize); err != nil {
		t.Fatalf("unmap after unpin: %v", err)
	}
	if _, _, err := as.Translate(va); !errors.Is(err, vm.ErrUnmapped) {
		t.Fatal("pages survive unmap")
	}
}

func TestUnpinWithoutPin(t *testing.T) {
	as := testAS(t)
	va, _ := as.MapSmall(machine.SmallPageSize)
	if err := as.Unpin(va, machine.SmallPageSize); !errors.Is(err, vm.ErrNotPinned) {
		t.Fatalf("got %v, want ErrNotPinned", err)
	}
}

func TestMapHugeOrSmallFallback(t *testing.T) {
	n := testHost(t)
	mem, as := n.Mem, n.AS
	if err := mem.Reserve(mem.HugeTotal()); err != nil { // pool fully reserved -> force fallback
		t.Fatal(err)
	}
	va, huge, err := as.MapHugeOrSmall(machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if huge {
		t.Fatal("expected small-page fallback")
	}
	if vm.IsHugeVA(va) {
		t.Fatal("fallback mapping landed in huge window")
	}
	if as.Stats().HugeFallbacks != 1 {
		t.Fatal("fallback not counted")
	}
	if err := mem.Unreserve(mem.HugeTotal()); err != nil {
		t.Fatal(err)
	}
	_, huge, err = as.MapHugeOrSmall(machine.HugePageSize)
	if err != nil || !huge {
		t.Fatalf("expected hugepage success, got huge=%v err=%v", huge, err)
	}
}

func TestUnmapReleasesHugepagesToPool(t *testing.T) {
	n := testHost(t)
	mem, as := n.Mem, n.AS
	before := mem.HugeAvailable()
	va, err := as.MapHuge(4 * machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if mem.HugeAvailable() != before-4 {
		t.Fatal("pool accounting wrong after map")
	}
	if err := as.Unmap(va, 4*machine.HugePageSize); err != nil {
		t.Fatal(err)
	}
	if mem.HugeAvailable() != before {
		t.Fatal("pool accounting wrong after unmap")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	as := testAS(t)
	va, _ := as.MapSmall(3 * machine.SmallPageSize)
	in := make([]byte, 2*machine.SmallPageSize)
	for i := range in {
		in[i] = byte(i % 251)
	}
	// Start mid-page to cross boundaries.
	if err := as.Write(va+1000, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := as.Read(va+1000, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

// Property: write-then-read at any offset/length inside a mapping is the
// identity, for both page classes.
func TestQuickReadWriteIdentity(t *testing.T) {
	as := testAS(t)
	sva, _ := as.MapSmall(64 * machine.SmallPageSize)
	hva, _ := as.MapHuge(2 * machine.HugePageSize)
	f := func(off uint32, n uint16, seed byte, useHuge bool) bool {
		base, limit := sva, uint64(64*machine.SmallPageSize)
		if useHuge {
			base, limit = hva, uint64(2*machine.HugePageSize)
		}
		o := uint64(off) % (limit - 1)
		l := uint64(n)
		if o+l > limit {
			l = limit - o
		}
		in := make([]byte, l)
		for i := range in {
			in[i] = seed + byte(i)
		}
		if err := as.Write(base+vm.VA(o), in); err != nil {
			return false
		}
		out := make([]byte, l)
		if err := as.Read(base+vm.VA(o), out); err != nil {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: pin/unpin in matched pairs always returns the space to an
// unmappable state, and pin counts never go negative.
func TestQuickPinUnpinBalance(t *testing.T) {
	as := testAS(t)
	va, _ := as.MapSmall(32 * machine.SmallPageSize)
	f := func(off uint16, n uint16) bool {
		o := uint64(off) % (31 * machine.SmallPageSize)
		l := uint64(n)%machine.SmallPageSize + 1
		if _, err := as.Pin(va+vm.VA(o), l); err != nil {
			return false
		}
		return as.Unpin(va+vm.VA(o), l) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	st := as.Stats()
	if st.Pins != st.Unpins {
		t.Fatalf("pins %d != unpins %d", st.Pins, st.Unpins)
	}
	if err := as.Unmap(va, 32*machine.SmallPageSize); err != nil {
		t.Fatalf("space should be unmappable after balanced pin/unpin: %v", err)
	}
}

func TestRegionsView(t *testing.T) {
	as := testAS(t)
	if _, err := as.MapSmall(machine.SmallPageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapHuge(machine.HugePageSize); err != nil {
		t.Fatal(err)
	}
	regs := as.Regions()
	if len(regs) != 2 {
		t.Fatalf("got %d regions, want 2", len(regs))
	}
	if regs[0].Start > regs[1].Start {
		t.Fatal("regions not sorted")
	}
}

func TestUnmapUnknownRegion(t *testing.T) {
	as := testAS(t)
	if err := as.Unmap(0xdead000, 4096); !errors.Is(err, vm.ErrBadUnmap) {
		t.Fatalf("got %v, want ErrBadUnmap", err)
	}
}

func TestDemoteSplitsInPlace(t *testing.T) {
	host := testHost(t)
	as := host.AS
	va, err := as.MapHuge(4 * machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	paBefore, _, err := as.Translate(va + 123456)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("demotion moves no data")
	if err := as.Write(va+777, want); err != nil {
		t.Fatal(err)
	}
	n, err := as.Demote(va, 4*machine.HugePageSize)
	if err != nil || n != 4 {
		t.Fatalf("Demote = %d, %v; want 4 pages", n, err)
	}
	pa, class, err := as.Translate(va + 123456)
	if err != nil || class != vm.Small {
		t.Fatalf("translate: class %v, err %v", class, err)
	}
	if pa != paBefore {
		t.Fatalf("physical address moved: %#x -> %#x", paBefore, pa)
	}
	got := make([]byte, len(want))
	if err := as.Read(va+777, got); err != nil || string(got) != string(want) {
		t.Fatalf("data = %q (%v)", got, err)
	}
	st := as.Stats()
	if st.Demotions != 4 || st.DemotedBytes != 4*machine.HugePageSize {
		t.Fatalf("stats = %+v", st)
	}
	if st.MappedHuge != 0 || st.MappedSmall != 4*machine.SmallPerHuge {
		t.Fatalf("gauges = %+v", st)
	}
}

func TestDemoteSkipsPinnedAndCoW(t *testing.T) {
	host := testHost(t)
	as := host.AS
	va, err := as.MapHuge(2 * machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Pin(va, machine.HugePageSize); err != nil {
		t.Fatal(err)
	}
	n, err := as.Demote(va, 2*machine.HugePageSize)
	if err != nil || n != 1 {
		t.Fatalf("Demote = %d, %v; want the unpinned page only", n, err)
	}
	if _, class, _ := as.Translate(va); class != vm.Huge {
		t.Fatal("pinned page lost its hugepage translation")
	}

	// A CoW-shared page (post-fork) must also keep its mapping.
	as2 := testHost(t).AS
	cva, err := as2.MapHuge(machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as2.Fork(); err != nil {
		t.Fatal(err)
	}
	if n, err := as2.Demote(cva, machine.HugePageSize); err != nil || n != 0 {
		t.Fatalf("Demote of CoW page = %d, %v; want 0", n, err)
	}
}

func TestDemoteIgnoresPartialAndSmallRanges(t *testing.T) {
	as := testAS(t)
	va, err := as.MapHuge(machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	// A range not covering one full hugepage demotes nothing.
	if n, err := as.Demote(va+4096, machine.HugePageSize-4096); err != nil || n != 0 {
		t.Fatalf("partial range: %d, %v", n, err)
	}
	sva, err := as.MapSmall(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := as.Demote(sva, 1<<20); err != nil || n != 0 {
		t.Fatalf("small-window range: %d, %v", n, err)
	}
}

func TestUnmapDemotedMappingWholeAndPartial(t *testing.T) {
	host := testHost(t)
	as := host.AS
	avail := as.Mem().HugeAvailable()

	// Fully demoted: the original (start, size) still unmaps as a whole
	// and every 2 MiB run returns to the pool.
	va, err := as.MapHuge(3 * machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Demote(va, 3*machine.HugePageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(va, 3*machine.HugePageSize); err != nil {
		t.Fatalf("unmap of fully demoted mapping: %v", err)
	}
	if got := as.Mem().HugeAvailable(); got != avail {
		t.Fatalf("pool = %d, want %d", got, avail)
	}

	// Partially demoted (middle page pinned): mixed-class pieces still
	// unmap as the original whole once the pin drops.
	va, err = as.MapHuge(3 * machine.HugePageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Pin(va+machine.HugePageSize, machine.HugePageSize); err != nil {
		t.Fatal(err)
	}
	if n, _ := as.Demote(va, 3*machine.HugePageSize); n != 2 {
		t.Fatalf("demoted %d, want 2", n)
	}
	if err := as.Unmap(va, 3*machine.HugePageSize); err == nil {
		t.Fatal("unmap of pinned mapping must refuse")
	}
	if err := as.Unpin(va+machine.HugePageSize, machine.HugePageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(va, 3*machine.HugePageSize); err != nil {
		t.Fatalf("unmap of partially demoted mapping: %v", err)
	}
	if got := as.Mem().HugeAvailable(); got != avail {
		t.Fatalf("pool = %d, want %d", got, avail)
	}
	if st := as.Stats(); st.MappedHuge != 0 || st.MappedSmall != 0 {
		t.Fatalf("gauges = %+v", st)
	}
}
