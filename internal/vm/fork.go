package vm

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/phys"
)

// Fork and copy-on-write. The paper's mapping layer "must leave a reserve
// of hugepages that are needed when forking processes for Copy-on-Write
// reasons": a forked child initially shares all hugepages with its parent,
// and the first write to a shared hugepage needs a whole fresh hugepage
// from the pool — if the allocator has handed every pool page out, that
// write has nowhere to go. The reserve (phys.Memory.Reserve) is the pages
// the allocator refuses to touch so CoW breaks can always be satisfied:
// CoW allocation deliberately digs into it (phys.Memory.AllocHugeCoW).

// Fork clones the address space. Small-page and hugepage mappings are
// shared copy-on-write; pinned pages are copied eagerly (DMA-registered
// memory cannot fault, exactly like get_user_pages pages on Linux).
// Pin state itself does not transfer: the child holds no registrations.
func (as *AddressSpace) Fork() (*AddressSpace, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	child := &AddressSpace{
		mem:      as.mem,
		small:    make(map[uint64]*pte, len(as.small)),
		huge:     make(map[uint64]*pte, len(as.huge)),
		brk:      as.brk,
		mmapNext: as.mmapNext,
		hugeNext: as.hugeNext,
		regions:  append([]region(nil), as.regions...),
	}
	copyPage := func(src *pte, huge bool) (*pte, error) {
		if src.pins == 0 {
			// Share CoW: both sides now fault on write.
			src.cow = true
			return &pte{frame: src.frame, class: src.class, cow: true}, nil
		}
		// Pinned in the parent: copy the contents eagerly.
		var f phys.Frame
		var err error
		if huge {
			f, err = as.mem.AllocHugeCoW()
		} else {
			f, err = as.mem.AllocFrame()
		}
		if err != nil {
			return nil, err
		}
		as.mem.CopyPhys(
			phys.Addr(uint64(f)*machine.SmallPageSize),
			phys.Addr(uint64(src.frame)*machine.SmallPageSize),
			int(src.class.Size()))
		return &pte{frame: f, class: src.class}, nil
	}
	// Walk the page tables in VPN order, not map order: eager copies
	// allocate physical frames as they go, and the resulting frame
	// layout must be a pure function of the address space — map
	// iteration order would leak into every downstream placement
	// decision and break run-for-run reproducibility across processes.
	for _, vpn := range sortedVPNs(as.small) {
		np, err := copyPage(as.small[vpn], false)
		if err != nil {
			return nil, fmt.Errorf("vm: fork: %w", err)
		}
		child.small[vpn] = np
		child.stats.MappedSmall++
	}
	for _, vpn := range sortedVPNs(as.huge) {
		np, err := copyPage(as.huge[vpn], true)
		if err != nil {
			return nil, fmt.Errorf("vm: fork: %w", err)
		}
		child.huge[vpn] = np
		child.stats.MappedHuge++
	}
	return child, nil
}

// sortedVPNs returns a page table's virtual page numbers in ascending
// order.
func sortedVPNs(pt map[uint64]*pte) []uint64 {
	vpns := make([]uint64, 0, len(pt))
	for vpn := range pt {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	return vpns
}

// breakCoW gives the pte a private copy of its page. Callers hold as.mu.
func (as *AddressSpace) breakCoW(p *pte) error {
	var f phys.Frame
	var err error
	if p.class == Huge {
		// This is the allocation the reserve exists for.
		f, err = as.mem.AllocHugeCoW()
	} else {
		f, err = as.mem.AllocFrame()
	}
	if err != nil {
		return fmt.Errorf("vm: copy-on-write: %w", err)
	}
	as.mem.CopyPhys(
		phys.Addr(uint64(f)*machine.SmallPageSize),
		phys.Addr(uint64(p.frame)*machine.SmallPageSize),
		int(p.class.Size()))
	// The old frame stays with whichever other space references it; the
	// simulator does not refcount frames, matching the accounting focus
	// of the model (pool pressure), not exact RSS.
	p.frame = f
	p.cow = false
	// A fresh private frame is no longer part of a demoted hugepage run.
	p.split = false
	as.stats.CoWBreaks++
	return nil
}
