package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/alloc"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/memtier"
	"repro/internal/mpip"
	"repro/internal/node"
	"repro/internal/phys"
	"repro/internal/regcache"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/verbs"
	"repro/internal/vm"
)

// Rank is one MPI process — a scheduler task inside World.Run. All
// methods must be called from the rank's own task (the body passed to
// World.Run); Sendrecv internally forks a send-half sub-task, which is
// the one sanctioned exception and runs under the same scheduler's
// mutual exclusion.
type Rank struct {
	id    int
	world *World
	clock simtime.Clock

	// task is the rank's scheduler task while World.Run executes the
	// body, nil outside it. Blocking primitives park it; Compute yields
	// it so long compute phases become scheduled events.
	task *sched.Task

	// node owns the rank's host; the fields below are aliases into it,
	// kept so the hot paths skip a pointer hop.
	node *node.Node

	as    *vm.AddressSpace
	ctx   *verbs.Context
	cache *regcache.Cache
	alloc alloc.Allocator
	dtlb  *tlb.DTLB
	inj   *faults.Injector // nil when faults are disabled (nil-safe)
	prof  *mpip.Profile
	tr    *trace.Tracer // nil when tracing is disabled (nil-safe)
	cur   *trace.Cursor // stamps the clockless layers' instant events

	// Per-peer message plumbing, created lazily on first use: a rank
	// only pays for the peers it actually talks to, which is what makes
	// 1024-rank worlds affordable (the old design allocated a dense
	// ranks² channel matrix, with every credit pool prefilled, before
	// the first message moved).
	inbox   map[int]*sched.Queue[*message] // keyed by source rank
	pending map[int][]*message             // unexpected-message queues, per source
	// credits[d] holds eager-buffer tokens for sending to rank d; each
	// token carries the virtual time at which the receiver freed it.
	credits map[int]*sched.Queue[simtime.Ticks]

	// Persistent collective scratch buffer (allocated via the rank's own
	// allocation library, so it follows the placement policy).
	scratchVA   vm.VA
	scratchSize uint64

	// mpiDepth tracks nesting of profiled MPI entry points so that a
	// collective's internal point-to-point calls are not double-counted
	// (mpiP attributes time to the outermost call site). Plain int: the
	// scheduler runs at most one of the rank's tasks at a time.
	mpiDepth int

	// flowSeq[d] numbers the traced messages sent to rank d, so every
	// message arrow in the trace gets a globally unique id.
	flowSeq map[int]uint64
}

// inboxQ returns the rank's inbox for messages from src, creating it on
// first use.
func (r *Rank) inboxQ(src int) *sched.Queue[*message] {
	q := r.inbox[src]
	if q == nil {
		q = sched.NewQueue[*message](r.world.sched,
			fmt.Sprintf("inbox %d<-%d", r.id, src), r.world.cfg.ChannelDepth)
		r.inbox[src] = q
	}
	return q
}

// creditQ returns the eager-credit pool for sending to dst, created full
// on first use (a fresh peer has every bounce buffer free).
func (r *Rank) creditQ(dst int) *sched.Queue[simtime.Ticks] {
	q := r.credits[dst]
	if q == nil {
		q = sched.NewQueue[simtime.Ticks](r.world.sched,
			fmt.Sprintf("credits %d->%d", r.id, dst), r.world.cfg.EagerCredits)
		for k := 0; k < r.world.cfg.EagerCredits; k++ {
			q.Preload(0)
		}
		r.credits[dst] = q
	}
	return q
}

// tctx positions a trace context at clk's current instant: on the main
// track for the rank's own clock, on the send track for a Sendrecv's
// forked send half. Disabled tracing yields the inert zero Ctx.
func (r *Rank) tctx(clk *simtime.Clock) trace.Ctx {
	if r.tr == nil {
		return trace.Ctx{}
	}
	track := trace.TrackMain
	if clk != &r.clock {
		track = trace.TrackSend
	}
	return r.tr.At(track, clk.Now())
}

// nextFlow allocates a message-arrow id for a send to dst. Call only
// when tracing is enabled.
func (r *Rank) nextFlow(dst int) uint64 {
	r.flowSeq[dst]++
	return (uint64(r.id)*uint64(len(r.world.ranks))+uint64(dst))<<32 | r.flowSeq[dst]
}

// enterMPI marks entry into a profiled MPI call; it reports whether this
// is the outermost call (the one that should be recorded).
func (r *Rank) enterMPI() bool {
	r.mpiDepth++
	return r.mpiDepth == 1
}

// exitMPI leaves a profiled MPI call, recording d against name if this
// was the outermost frame.
func (r *Rank) exitMPI(name string, start simtime.Ticks, outer bool) {
	r.mpiDepth--
	if outer {
		end := r.clock.Now()
		r.prof.AddCall(name, end-start)
		// Every outermost MPI call is one span on the rank's main track —
		// the single emission point all entry points funnel through.
		if r.tr.Enabled() {
			r.tr.At(trace.TrackMain, start).SpanAt(trace.LMPI, name, start, end-start)
		}
	}
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the job's rank count.
func (r *Rank) Size() int { return len(r.world.ranks) }

// Now returns the rank's virtual clock.
func (r *Rank) Now() simtime.Ticks { return r.clock.Now() }

// Node exposes the rank's host.
func (r *Rank) Node() *node.Node { return r.node }

// NodeStats snapshots the host's telemetry (all layers' counters). Call
// it from the rank's own goroutine, or after World.Run returned.
func (r *Rank) NodeStats() node.Stats { return r.node.Stats() }

// AS exposes the rank's address space.
func (r *Rank) AS() *vm.AddressSpace { return r.as }

// Verbs exposes the rank's verbs context.
func (r *Rank) Verbs() *verbs.Context { return r.ctx }

// Cache exposes the rank's registration cache.
func (r *Rank) Cache() *regcache.Cache { return r.cache }

// Allocator exposes the rank's allocation library.
func (r *Rank) Allocator() alloc.Allocator { return r.alloc }

// DTLB exposes the rank's TLB simulator (the memmodel charges through it).
func (r *Rank) DTLB() *tlb.DTLB { return r.dtlb }

// Profile exposes the rank's mpiP profile.
func (r *Rank) Profile() *mpip.Profile { return r.prof }

// computeYieldTicks is the compute-phase granularity at which a rank
// hands the baton back to the scheduler: phases at least this long
// become scheduled events, so the event order tracks virtual time even
// through compute-heavy stretches, while short TLB-walk charges stay
// yield-free.
const computeYieldTicks = simtime.Millisecond

// Compute advances the rank's clock by application time and records it.
// Long phases yield to the scheduler so they become events on the run
// queue rather than opaque stretches (no cost attribution changes: the
// clock has already advanced when the yield happens).
func (r *Rank) Compute(d simtime.Ticks) {
	if r.tr.Enabled() && d > 0 {
		r.tctx(&r.clock).Span(trace.LApp, "compute", d)
	}
	r.clock.Advance(d)
	r.prof.AddCompute(d)
	// The compute path is the adaptive policy's heartbeat: window
	// boundaries are checked here, and any demotion's split cost is
	// charged to the rank like the application work it interrupts.
	if pol := r.node.Policy(); pol != nil {
		r.cur.Set(r.clock.Now())
		if c := pol.Tick(r.clock.Now()); c > 0 {
			if r.tr.Enabled() {
				r.tctx(&r.clock).Span(trace.LPolicy, "demote.split", c)
			}
			r.clock.Advance(c)
			r.prof.AddCompute(c)
		}
	}
	if d >= computeYieldTicks {
		r.task.Yield()
	}
}

// Malloc allocates through the rank's allocation library, charging the
// allocator's own time to the compute side of the profile (that is where
// the Abinit +1.5 % lives).
func (r *Rank) Malloc(n uint64) (vm.VA, error) {
	r.cur.Set(r.clock.Now()) // position the vm/phys instant markers
	before := r.alloc.Stats().Ticks
	va, err := r.alloc.Alloc(n)
	if err != nil {
		return 0, err
	}
	d := r.alloc.Stats().Ticks - before
	if r.tr.Enabled() {
		r.tctx(&r.clock).Span(trace.LAlloc, "malloc", d, trace.I64("bytes", int64(n)))
	}
	r.clock.Advance(d)
	r.prof.AddAlloc(d)
	return va, nil
}

// Free releases a buffer, invalidating any cached registration over it
// first (a correctness requirement of lazy deregistration).
func (r *Rank) Free(va vm.VA) error {
	r.cur.Set(r.clock.Now())
	inv, err := r.cache.Invalidate(va, r.alloc.UsableSize(va))
	if err != nil {
		return err
	}
	before := r.alloc.Stats().Ticks
	if err := r.alloc.Free(va); err != nil {
		return err
	}
	d := r.alloc.Stats().Ticks - before
	if r.tr.Enabled() {
		r.tctx(&r.clock).Span(trace.LAlloc, "free", d+inv)
	}
	r.clock.Advance(d + inv)
	r.prof.AddAlloc(d + inv)
	return nil
}

// WriteBytes stores p at va, walking the DTLB for every page touched —
// application stores of a communication buffer are ordinary data
// accesses, so they show up in the node's TLB telemetry and pay the walk
// penalty like any other compute.
func (r *Rank) WriteBytes(va vm.VA, p []byte) error {
	if err := r.as.Write(va, p); err != nil {
		return err
	}
	r.touchPages(va, uint64(len(p)))
	return nil
}

// ReadBytes loads len(p) bytes from va (TLB-charged like WriteBytes).
func (r *Rank) ReadBytes(va vm.VA, p []byte) error {
	if err := r.as.Read(va, p); err != nil {
		return err
	}
	r.touchPages(va, uint64(len(p)))
	return nil
}

// touchPages performs one DTLB access per page of [va, va+n) and charges
// the walk penalties as application compute. When the node runs a tiered
// memory model, each page touch also pays its tier's access penalty —
// a slow-tier page costs extra latency (and streaming time) on top of
// the TLB walk, which is how tier placement reaches virtual time.
func (r *Rank) touchPages(va vm.VA, n uint64) {
	var d simtime.Ticks
	tiers := r.node.Tiers
	for off := uint64(0); off < n; {
		pa, class, err := r.as.Translate(va + vm.VA(off))
		if err != nil {
			return // unmapped tail; the Write/Read already failed loudly
		}
		ps := class.Size()
		d += r.dtlb.Access(va+vm.VA(off), class)
		next := (uint64(va)+off)/ps*ps + ps
		newOff := next - uint64(va)
		if tiers != nil {
			touched := newOff
			if touched > n {
				touched = n
			}
			touched -= off
			base := uint64(pa) / ps * ps
			d += tiers.Touch(memtier.PageRef{
				Frame: phys.Frame(base / machine.SmallPageSize),
				Bytes: ps,
			}, touched)
		}
		off = newOff
	}
	if d > 0 {
		r.Compute(d)
	}
}

// pageRefs enumerates [va, va+n) as memtier page refs (base frames).
func (r *Rank) pageRefs(va vm.VA, n uint64) ([]memtier.PageRef, error) {
	pages, err := r.as.Pages(va, n)
	if err != nil {
		return nil, err
	}
	refs := make([]memtier.PageRef, len(pages))
	for i, p := range pages {
		refs[i] = memtier.PageRef{
			Frame: phys.Frame(uint64(p.PA) / machine.SmallPageSize),
			Bytes: p.Class.Size(),
		}
	}
	return refs, nil
}

// TierOf reports which memory tier the page backing va resides in
// (first-touch placing it like any access would); -1 when the node has
// no tiered memory.
func (r *Rank) TierOf(va vm.VA) int {
	tiers := r.node.Tiers
	if tiers == nil {
		return -1
	}
	pa, class, err := r.as.Translate(va)
	if err != nil {
		return -1
	}
	ps := class.Size()
	return tiers.TierOf(memtier.PageRef{
		Frame: phys.Frame(uint64(pa) / ps * ps / machine.SmallPageSize),
		Bytes: ps,
	})
}

// TierAssign first-touch places the pages of [va, va+n) in the given
// tier (spilling down-stack when full) without any copy cost — the
// placement hint for freshly allocated data.
func (r *Rank) TierAssign(va vm.VA, n uint64, tier int) error {
	tiers := r.node.Tiers
	if tiers == nil || n == 0 {
		return nil
	}
	refs, err := r.pageRefs(va, n)
	if err != nil {
		return err
	}
	tiers.Assign(refs, tier)
	return nil
}

// TierMigrate moves the pages of [va, va+n) to the given tier, charging
// the modeled copy cost to the rank's clock as application compute.
// It returns the pages actually moved (pages already there, or not
// fitting a bounded destination, stay put).
func (r *Rank) TierMigrate(va vm.VA, n uint64, tier int) (int, error) {
	tiers := r.node.Tiers
	if tiers == nil || n == 0 {
		return 0, nil
	}
	refs, err := r.pageRefs(va, n)
	if err != nil {
		return 0, err
	}
	r.cur.Set(r.clock.Now()) // position the tier-layer instant markers
	moved, cost := tiers.Migrate(refs, tier)
	if cost > 0 {
		if r.tr.Enabled() {
			r.tctx(&r.clock).Span(trace.LTier, "migrate", cost,
				trace.I64("tier", int64(tier)), trace.I64("pages", int64(moved)))
		}
		r.clock.Advance(cost)
		r.prof.AddCompute(cost)
	}
	return moved, nil
}

// TierPromote moves [va, va+n) to the fast tier (tier 0).
func (r *Rank) TierPromote(va vm.VA, n uint64) (int, error) {
	return r.TierMigrate(va, n, 0)
}

// TierDemote moves [va, va+n) to the slowest tier.
func (r *Rank) TierDemote(va vm.VA, n uint64) (int, error) {
	tiers := r.node.Tiers
	if tiers == nil {
		return 0, nil
	}
	return r.TierMigrate(va, n, tiers.TierCount()-1)
}

// WriteF64 stores a float64 slice at va (little-endian).
func (r *Rank) WriteF64(va vm.VA, xs []float64) error {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return r.as.Write(va, buf)
}

// ReadF64 loads n float64s from va.
func (r *Rank) ReadF64(va vm.VA, n int) ([]float64, error) {
	buf := make([]byte, 8*n)
	if err := r.as.Read(va, buf); err != nil {
		return nil, err
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return xs, nil
}

// memcpyTicks is the CPU cost of copying n bytes (eager bounce copies).
func (r *Rank) memcpyTicks(n int) simtime.Ticks {
	return simtime.BandwidthTicks(int64(n), r.world.cfg.Machine.Mem.CopyBandwidthMBs)
}

// ctrlWire is the wire cost of a small control message (RTS/CTS).
func (r *Rank) ctrlWire() simtime.Ticks { return r.ctx.HW.WireCost(64) }

// checkPeer validates a peer rank number.
func (r *Rank) checkPeer(peer int) error {
	if peer < 0 || peer >= r.Size() || peer == r.id {
		return fmt.Errorf("mpi: rank %d: bad peer %d", r.id, peer)
	}
	return nil
}

// matchRecv pops the next message from src with the given tag, keeping
// unexpected messages queued in arrival order. It returns nil if the job
// aborted while waiting (a peer rank failed); messages already delivered
// before the failure still match.
func (r *Rank) matchRecv(t *sched.Task, src, tag int) *message {
	q := r.pending[src]
	for i, m := range q {
		if m.tag == tag {
			r.pending[src] = append(q[:i], q[i+1:]...)
			return m
		}
	}
	in := r.inboxQ(src)
	for {
		m, ok := in.Pop(t)
		if !ok {
			return nil
		}
		if m.tag == tag {
			return m
		}
		r.pending[src] = append(r.pending[src], m)
	}
}

// acquire registers [va,va+n) through the rank's registration cache and
// charges the time.
func (r *Rank) acquire(va vm.VA, n uint64) (*verbs.MR, error) {
	mr, cost, err := r.cache.AcquireT(r.tctx(&r.clock), va, n)
	if err != nil {
		return nil, err
	}
	r.clock.Advance(cost)
	return mr, nil
}

// release returns a registration, charging deregistration time when lazy
// deregistration is off.
func (r *Rank) release(mr *verbs.MR) error {
	cost, err := r.cache.ReleaseT(r.tctx(&r.clock), mr)
	if err != nil {
		return err
	}
	r.clock.Advance(cost)
	return nil
}
