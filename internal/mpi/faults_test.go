package mpi

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/node"
	"repro/internal/simtime"
)

func faultSpec(t *testing.T, s string) *faults.Spec {
	t.Helper()
	sp, err := faults.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// pressureWorkload crosses every path the fault spec can touch: eager
// and rendezvous Sendrecvs (forked halves under the shared memlock
// budget), a collective, and enough iterations for the periodic
// injections to fire.
func pressureWorkload(r *Rank) error {
	const big = 256 << 10
	peer := (r.ID() + 1) % r.Size()
	from := (r.ID() + r.Size() - 1) % r.Size()
	sendVA, err := r.Malloc(big)
	if err != nil {
		return err
	}
	recvVA, err := r.Malloc(big)
	if err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		if _, err := r.Sendrecv(peer, 10+i, sendVA, 2048, from, 10+i, recvVA, 2048); err != nil {
			return err
		}
		if _, err := r.Sendrecv(peer, 20+i, sendVA, big, from, 20+i, recvVA, big); err != nil {
			return err
		}
	}
	if err := r.AllreduceF64(sendVA, 64, Sum); err != nil {
		return err
	}
	return r.Barrier()
}

// runUnderFaults executes the pressure workload under a spec and returns
// the per-rank finish times plus telemetry.
func runUnderFaults(t *testing.T, spec *faults.Spec) ([]simtime.Ticks, []node.Stats) {
	t.Helper()
	cfg := defaultCfg(4)
	cfg.Faults = spec
	w := mustWorld(t, cfg)
	if err := w.Run(pressureWorkload); err != nil {
		t.Fatal(err)
	}
	times := make([]simtime.Ticks, w.Size())
	for i := 0; i < w.Size(); i++ {
		times[i] = w.Rank(i).Now()
	}
	return times, w.NodeStats()
}

func TestSameSeedRunsAreIdentical(t *testing.T) {
	// The overlapping-span determinism gate, extended to fault retries:
	// two runs with one fault spec must agree on every rank's finish time
	// and every telemetry counter, regardless of goroutine scheduling.
	// CI runs this package under -race, so the gate also proves the
	// injected paths are data-race-free.
	const s = "seed=7,hugecap=8,hugefail=40,shrink=100:2,memlock=16m,wr=50,attevict=400"
	t1, st1 := runUnderFaults(t, faultSpec(t, s))
	t2, st2 := runUnderFaults(t, faultSpec(t, s))
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("finish times differ across same-seed runs:\n%v\n%v", t1, t2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("telemetry differs across same-seed runs:\n%+v\n%+v", st1, st2)
	}
}

func TestFaultsActuallyFire(t *testing.T) {
	_, sts := runUnderFaults(t,
		faultSpec(t, "seed=7,hugecap=8,hugefail=40,shrink=100:2,memlock=16m,wr=20,attevict=200"))
	total := node.Sum(sts)
	if total.Faults.WRErrors == 0 || total.Faults.WRRetries == 0 {
		t.Fatalf("transient completion errors never fired: %+v", total.Faults)
	}
	if total.Faults.WRRetries < total.Faults.WRErrors {
		t.Fatalf("every injected error needs at least one repost: %+v", total.Faults)
	}
	if total.Faults.PoolPagesRemoved == 0 {
		t.Fatalf("pool cap/shrink removed no pages: %+v", total.Faults)
	}
	if total.Alloc.FallbackToSmall == 0 {
		t.Fatalf("capped pool should force library fallbacks: %+v", total.Alloc)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	tA, _ := runUnderFaults(t, faultSpec(t, "seed=1,wr=20"))
	tB, _ := runUnderFaults(t, faultSpec(t, "seed=2,wr=20"))
	if reflect.DeepEqual(tA, tB) {
		t.Fatal("different seeds produced identical timing — injection is not keyed on the seed")
	}
}

func TestNoSpecMatchesNilInjector(t *testing.T) {
	// A nil spec must behave exactly like the pre-fault-injection code:
	// same timing as another nil-spec run, zero fault counters.
	t1, st1 := runUnderFaults(t, nil)
	t2, st2 := runUnderFaults(t, nil)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("clean runs diverge: %v vs %v", t1, t2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("clean telemetry diverges")
	}
	total := node.Sum(st1)
	if total.Faults != (node.FaultStats{}) {
		t.Fatalf("clean run reported fault activity: %+v", total.Faults)
	}
}
