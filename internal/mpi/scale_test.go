package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/simtime"
)

// collectiveFingerprint is one run's complete observable outcome: every
// rank's final buffer bytes, reduced values, final clock, and the job
// makespan. Two same-seed runs must produce equal fingerprints — the
// scheduler's determinism invariant, checked end-to-end.
type collectiveFingerprint struct {
	bcast     [][]byte
	allreduce [][]float64
	alltoall  [][]byte
	clocks    []simtime.Ticks
	makespan  simtime.Ticks
}

// runCollectives64 drives Bcast + AllreduceF64 + Alltoall on a 64-rank
// world with fault injection armed, and fingerprints the outcome.
func runCollectives64(t *testing.T, ranks int) *collectiveFingerprint {
	t.Helper()
	spec, err := faults.ParseSpec("seed=9,attevict=700,wr=400")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Machine:   machine.Opteron(),
		Ranks:     ranks,
		Allocator: AllocHuge,
		LazyDereg: true,
		HugeATT:   true,
		Faults:    spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		bcastBytes = 64 << 10 // rendezvous path
		redCount   = 512
		block      = 1 << 10 // eager path, p·block per rank
	)
	fp := &collectiveFingerprint{
		bcast:     make([][]byte, ranks),
		allreduce: make([][]float64, ranks),
		alltoall:  make([][]byte, ranks),
		clocks:    make([]simtime.Ticks, ranks),
	}
	err = w.Run(func(r *Rank) error {
		bva, err := r.Malloc(bcastBytes)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			pay := make([]byte, bcastBytes)
			for i := range pay {
				pay[i] = byte(i * 31)
			}
			if err := r.WriteBytes(bva, pay); err != nil {
				return err
			}
		}
		if err := r.Bcast(0, bva, bcastBytes); err != nil {
			return err
		}
		fp.bcast[r.ID()] = make([]byte, bcastBytes)
		if err := r.ReadBytes(bva, fp.bcast[r.ID()]); err != nil {
			return err
		}

		rva, err := r.Malloc(8 * redCount)
		if err != nil {
			return err
		}
		vals := make([]float64, redCount)
		for i := range vals {
			vals[i] = float64((r.ID()+1)*(i+3)) * 0.5
		}
		if err := r.WriteF64(rva, vals); err != nil {
			return err
		}
		if err := r.AllreduceF64(rva, redCount, Sum); err != nil {
			return err
		}
		if fp.allreduce[r.ID()], err = r.ReadF64(rva, redCount); err != nil {
			return err
		}

		sva, err := r.Malloc(uint64(ranks * block))
		if err != nil {
			return err
		}
		dva, err := r.Malloc(uint64(ranks * block))
		if err != nil {
			return err
		}
		out := make([]byte, ranks*block)
		for i := range out {
			out[i] = byte(r.ID() ^ i)
		}
		if err := r.WriteBytes(sva, out); err != nil {
			return err
		}
		if err := r.Alltoall(sva, dva, block); err != nil {
			return err
		}
		fp.alltoall[r.ID()] = make([]byte, ranks*block)
		if err := r.ReadBytes(dva, fp.alltoall[r.ID()]); err != nil {
			return err
		}
		fp.clocks[r.ID()] = r.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fp.makespan = w.MaxTime()
	return fp
}

// TestCollectives64RankDeterminism runs the 64-rank collectives twice
// with the same seed and requires byte-identical outcomes: payloads,
// per-rank clocks and the makespan. Pre-refactor (one goroutine per
// rank, real channels) this scale was infeasible under -race; on the
// event scheduler it is routine, and the schedule is provably identical
// because the run-queue order is a pure function of virtual time.
func TestCollectives64RankDeterminism(t *testing.T) {
	const ranks = 64
	a := runCollectives64(t, ranks)
	b := runCollectives64(t, ranks)

	if a.makespan != b.makespan {
		t.Fatalf("makespan differs across runs: %d vs %d", a.makespan, b.makespan)
	}
	for i := 0; i < ranks; i++ {
		if a.clocks[i] != b.clocks[i] {
			t.Fatalf("rank %d final clock differs: %d vs %d", i, a.clocks[i], b.clocks[i])
		}
		if !bytes.Equal(a.bcast[i], b.bcast[i]) {
			t.Fatalf("rank %d bcast payload differs across runs", i)
		}
		if !bytes.Equal(a.alltoall[i], b.alltoall[i]) {
			t.Fatalf("rank %d alltoall payload differs across runs", i)
		}
		if fmt.Sprint(a.allreduce[i]) != fmt.Sprint(b.allreduce[i]) {
			t.Fatalf("rank %d allreduce result differs across runs", i)
		}
	}

	// Correctness spot checks, so determinism is not vacuous: every rank
	// holds root's bcast payload, the allreduce matches the closed form,
	// and alltoall block j on rank i came from rank j's block i.
	for i := 0; i < ranks; i++ {
		if !bytes.Equal(a.bcast[i], a.bcast[0]) {
			t.Fatalf("rank %d bcast payload differs from root's", i)
		}
		// sum over r of (r+1)*(k+3)*0.5 = (k+3)*0.5 * ranks*(ranks+1)/2
		scale := 0.5 * float64(ranks) * float64(ranks+1) / 2
		for k := 0; k < 4; k++ {
			want := float64(k+3) * scale
			if got := a.allreduce[i][k]; got != want {
				t.Fatalf("rank %d allreduce[%d] = %g, want %g", i, k, got, want)
			}
		}
		for j := 0; j < ranks; j += 17 {
			if i == j {
				continue
			}
			blk := a.alltoall[i][j<<10 : j<<10+4]
			for o, v := range blk {
				if want := byte(j ^ (i<<10 + o)); v != want {
					t.Fatalf("rank %d alltoall block %d byte %d = %#x, want %#x", i, j, o, v, want)
				}
			}
		}
	}
}
