package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/memtier"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// collectiveFingerprint is one run's complete observable outcome: every
// rank's final buffer bytes, reduced values, final clock, and the job
// makespan. Two same-seed runs must produce equal fingerprints — the
// scheduler's determinism invariant, checked end-to-end.
type collectiveFingerprint struct {
	bcast     [][]byte
	allreduce [][]float64
	alltoall  [][]byte
	clocks    []simtime.Ticks
	makespan  simtime.Ticks
}

// runCollectives64 drives Bcast + AllreduceF64 + Alltoall on a 64-rank
// world with fault injection armed, and fingerprints the outcome.
func runCollectives64(t *testing.T, ranks int) *collectiveFingerprint {
	t.Helper()
	spec, err := faults.ParseSpec("seed=9,attevict=700,wr=400")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Machine:   machine.Opteron(),
		Ranks:     ranks,
		Allocator: AllocHuge,
		LazyDereg: true,
		HugeATT:   true,
		Faults:    spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		bcastBytes = 64 << 10 // rendezvous path
		redCount   = 512
		block      = 1 << 10 // eager path, p·block per rank
	)
	fp := &collectiveFingerprint{
		bcast:     make([][]byte, ranks),
		allreduce: make([][]float64, ranks),
		alltoall:  make([][]byte, ranks),
		clocks:    make([]simtime.Ticks, ranks),
	}
	err = w.Run(func(r *Rank) error {
		bva, err := r.Malloc(bcastBytes)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			pay := make([]byte, bcastBytes)
			for i := range pay {
				pay[i] = byte(i * 31)
			}
			if err := r.WriteBytes(bva, pay); err != nil {
				return err
			}
		}
		if err := r.Bcast(0, bva, bcastBytes); err != nil {
			return err
		}
		fp.bcast[r.ID()] = make([]byte, bcastBytes)
		if err := r.ReadBytes(bva, fp.bcast[r.ID()]); err != nil {
			return err
		}

		rva, err := r.Malloc(8 * redCount)
		if err != nil {
			return err
		}
		vals := make([]float64, redCount)
		for i := range vals {
			vals[i] = float64((r.ID()+1)*(i+3)) * 0.5
		}
		if err := r.WriteF64(rva, vals); err != nil {
			return err
		}
		if err := r.AllreduceF64(rva, redCount, Sum); err != nil {
			return err
		}
		if fp.allreduce[r.ID()], err = r.ReadF64(rva, redCount); err != nil {
			return err
		}

		sva, err := r.Malloc(uint64(ranks * block))
		if err != nil {
			return err
		}
		dva, err := r.Malloc(uint64(ranks * block))
		if err != nil {
			return err
		}
		out := make([]byte, ranks*block)
		for i := range out {
			out[i] = byte(r.ID() ^ i)
		}
		if err := r.WriteBytes(sva, out); err != nil {
			return err
		}
		if err := r.Alltoall(sva, dva, block); err != nil {
			return err
		}
		fp.alltoall[r.ID()] = make([]byte, ranks*block)
		if err := r.ReadBytes(dva, fp.alltoall[r.ID()]); err != nil {
			return err
		}
		fp.clocks[r.ID()] = r.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fp.makespan = w.MaxTime()
	return fp
}

// TestCollectives64RankDeterminism runs the 64-rank collectives twice
// with the same seed and requires byte-identical outcomes: payloads,
// per-rank clocks and the makespan. Pre-refactor (one goroutine per
// rank, real channels) this scale was infeasible under -race; on the
// event scheduler it is routine, and the schedule is provably identical
// because the run-queue order is a pure function of virtual time.
func TestCollectives64RankDeterminism(t *testing.T) {
	const ranks = 64
	a := runCollectives64(t, ranks)
	b := runCollectives64(t, ranks)

	if a.makespan != b.makespan {
		t.Fatalf("makespan differs across runs: %d vs %d", a.makespan, b.makespan)
	}
	for i := 0; i < ranks; i++ {
		if a.clocks[i] != b.clocks[i] {
			t.Fatalf("rank %d final clock differs: %d vs %d", i, a.clocks[i], b.clocks[i])
		}
		if !bytes.Equal(a.bcast[i], b.bcast[i]) {
			t.Fatalf("rank %d bcast payload differs across runs", i)
		}
		if !bytes.Equal(a.alltoall[i], b.alltoall[i]) {
			t.Fatalf("rank %d alltoall payload differs across runs", i)
		}
		if fmt.Sprint(a.allreduce[i]) != fmt.Sprint(b.allreduce[i]) {
			t.Fatalf("rank %d allreduce result differs across runs", i)
		}
	}

	// Correctness spot checks, so determinism is not vacuous: every rank
	// holds root's bcast payload, the allreduce matches the closed form,
	// and alltoall block j on rank i came from rank j's block i.
	for i := 0; i < ranks; i++ {
		if !bytes.Equal(a.bcast[i], a.bcast[0]) {
			t.Fatalf("rank %d bcast payload differs from root's", i)
		}
		// sum over r of (r+1)*(k+3)*0.5 = (k+3)*0.5 * ranks*(ranks+1)/2
		scale := 0.5 * float64(ranks) * float64(ranks+1) / 2
		for k := 0; k < 4; k++ {
			want := float64(k+3) * scale
			if got := a.allreduce[i][k]; got != want {
				t.Fatalf("rank %d allreduce[%d] = %g, want %g", i, k, got, want)
			}
		}
		for j := 0; j < ranks; j += 17 {
			if i == j {
				continue
			}
			blk := a.alltoall[i][j<<10 : j<<10+4]
			for o, v := range blk {
				if want := byte(j ^ (i<<10 + o)); v != want {
					t.Fatalf("rank %d alltoall block %d byte %d = %#x, want %#x", i, j, o, v, want)
				}
			}
		}
	}
}

// vCount is the deterministic variable block size rank i sends to rank
// j in the Alltoallv scale test: 0 to 24 KiB, so steps cross the eager,
// pipelined, and rendezvous protocol regimes (and include empty blocks).
func vCount(i, j int) int { return ((i*31 + j*17) % 7) * (4 << 10) }

// alltoallvFingerprint is one Alltoallv run's observable outcome.
type alltoallvFingerprint struct {
	recv     [][]byte
	coll     []string
	clocks   []simtime.Ticks
	makespan simtime.Ticks
}

// runAlltoallv64 drives a variable-count Alltoallv on a 64-rank world
// with fault injection and the tiered-memory model armed (so tier
// placement charges are part of the fingerprinted schedule).
func runAlltoallv64(t *testing.T, ranks int) *alltoallvFingerprint {
	t.Helper()
	spec, err := faults.ParseSpec("seed=11,attevict=900,wr=500")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Machine:   machine.Opteron(),
		Ranks:     ranks,
		Allocator: AllocHuge,
		LazyDereg: true,
		HugeATT:   true,
		Faults:    spec,
		Tiers:     memtier.TwoTier(1<<20, 120, 900),
	})
	if err != nil {
		t.Fatal(err)
	}
	fp := &alltoallvFingerprint{
		recv:   make([][]byte, ranks),
		coll:   make([]string, ranks),
		clocks: make([]simtime.Ticks, ranks),
	}
	err = w.Run(func(r *Rank) error {
		p := r.Size()
		sc := make([]int, p)
		sd := make([]int, p)
		rc := make([]int, p)
		rd := make([]int, p)
		sTotal, rTotal := 0, 0
		for j := 0; j < p; j++ {
			sc[j] = vCount(r.ID(), j)
			sd[j] = sTotal
			sTotal += sc[j]
			rc[j] = vCount(j, r.ID())
			rd[j] = rTotal
			rTotal += rc[j]
		}
		sva, err := r.Malloc(uint64(sTotal))
		if err != nil {
			return err
		}
		dva, err := r.Malloc(uint64(rTotal))
		if err != nil {
			return err
		}
		out := make([]byte, sTotal)
		for i := range out {
			out[i] = byte(r.ID()*37 + i)
		}
		if err := r.WriteBytes(sva, out); err != nil {
			return err
		}
		if err := r.Alltoallv(sva, sc, sd, dva, rc, rd); err != nil {
			return err
		}
		fp.recv[r.ID()] = make([]byte, rTotal)
		if err := r.ReadBytes(dva, fp.recv[r.ID()]); err != nil {
			return err
		}
		fp.coll[r.ID()] = fmt.Sprint(r.NodeStats().Coll)
		fp.clocks[r.ID()] = r.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fp.makespan = w.MaxTime()
	return fp
}

// TestAlltoallv64RankDeterminism runs the 64-rank variable-count
// Alltoallv twice with the same seed and requires byte-identical
// outcomes — payloads, collective counters, per-rank clocks, makespan —
// then verifies the data movement itself against the closed form.
func TestAlltoallv64RankDeterminism(t *testing.T) {
	const ranks = 64
	a := runAlltoallv64(t, ranks)
	b := runAlltoallv64(t, ranks)

	if a.makespan != b.makespan {
		t.Fatalf("makespan differs across runs: %d vs %d", a.makespan, b.makespan)
	}
	for i := 0; i < ranks; i++ {
		if a.clocks[i] != b.clocks[i] {
			t.Fatalf("rank %d final clock differs: %d vs %d", i, a.clocks[i], b.clocks[i])
		}
		if !bytes.Equal(a.recv[i], b.recv[i]) {
			t.Fatalf("rank %d alltoallv payload differs across runs", i)
		}
		if a.coll[i] != b.coll[i] {
			t.Fatalf("rank %d collective counters differ: %s vs %s", i, a.coll[i], b.coll[i])
		}
	}

	// Correctness: rank i's block from rank j holds j's bytes at j's
	// send displacement for i.
	for i := 0; i < ranks; i += 13 {
		rdOff := 0
		for j := 0; j < ranks; j++ {
			n := vCount(j, i)
			sdOff := 0
			for d := 0; d < i; d++ {
				sdOff += vCount(j, d)
			}
			for o := 0; o < n; o += 997 {
				got := a.recv[i][rdOff+o]
				if want := byte(j*37 + sdOff + o); got != want {
					t.Fatalf("rank %d byte %d from rank %d = %#x, want %#x", i, o, j, got, want)
				}
			}
			rdOff += n
		}
	}
}

// TestAlltoallvPieces exchanges scattered pieces on 8 ranks, covering
// both the SGE-gather branch (few large pieces) and the pack branch
// (many tiny pieces), and checks reassembly plus the collective
// counters.
func TestAlltoallvPieces(t *testing.T) {
	const ranks = 8
	for _, tc := range []struct {
		name      string
		pieceLen  int
		pieces    int
		wantSteps int64
	}{
		{"gather", 2 << 10, 4, ranks - 1},
		{"pack", 16, 192, ranks - 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, err := NewWorld(Config{
				Machine:   machine.Opteron(),
				Ranks:     ranks,
				Allocator: AllocHuge,
				LazyDereg: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			block := tc.pieceLen * tc.pieces
			got := make([][]byte, ranks)
			err = w.Run(func(r *Rank) error {
				p := r.Size()
				// One source arena; rank d's pieces are strided through it.
				sva, err := r.Malloc(uint64(p * block))
				if err != nil {
					return err
				}
				dva, err := r.Malloc(uint64(p * block))
				if err != nil {
					return err
				}
				out := make([]byte, p*block)
				for i := range out {
					out[i] = byte(r.ID() + i*3)
				}
				if err := r.WriteBytes(sva, out); err != nil {
					return err
				}
				pieces := make([][]Piece, p)
				rc := make([]int, p)
				rd := make([]int, p)
				for d := 0; d < p; d++ {
					for k := 0; k < tc.pieces; k++ {
						// Stride pieces so destination d's data is
						// non-contiguous in the source arena.
						off := (k*p + d) * tc.pieceLen
						pieces[d] = append(pieces[d], Piece{VA: sva + vm.VA(off), Len: tc.pieceLen})
					}
					rc[d] = block
					rd[d] = d * block
				}
				if err := r.AlltoallvPieces(pieces, dva, rc, rd); err != nil {
					return err
				}
				got[r.ID()] = make([]byte, p*block)
				if err := r.ReadBytes(dva, got[r.ID()]); err != nil {
					return err
				}
				cs := r.NodeStats().Coll
				if cs.Alltoallvs != 1 || cs.PairwiseSteps != tc.wantSteps {
					return fmt.Errorf("rank %d coll counters %+v", r.ID(), cs)
				}
				if cs.BytesSent != int64((p-1)*block) || cs.BytesRecv != int64((p-1)*block) {
					return fmt.Errorf("rank %d coll bytes %+v", r.ID(), cs)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// Rank i's block from rank j is j's pieces for i, in order:
			// piece k starts at source offset (k*p+i)*pieceLen.
			for i := 0; i < ranks; i++ {
				for j := 0; j < ranks; j++ {
					for k := 0; k < tc.pieces; k++ {
						srcOff := (k*ranks + i) * tc.pieceLen
						dstOff := j*block + k*tc.pieceLen
						for o := 0; o < tc.pieceLen; o += 7 {
							gotB := got[i][dstOff+o]
							if want := byte(j + (srcOff+o)*3); gotB != want {
								t.Fatalf("rank %d from %d piece %d byte %d = %#x, want %#x",
									i, j, k, o, gotB, want)
							}
						}
					}
				}
			}
		})
	}
}
