package mpi

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/vm"
)

// tagAlltoallvP is the tag space of the pieces variant (collectives2.go
// owns 6–9 << 20).
const tagAlltoallvP = 10 << 20

// AlltoallvPieces is the non-contiguous Alltoallv the MoE dispatch path
// needs: pieces[d] lists the scattered pieces destined for rank d, and
// the receive side is the usual contiguous (recvVA, recvCounts,
// recvDispls) layout — rank d's data lands at recvVA+recvDispls[d].
// Every rank must pass consistent counts (sum of pieces[d] lengths on
// the sender == recvCounts[sender] on the receiver).
//
// The schedule is the same deterministic pairwise exchange as
// Alltoallv: step k sends to (id+k) and receives from (id-k). Per
// destination, the Section 4 SGE-versus-pack choice routes through the
// policy engine exactly like SendPieces: the gather branch posts one
// work request whose SGE list references every piece in place and the
// message travels as a single eager push (SendGathered never waits for
// the receiver, so the ring cannot deadlock); the pack branch stages
// the pieces into the collective scratch buffer and moves it with
// Sendrecv, whose forked send half keeps the rendezvous handshakes of
// a whole step in flight concurrently.
func (r *Rank) AlltoallvPieces(pieces [][]Piece, recvVA vm.VA, recvCounts, recvDispls []int) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("AlltoallvPieces", start, outer) }()
	p := r.Size()
	if len(pieces) != p || len(recvCounts) != p || len(recvDispls) != p {
		return fmt.Errorf("mpi: alltoallv-pieces: piece/count/displ arrays must have %d entries", p)
	}
	var cs node.CollStats
	cs.Alltoallvs = 1
	// Local pieces: CPU copies into the receive layout.
	if own := pieces[r.id]; len(own) > 0 {
		off := 0
		for _, pc := range own {
			buf := make([]byte, pc.Len)
			if err := r.as.Read(pc.VA, buf); err != nil {
				return err
			}
			if err := r.as.Write(recvVA+vm.VA(recvDispls[r.id]+off), buf); err != nil {
				return err
			}
			r.clock.Advance(r.memcpyTicks(pc.Len))
			off += pc.Len
		}
		if off > recvCounts[r.id] {
			return fmt.Errorf("mpi: alltoallv-pieces: local pieces %d B exceed recv count %d", off, recvCounts[r.id])
		}
		cs.LocalCopyBytes += int64(off)
	}
	for k := 1; k < p; k++ {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		tag := tagAlltoallvP + k
		send := pieces[dst]
		total := totalPieces(send)
		switch {
		case len(send) == 0:
			// Nothing outbound: a zero-byte Sendrecv keeps the step's
			// send/receive matching intact.
			if _, err := r.Sendrecv(dst, tag, 0, 0,
				src, tag, recvVA+vm.VA(recvDispls[src]), recvCounts[src]); err != nil {
				return fmt.Errorf("mpi: alltoallv-pieces step %d: %w", k, err)
			}
		default:
			estGather := r.GatherCostEstimate(total/len(send), len(send))
			estPack := r.memcpyTicks(total) + r.GatherCostEstimate(total, 1)
			if r.node.Policy().DecideGather(len(send), uint64(total), estGather, estPack) {
				if err := r.SendGathered(dst, tag, send); err != nil {
					return fmt.Errorf("mpi: alltoallv-pieces step %d: %w", k, err)
				}
				if _, err := r.Recv(src, tag, recvVA+vm.VA(recvDispls[src]), recvCounts[src]); err != nil {
					return fmt.Errorf("mpi: alltoallv-pieces step %d: %w", k, err)
				}
				break
			}
			// Pack: stage the pieces contiguously, then one Sendrecv.
			// Sendrecv completes before returning, so the scratch buffer
			// is free again when the next step stages into it.
			stage, err := r.scratch(uint64(total))
			if err != nil {
				return err
			}
			off := 0
			for _, pc := range send {
				buf := make([]byte, pc.Len)
				if err := r.as.Read(pc.VA, buf); err != nil {
					return err
				}
				if err := r.as.Write(stage+vm.VA(off), buf); err != nil {
					return err
				}
				r.clock.Advance(r.memcpyTicks(pc.Len))
				off += pc.Len
			}
			if _, err := r.Sendrecv(dst, tag, stage, total,
				src, tag, recvVA+vm.VA(recvDispls[src]), recvCounts[src]); err != nil {
				return fmt.Errorf("mpi: alltoallv-pieces step %d: %w", k, err)
			}
		}
		cs.PairwiseSteps++
		cs.BytesSent += int64(total)
		cs.BytesRecv += int64(recvCounts[src])
	}
	r.node.AddColl(cs)
	return nil
}
