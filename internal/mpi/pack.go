package mpi

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/hca"
	"repro/internal/simtime"
	"repro/internal/vm"
)

// Piece is one element of a non-contiguous buffer (Section 4: "sending
// multiple buffers with only one work request").
type Piece struct {
	VA  vm.VA
	Len int
}

func totalPieces(ps []Piece) int {
	n := 0
	for _, p := range ps {
		n += p.Len
	}
	return n
}

// SendPacked transmits a non-contiguous buffer the classic way: MPI_Pack
// copies every piece into a contiguous staging buffer, then one ordinary
// send moves it. This is the baseline the SGE path is compared against.
func (r *Rank) SendPacked(dst, tag int, pieces []Piece) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("SendPacked", start, outer) }()
	total := totalPieces(pieces)
	stage, err := r.scratch(uint64(total))
	if err != nil {
		return err
	}
	// MPI_Pack: one CPU copy per piece.
	off := 0
	for _, p := range pieces {
		buf := make([]byte, p.Len)
		if err := r.as.Read(p.VA, buf); err != nil {
			return err
		}
		if err := r.as.Write(stage+vm.VA(off), buf); err != nil {
			return err
		}
		r.clock.Advance(r.memcpyTicks(p.Len))
		off += p.Len
	}
	return r.sendOn(r.task, &r.clock, dst, tag, stage, total, nil, nil, nil)
}

// SendGathered transmits a non-contiguous buffer the way Section 4
// proposes: one work request whose scatter/gather list references every
// piece in place. The consumer posts a single WR, the adapter fetches the
// pieces without CPU copies, and one completion is polled.
func (r *Rank) SendGathered(dst, tag int, pieces []Piece) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("SendGathered", start, outer) }()
	if len(pieces) == 0 {
		return fmt.Errorf("mpi: empty gather list")
	}
	// Register the span covering all pieces (they come from one user
	// buffer region in practice); one MR covers every SGE.
	lo, hi := pieces[0].VA, pieces[0].VA+vm.VA(pieces[0].Len)
	for _, p := range pieces[1:] {
		if p.VA < lo {
			lo = p.VA
		}
		if end := p.VA + vm.VA(p.Len); end > hi {
			hi = end
		}
	}
	mr, cost, err := r.cache.Acquire(lo, uint64(hi-lo))
	if err != nil {
		return fmt.Errorf("mpi: gather register: %w", err)
	}
	r.clock.Advance(cost)

	sges := make([]hca.SGE, len(pieces))
	for i, p := range pieces {
		sges[i] = hca.SGE{Addr: p.VA, Length: uint32(p.Len), LKey: mr.LKey}
	}
	// One post, covering all SGEs (the sub-linear Figure 3 cost).
	r.clock.Advance(r.ctx.PostSend(sges))
	data, gather, err := r.ctx.HW.Gather(sges)
	if err != nil {
		return fmt.Errorf("mpi: gather DMA: %w", err)
	}
	arrive := r.clock.Now() + gather + r.ctx.HW.WireCost(len(data))
	if err := r.pollCQ(&r.clock, faults.StreamWRSend); err != nil {
		return err
	}
	if !r.world.ranks[dst].inboxQ(r.id).Push(r.task, &message{
		kind: kindEager, src: r.id, tag: tag, data: data, arrive: arrive,
	}) {
		return fmt.Errorf("mpi: rank %d sending gathered to %d: %w", r.id, dst, ErrAborted)
	}
	if relCost, err := r.cache.Release(mr); err != nil {
		return err
	} else {
		r.clock.Advance(relCost)
	}
	return nil
}

// RecvUnpack receives a message sent by SendPacked or SendGathered and
// scatters it into the given pieces (MPI_Unpack).
func (r *Rank) RecvUnpack(src, tag int, pieces []Piece) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("RecvUnpack", start, outer) }()
	total := totalPieces(pieces)
	stage, err := r.scratch(uint64(total))
	if err != nil {
		return err
	}
	n, err := r.recvOn(r.task, &r.clock, src, tag, stage, total, nil, nil)
	if err != nil {
		return err
	}
	if n != total {
		return fmt.Errorf("mpi: unpack size mismatch: got %d, want %d", n, total)
	}
	off := 0
	for _, p := range pieces {
		buf := make([]byte, p.Len)
		if err := r.as.Read(stage+vm.VA(off), buf); err != nil {
			return err
		}
		if err := r.as.Write(p.VA, buf); err != nil {
			return err
		}
		r.clock.Advance(r.memcpyTicks(p.Len))
		off += p.Len
	}
	return nil
}

// SendPieces transmits a non-contiguous buffer, choosing between the
// single-WR gather list (SendGathered) and pack-and-copy (SendPacked).
// The send-side cost estimates — pieces SGEs versus one copy of the
// whole payload plus a single-SGE post — go through the node's policy
// engine (DecideGather), which may overrule them on live ATT pressure;
// without an engine the raw estimates decide.
func (r *Rank) SendPieces(dst, tag int, pieces []Piece) error {
	if len(pieces) == 0 {
		return fmt.Errorf("mpi: empty piece list")
	}
	total := totalPieces(pieces)
	estGather := r.GatherCostEstimate(total/len(pieces), len(pieces))
	estPack := r.memcpyTicks(total) + r.GatherCostEstimate(total, 1)
	if r.node.Policy().DecideGather(len(pieces), uint64(total), estGather, estPack) {
		return r.SendGathered(dst, tag, pieces)
	}
	return r.SendPacked(dst, tag, pieces)
}

// GatherCostEstimate reports the modelled post+gather cost of an n-piece
// send at the given piece size, without sending (used by the SGE planner
// in internal/core to decide between packing and gathering).
func (r *Rank) GatherCostEstimate(pieceLen, pieces int) simtime.Ticks {
	post := r.world.cfg.Machine.HCA.DoorbellTicks +
		r.world.cfg.Machine.HCA.WQEBaseTicks +
		simtime.Ticks(pieces-1)*r.world.cfg.Machine.HCA.WQESGETicks
	return post + simtime.Ticks(pieces)*r.world.cfg.Machine.Bus.TxnTicks/2
}
