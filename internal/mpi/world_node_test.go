package mpi

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/node"
)

func TestPerRankHookCustomisesHosts(t *testing.T) {
	w, err := NewWorld(Config{
		Machine: machine.Opteron(),
		Ranks:   2,
		PerRank: func(rank int, cfg node.Config) node.Config {
			if rank == 1 {
				cfg.Allocator = node.AllocHuge
			}
			return cfg
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Node(0).Config().Allocator; got != node.AllocLibc {
		t.Fatalf("rank 0 allocator = %q, want libc", got)
	}
	if got := w.Node(1).Config().Allocator; got != node.AllocHuge {
		t.Fatalf("rank 1 allocator = %q, want huge", got)
	}
	sts := w.NodeStats()
	if len(sts) != 2 {
		t.Fatalf("NodeStats returned %d snapshots, want 2", len(sts))
	}
	if sts[0].Allocator != "libc" || sts[1].Allocator != "huge" {
		t.Fatalf("snapshot identities wrong: %q %q", sts[0].Allocator, sts[1].Allocator)
	}
}

func TestPerRankHookErrorPropagates(t *testing.T) {
	_, err := NewWorld(Config{
		Machine: machine.Opteron(),
		Ranks:   2,
		PerRank: func(rank int, cfg node.Config) node.Config {
			cfg.Allocator = "tcmalloc"
			return cfg
		},
	})
	if err == nil {
		t.Fatal("per-rank config with an unknown allocator accepted")
	}
}

func TestRankExposesItsNode(t *testing.T) {
	w, err := NewWorld(Config{Machine: machine.Opteron(), Ranks: 2, Allocator: AllocHuge})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r := w.Rank(i)
		n := r.Node()
		if n != w.Node(i) {
			t.Fatalf("rank %d node does not match World.Node", i)
		}
		// The rank's hot-path aliases must point into its own node.
		if r.AS() != n.AS || r.Verbs() != n.Verbs || r.Cache() != n.Cache ||
			r.Allocator() != n.Alloc || r.DTLB() != n.DTLB {
			t.Fatalf("rank %d aliases diverge from its node", i)
		}
	}
}
