// Package mpi is a miniature MPI runtime over the simulated InfiniBand
// stack, modelled on MVAPICH2 0.9.x as used in the paper's Section 5:
// eager protocol up to 8 KiB, a copy-based pipeline to 16 KiB, and an
// RDMA-write rendezvous above 16 KiB whose buffers are registered through
// the pin-down cache (lazy deregistration on or off). Collectives are
// built from point-to-point. Each rank runs as a task on the world's
// deterministic event scheduler (internal/sched) with its own virtual
// clock; message timestamps synchronise the clocks pairwise, and the
// scheduler's (time, rank, sequence) run-queue order makes the whole
// execution schedule a pure function of simulation state.
//
// Placement enters through the per-rank allocator: buffers allocated with
// the hugepage library land in hugepages, which changes registration
// cost, ATT behaviour and (via internal/memmodel) compute time — the full
// causal chain of the paper.
package mpi

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/memtier"
	"repro/internal/mpip"
	"repro/internal/node"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// AllocatorKind selects the per-rank allocation library — the variable of
// the whole experiment.
type AllocatorKind = node.AllocatorKind

// Allocator kinds.
const (
	AllocLibc     = node.AllocLibc
	AllocHuge     = node.AllocHuge
	AllocMorecore = node.AllocMorecore
	AllocPageSep  = node.AllocPageSep
)

// Config describes one job.
type Config struct {
	Machine *machine.Machine
	Ranks   int
	// Allocator is the allocation library preloaded into every rank.
	Allocator AllocatorKind
	// LazyDereg enables the registration cache (Figure 5's two regimes).
	LazyDereg bool
	// HugeATT enables the OpenIB driver patch (2 MiB translations).
	HugeATT bool
	// Policy selects the per-rank placement-policy engine ("static",
	// "threshold", "adaptive"); empty builds none — the legacy fixed
	// strategies with zero policy code on any path. See internal/policy.
	Policy string
	// Tiers enables the tiered-memory model on every rank's host (nil =
	// flat DRAM, zero cost on any path). See internal/memtier.
	Tiers *memtier.Config
	// EagerLimit and RdmaLimit are the protocol switch points.
	// Zero values take the MVAPICH2 defaults (8 KiB / 16 KiB).
	EagerLimit int
	RdmaLimit  int
	// RendezvousProtocol selects "write" (RDMA-write with RTS/CTS, the
	// MVAPICH2 default) or "read" (receiver-driven RDMA read). An
	// ablation knob; both move the same bytes.
	RendezvousProtocol string
	// EagerCredits is the per-peer eager buffer (vbuf) count; senders
	// block when the receiver has not drained its bounce buffers.
	EagerCredits int
	// ChannelDepth is the per-peer unexpected-message queue depth.
	ChannelDepth int
	// PerRank, when set, rewrites a rank's node configuration before its
	// host is built — the hook for heterogeneous jobs (per-rank
	// allocators or placement policies).
	PerRank func(rank int, cfg node.Config) node.Config
	// Faults enables deterministic fault injection on every rank's host
	// (nil = no faults). Each rank is salted with its rank number, so
	// the hosts run decorrelated schedules that replay bit-identically.
	Faults *faults.Spec
	// Trace, when set, records every rank's activity into the collector
	// (nil = no tracing; disabled tracing is allocation-free on the hot
	// paths). Timelines are named "rank0", "rank1", … — prefixed with
	// TracePrefix, which lets several worlds (benchmark configurations)
	// share one collector without colliding.
	Trace       *trace.Collector
	TracePrefix string
}

// nodeConfig is the homogeneous per-rank host configuration the job
// implies before any PerRank rewrite.
func (c Config) nodeConfig() node.Config {
	return node.Config{
		Machine:   c.Machine,
		Allocator: c.Allocator,
		LazyDereg: c.LazyDereg,
		HugeATT:   c.HugeATT,
		Faults:    c.Faults,
		Trace:     c.Trace,
		Policy:    c.Policy,
		Tiers:     c.Tiers,
	}
}

func (c Config) withDefaults() Config {
	if c.EagerLimit == 0 {
		c.EagerLimit = 8 << 10
	}
	if c.RdmaLimit == 0 {
		c.RdmaLimit = 16 << 10
	}
	if c.ChannelDepth == 0 {
		c.ChannelDepth = 4096
	}
	if c.RendezvousProtocol == "" {
		c.RendezvousProtocol = "write"
	}
	if c.EagerCredits == 0 {
		c.EagerCredits = 64
	}
	if c.Allocator == "" {
		c.Allocator = AllocLibc
	}
	return c
}

// World is one running job.
type World struct {
	cfg   Config
	nodes []*node.Node
	ranks []*Rank

	// sched is the job's event scheduler: it owns the run queue, the
	// park/wake machinery behind every blocking MPI primitive, and the
	// abort flag that makes ranks blocked in message matching fail fast
	// when a peer errors (the simulator's equivalent of MPI_Abort).
	sched *sched.Scheduler
}

// NewWorld builds a job: one node (physical memory + HCA + address space
// + allocator + registration cache) per rank. The paper runs 2 nodes with
// 4 processes each; we give every rank its own node and route all traffic
// through the HCA — a documented deviation (DESIGN.md §8) that removes
// shared-memory shortcuts without changing who wins.
func NewWorld(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	if cfg.Machine == nil {
		return nil, fmt.Errorf("mpi: config needs a machine")
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("mpi: need at least 1 rank, got %d", cfg.Ranks)
	}
	if cfg.RendezvousProtocol != "write" && cfg.RendezvousProtocol != "read" {
		return nil, fmt.Errorf("mpi: unknown rendezvous protocol %q", cfg.RendezvousProtocol)
	}
	w := &World{cfg: cfg, sched: sched.New()}
	for i := 0; i < cfg.Ranks; i++ {
		ncfg := cfg.nodeConfig()
		ncfg.FaultSalt = uint64(i)
		ncfg.TraceName = fmt.Sprintf("%srank%d", cfg.TracePrefix, i)
		if cfg.PerRank != nil {
			ncfg = cfg.PerRank(i, ncfg)
		}
		n, err := node.New(ncfg)
		if err != nil {
			return nil, fmt.Errorf("mpi: rank %d: %w", i, err)
		}
		r := &Rank{
			id:    i,
			world: w,
			node:  n,
			as:    n.AS,
			ctx:   n.Verbs,
			cache: n.Cache,
			alloc: n.Alloc,
			dtlb:  n.DTLB,
			inj:   n.Faults(),
			prof:  mpip.New(),
			tr:    n.Tracer(),
			cur:   n.TraceCursor(),
		}
		w.nodes = append(w.nodes, n)
		w.ranks = append(w.ranks, r)
	}
	// Mailboxes, unexpected-message queues and eager credit pools are
	// created lazily per peer pair (see Rank.inboxQ/creditQ): world
	// construction stays O(ranks), not O(ranks²), which is what lets a
	// 1024-rank world come up in milliseconds.
	for _, r := range w.ranks {
		r.inbox = make(map[int]*sched.Queue[*message])
		r.pending = make(map[int][]*message)
		r.credits = make(map[int]*sched.Queue[simtime.Ticks])
		r.flowSeq = make(map[int]uint64)
	}
	return w, nil
}

// Scheduler exposes the job's event scheduler (for dispatch-count
// telemetry and tests).
func (w *World) Scheduler() *sched.Scheduler { return w.sched }

// Config returns the job configuration (defaults resolved).
func (w *World) Config() Config { return w.cfg }

// Rank returns rank i (for post-run inspection).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Node returns rank i's host.
func (w *World) Node(i int) *node.Node { return w.nodes[i] }

// NodeStats snapshots every rank's host telemetry, in rank order. Call
// it only while no rank body is running (before Run or after it
// returns); snapshots race with in-flight ranks otherwise.
func (w *World) NodeStats() []node.Stats {
	out := make([]node.Stats, len(w.nodes))
	for i, n := range w.nodes {
		out[i] = n.Stats()
	}
	return out
}

// Run executes body once per rank as tasks on the world's event
// scheduler and returns when all ranks finish. A rank's error aborts the
// job: every parked peer's pending blocking operation fails with
// ErrAborted, so the tasks unwind instead of deadlocking. The scheduler
// dispatches tasks in (virtual time, rank, wake order), so the execution
// schedule — and every result — is identical under any GOMAXPROCS.
func (w *World) Run(body func(r *Rank) error) error {
	errs := make([]error, len(w.ranks))
	for i, r := range w.ranks {
		i, r := i, r
		r.task = w.sched.Spawn(i, &r.clock, func(*sched.Task) (err error) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("mpi: rank %d panic: %v", i, p)
				}
				errs[i] = err
			}()
			return body(r)
		})
	}
	schedErr := w.sched.Run()
	for _, r := range w.ranks {
		r.task = nil
	}
	// Prefer reporting a root-cause error over the secondary "job
	// aborted" errors of ranks that were merely cut off mid-receive; a
	// deadlock report outranks those too.
	var fallback error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrAborted) {
			if fallback == nil {
				fallback = fmt.Errorf("mpi: rank %d: %w", i, err)
			}
			continue
		}
		return fmt.Errorf("mpi: rank %d: %w", i, err)
	}
	if schedErr != nil {
		return schedErr
	}
	return fallback
}

// ErrAborted marks errors caused by another rank's failure.
var ErrAborted = errors.New("job aborted by peer failure")

// MaxTime reports the latest rank clock — the job's makespan.
func (w *World) MaxTime() simtime.Ticks {
	var t simtime.Ticks
	for _, r := range w.ranks {
		t = simtime.Max(t, r.clock.Now())
	}
	return t
}

// EndTrace stamps every rank's timeline with a job.end marker at the
// job's makespan, so the trace's elapsed time equals MaxTime even for
// ranks that went idle early. Call it after Run, before writing the
// trace. A world without tracing ignores the call.
func (w *World) EndTrace() {
	if w.cfg.Trace == nil {
		return
	}
	end := w.MaxTime()
	for _, r := range w.ranks {
		r.tr.At(trace.TrackMain, end).Event(trace.LApp, "job.end")
	}
}

// Profile aggregates all ranks' mpiP profiles.
func (w *World) Profile() *mpip.Profile {
	p := mpip.New()
	for _, r := range w.ranks {
		p.Merge(r.prof)
	}
	return p
}
